(* Shared VLSI design repository — the paper's introduction: "it should
   be possible for a user running a particular document management
   system to view a VLSI design stored in HyperFile.  Similarly, a user
   running a VLSI design tool should be able to refer to a document that
   describes the operation of a particular circuit."

   Two applications share one server: a design tool storing cells with
   application-defined tuple types (HyperFile stores "Netlist" and
   "Layout" blobs without understanding them), and a documentation tool
   storing datasheets that point into the design hierarchy.  Cross-tool
   queries work because both speak the same tuple conventions.

   This example uses the umbrella [Hyperfile] module as an application
   would.

   Run with:  dune exec examples/vlsi_design.exe *)

open Hyperfile

let () =
  let server = Embedded.create ~n_sites:2 () in
  (* site 0: the design tool's cells; site 1: the documentation tool *)

  let cell ~name ~speed_mhz subcells =
    Embedded.create_object server ~site:0
      ([ Tuple.string_ ~key:"Cell" name;
         Tuple.number ~key:"Clock" speed_mhz;
         (* application-defined types: HyperFile stores the bits blindly *)
         Tuple.make ~ttype:"Netlist" ~key:(Value.str "spice") ~data:(Value.blob "* netlist…");
         Tuple.make ~ttype:"Layout" ~key:(Value.str "gds2") ~data:(Value.blob "\x00layout…");
       ]
      @ List.map (fun sub -> Tuple.pointer ~key:"Subcell" sub) subcells
      (* terminator self-pointer for leaf cells, so closure queries can
         still filter them (see DESIGN.md) *)
      @ (if subcells = [] then [] else []))
  in
  let nand = cell ~name:"nand2" ~speed_mhz:450 [] in
  let dff = cell ~name:"dff" ~speed_mhz:300 [] in
  let alu = cell ~name:"alu8" ~speed_mhz:120 [ nand; dff ] in
  let regfile = cell ~name:"regfile" ~speed_mhz:150 [ dff ] in
  let cpu = cell ~name:"cpu" ~speed_mhz:100 [ alu; regfile ] in
  (* leaves need an outgoing Subcell pointer to survive closure bodies *)
  List.iter
    (fun leaf ->
      let store = Embedded.store server 0 in
      let obj = Option.get (Store.find store leaf) in
      Store.replace store (Hobject.add obj (Tuple.pointer ~key:"Subcell" leaf)))
    [ nand; dff ];

  let datasheet ~title ~covers =
    Embedded.create_object server ~site:1
      ([ Tuple.string_ ~key:"Title" title; Tuple.keyword "datasheet" ]
      @ List.map (fun c -> Tuple.pointer ~key:"Documents" c) covers)
  in
  let _ds_alu = datasheet ~title:"ALU timing closure notes" ~covers:[ alu ] in
  let _ds_cpu = datasheet ~title:"CPU integration guide" ~covers:[ cpu; alu ] in

  Embedded.define_set server "CPU" [ cpu ];

  Fmt.pr "== Design tool: slow cells anywhere under the CPU ==@.";
  let slow =
    Embedded.query server "CPU [ (Pointer, \"Subcell\", ?X) ^^X ]* (Number, \"Clock\", 100..199)"
  in
  List.iter
    (fun oid ->
      let store = Embedded.store server 0 in
      let obj = Option.get (Store.find store oid) in
      Fmt.pr "  %s at %d MHz@."
        (Option.value (Hobject.find_string obj ~key:"Cell") ~default:"?")
        (Option.value
           (List.find_map
              (fun t ->
                if Value.equal (Tuple.key t) (Value.str "Clock") then Value.as_number (Tuple.data t)
                else None)
              (Hobject.tuples obj))
           ~default:0))
    slow.Embedded.oids;

  Fmt.pr "== Documentation tool: datasheets covering cells of the CPU hierarchy ==@.";
  (* Back pointers make the reverse direction queryable (paper §2):
     materialize Documents<- links into the design objects. *)
  let combined = Store.create ~site:0 in
  List.iter
    (fun site ->
      Store.iter (Embedded.store server site) (fun obj -> Store.insert combined obj))
    [ 0; 1 ];
  let updated = Backlinks.materialize ~key:"Documents" combined in
  Fmt.pr "  back pointers written into %d design object(s)@." updated;
  let r =
    Local.run_query ~store:combined
      (Parser.parse_body
         "[ (Pointer, \"Subcell\", ?X) ^^X ]* (Pointer, \"Documents<-\", ?D) ^D \
          (Keyword, \"datasheet\", ?) (String, \"Title\", ->title)")
      [ cpu ]
  in
  (match List.assoc_opt "title" r.Local.bindings with
   | Some titles ->
     List.iter (fun v -> Fmt.pr "  - %a@." Value.pp v) (List.sort_uniq Value.compare titles)
   | None -> ());

  Fmt.pr "== The datasheet side: follow Documents pointers into the design ==@.";
  Embedded.define_set server "Sheets" (List.filter_map (fun x -> x) [ Some _ds_cpu ]);
  let covered =
    Embedded.query server "Sheets (Pointer, \"Documents\", ?X) ^X (String, \"Cell\", ->cells)"
  in
  (match List.assoc_opt "cells" covered.Embedded.values with
   | Some cells -> Fmt.pr "  CPU guide covers: %a@." (Fmt.list ~sep:Fmt.comma Value.pp) cells
   | None -> ());

  Fmt.pr "done.@."
