(* Quickstart: build a tiny HyperFile server, store a few linked
   documents, and run the paper's flagship transitive-closure query.

   Run with:  dune exec examples/quickstart.exe *)

module E = Hf_client.Embedded
module Tuple = Hf_data.Tuple

let () =
  (* A single-process server simulating three HyperFile sites. *)
  let server = E.create ~n_sites:3 () in

  (* Store four documents spread over the sites.  Objects are sets of
     (type, key, data) tuples; pointers reference objects anywhere. *)
  let paper_d =
    E.create_object server ~site:2
      [ Tuple.string_ ~key:"Title" "A Grand Unified Theory of Filing";
        Tuple.keyword "Filing";
      ]
  in
  let paper_c =
    E.create_object server ~site:1
      [ Tuple.string_ ~key:"Title" "Caching for Fun and Profit";
        Tuple.keyword "Distributed";
        Tuple.pointer ~key:"Reference" paper_d;
      ]
  in
  let paper_b =
    E.create_object server ~site:1
      [ Tuple.string_ ~key:"Title" "A Survey of Surveys";
        Tuple.pointer ~key:"Reference" paper_c;
      ]
  in
  let paper_a =
    E.create_object server ~site:0
      [ Tuple.string_ ~key:"Title" "Distributed Processing of Filtering Queries";
        Tuple.keyword "Distributed";
        Tuple.pointer ~key:"Reference" paper_b;
      ]
  in
  ignore paper_a;

  (* Name a starting set, as an application would. *)
  E.define_set server "S" [ paper_a ];

  (* The paper's query: follow Reference pointers to the transitive
     closure, keep documents carrying the keyword "Distributed", and
     bind the result set to T. *)
  let r =
    E.query server "S [ (Pointer, \"Reference\", ?X) ^^X ]* (Keyword, \"Distributed\", ?) -> T"
  in
  Fmt.pr "Found %d documents with keyword \"Distributed\":@." (List.length r.E.oids);
  List.iter (fun oid -> Fmt.pr "  - %a@." Hf_data.Oid.pp oid) r.E.oids;

  (* Result sets are first-class: refine T with a second query that
     also pulls titles back into the application. *)
  let titles = E.query server "T (String, \"Title\", ->title)" in
  (match List.assoc_opt "title" titles.E.values with
   | Some values ->
     Fmt.pr "Their titles:@.";
     List.iter (fun v -> Fmt.pr "  - %a@." Hf_data.Value.pp v) values
   | None -> ());

  (* The outcome also reports the simulated distributed execution. *)
  let m = r.E.outcome.Hf_server.Cluster.metrics in
  Fmt.pr "Distributed execution: %.3fs simulated, %d query messages, %d result messages@."
    r.E.outcome.Hf_server.Cluster.response_time m.Hf_server.Metrics.work_messages
    m.Hf_server.Metrics.result_messages
