examples/digital_library.mli:
