examples/digital_library.ml: Array Fmt Fun Hf_client Hf_data Hf_engine Hf_index Hf_query Hf_server Hf_util List Option Printf String
