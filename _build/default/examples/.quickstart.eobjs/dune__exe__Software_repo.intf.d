examples/software_repo.mli:
