examples/hypertext_browse.ml: Array Fmt Hf_client Hf_data Hf_engine Hf_parallel Hf_query Hf_server Hf_util List Option Unix
