examples/real_sockets.mli:
