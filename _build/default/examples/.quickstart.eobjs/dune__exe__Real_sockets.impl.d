examples/real_sockets.ml: Array Filename Fmt Hf_data Hf_net Hf_persist Hf_query In_channel Int64 List Printf Sys Unix
