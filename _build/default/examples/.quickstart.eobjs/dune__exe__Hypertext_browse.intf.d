examples/hypertext_browse.mli:
