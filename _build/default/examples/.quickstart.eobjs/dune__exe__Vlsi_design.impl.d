examples/vlsi_design.ml: Backlinks Embedded Fmt Hobject Hyperfile List Local Option Parser Store Tuple Value
