examples/software_repo.ml: Fmt Hf_client Hf_data List Option
