examples/quickstart.mli:
