examples/quickstart.ml: Fmt Hf_client Hf_data Hf_server List
