(* Software-engineering repository — the scenario of the paper's
   Section 2.  Modules are HyperFile objects holding code, authorship
   and "Called Routine" / "Library" pointers.  We pose the paper's
   queries: direct callees by an author, the transitive closure of the
   call graph, depth-bounded searches, and the -> operator pulling
   titles into application variables.

   Run with:  dune exec examples/software_repo.exe *)

module E = Hf_client.Embedded
module Tuple = Hf_data.Tuple

(* One module per routine of a toy sort utility, spread over two
   development machines. *)
let build server =
  let routine ~site ~title ~author ?(code = "...") calls_later =
    ( E.create_object server ~site
        [ Tuple.string_ ~key:"Title" title;
          Tuple.string_ ~key:"Author" author;
          Tuple.text ~key:"C Code" code;
        ],
      calls_later )
  in
  (* leaf routines first *)
  let libc, _ = routine ~site:0 ~title:"libc" ~author:"Vendor" [] in
  let compare_, _ = routine ~site:1 ~title:"compare" ~author:"Joe Programmer" [] in
  let swap, _ = routine ~site:1 ~title:"swap" ~author:"Joe Programmer" [] in
  let partition, _ = routine ~site:1 ~title:"partition" ~author:"Ann Author" [] in
  let quicksort, _ = routine ~site:1 ~title:"quicksort" ~author:"Joe Programmer" [] in
  let read_input, _ = routine ~site:0 ~title:"read_input" ~author:"Ann Author" [] in
  let main_, _ =
    routine ~site:0 ~title:"Main Program for Sort routine" ~author:"Joe Programmer" []
  in
  (* wire the call graph with pointer tuples *)
  let link src ~key dst =
    let store = E.store server (Hf_data.Oid.birth_site src) in
    let obj = Option.get (Hf_data.Store.find store src) in
    Hf_data.Store.replace store (Hf_data.Hobject.add obj (Tuple.pointer ~key dst))
  in
  link main_ ~key:"Called Routine" quicksort;
  link main_ ~key:"Called Routine" read_input;
  link main_ ~key:"Library" libc;
  link quicksort ~key:"Called Routine" partition;
  link quicksort ~key:"Called Routine" quicksort (* recursion: a pointer cycle *);
  link partition ~key:"Called Routine" compare_;
  link partition ~key:"Called Routine" swap;
  link read_input ~key:"Library" libc;
  (* leaves carry terminator self-pointers so closure queries can still
     apply trailing filters to them (see DESIGN.md) *)
  List.iter (fun r -> link r ~key:"Called Routine" r) [ compare_; swap; libc; read_input ];
  main_

let show label r =
  Fmt.pr "%s: %d module(s)@." label (List.length r.E.oids);
  List.iter
    (fun (target, values) ->
      Fmt.pr "  %s = %a@." target (Fmt.list ~sep:Fmt.comma Hf_data.Value.pp) values)
    r.E.values

let () =
  let server = E.create ~n_sites:2 () in
  let main_ = build server in
  E.define_set server "S" [ main_ ];

  (* 1. The paper's first worked query: routines called from S written
     by Joe Programmer (one level of pointers, keeping the caller). *)
  show "Joe's code among S and its direct callees"
    (E.query server
       "S (Pointer, \"Called Routine\", ?X) ^^X (String, \"Author\", \"Joe Programmer\") -> T");

  (* 2. Expand to the transitive closure of the call graph (the paper's
     iterated form) and retrieve the titles. *)
  show "Joe's code in the whole call graph"
    (E.query server
       "S [ (Pointer, \"Called Routine\", ?X) ^^X ]* (String, \"Author\", \"Joe Programmer\") \
        (String, \"Title\", ->title) -> Joe");

  (* 3. Depth-bounded variant: only three levels of calls. *)
  show "...within three call levels"
    (E.query server
       "S [ (Pointer, \"Called Routine\", ?X) ^^X ]^3 (String, \"Author\", \"Joe Programmer\")");

  (* 4. Follow every pointer kind with a wildcard key — picks up the
     Library references too. *)
  show "Everything reachable by any pointer"
    (E.query server "S [ (Pointer, ?, ?X) ^^X ]* (?, ?, ?)");

  (* 5. Matching variables across tuples (the paper's footnote 2):
     authors maintaining their own modules.  Here: none are tagged, so
     first tag one and re-query. *)
  let store = E.store server 0 in
  let obj = Option.get (Hf_data.Store.find store main_) in
  Hf_data.Store.replace store
    (Hf_data.Hobject.add obj (Tuple.string_ ~key:"Maintained by" "Joe Programmer"));
  show "Self-maintained modules"
    (E.query server "S (String, \"Author\", ?A) (String, \"Maintained by\", =A)");

  (* 6. The result set T is a first-class set: refine it further. *)
  show "Of Joe's direct modules, which mention sort in the title"
    (E.query server "T (String, \"Title\", \"*[Ss]ort*\")" |> fun r ->
     ignore r;
     E.query server "T (String, \"Title\", \"*ort*\")")
