(* Distributed digital library: two institutions plus an archive server
   transparently share papers that cite each other across sites — the
   paper's motivating deployment ("two geographically distant
   institutions may want to transparently share information").

   Shows: distributed query shipping with message metrics, the
   distributed-set (count-only) optimisation for low-selectivity
   queries, index-accelerated evaluation, and partial results when a
   site is down.

   Run with:  dune exec examples/digital_library.exe *)

module E = Hf_client.Embedded
module C = Hf_server.Instances.Weighted
module Tuple = Hf_data.Tuple

let institutions = [| "Princeton"; "Stanford"; "Archive" |]

let build server prng =
  (* 60 papers, 20 per site; papers cite 1-3 earlier papers, usually
     from another institution; each carries topical keywords. *)
  let topics = [| "databases"; "distributed"; "hypertext"; "filing"; "networks" |] in
  let papers = ref [] in
  for i = 0 to 59 do
    let site = i mod 3 in
    let cites =
      List.filter_map
        (fun _ ->
          match !papers with
          | [] -> None
          | earlier ->
            Some (List.nth earlier (Hf_util.Prng.next_int prng (List.length earlier))))
        (List.init (1 + Hf_util.Prng.next_int prng 3) Fun.id)
    in
    let keywords =
      List.filter_map
        (fun t -> if Hf_util.Prng.next_bool prng 0.4 then Some (Tuple.keyword t) else None)
        (Array.to_list topics)
    in
    let oid =
      E.create_object server ~site
        ([ Tuple.string_ ~key:"Title" (Printf.sprintf "Paper #%d from %s" i institutions.(site));
           Tuple.number ~key:"Year" (1975 + Hf_util.Prng.next_int prng 16);
           Tuple.text ~key:"Body" (String.make 1024 'x');
         ]
        @ keywords
        @ List.map (fun target -> Tuple.pointer ~key:"Cites" target) cites
        (* terminator self-citation so leaves stay filterable in
           closures (see DESIGN.md) *)
        @ (if cites = [] then [] else []))
    in
    (* every paper cites itself as terminator if it cites nothing *)
    (if cites = [] then
       let store = E.store server site in
       let obj = Option.get (Hf_data.Store.find store oid) in
       Hf_data.Store.replace store (Hf_data.Hobject.add obj (Tuple.pointer ~key:"Cites" oid)));
    papers := oid :: !papers
  done;
  List.rev !papers

let pp_metrics outcome =
  let m = outcome.Hf_server.Cluster.metrics in
  Fmt.pr
    "    %.3fs simulated | %d work msgs (%dB) | %d result msgs (%dB) | %d results shipped@."
    outcome.Hf_server.Cluster.response_time m.Hf_server.Metrics.work_messages
    m.Hf_server.Metrics.work_bytes m.Hf_server.Metrics.result_messages
    m.Hf_server.Metrics.result_bytes m.Hf_server.Metrics.results_shipped

let () =
  let prng = Hf_util.Prng.create 2026 in
  let server = E.create ~n_sites:3 () in
  let papers = build server prng in
  let newest = List.nth papers 59 in
  E.define_set server "Reading" [ newest ];

  Fmt.pr "== A citation-closure search from the newest paper ==@.";
  let r =
    E.query server "Reading [ (Pointer, \"Cites\", ?X) ^^X ]* (Keyword, \"distributed\", ?) -> Hits"
  in
  Fmt.pr "  %d papers in the closure carry keyword 'distributed'@." (List.length r.E.oids);
  pp_metrics r.E.outcome;

  Fmt.pr "== Depth-2 variant (just what this paper builds on directly) ==@.";
  let r2 =
    E.query server "Reading [ (Pointer, \"Cites\", ?X) ^^X ]^2 (Keyword, \"distributed\", ?)"
  in
  Fmt.pr "  %d papers within two citation hops@." (List.length r2.E.oids);
  pp_metrics r2.E.outcome;

  Fmt.pr "== Year-range filter with the numeric pattern ==@.";
  let r3 =
    E.query server "Reading [ (Pointer, \"Cites\", ?X) ^^X ]* (Number, \"Year\", 1985..1990)"
  in
  Fmt.pr "  %d papers published 1985-1990 in the closure@." (List.length r3.E.oids);

  Fmt.pr "== Low-selectivity query: ship counts, not members (Section 5) ==@.";
  let counted =
    E.create ~config:{ Hf_server.Cluster.default_config with
                        Hf_server.Cluster.result_mode = Hf_server.Cluster.Ship_counts }
      ~n_sites:3 ()
  in
  let papers2 = build counted (Hf_util.Prng.create 2026) in
  let newest2 = List.nth papers2 59 in
  E.define_set counted "Reading" [ newest2 ];
  let r4 = E.query counted "Reading [ (Pointer, \"Cites\", ?X) ^^X ]* (?, ?, ?)" in
  Fmt.pr "  per-site result counts (members stayed server-side):@.";
  List.iter
    (fun (site, n) -> Fmt.pr "    %-10s %d papers@." institutions.(site) n)
    r4.E.outcome.Hf_server.Cluster.counts;
  pp_metrics r4.E.outcome;

  Fmt.pr "== Index-accelerated evaluation (Section 2's indexing facility) ==@.";
  (* Build reachability + keyword indexes over a single-store copy. *)
  let lib_store = Hf_data.Store.create ~site:0 in
  List.iteri
    (fun i oid ->
      (* copy the 3-site library into one store for local indexing *)
      let obj = Option.get (Hf_data.Store.find (E.store server (i mod 3)) oid) in
      Hf_data.Store.insert lib_store obj)
    papers;
  let indexes =
    { Hf_index.Planner.reachability = Some (Hf_index.Reachability.of_store ~key:"Cites" lib_store);
      keywords = Some (Hf_index.Keyword_index.of_store lib_store);
    }
  in
  let ast =
    Hf_query.Parser.parse_body "[ (Pointer, \"Cites\", ?X) ^^X ]* (Keyword, \"distributed\", ?)"
  in
  (match Hf_index.Planner.explain indexes ast with
   | Hf_index.Planner.Indexed how -> Fmt.pr "  plan: %s@." how
   | Hf_index.Planner.Scan -> Fmt.pr "  plan: scan@.");
  let answer = Hf_index.Planner.answer ~indexes ~find:(Hf_data.Store.find lib_store) ast [ newest ] in
  Fmt.pr "  index answer: %d papers (engine agreed: %b)@."
    (Hf_data.Oid.Set.cardinal answer)
    (Hf_data.Oid.Set.equal answer
       (Hf_engine.Local.run_query ~store:lib_store ast [ newest ]).Hf_engine.Local.result_set);

  Fmt.pr "== Partial results when Stanford is down (Section 1) ==@.";
  C.kill_site (E.cluster server) 1;
  let r5 =
    E.query server "Reading [ (Pointer, \"Cites\", ?X) ^^X ]* (Keyword, \"distributed\", ?)"
  in
  Fmt.pr "  terminated=%b — %d of %d papers still found without Stanford@."
    r5.E.outcome.Hf_server.Cluster.terminated (List.length r5.E.oids) (List.length r.E.oids)
