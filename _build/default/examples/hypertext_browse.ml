(* The "lost in hyperspace" problem (paper, Section 6): in a large
   hypermedia database, users cannot retrieve a document because they
   cannot manually construct the right browsing path to it.

   This example builds a web-like hypertext of 400 nodes over three
   sites, then contrasts:

   1. manual browsing — simulated as a random walk over links, counting
      how many node visits it takes to stumble on the target;
   2. a single HyperFile filter query that finds every matching node in
      the reachable graph at once, plus what it cost.

   It also shows the script runner, driving the session the way the
   paper's experimental client replayed query scripts.

   Run with:  dune exec examples/hypertext_browse.exe *)

module E = Hf_client.Embedded
module Tuple = Hf_data.Tuple

let n_nodes = 400

let build server prng =
  (* scale-free-ish hypertext: early nodes accumulate more in-links *)
  let nodes = ref [] in
  let all = Array.make n_nodes None in
  for i = 0 to n_nodes - 1 do
    let site = Hf_util.Prng.next_int prng 3 in
    let links =
      if i = 0 then []
      else
        List.init
          (1 + Hf_util.Prng.next_int prng 4)
          (fun _ ->
            let j = Hf_util.Prng.next_int prng i in
            Option.get all.(j))
    in
    let section =
      [| "intro"; "methods"; "results"; "appendix"; "errata" |].(Hf_util.Prng.next_int prng 5)
    in
    let oid =
      E.create_object server ~site
        ([ Tuple.string_ ~key:"Section" section;
           Tuple.number ~key:"Node" i;
           Tuple.keyword "filler";
         ]
        @ List.map (fun target -> Tuple.pointer ~key:"Link" target) links)
    in
    (* terminator self-link so leaf pages remain filterable in closures *)
    (if links = [] then
       let store = E.store server site in
       let obj = Option.get (Hf_data.Store.find store oid) in
       Hf_data.Store.replace store (Hf_data.Hobject.add obj (Tuple.pointer ~key:"Link" oid)));
    all.(i) <- Some oid;
    nodes := oid :: !nodes
  done;
  (Array.map Option.get all, List.rev !nodes)

(* Manual browsing: a random walk following links from the root until
   the predicate holds, as a (generous) model of a lost user clicking
   around. *)
let browse_until server prng ~root ~matches ~give_up =
  let visits = ref 0 in
  let current = ref root in
  let rec step () =
    incr visits;
    let store = E.store server (Hf_data.Oid.birth_site !current) in
    match Hf_data.Store.find store !current with
    | None -> None
    | Some obj ->
      if matches obj then Some !visits
      else if !visits >= give_up then None
      else begin
        let links =
          List.filter
            (fun l -> not (Hf_data.Oid.equal l !current))
            (Hf_data.Hobject.pointers_with_key obj ~key:"Link")
        in
        (match links with
         | [] -> current := root (* dead end: back to the home page *)
         | links ->
           current := List.nth links (Hf_util.Prng.next_int prng (List.length links)));
        step ()
      end
  in
  step ()

let () =
  let prng = Hf_util.Prng.create 7 in
  let server = E.create ~n_sites:3 () in
  let all, _ = build server prng in
  let root = all.(0) in
  (* links point backwards (node i links to earlier nodes), so browse
     and query from the newest node, which reaches the whole graph *)
  let entry = all.(n_nodes - 1) in
  E.define_set server "Home" [ entry ];

  (* Hide a 'treasure' keyword on a page deep inside the reachable part
     of the hypertext (so both browsing and querying can in principle
     find it). *)
  let reachable = E.query server "Home [ (Pointer, \"Link\", ?X) ^^X ]* (?, ?, ?)" in
  let target =
    List.nth reachable.E.oids (List.length reachable.E.oids / 2)
  in
  let tstore = E.store server (Hf_data.Oid.birth_site target) in
  Hf_data.Store.replace tstore
    (Hf_data.Hobject.add (Option.get (Hf_data.Store.find tstore target)) (Tuple.keyword "treasure"));

  Fmt.pr "== Browsing vs querying for the page tagged 'treasure' ==@.";
  let matches obj = List.mem "treasure" (Hf_data.Hobject.keywords obj) in
  (match browse_until server prng ~root:entry ~matches ~give_up:100_000 with
   | Some visits -> Fmt.pr "  random-walk browsing found it after %d node visits@." visits
   | None -> Fmt.pr "  random-walk browsing gave up after 100000 node visits@.");
  ignore root;

  let r = E.query server "Home [ (Pointer, \"Link\", ?X) ^^X ]* (Keyword, \"treasure\", ?)" in
  let s = r.E.outcome.Hf_server.Cluster.engine_stats in
  Fmt.pr "  one HyperFile query found %d page(s), examining each reachable page once:@."
    (List.length r.E.oids);
  Fmt.pr "    %d pages processed, %d duplicate arrivals skipped, %.3fs simulated@."
    s.Hf_engine.Stats.objects_processed s.Hf_engine.Stats.objects_skipped
    r.E.outcome.Hf_server.Cluster.response_time;

  Fmt.pr "@.== Structured browsing automation with a query script ==@.";
  let script =
    "; find all results sections near home, then hunt the treasure\n\
     Home [ (Pointer, \"Link\", ?X) ^^X ]^3 (String, \"Section\", \"results\") -> NearResults\n\
     Home [ (Pointer, \"Link\", ?X) ^^X ]* (Keyword, \"treasure\", ?) -> Gold\n\
     Gold (Number, \"Node\", ->where)\n"
  in
  let report = Hf_client.Script.run server script in
  Fmt.pr "%a@." Hf_client.Script.pp_report report;

  Fmt.pr "@.== Same closure on the shared-memory engine (Section 6) ==@.";
  (* Copy everything into one store and run the multiprocessor variant. *)
  let store = Hf_data.Store.create ~site:0 in
  Array.iter
    (fun oid ->
      let obj =
        Option.get (Hf_data.Store.find (E.store server (Hf_data.Oid.birth_site oid)) oid)
      in
      Hf_data.Store.insert store obj)
    all;
  let program =
    Hf_query.Parser.parse_program "[ (Pointer, \"Link\", ?X) ^^X ]* (Keyword, \"treasure\", ?)"
  in
  List.iter
    (fun domains ->
      let t0 = Unix.gettimeofday () in
      let pr = Hf_parallel.Shared_engine.run_store ~domains ~store program [ entry ] in
      Fmt.pr "  %d domain(s): %d result(s) in %.1f ms wall clock@." domains
        (List.length pr.Hf_engine.Local.results)
        ((Unix.gettimeofday () -. t0) *. 1000.0))
    [ 1; 2; 4 ]
