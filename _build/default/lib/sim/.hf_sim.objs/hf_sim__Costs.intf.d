lib/sim/costs.mli:
