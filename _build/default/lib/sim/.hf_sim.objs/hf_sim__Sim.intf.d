lib/sim/sim.mli:
