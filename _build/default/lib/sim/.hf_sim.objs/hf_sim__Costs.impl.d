lib/sim/costs.ml:
