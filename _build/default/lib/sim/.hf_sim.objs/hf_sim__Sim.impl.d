lib/sim/sim.ml: Hf_util Printf
