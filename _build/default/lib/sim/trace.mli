(** Optional event trace for debugging and message-accounting tests. *)

type event = { time : float; site : int; kind : string; detail : string }

type t

val create : ?limit:int -> unit -> t
(** Recording stops after [limit] events (default 100_000). *)

val record : t -> time:float -> site:int -> kind:string -> detail:string -> unit

val events : t -> event list
(** In recording order. *)

val count : t -> int

val count_kind : t -> string -> int

val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
