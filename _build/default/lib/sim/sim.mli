(** Discrete-event simulation core: virtual clock plus event queue.

    Events are closures scheduled at absolute virtual times and executed
    in time order, FIFO among equal times — runs are deterministic.
    This is the testbed substitute for the paper's network of IBM
    PC/RTs. *)

type t

exception Time_limit_exceeded of float
(** Raised by {!run} when the next event lies beyond the limit — a
    guard against runaway simulations in tests. *)

val create : unit -> t

val now : t -> float
(** Current virtual time (seconds). *)

val events_processed : t -> int

val pending : t -> int
(** Events still queued. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Raises [Invalid_argument] if [time] is in the virtual past. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Schedule relative to now. Raises [Invalid_argument] on a negative
    delay. *)

val halt : t -> unit
(** Make the current {!run} stop after the executing event returns. *)

val run : ?limit:float -> t -> unit
(** Execute events until the queue is empty or {!halt} is called.
    When the next event lies beyond [limit], raises
    {!Time_limit_exceeded} with that event still queued, so a later
    [run] resumes from it. *)

val step : t -> bool
(** Execute a single event; [false] when the queue is empty. *)
