(** Simulator cost model, defaulted to the paper's measured basic times
    (Section 5): 8 ms per object processed, 20 ms per result-set
    insertion, ~50 ms per remote dereference message, ~50 ms per remote
    result message.

    Message costs split into sender CPU + wire transit + receiver CPU so
    the simulator reproduces the parallelism the paper exploits. *)

type t = {
  process : float;
  skip : float;
  result_add : float;
  msg_send : float;
  msg_transit : float;
  msg_recv : float;
  msg_item_send : float;  (** marginal sender CPU per extra batched item. *)
  msg_item_transit : float;  (** marginal wire time per extra batched item. *)
  msg_item_recv : float;  (** marginal receiver CPU per extra batched item. *)
  result_msg_send : float;
  result_msg_transit : float;
  result_msg_recv : float;
  result_item : float;
  control_send : float;
  control_transit : float;
  control_recv : float;
}

val paper : t
(** The paper's measured basic times. *)

val zero_latency : t
(** All costs zero — used by correctness tests that only care about the
    protocol's final state. *)

val work_message_total : t -> float
(** End-to-end cost of one work message (the paper's ~50 ms). *)

val result_message_total : t -> float

val batch_send : t -> items:int -> float
(** Sender CPU for a work message carrying [items] items: the full
    per-message overhead plus the marginal per-item cost for every item
    beyond the first.  [items = 1] equals [msg_send]. *)

val batch_transit : t -> items:int -> float

val batch_recv : t -> items:int -> float

val scale : float -> t -> t
(** Multiply every component. *)
