(* The simulator's cost model.  The defaults are the paper's measured
   basic times (Section 5, "From our experiments we deduced a few basic
   times"), so simulated response times land in the same regime as the
   prototype's wall-clock measurements:

     - 8 ms to process one object locally;
     - 20 ms to add an object to the result set;
     - ~50 ms per remote dereference message (message construction,
       send/receive system calls, transmission);
     - ~50 ms per remote result message.

   Message costs are split into sender CPU, wire transit, and receiver
   CPU so that the simulator captures the parallelism the paper
   exploits: while a message is on the wire nobody is busy. *)

type t = {
  process : float; (* per productive object removal *)
  skip : float; (* per mark-table-suppressed removal *)
  result_add : float; (* per object added to the result set *)
  msg_send : float; (* sender CPU per work message *)
  msg_transit : float; (* wire time per work message *)
  msg_recv : float; (* receiver CPU per work message *)
  msg_item_send : float; (* marginal sender CPU per extra batched item *)
  msg_item_transit : float; (* marginal wire time per extra batched item *)
  msg_item_recv : float; (* marginal receiver CPU per extra batched item *)
  result_msg_send : float; (* sender CPU per result message *)
  result_msg_transit : float;
  result_msg_recv : float; (* receiver CPU per result message *)
  result_item : float; (* receiver CPU per result item carried *)
  control_send : float; (* CPU per standalone control message *)
  control_transit : float;
  control_recv : float;
}

(* 15 + 20 + 15 = 50 ms per remote dereference, matching the paper's
   lumped figure; likewise for result messages.  Control messages are
   cheap because in the real protocol credit returns piggyback on result
   messages.

   The per-item marginal costs model batched query shipping: the first
   item in a message pays the full construction/syscall/transmission
   overhead, each further item only its ~25-byte payload — a few ms of
   copying and parsing, far below the fixed ~50 ms. *)
let paper =
  {
    process = 0.008;
    skip = 0.0005;
    result_add = 0.020;
    msg_send = 0.015;
    msg_transit = 0.020;
    msg_recv = 0.015;
    msg_item_send = 0.002;
    msg_item_transit = 0.001;
    msg_item_recv = 0.002;
    result_msg_send = 0.015;
    result_msg_transit = 0.020;
    result_msg_recv = 0.015;
    result_item = 0.0;
    control_send = 0.002;
    control_transit = 0.020;
    control_recv = 0.002;
  }

let work_message_total t = t.msg_send +. t.msg_transit +. t.msg_recv

let result_message_total t = t.result_msg_send +. t.result_msg_transit +. t.result_msg_recv

(* Cost of a work message carrying [n] items: full per-message overhead
   once, marginal per-item cost for the rest.  [n = 1] is exactly the
   unbatched per-message figure. *)
let marginal n = float_of_int (max 0 (n - 1))

let batch_send t ~items = t.msg_send +. (marginal items *. t.msg_item_send)

let batch_transit t ~items = t.msg_transit +. (marginal items *. t.msg_item_transit)

let batch_recv t ~items = t.msg_recv +. (marginal items *. t.msg_item_recv)

let zero_latency =
  {
    process = 0.0;
    skip = 0.0;
    result_add = 0.0;
    msg_send = 0.0;
    msg_transit = 0.0;
    msg_recv = 0.0;
    msg_item_send = 0.0;
    msg_item_transit = 0.0;
    msg_item_recv = 0.0;
    result_msg_send = 0.0;
    result_msg_transit = 0.0;
    result_msg_recv = 0.0;
    result_item = 0.0;
    control_send = 0.0;
    control_transit = 0.0;
    control_recv = 0.0;
  }

let scale factor t =
  {
    process = t.process *. factor;
    skip = t.skip *. factor;
    result_add = t.result_add *. factor;
    msg_send = t.msg_send *. factor;
    msg_transit = t.msg_transit *. factor;
    msg_recv = t.msg_recv *. factor;
    msg_item_send = t.msg_item_send *. factor;
    msg_item_transit = t.msg_item_transit *. factor;
    msg_item_recv = t.msg_item_recv *. factor;
    result_msg_send = t.result_msg_send *. factor;
    result_msg_transit = t.result_msg_transit *. factor;
    result_msg_recv = t.result_msg_recv *. factor;
    result_item = t.result_item *. factor;
    control_send = t.control_send *. factor;
    control_transit = t.control_transit *. factor;
    control_recv = t.control_recv *. factor;
  }
