(** Shared-memory multiprocessor query processing (paper, Section 6).

    OCaml 5 domains share the working set and a synchronized mark table;
    each domain independently runs the Section 3.1 algorithm with its
    own matching-variable state.  As the paper notes, nothing prevents
    two processors from racing on the same document — duplicates are
    possible but answers are sets, so results stay correct.  The query
    ends when the working set is empty and all domains are idle.

    The [results] list is sorted by oid (parallel completion order is
    nondeterministic); [result_set] equals the sequential engine's. *)

val run :
  ?domains:int ->
  find:(Hf_data.Oid.t -> Hf_data.Hobject.t option) ->
  Hf_query.Program.t ->
  Hf_data.Oid.t list ->
  Hf_engine.Local.result
(** [find] must be safe for concurrent reads (the store is read-only
    during a query).  [domains] defaults to 2; raises
    [Invalid_argument] when < 1. *)

val run_store :
  ?domains:int ->
  store:Hf_data.Store.t ->
  Hf_query.Program.t ->
  Hf_data.Oid.t list ->
  Hf_engine.Local.result
