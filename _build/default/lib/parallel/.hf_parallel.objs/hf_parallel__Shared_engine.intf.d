lib/parallel/shared_engine.mli: Hf_data Hf_engine Hf_query
