lib/parallel/shared_engine.ml: Condition Domain Hashtbl Hf_data Hf_engine Hf_util List Mutex String
