(** The distributed-file-server comparator (paper, Section 5 preamble).

    The server understands only named byte sequences, so the client must
    fetch every traversed object whole — body blob included — and do all
    filtering and pointer chasing itself.  Costed on the same simulator
    constants as the query-shipping server for direct comparison. *)

type config = {
  costs : Hf_sim.Costs.t;
  bandwidth : float;  (** payload bytes per second on the wire. *)
  window : int;  (** max outstanding fetches; 1 = strictly sequential. *)
}

val default_config : config
(** Paper costs, 10 Mbit/s, window 1. *)

type outcome = {
  results : Hf_data.Oid.t list;
  result_set : Hf_data.Oid.Set.t;
  response_time : float;
  messages : int;  (** requests + responses. *)
  bytes : int;  (** payload bytes moved. *)
  objects_fetched : int;  (** remote fetches. *)
  objects_visited : int;
}

val run_closure :
  ?config:config ->
  origin:int ->
  locate:(Hf_data.Oid.t -> int) ->
  find:(Hf_data.Oid.t -> Hf_data.Hobject.t option) ->
  pointer_key:string ->
  matches:(Hf_data.Hobject.t -> bool) ->
  Hf_data.Oid.t list ->
  outcome
(** Traverse the closure of [pointer_key] from the initial set, keeping
    objects that satisfy [matches].  Raises [Invalid_argument] on a
    window < 1. *)
