lib/baseline/file_server.ml: Float Hf_data Hf_sim Hf_util List
