lib/baseline/file_server.mli: Hf_data Hf_sim
