(* The comparator the paper argues against (Section 5 preamble): a
   distributed *file* server.  The server understands only named byte
   sequences, so the client must fetch every object in the traversal —
   whole, body blob included — and do all filtering and pointer chasing
   itself.  "At best this uses a single message for each file ...
   versus potentially huge messages required to send a complete file."

   Model: the client at the originating site runs the closure traversal;
   each remote object costs a request message plus a response carrying
   the full object, whose transfer time includes a bandwidth term.
   Objects already at the client's site are read locally (no messages).
   Up to [window] fetches may be outstanding at once (a pipelined client;
   window 1 is the strictly sequential client).  The client CPU is
   serial: responses queue for the per-object processing time.

   Built on the same simulator and cost constants as the query-shipping
   server, so the two are directly comparable. *)

type config = {
  costs : Hf_sim.Costs.t;
  bandwidth : float; (* payload bytes per second on the wire *)
  window : int; (* max outstanding fetches *)
}

let default_config =
  { costs = Hf_sim.Costs.paper; bandwidth = 1_250_000.0 (* 10 Mbit/s Ethernet *); window = 1 }

type outcome = {
  results : Hf_data.Oid.t list; (* in discovery order *)
  result_set : Hf_data.Oid.Set.t;
  response_time : float;
  messages : int; (* requests + responses *)
  bytes : int; (* payload bytes moved *)
  objects_fetched : int; (* remote fetches *)
  objects_visited : int;
}

type state = {
  sim : Hf_sim.Sim.t;
  config : config;
  origin : int;
  locate : Hf_data.Oid.t -> int;
  find : Hf_data.Oid.t -> Hf_data.Hobject.t option;
  pointer_key : string;
  matches : Hf_data.Hobject.t -> bool;
  frontier : Hf_data.Oid.t Hf_util.Deque.t;
  mutable visited : Hf_data.Oid.Set.t;
  mutable outstanding : int;
  mutable busy_until : float; (* client CPU *)
  mutable results_rev : Hf_data.Oid.t list;
  mutable result_set : Hf_data.Oid.Set.t;
  mutable messages : int;
  mutable bytes : int;
  mutable fetched : int;
  mutable visited_count : int;
}

let request_bytes = 64 (* open + read for a named file *)

(* The client has received (or locally read) an object: occupy the
   client CPU for the processing time, then enqueue unseen pointer
   targets and keep the fetch pipeline full. *)
let rec arrive st obj =
  let start = Float.max (Hf_sim.Sim.now st.sim) st.busy_until in
  let finish = start +. st.config.costs.process in
  st.busy_until <- finish;
  Hf_sim.Sim.schedule_at st.sim ~time:finish (fun () ->
      st.visited_count <- st.visited_count + 1;
      if st.matches obj then begin
        let oid = Hf_data.Hobject.oid obj in
        if not (Hf_data.Oid.Set.mem oid st.result_set) then begin
          st.result_set <- Hf_data.Oid.Set.add oid st.result_set;
          st.results_rev <- oid :: st.results_rev;
          st.busy_until <- st.busy_until +. st.config.costs.result_add
        end
      end;
      List.iter
        (fun target ->
          if not (Hf_data.Oid.Set.mem target st.visited) then begin
            st.visited <- Hf_data.Oid.Set.add target st.visited;
            Hf_util.Deque.push_back st.frontier target
          end)
        (Hf_data.Hobject.pointers_with_key obj ~key:st.pointer_key);
      fill_pipeline st)

and fill_pipeline st =
  if st.outstanding < st.config.window then begin
    match Hf_util.Deque.pop_front st.frontier with
    | None -> ()
    | Some oid ->
      (match st.find oid with
       | None -> () (* dangling pointer: nothing to fetch *)
       | Some obj ->
         if st.locate oid = st.origin then
           (* Local object: no network, just client processing. *)
           arrive st obj
         else begin
           st.outstanding <- st.outstanding + 1;
           st.fetched <- st.fetched + 1;
           st.messages <- st.messages + 2;
           let body_bytes = Hf_data.Hobject.byte_size obj in
           st.bytes <- st.bytes + request_bytes + body_bytes;
           let costs = st.config.costs in
           let transfer = float_of_int body_bytes /. st.config.bandwidth in
           let round_trip =
             costs.msg_send +. costs.msg_transit +. costs.msg_recv (* request *)
             +. costs.msg_send +. costs.msg_transit +. transfer +. costs.msg_recv
             (* response *)
           in
           Hf_sim.Sim.schedule st.sim ~delay:round_trip (fun () ->
               st.outstanding <- st.outstanding - 1;
               arrive st obj;
               fill_pipeline st)
         end);
      fill_pipeline st
  end

let run_closure ?(config = default_config) ~origin ~locate ~find ~pointer_key ~matches initial
    =
  if config.window < 1 then invalid_arg "File_server.run_closure: window must be >= 1";
  let st =
    {
      sim = Hf_sim.Sim.create ();
      config;
      origin;
      locate;
      find;
      pointer_key;
      matches;
      frontier = Hf_util.Deque.create ();
      visited = Hf_data.Oid.Set.empty;
      outstanding = 0;
      busy_until = 0.0;
      results_rev = [];
      result_set = Hf_data.Oid.Set.empty;
      messages = 0;
      bytes = 0;
      fetched = 0;
      visited_count = 0;
    }
  in
  List.iter
    (fun oid ->
      if not (Hf_data.Oid.Set.mem oid st.visited) then begin
        st.visited <- Hf_data.Oid.Set.add oid st.visited;
        Hf_util.Deque.push_back st.frontier oid
      end)
    initial;
  fill_pipeline st;
  Hf_sim.Sim.run st.sim;
  {
    results = List.rev st.results_rev;
    result_set = st.result_set;
    response_time = Float.max (Hf_sim.Sim.now st.sim) st.busy_until;
    messages = st.messages;
    bytes = st.bytes;
    objects_fetched = st.fetched;
    objects_visited = st.visited_count;
  }
