(* Store snapshots: save a site's object store to a file and restore it.

   The paper's prototype was a main-memory database; a production
   deployment still needs its sites to survive restarts.  Snapshots use
   the same binary conventions as the wire codec (no Marshal, no host
   dependence):

     magic "HFSNAP1\n"
     varint  site number
     varint  next serial (allocation high-water mark)
     varint  object count
     per object: framed [Codec.write_hobject] payload

   Framing each object individually keeps a truncated file detectable
   at the exact object where it fails. *)

let magic = "HFSNAP1\n"

exception Corrupt of string

let fail fmt = Fmt.kstr (fun message -> raise (Corrupt message)) fmt

let encode store =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Hf_proto.Codec.write_varint buf (Hf_data.Store.site store);
  Hf_proto.Codec.write_varint buf (Hf_data.Store.next_serial store);
  Hf_proto.Codec.write_varint buf (Hf_data.Store.cardinal store);
  (* stable order makes snapshots byte-for-byte reproducible *)
  let objects =
    List.sort
      (fun a b -> Hf_data.Oid.compare (Hf_data.Hobject.oid a) (Hf_data.Hobject.oid b))
      (Hf_data.Store.fold store (fun obj acc -> obj :: acc) [])
  in
  List.iter
    (fun obj ->
      let payload = Buffer.create 256 in
      Hf_proto.Codec.write_hobject payload obj;
      Buffer.add_string buf (Hf_proto.Frame.frame (Buffer.contents payload)))
    objects;
  Buffer.contents buf

let decode data =
  let n = String.length data in
  if n < String.length magic || String.sub data 0 (String.length magic) <> magic then
    fail "bad magic: not a HyperFile snapshot";
  let body = String.sub data (String.length magic) (n - String.length magic) in
  let r = Hf_proto.Codec.reader body in
  let site, next_serial, count =
    try
      let site = Hf_proto.Codec.read_varint r in
      let next_serial = Hf_proto.Codec.read_varint r in
      let count = Hf_proto.Codec.read_varint r in
      (site, next_serial, count)
    with Hf_proto.Codec.Decode_error message -> fail "corrupt header: %s" message
  in
  let store = Hf_data.Store.create ~site in
  let decoder = Hf_proto.Frame.Decoder.create () in
  Hf_proto.Frame.Decoder.feed decoder (Hf_proto.Codec.remaining r);
  for index = 0 to count - 1 do
    match Hf_proto.Frame.Decoder.next decoder with
    | None -> fail "truncated snapshot: object %d of %d missing" (index + 1) count
    | Some payload -> (
        match Hf_proto.Codec.with_reader payload Hf_proto.Codec.read_hobject with
        | obj -> (
            match Hf_data.Store.insert store obj with
            | () -> ()
            | exception Invalid_argument _ -> fail "duplicate object %d in snapshot" index)
        | exception Hf_proto.Codec.Decode_error message ->
          fail "corrupt object %d: %s" index message)
  done;
  if Hf_proto.Frame.Decoder.buffered_bytes decoder > 0 then
    fail "trailing bytes after the last object";
  Hf_data.Store.advance_serial store next_serial;
  store

let save store ~path =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (encode store))

let load ~path =
  let data = In_channel.with_open_bin path In_channel.input_all in
  decode data
