(** External storage for large values (the disk half of the paper's
    main-memory design: "disk access is only required to obtain large
    items").

    An append-only data file holds big blobs; [externalize] swaps a
    store's large blob tuples for small handle tuples (type tag prefixed
    ["External:"]), keeping all search information resident so queries
    are unaffected.  Applications call {!get}/{!fetch} only when a large
    item is actually displayed. *)

type t

type handle = { offset : int; length : int }

exception Corrupt of string

val open_ : path:string -> t
(** Open or create the data file (appends to an existing one). *)

val close : t -> unit

val put : t -> string -> handle
(** Append a blob; returns its handle. *)

val get : t -> handle -> string
(** Read a blob back. Raises [Corrupt] on bad handles or torn data. *)

val handle_value : handle -> Hf_data.Value.t
(** Encode as a tuple data value. *)

val handle_of_value : Hf_data.Value.t -> handle option

val external_prefix : string
(** Type-tag prefix of handle tuples (["External:"]). *)

val is_external_tuple : Hf_data.Tuple.t -> bool

val externalize : t -> Hf_data.Store.t -> threshold:int -> int
(** Move every blob of at least [threshold] bytes to disk, replacing its
    tuple with a handle tuple; returns the number moved. *)

val rehydrate : t -> Hf_data.Store.t -> int
(** Inverse of {!externalize}: load every handle tuple's blob back.
    Raises [Corrupt] on malformed handles. *)

val fetch : t -> Hf_data.Hobject.t -> key:string -> string option
(** The display path: read the externalized blob stored under [key] in
    the object, if any. *)

val size : t -> int
(** Current data-file size in bytes. *)
