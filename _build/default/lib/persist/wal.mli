(** Write-ahead log for a site's store.

    Recovery = load the latest {!Snapshot} + replay the log tail.  Every
    record is individually framed, so a torn final write (the normal
    crash case) stops replay cleanly at the last complete record.
    Replay is idempotent over overlapping snapshot/log windows. *)

type record =
  | Insert of Hf_data.Hobject.t
  | Replace of Hf_data.Hobject.t
  | Remove of Hf_data.Oid.t

exception Corrupt of string

val encode_record : record -> string
(** Framed bytes for one record. *)

val decode_record : string -> record
(** From a frame payload. Raises [Corrupt]. *)

(** {1 Raw writer} *)

type writer

val open_writer : ?truncate:bool -> string -> writer
(** Open (append mode unless [truncate]). *)

val append : ?sync:bool -> writer -> record -> unit
(** Write one record and flush. *)

val records_written : writer -> int

val close_writer : writer -> unit

(** {1 Replay} *)

type replay = {
  applied : int;
  truncated : bool;
      (** a torn partial record was found (and ignored) at the tail. *)
}

val replay : Hf_data.Store.t -> path:string -> replay
(** Apply every complete record to the store; missing file = empty log.
    Raises [Corrupt] on structurally invalid complete records. *)

(** {1 Logged store}

    A store wrapper whose mutations are durably logged. *)

type logged

val open_logged :
  site:int -> log_path:string -> snapshot_path:string -> logged * replay
(** Recover from snapshot (if present) + log tail, then keep logging. *)

val store : logged -> Hf_data.Store.t
(** Read access; do not mutate directly. *)

val insert : logged -> Hf_data.Hobject.t -> unit
val replace : logged -> Hf_data.Hobject.t -> unit
val remove : logged -> Hf_data.Oid.t -> unit
val create_object : logged -> Hf_data.Tuple.t list -> Hf_data.Hobject.t

val checkpoint : logged -> snapshot_path:string -> log_path:string -> logged
(** Write a snapshot and truncate the log; returns the handle to keep
    using. *)

val close : logged -> unit
