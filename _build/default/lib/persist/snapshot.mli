(** Store snapshots: persist a site's object store and restore it.

    Binary format built on the wire codec (no [Marshal], no host-order
    dependence); each object is individually framed so truncation is
    detected at the exact object where the file ends.  Snapshots are
    byte-for-byte reproducible (objects are written in oid order) and
    preserve the serial high-water mark, so names issued after a restore
    never collide with saved ones. *)

exception Corrupt of string

val magic : string
(** File magic ("HFSNAP1\n"). *)

val encode : Hf_data.Store.t -> string
(** Snapshot bytes for a store. *)

val decode : string -> Hf_data.Store.t
(** Rebuild a store. Raises [Corrupt] on bad magic, truncation,
    trailing bytes, duplicate or undecodable objects. *)

val save : Hf_data.Store.t -> path:string -> unit

val load : path:string -> Hf_data.Store.t
(** Raises [Corrupt] as {!decode}, and [Sys_error] on I/O failures. *)
