lib/persist/blob_store.mli: Hf_data
