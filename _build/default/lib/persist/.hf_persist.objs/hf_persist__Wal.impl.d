lib/persist/wal.ml: Buffer Char Hf_data Hf_proto In_channel List Out_channel Printf Snapshot String Sys
