lib/persist/blob_store.ml: Buffer Hf_data Hf_proto In_channel Int64 List Option Out_channel Printf Scanf String Sys Unix
