lib/persist/wal.mli: Hf_data
