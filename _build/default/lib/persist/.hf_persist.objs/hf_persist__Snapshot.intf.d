lib/persist/snapshot.mli: Hf_data
