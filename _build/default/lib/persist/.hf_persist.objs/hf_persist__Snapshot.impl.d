lib/persist/snapshot.ml: Buffer Fmt Hf_data Hf_proto In_channel List Out_channel String
