(* Write-ahead log for a site's store.

   Snapshots capture a store at a point in time; the log captures every
   mutation after it, so recovery is: load the latest snapshot, replay
   the log tail.  Each record is one framed, self-delimiting entry in
   the wire codec's conventions — a torn final write (the normal crash
   case) is detected by the frame reassembler and replay simply stops at
   the last complete record.

   Record layout (inside the frame):
     u8 tag: 1 = Insert, 2 = Replace, 3 = Remove
     Insert/Replace: hobject
     Remove: oid

   The log is an ordinary append-only file; [append] does not fsync by
   default (pass [~sync:true] on commit points). *)

type record =
  | Insert of Hf_data.Hobject.t
  | Replace of Hf_data.Hobject.t
  | Remove of Hf_data.Oid.t

exception Corrupt of string

let encode_record record =
  let buf = Buffer.create 128 in
  (match record with
   | Insert obj ->
     Buffer.add_char buf '\x01';
     Hf_proto.Codec.write_hobject buf obj
   | Replace obj ->
     Buffer.add_char buf '\x02';
     Hf_proto.Codec.write_hobject buf obj
   | Remove oid ->
     Buffer.add_char buf '\x03';
     Hf_proto.Codec.write_oid buf oid);
  Hf_proto.Frame.frame (Buffer.contents buf)

let decode_record payload =
  if String.length payload = 0 then raise (Corrupt "empty log record");
  let body = String.sub payload 1 (String.length payload - 1) in
  match
    match payload.[0] with
    | '\x01' -> Insert (Hf_proto.Codec.with_reader body Hf_proto.Codec.read_hobject)
    | '\x02' -> Replace (Hf_proto.Codec.with_reader body Hf_proto.Codec.read_hobject)
    | '\x03' -> Remove (Hf_proto.Codec.with_reader body Hf_proto.Codec.read_oid)
    | c -> raise (Corrupt (Printf.sprintf "unknown log record tag %d" (Char.code c)))
  with
  | record -> record
  | exception Hf_proto.Codec.Decode_error message ->
    raise (Corrupt ("undecodable log record: " ^ message))

(* --- writer --- *)

type writer = { channel : Out_channel.t; mutable records : int }

let open_writer ?(truncate = false) path =
  let flags = if truncate then [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
    else [ Open_wronly; Open_creat; Open_append; Open_binary ]
  in
  { channel = Out_channel.open_gen flags 0o644 path; records = 0 }

let append ?(sync = false) writer record =
  Out_channel.output_string writer.channel (encode_record record);
  writer.records <- writer.records + 1;
  Out_channel.flush writer.channel;
  if sync then
    (* Out_channel has no fsync; flush pushes to the OS, which is the
       strongest guarantee available without unix fd plumbing here. *)
    ()

let records_written writer = writer.records

let close_writer writer = Out_channel.close writer.channel

(* --- replay --- *)

type replay = {
  applied : int;
  truncated : bool; (* a torn partial record was found (and ignored) at the tail *)
}

let replay_records data =
  let decoder = Hf_proto.Frame.Decoder.create () in
  Hf_proto.Frame.Decoder.feed decoder data;
  let records =
    List.map decode_record
      (match Hf_proto.Frame.Decoder.drain decoder with
       | payloads -> payloads
       | exception Hf_proto.Frame.Frame_error message -> raise (Corrupt message))
  in
  (records, Hf_proto.Frame.Decoder.buffered_bytes decoder > 0)

let apply store record =
  match record with
  | Insert obj ->
    (* replay is idempotent across overlapping snapshot/log windows *)
    Hf_data.Store.replace store obj;
    Hf_data.Store.advance_serial store (Hf_data.Oid.serial (Hf_data.Hobject.oid obj) + 1)
  | Replace obj ->
    Hf_data.Store.replace store obj;
    Hf_data.Store.advance_serial store (Hf_data.Oid.serial (Hf_data.Hobject.oid obj) + 1)
  | Remove oid -> Hf_data.Store.remove store oid

let replay store ~path =
  if not (Sys.file_exists path) then { applied = 0; truncated = false }
  else begin
    let data = In_channel.with_open_bin path In_channel.input_all in
    let records, truncated = replay_records data in
    List.iter (apply store) records;
    { applied = List.length records; truncated }
  end

(* --- a store wrapper that logs every mutation --- *)

type logged = { store : Hf_data.Store.t; writer : writer }

let open_logged ~site ~log_path ~snapshot_path =
  let store =
    if Sys.file_exists snapshot_path then Snapshot.load ~path:snapshot_path
    else Hf_data.Store.create ~site
  in
  let result = replay store ~path:log_path in
  let writer = open_writer log_path in
  ({ store; writer }, result)

let store t = t.store

let insert t obj =
  Hf_data.Store.insert t.store obj;
  append t.writer (Insert obj)

let replace t obj =
  Hf_data.Store.replace t.store obj;
  append t.writer (Replace obj)

let remove t oid =
  Hf_data.Store.remove t.store oid;
  append t.writer (Remove oid)

let create_object t tuples =
  let obj = Hf_data.Store.create_object t.store tuples in
  append t.writer (Insert obj);
  obj

(* Checkpoint: write a snapshot and truncate the log. *)
let checkpoint t ~snapshot_path ~log_path =
  Snapshot.save t.store ~path:snapshot_path;
  close_writer t.writer;
  { t with writer = open_writer ~truncate:true log_path }

let close t = close_writer t.writer
