(* External storage for large values.

   The paper's prototype is a main-memory database that keeps "all of
   the pointers, keywords, and other such search information" resident
   "so that disk access is only required to obtain large items"
   (Section 2).  This module is that disk half: an append-only data file
   holding big blobs, plus [externalize]/[rehydrate] to swap a store's
   large Text/Blob tuples for small handle tuples and back.

   Queries never follow handles — search information stays in memory —
   so evaluation is unaffected; an application dereferences a handle
   with [get] only when it actually displays the item.

   Data file layout: per blob, a varint length followed by the raw
   bytes.  Handles are (offset, length) pairs; [get] validates both
   bounds and the header. *)

type t = {
  path : string;
  mutable channel : Out_channel.t;
  mutable size : int; (* current end offset *)
}

type handle = { offset : int; length : int }

exception Corrupt of string

let open_ ~path =
  let size = if Sys.file_exists path then (Unix.stat path).Unix.st_size else 0 in
  let channel = Out_channel.open_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 path in
  { path; channel; size }

let close t = Out_channel.close t.channel

let put t data =
  let header = Buffer.create 8 in
  Hf_proto.Codec.write_varint header (String.length data);
  let header = Buffer.contents header in
  Out_channel.output_string t.channel header;
  Out_channel.output_string t.channel data;
  Out_channel.flush t.channel;
  let handle = { offset = t.size; length = String.length header + String.length data } in
  t.size <- t.size + handle.length;
  handle

let get t { offset; length } =
  if offset < 0 || length < 0 || offset + length > t.size then
    raise (Corrupt "blob handle out of bounds");
  In_channel.with_open_bin t.path (fun ic ->
      In_channel.seek ic (Int64.of_int offset);
      match In_channel.really_input_string ic length with
      | None -> raise (Corrupt "truncated blob file")
      | Some chunk ->
        let r = Hf_proto.Codec.reader chunk in
        (match Hf_proto.Codec.read_varint r with
         | declared ->
           let body = Hf_proto.Codec.remaining r in
           if String.length body <> declared then raise (Corrupt "blob length mismatch");
           body
         | exception Hf_proto.Codec.Decode_error message -> raise (Corrupt message)))

(* --- handle <-> tuple encoding --- *)

let external_prefix = "External:"

let handle_value { offset; length } =
  Hf_data.Value.str (Printf.sprintf "@%d+%d" offset length)

let handle_of_value value =
  match Hf_data.Value.as_string value with
  | None -> None
  | Some s -> Scanf.sscanf_opt s "@%d+%d" (fun offset length -> { offset; length })

let is_external_tuple tuple =
  String.length (Hf_data.Tuple.ttype tuple) > String.length external_prefix
  && String.sub (Hf_data.Tuple.ttype tuple) 0 (String.length external_prefix) = external_prefix

(* Swap every large blob-valued tuple for a handle tuple.  Returns the
   number of blobs moved to disk. *)
let externalize t store ~threshold =
  let moved = ref 0 in
  let updates = ref [] in
  Hf_data.Store.iter store (fun obj ->
      let changed = ref false in
      let tuples =
        List.map
          (fun tuple ->
            match Hf_data.Tuple.data tuple with
            | Hf_data.Value.Blob data when String.length data >= threshold ->
              changed := true;
              incr moved;
              let handle = put t data in
              Hf_data.Tuple.make
                ~ttype:(external_prefix ^ Hf_data.Tuple.ttype tuple)
                ~key:(Hf_data.Tuple.key tuple) ~data:(handle_value handle)
            | _ -> tuple)
          (Hf_data.Hobject.tuples obj)
      in
      if !changed then
        updates := Hf_data.Hobject.of_tuples (Hf_data.Hobject.oid obj) tuples :: !updates);
  List.iter (Hf_data.Store.replace store) !updates;
  !moved

(* Load every handle tuple's blob back into the object. *)
let rehydrate t store =
  let restored = ref 0 in
  let updates = ref [] in
  Hf_data.Store.iter store (fun obj ->
      let changed = ref false in
      let tuples =
        List.map
          (fun tuple ->
            if is_external_tuple tuple then begin
              match handle_of_value (Hf_data.Tuple.data tuple) with
              | None -> raise (Corrupt "malformed blob handle tuple")
              | Some handle ->
                changed := true;
                incr restored;
                let original_ttype =
                  String.sub (Hf_data.Tuple.ttype tuple) (String.length external_prefix)
                    (String.length (Hf_data.Tuple.ttype tuple) - String.length external_prefix)
                in
                Hf_data.Tuple.make ~ttype:original_ttype ~key:(Hf_data.Tuple.key tuple)
                  ~data:(Hf_data.Value.blob (get t handle))
            end
            else tuple)
          (Hf_data.Hobject.tuples obj)
      in
      if !changed then
        updates := Hf_data.Hobject.of_tuples (Hf_data.Hobject.oid obj) tuples :: !updates);
  List.iter (Hf_data.Store.replace store) !updates;
  !restored

let fetch t obj ~key =
  List.find_map
    (fun tuple ->
      if
        is_external_tuple tuple
        && Hf_data.Value.equal (Hf_data.Tuple.key tuple) (Hf_data.Value.str key)
      then Option.map (get t) (handle_of_value (Hf_data.Tuple.data tuple))
      else None)
    (Hf_data.Hobject.tuples obj)

let size t = t.size
