(** Object identifiers with R*-style naming (paper, Section 4).

    An object's identity is the pair (birth site, serial number).  Each
    name also carries a {e presumed current site} hint used to route
    dereferences; the hint is advisory and excluded from equality,
    ordering and hashing.  The birth site is the final arbiter of an
    object's actual location when the hint is stale. *)

type t

val make : birth_site:int -> serial:int -> t
(** Fresh name born at [birth_site]; the hint initially points there.
    Raises [Invalid_argument] on negative components. *)

val with_hint : t -> int -> t
(** Same identity, updated presumed-current-site hint. *)

val birth_site : t -> int

val serial : t -> int

val hint : t -> int
(** Presumed current site of the object. *)

val equal : t -> t -> bool
(** Identity equality; ignores the hint. *)

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Table : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
