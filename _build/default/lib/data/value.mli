(** Field values of HyperFile tuples.

    HyperFile interprets only the simple types used for retrieval —
    strings, numbers, pointers — and treats everything else as
    uninterpreted bits ([Blob]), exactly as the paper's file-system
    philosophy prescribes. *)

type t =
  | Str of string
  | Num of int
  | Real of float
  | Ptr of Oid.t  (** reference to another object, possibly remote. *)
  | Blob of string  (** arbitrary bits: text bodies, bitmaps, object code. *)

val str : string -> t
val num : int -> t
val real : float -> t
val ptr : Oid.t -> t
val blob : string -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val as_pointer : t -> Oid.t option
val as_string : t -> string option
val as_number : t -> int option

val byte_size : t -> int
(** Approximate serialized size; used by the ship-data baseline's
    communication-cost model. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
