(* Object identifiers, following the paper's Section 4 naming scheme (a
   variant of R*'s): the identity of an object is its birth site plus a
   serial number issued by that site; a *presumed current site* hint
   travels with each name so a dereference can usually go straight to the
   right machine.  The hint is advisory — equality, ordering and hashing
   ignore it, and the birth site remains the final arbiter of the object's
   location. *)

type t = { birth_site : int; serial : int; hint : int }

let make ~birth_site ~serial =
  if birth_site < 0 then invalid_arg "Oid.make: negative birth_site";
  if serial < 0 then invalid_arg "Oid.make: negative serial";
  { birth_site; serial; hint = birth_site }

let with_hint t hint = { t with hint }

let birth_site t = t.birth_site

let serial t = t.serial

let hint t = t.hint

let equal a b = a.birth_site = b.birth_site && a.serial = b.serial

let compare a b =
  match Int.compare a.birth_site b.birth_site with
  | 0 -> Int.compare a.serial b.serial
  | c -> c

let hash t = (t.birth_site * 1000003) lxor t.serial

let pp ppf t =
  if t.hint = t.birth_site then Fmt.pf ppf "%d.%d" t.birth_site t.serial
  else Fmt.pf ppf "%d.%d@%d" t.birth_site t.serial t.hint

let to_string t = Fmt.str "%a" pp t

module As_key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Table = Hashtbl.Make (As_key)
module Set = Set.Make (As_key)
module Map = Map.Make (As_key)
