lib/data/oid.mli: Format Hashtbl Map Set
