lib/data/tuple.mli: Format Oid Value
