lib/data/store.ml: Hobject List Oid Tuple
