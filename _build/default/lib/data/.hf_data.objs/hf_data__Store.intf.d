lib/data/store.mli: Hobject Oid Tuple
