lib/data/oid.ml: Fmt Hashtbl Int Map Set
