lib/data/hobject.mli: Format Oid Tuple
