lib/data/hobject.ml: Fmt List Oid String Tuple Value
