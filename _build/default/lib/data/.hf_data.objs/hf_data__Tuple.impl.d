lib/data/tuple.ml: Fmt String Value
