lib/data/value.ml: Float Fmt Int Oid String
