lib/data/value.mli: Format Oid
