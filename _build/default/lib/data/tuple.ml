(* Tuples are the unit of structure inside an object: a type tag that
   tells HyperFile how to interpret the remaining fields, an
   application-chosen key, and a data field.  Type tags are open — an
   application can define "Object_Code" and HyperFile will store it
   without understanding it. *)

type t = { ttype : string; key : Value.t; data : Value.t }

let make ~ttype ~key ~data =
  if String.length ttype = 0 then invalid_arg "Tuple.make: empty type tag";
  { ttype; key; data }

let ttype t = t.ttype

let key t = t.key

let data t = t.data

(* Well-known type tags used throughout the paper's examples.  These are
   conventions between applications, not a schema: HyperFile itself only
   checks that a Pointer tuple's data field is a pointer. *)
let type_string = "String"
let type_text = "Text"
let type_pointer = "Pointer"
let type_keyword = "Keyword"
let type_number = "Number"

let string_ ~key v = make ~ttype:type_string ~key:(Value.str key) ~data:(Value.str v)

let text ~key body = make ~ttype:type_text ~key:(Value.str key) ~data:(Value.blob body)

let pointer ~key oid = make ~ttype:type_pointer ~key:(Value.str key) ~data:(Value.ptr oid)

let keyword word = make ~ttype:type_keyword ~key:(Value.str word) ~data:(Value.num 1)

let number ~key n = make ~ttype:type_number ~key:(Value.str key) ~data:(Value.num n)

let is_pointer t = String.equal t.ttype type_pointer

let pointer_target t =
  if is_pointer t then Value.as_pointer t.data else None

let equal a b =
  String.equal a.ttype b.ttype && Value.equal a.key b.key && Value.equal a.data b.data

let compare a b =
  match String.compare a.ttype b.ttype with
  | 0 -> (match Value.compare a.key b.key with 0 -> Value.compare a.data b.data | c -> c)
  | c -> c

let byte_size t = 5 + String.length t.ttype + Value.byte_size t.key + Value.byte_size t.data

let pp ppf t = Fmt.pf ppf "(%s, %a, %a)" t.ttype Value.pp t.key Value.pp t.data

let to_string t = Fmt.str "%a" pp t
