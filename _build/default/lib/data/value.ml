(* Field values.  HyperFile only interprets simple types (strings,
   numbers, keywords, pointers); [Blob] carries arbitrary uninterpreted
   bits — text bodies, bitmaps, object code — exactly as a file system
   would. *)

type t =
  | Str of string
  | Num of int
  | Real of float
  | Ptr of Oid.t
  | Blob of string

let str s = Str s

let num n = Num n

let real f = Real f

let ptr oid = Ptr oid

let blob b = Blob b

let equal a b =
  match a, b with
  | Str x, Str y -> String.equal x y
  | Num x, Num y -> Int.equal x y
  | Real x, Real y -> Float.equal x y
  | Ptr x, Ptr y -> Oid.equal x y
  | Blob x, Blob y -> String.equal x y
  | (Str _ | Num _ | Real _ | Ptr _ | Blob _), _ -> false

let compare a b =
  let rank = function Str _ -> 0 | Num _ -> 1 | Real _ -> 2 | Ptr _ -> 3 | Blob _ -> 4 in
  match a, b with
  | Str x, Str y -> String.compare x y
  | Num x, Num y -> Int.compare x y
  | Real x, Real y -> Float.compare x y
  | Ptr x, Ptr y -> Oid.compare x y
  | Blob x, Blob y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let as_pointer = function Ptr oid -> Some oid | Str _ | Num _ | Real _ | Blob _ -> None

let as_string = function Str s -> Some s | Num _ | Real _ | Ptr _ | Blob _ -> None

let as_number = function Num n -> Some n | Str _ | Real _ | Ptr _ | Blob _ -> None

(* Approximate wire size in bytes; drives the communication-cost model of
   the ship-data baseline. *)
let byte_size = function
  | Str s -> 5 + String.length s
  | Num _ -> 9
  | Real _ -> 9
  | Ptr _ -> 13
  | Blob b -> 5 + String.length b

let pp ppf = function
  | Str s -> Fmt.pf ppf "%S" s
  | Num n -> Fmt.int ppf n
  | Real f -> Fmt.float ppf f
  | Ptr oid -> Fmt.pf ppf "^%a" Oid.pp oid
  | Blob b -> Fmt.pf ppf "<blob:%d bytes>" (String.length b)

let to_string v = Fmt.str "%a" pp v
