(* A HyperFile object: an identifier plus a set of tuples.  The paper
   models objects as sets; we keep tuples in insertion order (which
   applications find convenient for display) but [add] suppresses exact
   duplicates so set semantics hold. *)

type t = { oid : Oid.t; tuples : Tuple.t list }

let create oid = { oid; tuples = [] }

let of_tuples oid tuples =
  let add_unique acc tuple = if List.exists (Tuple.equal tuple) acc then acc else tuple :: acc in
  { oid; tuples = List.rev (List.fold_left add_unique [] tuples) }

let oid t = t.oid

let tuples t = t.tuples

let cardinal t = List.length t.tuples

let add t tuple =
  if List.exists (Tuple.equal tuple) t.tuples then t
  else { t with tuples = t.tuples @ [ tuple ] }

let remove t tuple = { t with tuples = List.filter (fun u -> not (Tuple.equal tuple u)) t.tuples }

let mem t tuple = List.exists (Tuple.equal tuple) t.tuples

let pointers t = List.filter_map Tuple.pointer_target t.tuples

let pointers_with_key t ~key =
  let match_tuple tuple =
    match Tuple.pointer_target tuple with
    | Some target when Value.equal (Tuple.key tuple) (Value.str key) -> Some target
    | Some _ | None -> None
  in
  List.filter_map match_tuple t.tuples

let find_all t ~ttype =
  List.filter (fun tuple -> String.equal (Tuple.ttype tuple) ttype) t.tuples

let find_string t ~key =
  let match_tuple tuple =
    if
      String.equal (Tuple.ttype tuple) Tuple.type_string
      && Value.equal (Tuple.key tuple) (Value.str key)
    then Value.as_string (Tuple.data tuple)
    else None
  in
  List.find_map match_tuple t.tuples

let keywords t =
  let keyword_of tuple =
    if String.equal (Tuple.ttype tuple) Tuple.type_keyword then Value.as_string (Tuple.key tuple)
    else None
  in
  List.filter_map keyword_of t.tuples

let byte_size t = 13 + List.fold_left (fun acc tuple -> acc + Tuple.byte_size tuple) 0 t.tuples

let equal a b =
  Oid.equal a.oid b.oid
  && List.length a.tuples = List.length b.tuples
  && List.for_all (fun tuple -> List.exists (Tuple.equal tuple) b.tuples) a.tuples

let pp ppf t =
  Fmt.pf ppf "@[<v 2>object %a {@,%a@]@,}" Oid.pp t.oid
    (Fmt.list ~sep:Fmt.cut Tuple.pp)
    t.tuples

let to_string t = Fmt.str "%a" pp t
