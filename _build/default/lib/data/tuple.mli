(** HyperFile tuples: (type, key, data) triples (paper, Section 2).

    The type tag tells HyperFile how to interpret the key and data
    fields; the key is chosen by the application to state the tuple's
    purpose; the data field holds either a simple interpreted value or
    uninterpreted bits.  Type tags are open: applications may invent new
    ones as inter-application conventions. *)

type t

val make : ttype:string -> key:Value.t -> data:Value.t -> t
(** Raises [Invalid_argument] on an empty type tag. *)

val ttype : t -> string
val key : t -> Value.t
val data : t -> Value.t

(** {1 Well-known type tags} *)

val type_string : string
val type_text : string
val type_pointer : string
val type_keyword : string
val type_number : string

(** {1 Convenience constructors} *)

val string_ : key:string -> string -> t
(** [(String, key, value)]. *)

val text : key:string -> string -> t
(** [(Text, key, <blob>)] — uninterpreted body. *)

val pointer : key:string -> Oid.t -> t
(** [(Pointer, key, ^oid)]. *)

val keyword : string -> t
(** [(Keyword, word, 1)] — presence-style keyword tuple. *)

val number : key:string -> int -> t
(** [(Number, key, n)]. *)

val is_pointer : t -> bool

val pointer_target : t -> Oid.t option
(** The referenced object when this is a pointer tuple. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val byte_size : t -> int
(** Approximate serialized size, for the ship-data baseline. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
