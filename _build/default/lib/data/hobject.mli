(** HyperFile objects: an identifier plus a set of tuples.

    ("Hobject" rather than "Object" to avoid clashing with the OCaml
    standard library.)  Tuples keep insertion order for display, but
    [add] suppresses duplicates so the paper's set semantics hold.
    Objects are immutable values; [Store] holds the current version. *)

type t

val create : Oid.t -> t
(** Empty object. *)

val of_tuples : Oid.t -> Tuple.t list -> t
(** Object with the given tuples (duplicates removed, first occurrence
    kept). *)

val oid : t -> Oid.t
val tuples : t -> Tuple.t list
val cardinal : t -> int

val add : t -> Tuple.t -> t
val remove : t -> Tuple.t -> t
val mem : t -> Tuple.t -> bool

val pointers : t -> Oid.t list
(** Targets of all pointer tuples, in tuple order. *)

val pointers_with_key : t -> key:string -> Oid.t list
(** Targets of pointer tuples whose key equals [key]. *)

val find_all : t -> ttype:string -> Tuple.t list
(** All tuples with the given type tag. *)

val find_string : t -> key:string -> string option
(** Data of the first (String, key, _) tuple. *)

val keywords : t -> string list
(** Keys of all keyword tuples. *)

val byte_size : t -> int
(** Approximate serialized size, for the ship-data baseline. *)

val equal : t -> t -> bool
(** Same oid and same tuple set (order-insensitive). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
