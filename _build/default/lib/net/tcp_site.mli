(** A real HyperFile site over TCP — the Section 3.2 protocol on actual
    sockets, using the same wire messages and codec the simulator
    accounts for.

    Lifecycle: {!create} each site (binds an ephemeral loopback port and
    starts its accept thread), collect the {!address}es, {!set_peers} on
    every site, then load stores and issue queries from any site with
    {!run_query}.  {!shutdown} closes sockets and stops threads.

    Objects live at their birth site ([Oid.birth_site] routes
    dereferences), as in the simulated cluster. *)

type t

val create : site:int -> ?batch:Hf_proto.Batch.flush_policy -> unit -> t
(** Bind 127.0.0.1 on an ephemeral port and start accepting.

    [batch] (default [Flush_at 1], i.e. unbatched) coalesces work items
    bound for the same destination into one [Work_batch] message with a
    single credit split; leftovers always flush before the site drains,
    so termination is never delayed.  Single-item flushes go out as
    plain [Deref_request]s — with the default policy the wire traffic is
    byte-identical to the unbatched protocol. *)

val address : t -> Unix.sockaddr

val set_peers : t -> Unix.sockaddr array -> unit
(** [peers.(i)] must be site [i]'s address (own entry included). *)

val store : t -> Hf_data.Store.t

val id : t -> int

type outcome = {
  results : Hf_data.Oid.t list;  (** arrival order at the originator. *)
  result_set : Hf_data.Oid.Set.t;
  bindings : (string * Hf_data.Value.t list) list;
  terminated : bool;
      (** [false] when the timeout expired first (e.g. a peer is down) —
          [results] then holds the partial answer. *)
  response_time : float;  (** wall-clock seconds. *)
  messages_sent : int;  (** wire messages this site sent for the query. *)
  bytes_sent : int;
}

val run_query :
  ?timeout:float -> t -> Hf_query.Program.t -> Hf_data.Oid.t list -> outcome
(** Issue a query from this site over the initial set and wait for the
    weighted-termination detector to recover all credit (default
    timeout 10 s). *)

val shutdown : t -> unit
(** Close the listener and all connections; idempotent. *)
