lib/net/tcp_site.ml: Array Bytes Condition Fun Hashtbl Hf_data Hf_engine Hf_proto Hf_termination Hf_util List Logs Mutex Queue String Thread Unix
