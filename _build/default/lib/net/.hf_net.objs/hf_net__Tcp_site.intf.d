lib/net/tcp_site.mli: Hf_data Hf_query Unix
