lib/net/tcp_site.mli: Hf_data Hf_proto Hf_query Unix
