(* Glob-style matching for string patterns in queries: '*' matches any
   (possibly empty) substring, '?' matches exactly one character, anything
   else matches itself.  Iterative backtracking algorithm: O(n*m) worst
   case, linear for patterns without '*'. *)

let matches ~pattern text =
  let np = String.length pattern and nt = String.length text in
  let rec go pi ti star_pi star_ti =
    if ti = nt then
      (* consume trailing '*'s *)
      let rec only_stars i = i = np || (pattern.[i] = '*' && only_stars (i + 1)) in
      if only_stars pi then true
      else if star_pi >= 0 && star_ti < nt then go (star_pi + 1) (star_ti + 1) star_pi (star_ti + 1)
      else false
    else if pi < np && pattern.[pi] = '*' then
      (* record backtrack point: '*' matches empty for now *)
      go (pi + 1) ti pi ti
    else if pi < np && (pattern.[pi] = '?' || pattern.[pi] = text.[ti]) then
      go (pi + 1) (ti + 1) star_pi star_ti
    else if star_pi >= 0 then
      (* backtrack: extend the last '*' by one character *)
      go (star_pi + 1) (star_ti + 1) star_pi (star_ti + 1)
    else false
  in
  go 0 0 (-1) (-1)

let is_literal pattern =
  not (String.exists (fun c -> c = '*' || c = '?') pattern)
