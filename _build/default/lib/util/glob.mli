(** Glob-style string matching for query patterns.

    ['*'] matches any (possibly empty) substring; ['?'] matches exactly
    one character; every other character matches itself. *)

val matches : pattern:string -> string -> bool
(** [matches ~pattern text] tests [text] against [pattern]. *)

val is_literal : string -> bool
(** [true] when the pattern contains no metacharacters (so equality
    suffices and indexes may be used). *)
