(* Functional-core double-ended queue (pair of lists, amortised O(1)).
   The query engine's working set is a deque so that the search order is a
   policy choice: push_back/pop_front gives breadth-first (the paper's
   recommendation, citing Kapidakis), push_front/pop_front gives
   depth-first. *)

type 'a t = {
  mutable front : 'a list;
  mutable back : 'a list; (* reversed *)
  mutable size : int;
}

let create () = { front = []; back = []; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let push_back t x =
  t.back <- x :: t.back;
  t.size <- t.size + 1

let push_front t x =
  t.front <- x :: t.front;
  t.size <- t.size + 1

let pop_front t =
  match t.front with
  | x :: rest ->
    t.front <- rest;
    t.size <- t.size - 1;
    Some x
  | [] ->
    (match List.rev t.back with
     | [] -> None
     | x :: rest ->
       t.front <- rest;
       t.back <- [];
       t.size <- t.size - 1;
       Some x)

let pop_back t =
  match t.back with
  | x :: rest ->
    t.back <- rest;
    t.size <- t.size - 1;
    Some x
  | [] ->
    (match List.rev t.front with
     | [] -> None
     | x :: rest ->
       t.back <- rest;
       t.front <- [];
       t.size <- t.size - 1;
       Some x)

let to_list t = t.front @ List.rev t.back

let clear t =
  t.front <- [];
  t.back <- [];
  t.size <- 0
