type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Mixing function of splitmix64 (Steele, Lea & Flood).  Chosen because it is
   tiny, has no global state, and makes every experiment reproducible from a
   single integer seed. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int t bound =
  if bound <= 0 then invalid_arg "Prng.next_int: bound must be positive";
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let next_float t =
  let mantissa = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  mantissa /. 9007199254740992.0 (* 2^53 *)

let next_bool t p = next_float t < p

let split t =
  let seed = Int64.to_int (next_int64 t) in
  { state = Int64.of_int seed }

let shuffle_in_place t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = next_int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(next_int t (Array.length arr))
