type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if n = 1 then sorted.(0)
  else begin
    (* Linear interpolation between closest ranks. *)
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  end

(* NaN would make the sort order (and thus every rank statistic)
   meaningless, so reject it up front instead of returning
   order-dependent garbage. *)
let reject_nan ~what samples =
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg (what ^ ": NaN sample"))
    samples

let percentile samples p =
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p out of range";
  reject_nan ~what:"Stats.percentile" samples;
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  percentile_sorted sorted p

let mean samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0.0 samples /. float_of_int n

let stddev samples =
  let n = Array.length samples in
  if n < 2 then 0.0
  else begin
    let m = mean samples in
    let sum_sq = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 samples in
    sqrt (sum_sq /. float_of_int (n - 1))
  end

let summarize samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  reject_nan ~what:"Stats.summarize" samples;
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  {
    count = n;
    mean = mean samples;
    stddev = stddev samples;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile_sorted sorted 0.5;
    p90 = percentile_sorted sorted 0.9;
    p99 = percentile_sorted sorted 0.99;
  }

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
