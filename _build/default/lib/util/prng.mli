(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in HyperFile — synthetic workload construction, key
    randomisation in the benchmark queries, property-test inputs — flows
    through this module so that every experiment is reproducible from a
    single integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val next_int : t -> int -> int
(** [next_int t bound] is uniform in [\[0, bound)]. Raises
    [Invalid_argument] if [bound <= 0]. *)

val next_float : t -> float
(** Uniform in [\[0, 1)]. *)

val next_bool : t -> float -> bool
(** [next_bool t p] is [true] with probability [p]. *)

val split : t -> t
(** Derive an independent generator, advancing [t]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen element. Raises [Invalid_argument] on an empty
    array. *)
