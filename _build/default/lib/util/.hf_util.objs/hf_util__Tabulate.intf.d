lib/util/tabulate.mli:
