lib/util/prng.mli:
