lib/util/glob.ml: String
