lib/util/glob.mli:
