lib/util/heap.mli:
