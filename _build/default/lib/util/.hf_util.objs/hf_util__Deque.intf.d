lib/util/deque.mli:
