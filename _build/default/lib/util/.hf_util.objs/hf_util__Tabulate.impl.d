lib/util/tabulate.ml: Buffer List Printf String
