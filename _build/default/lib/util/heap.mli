(** Binary min-heap with FIFO tie-breaking on equal priorities.

    Backbone of the discrete-event simulator's event queue: events at the
    same virtual time pop in the order they were scheduled, which keeps
    simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push t prio v] inserts [v] with priority [prio]. *)

val peek : 'a t -> (float * 'a) option
(** Minimum element, without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum element. *)

val clear : 'a t -> unit
