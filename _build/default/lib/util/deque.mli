(** Double-ended queue with amortised O(1) operations at both ends.

    Used for the query engine's working set; the choice of ends determines
    the graph search order (FIFO = breadth-first, LIFO = depth-first). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit

val push_front : 'a t -> 'a -> unit

val pop_front : 'a t -> 'a option

val pop_back : 'a t -> 'a option

val to_list : 'a t -> 'a list
(** Elements front-to-back. *)

val clear : 'a t -> unit
