(* Object naming and mobility (paper, Section 4).

   HyperFile names follow a variant of R*'s scheme: each object id
   carries its birth site and a presumed current site.  The birth site
   keeps the authoritative record of where its objects currently live,
   so moving an object updates exactly one registry entry — no global
   name server, and pointers elsewhere are corrected lazily as they are
   used (stale hints cost extra hops, never wrong answers).

   [t] models the union of the per-birth-site registries; entries are
   keyed by (birth site, serial), so each site could hold exactly its
   own slice. *)

type t = {
  n_sites : int;
  registry : int Hf_data.Oid.Table.t; (* authoritative current site, by identity *)
  mutable moves : int;
  mutable forwards : int; (* resolutions that needed the birth site *)
}

let create ~n_sites =
  if n_sites <= 0 then invalid_arg "Name_service.create: n_sites must be positive";
  { n_sites; registry = Hf_data.Oid.Table.create 64; moves = 0; forwards = 0 }

let check_site t site =
  if site < 0 || site >= t.n_sites then invalid_arg "Name_service: site out of range"

let register t oid =
  (* A new object is born where its id says it was born. *)
  Hf_data.Oid.Table.replace t.registry oid (Hf_data.Oid.birth_site oid)

let register_at t oid ~site =
  check_site t site;
  Hf_data.Oid.Table.replace t.registry oid site

let authoritative t oid = Hf_data.Oid.Table.find_opt t.registry oid

let move t oid ~to_ =
  check_site t to_;
  match Hf_data.Oid.Table.find_opt t.registry oid with
  | None -> invalid_arg "Name_service.move: unknown object"
  | Some _ ->
    Hf_data.Oid.Table.replace t.registry oid to_;
    t.moves <- t.moves + 1

type resolution = {
  site : int;  (* where the object actually is *)
  hops : int;  (* messages a dereference would need: 1 if the hint was right *)
  corrected : Hf_data.Oid.t;  (* same identity, fresh hint *)
}

let resolve t oid =
  match Hf_data.Oid.Table.find_opt t.registry oid with
  | None -> None
  | Some actual ->
    let hinted = Hf_data.Oid.hint oid in
    if hinted = actual then Some { site = actual; hops = 1; corrected = oid }
    else begin
      (* Miss at the presumed site: it redirects us to the birth site,
         which knows the actual location.  If the hint already named the
         birth site the redirect step is saved. *)
      t.forwards <- t.forwards + 1;
      let hops = if hinted = Hf_data.Oid.birth_site oid then 2 else 3 in
      Some { site = actual; hops; corrected = Hf_data.Oid.with_hint oid actual }
    end

let moves t = t.moves

let forwards t = t.forwards

let cardinal t = Hf_data.Oid.Table.length t.registry
