(** Object naming and mobility (paper, Section 4; R*-style names).

    Each object id carries its birth site plus a presumed current site.
    The birth site is the authoritative arbiter of its objects' actual
    locations; stale hints cost extra resolution hops, never wrong
    answers. *)

type t

val create : n_sites:int -> t
(** Raises [Invalid_argument] on a non-positive site count. *)

val register : t -> Hf_data.Oid.t -> unit
(** Record a newly created object at its birth site. *)

val register_at : t -> Hf_data.Oid.t -> site:int -> unit
(** Record an object living away from its birth site (e.g. after a
    restore). Raises [Invalid_argument] on a site out of range. *)

val authoritative : t -> Hf_data.Oid.t -> int option
(** The birth-site registry's answer for the current location. *)

val move : t -> Hf_data.Oid.t -> to_:int -> unit
(** Relocate an object: updates only the birth-site registry. Raises
    [Invalid_argument] on unknown objects or bad sites. *)

type resolution = {
  site : int;  (** where the object actually is. *)
  hops : int;  (** messages a dereference needs: 1 when the hint is right,
                   2–3 when the birth site must redirect. *)
  corrected : Hf_data.Oid.t;  (** same identity, refreshed hint. *)
}

val resolve : t -> Hf_data.Oid.t -> resolution option
(** Follow the presumed-site hint, falling back to the birth site.
    [None] for unregistered objects. *)

val moves : t -> int
val forwards : t -> int
(** Resolutions that needed the birth site (stale hints). *)

val cardinal : t -> int
