lib/naming/name_service.mli: Hf_data
