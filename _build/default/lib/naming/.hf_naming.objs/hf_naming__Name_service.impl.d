lib/naming/name_service.ml: Hf_data
