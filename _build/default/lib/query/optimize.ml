(* Semantics-preserving query simplification.

   Applications and UI layers compose queries mechanically (the paper's
   Section 2: "the application will compose the HyperFile query"), which
   produces patterns a human would not write: iteration wrapped around
   pure selections, duplicated filters, single-pass blocks.  Each rule
   here is safe under the engine's semantics and is property-tested for
   equivalence against the unoptimized query on random stores:

   - [dedup]: collapse immediately repeated identical filters — filters
     are idempotent (paper §3.1: "passing an object through the same
     filter many times will not change the result"), and an object
     passes F F iff it passes F.

   - unwrap pure blocks: drop the iteration around a body containing no
     dereference.  Without dereferences nothing is spawned, so an object
     entering the block passes straight through its body and exits the
     iterator on first contact; the iterator is pure bookkeeping.

   - unwrap "[ body ]^1" when the body's dereferences are all
     Keep_parent.  With k = 1, a spawned object (counter 2 >= 1) exits
     the iterator immediately, exactly where it would start after the
     unwrapped body; the initial object's single ungated pass is the
     body itself.  (The rule also holds for Replace dereferences, but
     the parent's death makes the reasoning subtler than the rule is
     worth — we stay conservative.)

   Rules apply bottom-up to a fixpoint. *)

let rec has_deref elements =
  List.exists
    (function
      | Ast.Deref _ -> true
      | Ast.Block { body; _ } -> has_deref body
      | Ast.Select _ | Ast.Retrieve _ -> false)
    elements

let rec all_derefs_keep elements =
  List.for_all
    (function
      | Ast.Deref { mode = Filter.Keep_parent; _ } -> true
      | Ast.Deref { mode = Filter.Replace; _ } -> false
      | Ast.Block { body; _ } -> all_derefs_keep body
      | Ast.Select _ | Ast.Retrieve _ -> true)
    elements

(* Only selections are deduplicated: a repeated Retrieve emits its
   values once per copy, and repeated dereferences spawn work items at
   different start indexes, so neither is exactly redundant. *)
let dedup elements =
  let is_select = function Ast.Select _ -> true | _ -> false in
  let rec go = function
    | a :: b :: rest when is_select a && Ast.equal_element a b -> go (b :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go elements

let rec simplify elements =
  let pass =
    List.concat_map
      (fun element ->
        match element with
        | Ast.Select _ | Ast.Deref _ | Ast.Retrieve _ -> [ element ]
        | Ast.Block { body; count } ->
          let body = simplify body in
          if not (has_deref body) then body
          else if
            Filter.equal_iter_count count (Filter.Finite 1) && all_derefs_keep body
          then body
          else [ Ast.Block { body; count } ])
      elements
  in
  let deduped = dedup pass in
  if Ast.equal deduped elements then deduped else simplify deduped

let simplify_program program = Compile.compile (simplify (Compile.decompile program))
