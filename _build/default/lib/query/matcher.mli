(** Matching a single selection element against an object, without
    matching-variable state.

    Used by clients that filter objects themselves (the ship-data
    baseline) and by the index planner.  [Use] patterns see no bindings
    and therefore never match here. *)

val selection_matches : Filter.selection -> Hf_data.Hobject.t -> bool

val element_matches : Ast.element -> Hf_data.Hobject.t -> bool
(** Raises [Invalid_argument] on dereference or block elements. *)
