(** Surface abstract syntax of query bodies.

    A body is a sequence of elements; iteration is a nested block
    "[ body ]^k" ([Finite k]) or "[ body ]*" ([Star], transitive
    closure).  [Compile] flattens this to the engine's indexed filter
    array. *)

type element =
  | Select of Filter.selection
  | Deref of { var : string; mode : Filter.deref_mode }
  | Retrieve of { ttype : Pattern.t; key : Pattern.t; target : string }
  | Block of { body : element list; count : Filter.iter_count }

type t = element list

val select : ttype:Pattern.t -> key:Pattern.t -> data:Pattern.t -> element
val deref : ?mode:Filter.deref_mode -> string -> element
val retrieve : ttype:Pattern.t -> key:Pattern.t -> target:string -> element
val block : count:Filter.iter_count -> element list -> element

val closure : element list -> element
(** "[ body ]*". *)

val repeat : int -> element list -> element
(** [repeat k body] is "[ body ]^k". *)

val equal_element : element -> element -> bool
val equal : t -> t -> bool

val unroll : t -> t
(** Syntactic unrolling: replace every finite block by its k-fold
    repeated body; [Star] blocks are kept but their bodies are unrolled.
    Note this is the paper's informal reading of iteration; the engine's
    iterator counters bound pointer-{e chain length} at k (the paper's
    normative walkthrough), which differs from full unrolling by one
    dereference at the boundary. *)

val depth : t -> int
(** Maximum block-nesting depth; 0 for a flat query. *)

val variables : t -> string list
(** All matching-variable names bound or dereferenced, sorted and
    deduplicated. *)
