(* Surface abstract syntax: a query body is a sequence of elements, with
   iteration as a nested block "[ body ]^k".  [Compile] flattens blocks
   into the indexed form used by the engine. *)

type element =
  | Select of Filter.selection
  | Deref of { var : string; mode : Filter.deref_mode }
  | Retrieve of { ttype : Pattern.t; key : Pattern.t; target : string }
  | Block of { body : element list; count : Filter.iter_count }

type t = element list

let select ~ttype ~key ~data = Select { ttype; key; data }

let deref ?(mode = Filter.Replace) var = Deref { var; mode }

let retrieve ~ttype ~key ~target = Retrieve { ttype; key; target }

let block ~count body = Block { body; count }

let closure body = Block { body; count = Filter.Star }

let repeat k body = Block { body; count = Filter.Finite k }

let rec equal_element a b =
  match a, b with
  | Select x, Select y ->
    Pattern.equal x.ttype y.ttype && Pattern.equal x.key y.key && Pattern.equal x.data y.data
  | Deref x, Deref y -> String.equal x.var y.var && x.mode = y.mode
  | Retrieve x, Retrieve y ->
    Pattern.equal x.ttype y.ttype && Pattern.equal x.key y.key && String.equal x.target y.target
  | Block x, Block y ->
    Filter.equal_iter_count x.count y.count
    && List.length x.body = List.length y.body
    && List.for_all2 equal_element x.body y.body
  | (Select _ | Deref _ | Retrieve _ | Block _), _ -> false

let equal a b = List.length a = List.length b && List.for_all2 equal_element a b

(* Replace every finite block by its k-fold unrolled body.  "The meaning
   of [query parts]^k is to repeat query part k times, as if the loop was
   unrolled and executed straight through" — used as a semantic oracle in
   the property tests. *)
let rec unroll elements = List.concat_map unroll_element elements

and unroll_element = function
  | (Select _ | Deref _ | Retrieve _) as e -> [ e ]
  | Block { body; count = Filter.Star } -> [ Block { body = unroll body; count = Filter.Star } ]
  | Block { body; count = Filter.Finite k } ->
    let unrolled = unroll body in
    List.concat (List.init k (fun _ -> unrolled))

let rec depth elements =
  let element_depth = function
    | Select _ | Deref _ | Retrieve _ -> 0
    | Block { body; _ } -> 1 + depth body
  in
  List.fold_left (fun acc e -> max acc (element_depth e)) 0 elements

let rec variables elements =
  let element_vars = function
    | Select { ttype; key; data } ->
      List.filter_map Pattern.binds [ ttype; key; data ]
    | Deref { var; _ } -> [ var ]
    | Retrieve _ -> []
    | Block { body; _ } -> variables body
  in
  List.sort_uniq String.compare (List.concat_map element_vars elements)
