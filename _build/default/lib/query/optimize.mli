(** Semantics-preserving query simplification.

    Collapses immediately repeated identical selections (selections are
    idempotent, paper §3.1), drops iteration around dereference-free
    bodies, and unwraps single-pass keep-parent blocks.  Every rewrite
    preserves the engine's result set and retrieved values —
    property-tested against unoptimized evaluation on random stores. *)

val simplify : Ast.t -> Ast.t
(** Bottom-up rewriting to a fixpoint. *)

val simplify_program : Program.t -> Program.t
(** Decompile, simplify, recompile. *)
