(* Stand-alone matching of a single selection element against an object,
   without matching-variable state.  Used by the ship-data baseline (the
   client filters fetched objects itself) and the index planner. *)

let no_bindings _ = []

let tuple_matches ~ttype ~key ~data tuple =
  Pattern.matches ttype (Hf_data.Value.str (Hf_data.Tuple.ttype tuple)) ~lookup:no_bindings
  && Pattern.matches key (Hf_data.Tuple.key tuple) ~lookup:no_bindings
  && Pattern.matches data (Hf_data.Tuple.data tuple) ~lookup:no_bindings

let selection_matches (selection : Filter.selection) obj =
  List.exists
    (fun tuple -> tuple_matches ~ttype:selection.ttype ~key:selection.key ~data:selection.data tuple)
    (Hf_data.Hobject.tuples obj)

let element_matches element obj =
  match (element : Ast.element) with
  | Ast.Select selection -> selection_matches selection obj
  | Ast.Retrieve { ttype; key; _ } -> (
      List.exists (fun tuple -> tuple_matches ~ttype ~key ~data:Pattern.any tuple)
        (Hf_data.Hobject.tuples obj))
  | Ast.Deref _ | Ast.Block _ ->
    invalid_arg "Matcher.element_matches: not a selection element"
