(** Concrete-syntax parser for HyperFile queries.

    ASCII rendering of the paper's notation:

    {v
    query     ::= [ident] element* ["->" ident]
    element   ::= selection | deref | block
    selection ::= "(" pattern "," pattern "," (pattern | "->" ident) ")"
    deref     ::= "^" ident            single up-arrow (replace)
                | "^^" ident           double up-arrow (keep parent)
    block     ::= "[" element* "]" ("^" int | "*")
    pattern   ::= "?" [ident] | "=" ident | string | int [".." int] | ident
    v}

    Example (the paper's transitive-closure query):
    {v S [ (Pointer, "Reference", ?X) ^X ]* (Keyword, "Distributed", ?) -> T v}

    [";"] starts a comment running to end of line.  String literals
    containing ['*'] or ['?'] are glob patterns. *)

type position = { line : int; col : int }

exception Parse_error of { message : string; pos : position }

type query = {
  source : string option;  (** name of the starting set, if present. *)
  body : Ast.t;
  target : string option;  (** name to bind the result set to, if present. *)
}

val parse_query : string -> query
(** Parse a full query. Raises [Parse_error]. *)

val parse_body : string -> Ast.t
(** Parse a bare body (no source set, no result binding). Raises
    [Parse_error] if either is present. *)

val parse_program : string -> Program.t
(** [parse_body] followed by {!Compile.compile}. *)
