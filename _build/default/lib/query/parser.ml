(* Hand-written lexer and recursive-descent parser for the concrete
   query syntax.  The grammar mirrors the paper's notation, with ASCII
   spellings for the arrows:

     query     ::= [ident] element* ["->" ident]
     element   ::= selection | deref | block
     selection ::= "(" pattern "," pattern "," (pattern | "->" ident) ")"
     deref     ::= "^" ident          (single up-arrow: replace)
                 | "^^" ident         (double up-arrow: keep parent)
     block     ::= "[" element* "]" ("^" int | "*")
     pattern   ::= "?" [ident]        (wildcard / binding variable)
                 | "=" ident          (use of a matching variable)
                 | string             (exact, or glob if it has * or ?)
                 | int [".." int]     (exact number or inclusive range)
                 | ident              (bare word: exact string)

   Example — the paper's transitive-closure query:

     S [ (Pointer, "Reference", ?X) ^X ]* (Keyword, "Distributed", ?) -> T
*)

type position = { line : int; col : int }

exception Parse_error of { message : string; pos : position }

let error pos fmt = Fmt.kstr (fun message -> raise (Parse_error { message; pos })) fmt

(* --- Lexer --- *)

type token =
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Caret
  | Double_caret
  | Arrow
  | Question
  | Equals
  | Star
  | Dotdot
  | Int of int
  | String of string
  | Ident of string
  | Eof

let pp_token ppf = function
  | Lparen -> Fmt.string ppf "'('"
  | Rparen -> Fmt.string ppf "')'"
  | Lbracket -> Fmt.string ppf "'['"
  | Rbracket -> Fmt.string ppf "']'"
  | Comma -> Fmt.string ppf "','"
  | Caret -> Fmt.string ppf "'^'"
  | Double_caret -> Fmt.string ppf "'^^'"
  | Arrow -> Fmt.string ppf "'->'"
  | Question -> Fmt.string ppf "'?'"
  | Equals -> Fmt.string ppf "'='"
  | Star -> Fmt.string ppf "'*'"
  | Dotdot -> Fmt.string ppf "'..'"
  | Int n -> Fmt.pf ppf "number %d" n
  | String s -> Fmt.pf ppf "string %S" s
  | Ident s -> Fmt.pf ppf "identifier %S" s
  | Eof -> Fmt.string ppf "end of input"

type lexer = {
  text : string;
  mutable offset : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let lexer_pos lx = { line = lx.line; col = lx.offset - lx.bol + 1 }

let peek_char lx = if lx.offset < String.length lx.text then Some lx.text.[lx.offset] else None

let advance lx =
  (match peek_char lx with
   | Some '\n' ->
     lx.line <- lx.line + 1;
     lx.bol <- lx.offset + 1
   | Some _ | None -> ());
  lx.offset <- lx.offset + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance lx;
    skip_ws lx
  | Some ';' ->
    (* comment to end of line *)
    let rec to_eol () =
      match peek_char lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_ws lx
  | Some _ | None -> ()

let lex_string lx =
  let start = lexer_pos lx in
  advance lx; (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char lx with
    | None -> error start "unterminated string literal"
    | Some '"' -> advance lx
    | Some '\\' ->
      advance lx;
      (match peek_char lx with
       | Some ('"' as c) | Some ('\\' as c) ->
         Buffer.add_char buf c;
         advance lx;
         go ()
       | Some 'n' ->
         Buffer.add_char buf '\n';
         advance lx;
         go ()
       | Some c -> error (lexer_pos lx) "unknown escape '\\%c'" c
       | None -> error start "unterminated string literal")
    | Some c ->
      Buffer.add_char buf c;
      advance lx;
      go ()
  in
  go ();
  String (Buffer.contents buf)

let lex_number lx =
  let start = lx.offset in
  while (match peek_char lx with Some c -> is_digit c | None -> false) do
    advance lx
  done;
  Int (int_of_string (String.sub lx.text start (lx.offset - start)))

let lex_ident lx =
  let start = lx.offset in
  while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
    advance lx
  done;
  Ident (String.sub lx.text start (lx.offset - start))

let next_token lx =
  skip_ws lx;
  let pos = lexer_pos lx in
  let token =
    match peek_char lx with
    | None -> Eof
    | Some '(' -> advance lx; Lparen
    | Some ')' -> advance lx; Rparen
    | Some '[' -> advance lx; Lbracket
    | Some ']' -> advance lx; Rbracket
    | Some ',' -> advance lx; Comma
    | Some '?' -> advance lx; Question
    | Some '=' -> advance lx; Equals
    | Some '*' -> advance lx; Star
    | Some '^' ->
      advance lx;
      (match peek_char lx with
       | Some '^' -> advance lx; Double_caret
       | Some _ | None -> Caret)
    | Some '-' ->
      advance lx;
      (match peek_char lx with
       | Some '>' -> advance lx; Arrow
       | Some _ | None -> error pos "expected '>' after '-'")
    | Some '.' ->
      advance lx;
      (match peek_char lx with
       | Some '.' -> advance lx; Dotdot
       | Some _ | None -> error pos "expected '.' after '.'")
    | Some '"' -> lex_string lx
    | Some c when is_digit c -> lex_number lx
    | Some c when is_ident_start c -> lex_ident lx
    | Some c -> error pos "unexpected character '%c'" c
  in
  (token, pos)

(* --- Parser --- *)

type parser_state = {
  lx : lexer;
  mutable tok : token;
  mutable tok_pos : position;
}

let bump ps =
  let token, pos = next_token ps.lx in
  ps.tok <- token;
  ps.tok_pos <- pos

let expect ps expected =
  if ps.tok = expected then bump ps
  else error ps.tok_pos "expected %a but found %a" pp_token expected pp_token ps.tok

let parse_ident ps =
  match ps.tok with
  | Ident name ->
    bump ps;
    name
  | t -> error ps.tok_pos "expected identifier but found %a" pp_token t

(* A pattern in one of the three fields of a selection. *)
let parse_pattern ps =
  match ps.tok with
  | Question ->
    bump ps;
    (match ps.tok with
     | Ident var ->
       bump ps;
       Pattern.bind var
     | _ -> Pattern.any)
  | Equals ->
    bump ps;
    Pattern.use (parse_ident ps)
  | String s ->
    bump ps;
    Pattern.glob s
  | Ident s ->
    bump ps;
    Pattern.exact_str s
  | Int lo ->
    bump ps;
    (match ps.tok with
     | Dotdot ->
       bump ps;
       (match ps.tok with
        | Int hi ->
          bump ps;
          if lo > hi then error ps.tok_pos "range %d..%d is empty" lo hi;
          Pattern.range lo hi
        | t -> error ps.tok_pos "expected upper bound of range but found %a" pp_token t)
     | _ -> Pattern.exact_num lo)
  | t -> error ps.tok_pos "expected a pattern but found %a" pp_token t

(* "(" pattern "," pattern "," (pattern | "->" ident) ")" *)
let parse_selection ps =
  expect ps Lparen;
  let ttype = parse_pattern ps in
  expect ps Comma;
  let key = parse_pattern ps in
  expect ps Comma;
  let element =
    match ps.tok with
    | Arrow ->
      bump ps;
      let target = parse_ident ps in
      Ast.Retrieve { ttype; key; target }
    | _ ->
      let data = parse_pattern ps in
      Ast.Select { ttype; key; data }
  in
  expect ps Rparen;
  element

let rec parse_element ps =
  match ps.tok with
  | Lparen -> Some (parse_selection ps)
  | Caret ->
    bump ps;
    Some (Ast.Deref { var = parse_ident ps; mode = Filter.Replace })
  | Double_caret ->
    bump ps;
    Some (Ast.Deref { var = parse_ident ps; mode = Filter.Keep_parent })
  | Lbracket ->
    bump ps;
    let body = parse_elements ps in
    expect ps Rbracket;
    let count =
      match ps.tok with
      | Star ->
        bump ps;
        Filter.Star
      | Caret ->
        bump ps;
        (match ps.tok with
         | Int k ->
           bump ps;
           if k < 1 then error ps.tok_pos "iteration count must be >= 1";
           Filter.Finite k
         | t -> error ps.tok_pos "expected iteration count but found %a" pp_token t)
      | t -> error ps.tok_pos "expected '*' or '^k' after ']' but found %a" pp_token t
    in
    Some (Ast.Block { body; count })
  | _ -> None

and parse_elements ps =
  match parse_element ps with
  | None -> []
  | Some e -> e :: parse_elements ps

type query = { source : string option; body : Ast.t; target : string option }

let make_state text =
  let lx = { text; offset = 0; line = 1; bol = 0 } in
  let ps = { lx; tok = Eof; tok_pos = { line = 1; col = 1 } } in
  bump ps;
  ps

let parse_query text =
  let ps = make_state text in
  let source =
    match ps.tok with
    | Ident name ->
      bump ps;
      Some name
    | _ -> None
  in
  let body = parse_elements ps in
  let target =
    match ps.tok with
    | Arrow ->
      bump ps;
      Some (parse_ident ps)
    | _ -> None
  in
  if ps.tok <> Eof then error ps.tok_pos "trailing input: found %a" pp_token ps.tok;
  { source; body; target }

let parse_body text =
  let q = parse_query text in
  match q.source, q.target with
  | None, None -> q.body
  | Some _, _ | _, Some _ ->
    raise
      (Parse_error
         { message = "expected a bare query body (no source set or result binding)";
           pos = { line = 1; col = 1 } })

let parse_program text = Compile.compile (parse_body text)
