(** Pretty-printer back to the concrete syntax accepted by {!Parser}.

    Round-trip law: [Parser.parse_body (to_string ast)] equals [ast]. *)

val pp_pattern : Format.formatter -> Pattern.t -> unit

val pp_element : Format.formatter -> Ast.element -> unit

val pp_body : Format.formatter -> Ast.t -> unit

val to_string : Ast.t -> string

val query_to_string : ?source:string -> ?target:string -> Ast.t -> string
(** Full query string with optional source-set name and result
    binding. *)
