(** Compiled filter operations — the F_j of the paper's query notation.

    A compiled query is a flat array of filters.  Iteration "[ body ]^k"
    is represented by the body's filters followed by an [Iter] filter
    whose [body_start] is the index of the body's first filter, exactly
    matching the I_j^k construct of Section 3. *)

type deref_mode =
  | Keep_parent
      (** the paper's double up-arrow: results include the pointing object
          as well as the referenced ones. *)
  | Replace
      (** the paper's single up-arrow: only the referenced objects
          continue. *)

type iter_count =
  | Finite of int
  | Star  (** iterate to transitive closure. *)

type selection = { ttype : Pattern.t; key : Pattern.t; data : Pattern.t }

type t =
  | Select of selection
  | Deref of { var : string; mode : deref_mode }
  | Iter of { body_start : int; count : iter_count }
  | Retrieve of { ttype : Pattern.t; key : Pattern.t; target : string }
      (** the paper's [->] operator: on match, ship the tuple's data field
          back to the application, tagged [target]. *)

val select : ttype:Pattern.t -> key:Pattern.t -> data:Pattern.t -> t

val deref : ?mode:deref_mode -> string -> t
(** Default mode is [Replace]. Raises [Invalid_argument] on an empty
    variable name. *)

val iter : body_start:int -> count:iter_count -> t
(** Raises [Invalid_argument] on a negative start or a count < 1. *)

val retrieve : ttype:Pattern.t -> key:Pattern.t -> target:string -> t
(** Raises [Invalid_argument] on an empty target name. *)

val equal_iter_count : iter_count -> iter_count -> bool
val equal : t -> t -> bool

val pp_iter_count : Format.formatter -> iter_count -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
