(** Compilation between the nested surface syntax and the engine's flat
    indexed filter array. *)

exception Error of string

val compile : Ast.t -> Program.t
(** Flatten blocks into body-filters-then-[Iter] form. Raises [Error] on
    an empty iteration block. *)

val decompile : Program.t -> Ast.t
(** Inverse of [compile]: recover the block structure. Raises [Error] if
    the program's iterator indexes do not nest properly. *)
