(** Combinator interface for constructing query bodies from application
    code — the programmatic twin of the concrete syntax.

    {[
      Builder.(
        body
          [ closure [ pointers ~key:"Reference" "X"; follow_keeping "X" ];
            keyword "Distributed";
          ])
    ]} *)

val select : ?ttype:Pattern.t -> ?key:Pattern.t -> ?data:Pattern.t -> unit -> Ast.element
(** General selection; omitted fields default to [?]. *)

val tuple : Pattern.t -> Pattern.t -> Pattern.t -> Ast.element
(** Selection from three explicit patterns (type, key, data). *)

val pointers : ?key:string -> string -> Ast.element
(** [pointers ~key var]: select pointer tuples with key [key] (any key
    if omitted), binding the targets to [var]. *)

val keyword : string -> Ast.element
(** Object contains the keyword (glob allowed). *)

val string_equals : key:string -> string -> Ast.element
(** [(String, key, value)] selection; glob allowed in [value]. *)

val number_in : key:string -> int -> int -> Ast.element
(** [(Number, key, lo..hi)] selection. *)

val follow : string -> Ast.element
(** Single up-arrow: dereference [var], dropping the pointing object. *)

val follow_keeping : string -> Ast.element
(** Double up-arrow: dereference [var], keeping the pointing object. *)

val retrieve : ?ttype:Pattern.t -> key:string -> string -> Ast.element
(** The [->] operator: ship matching tuples' data back, tagged with the
    target name. *)

val closure : Ast.t -> Ast.element
(** "[ body ]*". *)

val repeat : int -> Ast.t -> Ast.element
(** "[ body ]^k". *)

val body : Ast.element list -> Ast.t

val reachability : ?depth:int -> key:string -> Ast.element -> Ast.t
(** The paper's experimental query shape: traverse pointers named [key]
    to the transitive closure (or [depth] levels), keeping every visited
    object, then apply [selection].  Raises [Invalid_argument] if
    [depth < 1]. *)

val compile : Ast.t -> Program.t
val program : Ast.t -> Program.t
