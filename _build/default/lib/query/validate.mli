(** Static validation of query bodies.

    Catches application mistakes before a query is compiled and shipped:
    dereferences of variables no selection binds, empty iteration
    blocks, uses of matching variables that can never have bindings,
    duplicated retrieve targets. *)

type severity = Error | Warning

type issue = { severity : severity; message : string }

val check : Ast.t -> issue list
(** All issues, errors first within each category. *)

val errors : Ast.t -> issue list
(** Only the [Error]-severity issues. *)

val is_valid : Ast.t -> bool
(** No [Error]-severity issues. *)

val pp_issue : Format.formatter -> issue -> unit
