lib/query/builder.mli: Ast Pattern Program
