lib/query/program.ml: Array Filter Fmt Hf_data Pattern Printf String
