lib/query/validate.ml: Ast Fmt List Pattern String
