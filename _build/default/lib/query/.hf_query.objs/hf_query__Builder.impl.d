lib/query/builder.ml: Ast Compile Filter Hf_data Pattern Printf
