lib/query/pattern.mli: Format Hf_data
