lib/query/matcher.ml: Ast Filter Hf_data List Pattern
