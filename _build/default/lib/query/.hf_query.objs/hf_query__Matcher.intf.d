lib/query/matcher.mli: Ast Filter Hf_data
