lib/query/filter.mli: Format Pattern
