lib/query/pattern.ml: Fmt Hf_data Hf_util List String
