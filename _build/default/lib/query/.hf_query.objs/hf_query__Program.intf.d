lib/query/program.mli: Filter Format
