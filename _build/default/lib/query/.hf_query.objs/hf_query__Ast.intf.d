lib/query/ast.mli: Filter Pattern
