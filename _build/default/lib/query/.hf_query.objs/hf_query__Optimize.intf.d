lib/query/optimize.mli: Ast Program
