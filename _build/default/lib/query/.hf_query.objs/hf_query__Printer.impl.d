lib/query/printer.ml: Ast Filter Fmt Hf_data Pattern
