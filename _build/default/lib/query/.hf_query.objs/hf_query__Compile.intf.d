lib/query/compile.mli: Ast Program
