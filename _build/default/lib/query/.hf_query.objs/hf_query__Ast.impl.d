lib/query/ast.ml: Filter List Pattern String
