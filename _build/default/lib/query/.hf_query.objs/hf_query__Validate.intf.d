lib/query/validate.mli: Ast Format
