lib/query/filter.ml: Fmt Pattern String
