lib/query/parser.ml: Ast Buffer Compile Filter Fmt Pattern String
