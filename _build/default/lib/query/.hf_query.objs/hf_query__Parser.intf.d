lib/query/parser.mli: Ast Program
