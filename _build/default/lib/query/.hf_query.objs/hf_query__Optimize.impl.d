lib/query/optimize.ml: Ast Compile Filter List
