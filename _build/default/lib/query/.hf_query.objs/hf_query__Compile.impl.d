lib/query/compile.ml: Array Ast Filter List Program
