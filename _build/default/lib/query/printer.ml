(* Pretty-printing of surface queries back to the concrete syntax
   accepted by [Parser]; [Parser.parse_body (to_string ast)] returns an
   AST equal to [ast] (round-trip property, tested). *)

let pp_pattern ppf pattern =
  match pattern with
  | Pattern.Any -> Fmt.string ppf "?"
  | Pattern.Bind var -> Fmt.pf ppf "?%s" var
  | Pattern.Use var -> Fmt.pf ppf "=%s" var
  | Pattern.Exact (Hf_data.Value.Str s) -> Fmt.pf ppf "%S" s
  | Pattern.Exact (Hf_data.Value.Num n) -> Fmt.int ppf n
  | Pattern.Exact v -> Hf_data.Value.pp ppf v
  | Pattern.Glob g -> Fmt.pf ppf "%S" g
  | Pattern.Range (lo, hi) -> Fmt.pf ppf "%d..%d" lo hi

let rec pp_element ppf = function
  | Ast.Select { ttype; key; data } ->
    Fmt.pf ppf "(%a, %a, %a)" pp_pattern ttype pp_pattern key pp_pattern data
  | Ast.Deref { var; mode = Filter.Replace } -> Fmt.pf ppf "^%s" var
  | Ast.Deref { var; mode = Filter.Keep_parent } -> Fmt.pf ppf "^^%s" var
  | Ast.Retrieve { ttype; key; target } ->
    Fmt.pf ppf "(%a, %a, ->%s)" pp_pattern ttype pp_pattern key target
  | Ast.Block { body; count = Filter.Star } -> Fmt.pf ppf "[ %a ]*" pp_body body
  | Ast.Block { body; count = Filter.Finite k } -> Fmt.pf ppf "[ %a ]^%d" pp_body body k

and pp_body ppf body = Fmt.list ~sep:Fmt.sp pp_element ppf body

let to_string ast = Fmt.str "%a" pp_body ast

let query_to_string ?source ?target ast =
  let prefix = match source with Some s -> s ^ " " | None -> "" in
  let suffix = match target with Some t -> " -> " ^ t | None -> "" in
  prefix ^ to_string ast ^ suffix
