(* Compiled filter operations F_1 ... F_n (paper, Section 3).  Filters
   are stored in a flat array; an iterator at index i records the index
   of the first filter of its body, so "[ body ]^k" compiles to the body
   filters followed by an [Iter] whose [body_start] points back at the
   body's first filter. *)

type deref_mode =
  | Keep_parent  (* the paper's double up-arrow: keep the pointing object too *)
  | Replace  (* the paper's single up-arrow: keep only the referenced objects *)

type iter_count = Finite of int | Star

type selection = { ttype : Pattern.t; key : Pattern.t; data : Pattern.t }

type t =
  | Select of selection
  | Deref of { var : string; mode : deref_mode }
  | Iter of { body_start : int; count : iter_count }
  | Retrieve of { ttype : Pattern.t; key : Pattern.t; target : string }

let select ~ttype ~key ~data = Select { ttype; key; data }

let deref ?(mode = Replace) var =
  if String.length var = 0 then invalid_arg "Filter.deref: empty variable name";
  Deref { var; mode }

let iter ~body_start ~count =
  if body_start < 0 then invalid_arg "Filter.iter: negative body_start";
  (match count with
   | Finite k when k < 1 -> invalid_arg "Filter.iter: count must be >= 1"
   | Finite _ | Star -> ());
  Iter { body_start; count }

let retrieve ~ttype ~key ~target =
  if String.length target = 0 then invalid_arg "Filter.retrieve: empty target name";
  Retrieve { ttype; key; target }

let equal_iter_count a b =
  match a, b with
  | Finite x, Finite y -> x = y
  | Star, Star -> true
  | (Finite _ | Star), _ -> false

let equal a b =
  match a, b with
  | Select x, Select y ->
    Pattern.equal x.ttype y.ttype && Pattern.equal x.key y.key && Pattern.equal x.data y.data
  | Deref x, Deref y -> String.equal x.var y.var && x.mode = y.mode
  | Iter x, Iter y -> x.body_start = y.body_start && equal_iter_count x.count y.count
  | Retrieve x, Retrieve y ->
    Pattern.equal x.ttype y.ttype && Pattern.equal x.key y.key && String.equal x.target y.target
  | (Select _ | Deref _ | Iter _ | Retrieve _), _ -> false

let pp_iter_count ppf = function
  | Finite k -> Fmt.int ppf k
  | Star -> Fmt.string ppf "*"

let pp ppf = function
  | Select { ttype; key; data } ->
    Fmt.pf ppf "(%a, %a, %a)" Pattern.pp ttype Pattern.pp key Pattern.pp data
  | Deref { var; mode = Replace } -> Fmt.pf ppf "^%s" var
  | Deref { var; mode = Keep_parent } -> Fmt.pf ppf "^^%s" var
  | Iter { body_start; count } -> Fmt.pf ppf "iter[from %d]^%a" body_start pp_iter_count count
  | Retrieve { ttype; key; target } ->
    Fmt.pf ppf "(%a, %a, ->%s)" Pattern.pp ttype Pattern.pp key target

let to_string f = Fmt.str "%a" pp f
