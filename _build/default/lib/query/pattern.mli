(** Patterns matched against tuple fields in selection filters.

    A pattern may be a simple comparison (exact value, glob over strings,
    numeric range), the wildcard [Any] (written [?]), a binding
    occurrence of a matching variable ([?X] — matches anything and
    records the value), or a using occurrence ([=X] — matches when the
    value is among the variable's current bindings). *)

type t =
  | Any
  | Exact of Hf_data.Value.t
  | Glob of string
  | Range of int * int  (** inclusive numeric range. *)
  | Bind of string
  | Use of string

val any : t
val exact : Hf_data.Value.t -> t
val exact_str : string -> t
val exact_num : int -> t

val glob : string -> t
(** Glob over strings; collapses to [Exact] when the pattern has no
    metacharacters. *)

val range : int -> int -> t
(** Raises [Invalid_argument] if [lo > hi]. *)

val bind : string -> t
(** Binding occurrence [?X]. Raises [Invalid_argument] on an empty
    name. *)

val use : string -> t
(** Using occurrence [=X]. Raises [Invalid_argument] on an empty
    name. *)

val binds : t -> string option
(** The variable this pattern binds, if any. *)

val uses : t -> string option
(** The variable this pattern reads, if any. *)

val matches : t -> Hf_data.Value.t -> lookup:(string -> Hf_data.Value.t list) -> bool
(** [matches p v ~lookup] tests [v]; [lookup] supplies the current
    bindings of matching variables (for [Use]). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
