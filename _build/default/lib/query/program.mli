(** A compiled query body: the flat filter array F_0 ... F_{n-1}.

    Indexes are 0-based (the paper numbers from 1); the index equal to
    [length] means "past the last filter", i.e. the object has passed the
    whole query.  This is the form shipped between sites — [byte_size]
    estimates its wire footprint. *)

type t

exception Ill_formed of string

val of_filters : Filter.t list -> t
(** Raises [Ill_formed] if an iterator's [body_start] lies beyond the
    iterator itself. *)

val filters : t -> Filter.t list

val length : t -> int

val get : t -> int -> Filter.t
(** Raises [Invalid_argument] on an out-of-bounds index. *)

val equal : t -> t -> bool

val byte_size : t -> int
(** Estimated serialized size in bytes (the paper's ~40-byte query
    messages); used by the communication-cost accounting. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
