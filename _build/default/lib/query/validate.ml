(* Static checks on a query body before it is compiled and shipped.
   These catch the mistakes an application can make against the embedded
   language: dereferencing a variable no selection ever binds, empty
   iteration blocks, duplicate retrieve targets. *)

type severity = Error | Warning

type issue = { severity : severity; message : string }

let issue severity fmt = Fmt.kstr (fun message -> { severity; message }) fmt

let element_binds = function
  | Ast.Select { ttype; key; data } -> List.filter_map Pattern.binds [ ttype; key; data ]
  | Ast.Deref _ | Ast.Retrieve _ | Ast.Block _ -> []

(* Variables visible to a dereference: anything bound by a selection
   anywhere in the query body.  (Bindings are accumulated per object as
   it flows left to right, and inside an iteration an object may re-enter
   the body, so a bind appearing textually after the deref in the same
   block is still reachable on later rounds; we therefore check
   membership in the whole body rather than strict textual order, but
   warn when the only binding site is outside every enclosing block —
   mvars are reset on dereference, so such a binding can never be live.) *)
let check_derefs body =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let rec bound_in elements =
    List.concat_map
      (fun e ->
        match e with
        | Ast.Block { body; _ } -> bound_in body
        | Ast.Select _ | Ast.Deref _ | Ast.Retrieve _ -> element_binds e)
      elements
  in
  let all_bound = bound_in body in
  let rec walk enclosing elements =
    List.iter
      (fun e ->
        match e with
        | Ast.Deref { var; _ } ->
          if not (List.mem var all_bound) then
            add (issue Error "dereference of variable %s, which no selection binds" var)
          else if not (List.mem var (bound_in enclosing)) then
            add
              (issue Warning
                 "dereference of %s inside an iteration whose body never binds it; bindings do \
                  not survive dereferences, so later rounds will find it empty"
                 var)
        | Ast.Block { body = inner; _ } -> walk inner inner
        | Ast.Select _ | Ast.Retrieve _ -> ())
      elements
  in
  walk body body;
  List.rev !issues

let check_blocks body =
  let issues = ref [] in
  let rec walk = function
    | Ast.Block { body = []; _ } ->
      issues := issue Error "empty iteration block" :: !issues
    | Ast.Block { body; _ } -> List.iter walk body
    | Ast.Select _ | Ast.Deref _ | Ast.Retrieve _ -> ()
  in
  List.iter walk body;
  List.rev !issues

let check_retrieve_targets body =
  let rec targets = function
    | Ast.Retrieve { target; _ } -> [ target ]
    | Ast.Block { body; _ } -> List.concat_map targets body
    | Ast.Select _ | Ast.Deref _ -> []
  in
  let all = List.concat_map targets body in
  let sorted = List.sort String.compare all in
  let rec dups = function
    | a :: (b :: _ as rest) -> if String.equal a b then a :: dups rest else dups rest
    | [ _ ] | [] -> []
  in
  List.map
    (fun t -> issue Warning "retrieve target %s is used more than once; values will be merged" t)
    (List.sort_uniq String.compare (dups sorted))

let check_use_before_bind body =
  let rec walk bound acc = function
    | [] -> acc
    | e :: rest ->
      let acc =
        match e with
        | Ast.Select { ttype; key; data } ->
          let used = List.filter_map Pattern.uses [ ttype; key; data ] in
          List.fold_left
            (fun acc var ->
              if List.mem var bound then acc
              else issue Warning "variable %s is used before any selection binds it" var :: acc)
            acc used
        | Ast.Block { body = inner; _ } ->
          (* inside a block, every binding in the block may be live on
             re-entry *)
          let inner_bound = List.concat_map element_binds inner @ bound in
          walk inner_bound acc inner
        | Ast.Deref _ | Ast.Retrieve _ -> acc
      in
      walk (element_binds e @ bound) acc rest
  in
  List.rev (walk [] [] body)

let check body =
  check_blocks body @ check_derefs body @ check_use_before_bind body @ check_retrieve_targets body

let errors body = List.filter (fun i -> i.severity = Error) (check body)

let is_valid body = errors body = []

let pp_issue ppf { severity; message } =
  let label = match severity with Error -> "error" | Warning -> "warning" in
  Fmt.pf ppf "%s: %s" label message
