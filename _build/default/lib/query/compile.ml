(* Flattening of the nested surface syntax into the engine's indexed
   filter array.  A block "[ body ]^k" becomes the body's filters
   followed by an Iter filter whose body_start is the index of the body's
   first filter — the I_j^k representation of Section 3. *)

exception Error of string

let compile ast =
  let filters = ref [] in
  let count_filters = ref 0 in
  let emit filter =
    filters := filter :: !filters;
    incr count_filters
  in
  let rec emit_element = function
    | Ast.Select { ttype; key; data } -> emit (Filter.select ~ttype ~key ~data)
    | Ast.Deref { var; mode } -> emit (Filter.deref ~mode var)
    | Ast.Retrieve { ttype; key; target } -> emit (Filter.retrieve ~ttype ~key ~target)
    | Ast.Block { body; count } ->
      if body = [] then raise (Error "empty iteration block");
      let body_start = !count_filters in
      List.iter emit_element body;
      emit (Filter.iter ~body_start ~count)
  in
  List.iter emit_element ast;
  Program.of_filters (List.rev !filters)

(* Reconstruct a surface AST from a compiled program (inverse of
   [compile] up to block structure).  Used by the printer and by tests
   that check compile/decompile round-trips. *)
let decompile program =
  let filters = Array.of_list (Program.filters program) in
  (* Build elements right-to-left; when we hit an Iter we know its body
     spans [body_start, i). *)
  let rec build lo hi =
    (* elements for filter indexes [lo, hi) *)
    if lo >= hi then []
    else begin
      match filters.(hi - 1) with
      | Filter.Select { ttype; key; data } -> build lo (hi - 1) @ [ Ast.Select { ttype; key; data } ]
      | Filter.Deref { var; mode } -> build lo (hi - 1) @ [ Ast.Deref { var; mode } ]
      | Filter.Retrieve { ttype; key; target } ->
        build lo (hi - 1) @ [ Ast.Retrieve { ttype; key; target } ]
      | Filter.Iter { body_start; count } ->
        if body_start < lo then raise (Error "iterator body crosses block boundary");
        let body = build body_start (hi - 1) in
        build lo body_start @ [ Ast.Block { body; count } ]
    end
  in
  build 0 (Array.length filters)
