(* Combinator interface for constructing queries from application code —
   the programmatic twin of the concrete syntax.  Designed for
   pipeline-style use:

     Builder.(
       body
         [ closure [ pointers ~key:"Reference" "X"; follow "X" ]
         ; keyword "Distributed"
         ])
*)

let select ?(ttype = Pattern.any) ?(key = Pattern.any) ?(data = Pattern.any) () =
  Ast.Select { ttype; key; data }

let tuple ttype key data = Ast.Select { ttype; key; data }

(* Selection of pointer tuples with a given key, binding the targets. *)
let pointers ?key var =
  let key_pattern = match key with Some k -> Pattern.exact_str k | None -> Pattern.any in
  Ast.Select
    { ttype = Pattern.exact_str Hf_data.Tuple.type_pointer;
      key = key_pattern;
      data = Pattern.bind var;
    }

let keyword word =
  Ast.Select
    { ttype = Pattern.exact_str Hf_data.Tuple.type_keyword;
      key = Pattern.glob word;
      data = Pattern.any;
    }

let string_equals ~key value =
  Ast.Select
    { ttype = Pattern.exact_str Hf_data.Tuple.type_string;
      key = Pattern.exact_str key;
      data = Pattern.glob value;
    }

let number_in ~key lo hi =
  Ast.Select
    { ttype = Pattern.exact_str Hf_data.Tuple.type_number;
      key = Pattern.exact_str key;
      data = Pattern.range lo hi;
    }

let follow var = Ast.Deref { var; mode = Filter.Replace }

let follow_keeping var = Ast.Deref { var; mode = Filter.Keep_parent }

let retrieve ?(ttype = Pattern.any) ~key target =
  Ast.Retrieve { ttype; key = Pattern.exact_str key; target }

let closure body = Ast.closure body

let repeat k body = Ast.repeat k body

let body elements = elements

(* The query shape used throughout the paper's experiments: follow
   pointers with [key] to the transitive closure (or [depth] levels),
   keeping every visited object, and filter by a selection. *)
let reachability ?depth ~key selection =
  let count =
    match depth with
    | None -> Filter.Star
    | Some k when k >= 1 -> Filter.Finite k
    | Some k -> invalid_arg (Printf.sprintf "Builder.reachability: depth %d < 1" k)
  in
  let var = "X" in
  [ Ast.Block { body = [ pointers ~key var; follow_keeping var ]; count }; selection ]

let compile = Compile.compile

let program elements = Compile.compile elements
