(* A compiled query body: the flat array F_0 ... F_{n-1}.  (The paper
   numbers filters from 1; we use 0-based indexes throughout and the
   distinguished index [length] means "past the last filter", i.e. the
   object has passed everything.) *)

type t = { filters : Filter.t array }

exception Ill_formed of string

let check filters =
  Array.iteri
    (fun i filter ->
      match filter with
      | Filter.Iter { body_start; _ } ->
        if body_start > i then
          raise
            (Ill_formed
               (Printf.sprintf "iterator at %d has body_start %d beyond itself" i body_start))
      | Filter.Select _ | Filter.Deref _ | Filter.Retrieve _ -> ())
    filters

let of_filters filters =
  let filters = Array.of_list filters in
  check filters;
  { filters }

let filters t = Array.to_list t.filters

let length t = Array.length t.filters

let get t i =
  if i < 0 || i >= Array.length t.filters then invalid_arg "Program.get: index out of bounds";
  t.filters.(i)

let equal a b =
  Array.length a.filters = Array.length b.filters
  && Array.for_all2 Filter.equal a.filters b.filters

(* Rough serialized size of the query body, in bytes.  The paper reports
   ~40-byte query messages; this estimate feeds the communication-cost
   accounting in the benchmarks. *)
let byte_size t =
  let pattern_size = function
    | Pattern.Any -> 1
    | Pattern.Exact v -> 1 + Hf_data.Value.byte_size v
    | Pattern.Glob g -> 1 + String.length g
    | Pattern.Range _ -> 9
    | Pattern.Bind v | Pattern.Use v -> 1 + String.length v
  in
  let filter_size = function
    | Filter.Select { ttype; key; data } ->
      1 + pattern_size ttype + pattern_size key + pattern_size data
    | Filter.Deref { var; _ } -> 2 + String.length var
    | Filter.Iter _ -> 6
    | Filter.Retrieve { ttype; key; target } ->
      1 + pattern_size ttype + pattern_size key + String.length target
  in
  Array.fold_left (fun acc f -> acc + filter_size f) 4 t.filters

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.iter_bindings ~sep:Fmt.cut
       (fun f arr -> Array.iteri (fun i x -> f i x) arr)
       (fun ppf (i, filter) -> Fmt.pf ppf "F%d: %a" i Filter.pp filter))
    t.filters

let to_string t = Fmt.str "%a" pp t
