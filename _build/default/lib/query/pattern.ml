(* Patterns appearing in selection filters (paper, Section 3).  A pattern
   matches a single tuple field.  [Bind] always matches and records the
   field value as a binding of the matching variable; [Use] matches when
   the field value is among the variable's current bindings. *)

type t =
  | Any
  | Exact of Hf_data.Value.t
  | Glob of string
  | Range of int * int
  | Bind of string
  | Use of string

let any = Any

let exact v = Exact v

let exact_str s = Exact (Hf_data.Value.str s)

let exact_num n = Exact (Hf_data.Value.num n)

let glob pattern =
  if Hf_util.Glob.is_literal pattern then Exact (Hf_data.Value.str pattern) else Glob pattern

let range lo hi =
  if lo > hi then invalid_arg "Pattern.range: lo > hi";
  Range (lo, hi)

let bind var =
  if String.length var = 0 then invalid_arg "Pattern.bind: empty variable name";
  Bind var

let use var =
  if String.length var = 0 then invalid_arg "Pattern.use: empty variable name";
  Use var

let binds = function Bind var -> Some var | Any | Exact _ | Glob _ | Range _ | Use _ -> None

let uses = function Use var -> Some var | Any | Exact _ | Glob _ | Range _ | Bind _ -> None

let matches pattern value ~lookup =
  match pattern with
  | Any -> true
  | Bind _ -> true
  | Exact v -> Hf_data.Value.equal v value
  | Glob g ->
    (match value with
     | Hf_data.Value.Str s -> Hf_util.Glob.matches ~pattern:g s
     | Hf_data.Value.Num _ | Hf_data.Value.Real _ | Hf_data.Value.Ptr _ | Hf_data.Value.Blob _ ->
       false)
  | Range (lo, hi) ->
    (match value with
     | Hf_data.Value.Num n -> lo <= n && n <= hi
     | Hf_data.Value.Str _ | Hf_data.Value.Real _ | Hf_data.Value.Ptr _ | Hf_data.Value.Blob _ ->
       false)
  | Use var -> List.exists (Hf_data.Value.equal value) (lookup var)

let equal a b =
  match a, b with
  | Any, Any -> true
  | Exact x, Exact y -> Hf_data.Value.equal x y
  | Glob x, Glob y -> String.equal x y
  | Range (a1, b1), Range (a2, b2) -> a1 = a2 && b1 = b2
  | Bind x, Bind y -> String.equal x y
  | Use x, Use y -> String.equal x y
  | (Any | Exact _ | Glob _ | Range _ | Bind _ | Use _), _ -> false

let pp ppf = function
  | Any -> Fmt.string ppf "?"
  | Exact v -> Hf_data.Value.pp ppf v
  | Glob g -> Fmt.pf ppf "%S" g
  | Range (lo, hi) -> Fmt.pf ppf "%d..%d" lo hi
  | Bind var -> Fmt.pf ppf "?%s" var
  | Use var -> Fmt.pf ppf "=%s" var

let to_string p = Fmt.str "%a" pp p
