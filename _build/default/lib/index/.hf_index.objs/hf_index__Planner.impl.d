lib/index/planner.ml: Hf_data Hf_engine Hf_query Keyword_index List Printf Reachability String
