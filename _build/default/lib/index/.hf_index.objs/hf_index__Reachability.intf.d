lib/index/reachability.mli: Hf_data
