lib/index/backlinks.mli: Hf_data
