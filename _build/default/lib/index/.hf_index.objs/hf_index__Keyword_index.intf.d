lib/index/keyword_index.mli: Hf_data
