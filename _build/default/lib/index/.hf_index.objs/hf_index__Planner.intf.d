lib/index/planner.mli: Hf_data Hf_query Keyword_index Reachability
