lib/index/keyword_index.ml: Hf_data Hf_util List Smap String
