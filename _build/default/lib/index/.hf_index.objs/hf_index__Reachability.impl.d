lib/index/reachability.ml: Array Fun Hf_data Int List
