lib/index/backlinks.ml: Hf_data List String
