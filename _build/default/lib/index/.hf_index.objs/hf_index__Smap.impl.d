lib/index/smap.ml: Map String
