(* Backward chaining support.  The paper's query language deliberately
   has no backward dereference ("find all routines that call this one");
   its prescription: "the application can explicitly incorporate back
   pointers in the objects.  This fits with our policy of providing a
   low-level service on which applications are built."

   This module is that application-side facility: a reverse-pointer
   index over a store, and a materializer that writes the back pointers
   into the objects themselves so ordinary forward queries (and the
   distributed engine, unchanged) can follow them. *)

type entry = { source : Hf_data.Oid.t; key : string }

type t = {
  key : string option;
  entries : entry list Hf_data.Oid.Table.t; (* target -> incoming edges *)
}

let of_objects ?key ~iter () =
  let entries = Hf_data.Oid.Table.create 64 in
  let add target entry =
    let existing =
      match Hf_data.Oid.Table.find_opt entries target with None -> [] | Some l -> l
    in
    Hf_data.Oid.Table.replace entries target (entry :: existing)
  in
  iter (fun obj ->
      let source = Hf_data.Hobject.oid obj in
      List.iter
        (fun tuple ->
          match Hf_data.Tuple.pointer_target tuple with
          | None -> ()
          | Some target -> (
              match Hf_data.Value.as_string (Hf_data.Tuple.key tuple) with
              | None -> ()
              | Some tuple_key -> (
                  match key with
                  | Some wanted when not (String.equal wanted tuple_key) -> ()
                  | Some _ | None -> add target { source; key = tuple_key })))
        (Hf_data.Hobject.tuples obj));
  { key; entries }

let of_store ?key store = of_objects ?key ~iter:(Hf_data.Store.iter store) ()

let incoming t target =
  match Hf_data.Oid.Table.find_opt t.entries target with None -> [] | Some l -> List.rev l

let referrers t target =
  List.fold_left
    (fun acc e -> Hf_data.Oid.Set.add e.source acc)
    Hf_data.Oid.Set.empty (incoming t target)

let referrer_count t target = List.length (incoming t target)

let indexed_key t = t.key

(* Write the back pointers into the objects: for every forward pointer
   (Pointer, k, ->target) in the store, add (Pointer, back_key k, ->src)
   to the target object (when it lives in this store).  After this,
   "find all routines that call X" is the ordinary forward query
   [X (Pointer, "Called Routine<-", ?Y) ^Y]. *)
let default_back_key key = key ^ "<-"

let materialize ?(back_key = default_back_key) ?key store =
  let t = of_store ?key store in
  let updated = ref 0 in
  Hf_data.Oid.Table.iter
    (fun target edges ->
      match Hf_data.Store.find store target with
      | None -> () (* remote or dangling target: the application would
                      route this to the owning site *)
      | Some obj ->
        let obj' =
          List.fold_left
            (fun obj { source; key } ->
              Hf_data.Hobject.add obj (Hf_data.Tuple.pointer ~key:(back_key key) source))
            obj edges
        in
        if not (Hf_data.Hobject.equal obj obj') then begin
          Hf_data.Store.replace store obj';
          incr updated
        end)
    t.entries;
  !updated
