(* String-keyed map used by the index structures. *)
include Map.Make (String)
