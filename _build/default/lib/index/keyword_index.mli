(** Inverted index over keyword tuples (paper, Section 2's conventional
    indexing facility).

    Maps each keyword to the set of objects containing a
    [(Keyword, word, _)] tuple; maintained incrementally. *)

type t

val create : unit -> t

val of_store : Hf_data.Store.t -> t
(** Index every object currently in the store. *)

val add : t -> Hf_data.Hobject.t -> unit

val remove : t -> Hf_data.Hobject.t -> unit
(** Remove using the object's current tuple set (pass the same version
    that was indexed). *)

val replace : t -> old_obj:Hf_data.Hobject.t -> Hf_data.Hobject.t -> unit

val lookup : t -> string -> Hf_data.Oid.Set.t
(** Objects containing the exact keyword. *)

val lookup_glob : t -> string -> Hf_data.Oid.Set.t
(** Objects containing any keyword matching the glob; falls back to
    {!lookup} for literal patterns. *)

val vocabulary : t -> string list
(** All indexed keywords, sorted. *)

val cardinal : t -> int
(** Distinct keywords. *)

val indexed_objects : t -> int
