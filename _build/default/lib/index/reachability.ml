(* Reachability index over the pointer graph (paper, Section 2: "indexes
   based on the reachability of an object, to speed up queries such as
   'find all documents referenced directly or indirectly by this
   document that in addition have a given keyword'").

   Construction condenses the pointer graph's strongly connected
   components (iterative Tarjan, cycle-safe) and computes, per
   component, the set of reachable components in reverse topological
   order; per-object reachable sets are then materialized on demand.
   The index is restricted to one pointer key (or all pointers) at build
   time, matching the query shapes it accelerates. *)

type t = {
  key : string option; (* restrict to pointers with this key; None = all *)
  component_of : int Hf_data.Oid.Table.t; (* object -> component id *)
  members : Hf_data.Oid.t list array; (* component id -> member objects *)
  reach : Hf_data.Oid.Set.t option array; (* component id -> reachable objects (memo) *)
  successors : int list array; (* component DAG edges *)
  order : int array; (* components in reverse topological order *)
}

let out_edges ~key obj =
  match key with
  | None -> Hf_data.Hobject.pointers obj
  | Some key -> Hf_data.Hobject.pointers_with_key obj ~key

(* Iterative Tarjan SCC.  Objects outside the store (dangling pointers)
   are ignored, as the engine ignores them at run time. *)
let tarjan ~find ~key oids =
  let index_of = Hf_data.Oid.Table.create 64 in
  let lowlink = Hf_data.Oid.Table.create 64 in
  let on_stack = Hf_data.Oid.Table.create 64 in
  let stack = ref [] in
  let next_index = ref 0 in
  let component_of = Hf_data.Oid.Table.create 64 in
  let components = ref [] in
  let n_components = ref 0 in
  let rec strongconnect v =
    (* Explicit work stack of (node, remaining successors) frames keeps
       deep chains (the 270-object chain workload!) off the OCaml
       stack. *)
    let frames = ref [ (v, ref (successors v)) ] in
    visit v;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (node, rest) :: tail -> (
          match !rest with
          | w :: more ->
            rest := more;
            if not (Hf_data.Oid.Table.mem index_of w) then begin
              visit w;
              frames := (w, ref (successors w)) :: !frames
            end
            else if Hf_data.Oid.Table.mem on_stack w then
              update_lowlink node (Hf_data.Oid.Table.find index_of w)
          | [] ->
            if Hf_data.Oid.Table.find lowlink node = Hf_data.Oid.Table.find index_of node
            then pop_component node;
            frames := tail;
            (match tail with
             | (parent, _) :: _ ->
               update_lowlink parent (Hf_data.Oid.Table.find lowlink node)
             | [] -> ()))
    done
  and successors v =
    match find v with
    | None -> []
    | Some obj -> List.filter (fun w -> find w <> None) (out_edges ~key obj)
  and visit v =
    Hf_data.Oid.Table.replace index_of v !next_index;
    Hf_data.Oid.Table.replace lowlink v !next_index;
    incr next_index;
    stack := v :: !stack;
    Hf_data.Oid.Table.replace on_stack v ()
  and update_lowlink v candidate =
    if candidate < Hf_data.Oid.Table.find lowlink v then
      Hf_data.Oid.Table.replace lowlink v candidate
  and pop_component root =
    let id = !n_components in
    incr n_components;
    let rec pop acc =
      match !stack with
      | [] -> acc
      | w :: rest ->
        stack := rest;
        Hf_data.Oid.Table.remove on_stack w;
        Hf_data.Oid.Table.replace component_of w id;
        let acc = w :: acc in
        if Hf_data.Oid.equal w root then acc else pop acc
    in
    components := (id, pop []) :: !components
  in
  List.iter (fun v -> if not (Hf_data.Oid.Table.mem index_of v) then strongconnect v) oids;
  (component_of, !components, !n_components)

let build ?key ~find oids =
  let component_of, components, n = tarjan ~find ~key oids in
  let members = Array.make (max n 1) [] in
  List.iter (fun (id, objs) -> members.(id) <- objs) components;
  let successors = Array.make (max n 1) [] in
  Array.iteri
    (fun id objs ->
      let succ =
        List.concat_map
          (fun oid ->
            match find oid with
            | None -> []
            | Some obj ->
              List.filter_map
                (fun w -> Hf_data.Oid.Table.find_opt component_of w)
                (out_edges ~key obj))
          objs
      in
      successors.(id) <- List.sort_uniq Int.compare (List.filter (fun c -> c <> id) succ))
    members;
  (* Tarjan emits components in reverse topological order of the
     condensation (every successor is emitted before its predecessors),
     so processing ids 0,1,2,... sees successors first. *)
  let order = Array.init n Fun.id in
  {
    key;
    component_of;
    members;
    reach = Array.make (max n 1) None;
    successors;
    order;
  }

let of_store ?key store = build ?key ~find:(Hf_data.Store.find store) (Hf_data.Store.oids store)

let rec component_reach t id =
  match t.reach.(id) with
  | Some set -> set
  | None ->
    let own =
      List.fold_left (fun acc oid -> Hf_data.Oid.Set.add oid acc) Hf_data.Oid.Set.empty
        t.members.(id)
    in
    let set =
      List.fold_left
        (fun acc succ -> Hf_data.Oid.Set.union acc (component_reach t succ))
        own t.successors.(id)
    in
    t.reach.(id) <- Some set;
    set

let reachable t oid =
  match Hf_data.Oid.Table.find_opt t.component_of oid with
  | None -> Hf_data.Oid.Set.empty
  | Some id -> component_reach t id

let is_reachable t ~source ~target = Hf_data.Oid.Set.mem target (reachable t source)

let component_count t = Array.length t.members

let key t = t.key
