(** Reachability index over the pointer graph (paper, Section 2's
    reachability indexing facility).

    Built by condensing strongly connected components (cycle-safe) and
    memoizing per-component reachable sets.  Restricted at build time to
    one pointer key, or all pointers. *)

type t

val build :
  ?key:string -> find:(Hf_data.Oid.t -> Hf_data.Hobject.t option) -> Hf_data.Oid.t list -> t
(** Index the graph over the given objects; dangling pointers are
    ignored (as the engine ignores them at run time). *)

val of_store : ?key:string -> Hf_data.Store.t -> t

val reachable : t -> Hf_data.Oid.t -> Hf_data.Oid.Set.t
(** All objects reachable from [oid] (including itself) following
    indexed pointers; empty for unknown objects. *)

val is_reachable : t -> source:Hf_data.Oid.t -> target:Hf_data.Oid.t -> bool

val component_count : t -> int

val key : t -> string option
