(* Conventional inverted index over keyword tuples (paper, Section 2 —
   "we have developed facilities for indexing [4]: conventional indexes,
   say for keywords in documents").

   Maps each keyword to the set of objects containing a (Keyword, word,
   _) tuple.  Maintained incrementally as objects are added, replaced or
   removed. *)

type t = {
  mutable entries : Hf_data.Oid.Set.t Smap.t;
  mutable indexed : int; (* objects currently indexed *)
}

let create () = { entries = Smap.empty; indexed = 0 }

let keywords_of obj = List.sort_uniq String.compare (Hf_data.Hobject.keywords obj)

let add t obj =
  let oid = Hf_data.Hobject.oid obj in
  List.iter
    (fun word ->
      let set =
        match Smap.find_opt word t.entries with
        | None -> Hf_data.Oid.Set.empty
        | Some set -> set
      in
      t.entries <- Smap.add word (Hf_data.Oid.Set.add oid set) t.entries)
    (keywords_of obj);
  t.indexed <- t.indexed + 1

let remove t obj =
  let oid = Hf_data.Hobject.oid obj in
  List.iter
    (fun word ->
      match Smap.find_opt word t.entries with
      | None -> ()
      | Some set ->
        let set = Hf_data.Oid.Set.remove oid set in
        t.entries <-
          (if Hf_data.Oid.Set.is_empty set then Smap.remove word t.entries
           else Smap.add word set t.entries))
    (keywords_of obj);
  t.indexed <- max 0 (t.indexed - 1)

let replace t ~old_obj obj =
  remove t old_obj;
  add t obj

let of_store store =
  let t = create () in
  Hf_data.Store.iter store (add t);
  t

let lookup t word =
  match Smap.find_opt word t.entries with
  | None -> Hf_data.Oid.Set.empty
  | Some set -> set

(* Glob lookup scans the dictionary; exact lookups stay O(log n). *)
let lookup_glob t pattern =
  if Hf_util.Glob.is_literal pattern then lookup t pattern
  else
    Smap.fold
      (fun word set acc ->
        if Hf_util.Glob.matches ~pattern word then Hf_data.Oid.Set.union set acc else acc)
      t.entries Hf_data.Oid.Set.empty

let vocabulary t = List.map fst (Smap.bindings t.entries)

let cardinal t = Smap.cardinal t.entries

let indexed_objects t = t.indexed
