(** Index-accelerated evaluation of the reachability-plus-selection
    query shape (paper, Section 2: "find all documents referenced
    directly or indirectly by this document that in addition have a
    given keyword").

    Queries of the shape [\[ (Pointer, key, ?X) ^^X \]* selection] are
    answered from the reachability index (intersected with the keyword
    index when the selection is a keyword test); anything else falls
    back to the engine, so the planner is always safe to call. *)

type indexes = {
  reachability : Reachability.t option;
  keywords : Keyword_index.t option;
}

val no_indexes : indexes

type plan =
  | Indexed of string  (** description of the index strategy. *)
  | Scan  (** the engine will be used. *)

val explain : indexes -> Hf_query.Ast.t -> plan

val answer :
  ?indexes:indexes ->
  find:(Hf_data.Oid.t -> Hf_data.Hobject.t option) ->
  Hf_query.Ast.t ->
  Hf_data.Oid.t list ->
  Hf_data.Oid.Set.t
(** Result set of the query over [initial]; uses indexes when the shape
    and the available indexes allow, the engine otherwise. *)
