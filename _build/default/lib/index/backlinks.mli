(** Backward chaining (paper, Section 2: backward queries are left to
    applications, which "can explicitly incorporate back pointers in the
    objects").

    Provides a reverse-pointer index over a store and a materializer
    that writes the back pointers into the objects, after which ordinary
    forward queries follow them. *)

type entry = { source : Hf_data.Oid.t; key : string }

type t

val of_store : ?key:string -> Hf_data.Store.t -> t
(** Reverse index of the store's pointer tuples; [key] restricts to one
    pointer key. *)

val incoming : t -> Hf_data.Oid.t -> entry list
(** Edges pointing at the object, in tuple order per source. *)

val referrers : t -> Hf_data.Oid.t -> Hf_data.Oid.Set.t
(** Distinct objects pointing at the target. *)

val referrer_count : t -> Hf_data.Oid.t -> int

val indexed_key : t -> string option

val default_back_key : string -> string
(** ["k"] becomes ["k<-"]. *)

val materialize : ?back_key:(string -> string) -> ?key:string -> Hf_data.Store.t -> int
(** Add a [(Pointer, back_key k, source)] tuple to every locally stored
    pointer target; returns the number of objects updated.  Idempotent:
    re-running adds nothing new (tuple sets). *)
