(* Index-accelerated evaluation of the paper's flagship query shape:

     S [ (Pointer, key, ?X) ^^X ]* selection

   i.e. "find all objects reachable from S via pointers named key that in
   addition satisfy a selection".  When a reachability index for the key
   and (for keyword selections) a keyword index are available, the
   answer is an intersection of indexed sets — no graph traversal at
   query time.  [answer] recognizes the shape; anything else falls back
   to the engine, so the planner is always safe to call. *)

type indexes = {
  reachability : Reachability.t option;
  keywords : Keyword_index.t option;
}

let no_indexes = { reachability = None; keywords = None }

type plan =
  | Indexed of string (* human-readable description, for explain *)
  | Scan

(* Recognize: [ (Pointer, key, ?X) ^^X ]* selection, with the iteration
   over exactly those two elements and a single trailing selection. *)
let recognize ast =
  match ast with
  | [ Hf_query.Ast.Block
        { body =
            [ Hf_query.Ast.Select
                { ttype = Hf_query.Pattern.Exact (Hf_data.Value.Str ptype);
                  key = key_pattern;
                  data = Hf_query.Pattern.Bind var;
                };
              Hf_query.Ast.Deref { var = dvar; mode = Hf_query.Filter.Keep_parent }
            ];
          count = Hf_query.Filter.Star;
        };
      (Hf_query.Ast.Select _ as selection)
    ]
    when String.equal ptype Hf_data.Tuple.type_pointer && String.equal var dvar -> (
      match key_pattern with
      | Hf_query.Pattern.Exact (Hf_data.Value.Str key) -> Some (Some key, selection)
      | Hf_query.Pattern.Any -> Some (None, selection)
      | _ -> None)
  | _ -> None

let selection_matches ~find selection oid =
  match find oid with
  | None -> false
  | Some obj -> (
      match selection with
      | Hf_query.Ast.Select { ttype; key; data } ->
        let lookup _ = [] in
        List.exists
          (fun tuple ->
            Hf_query.Pattern.matches ttype
              (Hf_data.Value.str (Hf_data.Tuple.ttype tuple))
              ~lookup
            && Hf_query.Pattern.matches key (Hf_data.Tuple.key tuple) ~lookup
            && Hf_query.Pattern.matches data (Hf_data.Tuple.data tuple) ~lookup)
          (Hf_data.Hobject.tuples obj)
      | Hf_query.Ast.Deref _ | Hf_query.Ast.Retrieve _ | Hf_query.Ast.Block _ -> false)

let keyword_of_selection = function
  | Hf_query.Ast.Select
      { ttype = Hf_query.Pattern.Exact (Hf_data.Value.Str t); key; data = Hf_query.Pattern.Any }
    when String.equal t Hf_data.Tuple.type_keyword -> (
      match key with
      | Hf_query.Pattern.Exact (Hf_data.Value.Str word) -> Some word
      | Hf_query.Pattern.Glob word -> Some word
      | _ -> None)
  | _ -> None

let explain indexes ast =
  match recognize ast with
  | None -> Scan
  | Some (key, selection) -> (
      match indexes.reachability with
      | Some reach when Reachability.key reach = key -> (
          match keyword_of_selection selection, indexes.keywords with
          | Some word, Some _ -> Indexed (Printf.sprintf "reachability ∩ keyword(%s)" word)
          | _ -> Indexed "reachability + residual selection scan")
      | Some _ | None -> Scan)

let answer ?(indexes = no_indexes) ~find ast initial =
  match recognize ast, indexes.reachability with
  | Some (key, selection), Some reach when Reachability.key reach = key ->
    let closure =
      List.fold_left
        (fun acc oid -> Hf_data.Oid.Set.union acc (Reachability.reachable reach oid))
        Hf_data.Oid.Set.empty initial
    in
    let result =
      match keyword_of_selection selection, indexes.keywords with
      | Some word, Some kw_index ->
        Hf_data.Oid.Set.inter closure (Keyword_index.lookup_glob kw_index word)
      | _, _ -> Hf_data.Oid.Set.filter (selection_matches ~find selection) closure
    in
    result
  | _ ->
    (* General case: delegate to the engine. *)
    let program = Hf_query.Compile.compile ast in
    (Hf_engine.Local.run ~find program initial).Hf_engine.Local.result_set
