lib/client/embedded.ml: Hashtbl Hf_data Hf_query Hf_server List Option Printf String
