lib/client/embedded.mli: Hf_data Hf_query Hf_server Hf_sim
