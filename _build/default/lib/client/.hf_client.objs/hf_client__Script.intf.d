lib/client/script.mli: Embedded Format Result
