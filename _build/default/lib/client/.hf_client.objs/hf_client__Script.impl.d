lib/client/script.ml: Embedded Fmt Hf_server List Result String
