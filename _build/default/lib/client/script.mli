(** Query-script runner, modeled on the paper's experimental client: one
    query per line, executed sequentially; [';'] comments and blank
    lines are skipped. *)

type entry = {
  line : int;
  text : string;
  result : (Embedded.result, string) Result.t;
}

type report = {
  entries : entry list;
  queries_run : int;
  failures : int;
  total_response_time : float;  (** virtual seconds, successful queries. *)
}

val run : ?origin:int -> Embedded.t -> string -> report

val pp_entry : Format.formatter -> entry -> unit
val pp_report : Format.formatter -> report -> unit
