(* Query-script runner, modeled on the paper's experimental client:
   "our experimental client read a query from a script, submitted it to
   HyperFile, received the result, and then went on to the next query in
   the script".

   Script format: one query per line in the concrete syntax; blank
   lines and lines starting with ';' are skipped. *)

type entry = {
  line : int;
  text : string;
  result : (Embedded.result, string) Result.t;
}

type report = {
  entries : entry list;
  queries_run : int;
  failures : int;
  total_response_time : float; (* virtual seconds over successful queries *)
}

let is_blank text = String.trim text = ""

let is_comment text =
  let trimmed = String.trim text in
  String.length trimmed > 0 && trimmed.[0] = ';'

let run ?origin t source =
  let lines = String.split_on_char '\n' source in
  let entries = ref [] in
  List.iteri
    (fun idx text ->
      if not (is_blank text || is_comment text) then begin
        let result =
          match Embedded.query ?origin t text with
          | r -> Ok r
          | exception Embedded.Invalid_query message -> Error message
        in
        entries := { line = idx + 1; text; result } :: !entries
      end)
    lines;
  let entries = List.rev !entries in
  let queries_run = List.length entries in
  let failures =
    List.length (List.filter (fun e -> Result.is_error e.result) entries)
  in
  let total_response_time =
    List.fold_left
      (fun acc e ->
        match e.result with
        | Ok r -> acc +. r.Embedded.outcome.Hf_server.Cluster.response_time
        | Error _ -> acc)
      0.0 entries
  in
  { entries; queries_run; failures; total_response_time }

let pp_entry ppf e =
  match e.result with
  | Ok r ->
    Fmt.pf ppf "line %d: %d results in %.3fs%s" e.line
      (List.length r.Embedded.oids)
      r.Embedded.outcome.Hf_server.Cluster.response_time
      (match r.Embedded.target with Some t -> " -> " ^ t | None -> "")
  | Error message -> Fmt.pf ppf "line %d: error: %s" e.line message

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%a@,%d queries, %d failures, %.3fs total virtual response time@]"
    (Fmt.list ~sep:Fmt.cut pp_entry) r.entries r.queries_run r.failures
    r.total_response_time
