(** The per-query mark table (paper, Section 3.1, refined).

    Maps each object id to the set of processing states — (filter index,
    canonical iteration counters) — at which the object has already been
    processed.  Marks per filter index are the paper's "important
    subtlety" (an object that failed early filters must still be
    processed when a later dereference lands elsewhere); including the
    canonical counters additionally makes finite-iterator queries
    independent of message arrival order (for pure-star queries the
    counters are all zero, collapsing to exactly the paper's key).  In
    the distributed algorithm each site keeps its own table covering
    only locally processed objects. *)

type t

val create : ?synchronized:bool -> unit -> t
(** [synchronized:true] guards every operation with a mutex, for the
    shared-memory multiprocessor engine (paper, Section 6) where several
    domains share one table.  Default [false]. *)

val mem : t -> Hf_data.Oid.t -> int -> iters:int array -> bool
(** Has the object been processed in this state? *)

val add : t -> Hf_data.Oid.t -> int -> iters:int array -> unit

val marks : t -> Hf_data.Oid.t -> (int * int array) list
(** All marked states for the object, sorted. *)

val marked_indices : t -> Hf_data.Oid.t -> int list
(** Distinct filter indexes marked for the object, sorted. *)

val cardinal : t -> int
(** Number of distinct objects marked. *)

val total_marks : t -> int
(** Total marked states — a memory-footprint measure. *)

val clear : t -> unit
