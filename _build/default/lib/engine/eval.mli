(** The E function of Section 3.1 and the per-object processing loop.

    [run_object] pushes one object through the filters from its start
    index until it passes the whole query or fails a filter, exactly as
    in Figure 3's inner loop:

    - entry is suppressed when the mark table already records the item's
      start index (cycle breaking / duplicate suppression);
    - every visited filter index is marked;
    - dereferences spawn new work items, returned to the caller for
      routing (local working set or remote message);
    - [Retrieve] matches emit values through [emit]. *)

type step_result = {
  spawned : Work_item.t list;
  passed : bool;  (** the object fell past the last filter. *)
  skipped : bool;  (** the mark table suppressed processing entirely. *)
}

val run_object :
  plan:Plan.t ->
  find:(Hf_data.Oid.t -> Hf_data.Hobject.t option) ->
  marks:Mark_table.t ->
  stats:Stats.t ->
  emit:(target:string -> Hf_data.Value.t list -> unit) ->
  Work_item.t ->
  step_result
(** A dangling pointer ([find] returns [None]) drops the item and counts
    in [stats.dangling]. *)
