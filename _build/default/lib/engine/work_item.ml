(* The per-object state that must survive in the working set W — and, for
   remote dereferences, on the wire.  Exactly the paper's observation
   (end of Section 3.1): only the object id, the starting filter, and the
   iteration numbers are needed; O.next and O.mvars exist only while the
   object is actively being processed. *)

type t = {
  oid : Hf_data.Oid.t;
  start : int; (* first filter to process this object *)
  iters : int array; (* iteration counter per Plan slot; chain length, >= 1 *)
}

let initial plan oid =
  { oid; start = 0; iters = Array.init (Plan.iter_count plan) (Plan.initial_counter plan) }

let make ~oid ~start ~iters = { oid; start; iters }

let oid t = t.oid

let start t = t.start

let iters t = t.iters

let iter_at t slot =
  if slot < 0 || slot >= Array.length t.iters then invalid_arg "Work_item.iter_at";
  t.iters.(slot)

(* A dereference at filter index [deref_index] reached [target]: the new
   item starts at the filter following the dereference, with the counter
   of every enclosing iterator incremented (canonicalized) — the pointer
   chain through each of those iterators' bodies is one longer. *)
let spawn plan ~deref_index ~target t =
  let iters = Array.copy t.iters in
  List.iter
    (fun slot -> iters.(slot) <- Plan.bump_counter plan slot iters.(slot))
    (Plan.enclosing_iterator_slots plan deref_index);
  { oid = target; start = deref_index + 1; iters }

let with_start t start = { t with start }

let equal a b =
  Hf_data.Oid.equal a.oid b.oid
  && a.start = b.start
  && Array.length a.iters = Array.length b.iters
  && Array.for_all2 ( = ) a.iters b.iters

let pp ppf t =
  Fmt.pf ppf "{oid=%a; start=%d; iters=[%a]}" Hf_data.Oid.pp t.oid t.start
    Fmt.(array ~sep:(any ";") int)
    t.iters
