(* Static analysis of a compiled program, computed once per query and
   shared by every site processing it:

   - which [Iter] filters enclose each filter index, so a dereference
     knows which iteration counters to bump;
   - a dense numbering of the iterators, so a work item can carry its
     iteration counters as a small array (the paper's "stack of
     iteration numbers", keyed statically rather than dynamically —
     identical for non-nested iterators, the common case the paper
     expects, and a documented, terminating semantics for nested ones:
     a dereference lengthens the pointer chain through *every* iterator
     whose body contains it, so each iterator bounds the total chain
     length through its body by its own k). *)

type t = {
  program : Hf_query.Program.t;
  slot_of_iter : int array; (* filter index -> dense iterator slot, or -1 *)
  enclosing_slots : int list array; (* filter index -> slots of all enclosing iterators *)
  slot_caps : int array; (* per slot: k for Finite k, 0 for Star *)
  iter_count : int;
}

let make program =
  let n = Hf_query.Program.length program in
  let slot_of_iter = Array.make n (-1) in
  let caps = ref [] in
  let iter_count = ref 0 in
  for i = 0 to n - 1 do
    match Hf_query.Program.get program i with
    | Hf_query.Filter.Iter { count; _ } ->
      slot_of_iter.(i) <- !iter_count;
      incr iter_count;
      caps := (match count with Hf_query.Filter.Finite k -> k | Hf_query.Filter.Star -> 0) :: !caps
    | Hf_query.Filter.Select _ | Hf_query.Filter.Deref _ | Hf_query.Filter.Retrieve _ -> ()
  done;
  let slot_caps = Array.of_list (List.rev !caps) in
  (* The body of the iterator at index i is [body_start, i): position d
     is enclosed by every iterator whose body range contains it. *)
  let enclosing_slots = Array.make n [] in
  for d = 0 to n - 1 do
    let slots = ref [] in
    for i = n - 1 downto 0 do
      match Hf_query.Program.get program i with
      | Hf_query.Filter.Iter { body_start; _ } when body_start <= d && d < i ->
        slots := slot_of_iter.(i) :: !slots
      | Hf_query.Filter.Iter _ | Hf_query.Filter.Select _ | Hf_query.Filter.Deref _
      | Hf_query.Filter.Retrieve _ -> ()
    done;
    enclosing_slots.(d) <- !slots
  done;
  { program; slot_of_iter; enclosing_slots; slot_caps; iter_count = !iter_count }

let program t = t.program

let length t = Hf_query.Program.length t.program

let iter_count t = t.iter_count

let slot_of_iterator t i =
  if i < 0 || i >= Array.length t.slot_of_iter then invalid_arg "Plan.slot_of_iterator";
  let s = t.slot_of_iter.(i) in
  if s < 0 then invalid_arg "Plan.slot_of_iterator: not an iterator index";
  s

let enclosing_iterator_slots t d =
  if d < 0 || d >= Array.length t.enclosing_slots then
    invalid_arg "Plan.enclosing_iterator_slots";
  t.enclosing_slots.(d)

(* Iteration counters are kept *canonical*: values that cannot change
   future behaviour are collapsed.  A Star iterator never consults its
   counter, so its slot is pinned to 0; a Finite-k iterator only
   distinguishes counters below k, so values are capped at k.  This
   makes the space of counter vectors finite and lets the mark table key
   on them — the result set then depends only on which pointer chains
   exist, not on message arrival order (see DESIGN.md §4b). *)
let slot_cap t slot =
  if slot < 0 || slot >= Array.length t.slot_caps then invalid_arg "Plan.slot_cap";
  t.slot_caps.(slot)

let initial_counter t slot = if t.slot_caps.(slot) = 0 then 0 else 1

let bump_counter t slot c =
  let cap = t.slot_caps.(slot) in
  if cap = 0 then 0 else min (c + 1) cap
