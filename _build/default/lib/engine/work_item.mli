(** Work items: the per-object state held in the working set W and sent
    with remote dereferences.

    Per the paper (end of Section 3.1), only the object id, the starting
    filter index and the iteration counters need to survive between
    processing passes; the "next filter" index and the matching-variable
    bindings are reconstructed each time an object is processed. *)

type t

val initial : Plan.t -> Hf_data.Oid.t -> t
(** Item for a member of the initial set: start = 0, canonical initial
    counters (1 for finite iterators, 0 for star). *)

val make : oid:Hf_data.Oid.t -> start:int -> iters:int array -> t
(** Raw constructor (used when a deref request arrives from the
    network). *)

val oid : t -> Hf_data.Oid.t
val start : t -> int
val iters : t -> int array

val iter_at : t -> int -> int
(** Counter for the given plan slot. Raises [Invalid_argument] when out
    of range. *)

val spawn : Plan.t -> deref_index:int -> target:Hf_data.Oid.t -> t -> t
(** Item for an object reached by dereferencing at filter index
    [deref_index]: starts at the following filter, with the counter of
    every enclosing iterator incremented (the pointer chain through
    each of those iterators is one longer). *)

val with_start : t -> int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
