(** Matching-variable bindings for one object during processing.

    Bindings start empty every time an object is taken from the working
    set and are discarded when processing ends; they never travel in W
    or over the network (paper, Section 3.1). *)

type t

val create : unit -> t

val lookup : t -> string -> Hf_data.Value.t list
(** Current bindings of a variable; [[]] when unbound. *)

val add : t -> string -> Hf_data.Value.t -> unit
(** Add a binding (set semantics: duplicates ignored). *)

val add_all : t -> (string * Hf_data.Value.t) list -> unit

val variables : t -> string list

val is_empty : t -> bool
