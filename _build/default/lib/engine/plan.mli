(** Static analysis of a compiled program, shared by every site
    processing a query.

    Assigns each [Iter] filter a dense {e slot} and records, for every
    filter index, the slots of all enclosing iterators.  Work items
    carry one iteration counter per slot — the static-key equivalent of
    the paper's per-object stack of iteration numbers.  A dereference
    increments the counter of every enclosing iterator, so each
    iterator bounds the total pointer-chain length through its body;
    for non-nested iterators (the paper's common case) this coincides
    exactly with the paper's semantics. *)

type t

val make : Hf_query.Program.t -> t

val program : t -> Hf_query.Program.t

val length : t -> int
(** Number of filters (n). *)

val iter_count : t -> int
(** Number of [Iter] filters, i.e. counter slots per work item. *)

val slot_of_iterator : t -> int -> int
(** Slot of the iterator at filter index [i]. Raises [Invalid_argument]
    if [i] is not an iterator. *)

val enclosing_iterator_slots : t -> int -> int list
(** Slots of all iterators whose bodies contain filter index [d],
    outermost first; empty when [d] is not inside any iterator. *)

(** {1 Canonical iteration counters}

    Counters are kept canonical so the space of counter vectors is
    finite and the mark table can key on them: a [Star] slot is pinned
    to 0 (its counter is never consulted), a [Finite k] slot is capped
    at [k] (larger values behave identically).  Result sets then depend
    only on which pointer chains exist, not on message arrival order. *)

val slot_cap : t -> int -> int
(** [k] for a [Finite k] iterator, 0 for [Star]. *)

val initial_counter : t -> int -> int
(** Counter value for members of the initial set: 1 for finite slots, 0
    for star slots. *)

val bump_counter : t -> int -> int -> int
(** Counter value after one more dereference through the slot's
    iterator, canonicalized. *)
