(** Single-site query processing — the complete algorithm of Figure 3.

    Used directly for one-machine deployments, as the per-site kernel of
    the distributed server, and as the semantic oracle in the
    distributed-equals-local property tests. *)

type order =
  | Bfs  (** working set as a queue — the paper's recommended default. *)
  | Dfs  (** working set as a stack. *)

type result = {
  results : Hf_data.Oid.t list;  (** passing objects, in first-passed order. *)
  result_set : Hf_data.Oid.Set.t;
  bindings : (string * Hf_data.Value.t list) list;
      (** values shipped by [->], grouped by target, in emission order. *)
  stats : Stats.t;
}

val run :
  ?order:order ->
  find:(Hf_data.Oid.t -> Hf_data.Hobject.t option) ->
  Hf_query.Program.t ->
  Hf_data.Oid.t list ->
  result
(** Evaluate over an arbitrary object source. *)

val run_store :
  ?order:order -> store:Hf_data.Store.t -> Hf_query.Program.t -> Hf_data.Oid.t list -> result

val run_query :
  ?order:order -> store:Hf_data.Store.t -> Hf_query.Ast.t -> Hf_data.Oid.t list -> result
(** Compile the surface query, then evaluate. *)
