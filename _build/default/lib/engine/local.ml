(* Single-site query processing: the complete algorithm of Figure 3.
   Fill the working set from the initial set, repeatedly remove an item
   and run it through the filters, route every spawned item back into the
   working set, and collect passing objects into the result set. *)

type order = Bfs | Dfs

type result = {
  results : Hf_data.Oid.t list; (* in first-passed order *)
  result_set : Hf_data.Oid.Set.t;
  bindings : (string * Hf_data.Value.t list) list; (* per retrieve target *)
  stats : Stats.t;
}

let bindings_of_table table =
  let entries = Hashtbl.fold (fun target values acc -> (target, List.rev values) :: acc) table [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let run ?(order = Bfs) ~find program initial =
  let plan = Plan.make program in
  let marks = Mark_table.create () in
  let stats = Stats.create () in
  let work = Hf_util.Deque.create () in
  let push item =
    match order with
    | Bfs -> Hf_util.Deque.push_back work item
    | Dfs -> Hf_util.Deque.push_front work item
  in
  let emitted : (string, Hf_data.Value.t list) Hashtbl.t = Hashtbl.create 8 in
  let emit ~target values =
    let existing = match Hashtbl.find_opt emitted target with None -> [] | Some v -> v in
    Hashtbl.replace emitted target (List.rev_append values existing)
  in
  List.iter (fun oid -> push (Work_item.initial plan oid)) initial;
  let results = ref [] in
  let result_set = ref Hf_data.Oid.Set.empty in
  let rec drain () =
    match Hf_util.Deque.pop_front work with
    | None -> ()
    | Some item ->
      let { Eval.spawned; passed; skipped = _ } =
        Eval.run_object ~plan ~find ~marks ~stats ~emit item
      in
      List.iter push spawned;
      if passed then begin
        let oid = Work_item.oid item in
        if not (Hf_data.Oid.Set.mem oid !result_set) then begin
          result_set := Hf_data.Oid.Set.add oid !result_set;
          results := oid :: !results;
          stats.Stats.results <- stats.Stats.results + 1
        end
      end;
      drain ()
  in
  drain ();
  {
    results = List.rev !results;
    result_set = !result_set;
    bindings = bindings_of_table emitted;
    stats;
  }

let run_store ?order ~store program initial =
  run ?order ~find:(Hf_data.Store.find store) program initial

let run_query ?order ~store ast initial =
  run_store ?order ~store (Hf_query.Compile.compile ast) initial
