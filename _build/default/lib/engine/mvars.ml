(* Matching-variable bindings for one object while it is being processed.
   Bindings always start empty when an object is taken from the working
   set (paper, Section 3.1) and are discarded afterwards — they are never
   stored in W or sent over the network. *)

type t = (string, Hf_data.Value.t list) Hashtbl.t

let create () = Hashtbl.create 8

let lookup t var = match Hashtbl.find_opt t var with None -> [] | Some values -> values

let add t var value =
  let existing = lookup t var in
  if not (List.exists (Hf_data.Value.equal value) existing) then
    Hashtbl.replace t var (value :: existing)

let add_all t bindings = List.iter (fun (var, value) -> add t var value) bindings

let variables t = Hashtbl.fold (fun var _ acc -> var :: acc) t []

let is_empty t = Hashtbl.length t = 0
