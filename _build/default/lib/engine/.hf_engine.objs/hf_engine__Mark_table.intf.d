lib/engine/mark_table.mli: Hf_data
