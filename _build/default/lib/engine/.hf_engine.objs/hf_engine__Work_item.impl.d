lib/engine/work_item.ml: Array Fmt Hf_data List Plan
