lib/engine/plan.ml: Array Hf_query List
