lib/engine/local.mli: Hf_data Hf_query Stats
