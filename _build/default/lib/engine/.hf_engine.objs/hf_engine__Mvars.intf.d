lib/engine/mvars.mli: Hf_data
