lib/engine/plan.mli: Hf_query
