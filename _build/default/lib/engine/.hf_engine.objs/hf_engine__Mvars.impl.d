lib/engine/mvars.ml: Hashtbl Hf_data List
