lib/engine/work_item.mli: Format Hf_data Plan
