lib/engine/eval.ml: Hf_data Hf_query List Mark_table Mvars Plan Stats Work_item
