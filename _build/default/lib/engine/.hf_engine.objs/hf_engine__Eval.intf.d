lib/engine/eval.mli: Hf_data Mark_table Plan Stats Work_item
