lib/engine/mark_table.ml: Fun Hf_data Int List Mutex Set Stdlib
