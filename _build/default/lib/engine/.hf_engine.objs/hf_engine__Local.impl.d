lib/engine/local.ml: Eval Hashtbl Hf_data Hf_query Hf_util List Mark_table Plan Stats String Work_item
