(* Length-prefixed framing for stream transports: a 4-byte big-endian
   length followed by the payload.  [Decoder] is an incremental
   reassembler fed arbitrary chunks (as a TCP receive loop would produce
   them) and yielding complete frames. *)

let max_frame_size = 16 * 1024 * 1024

exception Frame_error of string

let frame payload =
  let len = String.length payload in
  if len > max_frame_size then raise (Frame_error "frame too large");
  let header = Bytes.create 4 in
  Bytes.set_uint8 header 0 ((len lsr 24) land 0xff);
  Bytes.set_uint8 header 1 ((len lsr 16) land 0xff);
  Bytes.set_uint8 header 2 ((len lsr 8) land 0xff);
  Bytes.set_uint8 header 3 (len land 0xff);
  Bytes.to_string header ^ payload

module Decoder = struct
  type t = { mutable pending : string }

  let create () = { pending = "" }

  let feed t chunk = t.pending <- t.pending ^ chunk

  let header_length t =
    if String.length t.pending < 4 then None
    else begin
      let byte i = Char.code t.pending.[i] in
      let len = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
      if len > max_frame_size then raise (Frame_error "incoming frame too large");
      Some len
    end

  let next t =
    match header_length t with
    | None -> None
    | Some len ->
      if String.length t.pending < 4 + len then None
      else begin
        let payload = String.sub t.pending 4 len in
        t.pending <- String.sub t.pending (4 + len) (String.length t.pending - 4 - len);
        Some payload
      end

  let rec drain t =
    match next t with
    | None -> []
    | Some payload -> payload :: drain t

  let buffered_bytes t = String.length t.pending
end
