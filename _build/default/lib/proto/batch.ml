(* Per-destination batching of outgoing work.

   A remote dereference costs one wire message whose fixed overhead (the
   paper's ~50 ms send + transit + receive) dwarfs the per-item payload.
   The batcher buffers items keyed by destination site and hands back a
   flush — all buffered items for that destination, oldest first — when
   the policy fires.  [Flush_at 1] degenerates to today's one-message-
   per-item protocol; [Flush_on_drain] buffers without bound and relies
   on the owner flushing at the end of its pump cycle / drain. *)

type flush_policy =
  | Flush_at of int
  | Flush_on_drain

let unbatched = Flush_at 1

let validate_policy = function
  | Flush_at k when k < 1 -> invalid_arg "Batch.Flush_at: batch size must be >= 1"
  | Flush_at _ | Flush_on_drain -> ()

let pp_policy ppf = function
  | Flush_at k -> Fmt.pf ppf "K=%d" k
  | Flush_on_drain -> Fmt.string ppf "K=inf"

type 'a buffer = { mutable items : 'a list (* newest first *); mutable count : int }

type 'a t = {
  policy : flush_policy;
  buffers : (int, 'a buffer) Hashtbl.t;
  mutable total : int;
}

let create policy =
  validate_policy policy;
  { policy; buffers = Hashtbl.create 8; total = 0 }

let policy t = t.policy

let pending t = t.total

let pending_for t ~dst =
  match Hashtbl.find_opt t.buffers dst with Some b -> b.count | None -> 0

let take t ~dst =
  match Hashtbl.find_opt t.buffers dst with
  | None -> []
  | Some b ->
    let items = List.rev b.items in
    t.total <- t.total - b.count;
    b.items <- [];
    b.count <- 0;
    items

let push t ~dst item =
  let buffer =
    match Hashtbl.find_opt t.buffers dst with
    | Some b -> b
    | None ->
      let b = { items = []; count = 0 } in
      Hashtbl.add t.buffers dst b;
      b
  in
  buffer.items <- item :: buffer.items;
  buffer.count <- buffer.count + 1;
  t.total <- t.total + 1;
  match t.policy with
  | Flush_at k when buffer.count >= k -> Some (take t ~dst)
  | Flush_at _ | Flush_on_drain -> None

(* Destinations in ascending order so flushes are deterministic
   regardless of hash-table iteration order. *)
let flush_all t =
  let dsts =
    Hashtbl.fold (fun dst b acc -> if b.count > 0 then dst :: acc else acc) t.buffers []
    |> List.sort Int.compare
  in
  List.map (fun dst -> (dst, take t ~dst)) dsts
