(** Per-destination batching of outgoing work items.

    Work shipped to the same site in the same pump cycle can share one
    wire message: the batcher buffers items per destination and yields a
    flush (oldest first) when the policy fires.  The owner is
    responsible for flushing leftovers — at the end of its pump cycle
    and before draining, so termination detection is never starved. *)

type flush_policy =
  | Flush_at of int
      (** Flush a destination's buffer as soon as it holds K items.
          [Flush_at 1] is byte- and semantics-identical to the unbatched
          per-item protocol. *)
  | Flush_on_drain
      (** Never flush on size (K = ∞); items leave only via the owner's
          pump-cycle / drain flush. *)

val unbatched : flush_policy
(** [Flush_at 1]. *)

val validate_policy : flush_policy -> unit
(** Raises [Invalid_argument] on [Flush_at k] with [k < 1]. *)

val pp_policy : Format.formatter -> flush_policy -> unit

type 'a t

val create : flush_policy -> 'a t
(** Raises [Invalid_argument] on an invalid policy. *)

val policy : 'a t -> flush_policy

val push : 'a t -> dst:int -> 'a -> 'a list option
(** Buffer an item for [dst].  Returns [Some items] — the whole buffer
    for [dst], oldest first, now cleared — when the policy fires. *)

val take : 'a t -> dst:int -> 'a list
(** Remove and return [dst]'s buffer, oldest first (empty if none). *)

val flush_all : 'a t -> (int * 'a list) list
(** Drain every non-empty buffer, destinations in ascending order. *)

val pending : 'a t -> int
(** Total buffered items across all destinations. *)

val pending_for : 'a t -> dst:int -> int
