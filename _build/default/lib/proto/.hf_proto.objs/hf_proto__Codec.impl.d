lib/proto/codec.ml: Array Buffer Char Fmt Hf_data Hf_query Int64 List Message String
