lib/proto/codec.mli: Buffer Hf_data Hf_query Message
