lib/proto/message.mli: Format Hf_data Hf_query
