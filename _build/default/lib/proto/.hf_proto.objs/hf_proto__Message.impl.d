lib/proto/message.ml: Array Fmt Hf_data Hf_query Int List String
