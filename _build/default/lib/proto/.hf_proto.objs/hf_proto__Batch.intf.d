lib/proto/batch.mli: Format
