lib/proto/frame.ml: Bytes Char String
