lib/proto/frame.mli:
