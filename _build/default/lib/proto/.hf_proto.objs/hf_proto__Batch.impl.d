lib/proto/batch.ml: Fmt Hashtbl Int List
