(** Length-prefixed framing for stream transports (4-byte big-endian
    length + payload). *)

val max_frame_size : int

exception Frame_error of string

val frame : string -> string
(** Prefix a payload with its length header. Raises [Frame_error] when
    the payload exceeds {!max_frame_size}. *)

(** Incremental frame reassembly from arbitrary stream chunks. *)
module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> string -> unit

  val next : t -> string option
  (** Next complete frame payload, if buffered. Raises [Frame_error] on
      an oversized header. *)

  val drain : t -> string list
  (** All currently complete frames. *)

  val buffered_bytes : t -> int
end
