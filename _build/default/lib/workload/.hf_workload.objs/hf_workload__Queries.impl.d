lib/workload/queries.ml: Hf_data Hf_query Hf_util
