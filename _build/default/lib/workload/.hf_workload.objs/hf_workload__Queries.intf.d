lib/workload/queries.mli: Hf_query Hf_util
