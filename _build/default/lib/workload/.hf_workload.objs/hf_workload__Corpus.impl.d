lib/workload/corpus.ml: Array Hf_data Hf_util List Printf String
