lib/workload/synthetic.mli: Hf_data
