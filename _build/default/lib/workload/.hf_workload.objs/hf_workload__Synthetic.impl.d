lib/workload/synthetic.ml: Array Buffer Fun Hf_data Hf_util List Printf String
