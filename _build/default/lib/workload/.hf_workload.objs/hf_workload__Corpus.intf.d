lib/workload/corpus.mli: Hf_data
