(** Document-corpus workload: bibliographic records with Zipf-like
    keyword frequencies and a preferential-attachment citation graph.

    Complements the paper's parameter-controlled synthetic dataset;
    drives the index-acceleration experiment (EXPERIMENTS.md E13) and
    richer examples.  Documents without citations carry a terminator
    self-pointer so closure queries keep them filterable. *)

type params = {
  n_documents : int;
  vocabulary : int;  (** distinct keywords. *)
  keywords_per_doc : int;
  max_citations : int;
  year_range : int * int;  (** inclusive. *)
  body_bytes : int;
  seed : int;
}

val default_params : params
(** 500 documents, 200-word vocabulary, ≤4 citations, 1970–1991. *)

val keyword_name : int -> string
(** Vocabulary rank → keyword string ([kw000] is the most common). *)

val citation_key : string
(** Pointer key of citation tuples (["Cites"]). *)

type t

val generate :
  ?params:params -> n_sites:int -> store_of:(int -> Hf_data.Store.t) -> unit -> t
(** Create the documents in the per-site stores (uniform random
    placement).  Deterministic in [params.seed].  Raises
    [Invalid_argument] on degenerate parameters. *)

val oids : t -> Hf_data.Oid.t array
(** Document id → oid. *)

val site_of : t -> int -> int

val newest : t -> Hf_data.Oid.t
(** The most recently "published" document — cites into the graph but
    nothing cites it; a natural query root. *)

val keyword_frequency :
  find:(Hf_data.Oid.t -> Hf_data.Hobject.t option) -> t -> int -> int
(** Number of documents carrying the keyword of the given rank. *)
