(** The synthetic dataset of the paper's experiments (Section 5).

    Objects are generated over logical ids with a fixed partition into
    groups; machine placement maps groups to sites, with the finer
    partitions refining the coarser ones, so the pointer graph is
    identical regardless of the number of machines.  Each object has
    five search-key tuples (unique / common / spaces of 10, 100, 1000),
    a chain pointer (always remote with > 1 machine), fourteen random
    pointers in seven locality classes, tree pointers forming a spanning
    tree, and a filler body blob. *)

type params = {
  n_objects : int;
  n_groups : int;  (** finest machine partition; sites must divide it. *)
  seed : int;
  blob_bytes : int;  (** filler body per object. *)
}

val default_params : params
(** 270 objects, 9 groups, seed 42, 2 KiB bodies — the paper's scale. *)

val localities : float list
(** The seven per-class probabilities of a pointer staying local:
    .05, .20, .35, .50, .65, .80, .95. *)

val rand_key : float -> string
(** Pointer key of a locality class, e.g. [rand_key 0.05 = "Rand05"]. *)

val chain_key : string
val tree_key : string

type t

val generate : ?params:params -> unit -> t
(** Deterministic in [params.seed]. Raises [Invalid_argument] on
    degenerate parameters. *)

val n_objects : t -> int

val group : t -> int -> int
(** Group of a logical object. *)

val logical_pointers : t -> int -> key:string -> int list
(** Logical targets of an object's pointers with the given key. *)

val site_of_group : n_groups:int -> n_sites:int -> int -> int
(** Placement map; the partition for [n_sites] refines coarser ones.
    Raises [Invalid_argument] unless sites divide groups evenly. *)

val measured_locality : t -> key:string -> float
(** Fraction of the class's pointers that stay within their group. *)

type placed = {
  dataset : t;
  n_sites : int;
  oids : Hf_data.Oid.t array;  (** logical id → oid. *)
  site_of : int array;  (** logical id → site. *)
  root : Hf_data.Oid.t;  (** oid of logical object 0. *)
}

val materialize : t -> n_sites:int -> store_of:(int -> Hf_data.Store.t) -> placed
(** Create the objects in the per-site stores.  [store_of s] must be the
    store whose [Store.site] is [s]. *)
