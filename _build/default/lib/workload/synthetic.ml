(* The synthetic dataset of Section 5, reconstructed from the paper's
   description.  Each object carries:

   - five search-key tuples: one unique to the object, one found in all
     objects, and three drawn from spaces of 10, 100 and 1000 values;
   - one chain pointer forming a linked list of all items, always
     remote when there is more than one machine (maximum delay);
   - fourteen random pointers: seven locality classes with two pointers
     each, the probability of a pointer staying local varying from .05
     to .95 across classes;
   - tree pointers forming a spanning tree: the root points once to
     each other machine, and each of those targets roots a local
     spanning tree (high parallelism at low message cost);
   - a filler body blob, so objects are long relative to queries (the
     ship-data baseline pays for it).

   Objects are generated over *logical* ids (0..n-1) with a fixed
   partition into groups; machine placement maps groups to sites.  The
   9-machine partition refines the 3-machine one (site = group mod
   n_sites), so the pointer graph is identical regardless of the number
   of machines — exactly the property the paper's experiments relied
   on.  "Local" during generation means same group, which implies same
   site in every configuration.

   One liberty, documented in DESIGN.md: the first pointer of each
   random class follows a locality-respecting cycle through all objects
   (the second is i.i.d. random).  This guarantees that a transitive
   closure from the root visits all objects, matching the paper's "270
   objects involved in the queries", which pure i.i.d. pointers would
   not reproduce. *)

type params = {
  n_objects : int;
  n_groups : int; (* finest machine partition; must divide evenly into sites *)
  seed : int;
  blob_bytes : int; (* filler body per object *)
}

let default_params = { n_objects = 270; n_groups = 9; seed = 42; blob_bytes = 2048 }

let localities = [ 0.05; 0.20; 0.35; 0.50; 0.65; 0.80; 0.95 ]

let rand_key p = Printf.sprintf "Rand%02.0f" (p *. 100.0)

let chain_key = "Chain"

let tree_key = "Tree"

(* One logical object: search-key values plus logical pointer targets,
   tagged with their pointer key. *)
type logical_object = {
  unique : int;
  rand10 : int;
  rand100 : int;
  rand1000 : int;
  pointers : (string * int) list;
}

type t = {
  params : params;
  group_of : int array;
  objects : logical_object array;
}

let group_of_logical ~n_groups i = i mod n_groups

(* A cyclic tour of all objects in which each step stays in the current
   group with probability ~p.  Guarantees every object is visited. *)
let locality_cycle prng ~n_objects ~group_of ~n_groups ~p =
  let remaining = Array.make n_groups [] in
  for i = n_objects - 1 downto 1 do
    let g = group_of i in
    remaining.(g) <- i :: remaining.(g)
  done;
  (* shuffle within each group *)
  for g = 0 to n_groups - 1 do
    let arr = Array.of_list remaining.(g) in
    Hf_util.Prng.shuffle_in_place prng arr;
    remaining.(g) <- Array.to_list arr
  done;
  let pop g =
    match remaining.(g) with
    | [] -> None
    | x :: rest ->
      remaining.(g) <- rest;
      Some x
  in
  let pop_other g =
    let candidates =
      List.filter (fun h -> h <> g && remaining.(h) <> []) (List.init n_groups Fun.id)
    in
    match candidates with
    | [] -> pop g
    | _ -> pop (List.nth candidates (Hf_util.Prng.next_int prng (List.length candidates)))
  in
  let sequence = Array.make n_objects 0 in
  let current = ref 0 in
  for k = 1 to n_objects - 1 do
    let g = group_of !current in
    let next =
      if Hf_util.Prng.next_bool prng p then
        match pop g with Some x -> Some x | None -> pop_other g
      else match pop_other g with Some x -> Some x | None -> pop g
    in
    match next with
    | Some x ->
      sequence.(k) <- x;
      current := x
    | None -> assert false (* exactly n_objects - 1 pops happen *)
  done;
  (* successor along the cycle *)
  let successor = Array.make n_objects 0 in
  for k = 0 to n_objects - 1 do
    successor.(sequence.(k)) <- sequence.((k + 1) mod n_objects)
  done;
  successor

(* An i.i.d. random target, local (same group) with probability p. *)
let random_target prng ~n_objects ~group_of ~p i =
  let g = group_of i in
  let in_group target = group_of target = g in
  let want_local = Hf_util.Prng.next_bool prng p in
  let rec draw attempts =
    let candidate = Hf_util.Prng.next_int prng n_objects in
    if attempts > 200 then candidate
    else if candidate = i then draw (attempts + 1)
    else if in_group candidate = want_local then candidate
    else draw (attempts + 1)
  in
  draw 0

(* Spanning tree: the root (object 0) points to the head of every other
   group; within each group a binary tree over the group's members.
   Leaves get a local self-pointer: under Figure 3 semantics an object
   without a matching pointer tuple fails the traversal body's selection
   before the trailing search-key filter, so terminator self-pointers
   keep every object of the closure filterable, as the paper's result
   counts imply.  Self-pointers are suppressed by the mark table and
   never cross the network. *)
let tree_edges ~n_objects ~group_of ~n_groups =
  let members = Array.make n_groups [] in
  for i = n_objects - 1 downto 0 do
    members.(group_of i) <- i :: members.(group_of i)
  done;
  let edges = ref [] in
  for g = 0 to n_groups - 1 do
    let arr = Array.of_list members.(g) in
    Array.iteri
      (fun j node ->
        let n_children =
          ((if (2 * j) + 1 < Array.length arr then 1 else 0)
          + if (2 * j) + 2 < Array.length arr then 1 else 0)
        in
        let child k = if k < Array.length arr then edges := (node, arr.(k)) :: !edges in
        child ((2 * j) + 1);
        child ((2 * j) + 2);
        if n_children = 0 then edges := (node, node) :: !edges)
      arr;
    if g <> group_of 0 && Array.length arr > 0 then edges := (0, arr.(0)) :: !edges
  done;
  !edges

let generate ?(params = default_params) () =
  if params.n_objects < 2 then invalid_arg "Synthetic.generate: need at least 2 objects";
  if params.n_groups < 1 || params.n_groups > params.n_objects then
    invalid_arg "Synthetic.generate: bad group count";
  let prng = Hf_util.Prng.create params.seed in
  let n = params.n_objects in
  let n_groups = params.n_groups in
  let group_of = Array.init n (group_of_logical ~n_groups) in
  let group i = group_of.(i) in
  let pointers = Array.make n [] in
  let add_pointer i key target = pointers.(i) <- (key, target) :: pointers.(i) in
  (* chain; the last object gets a terminator self-pointer so it is
     still examined by the trailing search-key filter (see tree_edges) *)
  for i = 0 to n - 2 do
    add_pointer i chain_key (i + 1)
  done;
  add_pointer (n - 1) chain_key (n - 1);
  (* random classes: one cycle pointer + one i.i.d. pointer per class *)
  List.iter
    (fun p ->
      let key = rand_key p in
      let successor = locality_cycle prng ~n_objects:n ~group_of:group ~n_groups ~p in
      for i = 0 to n - 1 do
        add_pointer i key successor.(i);
        add_pointer i key (random_target prng ~n_objects:n ~group_of:group ~p i)
      done)
    localities;
  (* tree *)
  List.iter (fun (src, dst) -> add_pointer src tree_key dst) (tree_edges ~n_objects:n ~group_of:group ~n_groups);
  let objects =
    Array.init n (fun i ->
        {
          unique = i;
          rand10 = 1 + Hf_util.Prng.next_int prng 10;
          rand100 = 1 + Hf_util.Prng.next_int prng 100;
          rand1000 = 1 + Hf_util.Prng.next_int prng 1000;
          pointers = List.rev pointers.(i);
        })
  in
  { params; group_of; objects }

let n_objects t = t.params.n_objects

let group t i = t.group_of.(i)

let logical_pointers t i ~key =
  List.filter_map (fun (k, target) -> if String.equal k key then Some target else None)
    t.objects.(i).pointers

let site_of_group ~n_groups ~n_sites g =
  if n_sites < 1 then invalid_arg "Synthetic.site_of_group: bad site count";
  if n_groups mod n_sites <> 0 then
    invalid_arg "Synthetic.site_of_group: sites must divide groups evenly";
  g mod n_sites

(* Fraction of pointers of a class that are intra-group — a generation
   invariant checked by the tests. *)
let measured_locality t ~key =
  let total = ref 0 and local = ref 0 in
  Array.iteri
    (fun i obj ->
      List.iter
        (fun (k, target) ->
          if String.equal k key then begin
            incr total;
            if t.group_of.(i) = t.group_of.(target) then incr local
          end)
        obj.pointers)
    t.objects;
  if !total = 0 then 0.0 else float_of_int !local /. float_of_int !total

type placed = {
  dataset : t;
  n_sites : int;
  oids : Hf_data.Oid.t array; (* logical id -> oid *)
  site_of : int array; (* logical id -> site *)
  root : Hf_data.Oid.t; (* oid of logical object 0 *)
}

let filler_blob bytes i =
  let pattern = Printf.sprintf "object-%d body " i in
  let buf = Buffer.create bytes in
  while Buffer.length buf < bytes do
    Buffer.add_string buf pattern
  done;
  Buffer.sub buf 0 bytes

let materialize t ~n_sites ~store_of =
  let n = n_objects t in
  let site_of =
    Array.init n (fun i -> site_of_group ~n_groups:t.params.n_groups ~n_sites t.group_of.(i))
  in
  let oids = Array.init n (fun i -> Hf_data.Store.fresh_oid (store_of site_of.(i))) in
  Array.iteri
    (fun i lo ->
      let search =
        [ Hf_data.Tuple.number ~key:"Unique" lo.unique;
          Hf_data.Tuple.number ~key:"Common" 1;
          Hf_data.Tuple.number ~key:"Rand10" lo.rand10;
          Hf_data.Tuple.number ~key:"Rand100" lo.rand100;
          Hf_data.Tuple.number ~key:"Rand1000" lo.rand1000;
        ]
      in
      let pointer_tuples =
        List.map (fun (key, target) -> Hf_data.Tuple.pointer ~key oids.(target)) lo.pointers
      in
      let body = [ Hf_data.Tuple.text ~key:"Body" (filler_blob t.params.blob_bytes i) ] in
      let obj = Hf_data.Hobject.of_tuples oids.(i) (search @ pointer_tuples @ body) in
      Hf_data.Store.insert (store_of site_of.(i)) obj)
    t.objects;
  { dataset = t; n_sites; oids; site_of; root = oids.(0) }
