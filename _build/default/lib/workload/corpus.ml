(* A document-corpus workload: bibliographic records with realistic
   statistics, complementing the paper's parameter-controlled synthetic
   dataset.  Used by the index-acceleration experiment (EXPERIMENTS.md
   E13) and the richer examples.

   - keywords are drawn from a Zipf-like distribution over a vocabulary
     (a few very common terms, a long tail of rare ones);
   - citations use preferential attachment: earlier, already-cited
     documents accumulate more in-links, giving the skewed in-degree
     real citation graphs show;
   - every document carries title/author/year strings and a body blob;
   - documents with no citations get a terminator self-pointer so
     closure queries keep them filterable (see DESIGN.md §4b). *)

type params = {
  n_documents : int;
  vocabulary : int; (* distinct keywords *)
  keywords_per_doc : int;
  max_citations : int;
  year_range : int * int;
  body_bytes : int;
  seed : int;
}

let default_params =
  {
    n_documents = 500;
    vocabulary = 200;
    keywords_per_doc = 6;
    max_citations = 4;
    year_range = (1970, 1991);
    body_bytes = 512;
    seed = 11;
  }

let keyword_name k = Printf.sprintf "kw%03d" k

(* Zipf-ish rank sampling via the inverse-CDF of 1/rank weights,
   approximated with a precomputed cumulative table. *)
let zipf_sampler prng ~n =
  let weights = Array.init n (fun i -> 1.0 /. float_of_int (i + 1)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc /. total)
    weights;
  fun () ->
    let u = Hf_util.Prng.next_float prng in
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if cumulative.(mid) < u then search (mid + 1) hi else search lo mid
      end
    in
    search 0 (n - 1)

type t = {
  params : params;
  placed : Hf_data.Oid.t array; (* document id -> oid *)
  site_of : int array;
}

let citation_key = "Cites"

let generate ?(params = default_params) ~n_sites ~store_of () =
  if params.n_documents < 1 then invalid_arg "Corpus.generate: need documents";
  if n_sites < 1 then invalid_arg "Corpus.generate: need sites";
  let prng = Hf_util.Prng.create params.seed in
  let sample_keyword = zipf_sampler prng ~n:params.vocabulary in
  let site_of = Array.init params.n_documents (fun _ -> Hf_util.Prng.next_int prng n_sites) in
  let oids =
    Array.init params.n_documents (fun i -> Hf_data.Store.fresh_oid (store_of site_of.(i)))
  in
  (* in-degree counters for preferential attachment; +1 smoothing *)
  let in_degree = Array.make params.n_documents 1 in
  let pick_citation upto =
    (* weighted by in_degree over documents [0, upto) *)
    let total = ref 0 in
    for j = 0 to upto - 1 do
      total := !total + in_degree.(j)
    done;
    let target = Hf_util.Prng.next_int prng !total in
    let rec find j acc =
      let acc = acc + in_degree.(j) in
      if acc > target then j else find (j + 1) acc
    in
    find 0 0
  in
  let lo_year, hi_year = params.year_range in
  Array.iteri
    (fun i oid ->
      let keywords =
        List.sort_uniq compare
          (List.init params.keywords_per_doc (fun _ -> sample_keyword ()))
      in
      let citations =
        if i = 0 then []
        else
          List.sort_uniq compare
            (List.init (Hf_util.Prng.next_int prng (params.max_citations + 1)) (fun _ ->
                 pick_citation i))
      in
      List.iter (fun j -> in_degree.(j) <- in_degree.(j) + 1) citations;
      let citation_tuples =
        match citations with
        | [] -> [ Hf_data.Tuple.pointer ~key:citation_key oid ] (* terminator *)
        | _ -> List.map (fun j -> Hf_data.Tuple.pointer ~key:citation_key oids.(j)) citations
      in
      let tuples =
        [ Hf_data.Tuple.string_ ~key:"Title" (Printf.sprintf "Document %d" i);
          Hf_data.Tuple.string_ ~key:"Author" (Printf.sprintf "author%02d" (Hf_util.Prng.next_int prng 40));
          Hf_data.Tuple.number ~key:"Year" (lo_year + Hf_util.Prng.next_int prng (hi_year - lo_year + 1));
          Hf_data.Tuple.text ~key:"Body" (String.make params.body_bytes 'd');
        ]
        @ List.map (fun k -> Hf_data.Tuple.keyword (keyword_name k)) keywords
        @ citation_tuples
      in
      Hf_data.Store.insert (store_of site_of.(i)) (Hf_data.Hobject.of_tuples oid tuples))
    oids;
  { params; placed = oids; site_of }

let oids t = t.placed

let site_of t i = t.site_of.(i)

let newest t = t.placed.(Array.length t.placed - 1)

(* Empirical keyword frequency, for tests: common ranks should dominate
   rare ones. *)
let keyword_frequency ~find t k =
  let word = keyword_name k in
  Array.fold_left
    (fun acc oid ->
      match find oid with
      | Some obj when List.mem word (Hf_data.Hobject.keywords obj) -> acc + 1
      | _ -> acc)
    0 t.placed
