(* The query templates of the paper's experiments: traverse the
   transitive closure of one pointer class from the root, selecting by a
   search-key tuple.  The benchmark runs 100 of these per configuration,
   randomizing the key searched for, "so the 100 queries were comparable
   but not identical". *)

let closure_body ~pointer_key selection =
  Hf_query.Builder.reachability ~key:pointer_key selection

let depth_body ~pointer_key ~depth selection =
  Hf_query.Builder.reachability ~depth ~key:pointer_key selection

(* Selections over the synthetic search keys. *)

let select_number ~key value =
  Hf_query.Ast.Select
    {
      ttype = Hf_query.Pattern.exact_str Hf_data.Tuple.type_number;
      key = Hf_query.Pattern.exact_str key;
      data = Hf_query.Pattern.exact_num value;
    }

let select_unique i = select_number ~key:"Unique" i

let select_common = select_number ~key:"Common" 1

let select_rand10 v = select_number ~key:"Rand10" v

let select_rand100 v = select_number ~key:"Rand100" v

let select_rand1000 v = select_number ~key:"Rand1000" v

type selectivity = Unique | Rand1000 | Rand100 | Rand10 | All

let selectivity_name = function
  | Unique -> "unique (1 object)"
  | Rand1000 -> "1/1000 space"
  | Rand100 -> "1/100 space"
  | Rand10 -> "1/10 space"
  | All -> "all objects"

(* A randomized selection of the given selectivity, as in the paper's
   100-query runs. *)
let random_selection prng ~n_objects = function
  | Unique -> select_unique (Hf_util.Prng.next_int prng n_objects)
  | Rand1000 -> select_rand1000 (1 + Hf_util.Prng.next_int prng 1000)
  | Rand100 -> select_rand100 (1 + Hf_util.Prng.next_int prng 100)
  | Rand10 -> select_rand10 (1 + Hf_util.Prng.next_int prng 10)
  | All -> select_common

let closure_program ~pointer_key selection =
  Hf_query.Compile.compile (closure_body ~pointer_key selection)
