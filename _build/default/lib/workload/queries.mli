(** Query templates for the paper's experiments: transitive closure of
    one pointer class plus a search-key selection, with randomized keys
    for the 100-query runs. *)

val closure_body : pointer_key:string -> Hf_query.Ast.element -> Hf_query.Ast.t
(** [\[ (Pointer, pointer_key, ?X) ^^X \]* selection]. *)

val depth_body :
  pointer_key:string -> depth:int -> Hf_query.Ast.element -> Hf_query.Ast.t
(** Same, but iterating [depth] levels instead of to closure. *)

val select_number : key:string -> int -> Hf_query.Ast.element

val select_unique : int -> Hf_query.Ast.element
val select_common : Hf_query.Ast.element
val select_rand10 : int -> Hf_query.Ast.element
val select_rand100 : int -> Hf_query.Ast.element
val select_rand1000 : int -> Hf_query.Ast.element

type selectivity = Unique | Rand1000 | Rand100 | Rand10 | All

val selectivity_name : selectivity -> string

val random_selection :
  Hf_util.Prng.t -> n_objects:int -> selectivity -> Hf_query.Ast.element
(** Random key of the given selectivity, as in the paper's randomized
    query runs. *)

val closure_program : pointer_key:string -> Hf_query.Ast.element -> Hf_query.Program.t
