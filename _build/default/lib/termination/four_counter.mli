(** Mattern-style four-counter termination detection (ablation
    comparison point).

    Each site counts work messages sent and received; the origin runs
    periodic waves collecting the counters and activity flags, and
    declares termination after two consecutive all-passive waves with
    identical totals and sent = received. *)

type report = { sent : int; received : int; active : bool }

type tag = unit

type control =
  | Probe of int  (** wave identifier. *)
  | Report of int * report

include Detector.S with type tag := tag and type control := control

(** {1 Instrumentation} *)

val waves : t -> int
(** Completed polling waves started by the origin. *)

val control_messages : t -> int
(** Probe/report messages attributable to this site. *)
