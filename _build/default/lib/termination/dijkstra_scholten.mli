(** Dijkstra–Scholten diffusing-computation termination detection
    (ablation comparison point).

    Every work message is eventually acknowledged; engaged sites form a
    dynamic spanning tree rooted at the origin, and a site leaves the
    tree (acknowledging its parent) when passive with zero deficit.
    Termination is known when the origin is passive with zero
    deficit. *)

type tag = unit

type control = Ack

include Detector.S with type tag := tag and type control := control

(** {1 Instrumentation} *)

val acks_sent : t -> int

val deficit : t -> int
(** Work messages sent by this site and not yet acknowledged. *)
