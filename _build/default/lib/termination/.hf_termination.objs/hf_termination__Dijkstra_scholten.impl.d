lib/termination/dijkstra_scholten.ml: Detector Fmt
