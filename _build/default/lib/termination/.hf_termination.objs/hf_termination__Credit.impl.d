lib/termination/credit.ml: Fmt Int List Map
