lib/termination/credit.mli: Format
