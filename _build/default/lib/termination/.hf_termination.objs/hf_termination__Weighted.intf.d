lib/termination/weighted.mli: Credit Detector
