lib/termination/detector.ml: Format
