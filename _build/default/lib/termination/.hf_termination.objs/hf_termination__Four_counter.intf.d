lib/termination/four_counter.mli: Detector
