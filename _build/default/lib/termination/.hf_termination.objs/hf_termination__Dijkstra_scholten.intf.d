lib/termination/dijkstra_scholten.mli: Detector
