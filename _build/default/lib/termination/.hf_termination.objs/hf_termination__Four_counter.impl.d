lib/termination/four_counter.ml: Detector Fmt Fun List
