lib/termination/weighted.ml: Credit Detector Fmt
