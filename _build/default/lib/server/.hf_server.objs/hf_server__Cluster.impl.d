lib/server/cluster.ml: Array Fmt Fun Hashtbl Hf_data Hf_engine Hf_proto Hf_query Hf_sim Hf_termination Hf_util List Metrics Option String
