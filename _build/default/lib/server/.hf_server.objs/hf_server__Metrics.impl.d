lib/server/metrics.ml: Array Fmt
