lib/server/metrics.mli: Format
