lib/server/instances.ml: Cluster Hf_termination
