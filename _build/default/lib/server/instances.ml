(* Ready-made cluster instantiations, one per termination detector.
   [Weighted] is the paper's configuration and the default everywhere;
   the other two exist for the termination-detector ablation (E11). *)

module Weighted = Cluster.Make (Hf_termination.Weighted)
module Dijkstra_scholten = Cluster.Make (Hf_termination.Dijkstra_scholten)
module Four_counter = Cluster.Make (Hf_termination.Four_counter)
