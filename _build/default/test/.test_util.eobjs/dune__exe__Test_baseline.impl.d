test/test_baseline.ml: Alcotest Array Hf_baseline Hf_data Hf_query Hf_server List Printf String
