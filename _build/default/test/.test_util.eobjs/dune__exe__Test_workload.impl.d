test/test_workload.ml: Alcotest Array Hashtbl Hf_data Hf_engine Hf_query Hf_workload Lazy List Option Printf
