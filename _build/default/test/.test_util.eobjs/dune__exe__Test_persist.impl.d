test/test_persist.ml: Alcotest Array Bytes Char Filename Fun Hf_data Hf_engine Hf_persist Hf_proto Hf_query Hf_server Hf_util List Option Out_channel QCheck2 QCheck_alcotest String Sys
