test/test_index.ml: Alcotest Array Fun Hashtbl Hf_data Hf_engine Hf_index Hf_query Hf_util List Option Printf QCheck2 QCheck_alcotest
