test/test_util.ml: Alcotest Array Fun Hf_util List Option Printf QCheck2 QCheck_alcotest String
