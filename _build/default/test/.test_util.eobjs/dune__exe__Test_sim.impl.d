test/test_sim.ml: Alcotest Hf_sim List
