test/test_proto.ml: Alcotest Hf_data Hf_proto Hf_query List Printf QCheck2 QCheck_alcotest String
