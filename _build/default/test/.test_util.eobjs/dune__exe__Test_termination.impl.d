test/test_termination.ml: Alcotest Array Fun Hf_termination Hf_util List Option QCheck2 QCheck_alcotest
