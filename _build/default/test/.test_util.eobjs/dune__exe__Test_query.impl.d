test/test_query.ml: Alcotest Array Hf_data Hf_engine Hf_query Hf_util List Printf QCheck2 QCheck_alcotest String
