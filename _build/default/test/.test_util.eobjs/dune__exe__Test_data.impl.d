test/test_data.ml: Alcotest Hf_data List String
