test/test_server.ml: Alcotest Array Hf_data Hf_engine Hf_naming Hf_proto Hf_query Hf_server Hf_sim Hf_termination Hf_util List Option Printf QCheck2 QCheck_alcotest
