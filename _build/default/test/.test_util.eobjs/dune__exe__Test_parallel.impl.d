test/test_parallel.ml: Alcotest Array Hf_data Hf_engine Hf_parallel Hf_query Hf_util List Printf QCheck2 QCheck_alcotest
