test/test_net.ml: Alcotest Array Fun Hf_data Hf_engine Hf_net Hf_proto Hf_query Hf_util List Printf QCheck2 QCheck_alcotest
