test/test_net.ml: Alcotest Array Fun Hf_data Hf_engine Hf_net Hf_query Hf_util List QCheck2 QCheck_alcotest
