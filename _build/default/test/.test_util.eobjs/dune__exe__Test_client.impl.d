test/test_client.ml: Alcotest Hf_client Hf_data Hf_query List Option String
