test/test_engine.ml: Alcotest Array Hashtbl Hf_data Hf_engine Hf_query Hf_util List Option Printf QCheck2 QCheck_alcotest Queue
