test/test_naming.ml: Alcotest Hf_data Hf_naming
