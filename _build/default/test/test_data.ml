(* Tests for the data model: oids, values, tuples, objects, stores. *)

module Oid = Hf_data.Oid
module Value = Hf_data.Value
module Tuple = Hf_data.Tuple
module Hobject = Hf_data.Hobject
module Store = Hf_data.Store

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let oid ?(site = 0) serial = Oid.make ~birth_site:site ~serial

(* --- Oid --- *)

let test_oid_identity () =
  let a = oid 1 and b = oid 1 in
  check_bool "equal" true (Oid.equal a b);
  check_int "compare" 0 (Oid.compare a b);
  check_int "hash equal" (Oid.hash a) (Oid.hash b)

let test_oid_hint_ignored () =
  let a = oid 1 in
  let b = Oid.with_hint a 5 in
  check_bool "same identity" true (Oid.equal a b);
  check_int "hint changed" 5 (Oid.hint b);
  check_int "birth site preserved" 0 (Oid.birth_site b);
  check_int "hash ignores hint" (Oid.hash a) (Oid.hash b)

let test_oid_ordering () =
  check_bool "site major" true (Oid.compare (oid ~site:0 9) (oid ~site:1 0) < 0);
  check_bool "serial minor" true (Oid.compare (oid 1) (oid 2) < 0)

let test_oid_invalid () =
  Alcotest.check_raises "negative site" (Invalid_argument "Oid.make: negative birth_site")
    (fun () -> ignore (Oid.make ~birth_site:(-1) ~serial:0))

let test_oid_pp () =
  check_string "plain" "2.7" (Oid.to_string (oid ~site:2 7));
  check_string "with hint" "2.7@4" (Oid.to_string (Oid.with_hint (oid ~site:2 7) 4))

let test_oid_collections () =
  let s = Oid.Set.of_list [ oid 1; oid 2; Oid.with_hint (oid 1) 9 ] in
  check_int "set dedupes by identity" 2 (Oid.Set.cardinal s);
  let table = Oid.Table.create 4 in
  Oid.Table.replace table (oid 1) "x";
  check_bool "table finds via different hint" true
    (Oid.Table.find_opt table (Oid.with_hint (oid 1) 3) = Some "x")

(* --- Value --- *)

let test_value_equal () =
  check_bool "str" true (Value.equal (Value.str "a") (Value.str "a"));
  check_bool "str/num differ" false (Value.equal (Value.str "1") (Value.num 1));
  check_bool "ptr identity" true
    (Value.equal (Value.ptr (oid 1)) (Value.ptr (Oid.with_hint (oid 1) 8)));
  check_bool "blob" true (Value.equal (Value.blob "xy") (Value.blob "xy"))

let test_value_projections () =
  check_bool "as_pointer" true (Value.as_pointer (Value.ptr (oid 3)) = Some (oid 3));
  check_bool "as_pointer none" true (Value.as_pointer (Value.str "x") = None);
  check_bool "as_string" true (Value.as_string (Value.str "x") = Some "x");
  check_bool "as_number" true (Value.as_number (Value.num 9) = Some 9)

let test_value_byte_size () =
  check_bool "blob size grows" true
    (Value.byte_size (Value.blob (String.make 100 'x')) > Value.byte_size (Value.blob "x"));
  check_bool "num fixed" true (Value.byte_size (Value.num 7) = Value.byte_size (Value.num 700))

let test_value_compare_consistent () =
  let values =
    [ Value.str "a"; Value.num 1; Value.real 1.5; Value.ptr (oid 0); Value.blob "b" ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = Value.compare a b and ba = Value.compare b a in
          check_bool "antisymmetric" true (compare ab 0 = compare 0 ba);
          check_bool "compare-0 iff equal" true ((ab = 0) = Value.equal a b))
        values)
    values

(* --- Tuple --- *)

let test_tuple_constructors () =
  let t = Tuple.string_ ~key:"Title" "Main Program" in
  check_string "type" Tuple.type_string (Tuple.ttype t);
  check_bool "key" true (Value.equal (Tuple.key t) (Value.str "Title"));
  check_bool "data" true (Value.equal (Tuple.data t) (Value.str "Main Program"))

let test_tuple_pointer () =
  let t = Tuple.pointer ~key:"Called Routine" (oid 5) in
  check_bool "is_pointer" true (Tuple.is_pointer t);
  check_bool "target" true (Tuple.pointer_target t = Some (oid 5));
  check_bool "non-pointer" true (Tuple.pointer_target (Tuple.keyword "x") = None)

let test_tuple_empty_type () =
  Alcotest.check_raises "empty type tag" (Invalid_argument "Tuple.make: empty type tag")
    (fun () -> ignore (Tuple.make ~ttype:"" ~key:(Value.str "k") ~data:(Value.num 1)))

let test_tuple_custom_type () =
  (* Applications can define new type tags — HyperFile stores them
     without interpretation. *)
  let t = Tuple.make ~ttype:"Object_Code" ~key:(Value.str "vax") ~data:(Value.blob "\x00\x01") in
  check_string "custom tag kept" "Object_Code" (Tuple.ttype t)

let test_tuple_equal () =
  check_bool "equal" true (Tuple.equal (Tuple.keyword "a") (Tuple.keyword "a"));
  check_bool "differs by key" false (Tuple.equal (Tuple.keyword "a") (Tuple.keyword "b"))

(* --- Hobject --- *)

let test_hobject_set_semantics () =
  let obj = Hobject.create (oid 0) in
  let t = Tuple.keyword "dup" in
  let obj = Hobject.add (Hobject.add obj t) t in
  check_int "duplicate suppressed" 1 (Hobject.cardinal obj)

let test_hobject_of_tuples_dedup () =
  let t = Tuple.keyword "dup" in
  let obj = Hobject.of_tuples (oid 0) [ t; Tuple.keyword "other"; t ] in
  check_int "deduped" 2 (Hobject.cardinal obj)

let test_hobject_remove () =
  let t = Tuple.keyword "x" in
  let obj = Hobject.of_tuples (oid 0) [ t ] in
  check_int "removed" 0 (Hobject.cardinal (Hobject.remove obj t));
  check_bool "mem" true (Hobject.mem obj t)

let test_hobject_pointers () =
  let obj =
    Hobject.of_tuples (oid 0)
      [ Tuple.pointer ~key:"Ref" (oid 1); Tuple.pointer ~key:"Lib" (oid 2); Tuple.keyword "k" ]
  in
  check_int "all pointers" 2 (List.length (Hobject.pointers obj));
  check_bool "by key" true (Hobject.pointers_with_key obj ~key:"Ref" = [ oid 1 ]);
  check_bool "missing key" true (Hobject.pointers_with_key obj ~key:"None" = [])

let test_hobject_find_string () =
  let obj =
    Hobject.of_tuples (oid 0)
      [ Tuple.string_ ~key:"Author" "Joe"; Tuple.string_ ~key:"Title" "Sort" ]
  in
  check_bool "author" true (Hobject.find_string obj ~key:"Author" = Some "Joe");
  check_bool "missing" true (Hobject.find_string obj ~key:"Nope" = None)

let test_hobject_keywords () =
  let obj =
    Hobject.of_tuples (oid 0) [ Tuple.keyword "a"; Tuple.keyword "b"; Tuple.string_ ~key:"k" "v" ]
  in
  Alcotest.(check (list string)) "keywords" [ "a"; "b" ] (Hobject.keywords obj)

let test_hobject_equal_order_insensitive () =
  let a = Hobject.of_tuples (oid 0) [ Tuple.keyword "x"; Tuple.keyword "y" ] in
  let b = Hobject.of_tuples (oid 0) [ Tuple.keyword "y"; Tuple.keyword "x" ] in
  check_bool "order insensitive" true (Hobject.equal a b)

let test_hobject_byte_size () =
  let small = Hobject.of_tuples (oid 0) [ Tuple.keyword "x" ] in
  let large = Hobject.add small (Tuple.text ~key:"Body" (String.make 1000 'b')) in
  check_bool "body grows size" true (Hobject.byte_size large > Hobject.byte_size small + 900)

(* --- Store --- *)

let test_store_fresh_oids () =
  let store = Store.create ~site:3 in
  let a = Store.fresh_oid store and b = Store.fresh_oid store in
  check_int "birth site" 3 (Oid.birth_site a);
  check_bool "serials distinct" false (Oid.equal a b)

let test_store_insert_find () =
  let store = Store.create ~site:0 in
  let obj = Store.create_object store [ Tuple.keyword "x" ] in
  check_bool "found" true (Store.find store (Hobject.oid obj) = Some obj);
  check_bool "mem" true (Store.mem store (Hobject.oid obj));
  check_int "cardinal" 1 (Store.cardinal store)

let test_store_insert_duplicate () =
  let store = Store.create ~site:0 in
  let obj = Store.create_object store [] in
  Alcotest.check_raises "duplicate insert" (Invalid_argument "Store.insert: oid already present")
    (fun () -> Store.insert store obj)

let test_store_replace_remove () =
  let store = Store.create ~site:0 in
  let obj = Store.create_object store [] in
  let obj' = Hobject.add obj (Tuple.keyword "new") in
  Store.replace store obj';
  check_bool "replaced" true
    (match Store.find store (Hobject.oid obj) with
     | Some o -> Hobject.cardinal o = 1
     | None -> false);
  Store.remove store (Hobject.oid obj);
  check_bool "removed" true (Store.find store (Hobject.oid obj) = None)

let test_store_create_set () =
  let store = Store.create ~site:0 in
  let members = [ oid 10; oid 11; oid 12 ] in
  let set_obj = Store.create_set store members in
  (* a set is an object with one pointer tuple per member (paper §2) *)
  check_int "three pointers" 3 (List.length (Hobject.pointers set_obj));
  check_bool "members" true (Hobject.pointers_with_key set_obj ~key:"Member" = members)

let test_store_fold_iter () =
  let store = Store.create ~site:0 in
  for _ = 1 to 5 do
    ignore (Store.create_object store [])
  done;
  check_int "fold counts" 5 (Store.fold store (fun _ acc -> acc + 1) 0);
  let count = ref 0 in
  Store.iter store (fun _ -> incr count);
  check_int "iter counts" 5 !count;
  check_int "oids" 5 (List.length (Store.oids store))

let () =
  Alcotest.run "hf_data"
    [
      ( "oid",
        [
          Alcotest.test_case "identity" `Quick test_oid_identity;
          Alcotest.test_case "hint ignored in identity" `Quick test_oid_hint_ignored;
          Alcotest.test_case "ordering" `Quick test_oid_ordering;
          Alcotest.test_case "invalid args" `Quick test_oid_invalid;
          Alcotest.test_case "printing" `Quick test_oid_pp;
          Alcotest.test_case "collections" `Quick test_oid_collections;
        ] );
      ( "value",
        [
          Alcotest.test_case "equality" `Quick test_value_equal;
          Alcotest.test_case "projections" `Quick test_value_projections;
          Alcotest.test_case "byte size" `Quick test_value_byte_size;
          Alcotest.test_case "compare consistent" `Quick test_value_compare_consistent;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "constructors" `Quick test_tuple_constructors;
          Alcotest.test_case "pointer tuples" `Quick test_tuple_pointer;
          Alcotest.test_case "empty type rejected" `Quick test_tuple_empty_type;
          Alcotest.test_case "custom application types" `Quick test_tuple_custom_type;
          Alcotest.test_case "equality" `Quick test_tuple_equal;
        ] );
      ( "hobject",
        [
          Alcotest.test_case "set semantics on add" `Quick test_hobject_set_semantics;
          Alcotest.test_case "of_tuples dedupes" `Quick test_hobject_of_tuples_dedup;
          Alcotest.test_case "remove" `Quick test_hobject_remove;
          Alcotest.test_case "pointers" `Quick test_hobject_pointers;
          Alcotest.test_case "find_string" `Quick test_hobject_find_string;
          Alcotest.test_case "keywords" `Quick test_hobject_keywords;
          Alcotest.test_case "order-insensitive equality" `Quick
            test_hobject_equal_order_insensitive;
          Alcotest.test_case "byte size" `Quick test_hobject_byte_size;
        ] );
      ( "store",
        [
          Alcotest.test_case "fresh oids" `Quick test_store_fresh_oids;
          Alcotest.test_case "insert and find" `Quick test_store_insert_find;
          Alcotest.test_case "duplicate insert rejected" `Quick test_store_insert_duplicate;
          Alcotest.test_case "replace and remove" `Quick test_store_replace_remove;
          Alcotest.test_case "set objects" `Quick test_store_create_set;
          Alcotest.test_case "fold and iter" `Quick test_store_fold_iter;
        ] );
    ]
