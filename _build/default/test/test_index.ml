(* Tests for the indexing facilities: keyword inverted index,
   reachability index (SCC-based, cycle-safe), and the planner's
   equivalence with the engine. *)

module Oid = Hf_data.Oid
module Tuple = Hf_data.Tuple
module Store = Hf_data.Store
module KI = Hf_index.Keyword_index
module Reach = Hf_index.Reachability
module Planner = Hf_index.Planner

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build n ~edges ~keywords =
  let store = Store.create ~site:0 in
  let oids = Array.init n (fun _ -> Store.fresh_oid store) in
  Array.iteri
    (fun i oid ->
      let tuples =
        List.filter_map (fun (src, dst) -> if src = i then Some (Tuple.pointer ~key:"R" oids.(dst)) else None) edges
        @ List.filter_map (fun (j, w) -> if j = i then Some (Tuple.keyword w) else None) keywords
        @ [ Tuple.number ~key:"id" i ]
      in
      Store.insert store (Hf_data.Hobject.of_tuples oid tuples))
    oids;
  (store, oids)

let logical_set oids set =
  let index_of oid =
    let found = ref (-1) in
    Array.iteri (fun i o -> if Oid.equal o oid then found := i) oids;
    !found
  in
  List.sort compare (List.map index_of (Oid.Set.elements set))

(* --- Keyword index --- *)

let test_keyword_lookup () =
  let store, oids = build 4 ~edges:[] ~keywords:[ (0, "a"); (1, "a"); (2, "b") ] in
  let ki = KI.of_store store in
  Alcotest.(check (list int)) "a" [ 0; 1 ] (logical_set oids (KI.lookup ki "a"));
  Alcotest.(check (list int)) "b" [ 2 ] (logical_set oids (KI.lookup ki "b"));
  check_int "vocabulary" 2 (KI.cardinal ki);
  check_int "missing" 0 (Oid.Set.cardinal (KI.lookup ki "zzz"))

let test_keyword_glob () =
  let store, oids = build 3 ~edges:[] ~keywords:[ (0, "alpha"); (1, "alps"); (2, "beta") ] in
  let ki = KI.of_store store in
  Alcotest.(check (list int)) "glob" [ 0; 1 ] (logical_set oids (KI.lookup_glob ki "alp*"));
  Alcotest.(check (list int)) "literal glob" [ 2 ] (logical_set oids (KI.lookup_glob ki "beta"))

let test_keyword_incremental () =
  let store, oids = build 2 ~edges:[] ~keywords:[ (0, "x") ] in
  let ki = KI.of_store store in
  let obj1 = Option.get (Store.find store oids.(1)) in
  let obj1' = Hf_data.Hobject.add obj1 (Tuple.keyword "x") in
  KI.replace ki ~old_obj:obj1 obj1';
  check_int "now two" 2 (Oid.Set.cardinal (KI.lookup ki "x"));
  let obj0 = Option.get (Store.find store oids.(0)) in
  KI.remove ki obj0;
  Alcotest.(check (list int)) "removed" [ 1 ] (logical_set oids (KI.lookup ki "x"))

let test_keyword_matches_scan () =
  let prng = Hf_util.Prng.create 11 in
  let n = 30 in
  let keywords =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun w -> if Hf_util.Prng.next_bool prng 0.3 then Some (i, w) else None)
          [ "a"; "b"; "c" ])
      (List.init n Fun.id)
  in
  let store, oids = build n ~edges:[] ~keywords in
  let ki = KI.of_store store in
  List.iter
    (fun w ->
      let scan =
        Store.fold store
          (fun obj acc ->
            if List.mem w (Hf_data.Hobject.keywords obj) then
              Oid.Set.add (Hf_data.Hobject.oid obj) acc
            else acc)
          Oid.Set.empty
      in
      check_bool (Printf.sprintf "index = scan for %s" w) true
        (Oid.Set.equal scan (KI.lookup ki w)))
    [ "a"; "b"; "c" ];
  ignore oids

(* --- Reachability --- *)

let test_reach_chain () =
  let store, oids = build 4 ~edges:[ (0, 1); (1, 2); (2, 3) ] ~keywords:[] in
  let reach = Reach.of_store ~key:"R" store in
  Alcotest.(check (list int)) "from 0" [ 0; 1; 2; 3 ] (logical_set oids (Reach.reachable reach oids.(0)));
  Alcotest.(check (list int)) "from 2" [ 2; 3 ] (logical_set oids (Reach.reachable reach oids.(2)));
  check_bool "is_reachable" true (Reach.is_reachable reach ~source:oids.(0) ~target:oids.(3));
  check_bool "not backwards" false (Reach.is_reachable reach ~source:oids.(3) ~target:oids.(0));
  check_int "four components" 4 (Reach.component_count reach)

let test_reach_cycle_condensation () =
  let store, oids = build 5 ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4) ] ~keywords:[] in
  let reach = Reach.of_store ~key:"R" store in
  Alcotest.(check (list int)) "cycle sees all" [ 0; 1; 2; 3; 4 ]
    (logical_set oids (Reach.reachable reach oids.(1)));
  check_int "condensed to 3 components" 3 (Reach.component_count reach)

let test_reach_self_loop () =
  let store, oids = build 2 ~edges:[ (0, 0); (0, 1) ] ~keywords:[] in
  let reach = Reach.of_store ~key:"R" store in
  Alcotest.(check (list int)) "self loop" [ 0; 1 ] (logical_set oids (Reach.reachable reach oids.(0)))

let test_reach_deep_chain_no_overflow () =
  let n = 20_000 in
  let edges = List.init (n - 1) (fun i -> (i, i + 1)) in
  let store, oids = build n ~edges ~keywords:[] in
  let reach = Reach.of_store ~key:"R" store in
  check_int "deep chain covered" n (Oid.Set.cardinal (Reach.reachable reach oids.(0)))

let test_reach_unknown () =
  let store, _ = build 2 ~edges:[] ~keywords:[] in
  let reach = Reach.of_store ~key:"R" store in
  check_int "unknown oid" 0
    (Oid.Set.cardinal (Reach.reachable reach (Oid.make ~birth_site:9 ~serial:9)))

let prop_reach_matches_engine =
  QCheck2.Test.make ~name:"reachability index = engine closure" ~count:100 QCheck2.Gen.int
    (fun seed ->
      let prng = Hf_util.Prng.create seed in
      let n = 2 + Hf_util.Prng.next_int prng 15 in
      let edges =
        List.init (Hf_util.Prng.next_int prng (3 * n)) (fun _ ->
            (Hf_util.Prng.next_int prng n, Hf_util.Prng.next_int prng n))
      in
      let store, oids = build n ~edges ~keywords:[] in
      let reach = Reach.of_store ~key:"R" store in
      let start = Hf_util.Prng.next_int prng n in
      (* engine closure: keep-parent star over R, selecting everything;
         note leaves die inside the iteration body (Figure 3), so the
         oracle for "reachable" uses the index shape where every visited
         object counts.  Compare against a plain BFS instead. *)
      let visited = Hashtbl.create 16 in
      let rec bfs i =
        if not (Hashtbl.mem visited i) then begin
          Hashtbl.replace visited i ();
          List.iter (fun (src, dst) -> if src = i then bfs dst) edges
        end
      in
      bfs start;
      let expected = List.sort compare (Hashtbl.fold (fun i _ acc -> i :: acc) visited []) in
      logical_set oids (Reach.reachable reach oids.(start)) = expected)

(* --- Planner --- *)

let closure_ast = Hf_query.Parser.parse_body "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)"

let test_planner_recognizes_shape () =
  let store, _ = build 2 ~edges:[ (0, 1) ] ~keywords:[ (0, "hot") ] in
  let indexes =
    { Planner.reachability = Some (Reach.of_store ~key:"R" store);
      keywords = Some (KI.of_store store);
    }
  in
  (match Planner.explain indexes closure_ast with
   | Planner.Indexed _ -> ()
   | Planner.Scan -> Alcotest.fail "expected indexed plan");
  match Planner.explain Planner.no_indexes closure_ast with
  | Planner.Scan -> ()
  | Planner.Indexed _ -> Alcotest.fail "no indexes means scan"

let test_planner_wrong_key_scans () =
  let store, _ = build 2 ~edges:[ (0, 1) ] ~keywords:[] in
  let indexes =
    { Planner.reachability = Some (Reach.of_store ~key:"OTHER" store); keywords = None }
  in
  match Planner.explain indexes closure_ast with
  | Planner.Scan -> ()
  | Planner.Indexed _ -> Alcotest.fail "key mismatch must scan"

(* The planner answers reachability∩keyword; the engine's Figure 3
   semantics drops pointerless leaves before the trailing filter.  On
   graphs where every node has an outgoing R pointer the two agree
   exactly. *)
let prop_planner_matches_engine =
  QCheck2.Test.make ~name:"planner = engine on leaf-free graphs" ~count:100 QCheck2.Gen.int
    (fun seed ->
      let prng = Hf_util.Prng.create seed in
      let n = 2 + Hf_util.Prng.next_int prng 12 in
      (* a random successor per node guarantees no leaves *)
      let edges =
        List.init n (fun i -> (i, Hf_util.Prng.next_int prng n))
        @ List.init (Hf_util.Prng.next_int prng n) (fun _ ->
              (Hf_util.Prng.next_int prng n, Hf_util.Prng.next_int prng n))
      in
      let keywords =
        List.filter_map
          (fun i -> if Hf_util.Prng.next_bool prng 0.5 then Some (i, "hot") else None)
          (List.init n Fun.id)
      in
      let store, oids = build n ~edges ~keywords in
      let indexes =
        { Planner.reachability = Some (Reach.of_store ~key:"R" store);
          keywords = Some (KI.of_store store);
        }
      in
      let start = Hf_util.Prng.next_int prng n in
      let planner_answer =
        Planner.answer ~indexes ~find:(Store.find store) closure_ast [ oids.(start) ]
      in
      let engine_answer =
        (Hf_engine.Local.run_query ~store closure_ast [ oids.(start) ]).Hf_engine.Local.result_set
      in
      Oid.Set.equal planner_answer engine_answer)

let test_planner_fallback_general_query () =
  let store, oids = build 2 ~edges:[ (0, 1) ] ~keywords:[ (1, "hot") ] in
  let ast = Hf_query.Parser.parse_body "(Pointer, \"R\", ?X) ^X (Keyword, \"hot\", ?)" in
  let answer = Planner.answer ~find:(Store.find store) ast [ oids.(0) ] in
  Alcotest.(check (list int)) "fallback works" [ 1 ] (logical_set oids answer)

(* --- Backlinks --- *)

let test_backlinks_basic () =
  let store, oids = build 4 ~edges:[ (0, 2); (1, 2); (2, 3) ] ~keywords:[] in
  let bl = Hf_index.Backlinks.of_store store in
  check_int "two referrers of 2" 2
    (Oid.Set.cardinal (Hf_index.Backlinks.referrers bl oids.(2)));
  check_int "one referrer of 3" 1 (Hf_index.Backlinks.referrer_count bl oids.(3));
  check_int "no referrers of 0" 0 (Hf_index.Backlinks.referrer_count bl oids.(0));
  match Hf_index.Backlinks.incoming bl oids.(3) with
  | [ { Hf_index.Backlinks.source; key } ] ->
    check_bool "edge source" true (Oid.equal source oids.(2));
    Alcotest.(check string) "edge key" "R" key
  | _ -> Alcotest.fail "expected one incoming edge"

let test_backlinks_key_filter () =
  let store = Store.create ~site:0 in
  let a = Store.fresh_oid store and b = Store.fresh_oid store in
  Store.insert store
    (Hf_data.Hobject.of_tuples a
       [ Tuple.pointer ~key:"Cites" b; Tuple.pointer ~key:"Thanks" b ]);
  Store.insert store (Hf_data.Hobject.of_tuples b []);
  let all = Hf_index.Backlinks.of_store store in
  let cites = Hf_index.Backlinks.of_store ~key:"Cites" store in
  check_int "all edges" 2 (List.length (Hf_index.Backlinks.incoming all b));
  check_int "filtered" 1 (List.length (Hf_index.Backlinks.incoming cites b));
  check_bool "indexed key recorded" true (Hf_index.Backlinks.indexed_key cites = Some "Cites")

let test_backlinks_materialize () =
  (* The paper's prescription: write back pointers into the objects so
     "find all routines that call this one" is a forward query. *)
  let store, oids = build 3 ~edges:[ (0, 2); (1, 2) ] ~keywords:[] in
  let updated = Hf_index.Backlinks.materialize ~key:"R" store in
  check_int "one object gained back pointers" 1 updated;
  let ast = Hf_query.Parser.parse_body "(Pointer, \"R<-\", ?X) ^X (?, ?, ?)" in
  let callers = Hf_engine.Local.run_query ~store ast [ oids.(2) ] in
  Alcotest.(check (list int)) "callers found by forward query" [ 0; 1 ]
    (logical_set oids callers.Hf_engine.Local.result_set);
  (* idempotent: tuple sets absorb duplicates *)
  check_int "re-run adds nothing" 0 (Hf_index.Backlinks.materialize ~key:"R" store)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "hf_index"
    [
      ( "keyword index",
        [
          Alcotest.test_case "lookup" `Quick test_keyword_lookup;
          Alcotest.test_case "glob lookup" `Quick test_keyword_glob;
          Alcotest.test_case "incremental maintenance" `Quick test_keyword_incremental;
          Alcotest.test_case "index equals scan" `Quick test_keyword_matches_scan;
        ] );
      ( "reachability",
        [
          Alcotest.test_case "chain" `Quick test_reach_chain;
          Alcotest.test_case "cycle condensation" `Quick test_reach_cycle_condensation;
          Alcotest.test_case "self loop" `Quick test_reach_self_loop;
          Alcotest.test_case "deep chain (no stack overflow)" `Quick
            test_reach_deep_chain_no_overflow;
          Alcotest.test_case "unknown object" `Quick test_reach_unknown;
          qtest prop_reach_matches_engine;
        ] );
      ( "planner",
        [
          Alcotest.test_case "recognizes the shape" `Quick test_planner_recognizes_shape;
          Alcotest.test_case "wrong key scans" `Quick test_planner_wrong_key_scans;
          Alcotest.test_case "fallback on general queries" `Quick
            test_planner_fallback_general_query;
          qtest prop_planner_matches_engine;
        ] );
      ( "backlinks",
        [
          Alcotest.test_case "reverse index" `Quick test_backlinks_basic;
          Alcotest.test_case "key filter" `Quick test_backlinks_key_filter;
          Alcotest.test_case "materialize back pointers" `Quick test_backlinks_materialize;
        ] );
    ]
