(* Tests for the termination detectors: exact credit arithmetic, and a
   randomized abstract message-system driver checking each detector's
   safety (never declares while work or work messages remain) and
   liveness (declares once everything has quiesced). *)

module Credit = Hf_termination.Credit

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Credit --- *)

let test_credit_basics () =
  check_bool "zero is zero" true (Credit.is_zero Credit.zero);
  check_bool "one is one" true (Credit.is_one Credit.one);
  check_bool "one not zero" false (Credit.is_zero Credit.one);
  check_bool "zero not one" false (Credit.is_one Credit.zero)

let test_credit_split_add () =
  let keep, gave = Credit.split Credit.one in
  check_bool "split halves differ from one" false (Credit.is_one keep);
  check_bool "recombines" true (Credit.is_one (Credit.add keep gave))

let test_credit_split_zero () =
  Alcotest.check_raises "split zero" (Invalid_argument "Credit.split: cannot split zero credit")
    (fun () -> ignore (Credit.split Credit.zero))

let test_credit_normalization () =
  (* 2 * 2^-1 = 1 *)
  let half = Credit.of_atoms [ 1 ] in
  check_bool "two halves are one" true (Credit.is_one (Credit.add half half));
  (* 4 * 2^-2 = 1 *)
  let quarter = Credit.of_atoms [ 2 ] in
  let sum = List.fold_left Credit.add Credit.zero [ quarter; quarter; quarter; quarter ] in
  check_bool "four quarters are one" true (Credit.is_one sum)

let test_credit_atoms_roundtrip () =
  let c = Credit.of_atoms [ 3; 5; 5; 7 ] in
  (* 2*2^-5 normalizes to 2^-4 *)
  Alcotest.(check (list int)) "normalized atoms" [ 3; 4; 7 ] (Credit.atoms c);
  check_bool "roundtrip" true (Credit.equal c (Credit.of_atoms (Credit.atoms c)))

let test_credit_of_atoms_negative () =
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Credit.of_atoms: negative exponent") (fun () ->
      ignore (Credit.of_atoms [ -1 ]))

let test_credit_deep_split () =
  (* Split 1000 times along a chain — no borrowing, no overflow. *)
  let held = ref Credit.one in
  let given = ref Credit.zero in
  for _ = 1 to 1000 do
    let keep, gave = Credit.split !held in
    held := keep;
    given := Credit.add !given gave
  done;
  check_bool "still recombines to one" true (Credit.is_one (Credit.add !held !given));
  check_bool "deep exponent recorded" true (Option.get (Credit.max_exponent !held) >= 1)

let test_credit_to_float () =
  check_bool "one is 1.0" true (Credit.to_float Credit.one = 1.0);
  let keep, gave = Credit.split Credit.one in
  check_bool "halves" true (Credit.to_float keep = 0.5 && Credit.to_float gave = 0.5)

let prop_credit_random_splits =
  QCheck2.Test.make ~name:"random split/merge always recombines to one" ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) bool)
    (fun choices ->
      (* maintain a bag of credits starting at [one]; each step either
         splits the first credit or merges the first two *)
      let bag = ref [ Credit.one ] in
      List.iter
        (fun do_split ->
          match !bag with
          | [] -> ()
          | c :: rest ->
            if do_split && not (Credit.is_zero c) then begin
              let keep, gave = Credit.split c in
              bag := keep :: gave :: rest
            end
            else begin
              match rest with
              | [] -> ()
              | d :: rest' -> bag := Credit.add c d :: rest'
            end)
        choices;
      Credit.is_one (List.fold_left Credit.add Credit.zero !bag))

(* --- Abstract message-system driver, generic over the detector --- *)

module Driver (D : Hf_termination.Detector.S) = struct
  type message =
    | Work of { src : int; dst : int; tag : D.tag }
    | Control of { src : int; dst : int; payload : D.control }

  (* Run a random diffusing computation over [n_sites]; return true iff
     the detector was safe throughout and live at the end. *)
  let run ~n_sites ~seed =
    let prng = Hf_util.Prng.create seed in
    let origin = 0 in
    let detectors = Array.init n_sites (fun self -> D.create ~n_sites ~origin ~self) in
    let site_work = Array.make n_sites 0 in
    let in_flight : message list ref = ref [] in
    let declared = ref false in
    let safety_ok = ref true in
    let truly_done () =
      Array.for_all (fun w -> w = 0) site_work
      && not (List.exists (function Work _ -> true | Control _ -> false) !in_flight)
    in
    let note_declared flag =
      if flag then begin
        declared := true;
        if not (truly_done ()) then safety_ok := false
      end
    in
    let send_controls src controls =
      List.iter
        (fun (dst, payload) -> in_flight := Control { src; dst; payload } :: !in_flight)
        controls
    in
    (* seed initial work at the origin *)
    let initial = 1 + Hf_util.Prng.next_int prng 3 in
    D.on_seed detectors.(origin);
    site_work.(origin) <- initial;
    (* total-send budget guarantees the computation itself is finite *)
    let sends_left = ref 100 in
    let process_item site =
      site_work.(site) <- site_work.(site) - 1;
      let forwards = min !sends_left (Hf_util.Prng.next_int prng 3) in
      for _ = 1 to forwards do
        decr sends_left;
        let dst = Hf_util.Prng.next_int prng n_sites in
        let tag = D.on_send_work detectors.(site) ~dst in
        in_flight := Work { src = site; dst; tag } :: !in_flight
      done;
      if site_work.(site) = 0 then begin
        let controls, terminated = D.on_drain detectors.(site) in
        send_controls site controls;
        note_declared terminated
      end
    in
    let deliver_nth n =
      let rec split i acc = function
        | [] -> assert false
        | m :: rest ->
          if i = n then (m, List.rev_append acc rest) else split (i + 1) (m :: acc) rest
      in
      let m, rest = split 0 [] !in_flight in
      in_flight := rest;
      match m with
      | Work { src; dst; tag } ->
        let controls = D.on_recv_work detectors.(dst) ~src tag in
        send_controls dst controls;
        site_work.(dst) <- site_work.(dst) + 1
      | Control { src; dst; payload } ->
        let controls, terminated = D.on_recv_control detectors.(dst) ~src payload in
        send_controls dst controls;
        note_declared terminated
    in
    let budget = ref 2000 in
    let continue () =
      (Array.exists (fun w -> w > 0) site_work || !in_flight <> []) && !budget > 0
    in
    while continue () do
      decr budget;
      let busy_sites = List.filter (fun s -> site_work.(s) > 0) (List.init n_sites Fun.id) in
      let can_deliver = !in_flight <> [] in
      if busy_sites <> [] && (Hf_util.Prng.next_bool prng 0.5 || not can_deliver) then
        process_item
          (List.nth busy_sites (Hf_util.Prng.next_int prng (List.length busy_sites)))
      else if can_deliver then deliver_nth (Hf_util.Prng.next_int prng (List.length !in_flight))
    done;
    (* liveness: after quiescence, polling waves (for wave-based
       detectors) plus control delivery must lead to a declaration *)
    let rounds = ref 0 in
    while (not !declared) && !rounds < 20 do
      incr rounds;
      send_controls origin (D.on_poll detectors.(origin));
      while !in_flight <> [] do
        deliver_nth 0
      done
    done;
    !safety_ok && !declared && truly_done ()
end

module Weighted_driver = Driver (Hf_termination.Weighted)
module Ds_driver = Driver (Hf_termination.Dijkstra_scholten)
module Fc_driver = Driver (Hf_termination.Four_counter)

let detector_prop name run =
  QCheck2.Test.make ~name ~count:150
    QCheck2.Gen.(pair (int_range 1 6) int)
    (fun (n_sites, seed) -> run ~n_sites ~seed)

let prop_weighted = detector_prop "weighted: safe and live" Weighted_driver.run
let prop_ds = detector_prop "dijkstra-scholten: safe and live" Ds_driver.run
let prop_fc = detector_prop "four-counter: safe and live" Fc_driver.run

(* --- Focused scenarios --- *)

let test_weighted_two_site_scenario () =
  let module W = Hf_termination.Weighted in
  let a = W.create ~n_sites:2 ~origin:0 ~self:0 in
  let b = W.create ~n_sites:2 ~origin:0 ~self:1 in
  W.on_seed a;
  let tag = W.on_send_work a ~dst:1 in
  let controls_a, done_a = W.on_drain a in
  check_bool "origin not done: credit outstanding" false done_a;
  check_int "origin keeps controls local" 0 (List.length controls_a);
  check_int "no immediate controls on work receipt" 0 (List.length (W.on_recv_work b ~src:0 tag));
  let controls_b, done_b = W.on_drain b in
  check_bool "non-origin never declares" false done_b;
  match controls_b with
  | [ (0, ret) ] ->
    let _, declared = W.on_recv_control a ~src:1 ret in
    check_bool "origin declares on full recovery" true declared
  | _ -> Alcotest.fail "expected one credit return to origin"

let test_weighted_instrumentation () =
  let module W = Hf_termination.Weighted in
  let a = W.create ~n_sites:3 ~origin:0 ~self:0 in
  W.on_seed a;
  ignore (W.on_send_work a ~dst:1);
  ignore (W.on_send_work a ~dst:2);
  check_int "two splits" 2 (W.splits a);
  check_bool "held shrank" false (Credit.is_one (W.held a))

let test_weighted_empty_query () =
  (* Origin seeds and drains with no sends: immediate termination. *)
  let module W = Hf_termination.Weighted in
  let a = W.create ~n_sites:3 ~origin:0 ~self:0 in
  W.on_seed a;
  let _, declared = W.on_drain a in
  check_bool "immediate declaration" true declared

let test_ds_scenario () =
  let module D = Hf_termination.Dijkstra_scholten in
  let a = D.create ~n_sites:2 ~origin:0 ~self:0 in
  let b = D.create ~n_sites:2 ~origin:0 ~self:1 in
  D.on_seed a;
  D.on_send_work a ~dst:1;
  check_int "deficit" 1 (D.deficit a);
  let _, done_a = D.on_drain a in
  check_bool "not done with deficit" false done_a;
  check_int "first message engages silently" 0 (List.length (D.on_recv_work b ~src:0 ()));
  match D.on_drain b with
  | [ (0, ack) ], false ->
    let _, declared = D.on_recv_control a ~src:1 ack in
    check_bool "origin declares after ack" true declared
  | _ -> Alcotest.fail "expected ack to origin"

let test_ds_second_message_acked_immediately () =
  let module D = Hf_termination.Dijkstra_scholten in
  let b = D.create ~n_sites:2 ~origin:0 ~self:1 in
  check_int "engage" 0 (List.length (D.on_recv_work b ~src:0 ()));
  check_int "second acked" 1 (List.length (D.on_recv_work b ~src:0 ()))

let test_fc_probe_reply () =
  let module F = Hf_termination.Four_counter in
  let origin = F.create ~n_sites:2 ~origin:0 ~self:0 in
  let other = F.create ~n_sites:2 ~origin:0 ~self:1 in
  F.on_seed origin;
  let _ = F.on_drain origin in
  (match F.on_poll origin with
   | [ (1, probe) ] -> (
       match F.on_recv_control other ~src:0 probe with
       | [ (0, _report) ], false -> ()
       | _ -> Alcotest.fail "expected a report back to the origin")
   | _ -> Alcotest.fail "expected one probe");
  check_int "one wave counted" 1 (F.waves origin)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "hf_termination"
    [
      ( "credit",
        [
          Alcotest.test_case "basics" `Quick test_credit_basics;
          Alcotest.test_case "split/add" `Quick test_credit_split_add;
          Alcotest.test_case "split zero rejected" `Quick test_credit_split_zero;
          Alcotest.test_case "normalization" `Quick test_credit_normalization;
          Alcotest.test_case "atoms roundtrip" `Quick test_credit_atoms_roundtrip;
          Alcotest.test_case "negative atoms rejected" `Quick test_credit_of_atoms_negative;
          Alcotest.test_case "deep splits (no borrowing)" `Quick test_credit_deep_split;
          Alcotest.test_case "approximate value" `Quick test_credit_to_float;
          qtest prop_credit_random_splits;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "two-site scenario" `Quick test_weighted_two_site_scenario;
          Alcotest.test_case "instrumentation" `Quick test_weighted_instrumentation;
          Alcotest.test_case "empty query" `Quick test_weighted_empty_query;
          qtest prop_weighted;
        ] );
      ( "dijkstra-scholten",
        [
          Alcotest.test_case "scenario" `Quick test_ds_scenario;
          Alcotest.test_case "second message acked" `Quick
            test_ds_second_message_acked_immediately;
          qtest prop_ds;
        ] );
      ( "four-counter",
        [
          Alcotest.test_case "probe/reply" `Quick test_fc_probe_reply;
          qtest prop_fc;
        ] );
    ]
