(* Tests for store snapshots: round-trips, reproducibility, serial
   preservation, and corruption detection. *)

module Store = Hf_data.Store
module Tuple = Hf_data.Tuple
module Snapshot = Hf_persist.Snapshot

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let sample_store () =
  let store = Store.create ~site:2 in
  let a =
    Store.create_object store
      [ Tuple.string_ ~key:"Title" "First";
        Tuple.keyword "alpha";
        Tuple.number ~key:"size" 42;
        Tuple.text ~key:"Body" (String.make 500 'b');
      ]
  in
  let b =
    Store.create_object store
      [ Tuple.pointer ~key:"Ref" (Hf_data.Hobject.oid a);
        Tuple.pointer ~key:"Remote" (Hf_data.Oid.make ~birth_site:5 ~serial:77);
      ]
  in
  ignore (Store.create_object store []);
  (store, a, b)

let stores_equal a b =
  Store.site a = Store.site b
  && Store.cardinal a = Store.cardinal b
  && Store.fold a
       (fun obj acc ->
         acc
         && match Store.find b (Hf_data.Hobject.oid obj) with
            | Some other -> Hf_data.Hobject.equal obj other
            | None -> false)
       true

let test_roundtrip () =
  let store, _, _ = sample_store () in
  let restored = Snapshot.decode (Snapshot.encode store) in
  check_bool "stores equal" true (stores_equal store restored)

let test_preserves_serials () =
  let store, _, _ = sample_store () in
  let restored = Snapshot.decode (Snapshot.encode store) in
  check_int "serial high-water" (Store.next_serial store) (Store.next_serial restored);
  (* a fresh oid after restore must not collide *)
  let fresh = Store.fresh_oid restored in
  check_bool "no collision" false (Store.mem restored fresh)

let test_reproducible () =
  let store, _, _ = sample_store () in
  Alcotest.(check string) "byte-for-byte" (Snapshot.encode store) (Snapshot.encode store)

let test_empty_store () =
  let store = Store.create ~site:0 in
  let restored = Snapshot.decode (Snapshot.encode store) in
  check_int "empty" 0 (Store.cardinal restored)

let test_file_roundtrip () =
  let store, _, _ = sample_store () in
  let path = Filename.temp_file "hf_snapshot" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Snapshot.save store ~path;
      let restored = Snapshot.load ~path in
      check_bool "file round-trip" true (stores_equal store restored))

let expect_corrupt data =
  match Snapshot.decode data with
  | _ -> Alcotest.fail "expected Corrupt"
  | exception Snapshot.Corrupt _ -> ()

let test_bad_magic () = expect_corrupt "NOTASNAP0\x00\x00"

let test_truncation_detected () =
  let store, _, _ = sample_store () in
  let encoded = Snapshot.encode store in
  (* cut inside the object frames *)
  expect_corrupt (String.sub encoded 0 (String.length encoded - 7));
  expect_corrupt (String.sub encoded 0 12)

let test_trailing_bytes_detected () =
  let store, _, _ = sample_store () in
  expect_corrupt (Snapshot.encode store ^ "junk")

let test_flipped_byte_detected () =
  (* Flip a byte inside an object's frame header length: decoding must
     fail rather than silently misread. *)
  let store, _, _ = sample_store () in
  let encoded = Bytes.of_string (Snapshot.encode store) in
  let pos = String.length Snapshot.magic + 3 in
  Bytes.set encoded pos (Char.chr (Char.code (Bytes.get encoded pos) lxor 0x5f));
  match Snapshot.decode (Bytes.to_string encoded) with
  | _ -> () (* a value byte may flip without structural damage *)
  | exception Snapshot.Corrupt _ -> ()
  | exception Hf_proto.Frame.Frame_error _ -> ()

let prop_random_stores_roundtrip =
  QCheck2.Test.make ~name:"random stores round-trip" ~count:100 QCheck2.Gen.int (fun seed ->
      let prng = Hf_util.Prng.create seed in
      let store = Store.create ~site:(Hf_util.Prng.next_int prng 10) in
      let n = Hf_util.Prng.next_int prng 20 in
      for i = 0 to n - 1 do
        let tuples =
          List.concat
            [
              (if Hf_util.Prng.next_bool prng 0.7 then [ Tuple.number ~key:"id" i ] else []);
              (if Hf_util.Prng.next_bool prng 0.5 then [ Tuple.keyword "k" ] else []);
              (if Hf_util.Prng.next_bool prng 0.5 then
                 [ Tuple.pointer ~key:"R"
                     (Hf_data.Oid.make ~birth_site:(Hf_util.Prng.next_int prng 5)
                        ~serial:(Hf_util.Prng.next_int prng 100))
                 ]
               else []);
            ]
        in
        ignore (Store.create_object store tuples)
      done;
      stores_equal store (Snapshot.decode (Snapshot.encode store)))

(* Crash-recovery scenario: snapshot every site of a cluster, "restart"
   into a fresh cluster restored from the snapshots, and check that a
   distributed query gives the same answer. *)
let test_cluster_recovery () =
  let module C = Hf_server.Instances.Weighted in
  let n_sites = 3 in
  let build () = C.create ~n_sites () in
  let cluster = build () in
  let n = 12 in
  let oids = Array.init n (fun i -> Store.fresh_oid (C.store cluster (i mod n_sites))) in
  Array.iteri
    (fun i oid ->
      let tuples =
        [ Tuple.pointer ~key:"R" oids.((i + 1) mod n) ]
        @ (if i mod 4 = 0 then [ Tuple.keyword "hot" ] else [])
      in
      Store.insert (C.store cluster (i mod n_sites)) (Hf_data.Hobject.of_tuples oid tuples))
    oids;
  let program =
    Hf_query.Parser.parse_program "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)"
  in
  let before = C.run_query cluster ~origin:0 program [ oids.(0) ] in
  (* snapshot all sites *)
  let snapshots = List.init n_sites (fun s -> Snapshot.encode (C.store cluster s)) in
  (* "restart": restore each snapshot into a fresh cluster's stores *)
  let revived = build () in
  List.iteri
    (fun s data ->
      let restored = Snapshot.decode data in
      let target = C.store revived s in
      Store.iter restored (fun obj -> Store.insert target obj);
      Store.advance_serial target (Store.next_serial restored))
    snapshots;
  let after = C.run_query revived ~origin:0 program [ oids.(0) ] in
  check_bool "query survives restart" true
    (Hf_data.Oid.Set.equal before.Hf_server.Cluster.result_set
       after.Hf_server.Cluster.result_set);
  check_bool "terminated" true after.Hf_server.Cluster.terminated

(* --- WAL --- *)

module Wal = Hf_persist.Wal

let with_temp_files f =
  let log_path = Filename.temp_file "hf_wal" ".log" in
  let snapshot_path = Filename.temp_file "hf_snap" ".bin" in
  Sys.remove snapshot_path;
  (* start without a snapshot *)
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists log_path then Sys.remove log_path;
      if Sys.file_exists snapshot_path then Sys.remove snapshot_path)
    (fun () -> f ~log_path ~snapshot_path)

let test_wal_record_roundtrip () =
  let store, a, _ = sample_store () in
  let obj = Option.get (Store.find store (Hf_data.Hobject.oid a)) in
  let records =
    [ Wal.Insert obj; Wal.Replace obj; Wal.Remove (Hf_data.Hobject.oid a) ]
  in
  List.iter
    (fun record ->
      let framed = Wal.encode_record record in
      (* strip the frame to get the payload back *)
      let decoder = Hf_proto.Frame.Decoder.create () in
      Hf_proto.Frame.Decoder.feed decoder framed;
      match Hf_proto.Frame.Decoder.next decoder with
      | Some payload ->
        let back = Wal.decode_record payload in
        check_bool "roundtrip" true
          (match record, back with
           | Wal.Insert x, Wal.Insert y | Wal.Replace x, Wal.Replace y ->
             Hf_data.Hobject.equal x y
           | Wal.Remove x, Wal.Remove y -> Hf_data.Oid.equal x y
           | _ -> false)
      | None -> Alcotest.fail "frame did not round-trip")
    records

let test_wal_recovery_from_log_only () =
  with_temp_files (fun ~log_path ~snapshot_path ->
      let logged, r0 = Wal.open_logged ~site:1 ~log_path ~snapshot_path in
      check_int "fresh log" 0 r0.Wal.applied;
      let a = Wal.create_object logged [ Tuple.keyword "x" ] in
      let b = Wal.create_object logged [ Tuple.keyword "y" ] in
      Wal.replace logged (Hf_data.Hobject.add (Hf_data.Hobject.of_tuples (Hf_data.Hobject.oid a) [ Tuple.keyword "x" ]) (Tuple.keyword "more"));
      Wal.remove logged (Hf_data.Hobject.oid b);
      let live = Wal.store logged in
      Wal.close logged;
      let recovered, r = Wal.open_logged ~site:1 ~log_path ~snapshot_path in
      check_int "four records" 4 r.Wal.applied;
      check_bool "not truncated" false r.Wal.truncated;
      check_bool "stores equal" true (stores_equal live (Wal.store recovered));
      (* fresh oids after recovery must not collide *)
      let fresh = Store.fresh_oid (Wal.store recovered) in
      check_bool "no collision" false (Store.mem (Wal.store recovered) fresh);
      Wal.close recovered)

let test_wal_checkpoint () =
  with_temp_files (fun ~log_path ~snapshot_path ->
      let logged, _ = Wal.open_logged ~site:0 ~log_path ~snapshot_path in
      ignore (Wal.create_object logged [ Tuple.keyword "before" ]);
      let logged = Wal.checkpoint logged ~snapshot_path ~log_path in
      ignore (Wal.create_object logged [ Tuple.keyword "after" ]);
      let live = Wal.store logged in
      Wal.close logged;
      let recovered, r = Wal.open_logged ~site:0 ~log_path ~snapshot_path in
      check_int "only post-checkpoint records replayed" 1 r.Wal.applied;
      check_bool "stores equal" true (stores_equal live (Wal.store recovered));
      Wal.close recovered)

let test_wal_torn_tail () =
  with_temp_files (fun ~log_path ~snapshot_path ->
      let logged, _ = Wal.open_logged ~site:0 ~log_path ~snapshot_path in
      ignore (Wal.create_object logged [ Tuple.keyword "kept" ]);
      Wal.close logged;
      (* simulate a crash mid-append: write half a record *)
      let partial =
        let obj = Hf_data.Hobject.of_tuples (Hf_data.Oid.make ~birth_site:0 ~serial:99) [] in
        let framed = Wal.encode_record (Wal.Insert obj) in
        String.sub framed 0 (String.length framed - 3)
      in
      Out_channel.with_open_gen [ Open_append; Open_binary ] 0o644 log_path (fun oc ->
          Out_channel.output_string oc partial);
      let recovered, r = Wal.open_logged ~site:0 ~log_path ~snapshot_path in
      check_int "complete records applied" 1 r.Wal.applied;
      check_bool "tail detected as torn" true r.Wal.truncated;
      check_int "store has the kept object" 1 (Store.cardinal (Wal.store recovered));
      Wal.close recovered)

let test_wal_corrupt_record () =
  let bad = Hf_proto.Frame.frame "\x09garbage" in
  let decoder = Hf_proto.Frame.Decoder.create () in
  Hf_proto.Frame.Decoder.feed decoder bad;
  match Wal.decode_record (Option.get (Hf_proto.Frame.Decoder.next decoder)) with
  | _ -> Alcotest.fail "expected Corrupt"
  | exception Wal.Corrupt _ -> ()

(* --- Blob store --- *)

module Blob_store = Hf_persist.Blob_store

let with_blob_store f =
  let path = Filename.temp_file "hf_blobs" ".dat" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_blob_put_get () =
  with_blob_store (fun path ->
      let bs = Blob_store.open_ ~path in
      let h1 = Blob_store.put bs "first blob" in
      let h2 = Blob_store.put bs (String.make 10_000 'x') in
      let h3 = Blob_store.put bs "" in
      check_string "first" "first blob" (Blob_store.get bs h1);
      check_int "big" 10_000 (String.length (Blob_store.get bs h2));
      check_string "empty" "" (Blob_store.get bs h3);
      Blob_store.close bs)

let test_blob_reopen () =
  with_blob_store (fun path ->
      let bs = Blob_store.open_ ~path in
      let h = Blob_store.put bs "persistent" in
      Blob_store.close bs;
      let bs2 = Blob_store.open_ ~path in
      check_string "survives reopen" "persistent" (Blob_store.get bs2 h);
      (* appends continue after the existing data *)
      let h2 = Blob_store.put bs2 "more" in
      check_string "appended" "more" (Blob_store.get bs2 h2);
      check_string "old still valid" "persistent" (Blob_store.get bs2 h);
      Blob_store.close bs2)

let test_blob_bad_handle () =
  with_blob_store (fun path ->
      let bs = Blob_store.open_ ~path in
      ignore (Blob_store.put bs "x");
      (match Blob_store.get bs { Blob_store.offset = 0; length = 10_000 } with
       | _ -> Alcotest.fail "expected Corrupt"
       | exception Blob_store.Corrupt _ -> ());
      Blob_store.close bs)

let test_blob_externalize_roundtrip () =
  with_blob_store (fun path ->
      let bs = Blob_store.open_ ~path in
      let store = Store.create ~site:0 in
      let big_body = String.make 4_096 'B' in
      let a =
        Store.create_object store
          [ Tuple.keyword "hot"; Tuple.text ~key:"Body" big_body;
            Tuple.text ~key:"Abstract" "short" ]
      in
      let before = Option.get (Store.find store (Hf_data.Hobject.oid a)) in
      let moved = Blob_store.externalize bs store ~threshold:1024 in
      check_int "only the big blob moved" 1 moved;
      (* search information still queryable, object now small *)
      let r =
        Hf_engine.Local.run_query ~store
          (Hf_query.Parser.parse_body "(Keyword, \"hot\", ?)")
          [ Hf_data.Hobject.oid a ]
      in
      check_int "queries unaffected" 1 (List.length r.Hf_engine.Local.results);
      let slim = Option.get (Store.find store (Hf_data.Hobject.oid a)) in
      check_bool "object shrank" true
        (Hf_data.Hobject.byte_size slim < Hf_data.Hobject.byte_size before);
      (* display path *)
      check_bool "fetch reads the blob" true
        (Blob_store.fetch bs slim ~key:"Body" = Some big_body);
      check_bool "small blob not externalized" true
        (Blob_store.fetch bs slim ~key:"Abstract" = None);
      (* full restore *)
      let restored = Blob_store.rehydrate bs store in
      check_int "one restored" 1 restored;
      let back = Option.get (Store.find store (Hf_data.Hobject.oid a)) in
      check_bool "object identical after rehydrate" true (Hf_data.Hobject.equal before back);
      Blob_store.close bs)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "hf_persist"
    [
      ( "snapshot",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "preserves serials" `Quick test_preserves_serials;
          Alcotest.test_case "reproducible bytes" `Quick test_reproducible;
          Alcotest.test_case "empty store" `Quick test_empty_store;
          Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "truncation detected" `Quick test_truncation_detected;
          Alcotest.test_case "trailing bytes detected" `Quick test_trailing_bytes_detected;
          Alcotest.test_case "flipped frame byte" `Quick test_flipped_byte_detected;
          Alcotest.test_case "cluster crash recovery" `Quick test_cluster_recovery;
          qtest prop_random_stores_roundtrip;
        ] );
      ( "wal",
        [
          Alcotest.test_case "record round-trip" `Quick test_wal_record_roundtrip;
          Alcotest.test_case "recovery from log only" `Quick test_wal_recovery_from_log_only;
          Alcotest.test_case "checkpoint" `Quick test_wal_checkpoint;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail;
          Alcotest.test_case "corrupt record" `Quick test_wal_corrupt_record;
        ] );
      ( "blob store",
        [
          Alcotest.test_case "put/get" `Quick test_blob_put_get;
          Alcotest.test_case "reopen" `Quick test_blob_reopen;
          Alcotest.test_case "bad handles rejected" `Quick test_blob_bad_handle;
          Alcotest.test_case "externalize/rehydrate" `Quick test_blob_externalize_roundtrip;
        ] );
    ]
