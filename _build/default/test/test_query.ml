(* Tests for the query language: patterns, compilation, parsing,
   printing, validation, builder combinators. *)

module P = Hf_query.Pattern
module F = Hf_query.Filter
module Ast = Hf_query.Ast
module Value = Hf_data.Value

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let no_bindings _ = []

(* --- Pattern --- *)

let test_pattern_any () =
  check_bool "matches string" true (P.matches P.any (Value.str "x") ~lookup:no_bindings);
  check_bool "matches num" true (P.matches P.any (Value.num 1) ~lookup:no_bindings)

let test_pattern_exact () =
  check_bool "hit" true (P.matches (P.exact_str "a") (Value.str "a") ~lookup:no_bindings);
  check_bool "miss" false (P.matches (P.exact_str "a") (Value.str "b") ~lookup:no_bindings);
  check_bool "type miss" false (P.matches (P.exact_num 1) (Value.str "1") ~lookup:no_bindings)

let test_pattern_glob () =
  check_bool "glob hit" true (P.matches (P.glob "dis*") (Value.str "distributed") ~lookup:no_bindings);
  check_bool "glob on number" false (P.matches (P.Glob "1*") (Value.num 10) ~lookup:no_bindings);
  (* literal globs collapse to Exact *)
  check_bool "literal collapses" true (P.glob "plain" = P.exact_str "plain")

let test_pattern_range () =
  let r = P.range 5 10 in
  check_bool "low edge" true (P.matches r (Value.num 5) ~lookup:no_bindings);
  check_bool "high edge" true (P.matches r (Value.num 10) ~lookup:no_bindings);
  check_bool "below" false (P.matches r (Value.num 4) ~lookup:no_bindings);
  check_bool "wrong type" false (P.matches r (Value.str "7") ~lookup:no_bindings);
  Alcotest.check_raises "inverted" (Invalid_argument "Pattern.range: lo > hi") (fun () ->
      ignore (P.range 10 5))

let test_pattern_bind () =
  check_bool "bind matches anything" true (P.matches (P.bind "X") (Value.num 1) ~lookup:no_bindings);
  check_bool "binds reports var" true (P.binds (P.bind "X") = Some "X");
  check_bool "uses reports var" true (P.uses (P.use "X") = Some "X");
  Alcotest.check_raises "empty var" (Invalid_argument "Pattern.bind: empty variable name")
    (fun () -> ignore (P.bind ""))

let test_pattern_use () =
  let lookup var = if var = "X" then [ Value.str "a"; Value.num 2 ] else [] in
  check_bool "member" true (P.matches (P.use "X") (Value.num 2) ~lookup);
  check_bool "non-member" false (P.matches (P.use "X") (Value.num 3) ~lookup);
  check_bool "unbound" false (P.matches (P.use "Y") (Value.num 3) ~lookup)

(* --- Compile / decompile --- *)

let parse = Hf_query.Parser.parse_body

let test_compile_flat () =
  let program = Hf_query.Compile.compile (parse "(Keyword, \"x\", ?)") in
  check_int "one filter" 1 (Hf_query.Program.length program)

let test_compile_iterator_indexes () =
  let program =
    Hf_query.Compile.compile (parse "[ (Pointer, \"Ref\", ?X) ^^X ]^3 (Keyword, \"k\", ?)")
  in
  check_int "four filters" 4 (Hf_query.Program.length program);
  (match Hf_query.Program.get program 2 with
   | F.Iter { body_start; count } ->
     check_int "body start" 0 body_start;
     check_bool "count" true (count = F.Finite 3)
   | _ -> Alcotest.fail "expected iterator at index 2")

let test_compile_nested_blocks () =
  let program =
    Hf_query.Compile.compile
      (parse "[ (A, ?, ?) [ (B, ?, ?) ]^2 (C, ?, ?) ]* (D, ?, ?)")
  in
  check_int "six filters" 6 (Hf_query.Program.length program);
  (match Hf_query.Program.get program 2 with
   | F.Iter { body_start = 1; count = F.Finite 2 } -> ()
   | f -> Alcotest.failf "inner iterator wrong: %a" F.pp f);
  match Hf_query.Program.get program 4 with
  | F.Iter { body_start = 0; count = F.Star } -> ()
  | f -> Alcotest.failf "outer iterator wrong: %a" F.pp f

let test_compile_empty_block () =
  Alcotest.check_raises "empty block" (Hf_query.Compile.Error "empty iteration block")
    (fun () -> ignore (Hf_query.Compile.compile [ Ast.repeat 2 [] ]))

let test_decompile_roundtrip () =
  let ast = parse "[ (Pointer, \"Ref\", ?X) ^^X [ (B, ?, ?) ]^2 ]* (Keyword, \"k\", ->out)" in
  let back = Hf_query.Compile.decompile (Hf_query.Compile.compile ast) in
  check_bool "ast preserved" true (Ast.equal ast back)

(* --- Unroll --- *)

let test_unroll_flat_unchanged () =
  let ast = parse "(A, ?, ?) ^X" in
  check_bool "unchanged" true (Ast.equal ast (Ast.unroll ast))

let test_unroll_finite () =
  let ast = parse "[ (A, ?, ?) ]^3" in
  let expected = parse "(A, ?, ?) (A, ?, ?) (A, ?, ?)" in
  check_bool "unrolled" true (Ast.equal expected (Ast.unroll ast))

let test_unroll_nested () =
  let ast = parse "[ (A, ?, ?) [ (B, ?, ?) ]^2 ]^2" in
  let expected = parse "(A, ?, ?) (B, ?, ?) (B, ?, ?) (A, ?, ?) (B, ?, ?) (B, ?, ?)" in
  check_bool "nested unroll" true (Ast.equal expected (Ast.unroll ast))

let test_unroll_star_kept () =
  let ast = parse "[ (A, ?, ?) [ (B, ?, ?) ]^2 ]*" in
  let expected = parse "[ (A, ?, ?) (B, ?, ?) (B, ?, ?) ]*" in
  check_bool "star body unrolled, star kept" true (Ast.equal expected (Ast.unroll ast))

let test_depth_and_variables () =
  let ast = parse "[ (Pointer, \"R\", ?X) ^X [ (Pointer, \"S\", ?Y) ^Y ]^2 ]*" in
  check_int "depth" 2 (Ast.depth ast);
  Alcotest.(check (list string)) "variables" [ "X"; "Y" ] (Ast.variables ast)

(* --- Parser --- *)

let test_parse_full_query () =
  let q = Hf_query.Parser.parse_query "S (Keyword, \"x\", ?) -> T" in
  check_bool "source" true (q.Hf_query.Parser.source = Some "S");
  check_bool "target" true (q.Hf_query.Parser.target = Some "T");
  check_int "body" 1 (List.length q.Hf_query.Parser.body)

let test_parse_paper_query () =
  (* the paper's flagship query, ASCII-fied *)
  let q =
    Hf_query.Parser.parse_query
      "S [ (Pointer, \"Reference\", ?X) ^^X ]^3 (Keyword, \"Distributed\", ?) -> T"
  in
  check_int "two elements" 2 (List.length q.Hf_query.Parser.body)

let test_parse_retrieve () =
  match parse "(String, \"Title\", ->title)" with
  | [ Ast.Retrieve { target = "title"; _ } ] -> ()
  | _ -> Alcotest.fail "expected retrieve element"

let test_parse_patterns () =
  match parse "(?, ?X, 1..10) (Number, \"n\", 5) (T, =X, ?)" with
  | [ Ast.Select { ttype = P.Any; key = P.Bind "X"; data = P.Range (1, 10) };
      Ast.Select { data = P.Exact (Value.Num 5); _ };
      Ast.Select { key = P.Use "X"; _ }
    ] -> ()
  | _ -> Alcotest.fail "pattern forms"

let test_parse_bare_idents () =
  (* bare identifiers are exact strings, as in (Pointer, Reference, ?X) *)
  match parse "(Pointer, Reference, ?X)" with
  | [ Ast.Select { ttype = P.Exact (Value.Str "Pointer"); key = P.Exact (Value.Str "Reference"); _ } ]
    -> ()
  | _ -> Alcotest.fail "bare identifiers"

let test_parse_deref_modes () =
  match parse "^X ^^Y" with
  | [ Ast.Deref { var = "X"; mode = F.Replace }; Ast.Deref { var = "Y"; mode = F.Keep_parent } ]
    -> ()
  | _ -> Alcotest.fail "deref modes"

let test_parse_comments_and_whitespace () =
  let ast = parse "; a comment line\n  (Keyword, \"x\", ?)  ; trailing\n" in
  check_int "one element" 1 (List.length ast)

let test_parse_glob_strings () =
  match parse "(Keyword, \"dist*\", ?)" with
  | [ Ast.Select { key = P.Glob "dist*"; _ } ] -> ()
  | _ -> Alcotest.fail "glob detection"

let test_parse_string_escapes () =
  match parse "(String, \"a\\\"b\\\\c\\nd\", ?)" with
  | [ Ast.Select { key = P.Exact (Value.Str "a\"b\\c\nd"); _ } ] -> ()
  | _ -> Alcotest.fail "escapes"

let parse_error_case name text check_message =
  Alcotest.test_case name `Quick (fun () ->
      match parse text with
      | _ -> Alcotest.fail "expected parse error"
      | exception Hf_query.Parser.Parse_error { message; _ } ->
        check_bool (Printf.sprintf "message %S mentions" message) true (check_message message))

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_parse_errors =
  [
    parse_error_case "unterminated string" "(A, \"oops, ?)" (contains ~sub:"unterminated");
    parse_error_case "bad iteration count" "[ (A, ?, ?) ]^0" (contains ~sub:">= 1");
    parse_error_case "missing count" "[ (A, ?, ?) ]" (contains ~sub:"'*' or '^k'");
    parse_error_case "trailing garbage" "(A, ?, ?) )" (contains ~sub:"trailing");
    parse_error_case "lone dash" "(A, -, ?)" (contains ~sub:"expected '>'");
    parse_error_case "empty range" "(A, 5..2, ?)" (contains ~sub:"empty");
    parse_error_case "unclosed paren" "(A, ?, ?" (contains ~sub:"expected");
  ]

let test_parse_error_position () =
  match parse "(A, ?, ?)\n  @" with
  | _ -> Alcotest.fail "expected error"
  | exception Hf_query.Parser.Parse_error { pos; _ } ->
    check_int "line" 2 pos.Hf_query.Parser.line;
    check_int "col" 3 pos.Hf_query.Parser.col

(* Fuzz: arbitrary input never crashes the parser — it either parses or
   raises Parse_error with a position. *)
let prop_parser_total =
  QCheck2.Test.make ~name:"parser is total (parse or Parse_error)" ~count:500
    QCheck2.Gen.(string_size ~gen:(char_range '\x20' '\x7e') (int_range 0 60))
    (fun input ->
      match Hf_query.Parser.parse_query input with
      | _ -> true
      | exception Hf_query.Parser.Parse_error { pos; _ } -> pos.line >= 1 && pos.col >= 1)

let test_parse_body_rejects_source () =
  match Hf_query.Parser.parse_body "S (A, ?, ?)" with
  | _ -> Alcotest.fail "expected rejection"
  | exception Hf_query.Parser.Parse_error _ -> ()

(* --- Printer round-trip --- *)

let test_printer_roundtrip_examples () =
  let cases =
    [
      "(Keyword, \"x\", ?)";
      "[ (Pointer, \"Ref\", ?X) ^^X ]* (Keyword, \"Distributed\", ?)";
      "[ (Pointer, \"Ref\", ?X) ^X ]^3";
      "(String, \"Title\", ->title)";
      "(?, ?X, 1..10) (T, =X, ?)";
      "[ (A, ?, ?) [ (B, ?, ?) ]^2 ]*";
    ]
  in
  List.iter
    (fun text ->
      let ast = parse text in
      let printed = Hf_query.Printer.to_string ast in
      let reparsed = parse printed in
      check_bool (Printf.sprintf "roundtrip %s" text) true (Ast.equal ast reparsed))
    cases

(* Random AST generator for the printer/compile round-trip properties. *)
let gen_var = QCheck2.Gen.oneofl [ "X"; "Y"; "Z" ]

let gen_name = QCheck2.Gen.oneofl [ "Keyword"; "Pointer"; "String"; "Number"; "Tag" ]

let gen_pattern =
  QCheck2.Gen.(
    oneof
      [
        return P.Any;
        map (fun s -> P.exact_str s) gen_name;
        map (fun n -> P.exact_num n) (int_range 0 99);
        map (fun v -> P.Bind v) gen_var;
        map (fun v -> P.Use v) gen_var;
        map (fun (a, b) -> P.Range (min a b, max a b)) (pair (int_range 0 50) (int_range 0 50));
        map (fun s -> P.Glob (s ^ "*")) gen_name;
      ])

let gen_element =
  QCheck2.Gen.(
    sized_size (int_range 0 2) @@ fix (fun self depth ->
        let leaf =
          oneof
            [
              map3 (fun t k d -> Ast.Select { ttype = t; key = k; data = d }) gen_pattern
                gen_pattern gen_pattern;
              map2
                (fun var keep ->
                  Ast.Deref { var; mode = (if keep then F.Keep_parent else F.Replace) })
                gen_var bool;
              map2 (fun k target -> Ast.Retrieve { ttype = P.Any; key = P.exact_str k; target })
                gen_name gen_var;
            ]
        in
        if depth = 0 then leaf
        else
          frequency
            [
              (3, leaf);
              ( 1,
                map2
                  (fun body star ->
                    Ast.Block
                      { body; count = (if star then F.Star else F.Finite 2) })
                  (list_size (int_range 1 3) (self (depth - 1)))
                  bool );
            ]))

let gen_ast = QCheck2.Gen.(list_size (int_range 0 5) gen_element)

let prop_printer_roundtrip =
  QCheck2.Test.make ~name:"printer/parser round-trip" ~count:300 gen_ast (fun ast ->
      Ast.equal ast (parse (Hf_query.Printer.to_string ast)))

let prop_compile_decompile =
  QCheck2.Test.make ~name:"compile/decompile round-trip" ~count:300 gen_ast (fun ast ->
      Ast.equal ast (Hf_query.Compile.decompile (Hf_query.Compile.compile ast)))

let prop_unroll_idempotent_on_flat =
  QCheck2.Test.make ~name:"unroll removes all finite blocks" ~count:300 gen_ast (fun ast ->
      let rec no_finite = function
        | Ast.Block { count = F.Finite _; _ } -> false
        | Ast.Block { body; _ } -> List.for_all no_finite body
        | Ast.Select _ | Ast.Deref _ | Ast.Retrieve _ -> true
      in
      List.for_all no_finite (Ast.unroll ast))

(* --- Validate --- *)

let errors_of text = Hf_query.Validate.errors (parse text)

let test_validate_ok () =
  check_bool "valid" true (Hf_query.Validate.is_valid (parse "[ (Pointer, \"R\", ?X) ^^X ]*"))

let test_validate_unbound_deref () =
  check_int "error" 1 (List.length (errors_of "^X"))

let test_validate_bound_later_in_block () =
  (* inside an iteration a later bind is reachable on the next round *)
  check_bool "no errors" true (Hf_query.Validate.is_valid (parse "[ ^^X (Pointer, \"R\", ?X) ]*"))

let test_validate_use_before_bind_warns () =
  let issues = Hf_query.Validate.check (parse "(T, =X, ?) (Pointer, \"R\", ?X)") in
  check_bool "warning present" true
    (List.exists (fun i -> i.Hf_query.Validate.severity = Hf_query.Validate.Warning) issues)

let test_validate_duplicate_targets_warn () =
  let issues = Hf_query.Validate.check (parse "(A, \"k\", ->out) (B, \"k2\", ->out)") in
  check_bool "warn on duplicate target" true
    (List.exists (fun i -> i.Hf_query.Validate.severity = Hf_query.Validate.Warning) issues)

(* --- Builder --- *)

let test_builder_matches_parser () =
  let built =
    Hf_query.Builder.(
      body [ closure [ pointers ~key:"Reference" "X"; follow_keeping "X" ]; keyword "Distributed" ])
  in
  let parsed = parse "[ (Pointer, \"Reference\", ?X) ^^X ]* (Keyword, \"Distributed\", ?)" in
  check_bool "builder = parser" true (Ast.equal built parsed)

let test_builder_reachability () =
  let built = Hf_query.Builder.(reachability ~key:"Ref" (keyword "k")) in
  let parsed = parse "[ (Pointer, \"Ref\", ?X) ^^X ]* (Keyword, \"k\", ?)" in
  check_bool "reachability shape" true (Ast.equal built parsed);
  let depth2 = Hf_query.Builder.(reachability ~depth:2 ~key:"Ref" (keyword "k")) in
  let parsed2 = parse "[ (Pointer, \"Ref\", ?X) ^^X ]^2 (Keyword, \"k\", ?)" in
  check_bool "depth" true (Ast.equal depth2 parsed2);
  Alcotest.check_raises "bad depth" (Invalid_argument "Builder.reachability: depth 0 < 1")
    (fun () -> ignore Hf_query.Builder.(reachability ~depth:0 ~key:"Ref" (keyword "k")))

let test_program_byte_size () =
  let program = Hf_query.Parser.parse_program "[ (Pointer, \"Reference\", ?X) ^^X ]* (Keyword, \"Distributed\", ?)" in
  let size = Hf_query.Program.byte_size program in
  (* The paper reports ~40-byte query messages; our estimate should be
     in that regime for the flagship query. *)
  check_bool "tens of bytes" true (size > 20 && size < 100)

let test_program_ill_formed () =
  Alcotest.check_raises "bad iterator"
    (Hf_query.Program.Ill_formed "iterator at 0 has body_start 3 beyond itself") (fun () ->
      ignore (Hf_query.Program.of_filters [ F.iter ~body_start:3 ~count:F.Star ]))

(* --- Optimize --- *)

let simplifies_to input expected () =
  let got = Hf_query.Optimize.simplify (parse input) in
  check_bool
    (Printf.sprintf "%s simplifies to %s (got %s)" input expected
       (Hf_query.Printer.to_string got))
    true
    (Ast.equal got (parse expected))

let test_optimize_dedup = simplifies_to "(A, ?, ?) (A, ?, ?) (B, ?, ?)" "(A, ?, ?) (B, ?, ?)"

let test_optimize_pure_block =
  simplifies_to "[ (A, ?, ?) (B, ?, ?) ]* (C, ?, ?)" "(A, ?, ?) (B, ?, ?) (C, ?, ?)"

let test_optimize_single_keep_block =
  simplifies_to "[ (Pointer, \"R\", ?X) ^^X ]^1 (C, ?, ?)" "(Pointer, \"R\", ?X) ^^X (C, ?, ?)"

let test_optimize_keeps_real_iteration () =
  let ast = parse "[ (Pointer, \"R\", ?X) ^^X ]* (C, ?, ?)" in
  check_bool "closure untouched" true (Ast.equal ast (Hf_query.Optimize.simplify ast))

let test_optimize_keeps_replace_single () =
  let ast = parse "[ (Pointer, \"R\", ?X) ^X ]^1 (C, ?, ?)" in
  check_bool "replace-mode single block kept (conservative)" true
    (Ast.equal ast (Hf_query.Optimize.simplify ast))

let test_optimize_keeps_retrieve_duplicates () =
  let ast = parse "(A, \"k\", ->out) (A, \"k\", ->out)" in
  check_bool "retrieves not deduped" true (Ast.equal ast (Hf_query.Optimize.simplify ast))

let test_optimize_nested_fixpoint =
  (* the pure inner block dissolves, making the outer body pure too when
     it has no dereference *)
  simplifies_to "[ [ (A, ?, ?) ]^3 (B, ?, ?) ]^2" "(A, ?, ?) (B, ?, ?)"

(* Equivalence property: simplified queries produce the same result set
   and the same retrieved values on random stores. *)
let prop_optimize_equivalent =
  QCheck2.Test.make ~name:"simplify preserves evaluation" ~count:200
    QCheck2.Gen.(pair gen_ast int)
    (fun (ast, seed) ->
      let prng = Hf_util.Prng.create seed in
      let store = Hf_data.Store.create ~site:0 in
      let n = 2 + Hf_util.Prng.next_int prng 10 in
      let oids = Array.init n (fun _ -> Hf_data.Store.fresh_oid store) in
      Array.iteri
        (fun i oid ->
          let tuples =
            [ Hf_data.Tuple.number ~key:"id" i;
              Hf_data.Tuple.keyword (if Hf_util.Prng.next_bool prng 0.5 then "Keyword" else "Tag");
              Hf_data.Tuple.pointer ~key:"Pointer"
                oids.(Hf_util.Prng.next_int prng n);
            ]
          in
          Hf_data.Store.insert store (Hf_data.Hobject.of_tuples oid tuples))
        oids;
      let run ast =
        let r =
          Hf_engine.Local.run_store ~store (Hf_query.Compile.compile ast) [ oids.(0) ]
        in
        ( r.Hf_engine.Local.result_set,
          List.map
            (fun (t, vs) -> (t, List.sort Hf_data.Value.compare vs))
            r.Hf_engine.Local.bindings )
      in
      let original = run ast in
      let simplified = run (Hf_query.Optimize.simplify ast) in
      Hf_data.Oid.Set.equal (fst original) (fst simplified)
      && snd original = snd simplified)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "hf_query"
    [
      ( "pattern",
        [
          Alcotest.test_case "any" `Quick test_pattern_any;
          Alcotest.test_case "exact" `Quick test_pattern_exact;
          Alcotest.test_case "glob" `Quick test_pattern_glob;
          Alcotest.test_case "range" `Quick test_pattern_range;
          Alcotest.test_case "bind" `Quick test_pattern_bind;
          Alcotest.test_case "use" `Quick test_pattern_use;
        ] );
      ( "compile",
        [
          Alcotest.test_case "flat" `Quick test_compile_flat;
          Alcotest.test_case "iterator indexes" `Quick test_compile_iterator_indexes;
          Alcotest.test_case "nested blocks" `Quick test_compile_nested_blocks;
          Alcotest.test_case "empty block rejected" `Quick test_compile_empty_block;
          Alcotest.test_case "decompile round-trip" `Quick test_decompile_roundtrip;
          qtest prop_compile_decompile;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "flat unchanged" `Quick test_unroll_flat_unchanged;
          Alcotest.test_case "finite" `Quick test_unroll_finite;
          Alcotest.test_case "nested" `Quick test_unroll_nested;
          Alcotest.test_case "star kept" `Quick test_unroll_star_kept;
          Alcotest.test_case "depth and variables" `Quick test_depth_and_variables;
          qtest prop_unroll_idempotent_on_flat;
        ] );
      ( "parser",
        [
          Alcotest.test_case "full query" `Quick test_parse_full_query;
          Alcotest.test_case "paper query" `Quick test_parse_paper_query;
          Alcotest.test_case "retrieve" `Quick test_parse_retrieve;
          Alcotest.test_case "pattern forms" `Quick test_parse_patterns;
          Alcotest.test_case "bare identifiers" `Quick test_parse_bare_idents;
          Alcotest.test_case "deref modes" `Quick test_parse_deref_modes;
          Alcotest.test_case "comments and whitespace" `Quick test_parse_comments_and_whitespace;
          Alcotest.test_case "glob strings" `Quick test_parse_glob_strings;
          Alcotest.test_case "string escapes" `Quick test_parse_string_escapes;
          Alcotest.test_case "error positions" `Quick test_parse_error_position;
          Alcotest.test_case "parse_body rejects source" `Quick test_parse_body_rejects_source;
          qtest prop_parser_total;
        ]
        @ test_parse_errors );
      ( "printer",
        [
          Alcotest.test_case "examples round-trip" `Quick test_printer_roundtrip_examples;
          qtest prop_printer_roundtrip;
        ] );
      ( "validate",
        [
          Alcotest.test_case "valid query" `Quick test_validate_ok;
          Alcotest.test_case "unbound deref" `Quick test_validate_unbound_deref;
          Alcotest.test_case "bind later in block ok" `Quick test_validate_bound_later_in_block;
          Alcotest.test_case "use before bind warns" `Quick test_validate_use_before_bind_warns;
          Alcotest.test_case "duplicate targets warn" `Quick test_validate_duplicate_targets_warn;
        ] );
      ( "builder",
        [
          Alcotest.test_case "matches parser" `Quick test_builder_matches_parser;
          Alcotest.test_case "reachability" `Quick test_builder_reachability;
        ] );
      ( "program",
        [
          Alcotest.test_case "byte size regime" `Quick test_program_byte_size;
          Alcotest.test_case "ill-formed rejected" `Quick test_program_ill_formed;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "dedup selections" `Quick test_optimize_dedup;
          Alcotest.test_case "unwrap pure blocks" `Quick test_optimize_pure_block;
          Alcotest.test_case "unwrap single keep-parent block" `Quick
            test_optimize_single_keep_block;
          Alcotest.test_case "keeps real iteration" `Quick test_optimize_keeps_real_iteration;
          Alcotest.test_case "keeps replace-mode single block" `Quick
            test_optimize_keeps_replace_single;
          Alcotest.test_case "keeps retrieve duplicates" `Quick
            test_optimize_keeps_retrieve_duplicates;
          Alcotest.test_case "nested fixpoint" `Quick test_optimize_nested_fixpoint;
          qtest prop_optimize_equivalent;
        ] );
    ]
