(* Tests for the embedded client facade and the script runner. *)

module E = Hf_client.Embedded
module Script = Hf_client.Script
module Tuple = Hf_data.Tuple

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A small software repository on 2 sites, as in the paper's Section 2
   example: modules with authors, called routines and a library. *)
let make_server () =
  let server = E.create ~n_sites:2 () in
  let main_ =
    E.create_object server ~site:0
      [ Tuple.string_ ~key:"Title" "Main Program for Sort routine";
        Tuple.string_ ~key:"Author" "Joe Programmer";
      ]
  in
  let qsort =
    E.create_object server ~site:1
      [ Tuple.string_ ~key:"Title" "Quicksort"; Tuple.string_ ~key:"Author" "Joe Programmer" ]
  in
  let io =
    E.create_object server ~site:1
      [ Tuple.string_ ~key:"Title" "IO helpers"; Tuple.string_ ~key:"Author" "Ann Author" ]
  in
  let lib =
    E.create_object server ~site:0
      [ Tuple.string_ ~key:"Title" "libc"; Tuple.string_ ~key:"Author" "Vendor" ]
  in
  (* link main -> qsort, io (called); main -> lib (library) *)
  let store0 = E.store server 0 in
  let obj = Option.get (Hf_data.Store.find store0 main_) in
  let obj =
    List.fold_left Hf_data.Hobject.add obj
      [ Tuple.pointer ~key:"Called Routine" qsort;
        Tuple.pointer ~key:"Called Routine" io;
        Tuple.pointer ~key:"Library" lib;
      ]
  in
  Hf_data.Store.replace store0 obj;
  E.define_set server "S" [ main_ ];
  (server, main_, qsort, io, lib)

let test_paper_section2_query () =
  (* "the set of objects called by routines in S, written by Joe
     Programmer" — the paper's worked query. *)
  let server, main_, qsort, _, _ = make_server () in
  let r =
    E.query server "S (Pointer, \"Called Routine\", ?X) ^^X (String, \"Author\", \"Joe Programmer\") -> T"
  in
  check_int "two results" 2 (List.length r.E.oids);
  check_bool "main and qsort" true
    (List.exists (Hf_data.Oid.equal main_) r.E.oids
    && List.exists (Hf_data.Oid.equal qsort) r.E.oids);
  (* result set is now usable as a starting set *)
  check_bool "T defined" true (E.find_set server "T" = Some r.E.oids)

let test_retrieve_into_variables () =
  let server, _, _, _, _ = make_server () in
  let r = E.query server "S (String, \"Author\", \"Joe Programmer\") (String, \"Title\", ->title)" in
  match r.E.values with
  | [ ("title", [ v ]) ] ->
    check_bool "title value" true
      (Hf_data.Value.equal v (Hf_data.Value.str "Main Program for Sort routine"))
  | _ -> Alcotest.fail "expected one title"

let test_wildcard_pointer_key () =
  (* "?" in place of the key follows all pointers, including Library. *)
  let server, _, _, _, lib = make_server () in
  let r = E.query server "S (Pointer, ?, ?X) ^X (String, \"Author\", ?)" in
  check_int "three targets" 3 (List.length r.E.oids);
  check_bool "library included" true (List.exists (Hf_data.Oid.equal lib) r.E.oids)

let test_unknown_set_rejected () =
  let server, _, _, _, _ = make_server () in
  match E.query server "NOSUCH (?, ?, ?)" with
  | _ -> Alcotest.fail "expected rejection"
  | exception E.Invalid_query message ->
    check_bool "mentions set" true (String.length message > 0)

let test_parse_error_rejected () =
  let server, _, _, _, _ = make_server () in
  match E.query server "S (unclosed" with
  | _ -> Alcotest.fail "expected rejection"
  | exception E.Invalid_query _ -> ()

let test_validation_rejected () =
  let server, _, _, _, _ = make_server () in
  match E.query server "S ^NEVERBOUND" with
  | _ -> Alcotest.fail "expected rejection"
  | exception E.Invalid_query message ->
    check_bool "mentions variable" true (String.length message > 0)

let test_query_ast_interface () =
  let server, _, _, _, _ = make_server () in
  let body =
    Hf_query.Builder.(
      body [ pointers ~key:"Called Routine" "X"; follow_keeping "X"; select () ])
  in
  let r = E.query_ast server ~source:"S" ~target:"U" body in
  check_bool "U bound" true (E.find_set server "U" = Some r.E.oids)

let test_set_roundtrip_through_queries () =
  let server, _, _, _, _ = make_server () in
  let r1 = E.query server "S (Pointer, \"Called Routine\", ?X) ^X (?, ?, ?) -> Called" in
  check_int "called set" 2 (List.length r1.E.oids);
  let r2 = E.query server "Called (String, \"Author\", \"Joe Programmer\")" in
  check_int "filtered further" 1 (List.length r2.E.oids)

let test_set_algebra () =
  let server, _, _, _, _ = make_server () in
  let _ = E.query server "S (Pointer, \"Called Routine\", ?X) ^^X (?, ?, ?) -> Reach" in
  let _ = E.query server "S (Pointer, \"Library\", ?X) ^X (?, ?, ?) -> Libs" in
  let union = E.define_union server "All" "Reach" "Libs" in
  check_int "union" 4 (List.length union);
  let inter = E.define_inter server "Both" "Reach" "Libs" in
  check_int "disjoint intersection" 0 (List.length inter);
  let diff = E.define_diff server "JustReach" "All" "Libs" in
  check_int "difference" 3 (List.length diff);
  (* the combined set is usable as a query source *)
  let r = E.query server "All (String, \"Author\", \"Joe Programmer\")" in
  check_int "queryable" 2 (List.length r.E.oids);
  (* unknown operand rejected *)
  (match E.define_union server "X" "All" "NOPE" with
   | _ -> Alcotest.fail "expected rejection"
   | exception E.Invalid_query _ -> ());
  (* a named set can be materialized as a server-side set object *)
  let set_oid = E.store_set server ~site:0 "All" in
  let obj = Option.get (Hf_data.Store.find (E.store server 0) set_oid) in
  check_int "pointer tuples" 4 (List.length (Hf_data.Hobject.pointers obj))

let test_script_runner () =
  let server, _, _, _, _ = make_server () in
  let script =
    "; find Joe's routines\n\
     S (Pointer, \"Called Routine\", ?X) ^^X (String, \"Author\", \"Joe Programmer\") -> T\n\
     \n\
     T (String, \"Title\", ->titles)\n\
     BROKEN (?, ?, ?)\n"
  in
  let report = Script.run server script in
  check_int "three queries" 3 report.Script.queries_run;
  check_int "one failure" 1 report.Script.failures;
  check_bool "virtual time accumulated" true (report.Script.total_response_time > 0.0);
  match (List.nth report.Script.entries 1).Script.result with
  | Ok r -> check_int "two titles" 2 (List.length (List.assoc "titles" r.E.values))
  | Error e -> Alcotest.failf "unexpected failure: %s" e

let test_default_origin () =
  let server, _, _, _, _ = make_server () in
  E.set_default_origin server 1;
  let r = E.query server "S (?, ?, ?)" in
  check_int "runs from site 1" 1 (List.length r.E.oids)

let () =
  Alcotest.run "hf_client"
    [
      ( "embedded",
        [
          Alcotest.test_case "paper section-2 query" `Quick test_paper_section2_query;
          Alcotest.test_case "retrieve into variables" `Quick test_retrieve_into_variables;
          Alcotest.test_case "wildcard pointer key" `Quick test_wildcard_pointer_key;
          Alcotest.test_case "unknown set rejected" `Quick test_unknown_set_rejected;
          Alcotest.test_case "parse error rejected" `Quick test_parse_error_rejected;
          Alcotest.test_case "validation rejected" `Quick test_validation_rejected;
          Alcotest.test_case "AST interface" `Quick test_query_ast_interface;
          Alcotest.test_case "sets round-trip" `Quick test_set_roundtrip_through_queries;
          Alcotest.test_case "set algebra" `Quick test_set_algebra;
          Alcotest.test_case "default origin" `Quick test_default_origin;
        ] );
      ( "script",
        [ Alcotest.test_case "script runner" `Quick test_script_runner ] );
    ]
