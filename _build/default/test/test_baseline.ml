(* Tests for the ship-data file-server baseline: correctness of the
   traversal, cost accounting, the query-shipping comparison the paper
   makes in the Section 5 preamble. *)

module Oid = Hf_data.Oid
module Tuple = Hf_data.Tuple
module Store = Hf_data.Store
module FS = Hf_baseline.File_server

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Two-site dataset: ring of [n] objects alternating sites, keyword on
   multiples of 3, a body blob to make objects heavy. *)
let make_ring n =
  let stores = Array.init 2 (fun site -> Store.create ~site) in
  let oids = Array.init n (fun i -> Store.fresh_oid stores.(i mod 2)) in
  Array.iteri
    (fun i oid ->
      let tuples =
        [ Tuple.pointer ~key:"R" oids.((i + 1) mod n);
          Tuple.text ~key:"Body" (String.make 512 'b');
        ]
        @ (if i mod 3 = 0 then [ Tuple.keyword "hot" ] else [])
      in
      Store.insert stores.(i mod 2) (Hf_data.Hobject.of_tuples oid tuples))
    oids;
  let find oid = Store.find stores.(Oid.birth_site oid) oid in
  (oids, find)

let matches obj = List.mem "hot" (Hf_data.Hobject.keywords obj)

let run ?config ~n () =
  let oids, find = make_ring n in
  ( oids,
    FS.run_closure ?config ~origin:0 ~locate:Oid.birth_site ~find ~pointer_key:"R" ~matches
      [ oids.(0) ] )

let test_traversal_correct () =
  let _, outcome = run ~n:12 () in
  check_int "visits all" 12 outcome.FS.objects_visited;
  check_int "results" 4 (List.length outcome.FS.results);
  check_int "remote fetches: objects on site 1" 6 outcome.FS.objects_fetched;
  check_int "two messages per fetch" 12 outcome.FS.messages

let test_local_objects_free () =
  (* Everything on the client's site: no messages at all. *)
  let store = Store.create ~site:0 in
  let oids = Array.init 5 (fun _ -> Store.fresh_oid store) in
  Array.iteri
    (fun i oid ->
      Store.insert store
        (Hf_data.Hobject.of_tuples oid
           [ Tuple.pointer ~key:"R" oids.((i + 1) mod 5); Tuple.keyword "hot" ]))
    oids;
  let outcome =
    FS.run_closure ~origin:0 ~locate:Oid.birth_site ~find:(Store.find store) ~pointer_key:"R"
      ~matches [ oids.(0) ]
  in
  check_int "no messages" 0 outcome.FS.messages;
  check_int "no bytes" 0 outcome.FS.bytes;
  check_int "all results" 5 (List.length outcome.FS.results)

let test_bytes_dominated_by_bodies () =
  let _, outcome = run ~n:12 () in
  (* 6 remote objects, each > 512-byte body *)
  check_bool "bytes exceed bodies" true (outcome.FS.bytes > 6 * 512)

let test_pipelining_helps () =
  let _, sequential = run ~config:{ FS.default_config with FS.window = 1 } ~n:12 () in
  let _, pipelined = run ~config:{ FS.default_config with FS.window = 8 } ~n:12 () in
  check_bool "same answers" true
    (Oid.Set.equal sequential.FS.result_set pipelined.FS.result_set);
  (* a ring forces serial discovery, so pipelining cannot hurt and the
     times stay comparable; on the star below it truly helps *)
  check_bool "pipelined not slower" true
    (pipelined.FS.response_time <= sequential.FS.response_time +. 1e-9)

let test_pipelining_on_star () =
  (* hub pointing at many remote leaves: window >> 1 overlaps fetches *)
  let stores = Array.init 2 (fun site -> Store.create ~site) in
  let hub = Store.fresh_oid stores.(0) in
  let leaves = Array.init 16 (fun _ -> Store.fresh_oid stores.(1)) in
  Store.insert stores.(0)
    (Hf_data.Hobject.of_tuples hub
       (Tuple.keyword "hot" :: List.map (fun l -> Tuple.pointer ~key:"R" l) (Array.to_list leaves)));
  Array.iter
    (fun l ->
      Store.insert stores.(1)
        (Hf_data.Hobject.of_tuples l [ Tuple.keyword "hot"; Tuple.text ~key:"Body" (String.make 256 'x') ]))
    leaves;
  let find oid = Store.find stores.(Oid.birth_site oid) oid in
  let run window =
    FS.run_closure
      ~config:{ FS.default_config with FS.window }
      ~origin:0 ~locate:Oid.birth_site ~find ~pointer_key:"R" ~matches [ hub ]
  in
  let seq = run 1 and par = run 16 in
  check_bool "same results" true (Oid.Set.equal seq.FS.result_set par.FS.result_set);
  check_bool "pipelining speeds up the star" true
    (par.FS.response_time < seq.FS.response_time /. 2.0)

let test_dangling_pointer_skipped () =
  let store = Store.create ~site:0 in
  let a = Store.fresh_oid store in
  Store.insert store
    (Hf_data.Hobject.of_tuples a
       [ Tuple.pointer ~key:"R" (Oid.make ~birth_site:1 ~serial:99); Tuple.keyword "hot" ]);
  let outcome =
    FS.run_closure ~origin:0 ~locate:Oid.birth_site ~find:(Store.find store) ~pointer_key:"R"
      ~matches [ a ]
  in
  check_int "one result" 1 (List.length outcome.FS.results)

let test_window_validation () =
  Alcotest.check_raises "bad window"
    (Invalid_argument "File_server.run_closure: window must be >= 1") (fun () ->
      let _, _ = run ~config:{ FS.default_config with FS.window = 0 } ~n:4 () in
      ())

let test_query_shipping_moves_fewer_bytes () =
  (* The paper's core argument: ~40-byte query messages versus whole
     objects.  Same ring, same traversal, compare bytes moved. *)
  let n = 12 in
  let _, baseline = run ~n () in
  let module C = Hf_server.Instances.Weighted in
  let cluster = C.create ~n_sites:2 () in
  let oids = Array.init n (fun i -> Store.fresh_oid (C.store cluster (i mod 2))) in
  Array.iteri
    (fun i oid ->
      let tuples =
        [ Tuple.pointer ~key:"R" oids.((i + 1) mod n);
          Tuple.text ~key:"Body" (String.make 512 'b');
        ]
        @ (if i mod 3 = 0 then [ Tuple.keyword "hot" ] else [])
      in
      Store.insert (C.store cluster (i mod 2)) (Hf_data.Hobject.of_tuples oid tuples))
    oids;
  let program =
    Hf_query.Parser.parse_program "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)"
  in
  let shipped = C.run_query cluster ~origin:0 program [ oids.(0) ] in
  check_bool "same result count" true
    (List.length shipped.Hf_server.Cluster.results = List.length baseline.FS.results);
  let shipped_bytes = Hf_server.Metrics.total_bytes shipped.Hf_server.Cluster.metrics in
  check_bool
    (Printf.sprintf "query shipping %dB << baseline %dB" shipped_bytes baseline.FS.bytes)
    true
    (shipped_bytes * 2 < baseline.FS.bytes)

let () =
  Alcotest.run "hf_baseline"
    [
      ( "file server",
        [
          Alcotest.test_case "traversal correct" `Quick test_traversal_correct;
          Alcotest.test_case "local objects free" `Quick test_local_objects_free;
          Alcotest.test_case "bytes dominated by bodies" `Quick test_bytes_dominated_by_bodies;
          Alcotest.test_case "pipelining sane on ring" `Quick test_pipelining_helps;
          Alcotest.test_case "pipelining helps on star" `Quick test_pipelining_on_star;
          Alcotest.test_case "dangling pointers skipped" `Quick test_dangling_pointer_skipped;
          Alcotest.test_case "window validated" `Quick test_window_validation;
        ] );
      ( "versus query shipping",
        [
          Alcotest.test_case "baseline moves far more bytes" `Quick
            test_query_shipping_moves_fewer_bytes;
        ] );
    ]
