(* Tests for the synthetic workload generator: the Section 5 dataset
   invariants — search-key spaces, chain always remote, locality classes
   near their nominal probabilities, closure coverage via the backbone
   cycles, and graph identity across machine counts. *)

module Syn = Hf_workload.Synthetic
module Store = Hf_data.Store
module Oid = Hf_data.Oid

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_params = { Syn.default_params with Syn.n_objects = 90; blob_bytes = 64 }

let dataset = lazy (Syn.generate ~params:small_params ())

let test_object_count () =
  let ds = Lazy.force dataset in
  check_int "n_objects" 90 (Syn.n_objects ds)

let test_chain_structure () =
  let ds = Lazy.force dataset in
  for i = 0 to Syn.n_objects ds - 2 do
    Alcotest.(check (list int))
      (Printf.sprintf "chain %d" i)
      [ i + 1 ]
      (Syn.logical_pointers ds i ~key:Syn.chain_key)
  done;
  (* terminator self-pointer on the last object *)
  Alcotest.(check (list int)) "chain end" [ 89 ]
    (Syn.logical_pointers ds 89 ~key:Syn.chain_key)

let test_chain_always_crosses_groups () =
  let ds = Lazy.force dataset in
  for i = 0 to Syn.n_objects ds - 2 do
    check_bool "consecutive objects in different groups" true (Syn.group ds i <> Syn.group ds (i + 1))
  done

let test_two_pointers_per_random_class () =
  let ds = Lazy.force dataset in
  List.iter
    (fun p ->
      let key = Syn.rand_key p in
      for i = 0 to Syn.n_objects ds - 1 do
        check_int
          (Printf.sprintf "%s pointers at %d" key i)
          2
          (List.length (Syn.logical_pointers ds i ~key))
      done)
    Syn.localities

let test_locality_near_nominal () =
  let ds = Lazy.force dataset in
  List.iter
    (fun p ->
      let measured = Syn.measured_locality ds ~key:(Syn.rand_key p) in
      check_bool
        (Printf.sprintf "measured %.2f near nominal %.2f" measured p)
        true
        (abs_float (measured -. p) < 0.12))
    Syn.localities

let closure_from ds ~key start =
  let visited = Hashtbl.create 64 in
  let rec go i =
    if not (Hashtbl.mem visited i) then begin
      Hashtbl.replace visited i ();
      List.iter go (Syn.logical_pointers ds i ~key)
    end
  in
  go start;
  Hashtbl.length visited

let test_backbone_covers_everything () =
  let ds = Lazy.force dataset in
  (* "There were 270 objects involved in the queries" — every random
     class reaches the whole database from the root. *)
  List.iter
    (fun p ->
      check_int
        (Printf.sprintf "closure of %s" (Syn.rand_key p))
        (Syn.n_objects ds)
        (closure_from ds ~key:(Syn.rand_key p) 0))
    Syn.localities;
  check_int "chain covers everything" (Syn.n_objects ds) (closure_from ds ~key:Syn.chain_key 0);
  check_int "tree covers everything" (Syn.n_objects ds) (closure_from ds ~key:Syn.tree_key 0)

let test_every_object_has_pointer_in_every_class () =
  (* Figure 3 semantics: an object without a matching pointer dies in
     the traversal body; the generator therefore guarantees outgoing
     pointers everywhere (terminator self-pointers at leaves). *)
  let ds = Lazy.force dataset in
  let keys = Syn.chain_key :: Syn.tree_key :: List.map Syn.rand_key Syn.localities in
  List.iter
    (fun key ->
      for i = 0 to Syn.n_objects ds - 1 do
        check_bool
          (Printf.sprintf "%s at %d" key i)
          true
          (Syn.logical_pointers ds i ~key <> [])
      done)
    keys

let test_determinism () =
  let a = Syn.generate ~params:small_params () in
  let b = Syn.generate ~params:small_params () in
  List.iter
    (fun key ->
      for i = 0 to Syn.n_objects a - 1 do
        check_bool "same pointers" true
          (Syn.logical_pointers a i ~key = Syn.logical_pointers b i ~key)
      done)
    (Syn.chain_key :: List.map Syn.rand_key Syn.localities)

let test_seed_changes_graph () =
  let a = Syn.generate ~params:small_params () in
  let b = Syn.generate ~params:{ small_params with Syn.seed = 43 } () in
  let key = Syn.rand_key 0.50 in
  let differs = ref false in
  for i = 0 to Syn.n_objects a - 1 do
    if Syn.logical_pointers a i ~key <> Syn.logical_pointers b i ~key then differs := true
  done;
  check_bool "different seeds differ" true !differs

let test_placement_refinement () =
  (* site = group mod n_sites: the 9-way partition refines the 3-way. *)
  for g = 0 to 8 do
    let site9 = Syn.site_of_group ~n_groups:9 ~n_sites:9 g in
    let site3 = Syn.site_of_group ~n_groups:9 ~n_sites:3 g in
    let site1 = Syn.site_of_group ~n_groups:9 ~n_sites:1 g in
    check_int "site9 mod 3" (site9 mod 3) site3;
    check_int "single site" 0 site1
  done;
  Alcotest.check_raises "uneven split"
    (Invalid_argument "Synthetic.site_of_group: sites must divide groups evenly") (fun () ->
      ignore (Syn.site_of_group ~n_groups:9 ~n_sites:2 0))

let test_materialize () =
  let ds = Lazy.force dataset in
  let stores = Array.init 3 (fun site -> Store.create ~site) in
  let placed = Syn.materialize ds ~n_sites:3 ~store_of:(fun s -> stores.(s)) in
  check_int "all objects stored" 90
    (Array.fold_left (fun acc store -> acc + Store.cardinal store) 0 stores);
  (* even split: 9 groups of 10 over 3 sites *)
  Array.iter (fun store -> check_int "even split" 30 (Store.cardinal store)) stores;
  (* oids live where site_of says *)
  Array.iteri
    (fun i oid ->
      check_bool "birth site = placement" true (Oid.birth_site oid = placed.Syn.site_of.(i));
      check_bool "stored there" true (Store.mem stores.(placed.Syn.site_of.(i)) oid))
    placed.Syn.oids;
  (* search tuples present *)
  let obj = Option.get (Store.find stores.(0) placed.Syn.root) in
  check_bool "unique tuple" true
    (List.exists
       (fun t ->
         Hf_data.Tuple.ttype t = Hf_data.Tuple.type_number
         && Hf_data.Value.equal (Hf_data.Tuple.key t) (Hf_data.Value.str "Unique"))
       (Hf_data.Hobject.tuples obj));
  check_bool "body blob present" true
    (List.exists (fun t -> Hf_data.Tuple.ttype t = Hf_data.Tuple.type_text)
       (Hf_data.Hobject.tuples obj))

let test_materialized_closure_matches_engine () =
  (* End to end on one store: the engine's chain-closure visits all
     objects and the unique-key query returns exactly one. *)
  let ds = Lazy.force dataset in
  let store = Store.create ~site:0 in
  let placed = Syn.materialize ds ~n_sites:1 ~store_of:(fun _ -> store) in
  let program =
    Hf_workload.Queries.closure_program ~pointer_key:Syn.chain_key
      (Hf_workload.Queries.select_unique 42)
  in
  let r = Hf_engine.Local.run_store ~store program [ placed.Syn.root ] in
  check_int "every object examined" 90 r.Hf_engine.Local.stats.Hf_engine.Stats.objects_processed;
  check_int "unique key finds one" 1 (List.length r.Hf_engine.Local.results)

let test_selectivities () =
  let ds = Lazy.force dataset in
  let store = Store.create ~site:0 in
  let placed = Syn.materialize ds ~n_sites:1 ~store_of:(fun _ -> store) in
  let run selection =
    let program = Hf_workload.Queries.closure_program ~pointer_key:Syn.chain_key selection in
    List.length (Hf_engine.Local.run_store ~store program [ placed.Syn.root ]).Hf_engine.Local.results
  in
  check_int "common selects all" 90 (run Hf_workload.Queries.select_common);
  let rand10 = run (Hf_workload.Queries.select_rand10 5) in
  check_bool (Printf.sprintf "rand10 ~10%% (%d)" rand10) true (rand10 > 2 && rand10 < 20)

let test_generate_validation () =
  Alcotest.check_raises "tiny" (Invalid_argument "Synthetic.generate: need at least 2 objects")
    (fun () -> ignore (Syn.generate ~params:{ small_params with Syn.n_objects = 1 } ()))

(* --- Corpus --- *)

module Corpus = Hf_workload.Corpus

let corpus_fixture () =
  let store = Store.create ~site:0 in
  let corpus = Corpus.generate ~n_sites:1 ~store_of:(fun _ -> store) () in
  (store, corpus)

let test_corpus_counts () =
  let store, corpus = corpus_fixture () in
  check_int "all documents stored" 500 (Store.cardinal store);
  check_int "oids array" 500 (Array.length (Corpus.oids corpus))

let test_corpus_zipf_shape () =
  let store, corpus = corpus_fixture () in
  let find = Store.find store in
  let common = Corpus.keyword_frequency ~find corpus 0 in
  let mid = Corpus.keyword_frequency ~find corpus 50 in
  let rare = Corpus.keyword_frequency ~find corpus 190 in
  check_bool
    (Printf.sprintf "zipf head %d > middle %d > tail %d (weak ordering)" common mid rare)
    true
    (common > mid && mid >= rare)

let test_corpus_citations_point_backwards () =
  let store, corpus = corpus_fixture () in
  let oids = Corpus.oids corpus in
  let index_of oid =
    let found = ref (-1) in
    Array.iteri (fun i o -> if Oid.equal o oid then found := i) oids;
    !found
  in
  Array.iteri
    (fun i oid ->
      let obj = Option.get (Store.find store oid) in
      List.iter
        (fun target ->
          let j = index_of target in
          check_bool "cites earlier or self-terminator" true (j < i || (j = i && i >= 0)))
        (Hf_data.Hobject.pointers_with_key obj ~key:Corpus.citation_key))
    oids

let test_corpus_every_doc_has_citation_tuple () =
  (* leaves get terminator self-pointers, so closures can filter them *)
  let store, corpus = corpus_fixture () in
  Array.iter
    (fun oid ->
      let obj = Option.get (Store.find store oid) in
      check_bool "has citation tuple" true
        (Hf_data.Hobject.pointers_with_key obj ~key:Corpus.citation_key <> []))
    (Corpus.oids corpus)

let test_corpus_closure_queryable () =
  let store, corpus = corpus_fixture () in
  let ast =
    Hf_query.Parser.parse_body "[ (Pointer, \"Cites\", ?X) ^^X ]* (Number, \"Year\", 1970..1991)"
  in
  let r = Hf_engine.Local.run_query ~store ast [ Corpus.newest corpus ] in
  check_bool "newest reaches a real citation neighbourhood" true
    (List.length r.Hf_engine.Local.results > 3)

let test_corpus_deterministic () =
  let store1 = Store.create ~site:0 in
  let c1 = Corpus.generate ~n_sites:1 ~store_of:(fun _ -> store1) () in
  let store2 = Store.create ~site:0 in
  let c2 = Corpus.generate ~n_sites:1 ~store_of:(fun _ -> store2) () in
  Array.iteri
    (fun i oid1 ->
      let o1 = Option.get (Store.find store1 oid1) in
      let o2 = Option.get (Store.find store2 (Corpus.oids c2).(i)) in
      check_bool "same document" true (Hf_data.Hobject.equal o1 o2))
    (Corpus.oids c1)

let () =
  Alcotest.run "hf_workload"
    [
      ( "structure",
        [
          Alcotest.test_case "object count" `Quick test_object_count;
          Alcotest.test_case "chain structure" `Quick test_chain_structure;
          Alcotest.test_case "chain crosses groups" `Quick test_chain_always_crosses_groups;
          Alcotest.test_case "two pointers per class" `Quick test_two_pointers_per_random_class;
          Alcotest.test_case "every class has pointers everywhere" `Quick
            test_every_object_has_pointer_in_every_class;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "locality near nominal" `Quick test_locality_near_nominal;
          Alcotest.test_case "closures cover everything" `Quick test_backbone_covers_everything;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same graph" `Quick test_determinism;
          Alcotest.test_case "different seed, different graph" `Quick test_seed_changes_graph;
        ] );
      ( "placement",
        [
          Alcotest.test_case "refinement property" `Quick test_placement_refinement;
          Alcotest.test_case "materialize" `Quick test_materialize;
        ] );
      ( "queries",
        [
          Alcotest.test_case "closure matches engine" `Quick
            test_materialized_closure_matches_engine;
          Alcotest.test_case "selectivities" `Quick test_selectivities;
          Alcotest.test_case "validation" `Quick test_generate_validation;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "counts" `Quick test_corpus_counts;
          Alcotest.test_case "zipf keyword shape" `Quick test_corpus_zipf_shape;
          Alcotest.test_case "citations point backwards" `Quick
            test_corpus_citations_point_backwards;
          Alcotest.test_case "terminator pointers everywhere" `Quick
            test_corpus_every_doc_has_citation_tuple;
          Alcotest.test_case "closure queryable" `Quick test_corpus_closure_queryable;
          Alcotest.test_case "deterministic" `Quick test_corpus_deterministic;
        ] );
    ]
