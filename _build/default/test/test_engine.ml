(* Tests for the local query engine — the Section 3.1 algorithm.  The
   scenarios follow the paper's own walkthroughs, and property tests
   check the engine against independent BFS oracles on random graphs. *)

module Oid = Hf_data.Oid
module Tuple = Hf_data.Tuple
module Value = Hf_data.Value
module Store = Hf_data.Store
module Local = Hf_engine.Local

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Hf_query.Parser.parse_body

(* Build a store of [n] objects; [link i key j] adds a pointer; [tag i
   word] adds a keyword. *)
let make_store n =
  let store = Store.create ~site:0 in
  let oids = Array.init n (fun _ -> Store.fresh_oid store) in
  Array.iter (fun oid -> Store.insert store (Hf_data.Hobject.of_tuples oid [])) oids;
  let link i key j =
    let obj = Option.get (Store.find store oids.(i)) in
    Store.replace store (Hf_data.Hobject.add obj (Tuple.pointer ~key oids.(j)))
  in
  let tag i word =
    let obj = Option.get (Store.find store oids.(i)) in
    Store.replace store (Hf_data.Hobject.add obj (Tuple.keyword word))
  in
  let add i tuple =
    let obj = Option.get (Store.find store oids.(i)) in
    Store.replace store (Hf_data.Hobject.add obj tuple)
  in
  (store, oids, link, tag, add)

let run store ast initial = Local.run_query ~store ast initial

let result_logicals oids result =
  let index_of oid =
    let found = ref (-1) in
    Array.iteri (fun i o -> if Oid.equal o oid then found := i) oids;
    !found
  in
  List.sort compare (List.map index_of (Oid.Set.elements result.Local.result_set))

(* --- The paper's worked example (Section 3.1) --- *)

let test_paper_walkthrough () =
  (* S = {A}; A->B->C->D via Reference; keyword on A, C, D. *)
  let store, oids, link, tag, _ = make_store 4 in
  link 0 "Reference" 1;
  link 1 "Reference" 2;
  link 2 "Reference" 3;
  tag 0 "Distributed";
  tag 2 "Distributed";
  tag 3 "Distributed";
  let ast = parse "[ (Pointer, \"Reference\", ?X) ^^X ]^3 (Keyword, \"Distributed\", ?)" in
  let r = run store ast [ oids.(0) ] in
  Alcotest.(check (list int)) "A and C pass; D too deep" [ 0; 2 ] (result_logicals oids r);
  (* "the query terminates before examining D (which is 4 levels deep)" *)
  check_int "only A, B, C examined" 3 r.stats.Hf_engine.Stats.objects_processed

let test_cycle_terminates () =
  let store, oids, link, tag, _ = make_store 4 in
  link 0 "R" 1;
  link 1 "R" 2;
  link 2 "R" 3;
  link 3 "R" 0;
  tag 1 "hot";
  let ast = parse "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)" in
  let r = run store ast [ oids.(0) ] in
  Alcotest.(check (list int)) "cycle covered once" [ 1 ] (result_logicals oids r);
  check_int "each object processed once" 4 r.stats.Hf_engine.Stats.objects_processed

let test_self_loop () =
  let store, oids, link, tag, _ = make_store 1 in
  link 0 "R" 0;
  tag 0 "hot";
  let ast = parse "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)" in
  let r = run store ast [ oids.(0) ] in
  Alcotest.(check (list int)) "self loop" [ 0 ] (result_logicals oids r)

(* --- The mark-table subtlety (Section 3.1, "one important subtlety") --- *)

let test_mark_table_per_filter_index () =
  (* O fails filter F0.  Another object passes F0 and then a dereference
     reaches O landing after F0; O must still be processed there. *)
  let store, oids, link, tag, _ = make_store 2 in
  (* oids.(1) = O: no "gate" keyword, but has "hot". *)
  tag 1 "hot";
  tag 0 "gate";
  tag 0 "hot";
  link 0 "R" 1;
  (* Query: gate-check, then deref, then hot-check.  Both O (via deref)
     and the gate object flow into the hot-check. *)
  let ast =
    parse "(Keyword, \"gate\", ?) (Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)"
  in
  (* Initial set contains BOTH objects: O fails at F0 first (marking
     index 0), then is reached again by the dereference at index 3. *)
  let r = run store ast [ oids.(1); oids.(0) ] in
  Alcotest.(check (list int)) "O recovered via deref" [ 0; 1 ] (result_logicals oids r)

let test_mark_table_suppresses_duplicates () =
  (* Two pointers to the same object: processed once. *)
  let store, oids, link, tag, _ = make_store 3 in
  link 0 "R" 2;
  link 1 "R" 2;
  tag 2 "hot";
  let ast = parse "(Pointer, \"R\", ?X) ^X (Keyword, \"hot\", ?)" in
  let r = run store ast [ oids.(0); oids.(1) ] in
  Alcotest.(check (list int)) "result once" [ 2 ] (result_logicals oids r);
  check_int "skip counted" 1 r.stats.Hf_engine.Stats.objects_skipped

(* --- Dereference modes --- *)

let test_keep_parent_vs_replace () =
  let store, oids, link, tag, _ = make_store 2 in
  link 0 "R" 1;
  tag 0 "hot";
  tag 1 "hot";
  let keep = parse "(Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)" in
  let replace = parse "(Pointer, \"R\", ?X) ^X (Keyword, \"hot\", ?)" in
  Alcotest.(check (list int)) "keep parent" [ 0; 1 ]
    (result_logicals oids (run store keep [ oids.(0) ]));
  Alcotest.(check (list int)) "replace" [ 1 ]
    (result_logicals oids (run store replace [ oids.(0) ]))

let test_deref_multiple_bindings () =
  (* A selection binding accumulates all matching tuples' values; the
     dereference follows every one. *)
  let store, oids, link, tag, _ = make_store 4 in
  link 0 "R" 1;
  link 0 "R" 2;
  link 0 "R" 3;
  tag 1 "hot";
  tag 3 "hot";
  let ast = parse "(Pointer, \"R\", ?X) ^X (Keyword, \"hot\", ?)" in
  Alcotest.(check (list int)) "all pointers followed" [ 1; 3 ]
    (result_logicals oids (run store ast [ oids.(0) ]))

let test_deref_unbound_variable () =
  (* Dereferencing a variable with no bindings yields nothing (and the
     parent dies under Replace). *)
  let store, oids, _, tag, _ = make_store 1 in
  tag 0 "hot";
  let ast = parse "(Keyword, \"hot\", ?X) ^X (Keyword, \"hot\", ?)" in
  (* X binds the keyword tuple's data (a number), not a pointer *)
  let r = run store ast [ oids.(0) ] in
  check_int "no results" 0 (List.length r.Local.results)

let test_dangling_pointer () =
  let store, oids, _, tag, add = make_store 1 in
  add 0 (Tuple.pointer ~key:"R" (Oid.make ~birth_site:7 ~serial:99));
  tag 0 "hot";
  let ast = parse "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)" in
  let r = run store ast [ oids.(0) ] in
  Alcotest.(check (list int)) "source still passes" [ 0 ] (result_logicals oids r);
  check_int "dangling counted" 1 r.stats.Hf_engine.Stats.dangling

(* --- Matching variables across tuples (paper footnote 2) --- *)

let test_use_variable_across_filters () =
  (* "routines Maintained by one of the Authors" *)
  let store, oids, _, _, add = make_store 2 in
  add 0 (Tuple.string_ ~key:"Author" "ann");
  add 0 (Tuple.string_ ~key:"Author" "bob");
  add 0 (Tuple.string_ ~key:"Maintained by" "bob");
  add 1 (Tuple.string_ ~key:"Author" "ann");
  add 1 (Tuple.string_ ~key:"Maintained by" "eve");
  let ast = parse "(String, \"Author\", ?X) (String, \"Maintained by\", =X)" in
  Alcotest.(check (list int)) "only self-maintained" [ 0 ]
    (result_logicals oids (run store ast [ oids.(0); oids.(1) ]))

let test_bindings_reset_per_object () =
  (* Bindings do not leak between objects in the working set. *)
  let store, oids, _, _, add = make_store 2 in
  add 0 (Tuple.string_ ~key:"Author" "ann");
  add 0 (Tuple.string_ ~key:"Boss" "ann");
  add 1 (Tuple.string_ ~key:"Boss" "ann");
  (* object 1 has no Author tuple so fails F0 — but even if bindings
     leaked, it would wrongly pass F1. *)
  let ast = parse "(String, \"Author\", ?X) (String, \"Boss\", =X)" in
  Alcotest.(check (list int)) "no leak" [ 0 ]
    (result_logicals oids (run store ast [ oids.(0); oids.(1) ]))

(* --- Retrieve (the -> operator) --- *)

let test_retrieve_values () =
  let store, oids, _, _, add = make_store 2 in
  add 0 (Tuple.string_ ~key:"Title" "First");
  add 1 (Tuple.string_ ~key:"Title" "Second");
  let ast = parse "(String, \"Title\", ->title)" in
  let r = run store ast [ oids.(0); oids.(1) ] in
  check_int "both pass" 2 (List.length r.Local.results);
  (match r.Local.bindings with
   | [ ("title", values) ] ->
     check_int "two values" 2 (List.length values);
     check_bool "contents" true
       (List.exists (Value.equal (Value.str "First")) values
       && List.exists (Value.equal (Value.str "Second")) values)
   | _ -> Alcotest.fail "expected one binding target")

let test_retrieve_filters () =
  (* An object with no matching tuple fails a retrieve filter. *)
  let store, oids, _, tag, add = make_store 2 in
  add 0 (Tuple.string_ ~key:"Title" "First");
  tag 1 "untitled";
  let ast = parse "(String, \"Title\", ->title)" in
  let r = run store ast [ oids.(0); oids.(1) ] in
  Alcotest.(check (list int)) "only titled passes" [ 0 ] (result_logicals oids r)

let test_retrieve_multiple_tuples () =
  let store, oids, _, _, add = make_store 1 in
  add 0 (Tuple.string_ ~key:"Author" "ann");
  add 0 (Tuple.string_ ~key:"Author" "bob");
  let ast = parse "(String, \"Author\", ->authors)" in
  let r = run store ast [ oids.(0) ] in
  match r.Local.bindings with
  | [ ("authors", values) ] -> check_int "both emitted" 2 (List.length values)
  | _ -> Alcotest.fail "expected authors binding"

(* --- Iterators against a BFS oracle --- *)

(* Independent oracle for the query
     [ (Pointer, key, ?X) ^^X ]^k selection
   encoding the engine's order-independent exists-a-path semantics
   (Figure 3 plus counter-aware marks, DESIGN.md §4b):

   - an initial object makes one ungated pass through the body (the
     iterator filter follows the body): it must match the body's
     selection (have a pointer) to survive, and its dereference spawns
     successors regardless of k;
   - a spawned object that arrived over a chain of canonical length d
     loops through the body iff d < k (star: always), needing a pointer
     to survive; at d >= k it exits the iterator directly to the
     trailing selection, surviving even as a leaf;
   - every distinct (object, canonical chain length) state is processed,
     so the answer covers all qualifying pointer chains regardless of
     the order work items are handled.

   Computed as a BFS over (object, canonical depth) product states.
   Returns the passing set (pre trailing selection) as sorted ids. *)
let figure3_oracle store oids ~key ~k initial =
  let has_ptr i =
    Hf_data.Hobject.pointers_with_key (Option.get (Store.find store oids.(i))) ~key <> []
  in
  let succs i =
    List.filter_map
      (fun target ->
        let j = ref (-1) in
        Array.iteri (fun idx o -> if Oid.equal o target then j := idx) oids;
        if !j >= 0 then Some !j else None)
      (Hf_data.Hobject.pointers_with_key (Option.get (Store.find store oids.(i))) ~key)
  in
  (* states: (i, 0) = initial entry; (i, d>=1) = spawned with canonical
     chain length d (capped at k) *)
  let visited = Hashtbl.create 32 in
  let queue = Queue.create () in
  let push state =
    if not (Hashtbl.mem visited state) then begin
      Hashtbl.replace visited state ();
      Queue.push state queue
    end
  in
  List.iter (fun i -> push (i, 0)) initial;
  while not (Queue.is_empty queue) do
    let i, d = Queue.pop queue in
    let expands = has_ptr i && (d = 0 || d < k) in
    if expands then begin
      (* Canonical child depth, mirroring the engine's counter
         canonicalization: star iterators (k = max_int) never consult the
         counter, so every spawned state collapses to depth 1 — without
         this, cycles would generate unboundedly many (i, d) states. *)
      let child_depth =
        if k = max_int then 1 else min ((if d = 0 then 1 else d) + 1) k
      in
      List.iter (fun j -> push (j, child_depth)) (succs i)
    end
  done;
  let passing = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (i, d) () ->
      let passes = if d = 0 then has_ptr i else has_ptr i || d >= k in
      if passes then Hashtbl.replace passing i ())
    visited;
  let examined =
    List.sort_uniq compare (Hashtbl.fold (fun (i, _) () acc -> i :: acc) visited [])
  in
  (examined, List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) passing []))

let random_graph_store prng n =
  let store, oids, link, tag, add = make_store n in
  (* Baseline tuple so the trailing (?,?,?) selection matches every
     object (an empty object matches nothing). *)
  for i = 0 to n - 1 do
    add i (Tuple.number ~key:"id" i)
  done;
  let edges = Hf_util.Prng.next_int prng (2 * n) in
  for _ = 1 to edges do
    link (Hf_util.Prng.next_int prng n) "R" (Hf_util.Prng.next_int prng n)
  done;
  for i = 0 to n - 1 do
    if Hf_util.Prng.next_bool prng 0.5 then tag i "hot"
  done;
  (store, oids)

let closure_matches_oracle ~k seed =
  let prng = Hf_util.Prng.create seed in
  let n = 2 + Hf_util.Prng.next_int prng 15 in
  let store, oids = random_graph_store prng n in
  let initial = [ 0 ] in
  let query =
    match k with
    | None -> "[ (Pointer, \"R\", ?X) ^^X ]* (?, ?, ?)"
    | Some k -> Printf.sprintf "[ (Pointer, \"R\", ?X) ^^X ]^%d (?, ?, ?)" k
  in
  let r = run store (parse query) (List.map (fun i -> oids.(i)) initial) in
  let _, expected =
    figure3_oracle store oids ~key:"R" ~k:(Option.value k ~default:max_int) initial
  in
  result_logicals oids r = expected

let prop_star_closure =
  QCheck2.Test.make ~name:"star iterator = BFS closure" ~count:150 QCheck2.Gen.int
    (fun seed -> closure_matches_oracle ~k:None seed)

let prop_depth_k =
  QCheck2.Test.make ~name:"finite iterator = depth-k BFS" ~count:150
    QCheck2.Gen.(pair int (int_range 1 5))
    (fun (seed, k) -> closure_matches_oracle ~k:(Some k) seed)

let test_depth_one_examines_one_hop () =
  (* An initial object's first pass through the body is ungated
     (Figure 3: the iterator filter comes after the body), so even with
     k = 1 the first dereference happens and its target is examined;
     the target then exits the iterator via its counter. *)
  let store, oids, link, tag, _ = make_store 3 in
  link 0 "R" 1;
  link 1 "R" 2;
  tag 0 "hot";
  tag 1 "hot";
  tag 2 "hot";
  let ast = parse "[ (Pointer, \"R\", ?X) ^^X ]^1 (Keyword, \"hot\", ?)" in
  Alcotest.(check (list int)) "one ungated hop" [ 0; 1 ]
    (result_logicals oids (run store ast [ oids.(0) ]))

let test_nested_iterators_terminate () =
  (* [[ follow A ]^2]^3 over a long chain: the outer bound (total chain
     length 3) applies because derefs increment all enclosing
     counters. *)
  let store, oids, link, tag, _ = make_store 10 in
  for i = 0 to 8 do
    link i "A" (i + 1)
  done;
  for i = 0 to 9 do
    tag i "hot"
  done;
  let ast = parse "[ [ (Pointer, \"A\", ?X) ^^X ]^2 ]^3 (Keyword, \"hot\", ?)" in
  let r = run store ast [ oids.(0) ] in
  (* Counters bump for both iterators on every dereference; re-entry is
     gated per iterator filter, so the outer k = 3 is the effective
     chain bound here: a0, a1, a2 examined, a3 never spawned. *)
  Alcotest.(check (list int)) "chain bounded" [ 0; 1; 2 ] (result_logicals oids r)

let test_nested_star_terminates () =
  let store, oids, link, tag, _ = make_store 6 in
  for i = 0 to 5 do
    link i "A" ((i + 1) mod 6)
  done;
  for i = 0 to 5 do
    tag i "hot"
  done;
  let ast = parse "[ [ (Pointer, \"A\", ?X) ^^X ]* ]* (Keyword, \"hot\", ?)" in
  let r = run store ast [ oids.(0) ] in
  check_int "whole cycle" 6 (List.length r.Local.results)

(* --- Search order --- *)

let prop_bfs_dfs_same_results =
  QCheck2.Test.make ~name:"BFS and DFS orders give the same result set" ~count:100
    QCheck2.Gen.int (fun seed ->
      let prng = Hf_util.Prng.create seed in
      let n = 2 + Hf_util.Prng.next_int prng 12 in
      let store, oids = random_graph_store prng n in
      let program =
        Hf_query.Compile.compile (parse "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)")
      in
      let bfs = Local.run_store ~order:Local.Bfs ~store program [ oids.(0) ] in
      let dfs = Local.run_store ~order:Local.Dfs ~store program [ oids.(0) ] in
      Oid.Set.equal bfs.Local.result_set dfs.Local.result_set)

(* --- Miscellaneous --- *)

let test_empty_initial_set () =
  let store, _, _, _, _ = make_store 3 in
  let r = run store (parse "(?, ?, ?)") [] in
  check_int "no results" 0 (List.length r.Local.results)

let test_select_range_and_glob () =
  let store, oids, _, _, add = make_store 3 in
  add 0 (Tuple.number ~key:"size" 5);
  add 1 (Tuple.number ~key:"size" 50);
  add 2 (Tuple.string_ ~key:"name" "distributed systems");
  let range = parse "(Number, \"size\", 1..10)" in
  Alcotest.(check (list int)) "range" [ 0 ]
    (result_logicals oids (run store range [ oids.(0); oids.(1); oids.(2) ]));
  let glob = parse "(String, \"name\", \"dist*\")" in
  Alcotest.(check (list int)) "glob" [ 2 ]
    (result_logicals oids (run store glob [ oids.(0); oids.(1); oids.(2) ]))

let test_no_duplicate_results () =
  (* An object reachable along two paths appears once.  Node 3 points
     back to 0 so every node has an outgoing pointer (a leaf would fail
     the body's selection when looped — Figure 3 semantics). *)
  let store, oids, link, tag, _ = make_store 4 in
  link 0 "R" 1;
  link 0 "R" 2;
  link 1 "R" 3;
  link 2 "R" 3;
  link 3 "R" 0;
  Array.iteri (fun i _ -> tag i "hot") oids;
  let ast = parse "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)" in
  let r = run store ast [ oids.(0) ] in
  check_int "four distinct results" 4 (List.length r.Local.results);
  check_int "stats agree" 4 r.stats.Hf_engine.Stats.results

let test_plan_analysis () =
  let program =
    Hf_query.Compile.compile (parse "[ (A, ?, ?) [ ^X ]^2 (C, ?, ?) ]* (D, ?, ?)")
  in
  let plan = Hf_engine.Plan.make program in
  check_int "two iterators" 2 (Hf_engine.Plan.iter_count plan);
  (* program: 0=(A) 1=^X 2=InnerIter 3=(C) 4=OuterIter 5=(D) *)
  check_int "deref inside both" 2
    (List.length (Hf_engine.Plan.enclosing_iterator_slots plan 1));
  check_int "C inside outer only" 1
    (List.length (Hf_engine.Plan.enclosing_iterator_slots plan 3));
  check_int "D inside none" 0 (List.length (Hf_engine.Plan.enclosing_iterator_slots plan 5))

let test_stats_counters () =
  let store, oids, link, tag, _ = make_store 3 in
  link 0 "R" 1;
  link 1 "R" 2;
  tag 2 "hot";
  let ast = parse "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)" in
  let r = run store ast [ oids.(0) ] in
  check_int "processed" 3 r.stats.Hf_engine.Stats.objects_processed;
  check_int "derefs" 2 r.stats.Hf_engine.Stats.derefs;
  check_int "spawned" 2 r.stats.Hf_engine.Stats.spawned;
  check_bool "tuples examined" true (r.stats.Hf_engine.Stats.tuples_examined > 0)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "hf_engine"
    [
      ( "paper semantics",
        [
          Alcotest.test_case "worked example (A,B,C,D chain)" `Quick test_paper_walkthrough;
          Alcotest.test_case "cycles terminate" `Quick test_cycle_terminates;
          Alcotest.test_case "self loop" `Quick test_self_loop;
          Alcotest.test_case "marks are per filter index" `Quick test_mark_table_per_filter_index;
          Alcotest.test_case "marks suppress duplicates" `Quick
            test_mark_table_suppresses_duplicates;
        ] );
      ( "dereference",
        [
          Alcotest.test_case "keep-parent vs replace" `Quick test_keep_parent_vs_replace;
          Alcotest.test_case "multiple bindings" `Quick test_deref_multiple_bindings;
          Alcotest.test_case "non-pointer bindings ignored" `Quick test_deref_unbound_variable;
          Alcotest.test_case "dangling pointers" `Quick test_dangling_pointer;
        ] );
      ( "matching variables",
        [
          Alcotest.test_case "use across filters" `Quick test_use_variable_across_filters;
          Alcotest.test_case "reset per object" `Quick test_bindings_reset_per_object;
        ] );
      ( "retrieve",
        [
          Alcotest.test_case "values emitted" `Quick test_retrieve_values;
          Alcotest.test_case "acts as a filter" `Quick test_retrieve_filters;
          Alcotest.test_case "multiple tuples" `Quick test_retrieve_multiple_tuples;
        ] );
      ( "iterators",
        [
          Alcotest.test_case "depth 1 examines one hop" `Quick test_depth_one_examines_one_hop;
          Alcotest.test_case "nested finite terminate" `Quick test_nested_iterators_terminate;
          Alcotest.test_case "nested star terminate" `Quick test_nested_star_terminates;
          qtest prop_star_closure;
          qtest prop_depth_k;
        ] );
      ( "search order",
        [ qtest prop_bfs_dfs_same_results ] );
      ( "misc",
        [
          Alcotest.test_case "empty initial set" `Quick test_empty_initial_set;
          Alcotest.test_case "range and glob selects" `Quick test_select_range_and_glob;
          Alcotest.test_case "no duplicate results" `Quick test_no_duplicate_results;
          Alcotest.test_case "plan analysis" `Quick test_plan_analysis;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
        ] );
    ]
