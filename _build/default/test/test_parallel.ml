(* Tests for the shared-memory multiprocessor engine (paper, Section 6):
   result sets must equal the sequential engine's for any domain count,
   including under pointer cycles and duplicate-prone diamonds. *)

module Oid = Hf_data.Oid
module Tuple = Hf_data.Tuple
module Store = Hf_data.Store
module Par = Hf_parallel.Shared_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Hf_query.Parser.parse_body

let build prng n =
  let store = Store.create ~site:0 in
  let oids = Array.init n (fun _ -> Store.fresh_oid store) in
  Array.iteri
    (fun i oid ->
      let successor = Tuple.pointer ~key:"R" oids.(Hf_util.Prng.next_int prng n) in
      let extra =
        if Hf_util.Prng.next_bool prng 0.5 then
          [ Tuple.pointer ~key:"R" oids.(Hf_util.Prng.next_int prng n) ]
        else []
      in
      let hot = if Hf_util.Prng.next_bool prng 0.5 then [ Tuple.keyword "hot" ] else [] in
      Store.insert store
        (Hf_data.Hobject.of_tuples oid ((Tuple.number ~key:"id" i :: successor :: extra) @ hot)))
    oids;
  (store, oids)

let closure = parse "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)"

let test_matches_sequential_basic () =
  let prng = Hf_util.Prng.create 5 in
  let store, oids = build prng 40 in
  let program = Hf_query.Compile.compile closure in
  let sequential = Hf_engine.Local.run_store ~store program [ oids.(0) ] in
  List.iter
    (fun domains ->
      let parallel = Par.run_store ~domains ~store program [ oids.(0) ] in
      check_bool
        (Printf.sprintf "%d domains = sequential" domains)
        true
        (Oid.Set.equal sequential.Hf_engine.Local.result_set parallel.Hf_engine.Local.result_set))
    [ 1; 2; 4; 8 ]

let test_results_sorted () =
  let prng = Hf_util.Prng.create 6 in
  let store, oids = build prng 20 in
  let program = Hf_query.Compile.compile closure in
  let parallel = Par.run_store ~domains:4 ~store program [ oids.(0) ] in
  let sorted = List.sort Oid.compare parallel.Hf_engine.Local.results in
  check_bool "sorted by oid" true (sorted = parallel.Hf_engine.Local.results)

let test_empty_initial () =
  let store = Store.create ~site:0 in
  let program = Hf_query.Compile.compile closure in
  let r = Par.run_store ~domains:4 ~store program [] in
  check_int "empty" 0 (List.length r.Hf_engine.Local.results)

let test_bindings_collected () =
  let store = Store.create ~site:0 in
  let oids = Array.init 6 (fun _ -> Store.fresh_oid store) in
  Array.iteri
    (fun i oid ->
      Store.insert store
        (Hf_data.Hobject.of_tuples oid
           [ Tuple.pointer ~key:"R" oids.((i + 1) mod 6); Tuple.string_ ~key:"Title" (Printf.sprintf "t%d" i) ]))
    oids;
  let program =
    Hf_query.Compile.compile (parse "[ (Pointer, \"R\", ?X) ^^X ]* (String, \"Title\", ->title)")
  in
  let r = Par.run_store ~domains:3 ~store program [ oids.(0) ] in
  match r.Hf_engine.Local.bindings with
  | [ ("title", values) ] -> check_int "six titles" 6 (List.length values)
  | _ -> Alcotest.fail "expected title binding"

let test_invalid_domains () =
  let store = Store.create ~site:0 in
  Alcotest.check_raises "domains >= 1" (Invalid_argument "Shared_engine.run: domains must be >= 1")
    (fun () ->
      ignore (Par.run_store ~domains:0 ~store (Hf_query.Compile.compile closure) []))

let prop_parallel_equals_sequential =
  QCheck2.Test.make ~name:"parallel = sequential on random graphs" ~count:60
    QCheck2.Gen.(pair int (int_range 1 6))
    (fun (seed, domains) ->
      let prng = Hf_util.Prng.create seed in
      let n = 5 + Hf_util.Prng.next_int prng 40 in
      let store, oids = build prng n in
      let program = Hf_query.Compile.compile closure in
      let sequential = Hf_engine.Local.run_store ~store program [ oids.(0) ] in
      let parallel = Par.run_store ~domains ~store program [ oids.(0) ] in
      Oid.Set.equal sequential.Hf_engine.Local.result_set parallel.Hf_engine.Local.result_set)

let test_larger_workload_speed_sanity () =
  (* Not a benchmark — just exercise a bigger graph across domains to
     shake out races. *)
  let prng = Hf_util.Prng.create 9 in
  let store, oids = build prng 2000 in
  let program = Hf_query.Compile.compile closure in
  let sequential = Hf_engine.Local.run_store ~store program [ oids.(0) ] in
  let parallel = Par.run_store ~domains:4 ~store program [ oids.(0) ] in
  check_bool "large graph equal" true
    (Oid.Set.equal sequential.Hf_engine.Local.result_set parallel.Hf_engine.Local.result_set)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "hf_parallel"
    [
      ( "shared-memory engine",
        [
          Alcotest.test_case "matches sequential" `Quick test_matches_sequential_basic;
          Alcotest.test_case "results sorted" `Quick test_results_sorted;
          Alcotest.test_case "empty initial set" `Quick test_empty_initial;
          Alcotest.test_case "bindings collected" `Quick test_bindings_collected;
          Alcotest.test_case "invalid domain count" `Quick test_invalid_domains;
          Alcotest.test_case "large workload" `Slow test_larger_workload_speed_sanity;
          qtest prop_parallel_equals_sequential;
        ] );
    ]
