(* Tests for the naming service (Section 4: R*-style names, birth-site
   arbitration, presumed-site hints, lazy hint correction). *)

module Oid = Hf_data.Oid
module N = Hf_naming.Name_service

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let oid ?(site = 0) serial = Oid.make ~birth_site:site ~serial

let test_register_resolve () =
  let ns = N.create ~n_sites:3 in
  let a = oid ~site:1 7 in
  N.register ns a;
  match N.resolve ns a with
  | Some { N.site; hops; corrected } ->
    check_int "at birth site" 1 site;
    check_int "direct hit" 1 hops;
    check_bool "hint unchanged" true (Oid.hint corrected = 1)
  | None -> Alcotest.fail "expected resolution"

let test_unknown_object () =
  let ns = N.create ~n_sites:3 in
  check_bool "unknown" true (N.resolve ns (oid 1) = None);
  check_bool "authoritative unknown" true (N.authoritative ns (oid 1) = None)

let test_move_updates_registry () =
  let ns = N.create ~n_sites:3 in
  let a = oid ~site:0 1 in
  N.register ns a;
  N.move ns a ~to_:2;
  check_bool "authoritative" true (N.authoritative ns a = Some 2);
  check_int "one move" 1 (N.moves ns)

let test_stale_hint_costs_hops () =
  let ns = N.create ~n_sites:3 in
  let a = oid ~site:0 1 in
  N.register ns a;
  N.move ns a ~to_:2;
  (* hint still points at the birth site: miss there is cheap (birth
     site answers directly) *)
  (match N.resolve ns a with
   | Some { N.site = 2; hops = 2; corrected } ->
     check_int "hint corrected" 2 (Oid.hint corrected)
   | _ -> Alcotest.fail "expected 2-hop resolution via birth site");
  (* a hint pointing at a third, wrong site costs the full 3 hops *)
  let stale = Oid.with_hint a 1 in
  (match N.resolve ns stale with
   | Some { N.hops = 3; site = 2; _ } -> ()
   | _ -> Alcotest.fail "expected 3-hop resolution");
  check_int "forwards counted" 2 (N.forwards ns)

let test_corrected_hint_is_direct () =
  let ns = N.create ~n_sites:4 in
  let a = oid ~site:0 5 in
  N.register ns a;
  N.move ns a ~to_:3;
  let corrected =
    match N.resolve ns a with Some r -> r.N.corrected | None -> Alcotest.fail "resolve"
  in
  match N.resolve ns corrected with
  | Some { N.hops = 1; site = 3; _ } -> ()
  | _ -> Alcotest.fail "corrected hint should resolve directly"

let test_move_unknown_rejected () =
  let ns = N.create ~n_sites:2 in
  Alcotest.check_raises "unknown move" (Invalid_argument "Name_service.move: unknown object")
    (fun () -> N.move ns (oid 9) ~to_:1)

let test_bad_site_rejected () =
  let ns = N.create ~n_sites:2 in
  let a = oid 1 in
  N.register ns a;
  Alcotest.check_raises "site range" (Invalid_argument "Name_service: site out of range")
    (fun () -> N.move ns a ~to_:5)

let test_multiple_moves () =
  let ns = N.create ~n_sites:4 in
  let a = oid ~site:0 1 in
  N.register ns a;
  N.move ns a ~to_:1;
  N.move ns a ~to_:2;
  N.move ns a ~to_:3;
  check_bool "latest wins" true (N.authoritative ns a = Some 3);
  check_int "cardinal" 1 (N.cardinal ns)

let test_register_at () =
  let ns = N.create ~n_sites:3 in
  let a = oid ~site:0 1 in
  N.register_at ns a ~site:2;
  check_bool "lives away from birth" true (N.authoritative ns a = Some 2)

let () =
  Alcotest.run "hf_naming"
    [
      ( "name service",
        [
          Alcotest.test_case "register and resolve" `Quick test_register_resolve;
          Alcotest.test_case "unknown object" `Quick test_unknown_object;
          Alcotest.test_case "move updates registry" `Quick test_move_updates_registry;
          Alcotest.test_case "stale hints cost hops" `Quick test_stale_hint_costs_hops;
          Alcotest.test_case "corrected hint is direct" `Quick test_corrected_hint_is_direct;
          Alcotest.test_case "move of unknown rejected" `Quick test_move_unknown_rejected;
          Alcotest.test_case "bad site rejected" `Quick test_bad_site_rejected;
          Alcotest.test_case "multiple moves" `Quick test_multiple_moves;
          Alcotest.test_case "register away from birth" `Quick test_register_at;
        ] );
    ]
