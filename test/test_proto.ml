(* Tests for the wire protocol: codec round-trips (including randomized
   messages), decode errors on corrupt input, framing over chunked
   streams, and the paper's ~40-byte query-message claim. *)

module Message = Hf_proto.Message
module Codec = Hf_proto.Codec
module Frame = Hf_proto.Frame
module Batch = Hf_proto.Batch

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let oid ?(site = 0) ?(hint = 0) serial =
  Hf_data.Oid.with_hint (Hf_data.Oid.make ~birth_site:site ~serial) hint

let flagship_program =
  Hf_query.Parser.parse_program
    "[ (Pointer, \"Reference\", ?X) ^^X ]* (Keyword, \"Distributed\", ?)"

let sample_deref =
  Message.Deref_request
    {
      query = { Message.originator = 2; serial = 17 };
      body = flagship_program;
      oid = oid ~site:1 ~hint:3 42;
      start = 2;
      iters = [| 5 |];
      credit = [ 3; 7 ];
    }

let roundtrip message =
  match Codec.decode (Codec.encode message) with
  | Ok decoded -> Message.equal message decoded
  | Error _ -> false

let test_roundtrip_deref () = check_bool "deref" true (roundtrip sample_deref)

let test_roundtrip_result_items () =
  let message =
    Message.Result
      {
        query = { Message.originator = 0; serial = 1 };
        payload = Message.Items [ oid 1; oid ~site:4 9 ];
        bindings =
          [ ("title", [ Hf_data.Value.str "First"; Hf_data.Value.blob "\x00\xffbits" ]);
            ("size", [ Hf_data.Value.num (-42); Hf_data.Value.real 3.25 ]);
          ];
        credit = [ 1 ];
      }
  in
  check_bool "result/items" true (roundtrip message)

let test_roundtrip_result_count () =
  let message =
    Message.Result
      {
        query = { Message.originator = 3; serial = 0 };
        payload = Message.Count 128;
        bindings = [];
        credit = [];
      }
  in
  check_bool "result/count" true (roundtrip message)

let test_roundtrip_credit_return () =
  let message =
    Message.Credit_return { query = { Message.originator = 1; serial = 2 }; credit = [ 0 ] }
  in
  check_bool "credit return" true (roundtrip message)

let batch_item ?(start = 0) ?(iters = [||]) serial = { Message.oid = oid serial; start; iters }

let sample_batch =
  Message.Work_batch
    [
      { Message.query = { Message.originator = 0; serial = 3 };
        body = flagship_program;
        items = [ batch_item 1; batch_item ~start:2 ~iters:[| 4; 1 |] 2; batch_item 9 ];
        credit = [ 5 ];
      };
      { Message.query = { Message.originator = 1; serial = 8 };
        body = Hf_query.Parser.parse_program "(Keyword, \"x\", ?)";
        items = [ batch_item 7 ];
        credit = [ 2; 2 ];
      };
    ]

let test_roundtrip_work_batch () = check_bool "work batch" true (roundtrip sample_batch)

let test_roundtrip_link_ack () = check_bool "link ack" true (roundtrip Message.Link_ack)

let test_roundtrip_site_unreachable () =
  check_bool "site unreachable" true
    (roundtrip
       (Message.Site_unreachable { query = { Message.originator = 1; serial = 9 }; dead = 4 }))

(* --- Cache messages (DESIGN.md §4g) --- *)

let sample_summary =
  let bloom = Hf_index.Bloom.create ~expected:32 ~fp_rate:0.01 in
  Hf_index.Bloom.add bloom "t:Keyword";
  Hf_index.Bloom.add bloom "t:Pointer";
  Hf_index.Bloom.to_string bloom

let test_roundtrip_cache_validate () =
  check_bool "cache validate" true
    (roundtrip
       (Message.Cache_validate { query = { Message.originator = 0; serial = 4 }; src = 2 }))

let test_roundtrip_cache_version () =
  let query = { Message.originator = 1; serial = 12 } in
  check_bool "with summary" true
    (roundtrip
       (Message.Cache_version
          { query; site = 2; version = 7; epoch = 3; summary = Some sample_summary }));
  check_bool "version only" true
    (roundtrip
       (Message.Cache_version { query; site = 0; version = 0; epoch = 0; summary = None }))

(* The summary epoch is load-bearing for the Bloofi staleness contract
   (a regression means the peer restarted), so pin it explicitly: exact
   round-trips under the traced (127) and reliability (126) envelopes,
   across the whole varint width range. *)
let test_cache_version_epoch_under_envelopes () =
  let query = { Message.originator = 5; serial = 9 } in
  let rel = { Codec.src = 2; seq = 11; ack = 10 } in
  List.iter
    (fun epoch ->
      List.iter
        (fun summary ->
          let message = Message.Cache_version { query; site = 1; version = 4; epoch; summary } in
          (* bare *)
          (match Codec.decode (Codec.encode message) with
           | Ok m -> check_bool "bare epoch" true (Message.equal message m)
           | Error e -> Alcotest.fail e);
          (* traced (127) *)
          (match Codec.decode_traced (Codec.encode ~span:3 message) with
           | Ok (m, span) ->
             check_bool "traced epoch" true (Message.equal message m && span = 3)
           | Error e -> Alcotest.fail e);
          (* reliability (126, which nests the traced form) *)
          match Codec.decode_enveloped (Codec.encode ~span:3 ~rel message) with
          | Ok (m, span, Some got) ->
            check_bool "enveloped epoch" true
              (Message.equal message m && span = 3 && got.Codec.seq = 11)
          | Ok _ -> Alcotest.fail "reliability envelope lost"
          | Error e -> Alcotest.fail e)
        [ None; Some sample_summary ])
    [ 0; 1; 127; 128; 16_384; 1_000_000_007 ]

(* Epoch-bearing frames fuzzed: flip a byte anywhere in a valid encoded
   Cache_version (bare and under each envelope) — the decoder must stay
   total, never raise. *)
let prop_cache_version_epoch_fuzz =
  QCheck2.Test.make ~name:"cache-version epoch: corrupted frames never raise" ~count:400
    QCheck2.Gen.(tup4 (int_range 0 1_000_000) (int_range 0 255) (int_range 0 64) (int_range 0 2))
    (fun (epoch, byte, pos, wrap) ->
      let message =
        Message.Cache_version
          {
            query = { Message.originator = 1; serial = 2 };
            site = 3;
            version = 5;
            epoch;
            summary = Some sample_summary;
          }
      in
      let encoded =
        match wrap with
        | 0 -> Codec.encode message
        | 1 -> Codec.encode ~span:7 message
        | _ -> Codec.encode ~span:7 ~rel:{ Codec.src = 0; seq = 1; ack = 0 } message
      in
      let corrupted = Bytes.of_string encoded in
      Bytes.set corrupted (pos mod Bytes.length corrupted) (Char.chr byte);
      let input = Bytes.to_string corrupted in
      let total f = match f input with Ok _ | Error _ -> true | exception _ -> false in
      total Codec.decode && total Codec.decode_traced && total Codec.decode_enveloped)

let cache_answer ?(start = 0) ?(iters = [||]) ~passed serial : Message.cache_answer =
  { oid = oid serial; start; iters; passed }

let test_roundtrip_cache_answers () =
  check_bool "cache answers" true
    (roundtrip
       (Message.Cache_answers
          {
            query = { Message.originator = 2; serial = 5 };
            src = 1;
            version = 3;
            answers =
              [ cache_answer ~passed:true 4;
                cache_answer ~start:2 ~iters:[| 1; 3 |] ~passed:false 9 ];
          }))

let test_roundtrip_query_done () =
  check_bool "query done" true
    (roundtrip (Message.Query_done { query = { Message.originator = 3; serial = 21 }; src = 3 }))

(* --- Scatter-gather messages (doc/execution_modes.md) --- *)

let sample_gather_node : Message.gather_node =
  {
    oid = oid ~site:1 ~hint:1 7;
    start = 2;
    passed = true;
    visited = [ 0; 1; 2 ];
    spawns = [ (oid ~site:3 ~hint:3 9, 1); (oid 4, 0) ];
    bindings = [ ("title", [ Hf_data.Value.str "Distributed" ]) ];
  }

let sample_scatter =
  Message.Scatter
    {
      query = { Message.originator = 2; serial = 17 };
      body = flagship_program;
      roots = [ oid ~site:1 1; oid ~site:1 ~hint:2 5 ];
      credit = [ 4; 9 ];
    }

let sample_gather =
  Message.Gather_result
    {
      query = { Message.originator = 2; serial = 17 };
      src = 1;
      nodes =
        [
          sample_gather_node;
          { oid = oid 11; start = 0; passed = false; visited = [];
            spawns = [ (oid ~site:2 3, 2) ]; bindings = [] };
        ];
      credit = [ 4 ];
    }

let test_roundtrip_scatter () =
  check_bool "scatter" true (roundtrip sample_scatter);
  (* no roots is legal: the receiver still evaluates every local object
     at each landing index of its speculation domain *)
  check_bool "rootless scatter" true
    (roundtrip
       (Message.Scatter
          { query = { Message.originator = 0; serial = 2 }; body = flagship_program;
            roots = []; credit = [ 0 ] }))

let test_roundtrip_gather () =
  check_bool "gather" true (roundtrip sample_gather);
  (* an empty node list is legal: nothing at that site was productive,
     but the credit aboard still has to come home *)
  check_bool "empty gather" true
    (roundtrip
       (Message.Gather_result
          { query = { Message.originator = 1; serial = 3 }; src = 4; nodes = []; credit = [ 2 ] }))

let test_scatter_under_envelopes () =
  (* tags 12/13 must compose with the traced (127) and reliability
     (126) envelopes like any other message *)
  let rel = { Codec.src = 2; seq = 11; ack = 10 } in
  List.iter
    (fun message ->
      match Codec.decode_enveloped (Codec.encode ~span:9 ~rel message) with
      | Ok (m, span, Some got) ->
          check_bool "message" true (Message.equal message m);
          check_int "span" 9 span;
          check_int "seq" 11 got.Codec.seq;
          check_int "ack" 10 got.Codec.ack
      | Ok _ -> Alcotest.fail "envelope lost"
      | Error e -> Alcotest.fail e)
    [ sample_scatter; sample_gather ]

(* --- stats messages (DESIGN.md §4i): credit-free control plane ------- *)

let sample_stats_report =
  Message.Stats_report
    {
      src = 2;
      token = 9;
      stats =
        [
          { Message.name = "hf.server.work_messages"; value = Message.Stat_counter 41 };
          { Message.name = "hf.server.queries_running"; value = Message.Stat_gauge 2.5 };
          { Message.name = "hf.server.queue_wait_s";
            value =
              Message.Stat_histogram
                { count = 5; sum = 1.25; vmin = 0.01; vmax = 0.9; buckets = [ (3, 2); (7, 3) ] };
          };
        ];
    }

let test_roundtrip_stats () =
  check_bool "stats pull" true (roundtrip (Message.Stats_pull { src = 4; token = 123 }));
  check_bool "stats report" true (roundtrip sample_stats_report);
  (* an empty snapshot is legal: a site can answer before registering
     anything *)
  check_bool "empty report" true
    (roundtrip (Message.Stats_report { src = 0; token = 0; stats = [] }))

let test_stats_under_envelopes () =
  (* stats ride the same wire as query traffic, so they must compose
     with the traced and reliability envelopes like any other message *)
  let rel = { Codec.src = 1; seq = 7; ack = 6 } in
  let encoded = Codec.encode ~span:33 ~rel sample_stats_report in
  (match Codec.decode_enveloped encoded with
  | Ok (m, span, Some got) ->
      check_bool "message" true (Message.equal sample_stats_report m);
      check_int "span" 33 span;
      check_int "seq" 7 got.Codec.seq
  | Ok _ -> Alcotest.fail "envelope lost"
  | Error e -> Alcotest.fail e);
  match Codec.decode (Codec.encode ~span:5 (Message.Stats_pull { src = 4; token = 1 })) with
  | Ok m -> check_bool "pull under traced envelope" true (Message.equal m (Message.Stats_pull { src = 4; token = 1 }))
  | Error e -> Alcotest.fail e

let test_stats_carry_no_query () =
  (* pure control plane: charging one to a query is a programming error *)
  check_bool "stats_pull has no query" true
    (match Message.query_of (Message.Stats_pull { src = 0; token = 0 }) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "stats_report has no query" true
    (match Message.query_of sample_stats_report with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_cache_answers_empty_rejected () =
  (* An empty answer list must not encode... *)
  (try
     ignore
       (Codec.encode
          (Message.Cache_answers
             { query = { Message.originator = 0; serial = 1 }; src = 0; version = 0;
               answers = [] }));
     Alcotest.fail "empty Cache_answers encoded"
   with Invalid_argument _ -> ());
  (* ...and crafted empty-answer bytes must not decode (tag 8, query
     0/1, src 0, version 0, zero answers). *)
  match Codec.decode "\x08\x00\x01\x00\x00\x00" with
  | Ok _ -> Alcotest.fail "empty Cache_answers accepted"
  | Error _ -> ()

let test_envelope_roundtrip () =
  let rel = { Codec.src = 3; seq = 41; ack = 40 } in
  let encoded = Codec.encode ~span:7 ~rel sample_deref in
  (match Codec.decode_enveloped encoded with
   | Ok (message, span, Some got) ->
     check_bool "message" true (Message.equal message sample_deref);
     check_int "span" 7 span;
     check_int "src" 3 got.Codec.src;
     check_int "seq" 41 got.Codec.seq;
     check_int "ack" 40 got.Codec.ack
   | Ok (_, _, None) -> Alcotest.fail "reliability envelope lost"
   | Error err -> Alcotest.fail err);
  (* the plain decoders accept (and discard) both envelopes *)
  check_bool "decode" true
    (match Codec.decode encoded with
     | Ok m -> Message.equal m sample_deref
     | Error _ -> false);
  check_bool "decode_traced" true
    (match Codec.decode_traced encoded with
     | Ok (m, span) -> span = 7 && Message.equal m sample_deref
     | Error _ -> false)

let test_envelope_absent_is_plain () =
  let plain = Codec.encode sample_deref in
  match Codec.decode_enveloped plain with
  | Ok (m, 0, None) -> check_bool "message" true (Message.equal m sample_deref)
  | Ok _ -> Alcotest.fail "phantom envelope on plain bytes"
  | Error err -> Alcotest.fail err

let test_work_batch_empty_rejected () =
  (* An empty group list must not encode... *)
  (try
     ignore (Codec.encode (Message.Work_batch []));
     Alcotest.fail "empty Work_batch encoded"
   with Invalid_argument _ -> ());
  (* ...and a crafted empty batch (tag 3, zero groups) must not decode. *)
  match Codec.decode "\x03\x00" with
  | Ok _ -> Alcotest.fail "empty work batch accepted"
  | Error _ -> ()

let test_batch_amortization () =
  (* One batch of N same-query items beats N singleton requests: the
     program and query header are sent once. *)
  let query = { Message.originator = 2; serial = 17 } in
  let n = 8 in
  let serials = List.init n (fun i -> 40 + i) in
  let batched =
    Message.Work_batch
      [ { Message.query; body = flagship_program;
          items = List.map (fun s -> batch_item ~iters:[| 5 |] s) serials;
          credit = [ 3 ] } ]
  in
  let singles =
    List.map
      (fun s ->
        Message.Deref_request
          { query; body = flagship_program; oid = oid s; start = 0; iters = [| 5 |];
            credit = [ 3 ] })
      serials
  in
  let single_bytes =
    List.fold_left (fun acc m -> acc + Codec.encoded_size m) 0 singles
  in
  let batch_bytes = Codec.encoded_size batched in
  check_bool
    (Printf.sprintf "batch %dB < %d singles %dB" batch_bytes n single_bytes)
    true
    (batch_bytes < single_bytes)

(* --- Batch buffer semantics --- *)

let test_batch_policy_k1 () =
  let b = Batch.create (Batch.Flush_at 1) in
  Alcotest.(check (option (list int))) "immediate flush" (Some [ 7 ]) (Batch.push b ~dst:2 7);
  check_int "nothing pending" 0 (Batch.pending b)

let test_batch_policy_k3 () =
  let b = Batch.create (Batch.Flush_at 3) in
  Alcotest.(check (option (list int))) "1st buffered" None (Batch.push b ~dst:0 1);
  Alcotest.(check (option (list int))) "other dst separate" None (Batch.push b ~dst:1 9);
  Alcotest.(check (option (list int))) "2nd buffered" None (Batch.push b ~dst:0 2);
  Alcotest.(check (option (list int)))
    "3rd flushes oldest-first" (Some [ 1; 2; 3 ]) (Batch.push b ~dst:0 3);
  check_int "dst 0 cleared" 0 (Batch.pending_for b ~dst:0);
  check_int "dst 1 untouched" 1 (Batch.pending_for b ~dst:1);
  Alcotest.(check (list (pair int (list int))))
    "flush_all drains leftovers" [ (1, [ 9 ]) ] (Batch.flush_all b);
  check_int "empty after flush_all" 0 (Batch.pending b)

let test_batch_policy_drain () =
  let b = Batch.create Batch.Flush_on_drain in
  for i = 1 to 50 do
    Alcotest.(check (option (list int)))
      "never flushes on size" None (Batch.push b ~dst:(i mod 2) i)
  done;
  check_int "all pending" 50 (Batch.pending b);
  let flushed = Batch.flush_all b in
  Alcotest.(check (list int)) "ascending dsts" [ 0; 1 ] (List.map fst flushed);
  check_int "all drained" 50 (List.length (List.concat_map snd flushed))

let test_batch_bad_policy () =
  (try
     ignore (Batch.create (Batch.Flush_at 0));
     Alcotest.fail "Flush_at 0 accepted"
   with Invalid_argument _ -> ());
  try
    Batch.validate_policy (Batch.Flush_at (-3));
    Alcotest.fail "Flush_at -3 accepted"
  with Invalid_argument _ -> ()

let test_decode_truncated () =
  let encoded = Codec.encode sample_deref in
  for cut = 0 to String.length encoded - 1 do
    match Codec.decode (String.sub encoded 0 cut) with
    | Ok _ -> Alcotest.failf "truncation at %d accepted" cut
    | Error _ -> ()
  done

let test_decode_trailing_garbage () =
  match Codec.decode (Codec.encode sample_deref ^ "x") with
  | Ok _ -> Alcotest.fail "trailing bytes accepted"
  | Error message -> check_bool "mentions trailing" true (String.length message > 0)

let test_decode_bad_tag () =
  match Codec.decode "\xff" with
  | Ok _ -> Alcotest.fail "bad tag accepted"
  | Error _ -> ()

let test_decode_empty () =
  match Codec.decode "" with Ok _ -> Alcotest.fail "empty accepted" | Error _ -> ()

let test_query_message_size_regime () =
  (* "Our messages send only the query (about 40 bytes for the
     experiments presented here)". *)
  let size = Codec.encoded_size sample_deref in
  check_bool (Printf.sprintf "size %d in tens of bytes" size) true (size >= 30 && size <= 90)

(* --- Randomized round-trips --- *)

let gen_value =
  QCheck2.Gen.(
    oneof
      [
        map (fun s -> Hf_data.Value.str s) string_small;
        map (fun n -> Hf_data.Value.num n) int;
        map (fun f -> Hf_data.Value.real f) (float_range (-1000.0) 1000.0);
        map2
          (fun site serial -> Hf_data.Value.ptr (oid ~site ~hint:site serial))
          (int_range 0 20) (int_range 0 1000);
        map (fun s -> Hf_data.Value.blob s) string_small;
      ])

let gen_pattern =
  QCheck2.Gen.(
    oneof
      [
        return Hf_query.Pattern.Any;
        map (fun v -> Hf_query.Pattern.Exact v) gen_value;
        map (fun s -> Hf_query.Pattern.Glob s) string_small;
        map
          (fun (a, b) -> Hf_query.Pattern.Range (min a b, max a b))
          (pair (int_range (-50) 50) (int_range (-50) 50));
        map (fun s -> Hf_query.Pattern.Bind ("v" ^ s)) (string_size ~gen:(char_range 'a' 'z') (int_range 0 5));
        map (fun s -> Hf_query.Pattern.Use ("v" ^ s)) (string_size ~gen:(char_range 'a' 'z') (int_range 0 5));
      ])

let gen_filter =
  QCheck2.Gen.(
    oneof
      [
        map3
          (fun t k d -> Hf_query.Filter.Select { ttype = t; key = k; data = d })
          gen_pattern gen_pattern gen_pattern;
        map2
          (fun var keep ->
            Hf_query.Filter.Deref
              { var = "v" ^ var;
                mode = (if keep then Hf_query.Filter.Keep_parent else Hf_query.Filter.Replace);
              })
          (string_size ~gen:(char_range 'a' 'z') (int_range 0 4))
          bool;
        map2
          (fun k target -> Hf_query.Filter.Retrieve { ttype = Hf_query.Pattern.Any; key = k; target = "t" ^ target })
          gen_pattern
          (string_size ~gen:(char_range 'a' 'z') (int_range 0 4));
      ])

(* A structurally valid program: iterators inserted with body_start <=
   own index. *)
let gen_program =
  QCheck2.Gen.(
    bind (list_size (int_range 0 6) gen_filter) (fun filters ->
        bind (int_range 0 3) (fun add_iters ->
            let rec add n filters =
              if n = 0 then return filters
              else
                bind (int_range 0 (List.length filters)) (fun body_start ->
                    bind (oneof [ return Hf_query.Filter.Star; map (fun k -> Hf_query.Filter.Finite k) (int_range 1 5) ])
                      (fun count ->
                        add (n - 1)
                          (filters @ [ Hf_query.Filter.iter ~body_start ~count ])))
            in
            map (fun fs -> Hf_query.Program.of_filters fs) (add add_iters filters))))

let gen_query_id =
  QCheck2.Gen.(map2 (fun o s -> { Message.originator = o; serial = s }) (int_range 0 30) (int_range 0 1000))

let gen_credit = QCheck2.Gen.(list_size (int_range 0 5) (int_range 0 80))

let gen_message =
  QCheck2.Gen.(
    oneof
      [
        (let* query = gen_query_id in
         let* body = gen_program in
         let* site = int_range 0 10 in
         let* serial = int_range 0 500 in
         let* start = int_range 0 10 in
         let* iters = array_size (int_range 0 3) (int_range 1 20) in
         let* credit = gen_credit in
         return
           (Message.Deref_request
              { query; body; oid = oid ~site ~hint:site serial; start; iters; credit }));
        (let* query = gen_query_id in
         let* use_count = bool in
         let* payload =
           if use_count then map (fun n -> Message.Count n) (int_range 0 500)
           else
             map
               (fun serials -> Message.Items (List.map (fun s -> oid s) serials))
               (list_size (int_range 0 6) (int_range 0 100))
         in
         let* bindings =
           list_size (int_range 0 3)
             (pair
                (map (fun s -> "t" ^ s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 4)))
                (list_size (int_range 0 3) gen_value))
         in
         let* credit = gen_credit in
         return (Message.Result { query; payload; bindings; credit }));
        (let* query = gen_query_id in
         let* credit = gen_credit in
         return (Message.Credit_return { query; credit }));
        (let gen_batch_item =
           let* site = int_range 0 10 in
           let* serial = int_range 0 500 in
           let* start = int_range 0 10 in
           let* iters = array_size (int_range 0 3) (int_range 1 20) in
           return { Message.oid = oid ~site ~hint:site serial; start; iters }
         in
         let gen_group =
           let* query = gen_query_id in
           let* body = gen_program in
           let* items = list_size (int_range 1 5) gen_batch_item in
           let* credit = gen_credit in
           return { Message.query; body; items; credit }
         in
         map (fun groups -> Message.Work_batch groups) (list_size (int_range 1 4) gen_group));
        return Message.Link_ack;
        (let* query = gen_query_id in
         let* dead = int_range 0 15 in
         return (Message.Site_unreachable { query; dead }));
        (let* query = gen_query_id in
         let* src = int_range 0 15 in
         return (Message.Cache_validate { query; src }));
        (let* query = gen_query_id in
         let* site = int_range 0 15 in
         let* version = int_range 0 10_000 in
         let* epoch = int_range 0 1_000 in
         let* summary =
           oneof
             [ return None;
               map
                 (fun keys ->
                   let bloom =
                     Hf_index.Bloom.create ~expected:(1 + List.length keys) ~fp_rate:0.02
                   in
                   List.iter (Hf_index.Bloom.add bloom) keys;
                   Some (Hf_index.Bloom.to_string bloom))
                 (list_size (int_range 0 8) string_small);
             ]
         in
         return (Message.Cache_version { query; site; version; epoch; summary }));
        (let gen_answer =
           let* site = int_range 0 10 in
           let* serial = int_range 0 500 in
           let* start = int_range 0 10 in
           let* iters = array_size (int_range 0 3) (int_range 1 20) in
           let* passed = bool in
           return
             ({ oid = oid ~site ~hint:site serial; start; iters; passed }
               : Message.cache_answer)
         in
         let* query = gen_query_id in
         let* src = int_range 0 15 in
         let* version = int_range 0 10_000 in
         let* answers = list_size (int_range 1 5) gen_answer in
         return (Message.Cache_answers { query; src; version; answers }));
        (let* query = gen_query_id in
         let* src = int_range 0 15 in
         return (Message.Query_done { query; src }));
        (let* query = gen_query_id in
         let* body = gen_program in
         let* roots =
           list_size (int_range 0 5)
             (map2 (fun site serial -> oid ~site ~hint:site serial) (int_range 0 10)
                (int_range 0 500))
         in
         let* credit = gen_credit in
         return (Message.Scatter { query; body; roots; credit }));
        (let gen_node =
           let* site = int_range 0 10 in
           let* serial = int_range 0 500 in
           let* start = int_range 0 10 in
           let* passed = bool in
           let* visited =
             map (List.sort_uniq Int.compare) (list_size (int_range 0 5) (int_range 0 12))
           in
           let* spawns =
             list_size (int_range 0 3)
               (pair (map (fun s -> oid s) (int_range 0 300)) (int_range 0 8))
           in
           let* bindings =
             list_size (int_range 0 2)
               (pair
                  (map (fun s -> "t" ^ s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 4)))
                  (list_size (int_range 0 3) gen_value))
           in
           return
             ({ Message.oid = oid ~site ~hint:site serial; start; passed; visited; spawns;
                bindings }
               : Message.gather_node)
         in
         let* query = gen_query_id in
         let* src = int_range 0 15 in
         let* nodes = list_size (int_range 0 4) gen_node in
         let* credit = gen_credit in
         return (Message.Gather_result { query; src; nodes; credit }));
        (let* src = int_range 0 15 in
         let* token = int_range 0 10_000 in
         return (Message.Stats_pull { src; token }));
        (let gen_stat_value =
           oneof
             [
               map (fun n -> Message.Stat_counter n) (int_range 0 1_000_000);
               map (fun g -> Message.Stat_gauge g) (float_range (-1000.0) 1000.0);
               (let* count = int_range 0 500 in
                let* sum = float_range 0.0 1000.0 in
                let* vmin = float_range 0.0 10.0 in
                let* vmax = float_range 10.0 1000.0 in
                let* buckets =
                  map
                    (fun cells ->
                      (* canonical wire shape: ascending unique indices *)
                      List.sort_uniq (fun (i, _) (j, _) -> Int.compare i j) cells)
                    (list_size (int_range 0 5) (pair (int_range 0 40) (int_range 1 50)))
                in
                return (Message.Stat_histogram { count; sum; vmin; vmax; buckets }));
             ]
         in
         let gen_stat =
           let* name =
             map (fun s -> "hf.t." ^ s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
           in
           let* value = gen_stat_value in
           return { Message.name; value }
         in
         let* src = int_range 0 15 in
         let* token = int_range 0 10_000 in
         let* stats = list_size (int_range 0 5) gen_stat in
         return (Message.Stats_report { src; token; stats }));
      ])

let prop_message_roundtrip =
  QCheck2.Test.make ~name:"codec round-trip on random messages" ~count:500 gen_message roundtrip

let prop_truncation_rejected =
  QCheck2.Test.make ~name:"codec rejects every strict prefix" ~count:100 gen_message
    (fun message ->
      let encoded = Codec.encode message in
      let ok = ref true in
      for cut = 0 to String.length encoded - 1 do
        match Codec.decode (String.sub encoded 0 cut) with
        | Ok _ -> ok := false
        | Error _ -> ()
      done;
      !ok)

(* Arbitrary bytes must come back as [Error], never an exception — the
   decoder faces the network.  Exercised both bare and under each
   envelope wrapper (tags 126/127), so envelope parsing is fuzzed
   too. *)
let prop_garbage_never_raises =
  QCheck2.Test.make ~name:"decoder total on garbage bytes" ~count:500
    QCheck2.Gen.(pair (string_size (int_range 0 64)) (int_range 0 2))
    (fun (bytes, wrap) ->
      let input =
        match wrap with
        | 0 -> bytes
        | 1 -> "\x7f" ^ bytes (* traced envelope tag *)
        | _ -> "\x7e" ^ bytes (* reliability envelope tag *)
      in
      let total f = match f input with Ok _ | Error _ -> true | exception _ -> false in
      total Codec.decode
      && total Codec.decode_traced
      && total Codec.decode_enveloped
      &&
      (* Bloom summaries ride Cache_version as opaque strings; their
         parser must be total too. *)
      match Hf_index.Bloom.of_string bytes with
      | Some _ | None -> true
      | exception _ -> false)

(* --- Reliable link state machine --- *)

module Reliable = Hf_proto.Reliable

let rcfg =
  {
    Reliable.ack_timeout = 1.0;
    backoff = 2.0;
    max_timeout = 4.0;
    max_retries = 2;
    ack_delay = 0.1;
  }

let test_reliable_sequencing () =
  let l = Reliable.create rcfg in
  check_int "first seq" 1 (Reliable.send l ~now:0.0 "a");
  check_int "second seq" 2 (Reliable.send l ~now:0.1 "b");
  check_int "third seq" 3 (Reliable.send l ~now:0.2 "c");
  check_int "in flight" 3 (Reliable.in_flight l);
  let latencies = Reliable.on_ack l ~now:0.5 2 in
  check_int "two acked" 2 (List.length latencies);
  check_bool "latencies measured from first send" true
    (List.sort compare latencies = [ 0.4; 0.5 ]);
  check_int "one left" 1 (Reliable.in_flight l);
  check_int "stale ack is idempotent" 0 (List.length (Reliable.on_ack l ~now:0.6 2))

let test_reliable_dedup () =
  let l = Reliable.create rcfg in
  check_bool "1 fresh" true (Reliable.receive l ~now:0.0 ~seq:1 = `Fresh);
  check_bool "1 again = dup" true (Reliable.receive l ~now:0.1 ~seq:1 = `Duplicate);
  check_bool "3 out of order = fresh" true (Reliable.receive l ~now:0.2 ~seq:3 = `Fresh);
  check_bool "3 again = dup" true (Reliable.receive l ~now:0.3 ~seq:3 = `Duplicate);
  check_int "cum stops at the gap" 1 (Reliable.take_ack l);
  check_bool "2 fills the gap" true (Reliable.receive l ~now:0.4 ~seq:2 = `Fresh);
  check_int "cum catches up" 3 (Reliable.take_ack l);
  check_int "dup count" 2 (Reliable.duplicates l)

let test_reliable_retransmit_backoff () =
  let l = Reliable.create rcfg in
  ignore (Reliable.send l ~now:0.0 "a");
  check_bool "armed at ack_timeout" true (Reliable.next_deadline l = Some 1.0);
  check_bool "quiet before the deadline" true (Reliable.poll l ~now:0.5 = []);
  (match Reliable.poll l ~now:1.0 with
   | [ Reliable.Retransmit [ (1, "a") ] ] -> ()
   | _ -> Alcotest.fail "expected a retransmission at the deadline");
  check_bool "timeout doubled" true (Reliable.next_deadline l = Some 3.0);
  check_int "counted" 1 (Reliable.retransmitted l);
  (* progress resets the backoff *)
  ignore (Reliable.on_ack l ~now:3.0 1);
  ignore (Reliable.send l ~now:4.0 "b");
  check_bool "backoff reset by the ack" true (Reliable.next_deadline l = Some 5.0)

let test_reliable_give_up () =
  let l = Reliable.create rcfg in
  ignore (Reliable.send l ~now:0.0 "a");
  ignore (Reliable.poll l ~now:2.0);
  ignore (Reliable.poll l ~now:10.0);
  (match Reliable.poll l ~now:20.0 with
   | [ Reliable.Give_up [ (1, "a") ] ] -> ()
   | _ -> Alcotest.fail "expected give-up once the retry cap fired");
  check_bool "unreachable" true (Reliable.unreachable l);
  Alcotest.check_raises "send refused" (Invalid_argument "Reliable.send: link unreachable")
    (fun () -> ignore (Reliable.send l ~now:21.0 "b"))

let test_reliable_delayed_ack () =
  let l = Reliable.create rcfg in
  check_bool "nothing owed" true (not (Reliable.ack_owed l));
  ignore (Reliable.receive l ~now:0.0 ~seq:1);
  check_bool "owed" true (Reliable.ack_owed l);
  check_bool "ack deadline armed" true (Reliable.next_deadline l = Some 0.1);
  check_bool "piggyback window still open" true (Reliable.poll l ~now:0.05 = []);
  (match Reliable.poll l ~now:0.1 with
   | [ Reliable.Send_ack ] -> ()
   | _ -> Alcotest.fail "expected a standalone ack");
  check_int "cumulative value" 1 (Reliable.take_ack l);
  check_bool "cleared" true (not (Reliable.ack_owed l));
  check_bool "idle" true (Reliable.next_deadline l = None)

let test_reliable_validate () =
  let rejects config =
    match Reliable.validate config with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "zero timeout" true (rejects { rcfg with Reliable.ack_timeout = 0.0 });
  check_bool "backoff below 1" true (rejects { rcfg with Reliable.backoff = 0.5 });
  check_bool "cap below initial" true (rejects { rcfg with Reliable.max_timeout = 0.5 });
  check_bool "negative retries" true (rejects { rcfg with Reliable.max_retries = -1 });
  check_bool "negative ack delay" true (rejects { rcfg with Reliable.ack_delay = -0.1 });
  Reliable.validate Reliable.default

(* Drive a sender/receiver pair over a channel that drops both data and
   acks from a deterministic pseudo-random schedule: every message must
   come out exactly once — retransmission covers the losses, dedup
   covers the redeliveries. *)
let prop_reliable_lossy_exactly_once =
  QCheck2.Test.make ~name:"lossy channel delivers exactly once" ~count:100
    QCheck2.Gen.(triple (int_range 1 25) (int_range 0 1_000_000) (int_range 0 60))
    (fun (n, seed, drop_pct) ->
      let cfg =
        {
          Reliable.ack_timeout = 1.0;
          backoff = 1.5;
          max_timeout = 8.0;
          max_retries = 200;
          ack_delay = 0.2;
        }
      in
      let s = Reliable.create cfg and r = Reliable.create cfg in
      let state = ref (seed + 1) in
      let drop () =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state mod 100 < drop_pct
      in
      let delivered = Array.make (n + 1) 0 in
      let attempt now seq =
        if not (drop ()) then begin
          (match Reliable.receive r ~now ~seq with
           | `Fresh -> delivered.(seq) <- delivered.(seq) + 1
           | `Duplicate -> ());
          (* the receiver acks immediately; the ack may be lost too *)
          let ack = Reliable.take_ack r in
          if not (drop ()) then ignore (Reliable.on_ack s ~now ack)
        end
      in
      let now = ref 0.0 in
      for i = 1 to n do
        attempt !now (Reliable.send s ~now:!now i)
      done;
      let complete = ref true in
      let guard = ref 0 in
      while Reliable.in_flight s > 0 && !complete && !guard < 10_000 do
        incr guard;
        (match Reliable.next_deadline s with
         | Some d -> now := Float.max !now d
         | None -> ());
        List.iter
          (function
            | Reliable.Retransmit entries ->
              List.iter (fun (seq, _) -> attempt !now seq) entries
            | Reliable.Send_ack -> ()
            | Reliable.Give_up _ -> complete := false)
          (Reliable.poll s ~now:!now)
      done;
      !complete
      && Reliable.in_flight s = 0
      && Array.for_all (fun count -> count <= 1) delivered
      &&
      let all = ref true in
      for i = 1 to n do
        if delivered.(i) <> 1 then all := false
      done;
      !all)

(* --- Framing --- *)

let test_frame_roundtrip () =
  let payloads = [ "alpha"; ""; String.make 1000 'x' ] in
  let stream = String.concat "" (List.map Frame.frame payloads) in
  let decoder = Frame.Decoder.create () in
  Frame.Decoder.feed decoder stream;
  Alcotest.(check (list string)) "all frames" payloads (Frame.Decoder.drain decoder)

let test_frame_chunked_feeding () =
  let payloads = [ "hello"; "world!"; "third frame" ] in
  let stream = String.concat "" (List.map Frame.frame payloads) in
  let decoder = Frame.Decoder.create () in
  let collected = ref [] in
  (* feed one byte at a time, as a pathological TCP stream would *)
  String.iter
    (fun c ->
      Frame.Decoder.feed decoder (String.make 1 c);
      collected := !collected @ Frame.Decoder.drain decoder)
    stream;
  Alcotest.(check (list string)) "reassembled" payloads !collected

let test_frame_partial_pending () =
  let decoder = Frame.Decoder.create () in
  Frame.Decoder.feed decoder (String.sub (Frame.frame "abcdef") 0 5);
  check_bool "incomplete" true (Frame.Decoder.next decoder = None);
  check_int "buffered" 5 (Frame.Decoder.buffered_bytes decoder)

let test_frame_oversize_rejected () =
  Alcotest.check_raises "oversize frame" (Frame.Frame_error "incoming frame too large")
    (fun () ->
      let decoder = Frame.Decoder.create () in
      Frame.Decoder.feed decoder "\xff\xff\xff\xff";
      ignore (Frame.Decoder.next decoder))

let prop_frame_roundtrip_chunked =
  QCheck2.Test.make ~name:"framing survives arbitrary chunking" ~count:200
    QCheck2.Gen.(pair (list_size (int_range 0 5) string_small) (int_range 1 7))
    (fun (payloads, chunk) ->
      let stream = String.concat "" (List.map Frame.frame payloads) in
      let decoder = Frame.Decoder.create () in
      let collected = ref [] in
      let i = ref 0 in
      while !i < String.length stream do
        let len = min chunk (String.length stream - !i) in
        Frame.Decoder.feed decoder (String.sub stream !i len);
        collected := !collected @ Frame.Decoder.drain decoder;
        i := !i + len
      done;
      !collected = payloads)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "hf_proto"
    [
      ( "codec",
        [
          Alcotest.test_case "deref round-trip" `Quick test_roundtrip_deref;
          Alcotest.test_case "result/items round-trip" `Quick test_roundtrip_result_items;
          Alcotest.test_case "result/count round-trip" `Quick test_roundtrip_result_count;
          Alcotest.test_case "credit-return round-trip" `Quick test_roundtrip_credit_return;
          Alcotest.test_case "work-batch round-trip" `Quick test_roundtrip_work_batch;
          Alcotest.test_case "link-ack round-trip" `Quick test_roundtrip_link_ack;
          Alcotest.test_case "site-unreachable round-trip" `Quick
            test_roundtrip_site_unreachable;
          Alcotest.test_case "cache-validate round-trip" `Quick test_roundtrip_cache_validate;
          Alcotest.test_case "cache-version round-trip" `Quick test_roundtrip_cache_version;
          Alcotest.test_case "cache-version epoch under both envelopes" `Quick
            test_cache_version_epoch_under_envelopes;
          qtest prop_cache_version_epoch_fuzz;
          Alcotest.test_case "cache-answers round-trip" `Quick test_roundtrip_cache_answers;
          Alcotest.test_case "query-done round-trip" `Quick test_roundtrip_query_done;
          Alcotest.test_case "scatter round-trip" `Quick test_roundtrip_scatter;
          Alcotest.test_case "gather-result round-trip" `Quick test_roundtrip_gather;
          Alcotest.test_case "scatter under both envelopes" `Quick test_scatter_under_envelopes;
          Alcotest.test_case "stats round-trips" `Quick test_roundtrip_stats;
          Alcotest.test_case "stats under both envelopes" `Quick test_stats_under_envelopes;
          Alcotest.test_case "stats carry no query" `Quick test_stats_carry_no_query;
          Alcotest.test_case "empty cache answers rejected" `Quick
            test_cache_answers_empty_rejected;
          Alcotest.test_case "reliability envelope round-trip" `Quick test_envelope_roundtrip;
          Alcotest.test_case "no envelope = plain bytes" `Quick test_envelope_absent_is_plain;
          Alcotest.test_case "empty work batch rejected" `Quick test_work_batch_empty_rejected;
          Alcotest.test_case "batch amortizes headers" `Quick test_batch_amortization;
          Alcotest.test_case "truncation rejected" `Quick test_decode_truncated;
          Alcotest.test_case "trailing bytes rejected" `Quick test_decode_trailing_garbage;
          Alcotest.test_case "bad tag rejected" `Quick test_decode_bad_tag;
          Alcotest.test_case "empty rejected" `Quick test_decode_empty;
          Alcotest.test_case "~40-byte query messages" `Quick test_query_message_size_regime;
          qtest prop_message_roundtrip;
          qtest prop_truncation_rejected;
          qtest prop_garbage_never_raises;
        ] );
      ( "frame",
        [
          Alcotest.test_case "round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "chunked feeding" `Quick test_frame_chunked_feeding;
          Alcotest.test_case "partial pending" `Quick test_frame_partial_pending;
          Alcotest.test_case "oversize rejected" `Quick test_frame_oversize_rejected;
          qtest prop_frame_roundtrip_chunked;
        ] );
      ( "reliable link",
        [
          Alcotest.test_case "sequencing and cumulative acks" `Quick test_reliable_sequencing;
          Alcotest.test_case "receiver dedup" `Quick test_reliable_dedup;
          Alcotest.test_case "retransmit with backoff" `Quick test_reliable_retransmit_backoff;
          Alcotest.test_case "give-up at the retry cap" `Quick test_reliable_give_up;
          Alcotest.test_case "delayed standalone ack" `Quick test_reliable_delayed_ack;
          Alcotest.test_case "config validation" `Quick test_reliable_validate;
          qtest prop_reliable_lossy_exactly_once;
        ] );
      ( "batch buffer",
        [
          Alcotest.test_case "K=1 flushes every push" `Quick test_batch_policy_k1;
          Alcotest.test_case "K=3 fires at three, per destination" `Quick test_batch_policy_k3;
          Alcotest.test_case "drain policy never fires on size" `Quick test_batch_policy_drain;
          Alcotest.test_case "bad policies rejected" `Quick test_batch_bad_policy;
        ] );
    ]
