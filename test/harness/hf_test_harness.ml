(* Shared differential-test harness: the random logical corpus, the
   single-store oracle, the configuration cube {batching} x
   {reliability} x {loss}, and the simulated-cluster / TCP loaders.
   The cache, scatter, concurrency and bloofi suites all drive the same
   machinery from here — one copy instead of a near-identical block per
   suite. *)

module Oid = Hf_data.Oid
module Tuple = Hf_data.Tuple
module Store = Hf_data.Store
module Cluster = Hf_server.Cluster
module Tcp = Hf_net.Tcp_site

(* --- The random logical corpus -------------------------------------- *)

(* [n] objects placed across sites, pointer edges under keys R/S, a
   "hot" keyword on about half.  [hot] is mutable so update-interleaving
   tests can flip it and re-derive the oracle. *)
type dataset = {
  n : int;
  placement : int array; (* logical -> site *)
  edges : (int * string * int) list;
  hot : bool array;
}

let random_dataset prng ~n_sites =
  let n = 4 + Hf_util.Prng.next_int prng 20 in
  let placement = Array.init n (fun _ -> Hf_util.Prng.next_int prng n_sites) in
  let n_edges = Hf_util.Prng.next_int prng (3 * n) in
  let keys = [| "R"; "S" |] in
  let edges =
    List.init n_edges (fun _ ->
        ( Hf_util.Prng.next_int prng n,
          Hf_util.Prng.pick prng keys,
          Hf_util.Prng.next_int prng n ))
  in
  let hot = Array.init n (fun _ -> Hf_util.Prng.next_bool prng 0.5) in
  { n; placement; edges; hot }

let tuples_of ds oids i =
  let pointers =
    List.filter_map
      (fun (src, key, dst) -> if src = i then Some (Tuple.pointer ~key oids.(dst)) else None)
      ds.edges
  in
  [ Tuple.number ~key:"id" i ]
  @ (if ds.hot.(i) then [ Tuple.keyword "hot" ] else [])
  @ pointers

(* One-hop programs ship items whose remaining suffix is deref-free, so
   they exercise caching and pruning; the closure shapes are never
   cacheable and pin down the no-regression path. *)
let cache_queries =
  [
    (* cacheable after the ship *)
    "(Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)";
    "(Pointer, \"S\", ?X) ^^X (Number, \"id\", 0..9)";
    "(Pointer, \"R\", ?X) ^X (?, ?, ?)";
    "(Pointer, \"R\", ?X) ^^X (Number, \"id\", ->ids)";
    (* not cacheable (the loop can deref again past the ship point) *)
    "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)";
    "[ (Pointer, \"R\", ?X) ^^X (Pointer, \"S\", ?Y) ^^Y ]^2 (Number, \"id\", 0..9)";
  ]

(* Scatter-eligible chains, a finite-iterator one the planner must
   decline (exercising the ineligible path inside a cube), and a
   binding-emitting one so gathered bindings are compared too. *)
let scatter_queries =
  [
    "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)";
    "(Pointer, \"S\", ?X) ^^X (Keyword, \"hot\", ?)";
    "[ (Pointer, \"R\", ?X) ^^X ]^3 (Keyword, \"hot\", ?)";
    "[ (Pointer, \"R\", ?X) ^^X ]* (Number, \"id\", ->ids)";
  ]

(* The deterministic corpus the concurrency battery uses: a ring of [n]
   objects over the sites, keyword on every third, a numeric id on each
   — identical construction on the sim cluster and the TCP sites, so
   solo answers are comparable. *)
let ring_tuples oids n i =
  [ Tuple.pointer ~key:"R" oids.((i + 1) mod n); Tuple.number ~key:"id" i ]
  @ if i mod 3 = 0 then [ Tuple.keyword "hot" ] else []

(* --- Result normalisation and the single-store oracle ---------------- *)

let logical_of oids oid =
  let found = ref (-1) in
  Array.iteri (fun i o -> if Oid.equal o oid then found := i) oids;
  !found

let logical_results oids result_set =
  List.sort compare (List.map (logical_of oids) (Oid.Set.elements result_set))

let sorted_bindings bs =
  List.sort compare
    (List.map (fun (t, vs) -> (t, List.sort Hf_data.Value.compare vs)) bs)

(* The whole corpus in ONE store, run by the local engine: the answer
   every distributed configuration must reproduce. *)
let local_oracle ds query initial_logical =
  let store = Store.create ~site:0 in
  let oids = Array.init ds.n (fun _ -> Store.fresh_oid store) in
  Array.iteri
    (fun i oid -> Store.insert store (Hf_data.Hobject.of_tuples oid (tuples_of ds oids i)))
    oids;
  let r =
    Hf_engine.Local.run_store ~store (Hf_query.Compile.compile query)
      (List.map (fun i -> oids.(i)) initial_logical)
  in
  ( logical_results oids r.Hf_engine.Local.result_set,
    sorted_bindings r.Hf_engine.Local.bindings )

(* --- Simulated cluster ----------------------------------------------- *)

module C = Hf_server.Instances.Weighted

let load_sim cluster ds =
  let oids = Array.init ds.n (fun i -> Store.fresh_oid (C.store cluster ds.placement.(i))) in
  Array.iteri
    (fun i oid ->
      Store.insert
        (C.store cluster ds.placement.(i))
        (Hf_data.Hobject.of_tuples oid (tuples_of ds oids i)))
    oids;
  oids

(* A generous retry budget so lossy runs never falsely declare a live
   peer unreachable (same setting as test_server's loss battery). *)
let reliability =
  Some { Hf_proto.Reliable.default with Hf_proto.Reliable.max_retries = 30 }

let reliability_for loss = if loss > 0.0 then reliability else None

(* --- The configuration cube ------------------------------------------ *)

type cell = Hf_proto.Batch.flush_policy * bool * float
(* (batch, reliable, loss) *)

let cube : cell list =
  List.concat_map
    (fun batch ->
      List.concat_map
        (fun reliable ->
          List.map (fun loss -> (batch, reliable, loss)) [ 0.0; 0.05; 0.2 ])
        [ false; true ])
    [ Hf_proto.Batch.Flush_at 1; Hf_proto.Batch.Flush_at 4 ]

let cell_name ((batch, reliable, loss) : cell) =
  Fmt.str "batch=%s reliable=%b loss=%.2f"
    (match batch with
    | Hf_proto.Batch.Flush_at k -> string_of_int k
    | Hf_proto.Batch.Flush_on_drain -> "drain")
    reliable loss

let config_of ?(bloofi = true) ~seed ~cache ((batch, reliable, loss) : cell) =
  {
    Cluster.default_config with
    Cluster.batch;
    loss;
    jitter_seed = seed;
    reliability = (if reliable then reliability else None);
    cache = (if cache then Some Hf_index.Remote_cache.default else None);
    bloofi;
  }

(* --- TCP sites -------------------------------------------------------- *)

let with_tcp_sites ?batch ?reliability ?cache ?admission ?exec ?bloofi n f =
  let sites =
    Array.init n (fun site ->
        Tcp.create ~site ?batch ?reliability ?cache ?admission ?exec ?bloofi ())
  in
  let addresses = Array.map Tcp.address sites in
  Array.iter (fun site -> Tcp.set_peers site addresses) sites;
  Fun.protect ~finally:(fun () -> Array.iter Tcp.shutdown sites) (fun () -> f sites)

let load_tcp sites ds =
  let oids =
    Array.init ds.n (fun i -> Store.fresh_oid (Tcp.store sites.(ds.placement.(i))))
  in
  Array.iteri
    (fun i oid ->
      Store.insert
        (Tcp.store sites.(ds.placement.(i)))
        (Hf_data.Hobject.of_tuples oid (tuples_of ds oids i)))
    oids;
  oids

let load_tcp_ring sites n =
  let k = Array.length sites in
  let oids = Array.init n (fun i -> Store.fresh_oid (Tcp.store sites.(i mod k))) in
  Array.iteri
    (fun i oid ->
      Store.insert (Tcp.store sites.(i mod k))
        (Hf_data.Hobject.of_tuples oid (ring_tuples oids n i)))
    oids;
  oids
