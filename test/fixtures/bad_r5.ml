(* hfcheck fixture for R5 (io): library code printing to stdout. *)

let announce name = print_endline name (* line 3 *)

let debug_dump x = Printf.printf "%d\n" x (* line 5 *)
