(* hfcheck fixture: interprocedurally clean.  Helpers called under the
   lock neither block nor re-acquire, the two lock wrappers are always
   taken in the same order (locked, then aux_locked), and every credit
   split is rejoined — R6, R7 and R8 all report nothing. *)

type t = {
  mutex : Mutex.t;
  aux_mutex : Mutex.t;
  mutable count : int; [@hf.guarded_by "locked"]
  mutable aux : int; [@hf.guarded_by "aux_locked"]
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let aux_locked t f =
  Mutex.lock t.aux_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.aux_mutex) f

let bump t = t.count <- t.count + 1 [@@hf.requires_lock "locked"]

let note_aux t = aux_locked t (fun () -> t.aux <- t.aux + 1)

(* consistent order in every chain: locked, then aux_locked *)
let record t =
  locked t (fun () ->
      bump t;
      note_aux t)

let record_twice t =
  locked t (fun () ->
      bump t;
      bump t;
      note_aux t)

let credit_roundtrip () =
  let keep, gave = Hf_termination.Credit.split Hf_termination.Credit.one in
  Hf_termination.Credit.add keep gave
