(* hfcheck fixture for R6 (lock-order), module A of a cross-module
   deadlock: [order_ab] takes [lock_a] then — through [Bad_r6_b.poke] —
   [lock_b]; [order_ba] takes them in the opposite order.  The cycle is
   only visible when BOTH modules' summaries are linked: analyzed alone,
   module A can neither resolve the call to [poke] nor recognize
   [lock_b] as a guard, so it reports nothing. *)

type t = {
  mutex : Mutex.t;
  mutable ticks : int; [@hf.guarded_by "lock_a"]
}

let lock_a t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* edge lock_a -> lock_b, via module B's summary *)
let order_ab t b =
  lock_a t (fun () ->
      t.ticks <- t.ticks + 1;
      Bad_r6_b.poke b)

(* edge lock_b -> lock_a, via module B's guard declaration *)
let order_ba t b = Bad_r6_b.lock_b b (fun () -> lock_a t (fun () -> t.ticks))
