(* hfcheck fixture: every binding here must trip R1 (poly-compare). *)

let bad_equal (a : Hf_data.Oid.t) b = a = b (* line 3 *)

let bad_compare (a : Hf_data.Oid.t) b = compare a b (* line 5 *)

let bad_hash (o : Hf_data.Oid.t) = Hashtbl.hash o (* line 7 *)

let bad_mem (o : Hf_data.Oid.t) os = List.mem o os (* line 9 *)

let bad_hashtbl (table : (Hf_data.Oid.t, int) Hashtbl.t) o =
  Hashtbl.find_opt table o (* line 12 *)

let bad_value_eq (a : Hf_data.Value.t) b = a <> b (* line 14 *)

let bad_function_eq (f : int -> int) g = f = g (* line 16 *)
