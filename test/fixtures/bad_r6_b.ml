(* hfcheck fixture for R6 (lock-order), module B: owns [lock_b] and a
   helper that acquires it.  Harmless alone — the deadlocking orders
   live in [Bad_r6_a]. *)

type t = {
  mutex : Mutex.t;
  mutable beats : int; [@hf.guarded_by "lock_b"]
}

let lock_b t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let poke t = lock_b t (fun () -> t.beats <- t.beats + 1)
