(* hfcheck fixture for R3 with two distinct locks — the §4h admission
   scheduler's lock next to the site lock.  Guards are matched by name:
   holding [locked] does not license a field guarded by
   [sched_locked]; the wrong lock is still a race. *)

type t = {
  site_mutex : Mutex.t;
  sched_mutex : Mutex.t;
  mutable draining : int; [@hf.guarded_by "locked"]
  mutable admitted : int; [@hf.guarded_by "sched_locked"]
}

let locked t f =
  Mutex.lock t.site_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.site_mutex) f

let sched_locked t f =
  Mutex.lock t.sched_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.sched_mutex) f

let good_nested t =
  locked t (fun () -> sched_locked t (fun () -> t.draining + t.admitted))

let bad_wrong_lock t = locked t (fun () -> t.admitted <- t.admitted + 1)
(* line 24: guarded by sched_locked, held lock is locked *)

let bad_bare t = t.admitted (* line 27: no lock at all *)

let annotated_read t = t.admitted [@@hf.requires_lock "sched_locked"]
