(* hfcheck fixture: malformed suppressions are themselves findings, and
   do not silence the original violation. *)

let missing_justification f = (try f () with _ -> ()) [@hf.allow "swallow"]

let unknown_rule f = (try f () with _ -> ()) [@hf.allow "no-such-rule -- whatever"]
