(* hfcheck fixture for R8 (credit-linearity): four ways of losing
   credit — ignoring a split, wildcard-dropping a half, binding a half
   and never using it, and an undocumented [Credit.discard].  The last
   function shows the documented cancel-path exemption. *)

open Hf_termination

(* finding 1: both halves of the split are ignored *)
let bad_ignore () = ignore (Credit.split Credit.one)

(* finding 2: the kept half is dropped by a wildcard pattern *)
let bad_wildcard () =
  let _, gave = Credit.split Credit.one in
  Credit.atoms gave

(* finding 3: [keep] is bound but never used *)
let bad_unused () =
  let keep, gave = Credit.split Credit.one in
  Credit.atoms gave

(* finding 4: discard without a justification *)
let bad_discard c = Credit.discard c

(* suppressed: the documented cancel-path exemption *)
let ok_documented_discard c =
  (Credit.discard c
   [@hf.allow
     "credit-linearity -- fixture: a cancelled query's credit is dead by \
      design"])
