(* hfcheck fixture for R7 (blocking-under-lock): four distinct ways of
   blocking while holding a guard — direct syscall, Thread.join through
   a helper, re-acquisition through a helper, and a foreign
   Condition.wait through a helper.  [good_wait] shows the sanctioned
   paired wait. *)

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  other_mutex : Mutex.t;
  other_cond : Condition.t;
  mutable state : int; [@hf.guarded_by "locked"]
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* finding 1: direct Unix sleep under the lock *)
let bad_sleep t = locked t (fun () -> t.state <- 1; Unix.sleepf 0.1)

let join_helper thread = Thread.join thread

(* finding 2: Thread.join reached through a helper *)
let bad_join t thread = locked t (fun () -> t.state <- 2; join_helper thread)

let touch t = locked t (fun () -> t.state <- 3)

(* finding 3: re-acquires [locked] through [touch] — self-deadlock *)
let bad_nested t = locked t (fun () -> touch t)

let foreign_wait t = Condition.wait t.other_cond t.other_mutex

(* finding 4: waits on a condvar paired with a DIFFERENT mutex, so the
   held guard stays held while parked *)
let bad_foreign_wait t = locked t (fun () -> foreign_wait t)

(* clean: the paired wait releases the held mutex while parked *)
let good_wait t =
  locked t (fun () ->
      while t.state = 0 do
        Condition.wait t.cond t.mutex
      done;
      t.state)
