(* hfcheck fixture: real violations silenced by [@hf.allow] with a
   justification — must produce zero unsuppressed findings. *)

let eq_suppressed (a : Hf_data.Oid.t) b =
  (a = b) [@hf.allow "poly-compare -- fixture: demonstrates expression-level suppression"]

let swallow_suppressed f =
  (try f () with _ -> ())
  [@hf.allow "swallow -- fixture: demonstrates suppressing a dropped exception"]

(* Binding-level suppression through [@@...]. *)
let hash_suppressed (o : Hf_data.Oid.t) = Hashtbl.hash o
[@@hf.allow "R1 -- fixture: binding-level suppression, alias form"]
