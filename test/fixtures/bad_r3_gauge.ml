(* hfcheck fixture for R3 in gauge-closure position.  The §4i registry
   reads guarded scheduler state through thunks registered at create
   time and called much later, from whatever thread scrapes the
   metrics.  Deferring the read into a closure does not launder the
   access: a thunk that touches a guarded field without taking the
   lock first is still a race. *)

type t = {
  mutex : Mutex.t;
  mutable queued : int; [@hf.guarded_by "locked"]
  mutable running : int; [@hf.guarded_by "locked"]
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* the registry's registration shape: store a thunk, read it later *)
let gauges : (unit -> int) list ref = ref []

let register read = gauges := read :: !gauges

let good_gauge t = register (fun () -> locked t (fun () -> t.queued + t.running))

let bad_gauge t = register (fun () -> t.queued) (* line 25: unlocked thunk *)

let bad_gauge_sum t = register (fun () -> t.queued + t.running) (* line 27: two reads *)
