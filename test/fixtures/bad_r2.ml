(* hfcheck fixture for R2 (codec-tag): a toy codec with a duplicate
   wire tag, a use of the reserved envelope tag 127, and an
   encoder/decoder tag mismatch. *)

type shape = Circle of int | Square of int | Diamond

let write_u8 buf n = Buffer.add_char buf (Char.chr n)

let read_u8 (s, pos) = Char.code s.[pos]

let write_shape buf shape =
  match shape with
  | Circle r ->
    write_u8 buf 0;
    write_u8 buf r
  | Square s ->
    write_u8 buf 0 (* duplicate tag: already used by Circle *);
    write_u8 buf s
  | Diamond -> write_u8 buf 127 (* reserved traced-envelope tag *)

let read_shape input =
  match read_u8 input with
  | 0 -> Circle 1
  | 2 -> Square 2 (* mismatch: writer emits 0 for Square *)
  | _ -> Diamond
