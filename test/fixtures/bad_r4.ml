(* hfcheck fixture for R4 (swallow): both handlers drop the exception. *)

let swallow_unit f = try f () with _ -> () (* line 3 *)

let swallow_default f = match f () with n -> n | exception _ -> 0 (* line 5 *)

let typed_handler_ok f = try f () with Not_found -> () (* specific: fine *)

let counting_handler_ok errors f =
  try f () with _ -> incr errors (* side effect: fine *)
