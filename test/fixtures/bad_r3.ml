(* hfcheck fixture for R3 (guarded-by): [count] may only be touched
   inside [locked]; [bad_increment] races. *)

type t = {
  mutex : Mutex.t;
  mutable count : int; [@hf.guarded_by "locked"]
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let good_increment t = locked t (fun () -> t.count <- t.count + 1)

let good_read t = locked t (fun () -> t.count)

let bad_increment t = t.count <- t.count + 1 (* line 17: unguarded write *)

let bad_read t = t.count (* line 19: unguarded read *)

let annotated_read t = t.count [@@hf.requires_lock "locked"]
