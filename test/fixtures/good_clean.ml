(* hfcheck fixture: the correct version of every bad_r* pattern.  Must
   produce zero findings. *)

(* R1: dedicated equality, hashing, tables. *)
let equal_ok (a : Hf_data.Oid.t) b = Hf_data.Oid.equal a b

let compare_ok (a : Hf_data.Oid.t) b = Hf_data.Oid.compare a b

let hash_ok (o : Hf_data.Oid.t) = Hf_data.Oid.hash o

let mem_ok (o : Hf_data.Oid.t) os = List.exists (Hf_data.Oid.equal o) os

let table_ok (table : int Hf_data.Oid.Table.t) o = Hf_data.Oid.Table.find_opt table o

let nil_check_ok (os : Hf_data.Oid.t list) = os = [] (* tag-only: hint-safe *)

let int_compare_ok (a : int) b = compare a b

(* R2: unique tags, matching decoder. *)
type shape = Circle of int | Square of int

let write_u8 buf n = Buffer.add_char buf (Char.chr n)

let read_u8 (s, pos) = Char.code s.[pos]

let write_shape buf shape =
  match shape with
  | Circle r ->
    write_u8 buf 0;
    write_u8 buf r
  | Square s ->
    write_u8 buf 1;
    write_u8 buf s

let read_shape input = match read_u8 input with 0 -> Circle 1 | _ -> Square 2

(* R3: guarded field touched only under its lock. *)
type counter = {
  mutex : Mutex.t;
  mutable count : int; [@hf.guarded_by "locked"]
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let increment t = locked t (fun () -> t.count <- t.count + 1)

let read t = locked t (fun () -> t.count)

let read_presumed_locked t = t.count [@@hf.requires_lock "locked"]

(* R4: a typed handler and a handler with a side effect. *)
let typed_handler f = try f () with Not_found -> ()

let counting_handler errors f = try f () with _ -> incr errors

(* R5: rendering goes through a formatter, not stdout. *)
let announce ppf name = Format.fprintf ppf "%s@." name
