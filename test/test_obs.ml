(* Tests for the observability layer: log-bucketed histograms, the
   metrics registry, the span tracer and its exports, the traced wire
   envelope, and a golden causal-chain test on a 2-site cluster — the
   PR's acceptance property that every remote-site span has a parent on
   the originating site. *)

module Histogram = Hf_obs.Histogram
module Registry = Hf_obs.Registry
module Tracer = Hf_obs.Tracer
module Span = Hf_obs.Span
module Json = Hf_obs.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- histogram: bucket boundaries -------------------------------------- *)

let test_bucket_edges () =
  (* bucket 0 catches zero and negatives *)
  check_int "zero" 0 (Histogram.bucket_index 0.0);
  check_int "negative" 0 (Histogram.bucket_index (-3.0));
  (* the overflow bucket catches huge values *)
  check_int "overflow" (Histogram.n_buckets - 1) (Histogram.bucket_index 1e300);
  (* interior buckets: lo inclusive, hi exclusive *)
  for i = 1 to Histogram.n_buckets - 2 do
    let lo, hi = Histogram.bucket_bounds i in
    check_int (Printf.sprintf "lo of bucket %d" i) i (Histogram.bucket_index lo);
    check_int (Printf.sprintf "hi of bucket %d" i) (i + 1) (Histogram.bucket_index hi);
    check_bool (Printf.sprintf "lo < hi at %d" i) true (lo < hi)
  done;
  (* a value strictly inside its bucket's bounds *)
  let i = Histogram.bucket_index 2.5 in
  let lo, hi = Histogram.bucket_bounds i in
  check_bool "2.5 within bounds" true (lo <= 2.5 && 2.5 < hi)

let test_bucket_nan_rejected () =
  check_bool "bucket_index nan raises" true
    (match Histogram.bucket_index nan with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let h = Histogram.create () in
  check_bool "observe nan raises" true
    (match Histogram.observe h nan with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- histogram: percentiles match Hf_util.Stats ------------------------ *)

let test_percentiles_match_stats () =
  let samples = Array.init 100 (fun i -> float_of_int (i + 1)) in
  let h = Histogram.create () in
  Array.iter (Histogram.observe h) samples;
  let expected = Hf_util.Stats.summarize samples in
  match Histogram.summary h with
  | None -> Alcotest.fail "summary on non-empty histogram"
  | Some s ->
      check_int "count" expected.Hf_util.Stats.count s.Hf_util.Stats.count;
      check_float "mean" expected.Hf_util.Stats.mean s.Hf_util.Stats.mean;
      check_float "p50" expected.Hf_util.Stats.p50 s.Hf_util.Stats.p50;
      check_float "p90" expected.Hf_util.Stats.p90 s.Hf_util.Stats.p90;
      check_float "p99" expected.Hf_util.Stats.p99 s.Hf_util.Stats.p99;
      check_float "min" expected.Hf_util.Stats.min s.Hf_util.Stats.min;
      check_float "max" expected.Hf_util.Stats.max s.Hf_util.Stats.max

let test_empty_summary () =
  check_bool "empty histogram has no summary" true
    (Histogram.summary (Histogram.create ()) = None)

let test_reservoir_bound () =
  let h = Histogram.create ~sample_limit:8 () in
  for i = 1 to 20 do
    Histogram.observe h (float_of_int i)
  done;
  check_int "count includes all" 20 (Histogram.count h);
  check_int "dropped past the reservoir" 12 (Histogram.dropped_samples h);
  (* exact aggregates still include dropped samples *)
  check_float "sum" 210.0 (Histogram.sum h);
  match Histogram.summary h with
  | None -> Alcotest.fail "summary"
  | Some s ->
      check_int "summary count" 20 s.Hf_util.Stats.count;
      check_float "summary max exact" 20.0 s.Hf_util.Stats.max

let test_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.observe a) [ 1.0; 2.0 ];
  List.iter (Histogram.observe b) [ 4.0; 8.0; 16.0 ];
  let m = Histogram.merge a b in
  check_int "merged count" 5 (Histogram.count m);
  check_float "merged sum" 31.0 (Histogram.sum m);
  check_int "inputs untouched" 2 (Histogram.count a);
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 (Histogram.buckets m) in
  check_int "bucket counts add up" 5 total

(* --- histogram: wire shape and merge stability ------------------------- *)

let test_of_shape () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 0.5; 2.0; 2.5; 100.0 ];
  let rebuilt =
    Histogram.of_shape ~count:(Histogram.count h) ~sum:(Histogram.sum h)
      ~vmin:(Histogram.vmin h) ~vmax:(Histogram.vmax h) ~buckets:(Histogram.buckets h) ()
  in
  check_int "count survives" (Histogram.count h) (Histogram.count rebuilt);
  check_float "sum survives" (Histogram.sum h) (Histogram.sum rebuilt);
  check_float "min survives" (Histogram.vmin h) (Histogram.vmin rebuilt);
  check_float "max survives" (Histogram.vmax h) (Histogram.vmax rebuilt);
  check_bool "bucket shape exact" true (Histogram.buckets h = Histogram.buckets rebuilt);
  (* the reservoir does not cross the wire *)
  check_bool "no percentiles after the wire" true (Histogram.summary rebuilt = None);
  (* validation: the decoder faces the network *)
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check_bool "negative count rejected" true
    (raises (fun () ->
         Histogram.of_shape ~count:(-1) ~sum:0.0 ~vmin:infinity ~vmax:neg_infinity
           ~buckets:[] ()));
  check_bool "out-of-range bucket rejected" true
    (raises (fun () ->
         Histogram.of_shape ~count:1 ~sum:1.0 ~vmin:1.0 ~vmax:1.0
           ~buckets:[ (Histogram.n_buckets, 1) ] ()));
  check_bool "negative bucket count rejected" true
    (raises (fun () ->
         Histogram.of_shape ~count:1 ~sum:1.0 ~vmin:1.0 ~vmax:1.0 ~buckets:[ (2, -4) ] ()))

let test_merge_percentile_stability () =
  (* Percentiles must be stable under aggregation: merging shards of one
     population reports (within reservoir resolution) the population's
     own percentiles.  This is the property that makes cross-site
     scrape aggregation honest (DESIGN.md §4i). *)
  let population = Array.init 1000 (fun i -> float_of_int (i mod 97) +. 0.5) in
  let whole = Histogram.create () in
  Array.iter (Histogram.observe whole) population;
  let shards = Array.init 4 (fun _ -> Histogram.create ()) in
  Array.iteri (fun i v -> Histogram.observe shards.(i mod 4) v) population;
  let merged = Array.fold_left Histogram.merge (Histogram.create ()) shards in
  check_int "merged count" (Histogram.count whole) (Histogram.count merged);
  check_float "merged sum" (Histogram.sum whole) (Histogram.sum merged);
  check_bool "merged buckets exact" true (Histogram.buckets whole = Histogram.buckets merged);
  match (Histogram.summary whole, Histogram.summary merged) with
  | Some w, Some m ->
      Alcotest.(check (float 1e-9)) "p50 stable" w.Hf_util.Stats.p50 m.Hf_util.Stats.p50;
      Alcotest.(check (float 1e-9)) "p90 stable" w.Hf_util.Stats.p90 m.Hf_util.Stats.p90;
      Alcotest.(check (float 1e-9)) "p99 stable" w.Hf_util.Stats.p99 m.Hf_util.Stats.p99;
      Alcotest.(check (float 1e-9)) "max stable" w.Hf_util.Stats.max m.Hf_util.Stats.max
  | _ -> Alcotest.fail "summaries present on both"

let test_histogram_diff () =
  let older = Histogram.create () in
  List.iter (Histogram.observe older) [ 1.0; 2.0 ];
  let newer = Histogram.copy older in
  List.iter (Histogram.observe newer) [ 4.0; 8.0 ];
  let d = Histogram.diff ~older ~newer in
  check_int "diff count" 2 (Histogram.count d);
  check_float "diff sum" 12.0 (Histogram.sum d);
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 (Histogram.buckets d) in
  check_int "diff buckets hold the delta" 2 total;
  (* a restarted source must clamp, not go negative *)
  let reset = Histogram.create () in
  Histogram.observe reset 1.0;
  let clamped = Histogram.diff ~older:newer ~newer:reset in
  check_int "clamped at zero across a reset" 0 (Histogram.count clamped);
  check_float "sum falls back to newer's across a reset" 1.0 (Histogram.sum clamped);
  List.iter
    (fun (_, c) -> check_bool "no negative buckets" true (c >= 0))
    (Histogram.buckets clamped)

(* --- registry ----------------------------------------------------------- *)

let test_registry_views () =
  let r = Registry.create () in
  let hits = ref 0 in
  Registry.register_counter r "hf.test.hits" (fun () -> !hits);
  Registry.register_gauge r "hf.test.load" (fun () -> 0.5);
  let h = Registry.histogram r "hf.test.latency_s" in
  Histogram.observe h 0.25;
  hits := 7;
  (* views read live storage at report time *)
  (match Registry.find r "hf.test.hits" with
  | Some (Registry.Counter read) -> check_int "live counter" 7 (read ())
  | _ -> Alcotest.fail "counter lookup");
  let owned = Registry.counter r "hf.test.owned" in
  incr owned;
  (match Registry.find r "hf.test.owned" with
  | Some (Registry.Counter read) -> check_int "owned counter" 1 (read ())
  | _ -> Alcotest.fail "owned lookup");
  check_int "names registered" 4 (List.length (Registry.names r))

let test_registry_duplicate_rejected () =
  let r = Registry.create () in
  Registry.register_counter r "hf.test.x" (fun () -> 0);
  check_bool "duplicate raises" true
    (match Registry.register_counter r "hf.test.x" (fun () -> 1) with
    | () -> false
    | exception Invalid_argument _ -> true);
  check_bool "empty name raises" true
    (match Registry.register_gauge r "" (fun () -> 0.0) with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_registry_json_sorted () =
  let r = Registry.create () in
  Registry.register_counter r "hf.test.b" (fun () -> 2);
  Registry.register_counter r "hf.test.a" (fun () -> 1);
  match Registry.to_json r with
  | Json.Obj fields ->
      Alcotest.(check (list string))
        "sorted by name" [ "hf.test.a"; "hf.test.b" ] (List.map fst fields)
  | _ -> Alcotest.fail "registry json is an object"

(* --- registry snapshots: capture, diff, cross-site merge ---------------- *)

let test_snapshot_capture_and_diff () =
  let r = Registry.create () in
  let hits = Registry.counter r "hf.t.hits" in
  Registry.register_gauge r "hf.t.depth" (fun () -> float_of_int !hits) ;
  let h = Registry.histogram r "hf.t.wait_s" in
  hits := 3;
  Histogram.observe h 0.5;
  let before = Registry.snapshot r in
  (* snapshots are point-in-time: later mutation must not leak in *)
  hits := 10;
  Histogram.observe h 2.0;
  (match List.assoc_opt "hf.t.hits" before with
  | Some (Registry.Counter_value 3) -> ()
  | _ -> Alcotest.fail "counter captured at 3");
  (match List.assoc_opt "hf.t.wait_s" before with
  | Some (Registry.Histogram_value hh) -> check_int "histogram deep-copied" 1 (Histogram.count hh)
  | _ -> Alcotest.fail "histogram captured");
  let after = Registry.snapshot r in
  let d = Registry.diff ~older:before ~newer:after in
  (match List.assoc_opt "hf.t.hits" d with
  | Some (Registry.Counter_value 7) -> ()
  | _ -> Alcotest.fail "counter diff is the delta");
  (match List.assoc_opt "hf.t.depth" d with
  | Some (Registry.Gauge_value g) -> check_float "gauge diff keeps newer" 10.0 g
  | _ -> Alcotest.fail "gauge diff");
  match List.assoc_opt "hf.t.wait_s" d with
  | Some (Registry.Histogram_value hh) -> check_int "histogram diff is the delta" 1 (Histogram.count hh)
  | _ -> Alcotest.fail "histogram diff"

let test_merge_snapshots () =
  (* three sites, overlapping but not identical registries -- the
     cluster_stats aggregation shape *)
  let site id extra =
    let r = Registry.create () in
    let c = Registry.counter r "hf.t.msgs" in
    c := 10 * (id + 1);
    Registry.register_gauge r "hf.t.running" (fun () -> float_of_int id);
    let h = Registry.histogram r "hf.t.wait_s" in
    Histogram.observe h (float_of_int (id + 1));
    if extra then ignore (Registry.counter r "hf.t.only_here");
    Registry.snapshot r
  in
  let merged = Registry.merge_snapshots [ site 0 false; site 1 true; site 2 false ] in
  (match List.assoc_opt "hf.t.msgs" merged with
  | Some (Registry.Counter_value 60) -> ()
  | _ -> Alcotest.fail "counters sum");
  (match List.assoc_opt "hf.t.running" merged with
  | Some (Registry.Gauge_value g) -> check_float "gauges sum" 3.0 g
  | _ -> Alcotest.fail "gauges");
  (match List.assoc_opt "hf.t.wait_s" merged with
  | Some (Registry.Histogram_value h) ->
      check_int "histograms merge" 3 (Histogram.count h);
      check_float "merged sum" 6.0 (Histogram.sum h)
  | _ -> Alcotest.fail "histograms");
  (match List.assoc_opt "hf.t.only_here" merged with
  | Some (Registry.Counter_value 0) -> ()
  | _ -> Alcotest.fail "partial-coverage metric present");
  (* result stays sorted by name, like any snapshot *)
  let names = List.map fst merged in
  check_bool "sorted" true (names = List.sort compare names)

(* --- prometheus text exposition ----------------------------------------- *)

let test_prometheus_names_and_escapes () =
  Alcotest.(check string) "dotted name sanitized" "hf_net_bytes_sent"
    (Hf_obs.Prometheus.sanitize_name "hf.net.bytes_sent");
  Alcotest.(check string) "leading digit guarded" "_9lives"
    (Hf_obs.Prometheus.sanitize_name "9lives");
  Alcotest.(check string) "label escapes" "a\\\\b\\\"c\\nd"
    (Hf_obs.Prometheus.escape_label_value "a\\b\"c\nd")

let test_prometheus_render () =
  let r = Registry.create () in
  let c = Registry.counter r "hf.t.hits" in
  c := 5;
  Registry.register_gauge r "hf.t.load" (fun () -> 0.75);
  let h = Registry.histogram r "hf.t.wait_s" in
  List.iter (Histogram.observe h) [ 0.5; 3.0 ];
  let text = Hf_obs.Prometheus.render ~labels:[ ("site", "2") ] r in
  check_bool "counter TYPE line" true (contains "# TYPE hf_t_hits counter" text);
  check_bool "counter sample with label" true (contains "hf_t_hits{site=\"2\"} 5" text);
  check_bool "gauge TYPE line" true (contains "# TYPE hf_t_load gauge" text);
  check_bool "gauge sample" true (contains "hf_t_load{site=\"2\"} 0.75" text);
  check_bool "histogram TYPE line" true (contains "# TYPE hf_t_wait_s histogram" text);
  check_bool "le label cumulative" true (contains "hf_t_wait_s_bucket{site=\"2\",le=" text);
  check_bool "+Inf bucket" true (contains "le=\"+Inf\"} 2" text);
  check_bool "sum series" true (contains "hf_t_wait_s_sum{site=\"2\"} 3.5" text);
  check_bool "count series" true (contains "hf_t_wait_s_count{site=\"2\"} 2" text);
  (* every non-comment line carries the label set *)
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then
           check_bool ("labelled: " ^ line) true (contains "site=\"2\"" line));
  (* cumulative-bucket invariant: counts never decrease as le grows *)
  let bucket_counts =
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           if String.length line > 0 && line.[0] <> '#'
              && contains "hf_t_wait_s_bucket" line
           then
             match String.rindex_opt line ' ' with
             | Some i ->
                 Some (int_of_string (String.sub line (i + 1) (String.length line - i - 1)))
             | None -> None
           else None)
  in
  check_bool "at least the +Inf bucket" true (List.length bucket_counts >= 1);
  ignore
    (List.fold_left
       (fun prev cnt ->
         check_bool "cumulative monotone" true (cnt >= prev);
         cnt)
       0 bucket_counts)

(* --- tracer ------------------------------------------------------------- *)

let test_noop_tracer () =
  let t = Tracer.noop in
  check_bool "disabled" false (Tracer.enabled t);
  let id = Tracer.start t ~query:"q" ~site:0 ~phase:Span.Query "root" in
  check_int "noop start returns 0" 0 id;
  Tracer.finish t id;
  check_int "nothing recorded" 0 (Tracer.count t)

let test_span_nesting () =
  let clock = ref 0.0 in
  let t = Tracer.create ~clock:(fun () -> !clock) () in
  let root = Tracer.start t ~query:"q1@0" ~site:0 ~phase:Span.Query "query" in
  clock := 1.0;
  let child = Tracer.start t ~parent:root ~query:"q1@0" ~site:0 ~phase:Span.Eval "site-eval" in
  clock := 2.0;
  Tracer.finish t child;
  clock := 3.0;
  Tracer.finish t root ~detail:"done";
  match Tracer.spans t with
  | [ r; c ] ->
      check_int "root is a root" 0 r.Span.parent;
      check_int "child parents on root" root c.Span.parent;
      check_bool "ids distinct and positive" true (root > 0 && child > 0 && root <> child);
      check_float "child duration" 1.0 (Span.duration c);
      check_float "root duration" 3.0 (Span.duration r);
      Alcotest.(check string) "detail recorded" "done" r.Span.detail
  | spans -> Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length spans))

let test_tracer_limit_and_dropped () =
  let t = Tracer.create ~limit:2 () in
  for i = 1 to 5 do
    ignore (Tracer.instant t ~query:"q" ~site:0 ~phase:Span.Flush (Printf.sprintf "e%d" i))
  done;
  check_int "retained up to limit" 2 (Tracer.count t);
  check_int "rest counted as dropped" 3 (Tracer.dropped t);
  Tracer.clear t;
  check_int "clear resets count" 0 (Tracer.count t);
  check_int "clear resets dropped" 0 (Tracer.dropped t)

let test_instant_is_zero_duration () =
  let t = Tracer.create ~clock:(fun () -> 42.0) () in
  ignore (Tracer.instant t ~query:"q" ~site:3 ~phase:Span.Drain "drain");
  match Tracer.spans t with
  | [ s ] ->
      check_float "start = finish" s.Span.start s.Span.finish;
      check_int "site" 3 s.Span.site
  | _ -> Alcotest.fail "one span"

let test_exports () =
  let t = Tracer.create () in
  let root = Tracer.start t ~query:"q1@0" ~site:0 ~phase:Span.Query "query" in
  let child = Tracer.start t ~parent:root ~query:"q1@0" ~site:1 ~phase:Span.Eval "site-eval" in
  Tracer.finish t child;
  Tracer.finish t root;
  let jsonl = Tracer.to_jsonl t in
  let lines = String.split_on_char '\n' (String.trim jsonl) in
  check_int "one JSONL line per span" 2 (List.length lines);
  List.iter
    (fun l -> check_bool "line is an object" true (String.length l > 0 && l.[0] = '{'))
    lines;
  let chrome = Tracer.to_chrome_json t in
  check_bool "chrome export has traceEvents" true (contains "traceEvents" chrome);
  check_bool "chrome export has complete events" true (contains "\"ph\":\"X\"" chrome);
  check_bool "chrome export has flow arrows" true (contains "\"ph\":\"s\"" chrome)

(* --- tracer: per-query sampling ------------------------------------------ *)

let test_sampling_whole_queries () =
  (* at an interior rate some queries are kept and some skipped, and the
     decision covers the whole query: either all of a query's spans are
     present or none *)
  let t = Tracer.create ~sample_rate:0.4 ~seed:7 () in
  let queries = List.init 50 (fun i -> Printf.sprintf "q%d@0" i) in
  List.iter
    (fun q ->
      let root = Tracer.start t ~query:q ~site:0 ~phase:Span.Query "query" in
      let child = Tracer.start t ~parent:root ~query:q ~site:1 ~phase:Span.Eval "eval" in
      Tracer.finish t child;
      Tracer.finish t root;
      ignore (Tracer.complete t ~query:q ~site:0 ~phase:Span.Wait ~start:0.0 ~finish:1.0 "wait"))
    queries;
  check_bool "some queries kept" true (Tracer.count t > 0);
  check_bool "some queries skipped" true (Tracer.sampled_out t > 0);
  let spans = Tracer.spans t in
  List.iter
    (fun q ->
      let n =
        List.length (List.filter (fun s -> s.Span.query = q) spans)
      in
      check_bool (q ^ " traced in full or not at all") true (n = 0 || n = 3))
    queries

let test_sampling_deterministic_across_tracers () =
  (* same seed => same decisions on every site; different seed =>
     (almost surely) a different subset *)
  let kept seed =
    let t = Tracer.create ~sample_rate:0.5 ~seed () in
    List.filter_map
      (fun i ->
        let q = Printf.sprintf "q%d@0" i in
        let id = Tracer.start t ~query:q ~site:0 ~phase:Span.Query "q" in
        Tracer.finish t id;
        if id <> 0 then Some q else None)
      (List.init 64 Fun.id)
  in
  check_bool "same seed agrees" true (kept 3 = kept 3);
  check_bool "seed changes the subset" true (kept 3 <> kept 4)

let test_sampling_edge_rates () =
  let all = Tracer.create ~sample_rate:1.0 () in
  let none = Tracer.create ~sample_rate:0.0 () in
  for i = 1 to 20 do
    let q = Printf.sprintf "q%d@0" i in
    ignore (Tracer.instant all ~query:q ~site:0 ~phase:Span.Flush "e");
    ignore (Tracer.instant none ~query:q ~site:0 ~phase:Span.Flush "e")
  done;
  check_int "rate 1.0 keeps everything" 20 (Tracer.count all);
  check_int "rate 1.0 skips nothing" 0 (Tracer.sampled_out all);
  check_int "rate 0.0 keeps nothing" 0 (Tracer.count none);
  check_int "rate 0.0 skips everything" 20 (Tracer.sampled_out none);
  check_bool "bad rate rejected" true
    (match Tracer.create ~sample_rate:1.5 () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* sampled-out spans yield id 0, and operations on id 0 are no-ops *)
  let id = Tracer.start none ~query:"q1@0" ~site:0 ~phase:Span.Query "q" in
  check_int "sampled-out start yields 0" 0 id;
  Tracer.set_detail none id "ignored";
  Tracer.finish none id;
  check_int "still nothing recorded" 0 (Tracer.count none);
  Tracer.clear none;
  check_int "clear resets sampled_out" 0 (Tracer.sampled_out none)

let test_tracer_registers_health () =
  let t = Tracer.create ~limit:1 ~sample_rate:0.9999 ~seed:1 () in
  let r = Registry.create () in
  Tracer.register t r ~prefix:"hf.test";
  for i = 1 to 50 do
    ignore (Tracer.instant t ~query:(Printf.sprintf "q%d@0" i) ~site:0 ~phase:Span.Flush "e")
  done;
  let read name =
    match Registry.find r name with
    | Some (Registry.Counter read) -> read ()
    | _ -> Alcotest.fail ("missing " ^ name)
  in
  check_int "trace_spans live" (Tracer.count t) (read "hf.test.trace_spans");
  check_int "trace_dropped live" (Tracer.dropped t) (read "hf.test.trace_dropped");
  check_bool "limit actually dropped some" true (Tracer.dropped t > 0);
  check_int "trace_sampled_out live" (Tracer.sampled_out t) (read "hf.test.trace_sampled_out");
  match Registry.find r "hf.test.trace_sample_rate" with
  | Some (Registry.Gauge read) -> check_float "rate gauge" 0.9999 (read ())
  | _ -> Alcotest.fail "missing rate gauge"

(* --- profile: EXPLAIN ANALYZE from spans --------------------------------- *)

module Profile = Hf_obs.Profile

let test_profile_of_spans () =
  let clock = ref 0.0 in
  let t = Tracer.create ~clock:(fun () -> !clock) () in
  let q = "q1@0" in
  (* origin: query root with a local eval, one ship to site 1, whose
     eval ships again to site 2 -- 2 rounds deep *)
  let root = Tracer.start t ~query:q ~site:0 ~phase:Span.Query "query" in
  let e0 = Tracer.start t ~parent:root ~query:q ~site:0 ~phase:Span.Eval "eval" in
  clock := 1.0;
  Tracer.finish t e0;
  let s1 = Tracer.start t ~parent:e0 ~query:q ~site:0 ~phase:Span.Ship "ship" in
  clock := 1.5;
  Tracer.finish t s1;
  let e1 = Tracer.start t ~parent:s1 ~query:q ~site:1 ~phase:Span.Eval "eval" in
  clock := 2.5;
  Tracer.finish t e1;
  let s2 = Tracer.start t ~parent:e1 ~query:q ~site:1 ~phase:Span.Ship "ship" in
  clock := 3.0;
  Tracer.finish t s2;
  let e2 = Tracer.start t ~parent:s2 ~query:q ~site:2 ~phase:Span.Eval "eval" in
  clock := 4.0;
  Tracer.finish t e2;
  Tracer.finish t root;
  (* noise from another query must be ignored *)
  ignore (Tracer.instant t ~query:"q9@9" ~site:0 ~phase:Span.Flush "noise");
  let p =
    Profile.of_spans ~query:q ~scalars:[ ("messages", Profile.Int 4) ]
      ~dropped:(Tracer.dropped t) (Tracer.spans t)
  in
  check_int "span count excludes other queries" 6 p.Profile.span_count;
  check_float "total is the root's duration" 4.0 p.Profile.total_s;
  check_int "two ship rounds" 2 p.Profile.rounds;
  check_int "three sites" 3 (List.length p.Profile.sites);
  let site n = List.find (fun r -> r.Profile.site = n) p.Profile.sites in
  check_float "site 0 busy" 1.0 (site 0).Profile.busy_s;
  check_float "site 1 busy" 1.0 (site 1).Profile.busy_s;
  check_float "site 2 busy" 1.0 (site 2).Profile.busy_s;
  check_int "site 0 ships" 1 (site 0).Profile.ships;
  check_int "site 1 ships" 1 (site 1).Profile.ships;
  check_int "site 2 ships" 0 (site 2).Profile.ships;
  check_bool "scalar lookup" true (Profile.scalar_int p "messages" = Some 4);
  check_bool "missing scalar" true (Profile.scalar_int p "nope" = None);
  (* renderers stay total *)
  check_bool "pp mentions rounds" true (contains "round" (Fmt.str "%a" Profile.pp p));
  match Profile.to_json p with
  | Json.Obj fields -> check_bool "json has sites" true (List.mem_assoc "sites" fields)
  | _ -> Alcotest.fail "profile json is an object"

let test_profile_without_root () =
  (* spans without a Query root (e.g. root dropped at the limit): the
     extent of the remaining spans stands in for the total *)
  let t = Tracer.create ~clock:(fun () -> 2.0) () in
  ignore (Tracer.complete t ~query:"q" ~site:0 ~phase:Span.Eval ~start:1.0 ~finish:3.0 "e");
  ignore (Tracer.complete t ~query:"q" ~site:1 ~phase:Span.Eval ~start:2.0 ~finish:6.0 "e");
  let p = Profile.of_spans ~query:"q" ~dropped:5 (Tracer.spans t) in
  check_float "extent" 5.0 p.Profile.total_s;
  check_int "dropped recorded" 5 p.Profile.dropped_spans;
  check_int "no ships, zero rounds" 0 p.Profile.rounds

(* --- sim trace: dropped counter (satellite) ----------------------------- *)

let test_sim_trace_dropped () =
  let tr = Hf_sim.Trace.create ~limit:2 () in
  for i = 1 to 5 do
    Hf_sim.Trace.record tr ~time:(float_of_int i) ~site:0 ~kind:"k" ~detail:""
  done;
  check_int "recorded up to limit" 2 (Hf_sim.Trace.count tr);
  check_int "dropped past limit" 3 (Hf_sim.Trace.dropped tr);
  let rendered = Fmt.str "%a" Hf_sim.Trace.pp tr in
  check_bool "pp reports the drop" true (contains "dropped" rendered);
  Hf_sim.Trace.clear tr;
  check_int "clear resets dropped" 0 (Hf_sim.Trace.dropped tr)

(* --- traced wire envelope ----------------------------------------------- *)

let sample_message =
  Hf_proto.Message.Credit_return
    { query = { Hf_proto.Message.originator = 0; serial = 3 }; credit = [ 2; 5 ] }

let test_codec_traced_roundtrip () =
  let encoded = Hf_proto.Codec.encode ~span:9001 sample_message in
  match Hf_proto.Codec.decode_traced encoded with
  | Error e -> Alcotest.fail e
  | Ok (m, span) ->
      check_int "span survives the wire" 9001 span;
      check_bool "message survives the wire" true (Hf_proto.Message.equal sample_message m)

let test_codec_untraced_bytes_identical () =
  (* span 0 (and no span) must not change the encoding: PR 1 byte
     compatibility, and E10's message-size claim. *)
  let plain = Hf_proto.Codec.encode sample_message in
  Alcotest.(check string) "span:0 is byte-identical" plain
    (Hf_proto.Codec.encode ~span:0 sample_message);
  (match Hf_proto.Codec.decode_traced plain with
  | Ok (m, span) ->
      check_int "untraced decodes to span 0" 0 span;
      check_bool "message intact" true (Hf_proto.Message.equal sample_message m)
  | Error e -> Alcotest.fail e);
  (* plain decode ignores the envelope *)
  match Hf_proto.Codec.decode (Hf_proto.Codec.encode ~span:77 sample_message) with
  | Ok m -> check_bool "decode drops the span" true (Hf_proto.Message.equal sample_message m)
  | Error e -> Alcotest.fail e

(* --- golden causal chain on a 2-site cluster ---------------------------- *)

module C = Hf_server.Instances.Weighted
module Cluster = Hf_server.Cluster

let test_causal_chain_two_sites () =
  let tracer = Tracer.create () in
  let cluster = C.create ~tracer ~n_sites:2 () in
  let s0 = C.store cluster 0 and s1 = C.store cluster 1 in
  (* A at site 0 points to B at site 1: the query must hop. *)
  let a = Hf_data.Store.fresh_oid s0 in
  let b = Hf_data.Store.fresh_oid s1 in
  Hf_data.Store.insert s0
    (Hf_data.Hobject.of_tuples a
       [ Hf_data.Tuple.number ~key:"id" 0; Hf_data.Tuple.pointer ~key:"R" b ]);
  (* leaf terminator self-pointer, as the workload generator does
     (EXPERIMENTS.md D5): without a matching pointer tuple the leaf dies
     in the traversal body before the trailing filter. *)
  Hf_data.Store.insert s1
    (Hf_data.Hobject.of_tuples b
       [ Hf_data.Tuple.number ~key:"id" 1; Hf_data.Tuple.pointer ~key:"R" b ]);
  let program =
    Hf_query.Parser.parse_program "[ (Pointer, \"R\", ?X) ^^X ]* (Number, \"id\", ?)"
  in
  let outcome = C.run_query cluster ~origin:0 program [ a ] in
  check_bool "terminated" true outcome.Cluster.terminated;
  check_int "both objects matched" 2 (List.length outcome.Cluster.results);
  let spans = Tracer.spans tracer in
  check_bool "spans recorded" true (spans <> []);
  let by_id = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace by_id s.Span.id s) spans;
  let find_span id = Hashtbl.find_opt by_id id in
  (* every non-root span's parent exists: no orphans *)
  List.iter
    (fun s ->
      if s.Span.parent <> 0 then
        check_bool
          (Printf.sprintf "parent of span %d resolves" s.Span.id)
          true
          (find_span s.Span.parent <> None))
    spans;
  (* the golden chain: remote Eval (site 1) -> Ship (site 0) ->
     origin Eval or Query root (site 0). *)
  let remote_eval =
    List.find_opt (fun s -> s.Span.site = 1 && s.Span.phase = Span.Eval) spans
  in
  (match remote_eval with
  | None -> Alcotest.fail "no Eval span on the remote site"
  | Some re -> (
      match find_span re.Span.parent with
      | Some ship ->
          check_bool "remote eval caused by a Ship span" true (ship.Span.phase = Span.Ship);
          check_int "ship originates at site 0" 0 ship.Span.site;
          check_bool "ship has positive duration (closed at arrival)" true
            (Span.duration ship > 0.0);
          (match find_span ship.Span.parent with
          | Some origin ->
              check_int "ship caused from site 0" 0 origin.Span.site;
              check_bool "ship parents on origin Eval" true (origin.Span.phase = Span.Eval)
          | None -> Alcotest.fail "ship span has no parent")
      | None -> Alcotest.fail "remote eval has no parent"));
  (* walking parents from any span terminates at the one Query root *)
  let rec root_of s =
    if s.Span.parent = 0 then s
    else
      match find_span s.Span.parent with
      | Some p -> root_of p
      | None -> Alcotest.fail "broken parent chain"
  in
  let roots =
    List.sort_uniq compare (List.map (fun s -> (root_of s).Span.id) spans)
  in
  check_int "single causal root" 1 (List.length roots);
  (match find_span (List.hd roots) with
  | Some r -> check_bool "root is a Query span" true (r.Span.phase = Span.Query)
  | None -> assert false);
  (* and with tracing off, the same run records nothing *)
  let quiet = C.create ~n_sites:2 () in
  let q0 = C.store quiet 0 and q1 = C.store quiet 1 in
  let a' = Hf_data.Store.fresh_oid q0 in
  let b' = Hf_data.Store.fresh_oid q1 in
  Hf_data.Store.insert q0
    (Hf_data.Hobject.of_tuples a'
       [ Hf_data.Tuple.number ~key:"id" 0; Hf_data.Tuple.pointer ~key:"R" b' ]);
  Hf_data.Store.insert q1
    (Hf_data.Hobject.of_tuples b'
       [ Hf_data.Tuple.number ~key:"id" 1; Hf_data.Tuple.pointer ~key:"R" b' ]);
  let outcome' = C.run_query quiet ~origin:0 program [ a' ] in
  check_bool "untraced run terminates" true outcome'.Cluster.terminated;
  check_float "untraced timing identical" outcome.Cluster.response_time
    outcome'.Cluster.response_time;
  check_int "noop tracer recorded nothing" 0 (Tracer.count (C.tracer quiet))

(* --- json serializer ----------------------------------------------------- *)

let test_json_serializer () =
  let doc =
    Json.Obj
      [ ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null; Json.Str "x\"y\n" ]);
        ("nan", Json.Float nan);
        ("f", Json.Float 1.5);
      ]
  in
  Alcotest.(check string)
    "escapes and nan-as-null" "{\"a\":1,\"b\":[true,null,\"x\\\"y\\n\"],\"nan\":null,\"f\":1.5}"
    (Json.to_string doc)

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket edges" `Quick test_bucket_edges;
          Alcotest.test_case "nan rejected" `Quick test_bucket_nan_rejected;
          Alcotest.test_case "percentiles match Stats" `Quick test_percentiles_match_stats;
          Alcotest.test_case "empty summary" `Quick test_empty_summary;
          Alcotest.test_case "reservoir bound" `Quick test_reservoir_bound;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "wire shape (of_shape)" `Quick test_of_shape;
          Alcotest.test_case "percentiles stable under merge" `Quick
            test_merge_percentile_stability;
          Alcotest.test_case "diff" `Quick test_histogram_diff;
        ] );
      ( "registry",
        [
          Alcotest.test_case "live views" `Quick test_registry_views;
          Alcotest.test_case "duplicates rejected" `Quick test_registry_duplicate_rejected;
          Alcotest.test_case "json sorted" `Quick test_registry_json_sorted;
          Alcotest.test_case "snapshot capture and diff" `Quick test_snapshot_capture_and_diff;
          Alcotest.test_case "merge snapshots across sites" `Quick test_merge_snapshots;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "names and escapes" `Quick test_prometheus_names_and_escapes;
          Alcotest.test_case "exposition format" `Quick test_prometheus_render;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "noop" `Quick test_noop_tracer;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "limit and dropped" `Quick test_tracer_limit_and_dropped;
          Alcotest.test_case "instant" `Quick test_instant_is_zero_duration;
          Alcotest.test_case "exports" `Quick test_exports;
          Alcotest.test_case "sampling covers whole queries" `Quick test_sampling_whole_queries;
          Alcotest.test_case "sampling deterministic by seed" `Quick
            test_sampling_deterministic_across_tracers;
          Alcotest.test_case "sampling edge rates" `Quick test_sampling_edge_rates;
          Alcotest.test_case "tracer health in the registry" `Quick test_tracer_registers_health;
        ] );
      ( "profile",
        [
          Alcotest.test_case "of_spans breakdown" `Quick test_profile_of_spans;
          Alcotest.test_case "rootless extent" `Quick test_profile_without_root;
        ] );
      ("sim-trace", [ Alcotest.test_case "dropped counter" `Quick test_sim_trace_dropped ]);
      ( "codec",
        [
          Alcotest.test_case "traced roundtrip" `Quick test_codec_traced_roundtrip;
          Alcotest.test_case "untraced bytes identical" `Quick
            test_codec_untraced_bytes_identical;
        ] );
      ( "causal-chain",
        [ Alcotest.test_case "two-site golden trace" `Quick test_causal_chain_two_sites ] );
      ("json", [ Alcotest.test_case "serializer" `Quick test_json_serializer ]);
    ]
