(* Property tests for the Bloofi hierarchical cross-site index
   (DESIGN.md §4k) and its wiring into both engines.

   Four classes, per the design contract:

   (a) the tree itself never loses a member: under arbitrary
       insert/update/remove interleavings, a probe for a key held by a
       live site always returns that site — and the probe result is
       EXACTLY the flat per-filter scan's may-match set, which is what
       makes the planner's descent answer-preserving by construction;
   (b) the OR-invariant holds structurally after every mutation
       ([invariant_ok]: each inner filter is the union of its live
       children, or absent exactly when children were incompatible);
   (c) differential: bloofi on ≡ bloofi off, byte-identical results
       across exec modes × batching × reliability × loss × both
       engines — the index only ever changes the cost of a plan;
   (d) staleness is sound: a stale tree may over-ship, it never
       wrongly prunes — updates landing after a summary was learned
       are still found, on the planner path, the [Seed_from] re-query
       broadcast, and across a TCP peer restart (epoch regression). *)

module Oid = Hf_data.Oid
module Store = Hf_data.Store
module Cluster = Hf_server.Cluster
module Bloom = Hf_index.Bloom
module Bloofi = Hf_index.Bloofi
module Rc = Hf_index.Remote_cache
module Tcp = Hf_net.Tcp_site

open Hf_test_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Hf_query.Parser.parse_body
let compile q = Hf_query.Compile.compile (parse q)

let qtest t = QCheck_alcotest.to_alcotest t

(* --- (a) + (b): the tree against a model ---------------------------- *)

let fresh_filter ?(expected = 1) keys =
  let bloom = Bloom.create ~expected:(max expected (List.length keys)) ~fp_rate:0.01 in
  List.iter (Bloom.add bloom) keys;
  bloom

(* Random insert/update/remove interleavings against a trivial model
   (site -> keys).  After EVERY mutation the OR-invariant must hold;
   at the end, membership matches the model and probing for any key a
   live site holds finds that site — no false negatives through the
   union path, whatever shape the mutations left the tree in. *)
let prop_tree_model =
  QCheck2.Test.make ~name:"bloofi: model agreement under mutation interleavings" ~count:150
    QCheck2.Gen.int
    (fun seed ->
      let prng = Hf_util.Prng.create seed in
      let order = 2 + Hf_util.Prng.next_int prng 4 in
      let tree = Bloofi.create ~order () in
      let model : (int, string list) Hashtbl.t = Hashtbl.create 16 in
      let ops = 1 + Hf_util.Prng.next_int prng 80 in
      let ok = ref true in
      for step = 0 to ops - 1 do
        let site = Hf_util.Prng.next_int prng 24 in
        (match Hf_util.Prng.next_int prng 3 with
        | 0 | 1 ->
            (* insert fresh, or replace (the Cache_version churn path) *)
            let nk = Hf_util.Prng.next_int prng 6 in
            let keys = List.init nk (fun k -> Printf.sprintf "s%d-v%d-%d" site step k) in
            Bloofi.insert tree ~site (fresh_filter keys);
            Hashtbl.replace model site keys
        | _ ->
            Bloofi.remove tree ~site;
            Hashtbl.remove model site);
        ok := !ok && Bloofi.invariant_ok tree
      done;
      ok := !ok && Bloofi.cardinal tree = Hashtbl.length model;
      Hashtbl.iter
        (fun site keys ->
          ok := !ok && Bloofi.mem tree ~site;
          List.iter
            (fun key ->
              let r = Bloofi.probe tree [ [ key ] ] in
              ok := !ok && List.mem site r.Bloofi.sites)
            keys)
        model;
      !ok)

(* The descent is EXACTLY the flat scan: for random filters and random
   probe groups, [probe] returns precisely the sites whose own filter
   may match the disjunction-of-conjunctions — the equality the engines
   rely on for byte-identical answers. *)
let prop_probe_equals_flat_scan =
  QCheck2.Test.make ~name:"bloofi: probe ≡ flat per-filter scan" ~count:200 QCheck2.Gen.int
    (fun seed ->
      let prng = Hf_util.Prng.create seed in
      let tree = Bloofi.create ~order:(2 + Hf_util.Prng.next_int prng 3) () in
      let n = 1 + Hf_util.Prng.next_int prng 20 in
      let filters =
        List.init n (fun site ->
            let nk = Hf_util.Prng.next_int prng 5 in
            let keys = List.init nk (fun k -> Printf.sprintf "s%d-%d" site k) in
            let bloom = fresh_filter keys in
            Bloofi.insert tree ~site bloom;
            (site, bloom))
      in
      (* probes drawn from both present and absent key spaces *)
      let any_key () =
        if Hf_util.Prng.next_bool prng 0.5 then
          Printf.sprintf "s%d-%d" (Hf_util.Prng.next_int prng n) (Hf_util.Prng.next_int prng 5)
        else Printf.sprintf "absent-%d" (Hf_util.Prng.next_int prng 10)
      in
      let groups =
        List.init (Hf_util.Prng.next_int prng 4) (fun _ ->
            List.init (Hf_util.Prng.next_int prng 4) (fun _ -> any_key ()))
      in
      let flat_may bloom =
        groups = [] || List.exists (fun g -> List.for_all (Bloom.mem bloom) g) groups
      in
      let expected =
        List.sort Int.compare
          (List.filter_map (fun (site, bloom) -> if flat_may bloom then Some site else None) filters)
      in
      let r = Bloofi.probe tree groups in
      r.Bloofi.sites = expected)

(* Deterministic growth: pushing past leaf capacity rebuilds one level
   deeper, keeps every site, and sheds removed sites' bits (exact
   recomputation, not grow-only OR). *)
let test_tree_growth_and_shrink () =
  let tree = Bloofi.create ~order:3 () in
  (* filters sized so the inner ORs don't saturate: sublinear descent
     is only observable when the union of 50 leaves still discriminates *)
  for site = 0 to 49 do
    Bloofi.insert tree ~site (fresh_filter ~expected:64 [ Printf.sprintf "key-%d" site ]);
    check_bool (Printf.sprintf "invariant after insert %d" site) true (Bloofi.invariant_ok tree)
  done;
  check_int "all indexed" 50 (Bloofi.cardinal tree);
  check_bool "grew at least twice" true (Bloofi.rebuilds tree >= 2);
  (* a probe for one site's key touches far fewer nodes than one per
     leaf: the whole point of the hierarchy *)
  let r = Bloofi.probe tree [ [ "key-17" ] ] in
  check_bool "finds the site" true (List.mem 17 r.Bloofi.sites);
  check_bool "descent is sublinear" true (r.Bloofi.touched < 50);
  (* removal really sheds bits: after dropping site 17, its key prunes
     the whole tree (modulo Bloom false positives on 1-key filters,
     which the 0.01 budget makes vanishingly unlikely here) *)
  Bloofi.remove tree ~site:17;
  check_bool "invariant after remove" true (Bloofi.invariant_ok tree);
  check_int "one fewer" 49 (Bloofi.cardinal tree);
  check_bool "removed site unindexed" false (Bloofi.mem tree ~site:17);
  for site = 0 to 49 do
    Bloofi.remove tree ~site
  done;
  check_int "empty" 0 (Bloofi.cardinal tree);
  check_bool "invariant on empty" true (Bloofi.invariant_ok tree);
  let r = Bloofi.probe tree [ [ "anything" ] ] in
  check_int "empty tree prunes nothing into existence" 0 (List.length r.Bloofi.sites)

(* --- (c) differential: bloofi on ≡ bloofi off ------------------------ *)

let exec_modes = [ Cluster.Exec_ship; Cluster.Exec_scatter; Cluster.Exec_auto ]

let all_queries = cache_queries @ scatter_queries

(* One cube cell: same corpus, same query, same seed — a bloofi-on and
   a bloofi-off cluster, each asked three times (so later runs face a
   warm tree), with a random exec mode.  In the deterministic regime
   (lossless, or lossy with reliability) the outcome streams must be
   byte-identical; under fire-and-forget loss both runs must be sound
   against the oracle and exact whenever they declared termination. *)
let bloofi_cell ~seed cell =
  let prng = Hf_util.Prng.create seed in
  let n_sites = 2 + Hf_util.Prng.next_int prng 3 in
  let ds = random_dataset prng ~n_sites in
  let query = List.nth all_queries (Hf_util.Prng.next_int prng (List.length all_queries)) in
  let exec = List.nth exec_modes (Hf_util.Prng.next_int prng (List.length exec_modes)) in
  let origin = Hf_util.Prng.next_int prng n_sites in
  let initial_logical = [ Hf_util.Prng.next_int prng ds.n ] in
  let expected, _ = local_oracle ds (parse query) initial_logical in
  let _, reliable, loss = cell in
  let exact_regime = loss = 0.0 || reliable in
  let run ~bloofi =
    let config = { (config_of ~bloofi ~seed ~cache:true cell) with Cluster.exec } in
    let cluster = C.create ~config ~n_sites () in
    let oids = load_sim cluster ds in
    let program = compile query in
    let initial = List.map (fun i -> oids.(i)) initial_logical in
    List.init 3 (fun _ ->
        let o = C.run_query cluster ~origin program initial in
        ( o.Cluster.terminated,
          logical_results oids o.Cluster.result_set,
          sorted_bindings o.Cluster.bindings,
          o.Cluster.unreachable_sites ))
  in
  let on = run ~bloofi:true in
  let off = run ~bloofi:false in
  if exact_regime then List.for_all (fun (t, _, _, _) -> t) on && on = off
  else
    List.for_all
      (fun (terminated, got, _, _) ->
        List.for_all (fun i -> List.mem i expected) got
        && ((not terminated) || got = expected))
      (on @ off)

let cube_props =
  List.map
    (fun cell ->
      let name = Fmt.str "bloofi on ≡ off (sim): %s" (cell_name cell) in
      QCheck2.Test.make ~name ~count:30 QCheck2.Gen.int (fun seed -> bloofi_cell ~seed cell))
    cube

(* The planner's verdicts are the SAME set either way — only the probe
   cost differs, and the decision says how it was computed. *)
let test_sim_plan_index_stats () =
  let prng = Hf_util.Prng.create 11 in
  let n_sites = 3 in
  let ds = random_dataset prng ~n_sites in
  let ds = { ds with placement = Array.map (fun s -> s mod n_sites) ds.placement } in
  let run ~bloofi =
    let config =
      { Cluster.default_config with
        Cluster.cache = Some Rc.default;
        exec = Cluster.Exec_auto;
        bloofi;
      }
    in
    let cluster = C.create ~config ~n_sites () in
    let oids = load_sim cluster ds in
    let o = C.run_query cluster ~origin:0 (compile (List.hd scatter_queries)) [ oids.(0) ] in
    check_bool "terminated" true o.Cluster.terminated;
    Option.get o.Cluster.plan_decision
  in
  let d_on = run ~bloofi:true in
  let d_off = run ~bloofi:false in
  check_bool "same predicted sites" true
    (d_on.Hf_query.Plan.predicted = d_off.Hf_query.Plan.predicted);
  check_bool "same remainder" true (d_on.Hf_query.Plan.remainder = d_off.Hf_query.Plan.remainder);
  check_bool "flat scan carries no index stats" true (d_off.Hf_query.Plan.index = None);
  match d_on.Hf_query.Plan.index with
  | None -> Alcotest.fail "bloofi run must carry index stats"
  | Some stats ->
      check_int "every peer indexed" (n_sites - 1) stats.Hf_query.Plan.indexed;
      check_bool "descent touched nodes" true (stats.Hf_query.Plan.touched >= 1);
      check_bool "pruned within range" true
        (stats.Hf_query.Plan.pruned >= 0 && stats.Hf_query.Plan.pruned <= stats.Hf_query.Plan.indexed)

(* TCP engine: same differential across exec modes, plain and
   batched+reliable, repeated so the second run faces the tree the
   Cache_version replies built.  Also pins the hf.index.bloofi_*
   counters: the planner really did probe the tree, and pruned counts
   stay consistent. *)
let test_tcp_bloofi_differential () =
  let n_sites = 3 in
  let prng = Hf_util.Prng.create 91 in
  let ds = random_dataset prng ~n_sites in
  let ds = { ds with placement = Array.map (fun s -> s mod n_sites) ds.placement } in
  let programs = List.map compile all_queries in
  let counter site name =
    match Hf_obs.Registry.find (Tcp.registry site) name with
    | Some (Hf_obs.Registry.Counter read) -> read ()
    | Some _ | None -> Alcotest.failf "counter %s not registered" name
  in
  let run ~bloofi ~exec ~batch ~reliability =
    with_tcp_sites ~cache:Rc.default ?batch ?reliability ~exec ~bloofi n_sites (fun sites ->
        let oids = load_tcp sites ds in
        let outcomes =
          List.concat_map
            (fun program ->
              List.init 2 (fun _ ->
                  let o = Tcp.run_query sites.(0) program [ oids.(0) ] in
                  check_bool "terminated" true o.Tcp.terminated;
                  (o.Tcp.result_set, sorted_bindings o.Tcp.bindings)))
            programs
        in
        let probes = counter sites.(0) "hf.index.bloofi_probes" in
        let pruned = counter sites.(0) "hf.index.bloofi_pruned_sites" in
        (outcomes, probes, pruned))
  in
  List.iter
    (fun (exec, batch, reliability) ->
      let on, on_probes, on_pruned = run ~bloofi:true ~exec ~batch ~reliability in
      let off, off_probes, _ = run ~bloofi:false ~exec ~batch ~reliability in
      List.iteri
        (fun i ((s_on, b_on), (s_off, b_off)) ->
          check_bool (Fmt.str "result set %d" i) true (Oid.Set.equal s_on s_off);
          check_bool (Fmt.str "bindings %d" i) true (b_on = b_off))
        (List.combine on off);
      check_int "no tree, no probes" 0 off_probes;
      check_bool "pruned only what was indexed" true (on_pruned >= 0);
      (* under a planning mode the warm runs must actually have probed *)
      if exec <> Tcp.Exec_ship then
        check_bool (Fmt.str "tree probed under %b" (exec = Tcp.Exec_auto)) true (on_probes > 0))
    [
      (Tcp.Exec_ship, None, None);
      (Tcp.Exec_scatter, None, None);
      (Tcp.Exec_auto, None, None);
      (Tcp.Exec_auto, Some (Hf_proto.Batch.Flush_at 4), Some Hf_proto.Reliable.default);
    ]

(* --- (d) staleness: over-ship maybe, wrongly prune never ------------- *)

(* An update landing AFTER the origin learned the destination's summary
   must still be found: the learned filter proves absence only at the
   version it was built for. *)
let test_sim_update_after_learning () =
  let ds =
    {
      n = 4;
      placement = [| 0; 1; 1; 2 |];
      edges = [ (0, "R", 1); (0, "R", 2); (0, "R", 3) ];
      hot = [| false; false; false; false |];
    }
  in
  let config = { Cluster.default_config with Cluster.cache = Some Rc.default } in
  let cluster = C.create ~config ~n_sites:3 () in
  let oids = load_sim cluster ds in
  let program = compile "(Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)" in
  let o1 = C.run_query cluster ~origin:0 program [ oids.(0) ] in
  check_bool "run1 terminated" true o1.Cluster.terminated;
  check_int "run1: nothing hot yet" 0 (List.length o1.Cluster.results);
  (* site 2's object becomes hot; origin 0's learned summary of site 2
     now proves the wrong thing *)
  ds.hot.(3) <- true;
  Store.replace (C.store cluster 2) (Hf_data.Hobject.of_tuples oids.(3) (tuples_of ds oids 3));
  let o2 = C.run_query cluster ~origin:0 program [ oids.(0) ] in
  check_bool "run2 terminated" true o2.Cluster.terminated;
  check_int "run2: the update is found, not pruned away" 1 (List.length o2.Cluster.results)

(* The [Seed_from] re-query broadcast prune consults the tree before
   any validation round trip can refresh it — the one place a stale
   leaf could silently lose a site's whole contribution.  An update
   between the first query and the re-query must still be found, and
   the bloofi-on cluster must agree with its bloofi-off twin. *)
let test_sim_requery_broadcast_sound () =
  let n = 6 in
  let run ~bloofi =
    let ds =
      {
        n;
        placement = Array.init n (fun i -> i mod 3);
        edges = List.init n (fun i -> (i, "R", (i + 1) mod n));
        hot = Array.make n false;
      }
    in
    let config = { Cluster.default_config with Cluster.cache = Some Rc.default; bloofi } in
    let cluster = C.create ~config ~n_sites:3 () in
    let oids = load_sim cluster ds in
    let q1 = compile "[ (Pointer, \"R\", ?X) ^^X ]* (?, ?, ?)" in
    let o1 = C.run_query cluster ~origin:0 q1 [ oids.(0) ] in
    check_bool "q1 terminated" true o1.Cluster.terminated;
    check_int "q1 reaches the whole ring" n (Oid.Set.cardinal o1.Cluster.result_set);
    let q1_id = Option.get (C.last_query_id cluster) in
    (* the update lands after q1's validations populated the tree *)
    ds.hot.(4) <- true;
    Store.replace
      (C.store cluster ds.placement.(4))
      (Hf_data.Hobject.of_tuples oids.(4) (tuples_of ds oids 4));
    let o2 = C.run_query_on_distributed cluster ~origin:0 ~from:q1_id (compile "(Keyword, \"hot\", ?)") in
    check_bool "re-query terminated" true o2.Cluster.terminated;
    check_bool "the fresh hot object is found" true (Oid.Set.mem oids.(4) o2.Cluster.result_set);
    Oid.Set.cardinal o2.Cluster.result_set
  in
  check_int "bloofi on ≡ off on the re-query" (run ~bloofi:false) (run ~bloofi:true)

(* TCP peer restart: push the peer's summary epoch up, replace the
   process (same site id, fresh store and epoch counter), and make the
   restarted peer's store version COLLIDE with the old lineage's — the
   epoch regression is then the only signal that everything learned
   about the peer is dead.  The hot object the new lineage holds must
   be found. *)
let test_tcp_epoch_regression_sound () =
  let a = Tcp.create ~site:0 ~cache:Rc.default () in
  let b = Tcp.create ~site:1 ~cache:Rc.default () in
  Fun.protect
    ~finally:(fun () ->
      Tcp.shutdown a;
      Tcp.shutdown b)
    (fun () ->
      let wire sites =
        let addresses = Array.map Tcp.address sites in
        Array.iter (fun s -> Tcp.set_peers s addresses) sites
      in
      wire [| a; b |];
      (* b's first oid, deterministically the same for the restarted
         lineage's fresh store *)
      let b_oid = Store.fresh_oid (Tcp.store b) in
      Store.insert (Tcp.store b)
        (Hf_data.Hobject.of_tuples b_oid [ Hf_data.Tuple.number ~key:"id" 1 ]);
      let a_oid = Store.fresh_oid (Tcp.store a) in
      Store.insert (Tcp.store a)
        (Hf_data.Hobject.of_tuples a_oid [ Hf_data.Tuple.pointer ~key:"R" b_oid ]);
      let program = compile "(Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)" in
      let o1 = Tcp.run_query a program [ a_oid ] in
      check_bool "run1 terminated" true o1.Tcp.terminated;
      check_int "run1: not hot" 0 (List.length o1.Tcp.results);
      (* two update+query rounds push b's summary epoch to 3 *)
      for i = 2 to 3 do
        let junk = Store.fresh_oid (Tcp.store b) in
        Store.insert (Tcp.store b)
          (Hf_data.Hobject.of_tuples junk [ Hf_data.Tuple.number ~key:"id" (10 + i) ]);
        let o = Tcp.run_query a program [ a_oid ] in
        check_bool (Fmt.str "warm run %d terminated" i) true o.Tcp.terminated
      done;
      (* restart: same site id, fresh lineage whose version will collide
         with the old one (3 inserts each) but whose content is HOT *)
      Tcp.shutdown b;
      let b2 = Tcp.create ~site:1 ~cache:Rc.default () in
      Fun.protect
        ~finally:(fun () -> Tcp.shutdown b2)
        (fun () ->
          let b2_oid = Store.fresh_oid (Tcp.store b2) in
          check_bool "restarted lineage reuses the oid" true (Oid.equal b_oid b2_oid);
          Store.insert (Tcp.store b2)
            (Hf_data.Hobject.of_tuples b2_oid [ Hf_data.Tuple.keyword "hot" ]);
          for i = 0 to 1 do
            let junk = Store.fresh_oid (Tcp.store b2) in
            Store.insert (Tcp.store b2)
              (Hf_data.Hobject.of_tuples junk [ Hf_data.Tuple.number ~key:"id" (20 + i) ])
          done;
          wire [| a; b2 |];
          let o2 = Tcp.run_query a program [ a_oid ] in
          check_bool "post-restart terminated" true o2.Tcp.terminated;
          check_int "the new lineage's hot object is found, not pruned" 1
            (List.length o2.Tcp.results)))

let () =
  Alcotest.run "hf_bloofi"
    [
      ( "tree",
        [
          qtest prop_tree_model;
          qtest prop_probe_equals_flat_scan;
          Alcotest.test_case "growth, sublinear descent, shrink" `Quick
            test_tree_growth_and_shrink;
        ] );
      ("differential cube", List.map qtest cube_props);
      ( "engines",
        [
          Alcotest.test_case "planner index stats, same verdicts" `Quick
            test_sim_plan_index_stats;
          Alcotest.test_case "tcp differential + counters" `Quick test_tcp_bloofi_differential;
        ] );
      ( "staleness",
        [
          Alcotest.test_case "update after learning is found (sim)" `Quick
            test_sim_update_after_learning;
          Alcotest.test_case "re-query broadcast prune is sound (sim)" `Quick
            test_sim_requery_broadcast_sound;
          Alcotest.test_case "epoch regression on restart (tcp)" `Quick
            test_tcp_epoch_regression_sound;
        ] );
    ]
