(* Differential tests for the scatter-gather execution mode
   (doc/execution_modes.md).  The contract under test: [Exec_scatter]
   and [Exec_auto] return exactly the answer of classic [Exec_ship] —
   same result set, same bindings — across both engines (simulated
   cluster and TCP sites), message loss with reliability, the remote
   cache on or off, and concurrent submissions.  The planner only ever
   changes the cost of a query, never its answer.

   Plus the planner-prediction property: when the predicted site set
   covers every site any pointer chain can reach, no stitched chain
   falls back to classic shipping ([scatter_fallbacks] = 0); when
   prediction misses, fallbacks fire and the answer is still
   byte-identical (covered by the cube). *)

module Oid = Hf_data.Oid
module Cluster = Hf_server.Cluster
module Metrics = Hf_server.Metrics
module Tcp = Hf_net.Tcp_site

(* the random dataset, query list, cluster loaders and TCP scaffolding
   live in the shared harness; [queries] here are its scatter shapes *)
open Hf_test_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Hf_query.Parser.parse_body

let queries = scatter_queries

(* --- Simulated cluster: the loss × cache × mode cube ---------------- *)

type sim_run = {
  outcome : Cluster.outcome;
  results : int list; (* logical ids, sorted *)
  bindings : (string * Hf_data.Value.t list) list;
}

let run_sim ~seed ~loss ~cache_on ~exec ~ds ~query ~origin ~initial_logical =
  let config =
    {
      Cluster.default_config with
      Cluster.loss;
      jitter_seed = seed;
      reliability = reliability_for loss;
      cache = (if cache_on then Some Hf_index.Remote_cache.default else None);
      exec;
    }
  in
  let n_sites = 1 + Array.fold_left max 0 ds.placement in
  let cluster = C.create ~config ~n_sites () in
  let oids = load_sim cluster ds in
  let outcome =
    C.run_query cluster ~origin (Hf_query.Compile.compile query)
      (List.map (fun i -> oids.(i)) initial_logical)
  in
  let logical oid =
    let found = ref (-1) in
    Array.iteri (fun i o -> if Oid.equal o oid then found := i) oids;
    !found
  in
  {
    outcome;
    results = List.sort compare (List.map logical (Oid.Set.elements outcome.Cluster.result_set));
    bindings = sorted_bindings outcome.Cluster.bindings;
  }

let cube_cell ~seed ~loss ~cache_on =
  let prng = Hf_util.Prng.create seed in
  let n_sites = 2 + Hf_util.Prng.next_int prng 3 in
  let ds = random_dataset prng ~n_sites in
  (* pin the placement range so every run builds the same cluster size *)
  let ds = { ds with placement = Array.map (fun s -> s mod n_sites) ds.placement } in
  ds.placement.(0) <- n_sites - 1;
  let query = parse (List.nth queries (Hf_util.Prng.next_int prng (List.length queries))) in
  let origin = Hf_util.Prng.next_int prng n_sites in
  let initial_logical = [ Hf_util.Prng.next_int prng ds.n ] in
  let run exec = run_sim ~seed ~loss ~cache_on ~exec ~ds ~query ~origin ~initial_logical in
  let ship = run Cluster.Exec_ship in
  let scatter = run Cluster.Exec_scatter in
  let auto = run Cluster.Exec_auto in
  ship.outcome.Cluster.terminated
  && scatter.outcome.Cluster.terminated
  && auto.outcome.Cluster.terminated
  && ship.outcome.Cluster.unreachable_sites = []
  && scatter.outcome.Cluster.unreachable_sites = []
  && auto.outcome.Cluster.unreachable_sites = []
  && scatter.results = ship.results
  && auto.results = ship.results
  && scatter.bindings = ship.bindings
  && auto.bindings = ship.bindings
  (* under Exec_ship the planner never runs *)
  && ship.outcome.Cluster.mode = Hf_query.Plan.Ship
  && ship.outcome.Cluster.plan_decision = None

let prop_cube ~loss ~cache_on =
  QCheck2.Test.make
    ~name:
      (Fmt.str "scatter ≡ shipping (sim, loss=%.2f, cache=%s)" loss
         (if cache_on then "on" else "off"))
    ~count:60 QCheck2.Gen.int
    (fun seed -> cube_cell ~seed ~loss ~cache_on)

(* Planner prediction: [predicted] (plus the origin) overapproximating
   every site reachable through ANY pointer edge from the seeds implies
   no chain can escape the scattered set, so [scatter_fallbacks] must be
   0 — prediction was sufficient and the single round really was single.
   (The converse — prediction misses, fallbacks fire, answer unchanged —
   is what the cube above keeps honest.) *)
let reachable_sites ds initial_logical =
  let seen = Array.make ds.n false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter (fun (src, _, dst) -> if src = i then visit dst) ds.edges
    end
  in
  List.iter visit initial_logical;
  let sites = ref [] in
  Array.iteri (fun i reached -> if reached && not (List.mem ds.placement.(i) !sites) then sites := ds.placement.(i) :: !sites) seen;
  List.sort compare !sites

let prop_planner_prediction =
  QCheck2.Test.make ~name:"sufficient prediction means zero fallbacks (sim)" ~count:120
    QCheck2.Gen.int (fun seed ->
      let prng = Hf_util.Prng.create seed in
      let n_sites = 2 + Hf_util.Prng.next_int prng 3 in
      let ds = random_dataset prng ~n_sites in
      let ds = { ds with placement = Array.map (fun s -> s mod n_sites) ds.placement } in
      ds.placement.(0) <- n_sites - 1;
      let query = parse (List.hd queries) in
      let origin = Hf_util.Prng.next_int prng n_sites in
      let initial_logical = [ Hf_util.Prng.next_int prng ds.n ] in
      let r =
        run_sim ~seed ~loss:0.0 ~cache_on:false ~exec:Cluster.Exec_scatter ~ds ~query ~origin
          ~initial_logical
      in
      match (r.outcome.Cluster.mode, r.outcome.Cluster.plan_decision) with
      | Hf_query.Plan.Ship, _ -> true (* planner declined; cube covers this *)
      | Hf_query.Plan.Scatter, None -> false (* scatter without a decision is a bug *)
      | Hf_query.Plan.Scatter, Some d ->
          let touched = reachable_sites ds initial_logical in
          let covered =
            List.for_all (fun s -> s = origin || List.mem s d.Hf_query.Plan.predicted) touched
          in
          (not covered)
          || r.outcome.Cluster.metrics.Metrics.scatter_fallbacks = 0)

(* Concurrency: several scatter-mode queries in flight on one cluster at
   once must each match their own solo Exec_ship answer. *)
let test_sim_concurrent_scatter () =
  let prng = Hf_util.Prng.create 7 in
  let n_sites = 3 in
  let ds = random_dataset prng ~n_sites in
  let ds = { ds with placement = Array.map (fun s -> s mod n_sites) ds.placement } in
  let programs = List.map (fun q -> Hf_query.Compile.compile (parse q)) queries in
  let seeds = List.mapi (fun i _ -> i mod ds.n) programs in
  let solo =
    List.map2
      (fun program seed ->
        let cluster = C.create ~n_sites () in
        let oids = load_sim cluster ds in
        let o = C.run_query cluster ~origin:(seed mod n_sites) program [ oids.(seed) ] in
        Oid.Set.cardinal o.Cluster.result_set)
      programs seeds
  in
  let config = { Cluster.default_config with Cluster.exec = Cluster.Exec_scatter } in
  let cluster = C.create ~config ~n_sites () in
  let oids = load_sim cluster ds in
  let handles =
    List.map2
      (fun program seed -> C.submit cluster ~origin:(seed mod n_sites) program [ oids.(seed) ])
      programs seeds
  in
  C.await_quiescence cluster;
  List.iteri
    (fun i (handle, expected) ->
      let o = C.outcome cluster handle in
      check_bool (Fmt.str "query %d terminated" i) true o.Cluster.terminated;
      check_int (Fmt.str "query %d result count" i) expected
        (Oid.Set.cardinal o.Cluster.result_set))
    (List.combine handles solo)

(* --- TCP sites: mode × cache, sequential and concurrent ------------- *)

let tcp_differential ~cache_on () =
  let n_sites = 3 in
  let prng = Hf_util.Prng.create 23 in
  let ds = random_dataset prng ~n_sites in
  let ds = { ds with placement = Array.map (fun s -> s mod n_sites) ds.placement } in
  let cache = if cache_on then Some Hf_index.Remote_cache.default else None in
  let programs = List.map (fun q -> Hf_query.Compile.compile (parse q)) queries in
  let run exec =
    with_tcp_sites ?cache ~exec n_sites (fun sites ->
        let oids = load_tcp sites ds in
        List.mapi
          (fun i program ->
            let o = Tcp.run_query sites.(i mod n_sites) program [ oids.(i mod ds.n) ] in
            check_bool (Fmt.str "terminated %d" i) true o.Tcp.terminated;
            (o.Tcp.result_set, sorted_bindings o.Tcp.bindings, o.Tcp.mode))
          programs)
  in
  let ship = run Tcp.Exec_ship in
  let scatter = run Tcp.Exec_scatter in
  let auto = run Tcp.Exec_auto in
  List.iteri
    (fun i ((sh, shb, _), ((sc, scb, _), (au, aub, _))) ->
      check_bool (Fmt.str "scatter set %d" i) true (Oid.Set.equal sh sc);
      check_bool (Fmt.str "auto set %d" i) true (Oid.Set.equal sh au);
      check_bool (Fmt.str "scatter bindings %d" i) true (shb = scb);
      check_bool (Fmt.str "auto bindings %d" i) true (shb = aub))
    (List.combine ship (List.combine scatter auto));
  (* Exec_ship never consults the planner *)
  List.iter (fun (_, _, mode) -> check_bool "ship mode" true (mode = Hf_query.Plan.Ship)) ship

let test_tcp_differential_nocache () = tcp_differential ~cache_on:false ()
let test_tcp_differential_cache () = tcp_differential ~cache_on:true ()

let test_tcp_concurrent_scatter () =
  (* several in-flight scatter queries against the answers of their solo
     ship runs — concurrency leg of the cube on real sockets *)
  let n_sites = 3 in
  let prng = Hf_util.Prng.create 41 in
  let ds = random_dataset prng ~n_sites in
  let ds = { ds with placement = Array.map (fun s -> s mod n_sites) ds.placement } in
  let programs = List.map (fun q -> Hf_query.Compile.compile (parse q)) queries in
  let expected =
    with_tcp_sites ~exec:Tcp.Exec_ship n_sites (fun sites ->
        let oids = load_tcp sites ds in
        List.mapi
          (fun i program ->
            (Tcp.run_query sites.(i mod n_sites) program [ oids.(i mod ds.n) ]).Tcp.result_set)
          programs)
  in
  with_tcp_sites ~exec:Tcp.Exec_scatter n_sites (fun sites ->
      let oids = load_tcp sites ds in
      let handles =
        List.mapi
          (fun i program ->
            (i, Tcp.submit_query sites.(i mod n_sites) program [ oids.(i mod ds.n) ]))
          programs
      in
      List.iter2
        (fun (i, handle) want ->
          let o = Tcp.await sites.(i mod n_sites) handle in
          check_bool (Fmt.str "terminated %d" i) true o.Tcp.terminated;
          check_bool (Fmt.str "result set %d" i) true (Oid.Set.equal want o.Tcp.result_set))
        handles expected)

let test_tcp_explain () =
  (* [explain] must work without running the query, on any exec mode *)
  with_tcp_sites ~exec:Tcp.Exec_ship 2 (fun sites ->
      let prng = Hf_util.Prng.create 5 in
      let ds = random_dataset prng ~n_sites:2 in
      let ds = { ds with placement = Array.map (fun s -> s mod 2) ds.placement } in
      let oids = load_tcp sites ds in
      let program = Hf_query.Compile.compile (parse (List.hd queries)) in
      let d = Tcp.explain sites.(0) program [ oids.(0) ] in
      check_bool "eligible star chain" true d.Hf_query.Plan.eligible;
      let finite = Hf_query.Compile.compile (parse (List.nth queries 2)) in
      let d2 = Tcp.explain sites.(0) finite [ oids.(0) ] in
      check_bool "finite iterator ineligible" true (not d2.Hf_query.Plan.eligible);
      check_bool "has a reason" true (d2.Hf_query.Plan.reason <> None))

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "hf_scatter"
    [
      ( "sim cube",
        [
          qtest (prop_cube ~loss:0.0 ~cache_on:false);
          qtest (prop_cube ~loss:0.0 ~cache_on:true);
          qtest (prop_cube ~loss:0.05 ~cache_on:false);
          qtest (prop_cube ~loss:0.05 ~cache_on:true);
          qtest (prop_cube ~loss:0.2 ~cache_on:false);
          qtest (prop_cube ~loss:0.2 ~cache_on:true);
          qtest prop_planner_prediction;
          Alcotest.test_case "concurrent scatter queries" `Quick test_sim_concurrent_scatter;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "mode differential, cache off" `Quick
            test_tcp_differential_nocache;
          Alcotest.test_case "mode differential, cache on" `Quick test_tcp_differential_cache;
          Alcotest.test_case "concurrent scatter queries" `Quick test_tcp_concurrent_scatter;
          Alcotest.test_case "explain without running" `Quick test_tcp_explain;
        ] );
    ]
