(* Concurrent-query tests (DESIGN.md §4h): the admission/scheduling
   layer itself, and the end-to-end guarantees it must preserve on both
   engines — N in-flight queries return exactly the solo answers, every
   per-site table returns to empty at terminal status, per-query metrics
   never bleed across overlapping queries, shutdown under load is clean,
   and the admission gate caps / queues / rejects / cancels as
   documented.

   Set HF_STRESS=1 to extend the churn test to a ~20 s soak (CI runs it
   as a separate job). *)

module Oid = Hf_data.Oid
module Store = Hf_data.Store
module Cluster = Hf_server.Cluster
module Sched = Hf_server.Sched
module Tcp = Hf_net.Tcp_site

(* the ring corpus and the TCP site scaffolding live in the shared
   harness ([ring_tuples], [with_tcp_sites], [load_tcp_ring]) *)
open Hf_test_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse_program = Hf_query.Parser.parse_program

let stress = Sys.getenv_opt "HF_STRESS" = Some "1"

(* ------------------------------------------------------------------ *)
(* Sched unit tests                                                    *)
(* ------------------------------------------------------------------ *)

let test_rr_single_tenant_fifo () =
  let q = Sched.Rr.create () in
  List.iter (fun i -> Sched.Rr.push q ~tenant:0 i) [ 1; 2; 3; 4 ];
  check_int "length" 4 (Sched.Rr.length q);
  check_int "tenants" 1 (Sched.Rr.tenants q);
  let drained = List.init 4 (fun _ -> Option.get (Sched.Rr.pop q)) in
  (* single tenant = exact FIFO: the pre-concurrency queue order *)
  check_bool "FIFO order" true (drained = [ 1; 2; 3; 4 ]);
  check_bool "empty" true (Sched.Rr.is_empty q);
  check_bool "pop on empty" true (Sched.Rr.pop q = None)

let test_rr_round_robin_across_tenants () =
  let q = Sched.Rr.create () in
  (* tenant 1 enters the ring first with two items, tenant 2 with three *)
  Sched.Rr.push q ~tenant:1 "a1";
  Sched.Rr.push q ~tenant:1 "a2";
  Sched.Rr.push q ~tenant:2 "b1";
  Sched.Rr.push q ~tenant:2 "b2";
  Sched.Rr.push q ~tenant:2 "b3";
  check_int "tenants" 2 (Sched.Rr.tenants q);
  let drained = List.init 5 (fun _ -> Option.get (Sched.Rr.pop q)) in
  (* alternating until tenant 1 drains, then tenant 2's tail: one
     chatty tenant cannot starve another *)
  check_bool "fair interleaving" true (drained = [ "a1"; "b1"; "a2"; "b2"; "b3" ]);
  check_bool "empty" true (Sched.Rr.is_empty q)

let test_rr_remove () =
  let q = Sched.Rr.create () in
  Sched.Rr.push q ~tenant:0 10;
  Sched.Rr.push q ~tenant:0 11;
  Sched.Rr.push q ~tenant:1 20;
  check_bool "removes matching item" true (Sched.Rr.remove q (fun x -> x = 11) = Some 11);
  check_bool "no match" true (Sched.Rr.remove q (fun x -> x = 99) = None);
  check_int "two left" 2 (Sched.Rr.length q);
  let drained = List.init 2 (fun _ -> Option.get (Sched.Rr.pop q)) in
  check_bool "others untouched" true (List.sort compare drained = [ 10; 20 ])

let test_gate_cap_queue_reject () =
  let g =
    Sched.create { Sched.in_flight_cap = Some 2; max_queued = Some 1; link_window = None }
  in
  check_bool "first runs" true (Sched.admit g ~tenant:0 "a" = Sched.Run);
  check_bool "second runs" true (Sched.admit g ~tenant:0 "b" = Sched.Run);
  check_bool "third queues" true (Sched.admit g ~tenant:0 "c" = Sched.Queued);
  check_bool "fourth rejected" true (Sched.admit g ~tenant:0 "d" = Sched.Rejected);
  check_int "running" 2 (Sched.running g);
  check_int "queued" 1 (Sched.queued g);
  (* a finished query's slot goes straight to the queued job *)
  check_bool "release hands slot over" true (Sched.release g = Some "c");
  check_int "still two running" 2 (Sched.running g);
  check_int "queue drained" 0 (Sched.queued g);
  check_bool "release with empty queue" true (Sched.release g = None);
  check_int "one running" 1 (Sched.running g)

let test_gate_cancel_queued () =
  let g =
    Sched.create { Sched.in_flight_cap = Some 1; max_queued = None; link_window = None }
  in
  check_bool "admitted" true (Sched.admit g ~tenant:0 "run" = Sched.Run);
  check_bool "queued" true (Sched.admit g ~tenant:0 "wait" = Sched.Queued);
  check_bool "cancel finds it" true (Sched.cancel_queued g (fun x -> x = "wait") = Some "wait");
  check_int "queue empty" 0 (Sched.queued g);
  (* the cancelled job must not take the freed slot *)
  check_bool "nothing waiting" true (Sched.release g = None);
  check_int "idle" 0 (Sched.running g)

let test_gate_unlimited_and_validate () =
  let g = Sched.create Sched.unlimited in
  for i = 1 to 100 do
    check_bool "always runs" true (Sched.admit g ~tenant:(i mod 7) i = Sched.Run)
  done;
  check_int "all running" 100 (Sched.running g);
  (try
     Sched.validate { Sched.in_flight_cap = Some 0; max_queued = None; link_window = None };
     Alcotest.fail "cap 0 must be rejected"
   with Invalid_argument _ -> ());
  try
    Sched.validate { Sched.in_flight_cap = None; max_queued = None; link_window = Some 0 };
    Alcotest.fail "window 0 must be rejected"
  with Invalid_argument _ -> ()

let programs =
  [
    "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)";
    "[ (Pointer, \"R\", ?X) ^^X ]^3 (Keyword, \"hot\", ?)";
    "[ (Pointer, \"R\", ?X) ^^X ]* (Number, \"id\", 0..4)";
    "(Pointer, \"R\", ?X) ^^X (?, ?, ?)";
  ]
  |> List.map parse_program

(* ------------------------------------------------------------------ *)
(* Simulated cluster: per-detector battery                             *)
(* ------------------------------------------------------------------ *)

module Sim_battery (D : Hf_termination.Detector.S) = struct
  module C = Cluster.Make (D)

  let make ?(config = Cluster.default_config) ~n_sites n =
    let cluster = C.create ~config ~n_sites () in
    let oids = Array.init n (fun i -> Store.fresh_oid (C.store cluster (i mod n_sites))) in
    Array.iteri
      (fun i oid ->
        Store.insert (C.store cluster (i mod n_sites))
          (Hf_data.Hobject.of_tuples oid (ring_tuples oids n i)))
      oids;
    (cluster, oids)

  (* Satellite 1: every context and buffered-item entry is evicted at
     terminal status — a long run of queries leaves the per-site tables
     exactly empty, without any [forget_query] help. *)
  let leak_regression () =
    let n_queries = 1000 in
    let cluster, oids = make ~n_sites:3 12 in
    let queries = ref [] in
    for i = 0 to n_queries - 1 do
      let program = List.nth programs (i mod List.length programs) in
      let handle = C.submit cluster ~origin:(i mod 3) program [ oids.(i mod 12) ] in
      C.await_quiescence cluster;
      queries := C.query_id handle :: !queries;
      check_bool "terminated" true (C.outcome cluster handle).Cluster.terminated
    done;
    check_int "contexts evicted" 0 (C.context_count cluster);
    check_int "out_pending drained" 0 (C.buffered_count cluster);
    (* retained result sets survive eviction (Section 5 re-querying)
       until the client forgets the query *)
    check_bool "retained survive" true (C.retained_count cluster > 0);
    List.iter (C.forget_query cluster) !queries;
    check_int "retained freed on forget" 0 (C.retained_count cluster)

  (* Concurrent submissions return exactly the solo answers, for this
     detector, with and without loss (reliability recovers drops).  The
     termination detector converging — [terminated] — is precisely
     "recovered credit = 1" at the origin. *)
  let concurrent_matches_solo ~loss () =
    let n_sites = 3 and n = 12 in
    let config =
      { Cluster.default_config with
        loss;
        reliability = (if loss > 0.0 then Some Hf_proto.Reliable.default else None) }
    in
    let solo_cluster, solo_oids = make ~n_sites n in
    let solo =
      List.mapi
        (fun i program ->
          let outcome =
            C.run_query solo_cluster ~origin:(i mod n_sites) program [ solo_oids.(i mod n) ]
          in
          check_bool "solo terminated" true outcome.Cluster.terminated;
          outcome.Cluster.result_set)
        programs
    in
    let cluster, oids = make ~config ~n_sites n in
    let handles =
      List.mapi
        (fun i program -> C.submit cluster ~origin:(i mod n_sites) program [ oids.(i mod n) ])
        programs
    in
    C.await_quiescence cluster;
    List.iteri
      (fun i handle ->
        let outcome = C.outcome cluster handle in
        check_bool
          (Fmt.str "query %d recovered its credit (loss %.2f)" i loss)
          true outcome.Cluster.terminated;
        check_bool
          (Fmt.str "query %d matches its solo run (loss %.2f)" i loss)
          true
          (Oid.Set.equal outcome.Cluster.result_set (List.nth solo i)))
      handles;
    check_int "contexts evicted" 0 (C.context_count cluster);
    check_int "out_pending drained" 0 (C.buffered_count cluster)
end

module Sim_weighted = Sim_battery (Hf_termination.Weighted)
module Sim_ds = Sim_battery (Hf_termination.Dijkstra_scholten)
module Sim_fc = Sim_battery (Hf_termination.Four_counter)
module SW = Sim_weighted.C

(* Satellite 3 on the sim: per-query metrics are attributed to their
   own query under overlap — each concurrent submission reports exactly
   the work-message count its solo run reports. *)
let test_sim_metrics_no_bleed () =
  let solo_cluster, solo_oids = Sim_weighted.make ~n_sites:3 12 in
  let solo_counts =
    List.mapi
      (fun i program ->
        let outcome =
          SW.run_query solo_cluster ~origin:(i mod 3) program [ solo_oids.(i mod 12) ]
        in
        outcome.Cluster.metrics.Hf_server.Metrics.work_messages)
      programs
  in
  let cluster, oids = Sim_weighted.make ~n_sites:3 12 in
  let handles =
    List.mapi (fun i program -> SW.submit cluster ~origin:(i mod 3) program [ oids.(i mod 12) ]) programs
  in
  SW.await_quiescence cluster;
  List.iteri
    (fun i handle ->
      let outcome = SW.outcome cluster handle in
      check_int
        (Fmt.str "query %d work messages unchanged by neighbors" i)
        (List.nth solo_counts i)
        outcome.Cluster.metrics.Hf_server.Metrics.work_messages)
    handles

(* The differential suites re-run under concurrency: batching and the
   remote cache must stay result-transparent when queries overlap. *)
let test_sim_differential_under_concurrency () =
  let run config =
    let cluster, oids = Sim_weighted.make ~config ~n_sites:3 12 in
    let handles =
      List.mapi (fun i program -> SW.submit cluster ~origin:(i mod 3) program [ oids.(i mod 12) ]) programs
    in
    SW.await_quiescence cluster;
    List.map
      (fun handle ->
        let outcome = SW.outcome cluster handle in
        check_bool "terminated" true outcome.Cluster.terminated;
        outcome.Cluster.result_set)
      handles
  in
  let base = run Cluster.default_config in
  let batched = run { Cluster.default_config with batch = Hf_proto.Batch.Flush_at 4 } in
  let cached = run { Cluster.default_config with cache = Some Hf_index.Remote_cache.default } in
  List.iteri
    (fun i (b, p) ->
      check_bool (Fmt.str "batched query %d transparent" i) true (Oid.Set.equal b p))
    (List.combine base batched);
  List.iteri
    (fun i (b, p) ->
      check_bool (Fmt.str "cached query %d transparent" i) true (Oid.Set.equal b p))
    (List.combine base cached)

(* Admission gate end-to-end on the sim: cap, fair queueing, rejection,
   and cancellation of both queued and running submissions. *)
let test_sim_admission_gate () =
  let config =
    { Cluster.default_config with
      admission = { Sched.in_flight_cap = Some 2; max_queued = Some 2; link_window = None } }
  in
  let cluster, oids = Sim_weighted.make ~config ~n_sites:3 12 in
  let program = List.hd programs in
  let submit () = SW.submit cluster ~origin:0 program [ oids.(0) ] in
  let handles = List.init 4 (fun _ -> submit ()) in
  check_int "two admitted" 2 (SW.admission_running cluster ~origin:0);
  check_int "two queued" 2 (SW.admission_queued cluster ~origin:0);
  (try
     ignore (submit ());
     Alcotest.fail "fifth submission must be rejected"
   with Failure _ -> ());
  (* cancel one queued submission; the remaining three run to completion *)
  let victim = List.nth handles 3 in
  SW.cancel cluster victim;
  check_bool "cancelled flag" true (SW.cancelled victim);
  check_int "one queued" 1 (SW.admission_queued cluster ~origin:0);
  SW.await_quiescence cluster;
  List.iteri
    (fun i handle ->
      if i < 3 then begin
        let outcome = SW.outcome cluster handle in
        check_bool (Fmt.str "query %d terminated" i) true outcome.Cluster.terminated
      end)
    handles;
  check_int "gate idle" 0 (SW.admission_running cluster ~origin:0);
  check_int "queue empty" 0 (SW.admission_queued cluster ~origin:0);
  check_int "contexts evicted" 0 (SW.context_count cluster)

let test_sim_cancel_running () =
  let cluster, oids = Sim_weighted.make ~n_sites:3 12 in
  let program = List.hd programs in
  let keep = SW.submit cluster ~origin:0 program [ oids.(0) ] in
  let victim = SW.submit cluster ~origin:1 program [ oids.(1) ] in
  SW.cancel cluster victim;
  SW.cancel cluster victim;
  (* idempotent *)
  check_bool "cancelled" true (SW.cancelled victim);
  SW.await_quiescence cluster;
  let outcome = SW.outcome cluster keep in
  check_bool "neighbor unaffected" true outcome.Cluster.terminated;
  check_int "results" 4 (List.length outcome.Cluster.results);
  check_int "contexts evicted" 0 (SW.context_count cluster);
  check_int "out_pending drained" 0 (SW.buffered_count cluster)

(* ------------------------------------------------------------------ *)
(* TCP engine                                                          *)
(* ------------------------------------------------------------------ *)

(* Peer-side eviction rides the [Query_done] broadcast, which arrives a
   beat after the origin's [await] returns — poll briefly instead of
   asserting instantly. *)
let eventually ?(timeout = 5.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let total_contexts sites = Array.fold_left (fun acc s -> acc + Tcp.context_count s) 0 sites

(* Satellite 1 on TCP: 1000 queries leave every site's context table
   empty. *)
let test_tcp_leak_regression () =
  let n_queries = 1000 in
  with_tcp_sites 2 (fun sites ->
      let oids = load_tcp_ring sites 6 in
      let program = List.hd programs in
      for i = 0 to n_queries - 1 do
        let outcome = Tcp.run_query sites.(i mod 2) program [ oids.(i mod 6) ] in
        check_bool "terminated" true outcome.Tcp.terminated
      done;
      check_bool "all contexts evicted" true
        (eventually (fun () -> total_contexts sites = 0)))

(* Satellite 2: shutdown with queries mid-flight (and the reliability
   ticker live) must neither hang nor crash, whatever the interleaving. *)
let test_tcp_shutdown_under_load () =
  let fast =
    { Hf_proto.Reliable.ack_timeout = 0.05; backoff = 2.0; max_timeout = 0.2;
      max_retries = 5; ack_delay = 0.01 }
  in
  for round = 0 to 7 do
    let reliability = if round mod 2 = 0 then Some fast else None in
    let sites = Array.init 3 (fun site -> Tcp.create ~site ?reliability ()) in
    let addresses = Array.map Tcp.address sites in
    Array.iter (fun site -> Tcp.set_peers site addresses) sites;
    let oids = load_tcp_ring sites 12 in
    let handles =
      List.init 3 (fun i -> Tcp.submit_query sites.(i) (List.hd programs) [ oids.(i) ])
    in
    ignore handles;
    (* vary how far the queries get before the axe falls *)
    if round mod 3 > 0 then Thread.delay (0.002 *. float_of_int round);
    Array.iter Tcp.shutdown sites;
    (* idempotent *)
    Array.iter Tcp.shutdown sites
  done;
  check_bool "survived shutdown churn" true true

(* Satellite 3 on TCP: [outcome.messages_sent] is per-query.  The ring
   walk is a deterministic chain, so a query overlapped by three
   concurrent copies must report exactly its solo message count —
   any cross-query bleed shows up as a diff. *)
let test_tcp_metrics_no_bleed () =
  with_tcp_sites 3 (fun sites ->
      let oids = load_tcp_ring sites 12 in
      let program = List.hd programs in
      let solo = Tcp.run_query sites.(0) program [ oids.(0) ] in
      check_bool "solo terminated" true solo.Tcp.terminated;
      check_bool "solo crossed the network" true (solo.Tcp.messages_sent > 0);
      let handles = List.init 4 (fun _ -> Tcp.submit_query sites.(0) program [ oids.(0) ]) in
      let outcomes = List.map (Tcp.await sites.(0)) handles in
      List.iteri
        (fun i outcome ->
          check_bool (Fmt.str "copy %d terminated" i) true outcome.Tcp.terminated;
          check_int
            (Fmt.str "copy %d messages = solo messages" i)
            solo.Tcp.messages_sent outcome.Tcp.messages_sent;
          check_int
            (Fmt.str "copy %d bytes = solo bytes" i)
            solo.Tcp.bytes_sent outcome.Tcp.bytes_sent)
        outcomes)

(* Satellite 4 on TCP: K concurrent queries (mixed programs, several
   origins) return byte-identical result sets to their solo runs.  The
   TCP transport has no loss-injection hook, so only the loss = 0 point
   runs here; the lossy points run on the sim battery above. *)
let test_tcp_concurrent_matches_solo () =
  with_tcp_sites 3 (fun sites ->
      let oids = load_tcp_ring sites 12 in
      let solo =
        List.mapi
          (fun i program ->
            let o = Tcp.run_query sites.(i mod 3) program [ oids.(i mod 12) ] in
            check_bool "solo terminated" true o.Tcp.terminated;
            o.Tcp.result_set)
          programs
      in
      let handles =
        List.mapi
          (fun i program -> (i, Tcp.submit_query sites.(i mod 3) program [ oids.(i mod 12) ]))
          programs
      in
      List.iter
        (fun (i, handle) ->
          let outcome = Tcp.await sites.(i mod 3) handle in
          check_bool (Fmt.str "query %d terminated" i) true outcome.Tcp.terminated;
          check_bool
            (Fmt.str "query %d matches its solo run" i)
            true
            (Oid.Set.equal outcome.Tcp.result_set (List.nth solo i)))
        handles;
      check_bool "all contexts evicted" true
        (eventually (fun () -> total_contexts sites = 0)))

(* Same property with batching on: concurrent queries share the
   per-destination batcher, and the answers must not change. *)
let test_tcp_concurrent_batched_matches_solo () =
  with_tcp_sites ~batch:(Hf_proto.Batch.Flush_at 4) 3 (fun sites ->
      let oids = load_tcp_ring sites 12 in
      let solo =
        List.mapi
          (fun i program ->
            (Tcp.run_query sites.(i mod 3) program [ oids.(i mod 12) ]).Tcp.result_set)
          programs
      in
      let handles =
        List.mapi
          (fun i program -> (i, Tcp.submit_query sites.(i mod 3) program [ oids.(i mod 12) ]))
          programs
      in
      List.iter
        (fun (i, handle) ->
          let outcome = Tcp.await sites.(i mod 3) handle in
          check_bool (Fmt.str "batched query %d terminated" i) true outcome.Tcp.terminated;
          check_bool
            (Fmt.str "batched query %d matches its solo run" i)
            true
            (Oid.Set.equal outcome.Tcp.result_set (List.nth solo i)))
        handles)

let test_tcp_admission_gate () =
  let admission = { Sched.in_flight_cap = Some 1; max_queued = Some 1; link_window = None } in
  with_tcp_sites ~admission 3 (fun sites ->
      (* a long ring keeps the first query busy while we stack up more *)
      let oids = load_tcp_ring sites 60 in
      let program = List.hd programs in
      let first = Tcp.submit_query sites.(0) program [ oids.(0) ] in
      let second = Tcp.submit_query sites.(0) program [ oids.(0) ] in
      check_int "one admitted" 1 (Tcp.admission_running sites.(0));
      check_int "one queued" 1 (Tcp.admission_queued sites.(0));
      (try
         ignore (Tcp.submit_query sites.(0) program [ oids.(0) ]);
         Alcotest.fail "third submission must be rejected"
       with Failure _ -> ());
      let o1 = Tcp.await sites.(0) first in
      let o2 = Tcp.await sites.(0) second in
      check_bool "first terminated" true o1.Tcp.terminated;
      check_bool "queued query ran after it" true o2.Tcp.terminated;
      check_bool "same answer" true (Oid.Set.equal o1.Tcp.result_set o2.Tcp.result_set);
      check_int "gate idle" 0 (Tcp.admission_running sites.(0));
      check_int "queue empty" 0 (Tcp.admission_queued sites.(0)))

let test_tcp_cancel () =
  let admission = { Sched.in_flight_cap = Some 1; max_queued = Some 2; link_window = None } in
  with_tcp_sites ~admission 3 (fun sites ->
      let oids = load_tcp_ring sites 60 in
      let program = List.hd programs in
      let running = Tcp.submit_query sites.(0) program [ oids.(0) ] in
      let queued = Tcp.submit_query sites.(0) program [ oids.(0) ] in
      (* cancelling the queued one never lets it take the slot *)
      Tcp.cancel sites.(0) queued;
      Tcp.cancel sites.(0) queued;
      (* idempotent *)
      check_int "queue empty after cancel" 0 (Tcp.admission_queued sites.(0));
      let oq = Tcp.await sites.(0) queued in
      check_bool "queued one reports cancelled" true (oq.Tcp.status = Tcp.Cancelled);
      (* cancelling the running one frees its slot and evicts everywhere *)
      Tcp.cancel sites.(0) running;
      let orun = Tcp.await sites.(0) running in
      check_bool "running one reports cancelled" true (orun.Tcp.status = Tcp.Cancelled);
      check_bool "not terminated" false orun.Tcp.terminated;
      check_int "gate idle" 0 (Tcp.admission_running sites.(0));
      check_bool "contexts evicted at every site" true
        (eventually (fun () -> total_contexts sites = 0));
      (* the site is still healthy for the next query *)
      let after = Tcp.run_query sites.(0) program [ oids.(0) ] in
      check_bool "fresh query unaffected" true after.Tcp.terminated)

(* Many queries churning through a capped gate from several origins at
   once; under HF_STRESS=1 this soaks for ~20 s. *)
let test_tcp_churn () =
  let admission = { Sched.in_flight_cap = Some 4; max_queued = None; link_window = None } in
  with_tcp_sites ~admission 3 (fun sites ->
      let oids = load_tcp_ring sites 12 in
      let duration = if stress then 20.0 else 0.6 in
      let deadline = Unix.gettimeofday () +. duration in
      let rounds = ref 0 in
      while Unix.gettimeofday () < deadline do
        let handles =
          List.concat_map
            (fun origin ->
              List.mapi
                (fun i program ->
                  (origin, Tcp.submit_query sites.(origin) program [ oids.(i mod 12) ]))
                programs)
            [ 0; 1; 2 ]
        in
        List.iteri
          (fun i (origin, handle) ->
            let outcome = Tcp.await sites.(origin) handle in
            if i mod 5 = 4 then Tcp.cancel sites.(origin) handle;
            (* cancel after the fact is a no-op *)
            check_bool "terminated" true outcome.Tcp.terminated)
          handles;
        incr rounds
      done;
      check_bool "made progress" true (!rounds > 0);
      check_bool "all contexts evicted" true
        (eventually (fun () -> total_contexts sites = 0));
      Array.iter
        (fun site ->
          check_int "gate idle" 0 (Tcp.admission_running site);
          check_int "queue empty" 0 (Tcp.admission_queued site))
        sites)

let () =
  Alcotest.run "hf_concurrency"
    [
      ( "sched",
        [
          Alcotest.test_case "Rr: single tenant is FIFO" `Quick test_rr_single_tenant_fifo;
          Alcotest.test_case "Rr: round-robin across tenants" `Quick
            test_rr_round_robin_across_tenants;
          Alcotest.test_case "Rr: remove" `Quick test_rr_remove;
          Alcotest.test_case "gate: cap, queue, reject, release" `Quick
            test_gate_cap_queue_reject;
          Alcotest.test_case "gate: cancel queued" `Quick test_gate_cancel_queued;
          Alcotest.test_case "gate: unlimited + validate" `Quick
            test_gate_unlimited_and_validate;
        ] );
      ( "sim cluster",
        [
          Alcotest.test_case "1000 queries leak nothing" `Quick Sim_weighted.leak_regression;
          Alcotest.test_case "concurrent = solo (weighted)" `Quick
            (Sim_weighted.concurrent_matches_solo ~loss:0.0);
          Alcotest.test_case "concurrent = solo (weighted, lossy)" `Quick
            (Sim_weighted.concurrent_matches_solo ~loss:0.05);
          Alcotest.test_case "concurrent = solo (Dijkstra-Scholten)" `Quick
            (Sim_ds.concurrent_matches_solo ~loss:0.0);
          Alcotest.test_case "concurrent = solo (Dijkstra-Scholten, lossy)" `Quick
            (Sim_ds.concurrent_matches_solo ~loss:0.05);
          Alcotest.test_case "concurrent = solo (four-counter)" `Quick
            (Sim_fc.concurrent_matches_solo ~loss:0.0);
          Alcotest.test_case "concurrent = solo (four-counter, lossy)" `Quick
            (Sim_fc.concurrent_matches_solo ~loss:0.05);
          Alcotest.test_case "metrics do not bleed" `Quick test_sim_metrics_no_bleed;
          Alcotest.test_case "batch/cache differentials hold under concurrency" `Quick
            test_sim_differential_under_concurrency;
          Alcotest.test_case "admission gate" `Quick test_sim_admission_gate;
          Alcotest.test_case "cancel a running query" `Quick test_sim_cancel_running;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "1000 queries leak nothing" `Quick test_tcp_leak_regression;
          Alcotest.test_case "shutdown under load" `Quick test_tcp_shutdown_under_load;
          Alcotest.test_case "metrics do not bleed" `Quick test_tcp_metrics_no_bleed;
          Alcotest.test_case "concurrent = solo" `Quick test_tcp_concurrent_matches_solo;
          Alcotest.test_case "concurrent = solo (batched)" `Quick
            test_tcp_concurrent_batched_matches_solo;
          Alcotest.test_case "admission gate" `Quick test_tcp_admission_gate;
          Alcotest.test_case "cancel" `Quick test_tcp_cancel;
          Alcotest.test_case "churn" `Quick test_tcp_churn;
        ] );
    ]
