(* Tests for the discrete-event simulator core. *)

module Sim = Hf_sim.Sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_empty_run () =
  let sim = Sim.create () in
  Sim.run sim;
  check_float "time stays zero" 0.0 (Sim.now sim);
  check_int "no events" 0 (Sim.events_processed sim)

let test_time_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:3.0 (fun () -> log := "c" :: !log);
  Sim.schedule sim ~delay:1.0 (fun () -> log := "a" :: !log);
  Sim.schedule sim ~delay:2.0 (fun () -> log := "b" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "in time order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock at last event" 3.0 (Sim.now sim)

let test_fifo_on_equal_times () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.schedule sim ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_events_schedule_events () =
  let sim = Sim.create () in
  let times = ref [] in
  let rec tick n () =
    times := Sim.now sim :: !times;
    if n > 0 then Sim.schedule sim ~delay:1.5 (tick (n - 1))
  in
  Sim.schedule sim ~delay:0.0 (tick 3);
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "cascade" [ 0.0; 1.5; 3.0; 4.5 ] (List.rev !times);
  check_int "four events" 4 (Sim.events_processed sim)

let test_schedule_in_past_rejected () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:1.0 (fun () ->
      match Sim.schedule_at sim ~time:0.5 (fun () -> ()) with
      | () -> Alcotest.fail "expected rejection"
      | exception Invalid_argument _ -> ());
  Sim.run sim

let test_negative_delay_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Sim.schedule: negative delay")
    (fun () -> Sim.schedule sim ~delay:(-1.0) (fun () -> ()))

let test_halt () =
  let sim = Sim.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Sim.schedule sim ~delay:1.0 (fun () ->
        incr count;
        if !count = 3 then Sim.halt sim)
  done;
  Sim.run sim;
  check_int "halted after three" 3 !count;
  check_int "pending remain" 7 (Sim.pending sim);
  (* a fresh run resumes *)
  Sim.run sim;
  check_int "resumed" 10 !count

let test_limit () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:5.0 (fun () -> ());
  match Sim.run ~limit:2.0 sim with
  | () -> Alcotest.fail "expected limit breach"
  | exception Sim.Time_limit_exceeded t -> check_float "breach time" 5.0 t

let test_limit_keeps_event () =
  (* The event that breached the limit must stay queued: a later
     unrestricted run still executes it (regression: it used to be
     popped and lost). *)
  let sim = Sim.create () in
  let fired = ref false in
  Sim.schedule sim ~delay:5.0 (fun () -> fired := true);
  (match Sim.run ~limit:2.0 sim with
   | () -> Alcotest.fail "expected limit breach"
   | exception Sim.Time_limit_exceeded _ -> ());
  check_bool "not yet fired" false !fired;
  check_int "still pending" 1 (Sim.pending sim);
  Sim.run sim;
  check_bool "fires on resume" true !fired;
  check_float "clock advanced" 5.0 (Sim.now sim)

let test_step () =
  let sim = Sim.create () in
  let hits = ref 0 in
  Sim.schedule sim ~delay:1.0 (fun () -> incr hits);
  Sim.schedule sim ~delay:2.0 (fun () -> incr hits);
  check_bool "first step" true (Sim.step sim);
  check_int "one hit" 1 !hits;
  check_bool "second step" true (Sim.step sim);
  check_bool "exhausted" false (Sim.step sim)

(* --- Costs --- *)

let test_paper_costs () =
  let c = Hf_sim.Costs.paper in
  check_float "processing 8ms" 0.008 c.Hf_sim.Costs.process;
  check_float "result add 20ms" 0.020 c.Hf_sim.Costs.result_add;
  check_float "work message ~50ms" 0.050 (Hf_sim.Costs.work_message_total c);
  check_float "result message ~50ms" 0.050 (Hf_sim.Costs.result_message_total c)

let test_costs_scale () =
  let c = Hf_sim.Costs.scale 2.0 Hf_sim.Costs.paper in
  check_float "scaled process" 0.016 c.Hf_sim.Costs.process;
  check_float "zero" 0.0 (Hf_sim.Costs.work_message_total Hf_sim.Costs.zero_latency)

(* --- Trace --- *)

let test_trace_record () =
  let trace = Hf_sim.Trace.create () in
  Hf_sim.Trace.record trace ~time:1.0 ~site:0 ~kind:"work-send" ~detail:"x";
  Hf_sim.Trace.record trace ~time:2.0 ~site:1 ~kind:"work-recv" ~detail:"x";
  Hf_sim.Trace.record trace ~time:3.0 ~site:1 ~kind:"work-send" ~detail:"y";
  check_int "count" 3 (Hf_sim.Trace.count trace);
  check_int "by kind" 2 (Hf_sim.Trace.count_kind trace "work-send");
  check_int "ordered" 3 (List.length (Hf_sim.Trace.events trace));
  Hf_sim.Trace.clear trace;
  check_int "cleared" 0 (Hf_sim.Trace.count trace)

let test_trace_limit () =
  let trace = Hf_sim.Trace.create ~limit:2 () in
  for i = 1 to 5 do
    Hf_sim.Trace.record trace ~time:(float_of_int i) ~site:0 ~kind:"k" ~detail:""
  done;
  check_int "capped" 2 (Hf_sim.Trace.count trace)

let () =
  Alcotest.run "hf_sim"
    [
      ( "sim",
        [
          Alcotest.test_case "empty run" `Quick test_empty_run;
          Alcotest.test_case "time ordering" `Quick test_time_ordering;
          Alcotest.test_case "FIFO on equal times" `Quick test_fifo_on_equal_times;
          Alcotest.test_case "events schedule events" `Quick test_events_schedule_events;
          Alcotest.test_case "past scheduling rejected" `Quick test_schedule_in_past_rejected;
          Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
          Alcotest.test_case "halt and resume" `Quick test_halt;
          Alcotest.test_case "time limit" `Quick test_limit;
          Alcotest.test_case "limit keeps the breaching event" `Quick test_limit_keeps_event;
          Alcotest.test_case "single step" `Quick test_step;
        ] );
      ( "costs",
        [
          Alcotest.test_case "paper basic times" `Quick test_paper_costs;
          Alcotest.test_case "scaling" `Quick test_costs_scale;
        ] );
      ( "trace",
        [
          Alcotest.test_case "recording" `Quick test_trace_record;
          Alcotest.test_case "limit" `Quick test_trace_limit;
        ] );
    ]
