(* hfcheck: each rule against a known-bad fixture (exact findings), a
   known-good fixture (zero findings), suppression and baseline
   round-trips, and a self-check that the repo's own libraries are
   clean.  The fixtures live in test/fixtures and are compiled as an
   ordinary (warning-silenced) library so dune produces their .cmt
   files; this test runs from _build/default/test, so they are under
   fixtures/. *)

module A = Hf_analysis

(* dune runtest runs this from _build/default/test; dune exec runs it
   from the workspace root.  Cope with both. *)
let in_build_test_dir = Sys.file_exists "fixtures/.hf_check_fixtures.objs"

let fixtures_dir =
  if in_build_test_dir then "fixtures/.hf_check_fixtures.objs/byte"
  else "_build/default/test/fixtures/.hf_check_fixtures.objs/byte"

let lib_build_dir = if in_build_test_dir then "../lib" else "_build/default/lib"

let fixture name = Filename.concat fixtures_dir ("hf_check_fixtures__" ^ name ^ ".cmt")

(* Fixtures live under test/, so both scopes are forced open. *)
let everywhere ?baseline () =
  {
    (A.Driver.default_config ?baseline ()) with
    A.Driver.scope = (fun _ -> true);
    io_scope = (fun _ -> true);
  }

let load name =
  match A.Cmt_load.read (fixture name) with
  | Ok (Some unit_info) -> unit_info
  | Ok None -> Alcotest.failf "%s: not an implementation cmt" name
  | Error { reason; _ } -> Alcotest.failf "%s: %s" name reason

let analyze ?baseline name = A.Driver.analyze_units (everywhere ?baseline ()) [ load name ]

let lines rule report =
  report.A.Driver.findings
  |> List.filter (fun f -> f.A.Finding.rule = rule)
  |> List.map (fun f -> f.A.Finding.line)
  |> List.sort_uniq Int.compare

let int_list = Alcotest.(list int)

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= hn && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let test_poly_compare () =
  let report = analyze "Bad_r1" in
  Alcotest.check int_list "poly-compare lines" [ 3; 5; 7; 9; 12; 14; 16 ]
    (lines "poly-compare" report);
  Alcotest.(check int) "nothing else" 7 (List.length report.A.Driver.findings)

let test_codec_tag () =
  let report = analyze "Bad_r2" in
  Alcotest.check int_list "codec-tag lines" [ 17; 19 ] (lines "codec-tag" report);
  let messages = List.map (fun f -> f.A.Finding.message) report.A.Driver.findings in
  let expect fragment =
    if not (List.exists (fun m -> contains m fragment) messages) then
      Alcotest.failf "no finding mentions %S in %a" fragment
        Fmt.(Dump.list string)
        messages
  in
  expect "duplicate wire tag 0";
  expect "decodes it at tag 2";
  expect "reserved";
  Alcotest.(check int) "three findings" 3 (List.length report.A.Driver.findings)

let test_guarded_by () =
  let report = analyze "Bad_r3" in
  Alcotest.check int_list "guarded-by lines" [ 17; 19 ] (lines "guarded-by" report);
  (* line 17 is an increment: both the read and the write are flagged *)
  Alcotest.(check int) "three findings" 3 (List.length report.A.Driver.findings)

let test_guarded_by_two_locks () =
  (* The §4h scheduler adds a second lock next to the site lock; R3
     matches guards by name, so holding [locked] must not license a
     field guarded by [sched_locked]. *)
  let report = analyze "Bad_r3_sched" in
  Alcotest.check int_list "guarded-by lines" [ 24; 27 ] (lines "guarded-by" report);
  let messages = List.map (fun f -> f.A.Finding.message) report.A.Driver.findings in
  if not (List.exists (fun m -> contains m "sched_locked") messages) then
    Alcotest.failf "no finding names the scheduler lock in %a"
      Fmt.(Dump.list string)
      messages;
  (* line 24 is an increment: both the read and the write are flagged *)
  Alcotest.(check int) "three findings" 3 (List.length report.A.Driver.findings)

let test_guarded_by_gauge_closures () =
  (* The §4i registry reads Sched state through thunks registered once
     and called at scrape time: R3 must see through the closure — an
     unlocked read deferred into a thunk is still unlocked — while a
     thunk that takes the lock inside stays clean. *)
  let report = analyze "Bad_r3_gauge" in
  Alcotest.check int_list "guarded-by lines" [ 25; 27 ] (lines "guarded-by" report);
  (* line 27 reads both guarded fields *)
  Alcotest.(check int) "three findings" 3 (List.length report.A.Driver.findings)

let test_swallow () =
  let report = analyze "Bad_r4" in
  Alcotest.check int_list "swallow lines" [ 3; 5 ] (lines "swallow" report);
  Alcotest.(check int) "nothing else" 2 (List.length report.A.Driver.findings)

let test_io () =
  let report = analyze "Bad_r5" in
  Alcotest.check int_list "io lines" [ 3; 5 ] (lines "io" report);
  Alcotest.(check int) "nothing else" 2 (List.length report.A.Driver.findings)

let test_io_scoped_out () =
  (* With the default config the io rule does not apply outside lib/. *)
  let config =
    { (A.Driver.default_config ()) with A.Driver.scope = (fun _ -> true) }
  in
  let report = A.Driver.analyze_units config [ load "Bad_r5" ] in
  Alcotest.check int_list "io silent outside lib/" [] (lines "io" report)

let test_good_clean () =
  let report = analyze "Good_clean" in
  Alcotest.check int_list "no findings"
    []
    (List.map (fun f -> f.A.Finding.line) report.A.Driver.findings);
  Alcotest.(check int) "nothing suppressed" 0 report.A.Driver.suppressed

let test_suppressed () =
  let report = analyze "Suppressed" in
  Alcotest.check int_list "all findings suppressed" []
    (List.map (fun f -> f.A.Finding.line) report.A.Driver.findings);
  Alcotest.(check int) "three suppressions" 3 report.A.Driver.suppressed

let test_bad_allow () =
  let report = analyze "Bad_allow" in
  (* A malformed [@hf.allow] never silences the original finding, and is
     itself reported. *)
  Alcotest.check int_list "swallow still reported" [ 4; 6 ] (lines "swallow" report);
  Alcotest.check int_list "malformed attributes reported" [ 4; 6 ]
    (lines "allow-syntax" report);
  Alcotest.(check int) "nothing suppressed" 0 report.A.Driver.suppressed

let test_baseline_roundtrip () =
  let before = analyze "Bad_r1" in
  let count = List.length before.A.Driver.findings in
  Alcotest.(check bool) "fixture has findings" true (count > 0);
  let path = Filename.temp_file "hfcheck_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      A.Allow.save_baseline path before.A.Driver.findings;
      let baseline = A.Allow.load_baseline path in
      let after = analyze ~baseline "Bad_r1" in
      Alcotest.check int_list "baseline silences everything" []
        (List.map (fun f -> f.A.Finding.line) after.A.Driver.findings);
      Alcotest.(check int) "all baselined" count after.A.Driver.baselined)

let test_baseline_missing_file () =
  let baseline = A.Allow.load_baseline "no/such/baseline.txt" in
  Alcotest.(check int) "missing baseline is empty" 0 (Hashtbl.length baseline)

(* --- the whole-program rules (R6-R8): summaries linked across units --- *)

let analyze_many ?rules names =
  let config = { (everywhere ()) with A.Driver.rules } in
  A.Driver.analyze_units config (List.map load names)

let expect_messages report fragments =
  let messages = List.map (fun f -> f.A.Finding.message) report.A.Driver.findings in
  List.iter
    (fun fragment ->
      if not (List.exists (fun m -> contains m fragment) messages) then
        Alcotest.failf "no finding mentions %S in %a" fragment
          Fmt.(Dump.list string)
          messages)
    fragments

let test_lock_order () =
  (* Both modules linked: the opposite acquisition orders close a cycle. *)
  let report = analyze_many [ "Bad_r6_a"; "Bad_r6_b" ] in
  Alcotest.(check int) "exactly one cycle finding" 1
    (List.length report.A.Driver.findings);
  expect_messages report [ "lock-order cycle"; "bad_r6_a.lock_a"; "bad_r6_b.lock_b" ];
  Alcotest.(check int) "both locks in the graph" 2
    (List.length report.A.Driver.lock_graph.A.Linker.nodes)

let test_lock_order_needs_linking () =
  (* Module A alone: the call into B is unresolvable and B's guard is
     unknown, so neither edge of the cycle exists. *)
  let report = analyze_many [ "Bad_r6_a" ] in
  Alcotest.check int_list "module A alone is silent" []
    (List.map (fun f -> f.A.Finding.line) report.A.Driver.findings)

let test_blocking_under_lock () =
  let report = analyze "Bad_r7" in
  Alcotest.check int_list "blocking-under-lock lines" [ 20; 25; 30; 36 ]
    (lines "blocking-under-lock" report);
  expect_messages report
    [ "Unix.sleepf"; "Thread.join"; "re-acquires"; "Condition.wait" ];
  (* the paired Condition.wait in [good_wait] is NOT flagged *)
  Alcotest.(check int) "nothing else" 4 (List.length report.A.Driver.findings)

let test_credit_linearity () =
  let report = analyze "Bad_r8" in
  Alcotest.check int_list "credit-linearity lines" [ 9; 13; 18; 22 ]
    (lines "credit-linearity" report);
  expect_messages report [ "ignored"; "wildcard"; "never used"; "Credit.discard" ];
  Alcotest.(check int) "documented discard suppressed" 1 report.A.Driver.suppressed;
  Alcotest.(check int) "nothing else" 4 (List.length report.A.Driver.findings)

let test_interproc_clean () =
  let report = analyze "Good_interproc" in
  Alcotest.check int_list "no findings" []
    (List.map (fun f -> f.A.Finding.line) report.A.Driver.findings);
  Alcotest.(check int) "nothing suppressed" 0 report.A.Driver.suppressed;
  (* the consistent locked -> aux_locked order is in the graph, acyclic *)
  Alcotest.(check int) "both locks in the graph" 2
    (List.length report.A.Driver.lock_graph.A.Linker.nodes);
  Alcotest.(check bool) "order edge recorded" true
    (report.A.Driver.lock_graph.A.Linker.edges <> [])

let test_rules_filter () =
  let report =
    analyze_many ~rules:[ "blocking-under-lock" ] [ "Bad_r7"; "Bad_r8" ]
  in
  Alcotest.check int_list "credit findings filtered out" []
    (lines "credit-linearity" report);
  Alcotest.(check int) "only the four R7 findings" 4
    (List.length report.A.Driver.findings);
  Alcotest.(check (list string)) "rules_run reflects the filter"
    [ "blocking-under-lock" ] report.A.Driver.rules_run

let test_json_schema_v2 () =
  let report = analyze_many [ "Bad_r6_a"; "Bad_r6_b" ] in
  let json = Hf_obs.Json.to_string (A.Driver.report_to_json report) in
  List.iter
    (fun fragment ->
      if not (contains json fragment) then
        Alcotest.failf "JSON report lacks %S: %s" fragment json)
    [ "hyperfile-hfcheck/2"; "lock_graph"; "lock-order"; "\"functions\"" ]

let test_dot_export () =
  let report = analyze_many [ "Bad_r6_a"; "Bad_r6_b" ] in
  let dot = A.Linker.dot_of_graph report.A.Driver.lock_graph in
  List.iter
    (fun fragment ->
      if not (contains dot fragment) then
        Alcotest.failf "DOT export lacks %S: %s" fragment dot)
    [ "digraph"; "bad_r6_a.lock_a"; "bad_r6_b.lock_b"; "->" ]

let test_self_check () =
  (* The repo's own libraries must be clean under the default config:
     this is exactly what CI enforces. *)
  let report = A.Driver.analyze_tree (A.Driver.default_config ()) lib_build_dir in
  Alcotest.(check bool) "analyzed a real tree" true (report.A.Driver.files_analyzed > 20);
  (match report.A.Driver.findings with
  | [] -> ()
  | findings ->
    Alcotest.failf "repo is not hfcheck-clean:@.%a"
      Fmt.(list ~sep:Fmt.cut A.Finding.pp)
      findings);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "no unreadable cmts" []
    (List.map
       (fun { A.Cmt_load.cmt_path; reason } -> (cmt_path, reason))
       report.A.Driver.failures)

let () =
  Alcotest.run "analysis"
    [
      ( "rules",
        [
          Alcotest.test_case "poly-compare fixture" `Quick test_poly_compare;
          Alcotest.test_case "codec-tag fixture" `Quick test_codec_tag;
          Alcotest.test_case "guarded-by fixture" `Quick test_guarded_by;
          Alcotest.test_case "guarded-by: two locks (scheduler)" `Quick
            test_guarded_by_two_locks;
          Alcotest.test_case "guarded-by: gauge closures (registry)" `Quick
            test_guarded_by_gauge_closures;
          Alcotest.test_case "swallow fixture" `Quick test_swallow;
          Alcotest.test_case "io fixture" `Quick test_io;
          Alcotest.test_case "io scoped to lib/" `Quick test_io_scoped_out;
          Alcotest.test_case "clean fixture" `Quick test_good_clean;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "hf.allow regions" `Quick test_suppressed;
          Alcotest.test_case "malformed hf.allow" `Quick test_bad_allow;
          Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "missing baseline" `Quick test_baseline_missing_file;
        ] );
      ( "whole-program",
        [
          Alcotest.test_case "lock-order cycle across modules" `Quick test_lock_order;
          Alcotest.test_case "lock-order needs both modules linked" `Quick
            test_lock_order_needs_linking;
          Alcotest.test_case "blocking-under-lock fixture" `Quick
            test_blocking_under_lock;
          Alcotest.test_case "credit-linearity fixture" `Quick test_credit_linearity;
          Alcotest.test_case "interprocedurally clean fixture" `Quick
            test_interproc_clean;
          Alcotest.test_case "--rules filter" `Quick test_rules_filter;
          Alcotest.test_case "JSON schema v2" `Quick test_json_schema_v2;
          Alcotest.test_case "DOT export" `Quick test_dot_export;
        ] );
      ("self", [ Alcotest.test_case "repo is clean" `Quick test_self_check ]);
    ]
