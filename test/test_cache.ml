(* Tests for the cross-site acceleration layer (DESIGN.md §4g): the
   remote-answer cache and Bloom ship pruning.

   The central property is differential: a cluster with the cache ON
   returns exactly the single-store oracle's answer, across the whole
   configuration cube {batching} x {reliability} x {loss} x {cache},
   including after interleaved object updates — stale entries must
   revalidate, never serve.  Plus: Bloom filter properties (no false
   negatives by construction, measured false-positive rate within 2x of
   the configured budget), credit-safety regressions on all three
   termination detectors (a pruned ship or a cache hit must leave
   recovered credit exactly 1), and the TCP transport's cache layer. *)

module Oid = Hf_data.Oid
module Tuple = Hf_data.Tuple
module Store = Hf_data.Store
module Cluster = Hf_server.Cluster
module Metrics = Hf_server.Metrics
module Bloom = Hf_index.Bloom
module Rc = Hf_index.Remote_cache

(* random corpora, the single-store oracle, the configuration cube and
   the cluster loaders live in the shared harness *)
open Hf_test_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Hf_query.Parser.parse_body

let qtest t = QCheck_alcotest.to_alcotest t

(* --- Bloom filter properties ------------------------------------------- *)

(* Absence answers are proofs: anything inserted is always a member. *)
let prop_bloom_no_false_negatives =
  QCheck2.Test.make ~name:"bloom: no false negatives under arbitrary inserts" ~count:300
    QCheck2.Gen.(pair (list_size (int_range 0 200) string_small) (float_range 0.001 0.3))
    (fun (keys, fp_rate) ->
      let bloom = Bloom.create ~expected:(max 1 (List.length keys)) ~fp_rate in
      List.iter (Bloom.add bloom) keys;
      List.for_all (Bloom.mem bloom) keys)

let test_bloom_fp_rate_within_budget () =
  (* Deterministic: insert exactly the sized-for population, then probe
     a disjoint key space.  The measured rate must stay within 2x the
     configured budget (the standard sizing formula plus integer
     rounding keeps it near 1x; 2x allows for hash imperfection). *)
  List.iter
    (fun fp_rate ->
      let n = 2_000 in
      let bloom = Bloom.create ~expected:n ~fp_rate in
      for i = 0 to n - 1 do
        Bloom.add bloom (Printf.sprintf "member-%d" i)
      done;
      let probes = 20_000 in
      let fp = ref 0 in
      for i = 0 to probes - 1 do
        if Bloom.mem bloom (Printf.sprintf "absent-%d" i) then incr fp
      done;
      let measured = float_of_int !fp /. float_of_int probes in
      check_bool
        (Printf.sprintf "fp %.4f within 2x of budget %.3f" measured fp_rate)
        true
        (measured <= 2.0 *. fp_rate);
      (* and the analytic estimate agrees with the budget at full fill *)
      check_bool "fp_estimate near budget" true (Bloom.fp_estimate bloom <= 2.0 *. fp_rate))
    [ 0.01; 0.05 ]

let prop_bloom_wire_roundtrip =
  QCheck2.Test.make ~name:"bloom: wire form round-trips" ~count:200
    QCheck2.Gen.(list_size (int_range 0 50) string_small)
    (fun keys ->
      let bloom = Bloom.create ~expected:(max 1 (List.length keys)) ~fp_rate:0.02 in
      List.iter (Bloom.add bloom) keys;
      match Bloom.of_string (Bloom.to_string bloom) with
      | None -> false
      | Some back -> Bloom.equal bloom back && List.for_all (Bloom.mem back) keys)

let test_bloom_of_string_garbage () =
  List.iter
    (fun s ->
      match Bloom.of_string s with
      | Some _ | None -> ())
    [ ""; "x"; "\xff\xff\xff\xff"; String.make 64 '\x00'; "not a bloom filter" ]

(* OR-merge (the Bloofi inner-node operation): a member of either
   operand is a member of the union — no false negatives survive the
   fold, whatever geometries [create] sized the two filters to. *)
let prop_bloom_union_no_false_negatives =
  QCheck2.Test.make ~name:"bloom: union preserves both operands' members" ~count:300
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 100) string_small)
        (list_size (int_range 0 100) string_small)
        (pair (int_range 1 300) (int_range 1 300)))
    (fun (xs, ys, (ex, ey)) ->
      let a = Bloom.create ~expected:ex ~fp_rate:0.02 in
      let b = Bloom.create ~expected:ey ~fp_rate:0.05 in
      List.iter (Bloom.add a) xs;
      List.iter (Bloom.add b) ys;
      match Bloom.union a b with
      | None -> true (* incompatible geometry: union declines, never lies *)
      | Some u -> List.for_all (Bloom.mem u) (xs @ ys))

(* [plan]ned geometries are always power-of-two wide, so any two planned
   filters fold: union is total on what the cache layer actually builds. *)
let prop_bloom_union_planned_total =
  QCheck2.Test.make ~name:"bloom: union total on planned geometries" ~count:200
    QCheck2.Gen.(pair (int_range 1 5_000) (int_range 1 5_000))
    (fun (ex, ey) ->
      let a = Bloom.create ~expected:ex ~fp_rate:0.01 in
      let b = Bloom.create ~expected:ey ~fp_rate:0.02 in
      Bloom.union a b <> None)

(* A merged filter survives the wire like any other: to_string/of_string
   round-trips the folded geometry bit-exactly. *)
let prop_bloom_union_wire_roundtrip =
  QCheck2.Test.make ~name:"bloom: merged filter round-trips the wire" ~count:200
    QCheck2.Gen.(
      pair (list_size (int_range 0 50) string_small) (list_size (int_range 0 50) string_small))
    (fun (xs, ys) ->
      let a = Bloom.create ~expected:(max 1 (List.length xs)) ~fp_rate:0.02 in
      let b = Bloom.create ~expected:(max 1 (List.length ys)) ~fp_rate:0.02 in
      List.iter (Bloom.add a) xs;
      List.iter (Bloom.add b) ys;
      match Bloom.union a b with
      | None -> false (* planned geometries must fold *)
      | Some u -> (
          match Bloom.of_string (Bloom.to_string u) with
          | None -> false
          | Some back -> Bloom.equal u back && List.for_all (Bloom.mem back) (xs @ ys)))

(* A store's summary covers its content and changes when the content
   does — the version-gated rebuild in the cluster relies on both. *)
let test_summary_tracks_store () =
  let store = Store.create ~site:0 in
  let oid = Store.fresh_oid store in
  Store.insert store (Hf_data.Hobject.of_tuples oid [ Tuple.keyword "alpha" ]);
  let v0 = Store.version store in
  let s0 = Rc.summary_of_store Rc.default store in
  check_bool "present type" true (Bloom.mem s0 (Rc.type_probe "Keyword"));
  check_bool "present pair" true
    (Bloom.mem s0 (Rc.pair_probe "Keyword" (Hf_data.Value.str "alpha")));
  check_bool "absent pair is a miss" true
    (Rc.summary_misses s0 [ Rc.pair_probe "Keyword" (Hf_data.Value.str "beta") ]);
  (* mutate: version must bump and a rebuilt summary must cover the
     new tuple the old one proved absent *)
  Store.replace store
    (Hf_data.Hobject.of_tuples oid [ Tuple.keyword "alpha"; Tuple.keyword "beta" ]);
  check_bool "version bumped" true (Store.version store > v0);
  let s1 = Rc.summary_of_store Rc.default store in
  check_bool "rebuilt summary covers the update" false
    (Rc.summary_misses s1 [ Rc.pair_probe "Keyword" (Hf_data.Value.str "beta") ])

(* --- The differential cube --------------------------------------------- *)

(* One corpus, one query, one cube cell, cache on: repeat the query
   several times on the same cluster (so later runs face a warm cache)
   and hold every run to the oracle.  Lossy fire-and-forget runs may
   time out with a partial answer; they must still be sound, and exact
   whenever termination was detected. *)
let run_cell ~seed ~repeats cell =
  let prng = Hf_util.Prng.create seed in
  let n_sites = 2 + Hf_util.Prng.next_int prng 3 in
  let ds = random_dataset prng ~n_sites in
  let query =
    parse (List.nth cache_queries (Hf_util.Prng.next_int prng (List.length cache_queries)))
  in
  let origin = Hf_util.Prng.next_int prng n_sites in
  let initial_logical =
    List.sort_uniq compare
      (List.init (1 + Hf_util.Prng.next_int prng 3) (fun _ -> Hf_util.Prng.next_int prng ds.n))
  in
  let expected, expected_bindings = local_oracle ds query initial_logical in
  let config = config_of ~seed ~cache:true cell in
  let _, reliable, loss = cell in
  let exact_regime = loss = 0.0 || reliable in
  let cluster = C.create ~config ~n_sites () in
  let oids = load_sim cluster ds in
  let program = Hf_query.Compile.compile query in
  let initial = List.map (fun i -> oids.(i)) initial_logical in
  let ok = ref true in
  for _ = 1 to repeats do
    let outcome = C.run_query cluster ~origin program initial in
    let got = logical_results oids outcome.Cluster.result_set in
    if exact_regime then
      ok :=
        !ok && outcome.Cluster.terminated && got = expected
        && sorted_bindings outcome.Cluster.bindings = expected_bindings
        && outcome.Cluster.unreachable_sites = []
    else begin
      (* unreliable loss: sound always, exact when declared terminated *)
      let subset = List.for_all (fun i -> List.mem i expected) got in
      ok := !ok && subset && ((not outcome.Cluster.terminated) || got = expected)
    end
  done;
  !ok

let cube_props =
  List.map
    (fun cell ->
      let name = Fmt.str "cache ≡ oracle: %s" (cell_name cell) in
      QCheck2.Test.make ~name ~count:40 ~print:string_of_int QCheck2.Gen.int (fun seed ->
          run_cell ~seed ~repeats:3 cell))
    cube

(* Cache on vs cache off on the same corpus and query sequence: the
   runs must agree outcome-for-outcome (lossless regime, where both are
   deterministic and exact). *)
let prop_cache_transparent =
  QCheck2.Test.make ~name:"cache on ≡ cache off, repeated queries" ~count:60 QCheck2.Gen.int
    (fun seed ->
      let prng = Hf_util.Prng.create seed in
      let n_sites = 2 + Hf_util.Prng.next_int prng 3 in
      let ds = random_dataset prng ~n_sites in
      let query =
        parse
          (List.nth cache_queries (Hf_util.Prng.next_int prng (List.length cache_queries)))
      in
      let origin = Hf_util.Prng.next_int prng n_sites in
      let initial_logical = [ Hf_util.Prng.next_int prng ds.n ] in
      let run ~cache =
        let config =
          { Cluster.default_config with
            Cluster.cache = (if cache then Some Rc.default else None) }
        in
        let cluster = C.create ~config ~n_sites () in
        let oids = load_sim cluster ds in
        let program = Hf_query.Compile.compile query in
        let initial = List.map (fun i -> oids.(i)) initial_logical in
        List.init 3 (fun _ ->
            let o = C.run_query cluster ~origin program initial in
            ( o.Cluster.terminated,
              logical_results oids o.Cluster.result_set,
              sorted_bindings o.Cluster.bindings ))
      in
      run ~cache:true = run ~cache:false)

(* --- Interleaved updates: stale entries revalidate, never serve -------- *)

(* Flip an object's "hot" keyword between repeats of a cacheable query:
   the destination's store version bumps, so every cached verdict for
   that site must invalidate, and the next answer reflects the update.
   A cache serving stale verdicts fails this immediately. *)
let prop_updates_invalidate =
  QCheck2.Test.make ~name:"interleaved updates: revalidated, never stale" ~count:60
    QCheck2.Gen.int
    (fun seed ->
      let prng = Hf_util.Prng.create seed in
      let n_sites = 2 + Hf_util.Prng.next_int prng 3 in
      let ds = random_dataset prng ~n_sites in
      let query = parse "(Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)" in
      let origin = Hf_util.Prng.next_int prng n_sites in
      let initial_logical = [ Hf_util.Prng.next_int prng ds.n ] in
      let config = { Cluster.default_config with Cluster.cache = Some Rc.default } in
      let cluster = C.create ~config ~n_sites () in
      let oids = load_sim cluster ds in
      let program = Hf_query.Compile.compile query in
      let initial = List.map (fun i -> oids.(i)) initial_logical in
      let ok = ref true in
      for round = 0 to 3 do
        (* warm the cache, then mutate before every later round *)
        if round > 0 then begin
          let victim = Hf_util.Prng.next_int prng ds.n in
          ds.hot.(victim) <- not ds.hot.(victim);
          Store.replace
            (C.store cluster ds.placement.(victim))
            (Hf_data.Hobject.of_tuples oids.(victim) (tuples_of ds oids victim))
        end;
        let expected, expected_bindings = local_oracle ds query initial_logical in
        let outcome = C.run_query cluster ~origin program initial in
        ok :=
          !ok && outcome.Cluster.terminated
          && logical_results oids outcome.Cluster.result_set = expected
          && sorted_bindings outcome.Cluster.bindings = expected_bindings
      done;
      !ok)

(* Deterministic single-scenario version with the counters visible:
   hits occur, then an update invalidates rather than serves. *)
let test_update_invalidation_counters () =
  let ds =
    {
      n = 4;
      placement = [| 0; 1; 1; 1 |];
      edges = [ (0, "R", 1); (0, "R", 2); (0, "R", 3) ];
      hot = [| false; true; false; true |];
    }
  in
  let config = { Cluster.default_config with Cluster.cache = Some Rc.default } in
  let cluster = C.create ~config ~n_sites:2 () in
  let oids = load_sim cluster ds in
  let program = Hf_query.Compile.compile (parse "(Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)") in
  let o1 = C.run_query cluster ~origin:0 program [ oids.(0) ] in
  check_bool "run1 terminated" true o1.Cluster.terminated;
  check_int "run1: all three ship (cold cache)" 3 o1.Cluster.metrics.Metrics.cache_misses;
  check_int "run1: verdicts flowed back" 3 o1.Cluster.metrics.Metrics.cache_fills;
  check_int "run1 results" 2 (List.length o1.Cluster.results);
  let o2 = C.run_query cluster ~origin:0 program [ oids.(0) ] in
  check_int "run2: all three hit" 3 o2.Cluster.metrics.Metrics.cache_hits;
  check_int "run2: nothing shipped" 0 o2.Cluster.metrics.Metrics.work_items;
  check_bool "run2 same answer" true (Oid.Set.equal o1.Cluster.result_set o2.Cluster.result_set);
  (* update: logical 2 becomes hot; its site's version bumps *)
  ds.hot.(2) <- true;
  Store.replace (C.store cluster 1) (Hf_data.Hobject.of_tuples oids.(2) (tuples_of ds oids 2));
  let o3 = C.run_query cluster ~origin:0 program [ oids.(0) ] in
  check_bool "run3 terminated" true o3.Cluster.terminated;
  check_int "run3: stale entries invalidated" 3 o3.Cluster.metrics.Metrics.cache_invalidations;
  check_int "run3: fresh answer includes the update" 3 (List.length o3.Cluster.results);
  check_int "run3: no stale hits" 0 o3.Cluster.metrics.Metrics.cache_hits

(* Bloom prune must also yield to updates: a site summary that proved a
   keyword absent is stale once the keyword appears there. *)
let test_prune_respects_updates () =
  let ds =
    {
      n = 3;
      placement = [| 0; 1; 1 |];
      edges = [ (0, "R", 1); (0, "R", 2) ];
      hot = [| false; false; false |];
    }
  in
  let config = { Cluster.default_config with Cluster.cache = Some Rc.default } in
  let cluster = C.create ~config ~n_sites:2 () in
  let oids = load_sim cluster ds in
  let program = Hf_query.Compile.compile (parse "(Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)") in
  let o1 = C.run_query cluster ~origin:0 program [ oids.(0) ] in
  check_bool "run1 terminated" true o1.Cluster.terminated;
  check_int "run1: both ships pruned (no hot tuples on site 1)" 2
    o1.Cluster.metrics.Metrics.cache_prunes;
  check_int "run1: empty answer" 0 (List.length o1.Cluster.results);
  ds.hot.(1) <- true;
  Store.replace (C.store cluster 1) (Hf_data.Hobject.of_tuples oids.(1) (tuples_of ds oids 1));
  let o2 = C.run_query cluster ~origin:0 program [ oids.(0) ] in
  check_bool "run2 terminated" true o2.Cluster.terminated;
  check_int "run2 finds the new hot object" 1 (List.length o2.Cluster.results)

(* --- Credit safety on every detector ----------------------------------- *)

(* Hits and prunes keep the item's credit at the origin; the weighted
   run_query already asserts recovered credit is exactly 1 on
   termination, and the other detectors' own invariants hold through
   their [terminated] flag.  The scenario forces both a warm-cache hit
   pass and a pruned pass on each detector. *)
module Credit_battery (D : Hf_termination.Detector.S) = struct
  module CD = Hf_server.Cluster.Make (D)

  let load cluster ds =
    let oids =
      Array.init ds.n (fun i -> Store.fresh_oid (CD.store cluster ds.placement.(i)))
    in
    Array.iteri
      (fun i oid ->
        Store.insert (CD.store cluster ds.placement.(i))
          (Hf_data.Hobject.of_tuples oid (tuples_of ds oids i)))
      oids;
    oids

  let run name =
    let ds =
      {
        n = 5;
        placement = [| 0; 1; 1; 2; 2 |];
        edges = [ (0, "R", 1); (0, "R", 2); (0, "R", 3); (0, "R", 4) ];
        hot = [| false; true; false; false; false |];
      }
    in
    let config = { Cluster.default_config with Cluster.cache = Some Rc.default } in
    let cluster = CD.create ~config ~n_sites:3 () in
    let oids = load cluster ds in
    let program =
      Hf_query.Compile.compile (parse "(Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)")
    in
    (* pass 1: site 1 ships (misses), site 2 prunes (no hot tuples) *)
    let o1 = CD.run_query cluster ~origin:0 program [ oids.(0) ] in
    check_bool (name ^ ": pass1 terminated") true o1.Cluster.terminated;
    check_int (name ^ ": pass1 prunes") 2 o1.Cluster.metrics.Metrics.cache_prunes;
    check_int (name ^ ": pass1 misses") 2 o1.Cluster.metrics.Metrics.cache_misses;
    check_int (name ^ ": pass1 results") 1 (List.length o1.Cluster.results);
    (* pass 2: warm — site 1 hits, site 2 prunes again; zero ships *)
    let o2 = CD.run_query cluster ~origin:0 program [ oids.(0) ] in
    check_bool (name ^ ": pass2 terminated") true o2.Cluster.terminated;
    check_int (name ^ ": pass2 hits") 2 o2.Cluster.metrics.Metrics.cache_hits;
    check_int (name ^ ": pass2 prunes") 2 o2.Cluster.metrics.Metrics.cache_prunes;
    check_int (name ^ ": pass2 nothing shipped") 0 o2.Cluster.metrics.Metrics.work_items;
    check_bool (name ^ ": answers agree") true
      (Oid.Set.equal o1.Cluster.result_set o2.Cluster.result_set)
end

module Credit_weighted = Credit_battery (Hf_termination.Weighted)
module Credit_ds = Credit_battery (Hf_termination.Dijkstra_scholten)
module Credit_fc = Credit_battery (Hf_termination.Four_counter)

let test_credit_weighted () = Credit_weighted.run "weighted"
let test_credit_ds () = Credit_ds.run "dijkstra-scholten"
let test_credit_fc () = Credit_fc.run "four-counter"

(* A parked validation round trip must not wedge termination when the
   destination dies: the reliability layer gives the Cache_validate up,
   parked items fall back to plain shipping, those ships fail too, and
   the reclaimed credit still converges — an explicit partial answer. *)
let test_validate_giveup_partial () =
  let ds =
    {
      n = 4;
      placement = [| 0; 1; 1; 0 |];
      edges = [ (0, "R", 1); (0, "R", 2); (0, "R", 3) ];
      hot = [| true; true; true; true |];
    }
  in
  let config =
    { Cluster.default_config with
      Cluster.cache = Some Rc.default;
      reliability = Some Hf_proto.Reliable.default;
    }
  in
  let cluster = C.create ~config ~n_sites:2 () in
  let oids = load_sim cluster ds in
  C.kill_site cluster 1;
  let program = Hf_query.Compile.compile (parse "(Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)") in
  let outcome = C.run_query cluster ~origin:0 program [ oids.(0) ] in
  check_bool "terminated (credit reclaimed through the give-up chain)" true
    outcome.Cluster.terminated;
  check_bool "dead site reported" true (outcome.Cluster.unreachable_sites = [ 1 ]);
  (* the local portion still answered *)
  check_bool "local results delivered" true (List.length outcome.Cluster.results >= 1)

(* Cache hits must not disturb the counts modes' per-site attribution:
   verdicts are only applied locally in Ship_items mode, so counts runs
   with the cache on still equal their cache-off twins. *)
let prop_counts_mode_unaffected =
  QCheck2.Test.make ~name:"counts mode: cache on ≡ cache off" ~count:40 QCheck2.Gen.int
    (fun seed ->
      let prng = Hf_util.Prng.create seed in
      let n_sites = 2 + Hf_util.Prng.next_int prng 3 in
      let ds = random_dataset prng ~n_sites in
      let query = parse "(Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)" in
      let origin = Hf_util.Prng.next_int prng n_sites in
      let initial_logical = [ Hf_util.Prng.next_int prng ds.n ] in
      let run ~cache =
        let config =
          { Cluster.default_config with
            Cluster.result_mode = Cluster.Ship_counts;
            Cluster.cache = (if cache then Some Rc.default else None);
          }
        in
        let cluster = C.create ~config ~n_sites () in
        let oids = load_sim cluster ds in
        let program = Hf_query.Compile.compile query in
        let initial = List.map (fun i -> oids.(i)) initial_logical in
        List.init 3 (fun _ ->
            let o = C.run_query cluster ~origin program initial in
            (o.Cluster.terminated, List.sort compare o.Cluster.counts))
      in
      run ~cache:true = run ~cache:false)

(* --- TCP transport ------------------------------------------------------ *)

module Tcp = Hf_net.Tcp_site

let tcp_counter t name =
  match Hf_obs.Registry.find (Tcp.registry t) name with
  | Some (Hf_obs.Registry.Counter read) -> read ()
  | Some _ | None -> Alcotest.failf "counter %s not registered" name

let test_tcp_cache_repeat () =
  let ds =
    {
      n = 4;
      placement = [| 0; 1; 1; 1 |];
      edges = [ (0, "R", 1); (0, "R", 2); (0, "R", 3) ];
      hot = [| false; true; false; true |];
    }
  in
  with_tcp_sites ~cache:Rc.default 2 (fun sites ->
      let oids = load_tcp sites ds in
      let program =
        Hf_query.Compile.compile (parse "(Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)")
      in
      let o1 = Tcp.run_query sites.(0) program [ oids.(0) ] in
      check_bool "run1 terminated" true o1.Tcp.terminated;
      check_int "run1 results" 2 (List.length o1.Tcp.results);
      let o2 = Tcp.run_query sites.(0) program [ oids.(0) ] in
      check_bool "run2 terminated" true o2.Tcp.terminated;
      check_bool "run2 same answer" true (Oid.Set.equal o1.Tcp.result_set o2.Tcp.result_set);
      check_int "warm run hit all three" 3 (tcp_counter sites.(0) "hf.net.cache_hits");
      check_bool "validations happened" true
        (tcp_counter sites.(0) "hf.net.cache_validations" >= 1);
      check_bool "fills recorded" true (tcp_counter sites.(0) "hf.net.cache_fills" >= 3);
      (* update at site 1: next run must revalidate, not serve stale *)
      ds.hot.(2) <- true;
      Store.replace (Tcp.store sites.(1))
        (Hf_data.Hobject.of_tuples oids.(2) (tuples_of ds oids 2));
      let o3 = Tcp.run_query sites.(0) program [ oids.(0) ] in
      check_bool "run3 terminated" true o3.Tcp.terminated;
      check_int "run3 sees the update" 3 (List.length o3.Tcp.results);
      check_bool "stale entries invalidated" true
        (tcp_counter sites.(0) "hf.net.cache_invalidations" >= 1))

let () =
  Alcotest.run "hf_cache"
    [
      ( "bloom",
        [
          qtest prop_bloom_no_false_negatives;
          Alcotest.test_case "fp rate within 2x budget" `Quick test_bloom_fp_rate_within_budget;
          qtest prop_bloom_wire_roundtrip;
          qtest prop_bloom_union_no_false_negatives;
          qtest prop_bloom_union_planned_total;
          qtest prop_bloom_union_wire_roundtrip;
          Alcotest.test_case "of_string total on garbage" `Quick test_bloom_of_string_garbage;
          Alcotest.test_case "summary tracks the store" `Quick test_summary_tracks_store;
        ] );
      ("differential cube", List.map qtest cube_props);
      ( "differential",
        [
          qtest prop_cache_transparent;
          qtest prop_updates_invalidate;
          qtest prop_counts_mode_unaffected;
          Alcotest.test_case "update invalidates, with counters" `Quick
            test_update_invalidation_counters;
          Alcotest.test_case "prune respects updates" `Quick test_prune_respects_updates;
        ] );
      ( "credit safety",
        [
          Alcotest.test_case "weighted: hit and prune leave credit 1" `Quick test_credit_weighted;
          Alcotest.test_case "dijkstra-scholten: hit and prune leave credit 1" `Quick
            test_credit_ds;
          Alcotest.test_case "four-counter: hit and prune leave credit 1" `Quick test_credit_fc;
          Alcotest.test_case "validate give-up yields explicit partial" `Quick
            test_validate_giveup_partial;
        ] );
      ("tcp", [ Alcotest.test_case "repeat query over TCP with cache" `Quick test_tcp_cache_repeat ]);
    ]
