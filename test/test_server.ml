(* Tests for the distributed server.  The central property — the paper's
   correctness claim — is that distributed processing with query
   shipping returns exactly the same result set as single-site
   processing, for every termination detector, any placement, and any
   query from the supported shapes.  Plus: the distributed-set (counts)
   mode, failure injection (partial results), the local-vs-global mark
   table ablation, and message accounting. *)

module Oid = Hf_data.Oid
module Tuple = Hf_data.Tuple
module Store = Hf_data.Store
module Cluster = Hf_server.Cluster

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Hf_query.Parser.parse_body

(* A random logical dataset to be materialized either on a cluster or a
   single store. *)
type dataset = {
  n : int;
  placement : int array; (* logical -> site *)
  edges : (int * string * int) list;
  hot : bool array;
}

let random_dataset prng ~n_sites =
  let n = 4 + Hf_util.Prng.next_int prng 20 in
  let placement = Array.init n (fun _ -> Hf_util.Prng.next_int prng n_sites) in
  let n_edges = Hf_util.Prng.next_int prng (3 * n) in
  let keys = [| "R"; "S" |] in
  let edges =
    List.init n_edges (fun _ ->
        ( Hf_util.Prng.next_int prng n,
          Hf_util.Prng.pick prng keys,
          Hf_util.Prng.next_int prng n ))
  in
  let hot = Array.init n (fun _ -> Hf_util.Prng.next_bool prng 0.5) in
  { n; placement; edges; hot }

let tuples_of ds oids i =
  let pointers =
    List.filter_map (fun (src, key, dst) -> if src = i then Some (Tuple.pointer ~key oids.(dst)) else None)
      ds.edges
  in
  [ Tuple.number ~key:"id" i ]
  @ (if ds.hot.(i) then [ Tuple.keyword "hot" ] else [])
  @ pointers

(* Materialize on the cluster: oids are born at their placement site. *)
module Load (C : sig
  type t

  val store : t -> int -> Store.t
end) =
struct
  let load cluster ds =
    let oids = Array.init ds.n (fun i -> Store.fresh_oid (C.store cluster ds.placement.(i))) in
    Array.iteri
      (fun i oid ->
        Store.insert (C.store cluster ds.placement.(i)) (Hf_data.Hobject.of_tuples oid (tuples_of ds oids i)))
      oids;
    oids
end

(* Single-store oracle. *)
let local_oracle ds query initial_logical =
  let store = Store.create ~site:0 in
  let oids = Array.init ds.n (fun _ -> Store.fresh_oid store) in
  Array.iteri
    (fun i oid -> Store.insert store (Hf_data.Hobject.of_tuples oid (tuples_of ds oids i)))
    oids;
  let r =
    Hf_engine.Local.run_store ~store (Hf_query.Compile.compile query)
      (List.map (fun i -> oids.(i)) initial_logical)
  in
  (* translate to logical ids *)
  let logical oid =
    let found = ref (-1) in
    Array.iteri (fun i o -> if Oid.equal o oid then found := i) oids;
    !found
  in
  ( List.sort compare (List.map logical (Oid.Set.elements r.Hf_engine.Local.result_set)),
    List.map (fun (t, vs) -> (t, List.sort Hf_data.Value.compare vs)) r.Hf_engine.Local.bindings )

let queries =
  [
    "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)";
    "[ (Pointer, \"R\", ?X) ^^X ]^3 (Keyword, \"hot\", ?)";
    "[ (Pointer, \"R\", ?X) ^X ]* (?, ?, ?)";
    "(Pointer, \"S\", ?X) ^^X (Keyword, \"hot\", ?)";
    "[ (Pointer, \"R\", ?X) ^^X (Pointer, \"S\", ?Y) ^^Y ]^2 (Number, \"id\", 0..9)";
    "[ (Pointer, \"R\", ?X) ^^X ]* (Number, \"id\", ->ids)";
  ]

(* Functor: the same battery for every termination detector. *)
module Battery (D : Hf_termination.Detector.S) = struct
  module C = Hf_server.Cluster.Make (D)
  module L = Load (C)

  let run_once ~seed =
    let prng = Hf_util.Prng.create seed in
    let n_sites = 1 + Hf_util.Prng.next_int prng 5 in
    let ds = random_dataset prng ~n_sites in
    let cluster = C.create ~n_sites () in
    let oids = L.load cluster ds in
    let query = parse (List.nth queries (Hf_util.Prng.next_int prng (List.length queries))) in
    let origin = Hf_util.Prng.next_int prng n_sites in
    let n_initial = 1 + Hf_util.Prng.next_int prng 3 in
    let initial_logical =
      List.sort_uniq compare (List.init n_initial (fun _ -> Hf_util.Prng.next_int prng ds.n))
    in
    let outcome =
      C.run_query cluster ~origin (Hf_query.Compile.compile query)
        (List.map (fun i -> oids.(i)) initial_logical)
    in
    let logical oid =
      let found = ref (-1) in
      Array.iteri (fun i o -> if Oid.equal o oid then found := i) oids;
      !found
    in
    let got =
      List.sort compare (List.map logical (Oid.Set.elements outcome.Cluster.result_set))
    in
    let got_bindings =
      List.map (fun (t, vs) -> (t, List.sort Hf_data.Value.compare vs)) outcome.Cluster.bindings
    in
    let expected, expected_bindings = local_oracle ds query initial_logical in
    outcome.Cluster.terminated && got = expected && got_bindings = expected_bindings

  let prop name =
    QCheck2.Test.make ~name ~count:120 QCheck2.Gen.int (fun seed -> run_once ~seed)
end

module Weighted_battery = Battery (Hf_termination.Weighted)
module Ds_battery = Battery (Hf_termination.Dijkstra_scholten)
module Fc_battery = Battery (Hf_termination.Four_counter)

(* Same battery under heavy message-reordering: every message gets up to
   200 ms of extra random transit, so work, result and control messages
   overtake each other freely. *)
module Jitter_battery = struct
  module C = Hf_server.Cluster.Make (Hf_termination.Weighted)
  module L = Load (C)

  let run_once ~seed =
    let prng = Hf_util.Prng.create seed in
    let n_sites = 2 + Hf_util.Prng.next_int prng 4 in
    let ds = random_dataset prng ~n_sites in
    let config =
      { Cluster.default_config with Cluster.jitter = 0.2; jitter_seed = seed }
    in
    let cluster = C.create ~config ~n_sites () in
    let oids = L.load cluster ds in
    let query = parse (List.nth queries (Hf_util.Prng.next_int prng (List.length queries))) in
    let origin = Hf_util.Prng.next_int prng n_sites in
    let initial_logical = [ Hf_util.Prng.next_int prng ds.n ] in
    let outcome =
      C.run_query cluster ~origin (Hf_query.Compile.compile query)
        (List.map (fun i -> oids.(i)) initial_logical)
    in
    let logical oid =
      let found = ref (-1) in
      Array.iteri (fun i o -> if Oid.equal o oid then found := i) oids;
      !found
    in
    let got =
      List.sort compare (List.map logical (Oid.Set.elements outcome.Cluster.result_set))
    in
    let expected, _ = local_oracle ds query initial_logical in
    outcome.Cluster.terminated && got = expected

  let prop =
    QCheck2.Test.make ~name:"weighted detector under message reordering" ~count:120
      QCheck2.Gen.int (fun seed -> run_once ~seed)
end

(* Message loss: results are never wrong, only possibly incomplete, and
   lost credit shows up as non-termination rather than a false claim of
   completeness. *)
module Loss_battery = struct
  module C = Hf_server.Cluster.Make (Hf_termination.Weighted)
  module L = Load (C)

  let run_once ~seed =
    let prng = Hf_util.Prng.create seed in
    let n_sites = 2 + Hf_util.Prng.next_int prng 3 in
    let ds = random_dataset prng ~n_sites in
    let config = { Cluster.default_config with Cluster.loss = 0.3; jitter_seed = seed } in
    let cluster = C.create ~config ~n_sites () in
    let oids = L.load cluster ds in
    let query = parse (List.hd queries) in
    let initial_logical = [ Hf_util.Prng.next_int prng ds.n ] in
    let outcome =
      C.run_query cluster ~origin:0 (Hf_query.Compile.compile query)
        (List.map (fun i -> oids.(i)) initial_logical)
    in
    let logical oid =
      let found = ref (-1) in
      Array.iteri (fun i o -> if Oid.equal o oid then found := i) oids;
      !found
    in
    let got =
      List.sort compare (List.map logical (Oid.Set.elements outcome.Cluster.result_set))
    in
    let expected, _ = local_oracle ds query initial_logical in
    let subset = List.for_all (fun i -> List.mem i expected) got in
    (* soundness always; completeness only when the detector declared *)
    subset && ((not outcome.Cluster.terminated) || got = expected)

  let prop =
    QCheck2.Test.make ~name:"message loss: sound, incomplete only when undetected" ~count:120
      QCheck2.Gen.int (fun seed -> run_once ~seed)
end

(* Reliability: with the ack/retransmit layer underneath, a lossy
   network yields EXACTLY the lossless answer — same result set,
   termination detected, recovered credit 1 (run_query asserts this
   internally), and no object evaluated twice: receiver-side dedup
   makes redelivery idempotent, so the merged objects_processed count
   matches the lossless run's. *)
module Reliable_battery = struct
  module C = Hf_server.Cluster.Make (Hf_termination.Weighted)
  module L = Load (C)

  (* A generous retry budget so even p = 0.2 never falsely declares a
     live peer unreachable across thousands of property-test messages. *)
  let reliability = Some { Hf_proto.Reliable.default with Hf_proto.Reliable.max_retries = 30 }

  let run_at ~seed ~loss =
    let prng = Hf_util.Prng.create seed in
    let n_sites = 2 + Hf_util.Prng.next_int prng 3 in
    let ds = random_dataset prng ~n_sites in
    let query = parse (List.nth queries (Hf_util.Prng.next_int prng (List.length queries))) in
    let origin = Hf_util.Prng.next_int prng n_sites in
    let initial_logical = [ Hf_util.Prng.next_int prng ds.n ] in
    let run config =
      let cluster = C.create ~config ~n_sites () in
      let oids = L.load cluster ds in
      let outcome =
        C.run_query cluster ~origin (Hf_query.Compile.compile query)
          (List.map (fun i -> oids.(i)) initial_logical)
      in
      let logical oid =
        let found = ref (-1) in
        Array.iteri (fun i o -> if Oid.equal o oid then found := i) oids;
        !found
      in
      (outcome, List.sort compare (List.map logical (Oid.Set.elements outcome.Cluster.result_set)))
    in
    let lossy, got =
      run { Cluster.default_config with Cluster.loss; jitter_seed = seed; reliability }
    in
    let lossless, expected = run { Cluster.default_config with Cluster.jitter_seed = seed } in
    lossy.Cluster.terminated && lossless.Cluster.terminated
    && lossy.Cluster.unreachable_sites = []
    && got = expected
    && lossy.Cluster.engine_stats.Hf_engine.Stats.objects_processed
       = lossless.Cluster.engine_stats.Hf_engine.Stats.objects_processed

  let prop ~loss =
    QCheck2.Test.make
      ~name:(Fmt.str "retransmit at p=%.2f: lossless answer, nothing evaluated twice" loss)
      ~count:80 QCheck2.Gen.int (fun seed -> run_at ~seed ~loss)
end

(* --- Focused scenarios on the weighted cluster --- *)

module WC = Hf_server.Instances.Weighted
module WL = Load (WC)

let ring_dataset ~n ~n_sites =
  {
    n;
    placement = Array.init n (fun i -> i mod n_sites);
    edges = List.init n (fun i -> (i, "R", (i + 1) mod n));
    hot = Array.init n (fun i -> i mod 4 = 0);
  }

let closure_query = parse "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)"

let test_ring_basics () =
  let ds = ring_dataset ~n:12 ~n_sites:3 in
  let cluster = WC.create ~n_sites:3 () in
  let oids = WL.load cluster ds in
  let outcome = WC.run_query cluster ~origin:0 (Hf_query.Compile.compile closure_query) [ oids.(0) ] in
  check_bool "terminated" true outcome.Cluster.terminated;
  check_int "results" 3 (List.length outcome.Cluster.results);
  check_bool "response time positive" true (outcome.Cluster.response_time > 0.0);
  (* ring alternating sites: every hop remote *)
  check_int "work messages = ring hops" 12 outcome.Cluster.metrics.Hf_server.Metrics.work_messages

let test_single_site_no_messages () =
  let ds = ring_dataset ~n:8 ~n_sites:1 in
  let cluster = WC.create ~n_sites:1 () in
  let oids = WL.load cluster ds in
  let outcome = WC.run_query cluster ~origin:0 (Hf_query.Compile.compile closure_query) [ oids.(0) ] in
  check_bool "terminated" true outcome.Cluster.terminated;
  check_int "no work messages" 0 outcome.Cluster.metrics.Hf_server.Metrics.work_messages;
  check_int "no result messages" 0 outcome.Cluster.metrics.Hf_server.Metrics.result_messages

let test_empty_initial_set () =
  let cluster = WC.create ~n_sites:3 () in
  let outcome = WC.run_query cluster ~origin:1 (Hf_query.Compile.compile closure_query) [] in
  check_bool "terminates immediately" true outcome.Cluster.terminated;
  check_int "no results" 0 (List.length outcome.Cluster.results)

let test_sequential_queries_reuse_cluster () =
  let ds = ring_dataset ~n:12 ~n_sites:3 in
  let cluster = WC.create ~n_sites:3 () in
  let oids = WL.load cluster ds in
  let program = Hf_query.Compile.compile closure_query in
  let o1 = WC.run_query cluster ~origin:0 program [ oids.(0) ] in
  let o2 = WC.run_query cluster ~origin:1 program [ oids.(0) ] in
  check_bool "both terminate" true (o1.Cluster.terminated && o2.Cluster.terminated);
  check_bool "same results" true (Oid.Set.equal o1.Cluster.result_set o2.Cluster.result_set)

let test_remote_initial_set () =
  (* Initial objects on other sites: the query ships to them. *)
  let ds = ring_dataset ~n:6 ~n_sites:3 in
  let cluster = WC.create ~n_sites:3 () in
  let oids = WL.load cluster ds in
  let program = Hf_query.Compile.compile (parse "(Keyword, \"hot\", ?)") in
  let outcome = WC.run_query cluster ~origin:0 program [ oids.(1); oids.(4) ] in
  (* logical 4 is hot (4 mod 4 = 0), logical 1 is not *)
  check_bool "terminated" true outcome.Cluster.terminated;
  check_int "one result" 1 (List.length outcome.Cluster.results);
  check_int "two work messages for remote seeds" 2
    outcome.Cluster.metrics.Hf_server.Metrics.work_messages

let test_kill_site_partial_results () =
  (* Paper, introduction: "If Node A is down, one should still be able
     to pose a query to Node B.  This may not produce a complete answer
     to the query, but it may be adequate." *)
  let ds = ring_dataset ~n:12 ~n_sites:3 in
  let cluster = WC.create ~n_sites:3 () in
  let oids = WL.load cluster ds in
  WC.kill_site cluster 2;
  let outcome = WC.run_query cluster ~origin:0 (Hf_query.Compile.compile closure_query) [ oids.(0) ] in
  check_bool "not terminated (credit lost with the dead site)" false outcome.Cluster.terminated;
  (* ring 0->1->2(dead): only logical 0's hotness observable *)
  check_bool "partial results delivered" true (List.length outcome.Cluster.results >= 1)

let test_dead_site_partial_with_reliability () =
  (* Same dead site, but with the reliability layer: instead of hanging
     with lost credit, retransmission exhausts its retries, the credit
     aboard the undeliverable messages is reclaimed, and the query
     TERMINATES with the dead site reported — an explicit partial
     answer rather than a timeout. *)
  let ds = ring_dataset ~n:12 ~n_sites:3 in
  let config =
    { Cluster.default_config with
      Cluster.reliability = Some Hf_proto.Reliable.default;
      jitter_seed = 7;
    }
  in
  let cluster = WC.create ~config ~n_sites:3 () in
  let oids = WL.load cluster ds in
  WC.kill_site cluster 2;
  let outcome = WC.run_query cluster ~origin:0 (Hf_query.Compile.compile closure_query) [ oids.(0) ] in
  check_bool "terminated (credit reclaimed from the dead link)" true outcome.Cluster.terminated;
  check_bool "dead site reported" true (outcome.Cluster.unreachable_sites = [ 2 ]);
  check_bool "give-ups counted" true (outcome.Cluster.metrics.Hf_server.Metrics.give_ups > 0);
  (* ring 0->1->2(dead): only logical 0's hotness observable *)
  check_bool "partial results delivered" true (List.length outcome.Cluster.results >= 1)

let test_reliable_ring_under_loss () =
  (* Deterministic heavy loss on the ring: with retransmission the
     answer is exactly the lossless one, and the loss actually bit
     (retransmits and dup-drops observable). *)
  let ds = ring_dataset ~n:12 ~n_sites:3 in
  let config =
    { Cluster.default_config with
      Cluster.loss = 0.3;
      jitter_seed = 42;
      reliability = Some Hf_proto.Reliable.default;
    }
  in
  let cluster = WC.create ~config ~n_sites:3 () in
  let oids = WL.load cluster ds in
  let outcome = WC.run_query cluster ~origin:0 (Hf_query.Compile.compile closure_query) [ oids.(0) ] in
  check_bool "terminated" true outcome.Cluster.terminated;
  check_bool "no site given up on" true (outcome.Cluster.unreachable_sites = []);
  check_int "full answer despite loss" 3 (List.length outcome.Cluster.results);
  check_bool "losses actually happened" true
    (outcome.Cluster.metrics.Hf_server.Metrics.dropped_messages > 0);
  check_bool "retransmissions happened" true
    (outcome.Cluster.metrics.Hf_server.Metrics.retransmits > 0)

let test_counts_mode () =
  let ds = ring_dataset ~n:12 ~n_sites:3 in
  let config = { Cluster.default_config with Cluster.result_mode = Cluster.Ship_counts } in
  let cluster = WC.create ~config ~n_sites:3 () in
  let oids = WL.load cluster ds in
  let outcome = WC.run_query cluster ~origin:0 (Hf_query.Compile.compile closure_query) [ oids.(0) ] in
  check_bool "terminated" true outcome.Cluster.terminated;
  (* members stay server-side *)
  check_int "no shipped members" 0 outcome.Cluster.metrics.Hf_server.Metrics.results_shipped;
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 outcome.Cluster.counts in
  check_int "counts add up to the result-set size" 3 total

let test_threshold_mode () =
  (* The paper: the count-only method "would probably be employed only
     when the size of the results exceeded some threshold". *)
  let ds = ring_dataset ~n:12 ~n_sites:3 in
  let run threshold =
    let config =
      { Cluster.default_config with Cluster.result_mode = Cluster.Ship_threshold threshold }
    in
    let cluster = WC.create ~config ~n_sites:3 () in
    let oids = WL.load cluster ds in
    WC.run_query cluster ~origin:0 (Hf_query.Compile.compile closure_query) [ oids.(0) ]
  in
  (* ring has 1 result per remote site: a high threshold ships members *)
  let low = run 1 in
  let high = run 100 in
  check_bool "both terminate" true (low.Cluster.terminated && high.Cluster.terminated);
  check_int "high threshold ships members" 2
    high.Cluster.metrics.Hf_server.Metrics.results_shipped;
  check_int "members arrive at the originator" 3 (List.length high.Cluster.results);
  check_int "low threshold ships counts" 0 low.Cluster.metrics.Hf_server.Metrics.results_shipped;
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 low.Cluster.counts in
  check_int "counts cover the whole result set" 3 total

let test_distributed_set_requery () =
  (* Section 5's optimisation: re-query over the retained distributed
     set; compare against running the composed query directly. *)
  let ds = ring_dataset ~n:12 ~n_sites:3 in
  let config = { Cluster.default_config with Cluster.result_mode = Cluster.Ship_counts } in
  let cluster = WC.create ~config ~n_sites:3 () in
  let oids = WL.load cluster ds in
  let q1 = Hf_query.Compile.compile (parse "[ (Pointer, \"R\", ?X) ^^X ]* (?, ?, ?)") in
  let o1 = WC.run_query cluster ~origin:0 q1 [ oids.(0) ] in
  check_bool "first query terminated" true o1.Cluster.terminated;
  let q1_id = Option.get (WC.last_query_id cluster) in
  let q2 = Hf_query.Compile.compile (parse "(Keyword, \"hot\", ?)") in
  let o2 = WC.run_query_on_distributed cluster ~origin:0 ~from:q1_id q2 in
  check_bool "second query terminated" true o2.Cluster.terminated;
  let counts_total = List.fold_left (fun acc (_, n) -> acc + n) 0 o2.Cluster.counts in
  check_int "refined counts" 3 counts_total;
  (* one seed message per remote site *)
  check_int "seed messages" 2 o2.Cluster.metrics.Hf_server.Metrics.work_messages

let test_duplicate_work_accounting () =
  (* Two sites pointing at the same remote object: the second deref
     message is sent (local mark tables!) and ignored on arrival. *)
  let ds =
    {
      n = 3;
      placement = [| 0; 0; 1 |];
      edges = [ (0, "R", 2); (1, "R", 2) ];
      hot = [| true; true; true |];
    }
  in
  let cluster = WC.create ~n_sites:2 () in
  let oids = WL.load cluster ds in
  let program = Hf_query.Compile.compile (parse "(Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)") in
  let outcome = WC.run_query cluster ~origin:0 program [ oids.(0); oids.(1) ] in
  check_bool "terminated" true outcome.Cluster.terminated;
  check_int "both messages sent" 2 outcome.Cluster.metrics.Hf_server.Metrics.work_messages;
  check_int "one was duplicate work" 1
    outcome.Cluster.metrics.Hf_server.Metrics.duplicate_work_messages;
  check_int "all three pass" 3 (List.length outcome.Cluster.results)

(* Dataset where the duplicate dereference is discovered long after the
   remote site first processed the target (a 20-object local chain
   separates the two pointers in time), so a global mark table gets the
   chance to suppress the second message. *)
let late_duplicate_dataset =
  let chain = 20 in
  let n = chain + 2 in
  let target = n - 1 in
  {
    n;
    placement = Array.init n (fun i -> if i = target then 1 else 0);
    edges =
      ((0, "R", target) :: List.init chain (fun i -> (i, "R", i + 1)))
      @ [ (chain, "R", target) ];
    hot = Array.make n true;
  }

let late_duplicate_query =
  Hf_query.Compile.compile (parse "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)")

let test_global_marks_suppress_duplicates () =
  let run mark_scope =
    let config = { Cluster.default_config with Cluster.mark_scope } in
    let cluster = WC.create ~config ~n_sites:2 () in
    let oids = WL.load cluster late_duplicate_dataset in
    WC.run_query cluster ~origin:0 late_duplicate_query [ oids.(0) ]
  in
  let local = run Cluster.Local_marks in
  let global = run Cluster.Global_marks in
  check_bool "both terminated" true (local.Cluster.terminated && global.Cluster.terminated);
  check_bool "same results" true
    (List.length local.Cluster.results = List.length global.Cluster.results);
  check_int "local marks: duplicate message sent" 2
    local.Cluster.metrics.Hf_server.Metrics.work_messages;
  check_int "global marks: duplicate suppressed" 1
    global.Cluster.metrics.Hf_server.Metrics.work_messages

let test_trace_events () =
  let ds = ring_dataset ~n:6 ~n_sites:3 in
  let trace = Hf_sim.Trace.create () in
  let cluster = WC.create ~trace ~n_sites:3 () in
  let oids = WL.load cluster ds in
  let outcome = WC.run_query cluster ~origin:0 (Hf_query.Compile.compile closure_query) [ oids.(0) ] in
  check_bool "terminated" true outcome.Cluster.terminated;
  check_int "sends recorded" outcome.Cluster.metrics.Hf_server.Metrics.work_messages
    (Hf_sim.Trace.count_kind trace "work-send");
  check_bool "termination recorded" true (Hf_sim.Trace.count_kind trace "terminate" = 1)

let test_response_time_single_site_formula () =
  (* With the paper's costs, single-site time = objects * 8ms + results
     * 20ms (the E2 calibration). *)
  let n = 20 in
  let ds = ring_dataset ~n ~n_sites:1 in
  let cluster = WC.create ~n_sites:1 () in
  let oids = WL.load cluster ds in
  let outcome = WC.run_query cluster ~origin:0 (Hf_query.Compile.compile closure_query) [ oids.(0) ] in
  let results = List.length outcome.Cluster.results in
  (* n objects at 8 ms, results at 20 ms, plus one mark-table skip when
     the ring closes back on the root *)
  let expected =
    (float_of_int n *. 0.008) +. (float_of_int results *. 0.020) +. 0.0005
  in
  Alcotest.(check (float 1e-6)) "calibrated formula" expected outcome.Cluster.response_time

let test_object_mobility_with_name_service () =
  (* Section 4: the birth site arbitrates an object's actual location.
     The cluster's locate hook consults a name service, so a moved
     object keeps answering queries from its new site. *)
  let ns = Hf_naming.Name_service.create ~n_sites:2 in
  let locate oid =
    match Hf_naming.Name_service.authoritative ns oid with
    | Some site -> site
    | None -> Oid.birth_site oid
  in
  let cluster = WC.create ~locate ~n_sites:2 () in
  let a = Store.fresh_oid (WC.store cluster 0) in
  let b = Store.fresh_oid (WC.store cluster 1) in
  Hf_naming.Name_service.register ns a;
  Hf_naming.Name_service.register ns b;
  Store.insert (WC.store cluster 0)
    (Hf_data.Hobject.of_tuples a [ Tuple.pointer ~key:"R" b; Tuple.keyword "hot" ]);
  Store.insert (WC.store cluster 1)
    (Hf_data.Hobject.of_tuples b [ Tuple.keyword "hot" ]);
  let program = Hf_query.Compile.compile (parse "(Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)") in
  let before = WC.run_query cluster ~origin:0 program [ a ] in
  check_int "both found before the move" 2 (List.length before.Cluster.results);
  check_int "one remote message" 1 before.Cluster.metrics.Hf_server.Metrics.work_messages;
  (* move b to site 0: update the store contents and the registry *)
  let obj_b = Option.get (Store.find (WC.store cluster 1) b) in
  Store.remove (WC.store cluster 1) b;
  Store.insert (WC.store cluster 0) obj_b;
  Hf_naming.Name_service.move ns b ~to_:0;
  let after = WC.run_query cluster ~origin:0 program [ a ] in
  check_int "both found after the move" 2 (List.length after.Cluster.results);
  check_int "no remote messages once co-located" 0
    after.Cluster.metrics.Hf_server.Metrics.work_messages

let test_concurrent_queries () =
  (* Two queries submitted together execute concurrently, contending for
     the same site CPUs: answers match solo runs, and the shared-site
     contention shows up as response time. *)
  let ds = ring_dataset ~n:12 ~n_sites:3 in
  (* solo reference *)
  let solo =
    let cluster = WC.create ~n_sites:3 () in
    let oids = WL.load cluster ds in
    WC.run_query cluster ~origin:0 (Hf_query.Compile.compile closure_query) [ oids.(0) ]
  in
  let cluster = WC.create ~n_sites:3 () in
  let oids = WL.load cluster ds in
  let program = Hf_query.Compile.compile closure_query in
  let h1 = WC.submit cluster ~origin:0 program [ oids.(0) ] in
  let h2 = WC.submit cluster ~origin:1 program [ oids.(3) ] in
  WC.await_quiescence cluster;
  let o1 = WC.outcome cluster h1 and o2 = WC.outcome cluster h2 in
  check_bool "both terminated" true (o1.Cluster.terminated && o2.Cluster.terminated);
  check_bool "distinct query ids" true
    (not (Hf_proto.Message.equal_query_id (WC.query_id h1) (WC.query_id h2)));
  check_bool "q1 matches solo" true (Oid.Set.equal o1.Cluster.result_set solo.Cluster.result_set);
  check_bool "q2 matches solo (same ring closure)" true
    (Oid.Set.equal o2.Cluster.result_set solo.Cluster.result_set);
  check_bool "contention slows at least one query" true
    (o1.Cluster.response_time >= solo.Cluster.response_time -. 1e-9
    || o2.Cluster.response_time >= solo.Cluster.response_time -. 1e-9)

let test_forget_query () =
  let ds = ring_dataset ~n:6 ~n_sites:2 in
  let cluster = WC.create ~n_sites:2 () in
  let oids = WL.load cluster ds in
  let _ = WC.run_query cluster ~origin:0 (Hf_query.Compile.compile closure_query) [ oids.(0) ] in
  let qid = Option.get (WC.last_query_id cluster) in
  WC.forget_query cluster qid;
  check_bool "gone" true (WC.last_query_id cluster = None)

(* --- Batching: coalesced work messages must not change answers --- *)

let random_policy prng =
  match Hf_util.Prng.next_int prng 4 with
  | 0 -> Hf_proto.Batch.Flush_at 1
  | 1 -> Hf_proto.Batch.Flush_at (2 + Hf_util.Prng.next_int prng 5)
  | 2 -> Hf_proto.Batch.Flush_at 16
  | _ -> Hf_proto.Batch.Flush_on_drain

(* A convoy of concurrent queries (shapes drawn from [seed]) under a
   given flush policy; returns per-query (terminated, logical result
   set) plus aggregate work-message/item counts. *)
let run_convoy ?(loss = 0.0) ~policy ~seed () =
  let prng = Hf_util.Prng.create seed in
  let n_sites = 2 + Hf_util.Prng.next_int prng 4 in
  let ds = random_dataset prng ~n_sites in
  let config =
    { Cluster.default_config with Cluster.batch = policy; loss; jitter_seed = seed }
  in
  let cluster = WC.create ~config ~n_sites () in
  let oids = WL.load cluster ds in
  let n_queries = 1 + Hf_util.Prng.next_int prng 4 in
  let specs =
    List.init n_queries (fun _ ->
        let query = List.nth queries (Hf_util.Prng.next_int prng (List.length queries)) in
        let origin = Hf_util.Prng.next_int prng n_sites in
        let initial = [ Hf_util.Prng.next_int prng ds.n ] in
        (query, origin, initial))
  in
  let handles =
    List.map
      (fun (query, origin, initial) ->
        WC.submit cluster ~origin
          (Hf_query.Compile.compile (parse query))
          (List.map (fun i -> oids.(i)) initial))
      specs
  in
  WC.await_quiescence cluster;
  let logical oid =
    let found = ref (-1) in
    Array.iteri (fun i o -> if Oid.equal o oid then found := i) oids;
    !found
  in
  let outcomes = List.map (WC.outcome cluster) handles in
  let per_query =
    List.map
      (fun o ->
        ( o.Cluster.terminated,
          List.sort compare (List.map logical (Oid.Set.elements o.Cluster.result_set)) ))
      outcomes
  in
  let total f =
    List.fold_left (fun acc o -> acc + f o.Cluster.metrics) 0 outcomes
  in
  ( ds,
    specs,
    per_query,
    total (fun m -> m.Hf_server.Metrics.work_messages),
    total (fun m -> m.Hf_server.Metrics.work_items) )

let prop_batched_equals_unbatched =
  QCheck2.Test.make ~name:"batched = unbatched = oracle (any policy)" ~count:120
    QCheck2.Gen.int (fun seed ->
      let policy =
        random_policy (Hf_util.Prng.create (seed lxor 0x5f5f5f))
      in
      let ds, specs, batched, _, _ = run_convoy ~policy ~seed () in
      let _, _, unbatched, _, _ = run_convoy ~policy:Hf_proto.Batch.unbatched ~seed () in
      (* every query terminates and matches the single-store oracle... *)
      List.for_all2
        (fun (query, _origin, initial) (terminated, got) ->
          let expected, _ = local_oracle ds (parse query) initial in
          terminated && got = expected)
        specs batched
      (* ...and the batched run answers exactly what the unbatched one does *)
      && List.map snd batched = List.map snd unbatched)

let prop_batched_loss_sound =
  QCheck2.Test.make ~name:"batching under message loss stays sound" ~count:120
    QCheck2.Gen.int (fun seed ->
      let policy = random_policy (Hf_util.Prng.create (seed lxor 0x2a2a2a)) in
      let ds, specs, per_query, _, _ = run_convoy ~loss:0.3 ~policy ~seed () in
      List.for_all2
        (fun (query, _origin, initial) (terminated, got) ->
          let expected, _ = local_oracle ds (parse query) initial in
          let subset = List.for_all (fun i -> List.mem i expected) got in
          (* results are never wrong; complete whenever termination was
             actually detected *)
          subset && ((not terminated) || got = expected))
        specs per_query)

let test_convoy_coalesces () =
  (* Six concurrent ring closures at K=4: identical answers, strictly
     fewer wire messages carrying the same items, and the trace still
     shows exactly one work-send per wire message. *)
  let ds = ring_dataset ~n:12 ~n_sites:3 in
  let run policy trace =
    let config = { Cluster.default_config with Cluster.batch = policy } in
    let cluster = WC.create ~config ?trace ~n_sites:3 () in
    let oids = WL.load cluster ds in
    let program = Hf_query.Compile.compile closure_query in
    let handles =
      List.init 6 (fun i -> WC.submit cluster ~origin:(i mod 3) program [ oids.(i) ])
    in
    WC.await_quiescence cluster;
    List.map (WC.outcome cluster) handles
  in
  let plain = run Hf_proto.Batch.unbatched None in
  let trace = Hf_sim.Trace.create () in
  let batched = run (Hf_proto.Batch.Flush_at 4) (Some trace) in
  List.iter (fun o -> check_bool "terminated" true o.Cluster.terminated) (plain @ batched);
  List.iter2
    (fun p b ->
      check_bool "same results" true (Oid.Set.equal p.Cluster.result_set b.Cluster.result_set))
    plain batched;
  let total f outcomes =
    List.fold_left (fun acc o -> acc + f o.Cluster.metrics) 0 outcomes
  in
  let msgs = total (fun m -> m.Hf_server.Metrics.work_messages) in
  check_int "same items aboard" (total (fun m -> m.Hf_server.Metrics.work_items) plain)
    (total (fun m -> m.Hf_server.Metrics.work_items) batched);
  check_bool
    (Printf.sprintf "fewer messages (%d < %d)" (msgs batched) (msgs plain))
    true
    (msgs batched < msgs plain);
  check_bool "some messages actually batched" true
    (total (fun m -> m.Hf_server.Metrics.work_batches) batched > 0);
  check_int "one work-send per wire message" (msgs batched)
    (Hf_sim.Trace.count_kind trace "work-send")

let test_drop_metrics () =
  (* Total loss: the query cannot terminate, and every swallowed message
     is visible in the metrics and the trace (regression: drops used to
     be silent). *)
  let ds = ring_dataset ~n:6 ~n_sites:2 in
  let trace = Hf_sim.Trace.create () in
  let config = { Cluster.default_config with Cluster.loss = 1.0 } in
  let cluster = WC.create ~config ~trace ~n_sites:2 () in
  let oids = WL.load cluster ds in
  let outcome =
    WC.run_query cluster ~origin:0 (Hf_query.Compile.compile closure_query) [ oids.(0) ]
  in
  check_bool "cannot terminate" false outcome.Cluster.terminated;
  let dropped = outcome.Cluster.metrics.Hf_server.Metrics.dropped_messages in
  check_bool (Printf.sprintf "drops counted (%d)" dropped) true (dropped >= 1);
  check_int "every drop traced" dropped (Hf_sim.Trace.count_kind trace "drop");
  (* only the origin's local portion of the ring can answer *)
  check_bool "results are partial" true
    (List.length outcome.Cluster.results
    < List.length (fst (local_oracle ds closure_query [ 0 ])))

let qtest t = QCheck_alcotest.to_alcotest t

(* --- EXPLAIN ANALYZE reconciliation (DESIGN.md Â§4i) ---------------------

   The profile is two views of one query: span-derived time (where did
   it go) and engine-attributed counters (what did it cost).  Where the
   views overlap they must agree exactly, on every termination engine. *)

module Profile_reconciliation (D : Hf_termination.Detector.S) = struct
  module C = Hf_server.Cluster.Make (D)
  module L = Load (C)
  module M = Hf_server.Metrics
  module P = Hf_obs.Profile

  let run () =
    let ds = ring_dataset ~n:12 ~n_sites:3 in
    let tracer = Hf_obs.Tracer.create () in
    let cluster = C.create ~tracer ~n_sites:3 () in
    let oids = L.load cluster ds in
    let handle =
      C.submit cluster ~origin:0 (Hf_query.Compile.compile closure_query) [ oids.(0) ]
    in
    C.await_quiescence cluster;
    let o = C.outcome cluster handle in
    check_bool "terminated" true o.Cluster.terminated;
    let p = C.profile cluster handle in
    let m = o.Cluster.metrics in
    (* the engine scalars pinned into the profile are the outcome's own *)
    check_bool "messages" true (P.scalar_int p "messages" = Some (M.total_messages m));
    check_bool "bytes" true (P.scalar_int p "bytes" = Some (M.total_bytes m));
    check_bool "work_messages" true (P.scalar_int p "work_messages" = Some m.M.work_messages);
    check_bool "work_items" true (P.scalar_int p "work_items" = Some m.M.work_items);
    check_bool "results" true (P.scalar_int p "results" = Some (List.length o.Cluster.results));
    (match P.scalar_float p "response_time_s" with
    | Some rt -> Alcotest.(check (float 1e-9)) "response_time scalar" o.Cluster.response_time rt
    | None -> Alcotest.fail "response_time_s scalar missing");
    (match P.scalar_float p "busy_total_s" with
    | Some b -> Alcotest.(check (float 1e-9)) "busy scalar" (M.total_busy m) b
    | None -> Alcotest.fail "busy_total_s scalar missing");
    (* the differential core: the root Query span's duration — a
       span-derived quantity — equals the engine's own response-time
       accounting, to the last bit of float *)
    Alcotest.(check (float 1e-9)) "profile total = response time" o.Cluster.response_time
      p.P.total_s;
    (* span-side internal consistency: site residency fits inside the
       query, and each row's busy/wait equal its phase entries *)
    List.iter
      (fun (r : P.site_row) ->
        check_bool "site residency within the query" true (r.P.busy_s <= p.P.total_s +. 1e-9);
        let phase ph =
          match List.find_opt (fun (q, _, _) -> q = ph) r.P.phases with
          | Some (_, secs, _) -> secs
          | None -> 0.0
        in
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "site %d busy = Eval phase" r.P.site)
          (phase Hf_obs.Span.Eval) r.P.busy_s;
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "site %d wait = Wait phase" r.P.site)
          (phase Hf_obs.Span.Wait) r.P.wait_s)
      p.P.sites;
    check_int "nothing dropped" 0 p.P.dropped_spans;
    (* the ring alternates sites, so the query ships and rounds nest *)
    check_bool "at least one ship round" true (p.P.rounds >= 1);
    check_int "every site appears" 3 (List.length p.P.sites);
    check_bool "ships recorded" true
      (List.exists (fun (r : P.site_row) -> r.P.ships > 0) p.P.sites)
end

module Weighted_profile = Profile_reconciliation (Hf_termination.Weighted)
module Ds_profile = Profile_reconciliation (Hf_termination.Dijkstra_scholten)
module Fc_profile = Profile_reconciliation (Hf_termination.Four_counter)

let () =
  Alcotest.run "hf_server"
    [
      ( "distributed = local",
        [
          qtest (Weighted_battery.prop "weighted detector");
          qtest (Ds_battery.prop "dijkstra-scholten detector");
          qtest (Fc_battery.prop "four-counter detector");
          qtest Jitter_battery.prop;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "ring across 3 sites" `Quick test_ring_basics;
          Alcotest.test_case "single site has no messages" `Quick test_single_site_no_messages;
          Alcotest.test_case "empty initial set" `Quick test_empty_initial_set;
          Alcotest.test_case "sequential queries" `Quick test_sequential_queries_reuse_cluster;
          Alcotest.test_case "remote initial set" `Quick test_remote_initial_set;
          Alcotest.test_case "response-time calibration" `Quick
            test_response_time_single_site_formula;
          Alcotest.test_case "object mobility via name service" `Quick
            test_object_mobility_with_name_service;
          Alcotest.test_case "concurrent queries" `Quick test_concurrent_queries;
          Alcotest.test_case "forget query" `Quick test_forget_query;
        ] );
      ( "profile reconciliation",
        [
          Alcotest.test_case "weighted engine" `Quick Weighted_profile.run;
          Alcotest.test_case "dijkstra-scholten engine" `Quick Ds_profile.run;
          Alcotest.test_case "four-counter engine" `Quick Fc_profile.run;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "dead site yields partial results" `Quick
            test_kill_site_partial_results;
          Alcotest.test_case "dropped messages are counted and traced" `Quick test_drop_metrics;
          qtest Loss_battery.prop;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "dead site: explicit partial answer" `Quick
            test_dead_site_partial_with_reliability;
          Alcotest.test_case "ring under heavy loss: exact answer" `Quick
            test_reliable_ring_under_loss;
          qtest (Reliable_battery.prop ~loss:0.0);
          qtest (Reliable_battery.prop ~loss:0.05);
          qtest (Reliable_battery.prop ~loss:0.2);
        ] );
      ( "batching",
        [
          Alcotest.test_case "convoy coalesces work messages" `Quick test_convoy_coalesces;
          qtest prop_batched_equals_unbatched;
          qtest prop_batched_loss_sound;
        ] );
      ( "distributed sets",
        [
          Alcotest.test_case "counts mode" `Quick test_counts_mode;
          Alcotest.test_case "threshold mode" `Quick test_threshold_mode;
          Alcotest.test_case "re-query over distributed set" `Quick test_distributed_set_requery;
        ] );
      ( "mark-table ablation",
        [
          Alcotest.test_case "local marks allow duplicate messages" `Quick
            test_duplicate_work_accounting;
          Alcotest.test_case "global marks suppress them" `Quick
            test_global_marks_suppress_duplicates;
        ] );
      ( "tracing",
        [ Alcotest.test_case "trace events match metrics" `Quick test_trace_events ] );
    ]
