(* Tests for the TCP transport: the real Section 3.2 protocol over
   loopback sockets, compared against the local engine oracle. *)

module Oid = Hf_data.Oid
module Tuple = Hf_data.Tuple
module Store = Hf_data.Store
module Tcp = Hf_net.Tcp_site

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse_program = Hf_query.Parser.parse_program

(* Spin up [n] sites on loopback and wire them together. *)
let with_sites ?batch ?reliability n f =
  let sites = Array.init n (fun site -> Tcp.create ~site ?batch ?reliability ()) in
  let addresses = Array.map Tcp.address sites in
  Array.iter (fun site -> Tcp.set_peers site addresses) sites;
  Fun.protect ~finally:(fun () -> Array.iter Tcp.shutdown sites) (fun () -> f sites)

(* Tight timeouts so a dead-peer test gives up in about a second of
   wall clock instead of Reliable.default's minute. *)
let fast_reliability =
  {
    Hf_proto.Reliable.ack_timeout = 0.05;
    backoff = 2.0;
    max_timeout = 0.2;
    max_retries = 5;
    ack_delay = 0.01;
  }

(* Ring of [n] objects alternating over the sites, keyword on every
   third object. *)
let load_ring sites n =
  let k = Array.length sites in
  let oids = Array.init n (fun i -> Store.fresh_oid (Tcp.store sites.(i mod k))) in
  Array.iteri
    (fun i oid ->
      let tuples =
        [ Tuple.pointer ~key:"R" oids.((i + 1) mod n) ]
        @ (if i mod 3 = 0 then [ Tuple.keyword "hot" ] else [])
      in
      Store.insert (Tcp.store sites.(i mod k)) (Hf_data.Hobject.of_tuples oid tuples))
    oids;
  oids

let closure = parse_program "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)"

let test_single_site_query () =
  with_sites 1 (fun sites ->
      let oids = load_ring sites 9 in
      let outcome = Tcp.run_query sites.(0) closure [ oids.(0) ] in
      check_bool "terminated" true outcome.Tcp.terminated;
      check_int "results" 3 (List.length outcome.Tcp.results);
      check_int "no messages" 0 outcome.Tcp.messages_sent)

let test_three_sites_over_tcp () =
  with_sites 3 (fun sites ->
      let oids = load_ring sites 12 in
      let outcome = Tcp.run_query sites.(0) closure [ oids.(0) ] in
      check_bool "terminated" true outcome.Tcp.terminated;
      check_int "results" 4 (List.length outcome.Tcp.results);
      check_bool "messages crossed the network" true (outcome.Tcp.messages_sent > 0);
      check_bool "bytes accounted" true (outcome.Tcp.bytes_sent > 0))

let test_matches_local_engine () =
  with_sites 3 (fun sites ->
      let oids = load_ring sites 15 in
      let outcome = Tcp.run_query sites.(0) closure [ oids.(0) ] in
      (* oracle: same data in one store *)
      let store = Store.create ~site:0 in
      Array.iteri
        (fun i oid ->
          let tuples =
            [ Tuple.pointer ~key:"R" oids.((i + 1) mod 15) ]
            @ (if i mod 3 = 0 then [ Tuple.keyword "hot" ] else [])
          in
          Store.insert store (Hf_data.Hobject.of_tuples oid tuples))
        oids;
      let local = Hf_engine.Local.run_store ~store closure [ oids.(0) ] in
      check_bool "TCP = local" true
        (Oid.Set.equal outcome.Tcp.result_set local.Hf_engine.Local.result_set))

let test_retrieve_over_tcp () =
  with_sites 2 (fun sites ->
      let a = Store.fresh_oid (Tcp.store sites.(0)) in
      let b = Store.fresh_oid (Tcp.store sites.(1)) in
      Store.insert (Tcp.store sites.(0))
        (Hf_data.Hobject.of_tuples a
           [ Tuple.pointer ~key:"R" b; Tuple.string_ ~key:"Title" "local" ]);
      Store.insert (Tcp.store sites.(1))
        (Hf_data.Hobject.of_tuples b [ Tuple.string_ ~key:"Title" "remote" ]);
      let program = parse_program "(Pointer, \"R\", ?X) ^^X (String, \"Title\", ->title)" in
      let outcome = Tcp.run_query sites.(0) program [ a ] in
      check_bool "terminated" true outcome.Tcp.terminated;
      check_int "both pass" 2 (List.length outcome.Tcp.results);
      match List.assoc_opt "title" outcome.Tcp.bindings with
      | Some values ->
        check_bool "remote title shipped back" true
          (List.exists (Hf_data.Value.equal (Hf_data.Value.str "remote")) values)
      | None -> Alcotest.fail "expected title binding")

let test_sequential_queries () =
  with_sites 3 (fun sites ->
      let oids = load_ring sites 12 in
      let o1 = Tcp.run_query sites.(0) closure [ oids.(0) ] in
      let o2 = Tcp.run_query sites.(1) closure [ oids.(0) ] in
      check_bool "both terminate" true (o1.Tcp.terminated && o2.Tcp.terminated);
      check_bool "same results" true (Oid.Set.equal o1.Tcp.result_set o2.Tcp.result_set))

let test_dead_peer_times_out_with_partial_results () =
  with_sites 3 (fun sites ->
      let oids = load_ring sites 12 in
      (* kill site 2 before querying: ring 0 -> 1 -> 2(dead) *)
      Tcp.shutdown sites.(2);
      let outcome = Tcp.run_query ~timeout:1.0 sites.(0) closure [ oids.(0) ] in
      check_bool "not terminated" false outcome.Tcp.terminated;
      check_bool "status says timed out, not dead" true (outcome.Tcp.status = Tcp.Timed_out);
      check_bool "partial results" true (List.length outcome.Tcp.results >= 1))

let test_reliable_matches_plain () =
  (* Reliability changes the frame layout (envelopes) and adds ack
     traffic, but over a healthy network the answer is identical. *)
  with_sites ~reliability:fast_reliability 3 (fun sites ->
      let oids = load_ring sites 12 in
      let outcome = Tcp.run_query sites.(0) closure [ oids.(0) ] in
      check_bool "terminated" true outcome.Tcp.terminated;
      check_bool "complete" true (outcome.Tcp.status = Tcp.Complete);
      check_int "results" 4 (List.length outcome.Tcp.results))

let test_dead_peer_partial_with_reliability () =
  (* Same dead peer as above, but with ack/retransmit underneath: the
     retry budget distinguishes "peer dead" from "peer slow".  Instead
     of hanging until the caller's timeout, retransmission gives up,
     the credit aboard the undeliverable work is reclaimed, and the
     query terminates with an explicit [Partial] naming the site. *)
  with_sites ~reliability:fast_reliability 3 (fun sites ->
      let oids = load_ring sites 12 in
      Tcp.shutdown sites.(2);
      let outcome = Tcp.run_query ~timeout:10.0 sites.(0) closure [ oids.(0) ] in
      check_bool "terminated before the 10 s timeout" true outcome.Tcp.terminated;
      check_bool "status is partial naming site 2" true (outcome.Tcp.status = Tcp.Partial [ 2 ]);
      check_bool "well under the timeout" true (outcome.Tcp.response_time < 8.0);
      check_bool "partial results" true (List.length outcome.Tcp.results >= 1))

let test_concurrent_remote_seeds () =
  with_sites 3 (fun sites ->
      (* initial set spanning all sites, no pointers: pure fan-out *)
      let oids =
        Array.init 9 (fun i ->
            let store = Tcp.store sites.(i mod 3) in
            let oid = Store.fresh_oid store in
            Store.insert store (Hf_data.Hobject.of_tuples oid [ Tuple.keyword "hot" ]);
            oid)
      in
      let program = parse_program "(Keyword, \"hot\", ?)" in
      let outcome = Tcp.run_query sites.(0) program (Array.to_list oids) in
      check_bool "terminated" true outcome.Tcp.terminated;
      check_int "all found" 9 (List.length outcome.Tcp.results))

let test_batched_fan_out () =
  (* The same 9-object pure fan-out, batched: remote seeds bound for the
     same site coalesce into Work_batch messages — identical answers,
     fewer wire messages than the 6 per-seed requests. *)
  let run ?batch () =
    with_sites ?batch 3 (fun sites ->
        let oids =
          Array.init 9 (fun i ->
              let store = Tcp.store sites.(i mod 3) in
              let oid = Store.fresh_oid store in
              Store.insert store (Hf_data.Hobject.of_tuples oid [ Tuple.keyword "hot" ]);
              oid)
        in
        let program = parse_program "(Keyword, \"hot\", ?)" in
        Tcp.run_query sites.(0) program (Array.to_list oids))
  in
  let plain = run () in
  let batched = run ~batch:(Hf_proto.Batch.Flush_at 4) () in
  check_bool "both terminated" true (plain.Tcp.terminated && batched.Tcp.terminated);
  check_bool "same answers" true (Oid.Set.equal plain.Tcp.result_set batched.Tcp.result_set);
  check_bool
    (Printf.sprintf "fewer messages (%d < %d)" batched.Tcp.messages_sent plain.Tcp.messages_sent)
    true
    (batched.Tcp.messages_sent < plain.Tcp.messages_sent)

let test_batched_matches_local_engine () =
  (* Ring closure with a drain-flush batcher on every site: answers
     still match the single-store oracle. *)
  with_sites ~batch:Hf_proto.Batch.Flush_on_drain 3 (fun sites ->
      let oids = load_ring sites 15 in
      let outcome = Tcp.run_query sites.(0) closure [ oids.(0) ] in
      check_bool "terminated" true outcome.Tcp.terminated;
      let store = Store.create ~site:0 in
      Array.iteri
        (fun i oid ->
          let tuples =
            [ Tuple.pointer ~key:"R" oids.((i + 1) mod 15) ]
            @ (if i mod 3 = 0 then [ Tuple.keyword "hot" ] else [])
          in
          Store.insert store (Hf_data.Hobject.of_tuples oid tuples))
        oids;
      let local = Hf_engine.Local.run_store ~store closure [ oids.(0) ] in
      check_bool "batched TCP = local" true
        (Oid.Set.equal outcome.Tcp.result_set local.Hf_engine.Local.result_set))

(* Random end-to-end property: arbitrary placements, graphs and
   queries over real sockets must match the local engine. *)
let prop_tcp_matches_local =
  QCheck2.Test.make ~name:"TCP = local engine on random datasets" ~count:15 QCheck2.Gen.int
    (fun seed ->
      let prng = Hf_util.Prng.create seed in
      let n_sites = 2 + Hf_util.Prng.next_int prng 2 in
      let n = 5 + Hf_util.Prng.next_int prng 12 in
      let placement = Array.init n (fun _ -> Hf_util.Prng.next_int prng n_sites) in
      let edges =
        List.init (Hf_util.Prng.next_int prng (3 * n)) (fun _ ->
            (Hf_util.Prng.next_int prng n, Hf_util.Prng.next_int prng n))
      in
      let hot = Array.init n (fun _ -> Hf_util.Prng.next_bool prng 0.5) in
      let tuples oids i =
        [ Tuple.number ~key:"id" i ]
        @ (if hot.(i) then [ Tuple.keyword "hot" ] else [])
        @ List.filter_map
            (fun (src, dst) -> if src = i then Some (Tuple.pointer ~key:"R" oids.(dst)) else None)
            edges
      in
      let program =
        if Hf_util.Prng.next_bool prng 0.5 then closure
        else parse_program "[ (Pointer, \"R\", ?X) ^^X ]^3 (Keyword, \"hot\", ?)"
      in
      let start = Hf_util.Prng.next_int prng n in
      with_sites n_sites (fun sites ->
          let oids =
            Array.init n (fun i -> Store.fresh_oid (Tcp.store sites.(placement.(i))))
          in
          Array.iteri
            (fun i oid ->
              Store.insert (Tcp.store sites.(placement.(i)))
                (Hf_data.Hobject.of_tuples oid (tuples oids i)))
            oids;
          let outcome = Tcp.run_query sites.(0) program [ oids.(start) ] in
          let store = Store.create ~site:0 in
          Array.iteri
            (fun i oid -> Store.insert store (Hf_data.Hobject.of_tuples oid (tuples oids i)))
            oids;
          let local = Hf_engine.Local.run_store ~store program [ oids.(start) ] in
          outcome.Tcp.terminated
          && Oid.Set.equal outcome.Tcp.result_set local.Hf_engine.Local.result_set))

let test_many_queries_stress () =
  with_sites 3 (fun sites ->
      let oids = load_ring sites 12 in
      for _ = 1 to 10 do
        let outcome = Tcp.run_query sites.(0) closure [ oids.(0) ] in
        check_bool "terminated" true outcome.Tcp.terminated;
        check_int "stable" 4 (List.length outcome.Tcp.results)
      done)

(* --- cluster-wide stats and profiles (DESIGN.md §4i) --- *)

(* [with_sites] plus the observability knobs. *)
let with_obs_sites ?tracer ?stats_period ?monitor_port n f =
  let sites =
    Array.init n (fun site -> Tcp.create ~site ?tracer ?stats_period ?monitor_port ())
  in
  let addresses = Array.map Tcp.address sites in
  Array.iter (fun site -> Tcp.set_peers site addresses) sites;
  Fun.protect ~finally:(fun () -> Array.iter Tcp.shutdown sites) (fun () -> f sites)

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= hn && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* Acceptance: a [Stats_pull] broadcast from one site of a 3-site TCP
   cluster returns every peer's registry — including the gauges over
   previously-dark state (admission gate, reliable links, answer
   cache) — and the merged cluster view sums counters site-exactly. *)
let test_stats_pull_three_sites () =
  with_sites 3 (fun sites ->
      let oids = load_ring sites 12 in
      let (_ : Tcp.outcome) = Tcp.run_query sites.(0) closure [ oids.(0) ] in
      let stats = Tcp.pull_stats sites.(0) in
      Alcotest.(check (list int)) "every site reports, ascending" [ 0; 1; 2 ]
        (List.map fst stats);
      let counter snap name =
        match List.assoc_opt name snap with
        | Some (Hf_obs.Registry.Counter_value n) -> n
        | Some _ -> Alcotest.failf "%s is not a counter" name
        | None -> Alcotest.failf "%s missing from a report" name
      in
      List.iter
        (fun (site, snap) ->
          List.iter
            (fun name ->
              match List.assoc_opt name snap with
              | Some (Hf_obs.Registry.Gauge_value _) -> ()
              | Some _ -> Alcotest.failf "site %d: %s is not a gauge" site name
              | None -> Alcotest.failf "site %d: %s missing from the report" site name)
            [
              "hf.net.sched_tenants";
              "hf.net.link_in_flight";
              "hf.net.link_ack_backlog";
              "hf.net.cache_entries";
              "hf.net.trace_sample_rate";
            ];
          (match List.assoc_opt "hf.net.admission_wait_s" snap with
           | Some (Hf_obs.Registry.Histogram_value _) -> ()
           | _ -> Alcotest.failf "site %d: admission_wait_s histogram missing" site);
          ignore (counter snap "hf.net.messages_sent"))
        stats;
      (* the ring query crossed the network, so some peer's own counter
         says so — proof the numbers are the peers', not defaults *)
      let per_site = List.map (fun (_, snap) -> counter snap "hf.net.messages_sent") stats in
      check_bool "query traffic visible in the reports" true
        (List.exists (fun n -> n > 0) per_site);
      (* merging the pulled snapshots sums counters exactly *)
      let merged = Hf_obs.Registry.merge_snapshots (List.map snd stats) in
      check_int "merged counter = sum over sites"
        (List.fold_left ( + ) 0 per_site)
        (counter merged "hf.net.messages_sent"))

(* The [stats_period] ticker keeps [known_peer_stats] warm without a
   client pulling. *)
let test_periodic_scrape_warms_peer_stats () =
  with_obs_sites ~stats_period:0.05 3 (fun sites ->
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait () =
        let known = Tcp.known_peer_stats sites.(0) in
        if List.length known >= 2 || Unix.gettimeofday () > deadline then known
        else begin
          Thread.delay 0.02;
          wait ()
        end
      in
      let known = wait () in
      Alcotest.(check (list int)) "both peers scraped" [ 1; 2 ] (List.map fst known);
      List.iter
        (fun (site, snap) ->
          check_bool (Printf.sprintf "site %d snapshot non-empty" site) true (snap <> []))
        known)

(* The always-on monitoring surface: connect to the monitor port, read
   to EOF, get this site's registry as Prometheus text. *)
let test_monitor_surface () =
  with_obs_sites ~monitor_port:0 1 (fun sites ->
      let oids = load_ring sites 6 in
      let (_ : Tcp.outcome) = Tcp.run_query sites.(0) closure [ oids.(0) ] in
      match Tcp.monitor_address sites.(0) with
      | None -> Alcotest.fail "monitor_port 0 should bind an ephemeral port"
      | Some addr ->
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        let text =
          Fun.protect
            ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect sock addr;
              let buf = Buffer.create 4096 in
              let chunk = Bytes.create 4096 in
              let rec drain () =
                let n = Unix.read sock chunk 0 (Bytes.length chunk) in
                if n > 0 then begin
                  Buffer.add_subbytes buf chunk 0 n;
                  drain ()
                end
              in
              (try drain () with End_of_file -> ());
              Buffer.contents buf)
        in
        check_bool "TYPE line for the message counter" true
          (contains text "# TYPE hf_net_messages_sent counter");
        check_bool "series carry the site label" true (contains text "site=\"0\"");
        check_bool "sched gauge exposed" true (contains text "hf_net_sched_tenants");
        check_bool "admission-wait histogram exposed" true
          (contains text "hf_net_admission_wait_s_bucket"))

(* EXPLAIN ANALYZE over real sockets: the profile's scalars are the
   outcome's exact per-query counters, and the span-derived view is
   structurally consistent with it (TCP mirror of test_server's sim
   reconciliation differential). *)
let test_profile_reconciles_over_tcp () =
  let tracer = Hf_obs.Tracer.create ~clock:Unix.gettimeofday () in
  with_obs_sites ~tracer 3 (fun sites ->
      let oids = load_ring sites 12 in
      let handle = Tcp.submit_query sites.(0) closure [ oids.(0) ] in
      let outcome = Tcp.await sites.(0) handle in
      check_bool "terminated" true outcome.Tcp.terminated;
      let module P = Hf_obs.Profile in
      let p = Tcp.profile sites.(0) handle outcome in
      let scalar name =
        match P.scalar_int p name with
        | Some n -> n
        | None -> Alcotest.failf "scalar %s missing" name
      in
      check_int "messages scalar = outcome" outcome.Tcp.messages_sent (scalar "messages_sent");
      check_int "bytes scalar = outcome" outcome.Tcp.bytes_sent (scalar "bytes_sent");
      check_int "results scalar = outcome" (List.length outcome.Tcp.results) (scalar "results");
      (match P.scalar_float p "response_time_s" with
       | Some rt ->
         Alcotest.(check (float 1e-9)) "response time pinned" outcome.Tcp.response_time rt
       | None -> Alcotest.fail "response_time_s scalar missing");
      (* the root Query span opens inside submit and closes inside
         await, so its duration brackets the measured response time —
         real clocks, so a coarse envelope rather than the sim's exact
         tie *)
      check_bool "span total brackets the response time" true
        (p.P.total_s > 0.0 && Float.abs (p.P.total_s -. outcome.Tcp.response_time) < 0.5);
      check_bool "cross-site rounds observed" true (p.P.rounds >= 1);
      check_int "all three sites appear" 3 (List.length p.P.sites);
      check_bool "some site shipped work" true
        (List.exists (fun r -> r.P.ships > 0) p.P.sites);
      check_int "no dropped spans" 0 p.P.dropped_spans)

let () =
  Alcotest.run "hf_net"
    [
      ( "tcp protocol",
        [
          Alcotest.test_case "single site" `Quick test_single_site_query;
          Alcotest.test_case "three sites over TCP" `Quick test_three_sites_over_tcp;
          Alcotest.test_case "matches the local engine" `Quick test_matches_local_engine;
          Alcotest.test_case "retrieve over TCP" `Quick test_retrieve_over_tcp;
          Alcotest.test_case "sequential queries" `Quick test_sequential_queries;
          Alcotest.test_case "dead peer: timeout + partial results" `Quick
            test_dead_peer_times_out_with_partial_results;
          Alcotest.test_case "reliable delivery matches plain" `Quick test_reliable_matches_plain;
          Alcotest.test_case "dead peer with reliability: explicit partial" `Quick
            test_dead_peer_partial_with_reliability;
          Alcotest.test_case "remote initial set" `Quick test_concurrent_remote_seeds;
          Alcotest.test_case "batched fan-out" `Quick test_batched_fan_out;
          Alcotest.test_case "batched ring matches local engine" `Quick
            test_batched_matches_local_engine;
          Alcotest.test_case "repeated queries" `Quick test_many_queries_stress;
          QCheck_alcotest.to_alcotest prop_tcp_matches_local;
        ] );
      ( "observability",
        [
          Alcotest.test_case "stats pull across three sites" `Quick test_stats_pull_three_sites;
          Alcotest.test_case "periodic scrape warms peer stats" `Quick
            test_periodic_scrape_warms_peer_stats;
          Alcotest.test_case "monitor surface serves Prometheus text" `Quick
            test_monitor_surface;
          Alcotest.test_case "profile reconciles with outcome" `Quick
            test_profile_reconciles_over_tcp;
        ] );
    ]
