(* Unit and property tests for the utility substrate. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Hf_util.Prng.create 7 and b = Hf_util.Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Hf_util.Prng.next_int64 a) (Hf_util.Prng.next_int64 b)
  done

let test_prng_different_seeds () =
  let a = Hf_util.Prng.create 1 and b = Hf_util.Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Hf_util.Prng.next_int64 a <> Hf_util.Prng.next_int64 b then differs := true
  done;
  check_bool "streams differ" true !differs

let test_prng_bounds () =
  let t = Hf_util.Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Hf_util.Prng.next_int t 10 in
    check_bool "in range" true (x >= 0 && x < 10)
  done

let test_prng_bound_invalid () =
  let t = Hf_util.Prng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.next_int: bound must be positive")
    (fun () -> ignore (Hf_util.Prng.next_int t 0))

let test_prng_float_range () =
  let t = Hf_util.Prng.create 4 in
  for _ = 1 to 1000 do
    let x = Hf_util.Prng.next_float t in
    check_bool "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_bool_bias () =
  let t = Hf_util.Prng.create 5 in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Hf_util.Prng.next_bool t 0.25 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check_bool "rate near 0.25" true (rate > 0.20 && rate < 0.30)

let test_prng_split_independent () =
  let t = Hf_util.Prng.create 6 in
  let child = Hf_util.Prng.split t in
  (* parent advanced; child produces its own stream *)
  let a = Hf_util.Prng.next_int64 t and b = Hf_util.Prng.next_int64 child in
  check_bool "parent and child differ" true (a <> b)

let test_prng_shuffle_permutation () =
  let t = Hf_util.Prng.create 8 in
  let arr = Array.init 50 Fun.id in
  Hf_util.Prng.shuffle_in_place t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_prng_pick () =
  let t = Hf_util.Prng.create 9 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check_bool "member" true (Array.mem (Hf_util.Prng.pick t arr) arr)
  done

(* --- Heap --- *)

let test_heap_empty () =
  let h : int Hf_util.Heap.t = Hf_util.Heap.create () in
  check_bool "empty" true (Hf_util.Heap.is_empty h);
  check_int "length" 0 (Hf_util.Heap.length h);
  check_bool "pop none" true (Hf_util.Heap.pop h = None);
  check_bool "peek none" true (Hf_util.Heap.peek h = None)

let test_heap_ordering () =
  let h = Hf_util.Heap.create () in
  let prng = Hf_util.Prng.create 10 in
  for i = 0 to 199 do
    Hf_util.Heap.push h (Hf_util.Prng.next_float prng) i
  done;
  let rec drain last acc =
    match Hf_util.Heap.pop h with
    | None -> acc
    | Some (p, _) ->
      check_bool "non-decreasing" true (p >= last);
      drain p (acc + 1)
  in
  check_int "drained all" 200 (drain neg_infinity 0)

let test_heap_fifo_ties () =
  let h = Hf_util.Heap.create () in
  List.iter (fun i -> Hf_util.Heap.push h 1.0 i) [ 1; 2; 3; 4; 5 ];
  let popped = List.init 5 (fun _ -> snd (Option.get (Hf_util.Heap.pop h))) in
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4; 5 ] popped

let test_heap_interleaved () =
  let h = Hf_util.Heap.create () in
  Hf_util.Heap.push h 2.0 "b";
  Hf_util.Heap.push h 1.0 "a";
  Alcotest.(check (option (pair (float 0.0) string))) "peek min" (Some (1.0, "a"))
    (Hf_util.Heap.peek h);
  ignore (Hf_util.Heap.pop h);
  Hf_util.Heap.push h 0.5 "c";
  Alcotest.(check (option (pair (float 0.0) string))) "new min" (Some (0.5, "c"))
    (Hf_util.Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "remaining" (Some (2.0, "b"))
    (Hf_util.Heap.pop h)

let test_heap_clear () =
  let h = Hf_util.Heap.create () in
  Hf_util.Heap.push h 1.0 1;
  Hf_util.Heap.clear h;
  check_bool "cleared" true (Hf_util.Heap.is_empty h)

(* Model-based property: random interleavings of push/pop agree with a
   sorted-list reference model (stable on ties, matching the heap's FIFO
   tie-break). *)
let prop_heap_model =
  QCheck2.Test.make ~name:"heap agrees with a sorted-list model under interleaving" ~count:200
    QCheck2.Gen.(list (option (pair (int_range 0 5) small_int)))
    (fun ops ->
      let heap = Hf_util.Heap.create () in
      (* model: list of (prio, seq, value), kept stably sorted by (prio, seq) *)
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some (prio, v) ->
            Hf_util.Heap.push heap (float_of_int prio) v;
            model := !model @ [ (float_of_int prio, !seq, v) ];
            incr seq
          | None -> (
              let sorted =
                List.sort
                  (fun (p1, s1, _) (p2, s2, _) -> compare (p1, s1) (p2, s2))
                  !model
              in
              match Hf_util.Heap.pop heap, sorted with
              | None, [] -> ()
              | Some (p, v), ((mp, _, mv) as head) :: _ ->
                if p <> mp || v <> mv then ok := false
                else model := List.filter (fun entry -> entry != head) !model
              | Some _, [] | None, _ :: _ -> ok := false))
        ops;
      !ok && Hf_util.Heap.length heap = List.length !model)

let prop_deque_model =
  QCheck2.Test.make ~name:"deque agrees with a list model under interleaving" ~count:200
    QCheck2.Gen.(list (int_range 0 3))
    (fun ops ->
      let deque = Hf_util.Deque.create () in
      let model = ref [] in
      let counter = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          incr counter;
          let v = !counter in
          match op with
          | 0 ->
            Hf_util.Deque.push_back deque v;
            model := !model @ [ v ]
          | 1 ->
            Hf_util.Deque.push_front deque v;
            model := v :: !model
          | 2 -> (
              match Hf_util.Deque.pop_front deque, !model with
              | None, [] -> ()
              | Some x, m :: rest -> if x <> m then ok := false else model := rest
              | Some _, [] | None, _ :: _ -> ok := false)
          | _ -> (
              match Hf_util.Deque.pop_back deque, List.rev !model with
              | None, [] -> ()
              | Some x, m :: rest_rev ->
                if x <> m then ok := false else model := List.rev rest_rev
              | Some _, [] | None, _ :: _ -> ok := false))
        ops;
      !ok && Hf_util.Deque.to_list deque = !model)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains in priority order" ~count:200
    QCheck2.Gen.(list (pair (float_range 0.0 100.0) small_int))
    (fun entries ->
      let h = Hf_util.Heap.create () in
      List.iter (fun (p, v) -> Hf_util.Heap.push h p v) entries;
      let rec drain last =
        match Hf_util.Heap.pop h with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain neg_infinity)

(* --- Deque --- *)

let test_deque_fifo () =
  let d = Hf_util.Deque.create () in
  List.iter (Hf_util.Deque.push_back d) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] (Hf_util.Deque.to_list d);
  check_bool "pop order" true
    (Hf_util.Deque.pop_front d = Some 1
    && Hf_util.Deque.pop_front d = Some 2
    && Hf_util.Deque.pop_front d = Some 3
    && Hf_util.Deque.pop_front d = None)

let test_deque_lifo () =
  let d = Hf_util.Deque.create () in
  List.iter (Hf_util.Deque.push_front d) [ 1; 2; 3 ];
  check_bool "stack order" true
    (Hf_util.Deque.pop_front d = Some 3 && Hf_util.Deque.pop_front d = Some 2)

let test_deque_pop_back () =
  let d = Hf_util.Deque.create () in
  List.iter (Hf_util.Deque.push_back d) [ 1; 2; 3 ];
  check_bool "pop_back" true (Hf_util.Deque.pop_back d = Some 3);
  check_bool "pop_front" true (Hf_util.Deque.pop_front d = Some 1);
  check_int "length" 1 (Hf_util.Deque.length d)

let test_deque_mixed_ends () =
  let d = Hf_util.Deque.create () in
  Hf_util.Deque.push_back d 2;
  Hf_util.Deque.push_front d 1;
  Hf_util.Deque.push_back d 3;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Hf_util.Deque.to_list d)

let test_deque_clear () =
  let d = Hf_util.Deque.create () in
  Hf_util.Deque.push_back d 1;
  Hf_util.Deque.clear d;
  check_bool "empty" true (Hf_util.Deque.is_empty d);
  check_bool "pop none" true (Hf_util.Deque.pop_front d = None)

let prop_deque_fifo_model =
  QCheck2.Test.make ~name:"deque push_back/pop_front behaves as a queue" ~count:200
    QCheck2.Gen.(list small_int)
    (fun items ->
      let d = Hf_util.Deque.create () in
      List.iter (Hf_util.Deque.push_back d) items;
      let rec drain acc =
        match Hf_util.Deque.pop_front d with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = items)

(* --- Stats --- *)

let test_stats_mean_stddev () =
  let samples = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Hf_util.Stats.mean samples);
  let sd = Hf_util.Stats.stddev samples in
  check_bool "stddev sample (n-1)" true (abs_float (sd -. 2.13809) < 1e-4)

let test_stats_percentile () =
  let samples = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Hf_util.Stats.percentile samples 0.0);
  check_float "p50" 3.0 (Hf_util.Stats.percentile samples 0.5);
  check_float "p100" 5.0 (Hf_util.Stats.percentile samples 1.0);
  check_float "p25 interpolates" 2.0 (Hf_util.Stats.percentile samples 0.25)

let test_stats_summary () =
  let s = Hf_util.Stats.summarize [| 3.0; 1.0; 2.0 |] in
  check_int "count" 3 s.Hf_util.Stats.count;
  check_float "min" 1.0 s.Hf_util.Stats.min;
  check_float "max" 3.0 s.Hf_util.Stats.max;
  check_float "p50" 2.0 s.Hf_util.Stats.p50

let test_stats_empty_errors () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Hf_util.Stats.mean [||]))

let test_stats_singleton () =
  let s = Hf_util.Stats.summarize [| 42.0 |] in
  check_float "mean" 42.0 s.Hf_util.Stats.mean;
  check_float "sd" 0.0 s.Hf_util.Stats.stddev;
  check_float "p99" 42.0 s.Hf_util.Stats.p99

let test_stats_nan_rejected () =
  (* NaN used to poison the sort silently (polymorphic compare gives no
     total order with NaN); now it is an error. *)
  Alcotest.check_raises "percentile NaN" (Invalid_argument "Stats.percentile: NaN sample")
    (fun () -> ignore (Hf_util.Stats.percentile [| 1.0; nan; 3.0 |] 0.5));
  Alcotest.check_raises "summarize NaN" (Invalid_argument "Stats.summarize: NaN sample")
    (fun () -> ignore (Hf_util.Stats.summarize [| nan |]))

let test_stats_negative_zero_sorts () =
  (* Float.compare (not polymorphic compare) orders the samples. *)
  check_float "p0 with -0.0" (-1.0) (Hf_util.Stats.percentile [| 0.0; -1.0; -0.0; 1.0 |] 0.0)

(* --- Glob --- *)

let glob_case pattern text expected () =
  check_bool
    (Printf.sprintf "%s ~ %s" pattern text)
    expected
    (Hf_util.Glob.matches ~pattern text)

let test_glob_literal = glob_case "hello" "hello" true
let test_glob_literal_miss = glob_case "hello" "hell" false
let test_glob_star_any = glob_case "*" "anything at all" true
let test_glob_star_empty = glob_case "*" "" true
let test_glob_prefix = glob_case "dist*" "distributed" true
let test_glob_suffix = glob_case "*uted" "distributed" true
let test_glob_infix = glob_case "d*d" "distributed" true
let test_glob_infix_miss = glob_case "d*x" "distributed" false
let test_glob_question = glob_case "h?llo" "hello" true
let test_glob_question_miss = glob_case "h?llo" "hllo" false
let test_glob_multi_star = glob_case "*a*b*" "xxaxxbxx" true
let test_glob_backtrack = glob_case "*ab" "aab" true
let test_glob_trailing_star = glob_case "ab*" "ab" true
let test_glob_double_star = glob_case "a**b" "ab" true
let test_glob_empty_pattern = glob_case "" "" true
let test_glob_empty_pattern_miss = glob_case "" "x" false

let test_glob_is_literal () =
  check_bool "literal" true (Hf_util.Glob.is_literal "plain text");
  check_bool "star" false (Hf_util.Glob.is_literal "a*b");
  check_bool "question" false (Hf_util.Glob.is_literal "a?b")

(* --- Tabulate --- *)

let test_tabulate_render () =
  let out =
    Hf_util.Tabulate.render
      [ Hf_util.Tabulate.column "name"; Hf_util.Tabulate.right "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  check_bool "contains header" true
    (String.length out > 0 && String.sub out 0 4 = "name");
  let lines = String.split_on_char '\n' out in
  check_int "line count (header + rule + 2 rows + trailing)" 5 (List.length lines)

let test_tabulate_width_mismatch () =
  Alcotest.check_raises "row width checked"
    (Invalid_argument "Tabulate.render: row 0 has 1 cells, expected 2") (fun () ->
      ignore
        (Hf_util.Tabulate.render
           [ Hf_util.Tabulate.column "a"; Hf_util.Tabulate.column "b" ]
           [ [ "only one" ] ]))

let test_tabulate_alignment () =
  let out =
    Hf_util.Tabulate.render
      [ Hf_util.Tabulate.column "l"; Hf_util.Tabulate.right "num" ]
      [ [ "x"; "7" ] ]
  in
  (* right-aligned: "  7" under "num" *)
  check_bool "right aligned" true
    (List.exists (fun line -> line = "x    7") (String.split_on_char '\n' out))

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "hf_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_different_seeds;
          Alcotest.test_case "int bounds" `Quick test_prng_bounds;
          Alcotest.test_case "invalid bound" `Quick test_prng_bound_invalid;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "bool bias" `Quick test_prng_bool_bias;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle is a permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "pick membership" `Quick test_prng_pick;
        ] );
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "FIFO on ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "interleaved ops" `Quick test_heap_interleaved;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          qtest prop_heap_sorts;
          qtest prop_heap_model;
        ] );
      ( "deque",
        [
          Alcotest.test_case "fifo" `Quick test_deque_fifo;
          Alcotest.test_case "lifo" `Quick test_deque_lifo;
          Alcotest.test_case "pop_back" `Quick test_deque_pop_back;
          Alcotest.test_case "mixed ends" `Quick test_deque_mixed_ends;
          Alcotest.test_case "clear" `Quick test_deque_clear;
          qtest prop_deque_fifo_model;
          qtest prop_deque_model;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean and stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "percentiles" `Quick test_stats_percentile;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "empty errors" `Quick test_stats_empty_errors;
          Alcotest.test_case "singleton" `Quick test_stats_singleton;
          Alcotest.test_case "NaN rejected" `Quick test_stats_nan_rejected;
          Alcotest.test_case "negative zero ordering" `Quick test_stats_negative_zero_sorts;
        ] );
      ( "glob",
        [
          Alcotest.test_case "literal" `Quick test_glob_literal;
          Alcotest.test_case "literal miss" `Quick test_glob_literal_miss;
          Alcotest.test_case "star matches all" `Quick test_glob_star_any;
          Alcotest.test_case "star matches empty" `Quick test_glob_star_empty;
          Alcotest.test_case "prefix" `Quick test_glob_prefix;
          Alcotest.test_case "suffix" `Quick test_glob_suffix;
          Alcotest.test_case "infix" `Quick test_glob_infix;
          Alcotest.test_case "infix miss" `Quick test_glob_infix_miss;
          Alcotest.test_case "question" `Quick test_glob_question;
          Alcotest.test_case "question miss" `Quick test_glob_question_miss;
          Alcotest.test_case "multiple stars" `Quick test_glob_multi_star;
          Alcotest.test_case "backtracking" `Quick test_glob_backtrack;
          Alcotest.test_case "trailing star" `Quick test_glob_trailing_star;
          Alcotest.test_case "adjacent stars" `Quick test_glob_double_star;
          Alcotest.test_case "empty pattern" `Quick test_glob_empty_pattern;
          Alcotest.test_case "empty pattern miss" `Quick test_glob_empty_pattern_miss;
          Alcotest.test_case "is_literal" `Quick test_glob_is_literal;
        ] );
      ( "tabulate",
        [
          Alcotest.test_case "render" `Quick test_tabulate_render;
          Alcotest.test_case "width mismatch" `Quick test_tabulate_width_mismatch;
          Alcotest.test_case "alignment" `Quick test_tabulate_alignment;
        ] );
    ]
