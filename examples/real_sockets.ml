(* The distributed protocol on real TCP sockets.

   The other examples run on the discrete-event simulator (which is what
   reproduces the paper's timings); this one runs the same wire protocol
   — binary-encoded Deref_request / Result / Credit_return messages with
   credit-based termination — between three actual loopback TCP
   endpoints, then snapshots a site's store to disk and restores it.

   Run with:  dune exec examples/real_sockets.exe *)

module Tcp = Hf_net.Tcp_site
module Tuple = Hf_data.Tuple
module Store = Hf_data.Store

let () =
  (* three sites on ephemeral loopback ports *)
  let sites = Array.init 3 (fun site -> Tcp.create ~site ()) in
  let addresses = Array.map Tcp.address sites in
  Array.iter (fun site -> Tcp.set_peers site addresses) sites;
  Array.iteri
    (fun i addr ->
      match addr with
      | Unix.ADDR_INET (_, port) -> Fmt.pr "site %d listening on 127.0.0.1:%d@." i port
      | Unix.ADDR_UNIX _ -> ())
    addresses;

  (* a citation ring crossing the sites, keyword on every third paper *)
  let n = 12 in
  let oids = Array.init n (fun i -> Store.fresh_oid (Tcp.store sites.(i mod 3))) in
  Array.iteri
    (fun i oid ->
      let tuples =
        [ Tuple.pointer ~key:"Cites" oids.((i + 1) mod n);
          Tuple.string_ ~key:"Title" (Printf.sprintf "Paper %d" i);
        ]
        @ (if i mod 3 = 0 then [ Tuple.keyword "distributed" ] else [])
      in
      Store.insert (Tcp.store sites.(i mod 3)) (Hf_data.Hobject.of_tuples oid tuples))
    oids;

  let program =
    Hf_query.Parser.parse_program
      "[ (Pointer, \"Cites\", ?X) ^^X ]* (Keyword, \"distributed\", ?)"
  in
  let outcome = Tcp.run_query sites.(0) program [ oids.(0) ] in
  Fmt.pr "closure query over TCP: %d result(s), %s, %.1f ms wall clock@."
    (List.length outcome.Tcp.results)
    (match outcome.Tcp.status with
     | Tcp.Complete -> "complete"
     | Tcp.Partial dead -> Fmt.str "partial (unreachable: %a)" Fmt.(list ~sep:comma int) dead
     | Tcp.Timed_out -> "timed out"
     | Tcp.Cancelled -> "cancelled")
    (outcome.Tcp.response_time *. 1000.0);
  Fmt.pr "site 0 sent %d wire message(s), %d bytes@." outcome.Tcp.messages_sent
    outcome.Tcp.bytes_sent;

  (* retrieve titles across the network with the -> operator *)
  let titles =
    Tcp.run_query sites.(0)
      (Hf_query.Parser.parse_program
         "[ (Pointer, \"Cites\", ?X) ^^X ]* (Keyword, \"distributed\", ?) \
          (String, \"Title\", ->title)")
      [ oids.(0) ]
  in
  (match List.assoc_opt "title" titles.Tcp.bindings with
   | Some values ->
     Fmt.pr "titles shipped back: %a@." (Fmt.list ~sep:Fmt.comma Hf_data.Value.pp) values
   | None -> ());

  (* snapshot a site's store and restore it *)
  let path = Filename.temp_file "hyperfile_site1" ".snap" in
  Hf_persist.Snapshot.save (Tcp.store sites.(1)) ~path;
  let restored = Hf_persist.Snapshot.load ~path in
  Fmt.pr "site 1 snapshot: %d objects, %d bytes on disk, restored %d objects@."
    (Store.cardinal (Tcp.store sites.(1)))
    (In_channel.with_open_bin path In_channel.length |> Int64.to_int)
    (Store.cardinal restored);
  Sys.remove path;

  Array.iter Tcp.shutdown sites;
  Fmt.pr "sites shut down cleanly@."
