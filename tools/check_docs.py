#!/usr/bin/env python3
"""Docs-consistency check (CI): the documentation must keep up with the wire
protocol and the telemetry surface.

Two rules, both extracted from the source of truth in lib/:

1. Every wire message — each constructor of ``Hf_proto.Message.t`` — and the
   two envelope tag bytes (126 reliability, 127 traced span) must be named
   somewhere under doc/.
2. Every ``hf.<layer>.<name>`` metric the code can register must be named
   somewhere under doc/.  Names are collected from (a) full string literals,
   and (b) ``register``-style functions that build names as
   ``prefix ^ "." ^ short`` — shorts are crossed with the file's default
   prefix, or with every explicit ``~prefix:"hf.*"`` call-site argument in
   lib/ when the register function has no default (the tracer).

Exit 1 listing every missing name, so a PR that adds a message or metric
without documenting it fails in CI.  No third-party imports; runs anywhere
python3 runs.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
LIB = ROOT / "lib"
DOC = ROOT / "doc"


def doc_corpus() -> str:
    texts = [p.read_text(encoding="utf-8") for p in sorted(DOC.glob("*.md"))]
    if not texts:
        sys.exit("check_docs: no markdown files under doc/")
    return "\n".join(texts)


def wire_tags() -> list[str]:
    """Constructors of Message.t plus the two envelope tag bytes."""
    mli = (LIB / "proto" / "message.mli").read_text(encoding="utf-8")
    block = mli.split("type t =", 1)[1]
    names = []
    for line in block.splitlines():
        m = re.match(r"\s+\| ([A-Z][A-Za-z_0-9]*)", line)
        if m:
            names.append(m.group(1))
        elif re.match(r"^[a-z(]", line):  # next top-level item ends the type
            break
    codec = (LIB / "proto" / "codec.ml").read_text(encoding="utf-8")
    for tag_let in ("traced_tag", "rel_tag"):
        m = re.search(rf"let {tag_let} = (\d+)", codec)
        if not m:
            sys.exit(f"check_docs: {tag_let} not found in lib/proto/codec.ml")
        names.append(m.group(1))
    if len(names) < 14:
        sys.exit(f"check_docs: implausibly few wire tags extracted: {names}")
    return names


METRIC_LITERAL = re.compile(r'"(hf\.[a-z_]+\.[a-z_0-9]+)"')
METRIC_SHORT = re.compile(r'prefix \^ "\.(?:" \^ )?([a-z_0-9]*)"?')
HELPER_SHORT = re.compile(r'\b[cg] "([a-z_0-9]+)"')
DEFAULT_PREFIX = re.compile(r'prefix = "(hf\.[a-z_]+)"')
CALLSITE_PREFIX = re.compile(r'~prefix:"(hf\.[a-z_]+)"')


def metric_names() -> list[str]:
    names: set[str] = set()
    sources = {p: p.read_text(encoding="utf-8") for p in sorted(LIB.rglob("*.ml"))}
    callsite_prefixes: set[str] = set()
    for text in sources.values():
        callsite_prefixes |= set(CALLSITE_PREFIX.findall(text))
    for text in sources.values():
        names |= set(METRIC_LITERAL.findall(text))
        if 'prefix ^ "' not in text:
            continue
        shorts: set[str] = set()
        for m in re.finditer(r'prefix \^ "\.([a-z_0-9]+)"', text):
            shorts.add(m.group(1))
        if 'prefix ^ "." ^' in text:  # c/g helper style
            shorts |= set(HELPER_SHORT.findall(text))
        defaults = set(DEFAULT_PREFIX.findall(text))
        prefixes = defaults if defaults else callsite_prefixes
        for prefix in prefixes:
            for short in shorts:
                names.add(f"{prefix}.{short}")
    if len(names) < 40:
        sys.exit(f"check_docs: implausibly few metric names extracted ({len(names)})")
    return sorted(names)


def main() -> int:
    corpus = doc_corpus()
    missing = []
    for tag in wire_tags():
        if tag not in corpus:
            missing.append(f"wire tag/message `{tag}` (lib/proto) is not documented in doc/")
    for name in metric_names():
        if name not in corpus:
            missing.append(f"metric `{name}` is not documented in doc/")
    if missing:
        print("docs drift detected — update doc/ (see doc/architecture.md tables):")
        for line in missing:
            print(f"  - {line}")
        return 1
    print(
        f"docs-consistency: OK ({len(wire_tags())} wire tags, "
        f"{len(metric_names())} metric names all documented)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
