(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) on the simulated distributed server, plus the
   ablations called out in DESIGN.md and Bechamel micro-benchmarks of
   the core engine operations.

   Absolute numbers come from the simulator calibrated with the paper's
   measured basic times; the claims under test are the *shapes*: who
   wins, by what factor, and where the crossovers fall.

   Run with:  dune exec bench/main.exe *)

module C = Hf_server.Instances.Weighted
module Cluster = Hf_server.Cluster
module Metrics = Hf_server.Metrics
module Syn = Hf_workload.Synthetic
module Q = Hf_workload.Queries
module Tab = Hf_util.Tabulate

(* bench is a reporter, so printing the rendered table here is fine
   (hfcheck's io rule applies to lib/ only). *)
let print_table ?indent columns rows = print_string (Tab.render ?indent columns rows)

let section title paper_ref =
  Fmt.pr "@.== %s ==@." title;
  Fmt.pr "   paper: %s@.@." paper_ref

let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let f3 x = Printf.sprintf "%.3f" x

(* --- machine-readable output (--json FILE) ----------------------------
   Every experiment drops entries into a flat id -> value map; the whole
   map is written once at the end as the "experiments" object (schema
   documented in EXPERIMENTS.md).  Simulated-time entries are
   deterministic; wall-clock entries (E12, E14, micro, *.wall_s) vary
   by host. *)

module J = Hf_obs.Json

let json_records : (string * J.t) list ref = ref []

let record_json id json = json_records := (id, json) :: !json_records

let summary_to_json (s : Hf_util.Stats.summary) =
  J.Obj
    [ ("count", J.Int s.Hf_util.Stats.count);
      ("mean_s", J.Float s.Hf_util.Stats.mean);
      ("stddev_s", J.Float s.Hf_util.Stats.stddev);
      ("min_s", J.Float s.Hf_util.Stats.min);
      ("max_s", J.Float s.Hf_util.Stats.max);
      ("p50_s", J.Float s.Hf_util.Stats.p50);
      ("p90_s", J.Float s.Hf_util.Stats.p90);
      ("p99_s", J.Float s.Hf_util.Stats.p99);
    ]

(* --- workload runners ------------------------------------------------ *)

let dataset = Syn.generate () (* 270 objects, 9 groups, seed 42 *)

let fresh_cluster ?config ~n_sites ds =
  let cluster = C.create ?config ~n_sites () in
  let placed = Syn.materialize ds ~n_sites ~store_of:(C.store cluster) in
  (cluster, placed)

type run_summary = {
  times : Hf_util.Stats.summary;
  mean_results : float;
  mean_work_msgs : float;
  mean_result_msgs : float;
  mean_control_msgs : float;
  mean_dup_msgs : float;
  mean_work_bytes : float;
  mean_result_bytes : float;
}

let run_summary_to_json s =
  J.Obj
    [ ("response_time", summary_to_json s.times);
      ("mean_results", J.Float s.mean_results);
      ("mean_work_messages", J.Float s.mean_work_msgs);
      ("mean_result_messages", J.Float s.mean_result_msgs);
      ("mean_control_messages", J.Float s.mean_control_msgs);
      ("mean_duplicate_messages", J.Float s.mean_dup_msgs);
      ("mean_work_bytes", J.Float s.mean_work_bytes);
      ("mean_result_bytes", J.Float s.mean_result_bytes);
    ]

let record_run id s = record_json id (run_summary_to_json s)

(* The paper's methodology: time [n_queries] queries that follow the
   same pointers and search the same tuple type, randomizing the key
   searched for, "so the 100 queries were comparable but not
   identical". *)
let run_queries ?(n_queries = 100) ?(seed = 7) ?config ~n_sites ~pointer_key ~selectivity ds =
  let cluster, placed = fresh_cluster ?config ~n_sites ds in
  let prng = Hf_util.Prng.create seed in
  let times = Array.make n_queries 0.0 in
  let totals = ref (0, 0, 0, 0, 0) in
  let bytes = ref (0, 0) in
  let result_count = ref 0 in
  for i = 0 to n_queries - 1 do
    let selection = Q.random_selection prng ~n_objects:(Syn.n_objects ds) selectivity in
    let program = Q.closure_program ~pointer_key selection in
    let outcome = C.run_query cluster ~origin:0 program [ placed.Syn.root ] in
    assert outcome.Cluster.terminated;
    times.(i) <- outcome.Cluster.response_time;
    result_count := !result_count + List.length outcome.Cluster.results;
    let m = outcome.Cluster.metrics in
    let w, r, c, d, p = !totals in
    totals :=
      ( w + m.Metrics.work_messages,
        r + m.Metrics.result_messages,
        c + m.Metrics.control_messages,
        d + m.Metrics.duplicate_work_messages,
        p + m.Metrics.piggybacked_controls );
    let wb, rb = !bytes in
    bytes := (wb + m.Metrics.work_bytes, rb + m.Metrics.result_bytes);
    (* release per-query state so long sweeps stay lean *)
    match C.last_query_id cluster with
    | Some qid -> C.forget_query cluster qid
    | None -> ()
  done;
  let w, r, c, d, _ = !totals in
  let wb, rb = !bytes in
  let nf = float_of_int n_queries in
  {
    times = Hf_util.Stats.summarize times;
    mean_results = float_of_int !result_count /. nf;
    mean_work_msgs = float_of_int w /. nf;
    mean_result_msgs = float_of_int r /. nf;
    mean_control_msgs = float_of_int c /. nf;
    mean_dup_msgs = float_of_int d /. nf;
    mean_work_bytes = float_of_int wb /. nf;
    mean_result_bytes = float_of_int rb /. nf;
  }

(* --- E1: basic times -------------------------------------------------- *)

let e1_basic_costs () =
  section "E1: basic times (Section 5, in-text table)"
    "8 ms/object local processing; +20 ms per result; ~50 ms per remote deref message; ~50 ms \
     per result message";
  let costs = Hf_sim.Costs.paper in
  (* Derive the per-object and per-result costs back out of measured
     runs, as the paper did from its prototype. *)
  let unique =
    run_queries ~n_queries:20 ~n_sites:1 ~pointer_key:Syn.chain_key ~selectivity:Q.Unique dataset
  in
  let common =
    run_queries ~n_queries:5 ~n_sites:1 ~pointer_key:Syn.chain_key ~selectivity:Q.All dataset
  in
  let n = float_of_int (Syn.n_objects dataset) in
  let derived_process =
    (unique.times.Hf_util.Stats.mean -. (unique.mean_results *. costs.Hf_sim.Costs.result_add))
    /. n
  in
  let derived_result_add =
    (common.times.Hf_util.Stats.mean -. unique.times.Hf_util.Stats.mean)
    /. (common.mean_results -. unique.mean_results)
  in
  (* message cost out of the fully-remote chain on 3 machines *)
  let chain3 =
    run_queries ~n_queries:5 ~n_sites:3 ~pointer_key:Syn.chain_key ~selectivity:Q.Unique dataset
  in
  let derived_msg =
    (chain3.times.Hf_util.Stats.mean -. unique.times.Hf_util.Stats.mean) /. chain3.mean_work_msgs
  in
  record_json "e1.derived_ms"
    (J.Obj
       [ ("process_object", J.Float (derived_process *. 1000.0));
         ("result_add", J.Float (derived_result_add *. 1000.0));
         ("remote_deref_message", J.Float (derived_msg *. 1000.0));
         ("remote_result_message", J.Float (Hf_sim.Costs.result_message_total costs *. 1000.0));
       ]);
  print_table
    [ Tab.column "basic time"; Tab.right "paper (ms)"; Tab.right "measured (ms)" ]
    [
      [ "process one object"; "8"; f2 (derived_process *. 1000.0) ];
      [ "add object to result set"; "20"; f2 (derived_result_add *. 1000.0) ];
      [ "remote dereference message"; "~50"; f2 (derived_msg *. 1000.0) ];
      [ "remote result message"; "~50"; f2 (Hf_sim.Costs.result_message_total costs *. 1000.0) ];
    ]

(* --- E2-E4: extremes -------------------------------------------------- *)

let e2_single_site () =
  section "E2: single-site transitive closure, 270 objects, ~27 results"
    "2.7 s when all objects are at a single site (tree or chain pointers)";
  let rows =
    List.map
      (fun (label, key) ->
        let s = run_queries ~n_sites:1 ~pointer_key:key ~selectivity:Q.Rand10 dataset in
        record_run (Printf.sprintf "e2.single_site.%s" label) s;
        [ label; "1"; "2.7"; f2 s.times.Hf_util.Stats.mean; f1 s.mean_results ])
      [ ("chain", Syn.chain_key); ("tree", Syn.tree_key) ]
  in
  print_table
    [ Tab.column "pointers"; Tab.right "machines"; Tab.right "paper (s)";
      Tab.right "measured (s)"; Tab.right "results" ]
    rows

let e3_chain_worst_case () =
  section "E3: chain pointers — worst-case delay"
    "15 s on either three or nine machines (every pointer remote, all servers idle while each \
     message is in transit)";
  let rows =
    List.map
      (fun n_sites ->
        let s =
          run_queries ~n_queries:20 ~n_sites ~pointer_key:Syn.chain_key ~selectivity:Q.Rand10
            dataset
        in
        record_run (Printf.sprintf "e3.chain.%d_sites" n_sites) s;
        [ "chain"; string_of_int n_sites; "15"; f2 s.times.Hf_util.Stats.mean;
          f1 s.mean_work_msgs ])
      [ 3; 9 ]
  in
  print_table
    [ Tab.column "pointers"; Tab.right "machines"; Tab.right "paper (s)";
      Tab.right "measured (s)"; Tab.right "work msgs" ]
    rows

let e4_tree_parallelism () =
  section "E4: tree pointers — high parallelism at low message cost"
    "1.5 s on three machines, 1.0 s on nine (vs 2.7 s single-site)";
  let rows =
    List.map
      (fun (n_sites, paper) ->
        let s = run_queries ~n_sites ~pointer_key:Syn.tree_key ~selectivity:Q.Rand10 dataset in
        record_run (Printf.sprintf "e4.tree.%d_sites" n_sites) s;
        [ "tree"; string_of_int n_sites; paper; f2 s.times.Hf_util.Stats.mean;
          f1 s.mean_work_msgs ])
      [ (1, "2.7"); (3, "1.5"); (9, "1.0") ]
  in
  print_table
    [ Tab.column "pointers"; Tab.right "machines"; Tab.right "paper (s)";
      Tab.right "measured (s)"; Tab.right "work msgs" ]
    rows

(* --- E5: Figure 4 ----------------------------------------------------- *)

let e5_figure4 () =
  section "E5: Figure 4 — response time vs probability of a pointer being local"
    "distributed times fall as locality rises; best at >= 80% local; nine machines tolerate \
     remote references better than three; single-site reference does not depend on locality";
  let single =
    run_queries ~n_sites:1 ~pointer_key:(Syn.rand_key 0.50) ~selectivity:Q.Rand10 dataset
  in
  record_run "e5.single_site" single;
  Fmt.pr "   single-site reference: %.2f s@.@." single.times.Hf_util.Stats.mean;
  let rows =
    List.map
      (fun p ->
        let key = Syn.rand_key p in
        let three = run_queries ~n_sites:3 ~pointer_key:key ~selectivity:Q.Rand10 dataset in
        let nine = run_queries ~n_sites:9 ~pointer_key:key ~selectivity:Q.Rand10 dataset in
        record_run (Printf.sprintf "e5.local%02.0f.3_sites" (p *. 100.0)) three;
        record_run (Printf.sprintf "e5.local%02.0f.9_sites" (p *. 100.0)) nine;
        [ Printf.sprintf "%.0f%%" (p *. 100.0);
          f2 three.times.Hf_util.Stats.mean;
          f2 three.times.Hf_util.Stats.p90;
          f2 nine.times.Hf_util.Stats.mean;
          f2 nine.times.Hf_util.Stats.p90;
          f1 three.mean_work_msgs;
          f1 nine.mean_work_msgs;
        ])
      Syn.localities
  in
  print_table
    [ Tab.column "P(local)"; Tab.right "3 mach (s)"; Tab.right "p90";
      Tab.right "9 mach (s)"; Tab.right "p90"; Tab.right "msgs (3)"; Tab.right "msgs (9)" ]
    rows

(* --- E6: selectivity -------------------------------------------------- *)

let e6_selectivity () =
  section "E6: selectivity flips the winner (Rand95 pointers)"
    "10% selectivity: 1.1 s distributed vs 1.5 s single-site (distribution wins); select-all: \
     5.1 s single-site vs 6.4/5.7 s on three/nine (result shipping dominates)";
  let key = Syn.rand_key 0.95 in
  let rows =
    List.concat_map
      (fun (sel, label, papers) ->
        List.map2
          (fun n_sites paper ->
            let s =
              run_queries ~n_queries:30 ~n_sites ~pointer_key:key ~selectivity:sel dataset
            in
            record_run
              (Printf.sprintf "e6.%s.%d_sites"
                 (match sel with Q.Rand10 -> "rand10" | _ -> "all")
                 n_sites)
              s;
            [ label; string_of_int n_sites; paper; f2 s.times.Hf_util.Stats.mean;
              f1 s.mean_results; f1 s.mean_result_msgs ])
          [ 1; 3; 9 ] papers)
      [ (Q.Rand10, "10% of objects", [ "1.5"; "1.1"; "1.1" ]);
        (Q.All, "all objects", [ "5.1"; "6.4"; "5.7" ]);
      ]
  in
  print_table
    [ Tab.column "selectivity"; Tab.right "machines"; Tab.right "paper (s)";
      Tab.right "measured (s)"; Tab.right "results"; Tab.right "result msgs" ]
    rows

(* --- E7: size scaling ------------------------------------------------- *)

let e7_size_scaling () =
  section "E7: database size scaling"
    "half the objects took a bit more than half the time (linear algorithm plus constant \
     per-query overhead)";
  let half = Syn.generate ~params:{ Syn.default_params with Syn.n_objects = 135 } () in
  let full_run = run_queries ~n_sites:3 ~pointer_key:Syn.tree_key ~selectivity:Q.Rand10 dataset in
  let half_run = run_queries ~n_sites:3 ~pointer_key:Syn.tree_key ~selectivity:Q.Rand10 half in
  let ratio = half_run.times.Hf_util.Stats.mean /. full_run.times.Hf_util.Stats.mean in
  record_run "e7.objects270" full_run;
  record_run "e7.objects135" half_run;
  record_json "e7.ratio" (J.Float ratio);
  print_table
    [ Tab.column "objects"; Tab.right "measured (s)"; Tab.right "vs 270" ]
    [
      [ "270"; f2 full_run.times.Hf_util.Stats.mean; "1.00" ];
      [ "135"; f2 half_run.times.Hf_util.Stats.mean; f2 ratio ];
    ];
  Fmt.pr "   ratio %.2f > 0.50, as the paper observed@." ratio

(* --- E8: distributed result sets -------------------------------------- *)

let e8_distributed_set () =
  section "E8: count-only distributed result sets (Section 5's proposed optimisation)"
    "for low-selectivity queries, ship the number of local results instead of the members; \
     the retained set seeds the refining query at each site";
  let key = Syn.rand_key 0.95 in
  let run mode =
    let config = { Cluster.default_config with Cluster.result_mode = mode } in
    run_queries ~n_queries:30 ~config ~n_sites:3 ~pointer_key:key ~selectivity:Q.All dataset
  in
  let items = run Cluster.Ship_items in
  let counts = run Cluster.Ship_counts in
  let threshold = run (Cluster.Ship_threshold 10) in
  record_run "e8.ship_items" items;
  record_run "e8.ship_counts" counts;
  record_run "e8.ship_threshold10" threshold;
  print_table
    [ Tab.column "result mode"; Tab.right "measured (s)"; Tab.right "result bytes" ]
    [
      [ "ship members"; f2 items.times.Hf_util.Stats.mean; f1 items.mean_result_bytes ];
      [ "ship counts"; f2 counts.times.Hf_util.Stats.mean; f1 counts.mean_result_bytes ];
      [ "threshold 10 (paper's refinement)"; f2 threshold.times.Hf_util.Stats.mean;
        f1 threshold.mean_result_bytes ];
    ];
  (* and the follow-up query over the retained distributed set *)
  let config = { Cluster.default_config with Cluster.result_mode = Cluster.Ship_counts } in
  let cluster, placed = fresh_cluster ~config ~n_sites:3 dataset in
  let broad = Q.closure_program ~pointer_key:key Q.select_common in
  let o1 = C.run_query cluster ~origin:0 broad [ placed.Syn.root ] in
  let qid = Option.get (C.last_query_id cluster) in
  let refine = Hf_query.Compile.compile [ Q.select_rand10 5 ] in
  let o2 = C.run_query_on_distributed cluster ~origin:0 ~from:qid refine in
  record_json "e8.followup"
    (J.Obj
       [ ("response_time_s", J.Float o2.Cluster.response_time);
         ("seed_messages", J.Int o2.Cluster.metrics.Metrics.work_messages);
         ("broad_query_s", J.Float o1.Cluster.response_time);
       ]);
  Fmt.pr
    "   follow-up over the distributed set: %.2f s with %d seed messages (broad query itself: \
     %.2f s)@."
    o2.Cluster.response_time o2.Cluster.metrics.Metrics.work_messages o1.Cluster.response_time

(* --- E9: mark-table scope --------------------------------------------- *)

let e9_mark_tables () =
  section "E9: local vs (oracle) global mark tables (Section 3.2 design choice)"
    "local tables allow duplicate dereference messages; the paper judged a global table's \
     communication and complexity not worth the savings";
  let key = Syn.rand_key 0.05 in
  let rows =
    List.map
      (fun (label, scope) ->
        let config = { Cluster.default_config with Cluster.mark_scope = scope } in
        let s =
          run_queries ~n_queries:30 ~config ~n_sites:3 ~pointer_key:key ~selectivity:Q.Rand10
            dataset
        in
        record_run
          (Printf.sprintf "e9.%s"
             (match scope with Cluster.Local_marks -> "local_marks" | _ -> "global_marks"))
          s;
        [ label; f2 s.times.Hf_util.Stats.mean; f1 s.mean_work_msgs; f1 s.mean_dup_msgs ])
      [ ("local (paper)", Cluster.Local_marks); ("global oracle", Cluster.Global_marks) ]
  in
  print_table
    [ Tab.column "mark tables"; Tab.right "measured (s)"; Tab.right "work msgs";
      Tab.right "duplicates" ]
    rows

(* --- E10: file-server baseline ---------------------------------------- *)

let e10_baseline () =
  section "E10: query shipping vs a distributed file server (Section 5 preamble)"
    "a file interface must ship whole objects to the client; HyperFile ships ~40-byte queries";
  let cluster, placed = fresh_cluster ~n_sites:3 dataset in
  let program = Q.closure_program ~pointer_key:Syn.tree_key (Q.select_rand10 5) in
  let shipped = C.run_query cluster ~origin:0 program [ placed.Syn.root ] in
  let matches obj = Hf_query.Matcher.element_matches (Q.select_rand10 5) obj in
  let find oid = Hf_data.Store.find (C.store cluster (Hf_data.Oid.birth_site oid)) oid in
  let run_fs window =
    Hf_baseline.File_server.run_closure
      ~config:{ Hf_baseline.File_server.default_config with Hf_baseline.File_server.window }
      ~origin:0 ~locate:Hf_data.Oid.birth_site ~find ~pointer_key:Syn.tree_key ~matches
      [ placed.Syn.root ]
  in
  let fs1 = run_fs 1 and fs8 = run_fs 8 in
  let sm = shipped.Cluster.metrics in
  let fs_json (fs : Hf_baseline.File_server.outcome) =
    J.Obj
      [ ("response_time_s", J.Float fs.Hf_baseline.File_server.response_time);
        ("messages", J.Int fs.Hf_baseline.File_server.messages);
        ("bytes", J.Int fs.Hf_baseline.File_server.bytes);
      ]
  in
  record_json "e10.query_shipping"
    (J.Obj
       [ ("response_time_s", J.Float shipped.Cluster.response_time);
         ("messages", J.Int (Metrics.total_messages sm));
         ("bytes", J.Int (Metrics.total_bytes sm));
       ]);
  record_json "e10.file_server_sequential" (fs_json fs1);
  record_json "e10.file_server_pipelined8" (fs_json fs8);
  record_json "e10.cluster_registry" (Hf_obs.Registry.to_json (C.registry cluster));
  print_table
    [ Tab.column "system"; Tab.right "time (s)"; Tab.right "messages"; Tab.right "bytes moved" ]
    [
      [ "HyperFile (query shipping)";
        f2 shipped.Cluster.response_time;
        string_of_int (Metrics.total_messages sm);
        string_of_int (Metrics.total_bytes sm);
      ];
      [ "file server, sequential client";
        f2 fs1.Hf_baseline.File_server.response_time;
        string_of_int fs1.Hf_baseline.File_server.messages;
        string_of_int fs1.Hf_baseline.File_server.bytes;
      ];
      [ "file server, 8-way pipelined";
        f2 fs8.Hf_baseline.File_server.response_time;
        string_of_int fs8.Hf_baseline.File_server.messages;
        string_of_int fs8.Hf_baseline.File_server.bytes;
      ];
    ];
  (* the ~40-byte claim, on the real wire codec *)
  let deref =
    Hf_proto.Message.Deref_request
      {
        query = { Hf_proto.Message.originator = 0; serial = 1 };
        body = Q.closure_program ~pointer_key:Syn.tree_key (Q.select_rand10 5);
        oid = placed.Syn.root;
        start = 0;
        iters = [| 1 |];
        credit = [ 4 ];
      }
  in
  record_json "e10.deref_message_bytes" (J.Int (Hf_proto.Codec.encoded_size deref));
  Fmt.pr "   encoded dereference message: %d bytes (paper: ~40)@."
    (Hf_proto.Codec.encoded_size deref)

(* --- E11: termination detectors --------------------------------------- *)

module type CLUSTER_FOR_ABLATION = sig
  type t

  val create :
    ?config:Cluster.config ->
    ?locate:(Hf_data.Oid.t -> int) ->
    ?trace:Hf_sim.Trace.t ->
    ?tracer:Hf_obs.Tracer.t ->
    n_sites:int ->
    unit ->
    t

  val store : t -> int -> Hf_data.Store.t
  val run_query : t -> origin:int -> Hf_query.Program.t -> Hf_data.Oid.t list -> Cluster.outcome
end

let e11_termination () =
  section "E11: termination-detection ablation (Section 4)"
    "the prototype used the weighted-messages algorithm; credit returns piggyback on result \
     messages, so detection is nearly free on the common path";
  let program = Q.closure_program ~pointer_key:(Syn.rand_key 0.50) (Q.select_rand10 5) in
  let run_with ~id label (module M : CLUSTER_FOR_ABLATION) =
    let cluster = M.create ~n_sites:3 () in
    let placed = Syn.materialize dataset ~n_sites:3 ~store_of:(M.store cluster) in
    let outcome = M.run_query cluster ~origin:0 program [ placed.Syn.root ] in
    let m = outcome.Cluster.metrics in
    record_json (Printf.sprintf "e11.%s" id)
      (J.Obj
         [ ("terminated", J.Bool outcome.Cluster.terminated);
           ("response_time_s", J.Float outcome.Cluster.response_time);
           ("control_messages", J.Int m.Metrics.control_messages);
           ("piggybacked_controls", J.Int m.Metrics.piggybacked_controls);
         ]);
    [ label;
      (if outcome.Cluster.terminated then "yes" else "NO");
      f3 outcome.Cluster.response_time;
      string_of_int m.Metrics.control_messages;
      string_of_int m.Metrics.piggybacked_controls;
    ]
  in
  print_table
    [ Tab.column "detector"; Tab.right "terminated"; Tab.right "time (s)";
      Tab.right "control msgs"; Tab.right "piggybacked" ]
    [
      run_with ~id:"weighted" "weighted (paper)" (module Hf_server.Instances.Weighted);
      run_with ~id:"dijkstra_scholten" "dijkstra-scholten"
        (module Hf_server.Instances.Dijkstra_scholten);
      run_with ~id:"four_counter" "four-counter" (module Hf_server.Instances.Four_counter);
    ]

(* --- E12: shared-memory multiprocessor (Section 6) -------------------- *)

let e12_shared_memory () =
  section "E12: shared-memory multiprocessor variant (Section 6)"
    "all processors share the query state, mark table and working set; no strict locking is \
     needed (duplicates are harmless)";
  (* Keyword-rich documents (tuple scanning is the per-object work that
     parallelizes; the working set and mark table stay shared). *)
  let n = 4_000 in
  let keywords_per_doc = 150 in
  let prng = Hf_util.Prng.create 3 in
  let store = Hf_data.Store.create ~site:0 in
  let oids = Array.init n (fun _ -> Hf_data.Store.fresh_oid store) in
  Array.iteri
    (fun i oid ->
      let words =
        List.init keywords_per_doc (fun k ->
            Hf_data.Tuple.keyword (Printf.sprintf "w%d" ((i + (37 * k)) mod 4096)))
      in
      let links =
        List.init 2 (fun _ ->
            Hf_data.Tuple.pointer ~key:"R" oids.(Hf_util.Prng.next_int prng n))
      in
      Hf_data.Store.insert store
        (Hf_data.Hobject.of_tuples oid ((Hf_data.Tuple.number ~key:"id" i :: links) @ words)))
    oids;
  let program =
    Hf_query.Parser.parse_program "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"w13\", ?)"
  in
  let root = oids.(0) in
  let time_once domains =
    let t0 = Unix.gettimeofday () in
    let r = Hf_parallel.Shared_engine.run_store ~domains ~store program [ root ] in
    (Unix.gettimeofday () -. t0, List.length r.Hf_engine.Local.results)
  in
  ignore (time_once 1) (* warm-up *);
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "   host provides %d core(s); speedup beyond that is not expected@.@." cores;
  let base = ref 0.0 in
  let rows =
    List.map
      (fun domains ->
        let samples = List.init 3 (fun _ -> time_once domains) in
        let time = List.fold_left (fun acc (t, _) -> min acc t) infinity samples in
        let _, results = List.hd samples in
        if domains = 1 then base := time;
        record_json
          (Printf.sprintf "e12.domains%d" domains)
          (J.Obj
             [ ("wall_ms", J.Float (time *. 1000.0));
               ("speedup", J.Float (!base /. time));
               ("results", J.Int results);
             ]);
        [ string_of_int domains; f1 (time *. 1000.0); f2 (!base /. time);
          string_of_int results ])
      [ 1; 2; 4; 8 ]
  in
  print_table
    [ Tab.column "domains"; Tab.right "wall time (ms)"; Tab.right "speedup";
      Tab.right "results" ]
    rows

(* --- E13: batched query shipping (extension beyond the paper) ---------- *)

let e13_batching () =
  section "E13 (extension): batched query shipping — per-destination work coalescing"
    "the paper ships one small message per remote dereference (~50 ms each); coalescing K \
     same-destination work items into one message amortizes that overhead when concurrent \
     queries traverse the same sites";
  let n_queries = 24 in
  let policies =
    [ ("K=1 (paper)", Hf_proto.Batch.Flush_at 1);
      ("K=4", Hf_proto.Batch.Flush_at 4);
      ("K=16", Hf_proto.Batch.Flush_at 16);
      ("K=inf", Hf_proto.Batch.Flush_on_drain) ]
  in
  (* A convoy of concurrent queries (the same programs in every run, via
     a fixed PRNG seed) issued from site 0; batching coalesces their
     same-destination work items even on the strictly serial chain. *)
  let run_convoy ~pointer_key policy =
    let config = { Cluster.default_config with Cluster.batch = policy } in
    let cluster, placed = fresh_cluster ~config ~n_sites:3 dataset in
    let prng = Hf_util.Prng.create 7 in
    let handles =
      List.init n_queries (fun _ ->
          let selection =
            Q.random_selection prng ~n_objects:(Syn.n_objects dataset) Q.Rand10
          in
          let program = Q.closure_program ~pointer_key selection in
          C.submit cluster ~origin:0 program [ placed.Syn.root ])
    in
    C.await_quiescence cluster;
    let outcomes = List.map (C.outcome cluster) handles in
    List.iter (fun o -> assert o.Cluster.terminated) outcomes;
    let sum f = List.fold_left (fun acc o -> acc + f o.Cluster.metrics) 0 outcomes in
    let mean_resp =
      List.fold_left (fun acc o -> acc +. o.Cluster.response_time) 0.0 outcomes
      /. float_of_int n_queries
    in
    let makespan =
      List.fold_left (fun acc o -> max acc o.Cluster.response_time) 0.0 outcomes
    in
    ( sum (fun m -> m.Metrics.work_messages),
      sum (fun m -> m.Metrics.work_items),
      sum (fun m -> m.Metrics.work_batches),
      sum (fun m -> m.Metrics.batch_bytes_saved),
      mean_resp,
      makespan,
      List.map (fun o -> o.Cluster.result_set) outcomes )
  in
  let workloads =
    [ ("chain (E3)", "chain", Syn.chain_key); ("50% local (E5)", "local50", Syn.rand_key 0.50) ]
  in
  List.iter
    (fun (wname, wid, pointer_key) ->
      let baseline = ref [] in
      let agree = ref true in
      let rows =
        List.map
          (fun (pname, policy) ->
            let msgs, items, batches, saved, mean_resp, makespan, sets =
              run_convoy ~pointer_key policy
            in
            if policy = Hf_proto.Batch.Flush_at 1 then baseline := sets
            else
              agree :=
                !agree && List.for_all2 Hf_data.Oid.Set.equal !baseline sets;
            let pid =
              match policy with
              | Hf_proto.Batch.Flush_at k -> Printf.sprintf "k%d" k
              | Hf_proto.Batch.Flush_on_drain -> "kinf"
            in
            record_json
              (Printf.sprintf "e13.%s.%s" wid pid)
              (J.Obj
                 [ ("work_messages", J.Int msgs);
                   ("work_items", J.Int items);
                   ("work_batches", J.Int batches);
                   ("bytes_saved", J.Int saved);
                   ("mean_response_s", J.Float mean_resp);
                   ("makespan_s", J.Float makespan);
                 ]);
            [ pname; string_of_int msgs; string_of_int items; string_of_int batches;
              string_of_int saved; f2 mean_resp; f2 makespan ])
          policies
      in
      record_json (Printf.sprintf "e13.%s.agree_with_k1" wid) (J.Bool !agree);
      Fmt.pr "   workload: %s, %d concurrent queries, 3 machines@." wname n_queries;
      print_table
        [ Tab.column "policy"; Tab.right "work msgs"; Tab.right "items";
          Tab.right "batched"; Tab.right "bytes saved"; Tab.right "mean resp (s)";
          Tab.right "makespan (s)" ]
        rows;
      Fmt.pr "   result sets identical to K=1: %b@.@." !agree)
    workloads

(* --- E15: loss sweep — reliable delivery under a lossy network -------- *)

let e15_loss_sweep () =
  section "E15 (extension): reliable query shipping under message loss"
    "the paper assumes messages arrive; this sweep injects per-message loss and compares \
     fire-and-forget (answers silently incomplete, termination credit lost) against the \
     ack/retransmit layer of doc/fault_tolerance.md (exact answers, bought with \
     retransmissions)";
  let n_runs = 20 in
  let probs = [ 0.0; 0.05; 0.1; 0.2; 0.3 ] in
  let reliability =
    Some { Hf_proto.Reliable.default with Hf_proto.Reliable.max_retries = 30 }
  in
  let run ~seed ~loss ~reliable =
    let config =
      { Cluster.default_config with
        Cluster.loss;
        jitter_seed = seed;
        reliability = (if reliable then reliability else None);
      }
    in
    let cluster, placed = fresh_cluster ~config ~n_sites:3 dataset in
    let prng = Hf_util.Prng.create (1000 + seed) in
    let selection = Q.random_selection prng ~n_objects:(Syn.n_objects dataset) Q.Rand10 in
    let program = Q.closure_program ~pointer_key:(Syn.rand_key 0.50) selection in
    C.run_query cluster ~origin:0 program [ placed.Syn.root ]
  in
  (* per-seed oracle: the lossless answer *)
  let oracles =
    List.init n_runs (fun seed -> (run ~seed ~loss:0.0 ~reliable:false).Cluster.result_set)
  in
  let rows = ref [] in
  List.iter
    (fun loss ->
      List.iter
        (fun reliable ->
          let outcomes = List.init n_runs (fun seed -> run ~seed ~loss ~reliable) in
          let exact =
            List.fold_left2
              (fun acc o oracle ->
                if o.Cluster.terminated && Hf_data.Oid.Set.equal o.Cluster.result_set oracle
                then acc + 1
                else acc)
              0 outcomes oracles
          in
          let completion = float_of_int exact /. float_of_int n_runs in
          let mean_resp =
            List.fold_left (fun acc o -> acc +. o.Cluster.response_time) 0.0 outcomes
            /. float_of_int n_runs
          in
          let sum f = List.fold_left (fun acc o -> acc + f o.Cluster.metrics) 0 outcomes in
          let dropped = sum (fun m -> m.Metrics.dropped_messages) in
          let retransmits = sum (fun m -> m.Metrics.retransmits) in
          let dup_drops = sum (fun m -> m.Metrics.dup_drops) in
          let give_ups = sum (fun m -> m.Metrics.give_ups) in
          let mode = if reliable then "reliable" else "plain" in
          record_json
            (Printf.sprintf "e15.p%02d.%s" (int_of_float ((loss *. 100.0) +. 0.5)) mode)
            (J.Obj
               [ ("loss", J.Float loss);
                 ("runs", J.Int n_runs);
                 ("completion_rate", J.Float completion);
                 ("mean_response_s", J.Float mean_resp);
                 ("dropped_messages", J.Int dropped);
                 ("retransmits", J.Int retransmits);
                 ("dup_drops", J.Int dup_drops);
                 ("give_ups", J.Int give_ups);
               ]);
          rows :=
            [ f2 loss; mode; f2 completion; f3 mean_resp; string_of_int dropped;
              string_of_int retransmits; string_of_int dup_drops; string_of_int give_ups ]
            :: !rows)
        [ false; true ])
    probs;
  Fmt.pr "   %d runs per cell, 3 machines, 50%%-local closure workload@." n_runs;
  print_table
    [ Tab.right "loss p"; Tab.column "delivery"; Tab.right "complete"; Tab.right "mean resp (s)";
      Tab.right "dropped"; Tab.right "rtx"; Tab.right "dup-drop"; Tab.right "gave-up" ]
    (List.rev !rows)

(* --- E16: remote-answer caching and Bloom ship pruning ----------------- *)

(* A hub workload with repeat queries: one root object fans out to
   [n_docs] documents whose placement is drawn per-document (local to
   the origin with probability [locality], else round-robin over the
   remote sites).  The query's post-ship suffix is deref-free, so every
   shipped item's verdict is cacheable; repeating the query turns those
   ships into local cache hits, and the Bloom summaries prune ships
   whose selection provably matches nothing at the destination. *)
let e16_n_docs = 120

let e16_corpus ~n_sites ~locality cluster =
  let prng = Hf_util.Prng.create 11 in
  let docs =
    Array.init e16_n_docs (fun i ->
        let site =
          if Hf_util.Prng.next_bool prng locality then 0 else 1 + (i mod (n_sites - 1))
        in
        let store = C.store cluster site in
        let oid = Hf_data.Store.fresh_oid store in
        let tuples =
          [ Hf_data.Tuple.number ~key:"id" i ]
          @ (if i mod 10 < 3 then [ Hf_data.Tuple.keyword "hot" ] else [])
          (* "annotated" exists only on site 1: ships of an annotated
             search to any other site die on arrival, which the
             destination summary proves in advance *)
          @ (if site = 1 then [ Hf_data.Tuple.keyword "annotated" ] else [])
        in
        Hf_data.Store.insert store (Hf_data.Hobject.of_tuples oid tuples);
        oid)
  in
  let root_store = C.store cluster 0 in
  let root = Hf_data.Store.fresh_oid root_store in
  Hf_data.Store.insert root_store
    (Hf_data.Hobject.of_tuples root
       (Array.to_list (Array.map (fun oid -> Hf_data.Tuple.pointer ~key:"R" oid) docs)));
  root

type e16_tally = {
  mutable t_work_items : int;
  mutable t_work_bytes : int;
  mutable t_hits : int;
  mutable t_prunes : int;
  mutable t_misses : int;
  mutable t_validations : int;
  mutable t_fills : int;
  mutable t_resp : float;
}

let e16_run ~cache ~locality ~program ~repeats =
  let config = { Cluster.default_config with Cluster.cache } in
  let cluster = C.create ~config ~n_sites:3 () in
  let root = e16_corpus ~n_sites:3 ~locality cluster in
  let tally =
    { t_work_items = 0; t_work_bytes = 0; t_hits = 0; t_prunes = 0; t_misses = 0;
      t_validations = 0; t_fills = 0; t_resp = 0.0 }
  in
  let sets =
    List.init repeats (fun _ ->
        let o = C.run_query cluster ~origin:0 program [ root ] in
        assert o.Cluster.terminated;
        let m = o.Cluster.metrics in
        tally.t_work_items <- tally.t_work_items + m.Metrics.work_items;
        tally.t_work_bytes <- tally.t_work_bytes + m.Metrics.work_bytes;
        tally.t_hits <- tally.t_hits + m.Metrics.cache_hits;
        tally.t_prunes <- tally.t_prunes + m.Metrics.cache_prunes;
        tally.t_misses <- tally.t_misses + m.Metrics.cache_misses;
        tally.t_validations <- tally.t_validations + m.Metrics.cache_validations;
        tally.t_fills <- tally.t_fills + m.Metrics.cache_fills;
        tally.t_resp <- tally.t_resp +. o.Cluster.response_time;
        (match C.last_query_id cluster with
         | Some qid -> C.forget_query cluster qid
         | None -> ());
        o.Cluster.result_set)
  in
  (sets, tally)

let e16_cache_pruning () =
  section "E16 (extension): remote-answer caching and Bloom ship pruning"
    "the paper re-ships the query for every remote dereference, every time; memoizing remote \
     verdicts (revalidated by store version) and pruning ships against Bloom tuple summaries \
     removes repeat traffic without ever changing an answer (DESIGN.md §4g)";
  let repeats = 5 in
  let program =
    Hf_query.Parser.parse_program "(Pointer, \"R\", ?X) ^^X (Keyword, \"hot\", ?)"
  in
  Fmt.pr "   hub workload: %d documents, 3 machines, the same query issued %d times@."
    e16_n_docs repeats;
  let total_base_items = ref 0 and total_avoided = ref 0 in
  let all_identical = ref true in
  let rows =
    List.map
      (fun locality ->
        let base_sets, base = e16_run ~cache:None ~locality ~program ~repeats in
        let cached_sets, cached =
          e16_run ~cache:(Some Hf_index.Remote_cache.default) ~locality ~program ~repeats
        in
        let identical = List.for_all2 Hf_data.Oid.Set.equal base_sets cached_sets in
        all_identical := !all_identical && identical;
        let avoided = cached.t_hits + cached.t_prunes in
        total_base_items := !total_base_items + base.t_work_items;
        total_avoided := !total_avoided + avoided;
        let avoided_frac = float_of_int avoided /. float_of_int (max 1 base.t_work_items) in
        let id = Printf.sprintf "e16.local%02.0f" (locality *. 100.0) in
        record_json id
          (J.Obj
             [ ("locality", J.Float locality);
               ("repeats", J.Int repeats);
               ("baseline_work_items", J.Int base.t_work_items);
               ("cached_work_items", J.Int cached.t_work_items);
               ("cache_hits", J.Int cached.t_hits);
               ("cache_prunes", J.Int cached.t_prunes);
               ("cache_misses", J.Int cached.t_misses);
               ("cache_validations", J.Int cached.t_validations);
               ("cache_fills", J.Int cached.t_fills);
               ("ships_avoided_frac", J.Float avoided_frac);
               ("work_bytes_saved", J.Int (base.t_work_bytes - cached.t_work_bytes));
               ("baseline_mean_response_s", J.Float (base.t_resp /. float_of_int repeats));
               ("cached_mean_response_s", J.Float (cached.t_resp /. float_of_int repeats));
               ("result_sets_identical", J.Bool identical);
             ]);
        [ Printf.sprintf "%.0f%%" (locality *. 100.0);
          string_of_int base.t_work_items;
          string_of_int cached.t_work_items;
          string_of_int cached.t_hits;
          string_of_int cached.t_prunes;
          Printf.sprintf "%.0f%%" (avoided_frac *. 100.0);
          string_of_int (base.t_work_bytes - cached.t_work_bytes);
          f2 (base.t_resp /. float_of_int repeats);
          f2 (cached.t_resp /. float_of_int repeats);
        ])
      [ 0.2; 0.5; 0.8 ]
  in
  print_table
    [ Tab.column "P(local)"; Tab.right "ships (base)"; Tab.right "ships (cached)";
      Tab.right "hits"; Tab.right "prunes"; Tab.right "avoided"; Tab.right "bytes saved";
      Tab.right "base resp (s)"; Tab.right "cached resp (s)" ]
    rows;
  let overall =
    float_of_int !total_avoided /. float_of_int (max 1 !total_base_items)
  in
  record_json "e16.overall_ships_avoided" (J.Float overall);
  record_json "e16.result_sets_identical" (J.Bool !all_identical);
  Fmt.pr "   overall ships avoided: %.0f%%; result sets identical to cache-off: %b@."
    (overall *. 100.0) !all_identical;
  (* the PR's acceptance floor: >= 30%% avoided, byte-identical answers *)
  assert (overall >= 0.30);
  assert !all_identical;
  (* Bloom pruning in isolation: a selection whose keyword lives only on
     site 1 — ships to site 2 are provably dead and never leave, even on
     the first, cold-cache run. *)
  let annotated =
    Hf_query.Parser.parse_program "(Pointer, \"R\", ?X) ^^X (Keyword, \"annotated\", ?)"
  in
  let sets_cold, cold = e16_run ~cache:None ~locality:0.2 ~program:annotated ~repeats:1 in
  let sets_pruned, pruned =
    e16_run ~cache:(Some Hf_index.Remote_cache.default) ~locality:0.2 ~program:annotated
      ~repeats:1
  in
  let agree =
    List.for_all2 Hf_data.Oid.Set.equal sets_cold sets_pruned
  in
  record_json "e16.prune"
    (J.Obj
       [ ("baseline_work_items", J.Int cold.t_work_items);
         ("cached_work_items", J.Int pruned.t_work_items);
         ("cache_prunes", J.Int pruned.t_prunes);
         ("result_sets_identical", J.Bool agree);
       ]);
  Fmt.pr
    "   cold-cache prune check (keyword on one site only): %d of %d ships pruned, answers \
     agree: %b@."
    pruned.t_prunes cold.t_work_items agree;
  assert agree

(* --- E14: index acceleration (extension beyond the paper) ------------- *)

let e14_index_acceleration () =
  section "E14 (extension): reachability + keyword indexes (Section 2's indexing facility)"
    "the paper defers to its reference [4]: indexes for keywords and for object reachability, \
     to speed up 'find all documents referenced directly or indirectly by this document that \
     in addition have a given keyword'";
  let store = Hf_data.Store.create ~site:0 in
  let params = { Hf_workload.Corpus.default_params with Hf_workload.Corpus.n_documents = 2_000 } in
  let corpus = Hf_workload.Corpus.generate ~params ~n_sites:1 ~store_of:(fun _ -> store) () in
  (* reading list: the 50 newest documents — their combined citation
     closure covers a substantial slice of the corpus *)
  let all = Hf_workload.Corpus.oids corpus in
  let roots =
    List.init 50 (fun i -> all.(Array.length all - 1 - i))
  in
  let ast word =
    Hf_query.Parser.parse_body
      (Printf.sprintf "[ (Pointer, \"Cites\", ?X) ^^X ]* (Keyword, %S, ?)" word)
  in
  let build_t0 = Unix.gettimeofday () in
  let indexes =
    { Hf_index.Planner.reachability =
        Some (Hf_index.Reachability.of_store ~key:Hf_workload.Corpus.citation_key store);
      keywords = Some (Hf_index.Keyword_index.of_store store);
    }
  in
  (* force the lazy reachable-set memo once so build cost is honest *)
  List.iter
    (fun r ->
      ignore
        (Hf_index.Reachability.reachable (Option.get indexes.Hf_index.Planner.reachability) r))
    roots;
  let build_ms = (Unix.gettimeofday () -. build_t0) *. 1000.0 in
  let words = List.init 8 (fun i -> Hf_workload.Corpus.keyword_name (i * 3)) in
  let time_runs f =
    let t0 = Unix.gettimeofday () in
    let runs = 30 in
    for _ = 1 to runs do
      List.iter (fun w -> ignore (f w)) words
    done;
    (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int (runs * List.length words)
  in
  let engine_answer w =
    (Hf_engine.Local.run_query ~store (ast w) roots).Hf_engine.Local.result_set
  in
  let planner_answer w =
    Hf_index.Planner.answer ~indexes ~find:(Hf_data.Store.find store) (ast w) roots
  in
  let agree =
    List.for_all (fun w -> Hf_data.Oid.Set.equal (engine_answer w) (planner_answer w)) words
  in
  let engine_ms = time_runs engine_answer in
  let planner_ms = time_runs planner_answer in
  record_json "e14.indexes"
    (J.Obj
       [ ("engine_ms_per_query", J.Float engine_ms);
         ("planner_ms_per_query", J.Float planner_ms);
         ("speedup", J.Float (engine_ms /. planner_ms));
         ("index_build_ms", J.Float build_ms);
         ("answers_agree", J.Bool agree);
       ]);
  print_table
    [ Tab.column "evaluation"; Tab.right "ms/query (wall)"; Tab.right "speedup" ]
    [
      [ "engine traversal"; Printf.sprintf "%.3f" engine_ms; "1.0" ];
      [ "reachability ∩ keyword indexes"; Printf.sprintf "%.3f" planner_ms;
        Printf.sprintf "%.0fx" (engine_ms /. planner_ms) ];
    ];
  Fmt.pr "   2000-document corpus; one-time index build %.1f ms; answers agree: %b@." build_ms
    agree

(* --- E17: concurrent queries (extension) ------------------------------ *)

(* A transit-dominated WAN profile: the paper's CPU costs under 400 ms
   wire transit.  Concurrency pays off exactly when a query spends most
   of its life waiting on the wire — on the paper's 20 ms LAN profile
   the site CPUs are the bottleneck and overlap buys little, so the
   concurrency story is told where it matters. *)
let e17_costs =
  { Hf_sim.Costs.paper with
    Hf_sim.Costs.msg_transit = 0.4;
    result_msg_transit = 0.4;
    control_transit = 0.4;
  }

(* The chain worst case from E3, WAN-sized: a ring whose every hop is
   remote, so a solo query is pure latency and concurrent queries
   pipeline through the sites. *)
let e17_ring ~n_sites cluster n =
  let oids =
    Array.init n (fun i -> Hf_data.Store.fresh_oid (C.store cluster (i mod n_sites)))
  in
  Array.iteri
    (fun i oid ->
      let tuples =
        [ Hf_data.Tuple.pointer ~key:"R" oids.((i + 1) mod n) ]
        @ if i mod 3 = 0 then [ Hf_data.Tuple.keyword "hot" ] else []
      in
      Hf_data.Store.insert (C.store cluster (i mod n_sites))
        (Hf_data.Hobject.of_tuples oid tuples))
    oids;
  oids

let e17_run ~n_sites ~in_flight ~n_queries =
  let config =
    { Cluster.default_config with
      Cluster.costs = e17_costs;
      admission =
        { Hf_server.Sched.in_flight_cap = Some in_flight;
          max_queued = None;
          link_window = None;
        };
    }
  in
  let cluster = C.create ~config ~n_sites () in
  let oids = e17_ring ~n_sites cluster 30 in
  let program =
    Hf_query.Parser.parse_program "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)"
  in
  let handles =
    List.init n_queries (fun _ -> C.submit cluster ~origin:0 program [ oids.(0) ])
  in
  C.await_quiescence cluster;
  let outcomes = List.map (C.outcome cluster) handles in
  List.iter (fun o -> assert o.Cluster.terminated) outcomes;
  (match List.map (fun o -> o.Cluster.result_set) outcomes with
   | first :: rest -> assert (List.for_all (Hf_data.Oid.Set.equal first) rest)
   | [] -> ());
  (* every handle was submitted at virtual time 0, so response times are
     sojourn times (queue wait included) and the batch makespan is their
     maximum *)
  let times = List.map (fun o -> o.Cluster.response_time) outcomes in
  let makespan = List.fold_left Float.max 0.0 times in
  (float_of_int n_queries /. makespan, Hf_util.Stats.summarize (Array.of_list times),
   makespan)

let e17_concurrency () =
  section "E17 (extension): concurrent filtering queries"
    "the paper's client issues one query at a time; the §4h admission/scheduling layer keeps \
     N in flight, overlapping wire transit across queries — same answers, multiplied \
     throughput";
  let n_queries = 24 in
  Fmt.pr
    "   WAN profile (400 ms transit), 30-object all-remote ring, %d closure queries from \
     one site@."
    n_queries;
  let ks = [ 1; 2; 4; 8 ] in
  let rows =
    List.concat_map
      (fun n_sites ->
        let runs =
          List.map (fun k -> (k, e17_run ~n_sites ~in_flight:k ~n_queries)) ks
        in
        let base_qps, _, _ = List.assoc 1 runs in
        List.map
          (fun (k, (qps, s, makespan)) ->
            let speedup = qps /. base_qps in
            record_json
              (Printf.sprintf "e17.sites%d.k%d" n_sites k)
              (J.Obj
                 [ ("sites", J.Int n_sites);
                   ("in_flight", J.Int k);
                   ("queries", J.Int n_queries);
                   ("makespan_s", J.Float makespan);
                   ("queries_per_s", J.Float qps);
                   ("speedup_vs_serial", J.Float speedup);
                   ("sojourn", summary_to_json s);
                 ]);
            (* the PR's acceptance floor: 8 in flight buys >= 3x *)
            if k = 8 then assert (speedup >= 3.0);
            [ string_of_int n_sites; string_of_int k; f3 qps;
              f2 s.Hf_util.Stats.p50; f2 s.Hf_util.Stats.p99; f2 makespan;
              Printf.sprintf "%.1fx" speedup ])
          runs)
      [ 3; 6 ]
  in
  print_table
    [ Tab.right "sites"; Tab.right "in flight"; Tab.right "queries/s";
      Tab.right "p50 sojourn (s)"; Tab.right "p99 sojourn (s)"; Tab.right "makespan (s)";
      Tab.right "speedup" ]
    rows

(* --- E18: observability overhead (extension) --------------------------- *)

(* The telemetry layer's bargain (DESIGN.md §4i): per-query sampling
   keeps tracing affordable under concurrent load.  Re-run the E17
   concurrency workload untraced and traced-at-0.1 (profiles built for
   every handle, as a monitoring agent would), and compare wall-clock
   throughput — the virtual-time answers are identical by construction,
   so wall time is the only thing observability can cost. *)
let e18_run ?tracer ~n_sites ~in_flight ~n_queries () =
  let config =
    { Cluster.default_config with
      Cluster.costs = e17_costs;
      admission =
        { Hf_server.Sched.in_flight_cap = Some in_flight;
          max_queued = None;
          link_window = None;
        };
    }
  in
  let cluster = C.create ?tracer ~config ~n_sites () in
  let oids = e17_ring ~n_sites cluster 30 in
  let program =
    Hf_query.Parser.parse_program "[ (Pointer, \"R\", ?X) ^^X ]* (Keyword, \"hot\", ?)"
  in
  let t0 = Unix.gettimeofday () in
  let c0 = Sys.time () in
  let handles =
    List.init n_queries (fun _ -> C.submit cluster ~origin:0 program [ oids.(0) ])
  in
  C.await_quiescence cluster;
  let profiles =
    match tracer with
    | None -> []
    | Some tr ->
      (* The monitoring pattern sampling buys: fetch the span list once,
         then profile only the queries the sampler kept — the skipped
         ones have no spans to explain. *)
      let spans = Hf_obs.Tracer.spans tr in
      let traced = Hashtbl.create 32 in
      List.iter (fun (s : Hf_obs.Span.t) -> Hashtbl.replace traced s.Hf_obs.Span.query ())
        spans;
      List.filter_map
        (fun h ->
          let q = Fmt.str "%a" Hf_proto.Message.pp_query_id (C.query_id h) in
          if Hashtbl.mem traced q then Some (C.profile ~spans cluster h) else None)
        handles
  in
  let cpu = Sys.time () -. c0 in
  let wall = Unix.gettimeofday () -. t0 in
  List.iter (fun h -> assert (C.outcome cluster h).Cluster.terminated) handles;
  (wall, cpu, profiles)

let e18_obs_overhead () =
  section "E18 (extension): observability overhead under concurrent load"
    "always-on telemetry must be nearly free: with per-query trace sampling at 0.1, the \
     traced-and-profiled run of the E17 workload stays within 5% of the untraced one";
  let n_sites = 3 and in_flight = 8 and n_queries = 400 in
  let sample_rate = 0.1 in
  let reps = 9 in
  let timings (wall, cpu, _profiles) = (wall, cpu) in
  let plain () = timings (e18_run ~n_sites ~in_flight ~n_queries ()) in
  (* fresh tracer per run: retained spans must not accumulate across reps *)
  let traced () =
    timings
      (e18_run
         ~tracer:(Hf_obs.Tracer.create ~sample_rate ())
         ~n_sites ~in_flight ~n_queries ())
  in
  ignore (plain ());
  ignore (traced ());
  (* Warmed up.  Paired measurement: each rep times the two arms back
     to back and keeps their ratio, and the estimate is the MEDIAN
     per-pair overhead across reps.  On a shared host a noise spike
     lands inside one rep's pair and skews that ratio only — a min- or
     mean-based estimate would bill the whole spike to whichever arm it
     happened to hit.  The order within a pair alternates so heap and
     cache drift cancel across reps, and [Gc.compact] resets the heap
     to the same defragmented state before every pair — without it the
     first pair runs measurably faster than the rest. *)
  let pairs =
    List.init reps (fun i ->
        Gc.compact ();
        if i mod 2 = 0 then begin
          let b = plain () in
          (b, traced ())
        end
        else begin
          let o = traced () in
          (plain (), o)
        end)
  in
  let median xs =
    let sorted = List.sort Float.compare xs in
    List.nth sorted (List.length sorted / 2)
  in
  let base = median (List.map (fun ((w, _), _) -> w) pairs) in
  let obs = median (List.map (fun (_, (w, _)) -> w) pairs) in
  let base_cpu = median (List.map (fun ((_, c), _) -> c) pairs) in
  let obs_cpu = median (List.map (fun (_, (_, c)) -> c) pairs) in
  (* The bound is checked on process CPU time, not wall clock: the sim
     is single-threaded, so CPU time is exactly the work done per
     workload, while wall time also counts whatever else the host ran
     in between — noise worth tens of percent on a busy box, where the
     effect under test is a few percent. *)
  let overhead =
    median (List.map (fun ((_, bc), (_, oc)) -> (oc -. bc) /. bc) pairs)
  in
  (* one instrumented run to report what sampling kept and skipped *)
  let tracer = Hf_obs.Tracer.create ~sample_rate () in
  let _, _, profiles = e18_run ~tracer ~n_sites ~in_flight ~n_queries () in
  let profiled_spans =
    List.fold_left (fun acc (p : Hf_obs.Profile.t) -> acc + p.Hf_obs.Profile.span_count) 0
      profiles
  in
  record_json "e18.obs_overhead"
    (J.Obj
       [ ("queries", J.Int n_queries);
         ("in_flight", J.Int in_flight);
         ("sample_rate", J.Float sample_rate);
         ("untraced_wall_s", J.Float base);
         ("traced_wall_s", J.Float obs);
         ("untraced_cpu_s", J.Float base_cpu);
         ("traced_cpu_s", J.Float obs_cpu);
         ("overhead_frac", J.Float overhead);
         ("spans_retained", J.Int (Hf_obs.Tracer.count tracer));
         ("spans_sampled_out", J.Int (Hf_obs.Tracer.sampled_out tracer));
         ("spans_dropped", J.Int (Hf_obs.Tracer.dropped tracer));
         ("profiled_span_total", J.Int profiled_spans);
       ]);
  print_table
    [ Tab.column "run"; Tab.right "wall (s)"; Tab.right "queries/s" ]
    [
      [ "untraced"; f3 base; f1 (float_of_int n_queries /. base) ];
      [ Printf.sprintf "traced @ %.1f + profiled" sample_rate; f3 obs;
        f1 (float_of_int n_queries /. obs) ];
    ];
  Fmt.pr
    "   overhead %.1f%%; sampling kept %d span(s), skipped %d, dropped %d@."
    (overhead *. 100.0) (Hf_obs.Tracer.count tracer)
    (Hf_obs.Tracer.sampled_out tracer)
    (Hf_obs.Tracer.dropped tracer);
  (* sampling must have actually sampled: some queries traced, most not *)
  assert (Hf_obs.Tracer.count tracer > 0);
  assert (Hf_obs.Tracer.sampled_out tracer > 0);
  (* the PR's acceptance bound: <= 5% throughput overhead at rate 0.1 *)
  assert (overhead <= 0.05)

(* --- E19: scatter-gather vs query shipping ----------------------------- *)
(* The paper's chain experiment is shipping's worst case: every remote
   hop is one more sequential round trip.  Scatter-gather replaces the
   chain of ships with one broadcast and one gather, so its cost is flat
   in locality while shipping's grows with every pointer that leaves the
   hub.  E19 sweeps chain locality and lets the cost-based planner
   (Exec_auto) pick a side at each point (doc/execution_modes.md). *)
let e19_n_sites = 4
let e19_chain_len = 80
let e19_background = 15

let e19_corpus ~locality cluster =
  let prng = Hf_util.Prng.create 23 in
  (* background objects give every site a population (and a summary)
     even when the chain never lands there *)
  for site = 0 to e19_n_sites - 1 do
    for i = 0 to e19_background - 1 do
      let store = C.store cluster site in
      let oid = Hf_data.Store.fresh_oid store in
      Hf_data.Store.insert store
        (Hf_data.Hobject.of_tuples oid
           [ Hf_data.Tuple.number ~key:"id" (1000 + (100 * site) + i) ])
    done
  done;
  let sites =
    Array.init e19_chain_len (fun i ->
        if Hf_util.Prng.next_bool prng locality then 0
        else 1 + (i mod (e19_n_sites - 1)))
  in
  let oids =
    Array.map (fun site -> Hf_data.Store.fresh_oid (C.store cluster site)) sites
  in
  Array.iteri
    (fun i site ->
      let next =
        if i + 1 < e19_chain_len then
          [ Hf_data.Tuple.pointer ~key:"C" oids.(i + 1) ]
        else []
      in
      let tuples =
        (Hf_data.Tuple.number ~key:"id" i
         :: (if i mod 7 = 0 then [ Hf_data.Tuple.keyword "hot" ] else []))
        @ next
      in
      Hf_data.Store.insert (C.store cluster site)
        (Hf_data.Hobject.of_tuples oids.(i) tuples))
    sites;
  (* the query's anchor always lives on the hub, pointing at the chain head *)
  let root_store = C.store cluster 0 in
  let root = Hf_data.Store.fresh_oid root_store in
  Hf_data.Store.insert root_store
    (Hf_data.Hobject.of_tuples root [ Hf_data.Tuple.pointer ~key:"C" oids.(0) ]);
  root

let e19_run ~exec ~locality =
  let config = { Cluster.default_config with Cluster.exec } in
  let cluster = C.create ~config ~n_sites:e19_n_sites () in
  let root = e19_corpus ~locality cluster in
  let program =
    Hf_query.Parser.parse_program "[ (Pointer, \"C\", ?X) ^^X ]* (Keyword, \"hot\", ?)"
  in
  let o = C.run_query cluster ~origin:0 program [ root ] in
  assert o.Cluster.terminated;
  assert (o.Cluster.unreachable_sites = []);
  o

let e19_scatter () =
  section "E19 (extension): single-round scatter-gather vs query shipping"
    "the paper ships the query along every remote pointer — a chain of sequential round \
     trips; scattering the whole program once and gathering speculative matches costs two \
     messages per site regardless of chain shape (doc/execution_modes.md)";
  Fmt.pr
    "   %d-document chain, %d machines, hot every 7th; planner (auto) picks per query@."
    e19_chain_len e19_n_sites;
  let all_identical = ref true in
  let low_speedup = ref 0.0 in
  let auto_modes = ref [] in
  let rows =
    List.map
      (fun locality ->
        let ship = e19_run ~exec:Cluster.Exec_ship ~locality in
        let scatter = e19_run ~exec:Cluster.Exec_scatter ~locality in
        let auto = e19_run ~exec:Cluster.Exec_auto ~locality in
        let identical =
          Hf_data.Oid.Set.equal ship.Cluster.result_set scatter.Cluster.result_set
          && Hf_data.Oid.Set.equal ship.Cluster.result_set auto.Cluster.result_set
        in
        all_identical := !all_identical && identical;
        let speedup = ship.Cluster.response_time /. scatter.Cluster.response_time in
        if locality = 0.0 then low_speedup := speedup;
        auto_modes := (locality, auto.Cluster.mode) :: !auto_modes;
        let sm = scatter.Cluster.metrics in
        let id = Printf.sprintf "e19.local%03.0f" (locality *. 100.0) in
        record_json id
          (J.Obj
             [ ("locality", J.Float locality);
               ("ship_response_s", J.Float ship.Cluster.response_time);
               ("scatter_response_s", J.Float scatter.Cluster.response_time);
               ("speedup", J.Float speedup);
               ("auto_mode", J.Str (Hf_query.Plan.mode_name auto.Cluster.mode));
               ("auto_response_s", J.Float auto.Cluster.response_time);
               ("ship_work_items", J.Int ship.Cluster.metrics.Metrics.work_items);
               ("scatter_messages", J.Int sm.Metrics.scatter_messages);
               ("gather_nodes", J.Int sm.Metrics.gather_nodes);
               ("scatter_bytes", J.Int sm.Metrics.scatter_bytes);
               ("gather_bytes", J.Int sm.Metrics.gather_bytes);
               ("scatter_fallbacks", J.Int sm.Metrics.scatter_fallbacks);
               ("results_identical", J.Bool identical);
             ]);
        [ Printf.sprintf "%.0f%%" (locality *. 100.0);
          f3 ship.Cluster.response_time;
          f3 scatter.Cluster.response_time;
          Printf.sprintf "%.1fx" speedup;
          Hf_query.Plan.mode_name auto.Cluster.mode;
          f3 auto.Cluster.response_time;
          string_of_int ship.Cluster.metrics.Metrics.work_items;
          string_of_int sm.Metrics.gather_nodes;
        ])
      [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
  in
  print_table
    [ Tab.column "P(local)"; Tab.right "ship resp (s)"; Tab.right "scatter resp (s)";
      Tab.right "speedup"; Tab.column "auto"; Tab.right "auto resp (s)";
      Tab.right "ships"; Tab.right "gather nodes" ]
    rows;
  record_json "e19.low_locality_speedup" (J.Float !low_speedup);
  record_json "e19.results_identical" (J.Bool !all_identical);
  Fmt.pr
    "   speedup at 0%% locality: %.1fx; result sets identical across modes: %b@."
    !low_speedup !all_identical;
  (* the PR's acceptance floor: >= 2x at low locality, byte-identical
     answers, and the planner on the winning side of both sweep ends *)
  assert !all_identical;
  assert (!low_speedup >= 2.0);
  assert (Hf_query.Plan.equal_mode (List.assoc 0.0 !auto_modes) Hf_query.Plan.Scatter);
  assert (Hf_query.Plan.equal_mode (List.assoc 1.0 !auto_modes) Hf_query.Plan.Ship)

(* --- E20: Bloofi hierarchical cross-site index ------------------------- *)

let e20_site_objects = 6

(* One cluster of [n_sites], every site populated, a "hot" object on
   every 9th site; the per-site Bloom summaries are built exactly as the
   engines build them ([Remote_cache.summary_of_store]) and fed to a
   Bloofi tree.  Returns the tree-vs-flat comparison for the probe the
   engine would run for [(Keyword, "hot", ?)]. *)
let e20_tree_row ~n_sites =
  let config =
    { Cluster.default_config with Cluster.cache = Some Hf_index.Remote_cache.default }
  in
  let cluster = C.create ~config ~n_sites () in
  for site = 0 to n_sites - 1 do
    let store = C.store cluster site in
    for i = 0 to e20_site_objects - 1 do
      let oid = Hf_data.Store.fresh_oid store in
      let tuples =
        Hf_data.Tuple.number ~key:"id" ((site * 100) + i)
        :: Hf_data.Tuple.keyword (Printf.sprintf "tag-%d" site)
        :: (if site mod 9 = 0 && i = 0 then [ Hf_data.Tuple.keyword "hot" ] else [])
      in
      Hf_data.Store.insert store (Hf_data.Hobject.of_tuples oid tuples)
    done
  done;
  let summaries =
    List.init n_sites (fun site ->
        ( site,
          Hf_index.Remote_cache.summary_of_store Hf_index.Remote_cache.default
            (C.store cluster site) ))
  in
  let tree = Hf_index.Bloofi.create ~order:4 () in
  List.iter (fun (site, bloom) -> Hf_index.Bloofi.insert tree ~site bloom) summaries;
  let plan =
    Hf_engine.Plan.make (Hf_query.Parser.parse_program "(Keyword, \"hot\", ?)")
  in
  let zeros = Array.make (Hf_engine.Plan.iter_count plan) 0 in
  let probes = Hf_index.Remote_cache.prune_probes plan ~start:0 ~iters:zeros in
  let flat_may =
    List.filter_map
      (fun (site, bloom) ->
        if Hf_index.Remote_cache.summary_misses bloom probes then None else Some site)
      summaries
  in
  let r = Hf_index.Bloofi.probe tree [ probes ] in
  (* the descent is answer-preserving: exactly the flat scan's may-set *)
  assert (r.Hf_index.Bloofi.sites = flat_may);
  let indexed = Hf_index.Bloofi.cardinal tree in
  let pruned = indexed - List.length r.Hf_index.Bloofi.sites in
  let flat_pruned = n_sites - List.length flat_may in
  (indexed, r, pruned, flat_pruned)

(* Section 5 re-query at 27 sites: the broadcast that reseeds retained
   results consults the tree, so sites whose summary rules the new
   filter out are never contacted.  Bloofi on and off must agree on the
   answer; the prune shows up in the contact count. *)
let e20_requery ~bloofi =
  let n_sites = 27 in
  let config =
    {
      Cluster.default_config with
      Cluster.cache = Some Hf_index.Remote_cache.default;
      bloofi;
    }
  in
  let cluster = C.create ~config ~n_sites () in
  let oids =
    Array.init n_sites (fun site -> Hf_data.Store.fresh_oid (C.store cluster site))
  in
  Array.iteri
    (fun site oid ->
      let tuples =
        Hf_data.Tuple.pointer ~key:"N" oids.((site + 1) mod n_sites)
        :: Hf_data.Tuple.number ~key:"id" site
        :: (if site mod 9 = 0 then [ Hf_data.Tuple.keyword "hot" ] else [])
      in
      Hf_data.Store.insert (C.store cluster site) (Hf_data.Hobject.of_tuples oid tuples))
    oids;
  let q1 = Hf_query.Parser.parse_program "[ (Pointer, \"N\", ?X) ^^X ]* (?, ?, ?)" in
  let o1 = C.run_query cluster ~origin:0 q1 [ oids.(0) ] in
  assert o1.Cluster.terminated;
  assert (Hf_data.Oid.Set.cardinal o1.Cluster.result_set = n_sites);
  let q1_id = Option.get (C.last_query_id cluster) in
  let q2 = Hf_query.Parser.parse_program "(Keyword, \"hot\", ?)" in
  let o2 = C.run_query_on_distributed cluster ~origin:0 ~from:q1_id q2 in
  assert o2.Cluster.terminated;
  let counter name =
    match Hf_obs.Registry.find (C.registry cluster) name with
    | Some (Hf_obs.Registry.Counter read) -> read ()
    | Some _ | None -> 0
  in
  (o2, counter "hf.index.bloofi_probes", counter "hf.index.bloofi_pruned_sites")

let e20_bloofi () =
  section "E20 (extension): Bloofi hierarchical cross-site Bloom index"
    "a d-ary tree of OR-combined per-site Bloom filters turns cluster-wide site \
     selection from a per-site scan into a pruned descent (DESIGN.md §4k)";
  Fmt.pr "   per-site summaries as the engines build them; hot content on every 9th site@.";
  let rows =
    List.map
      (fun n_sites ->
        let indexed, r, pruned, flat_pruned = e20_tree_row ~n_sites in
        let rate = float_of_int pruned /. float_of_int indexed in
        let flat_rate = float_of_int flat_pruned /. float_of_int n_sites in
        record_json
          (Printf.sprintf "e20.sites%03d" n_sites)
          (J.Obj
             [ ("sites", J.Int n_sites);
               ("indexed", J.Int indexed);
               ("descent_touched", J.Int r.Hf_index.Bloofi.touched);
               ("descent_depth", J.Int r.Hf_index.Bloofi.depth);
               ("pruned_sites", J.Int pruned);
               ("prune_rate", J.Float rate);
               ("flat_prune_rate", J.Float flat_rate);
             ]);
        if n_sites = 243 then begin
          (* the acceptance floor: sublinear descent, no lost pruning *)
          assert (r.Hf_index.Bloofi.touched < n_sites);
          assert (rate >= flat_rate)
        end;
        [ string_of_int n_sites;
          string_of_int indexed;
          string_of_int r.Hf_index.Bloofi.touched;
          string_of_int r.Hf_index.Bloofi.depth;
          string_of_int pruned;
          Printf.sprintf "%.1f%%" (rate *. 100.0);
          Printf.sprintf "%.1f%%" (flat_rate *. 100.0);
        ])
      [ 9; 27; 81; 243 ]
  in
  print_table
    [ Tab.right "sites"; Tab.right "indexed"; Tab.right "descent touched";
      Tab.right "depth"; Tab.right "pruned"; Tab.right "prune rate";
      Tab.right "flat rate" ]
    rows;
  let on, on_probes, on_pruned = e20_requery ~bloofi:true in
  let off, off_probes, _ = e20_requery ~bloofi:false in
  let identical = Hf_data.Oid.Set.equal on.Cluster.result_set off.Cluster.result_set in
  assert identical;
  assert (on_probes > 0);
  assert (on_pruned > 0);
  assert (off_probes = 0);
  record_json "e20.requery"
    (J.Obj
       [ ("sites", J.Int 27);
         ("results", J.Int (Hf_data.Oid.Set.cardinal on.Cluster.result_set));
         ("results_identical", J.Bool identical);
         ("bloofi_probes", J.Int on_probes);
         ("bloofi_pruned_sites", J.Int on_pruned);
         ("work_messages_bloofi", J.Int on.Cluster.metrics.Metrics.work_messages);
         ("work_messages_flat", J.Int off.Cluster.metrics.Metrics.work_messages);
       ]);
  Fmt.pr
    "   re-query over 27 sites: %d results (identical with index off: %b), %d site(s) \
     pruned without contact@."
    (Hf_data.Oid.Set.cardinal on.Cluster.result_set)
    identical on_pruned

(* --- Bechamel micro-benchmarks ---------------------------------------- *)

let micro_benchmarks () =
  section "Micro-benchmarks (Bechamel, wall clock)"
    "core operations backing the simulator's cost model";
  let open Bechamel in
  let open Toolkit in
  let store = Hf_data.Store.create ~site:0 in
  let placed =
    Syn.materialize
      (Syn.generate ~params:{ Syn.default_params with Syn.n_objects = 90; blob_bytes = 64 } ())
      ~n_sites:1 ~store_of:(fun _ -> store)
  in
  let program = Q.closure_program ~pointer_key:Syn.chain_key (Q.select_rand10 5) in
  let plan = Hf_engine.Plan.make program in
  let obj = Option.get (Hf_data.Store.find store placed.Syn.root) in
  let selection = Q.select_rand10 5 in
  let message =
    Hf_proto.Message.Deref_request
      {
        query = { Hf_proto.Message.originator = 0; serial = 1 };
        body = program;
        oid = placed.Syn.root;
        start = 0;
        iters = [| 1 |];
        credit = [ 4 ];
      }
  in
  let encoded = Hf_proto.Codec.encode message in
  let tests =
    [
      Test.make ~name:"tuple-selection scan"
        (Staged.stage (fun () -> Hf_query.Matcher.element_matches selection obj));
      Test.make ~name:"engine: full 90-object closure"
        (Staged.stage (fun () -> Hf_engine.Local.run_store ~store program [ placed.Syn.root ]));
      Test.make ~name:"eval: one object through filters"
        (Staged.stage (fun () ->
             let marks = Hf_engine.Mark_table.create () in
             let stats = Hf_engine.Stats.create () in
             Hf_engine.Eval.run_object ~plan ~find:(Hf_data.Store.find store) ~marks ~stats
               ~emit:(fun ~target:_ _ -> ())
               (Hf_engine.Work_item.initial plan placed.Syn.root)));
      Test.make ~name:"codec: encode deref"
        (Staged.stage (fun () -> Hf_proto.Codec.encode message));
      Test.make ~name:"codec: decode deref"
        (Staged.stage (fun () -> Hf_proto.Codec.decode_exn encoded));
      Test.make ~name:"credit: split+merge"
        (Staged.stage (fun () ->
             let keep, gave = Hf_termination.Credit.split Hf_termination.Credit.one in
             Hf_termination.Credit.add keep gave));
      Test.make ~name:"mark table: add+mem"
        (Staged.stage (fun () ->
             let marks = Hf_engine.Mark_table.create () in
             Hf_engine.Mark_table.add marks placed.Syn.root 3 ~iters:[| 1 |];
             Hf_engine.Mark_table.mem marks placed.Syn.root 3 ~iters:[| 1 |]));
    ]
  in
  let grouped = Test.make_grouped ~name:"hyperfile" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with Some (t :: _) -> t | Some [] | None -> nan
        in
        [ name; Printf.sprintf "%.0f" estimate ] :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun row ->
      match row with
      | [ name; ns ] ->
          let ns = try float_of_string ns with _ -> nan in
          record_json (Printf.sprintf "micro.%s" name) (J.Obj [ ("ns_per_run", J.Float ns) ])
      | _ -> ())
    rows;
  print_table [ Tab.column "operation"; Tab.right "ns/run" ] rows

(* --- main -------------------------------------------------------------- *)

let json_path =
  let rec find = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let timed id f =
  let t0 = Unix.gettimeofday () in
  f ();
  record_json (id ^ ".wall_s") (J.Float (Unix.gettimeofday () -. t0))

let write_json path =
  let doc =
    J.Obj
      [ ("schema", J.Str "hyperfile-bench/2");
        ("experiments", J.Obj (List.rev !json_records));
      ]
  in
  let oc = open_out path in
  output_string oc (J.to_string doc);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "@.machine-readable results: %s (%d entries)@." path (List.length !json_records)

let () =
  Fmt.pr "HyperFile benchmark harness — reproducing the evaluation of@.";
  Fmt.pr
    "Clifton & Garcia-Molina, \"Distributed Processing of Filtering Queries in HyperFile\" \
     (ICDCS 1991)@.";
  Fmt.pr "Simulator calibrated with the paper's measured basic times; see EXPERIMENTS.md@.";
  timed "e1" e1_basic_costs;
  timed "e2" e2_single_site;
  timed "e3" e3_chain_worst_case;
  timed "e4" e4_tree_parallelism;
  timed "e5" e5_figure4;
  timed "e6" e6_selectivity;
  timed "e7" e7_size_scaling;
  timed "e8" e8_distributed_set;
  timed "e9" e9_mark_tables;
  timed "e10" e10_baseline;
  timed "e11" e11_termination;
  timed "e12" e12_shared_memory;
  timed "e13" e13_batching;
  timed "e14" e14_index_acceleration;
  timed "e15" e15_loss_sweep;
  timed "e16" e16_cache_pruning;
  timed "e17" e17_concurrency;
  timed "e18" e18_obs_overhead;
  timed "e19" e19_scatter;
  timed "e20" e20_bloofi;
  timed "micro" micro_benchmarks;
  Option.iter write_json json_path;
  Fmt.pr "@.done.@."
