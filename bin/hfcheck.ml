(* hfcheck: static analysis of HyperFile's distributed-correctness
   invariants over dune's .cmt typed trees.

     dune build @check && dune exec bin/hfcheck.exe

   Exits 0 when every error-severity finding is fixed, suppressed by an
   [@hf.allow "rule -- justification"] attribute, or recorded in the
   baseline file; exits 1 otherwise, 2 on usage/setup problems. *)

let default_build_dir = "_build/default"

let scope_of_prefixes prefixes source =
  List.exists
    (fun prefix ->
      String.length source >= String.length prefix
      && String.sub source 0 (String.length prefix) = prefix)
    prefixes

(* "--rules R1,r7,credit-linearity" -> canonical ids, or exit 2. *)
let parse_rules = function
  | None -> None
  | Some spec ->
    let names =
      String.split_on_char ',' spec |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    let canonical =
      List.map
        (fun name ->
          match Hf_analysis.Allow.canonicalize name with
          | Some rule -> rule
          | None ->
            Fmt.epr "hfcheck: unknown rule %S in --rules (known: %s)@." name
              (String.concat ", " Hf_analysis.Driver.checkable_rules);
            exit 2)
        names
    in
    if canonical = [] then begin
      Fmt.epr "hfcheck: --rules needs at least one rule@.";
      exit 2
    end;
    Some (List.sort_uniq String.compare canonical)

let run build_dir json_out dot_out baseline_file write_baseline all rules prefixes =
  if not (Sys.file_exists build_dir && Sys.is_directory build_dir) then begin
    Fmt.epr "hfcheck: build directory %s not found — run 'dune build @check' first@."
      build_dir;
    exit 2
  end;
  let baseline =
    match baseline_file with
    | Some path when not write_baseline -> Some (Hf_analysis.Allow.load_baseline path)
    | _ -> None
  in
  let rules = parse_rules rules in
  let default =
    { (Hf_analysis.Driver.default_config ?baseline ()) with Hf_analysis.Driver.rules }
  in
  let config =
    if all then
      {
        default with
        Hf_analysis.Driver.scope = (fun _ -> true);
        io_scope = (fun _ -> true);
      }
    else
      match prefixes with
      | [] -> default
      | prefixes -> { default with Hf_analysis.Driver.scope = scope_of_prefixes prefixes }
  in
  let report = Hf_analysis.Driver.analyze_tree config build_dir in
  if report.Hf_analysis.Driver.files_analyzed = 0 then begin
    Fmt.epr "hfcheck: no .cmt files in scope under %s — run 'dune build @check' first@."
      build_dir;
    exit 2
  end;
  (match json_out with
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc
          (Hf_obs.Json.to_string (Hf_analysis.Driver.report_to_json report));
        output_char oc '\n')
  | None -> ());
  (match dot_out with
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc
          (Hf_analysis.Linker.dot_of_graph report.Hf_analysis.Driver.lock_graph))
  | None -> ());
  (match (write_baseline, baseline_file) with
  | true, Some path ->
    Hf_analysis.Allow.save_baseline path report.Hf_analysis.Driver.findings;
    Fmt.pr "hfcheck: wrote %d finding(s) to baseline %s@."
      (List.length report.Hf_analysis.Driver.findings)
      path
  | true, None ->
    Fmt.epr "hfcheck: --write-baseline needs --baseline FILE@.";
    exit 2
  | false, _ -> ());
  Fmt.pr "%a" Hf_analysis.Driver.pp_report report;
  if Hf_analysis.Driver.errors report <> [] && not write_baseline then exit 1

open Cmdliner

let build_dir =
  let doc = "Build context to scan for .cmt files." in
  Arg.(value & opt string default_build_dir & info [ "build" ] ~docv:"DIR" ~doc)

let json_out =
  let doc = "Write the report as JSON (schema hyperfile-hfcheck/2) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let dot_out =
  let doc = "Write the R6 lock-order graph as Graphviz DOT to $(docv)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let rules =
  let doc =
    "Comma-separated rules to report (canonical names or R1..R8 aliases, e.g. \
     'R6,R7,credit-linearity'). Default: all rules."
  in
  Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"RULES" ~doc)

let baseline_file =
  let doc =
    "Baseline file of '$(i,rule file:line)' keys; findings listed there are reported as \
     baselined and do not fail the run."
  in
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let write_baseline =
  let doc = "Write the current unsuppressed findings to the --baseline file and exit 0." in
  Arg.(value & flag & info [ "write-baseline" ] ~doc)

let all =
  let doc = "Analyze every compilation unit, including test/ and examples/." in
  Arg.(value & flag & info [ "all" ] ~doc)

let prefixes =
  let doc =
    "Source-path prefixes to analyze (default: lib/ and bin/). The io rule is always \
     scoped to lib/."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"PREFIX" ~doc)

let cmd =
  let doc = "static analysis of HyperFile distributed-correctness invariants" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Loads typed trees (.cmt) from the dune build context and checks: poly-compare \
         (R1) — no polymorphic equality/ordering/hashing at types containing Oid.t or \
         Value.t; codec-tag (R2) — wire-tag uniqueness, encoder/decoder parity, tag 127 \
         reserved; guarded-by (R3) — [@hf.guarded_by] fields touched only under their \
         lock wrapper; swallow (R4) — no 'try ... with _ -> ()'; io (R5) — no direct \
         printing from lib/.";
      `P
        "Whole-program rules run over the linked summaries of every unit in scope: \
         lock-order (R6) — the global lock-acquisition graph must be acyclic (cycles \
         are potential deadlocks; export the graph with --dot); blocking-under-lock \
         (R7) — no Unix I/O, Thread.join, foreign Condition.wait or lock \
         re-acquisition reachable while a [@hf.guarded_by] lock is held, through any \
         helper chain; credit-linearity (R8) — Credit.t is linear: ignored, \
         wildcard-dropped, unused or undocumented-discarded credit is flagged.";
      `P
        "Suppress a finding with [@hf.allow \"rule -- justification\"] at the offending \
         expression, binding or field, or grandfather it in a baseline file.  An R7 \
         allow on a call also exempts the callee's transitive effects at that site \
         (deferred thunks, loopback connects).";
    ]
  in
  Cmd.v
    (Cmd.info "hfcheck" ~doc ~man)
    Term.(
      const run $ build_dir $ json_out $ dot_out $ baseline_file $ write_baseline $ all
      $ rules $ prefixes)

let () = exit (Cmd.eval cmd)
