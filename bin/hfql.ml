(* hfql — command-line front end for HyperFile queries.

   Subcommands:
     hfql check "<query>"        parse, validate and show the compiled program
     hfql run script.hfq         run a query script against a demo server
     hfql demo                   run a canned query against the demo server

   The demo server loads the paper's synthetic dataset (270 objects over
   N simulated sites) and predefines the set "Root" holding the dataset
   root; scripts can traverse Chain/Tree/RandNN pointer classes and
   filter on the Unique/Common/Rand10/Rand100/Rand1000 search keys. *)

let setup_server ?tracer ?(cache = false) ?in_flight ?(exec = Hf_server.Cluster.Exec_ship)
    ~sites ~objects ~seed () =
  let config =
    if cache || in_flight <> None || exec <> Hf_server.Cluster.Exec_ship then
      Some
        { Hf_server.Cluster.default_config with
          Hf_server.Cluster.cache =
            (if cache then Some Hf_index.Remote_cache.default else None);
          admission =
            { Hf_server.Sched.unlimited with Hf_server.Sched.in_flight_cap = in_flight };
          exec;
        }
    else None
  in
  let server = Hf_client.Embedded.create ?config ?tracer ~n_sites:sites () in
  let params =
    { Hf_workload.Synthetic.default_params with
      Hf_workload.Synthetic.n_objects = objects;
      seed;
      blob_bytes = 256;
    }
  in
  let dataset = Hf_workload.Synthetic.generate ~params () in
  let placed =
    Hf_workload.Synthetic.materialize dataset ~n_sites:sites
      ~store_of:(Hf_client.Embedded.store server)
  in
  Hf_client.Embedded.define_set server "Root" [ placed.Hf_workload.Synthetic.root ];
  server

(* --- check --- *)

let check_query text =
  match Hf_query.Parser.parse_query text with
  | exception Hf_query.Parser.Parse_error { message; pos } ->
    Fmt.epr "parse error at line %d, column %d: %s@." pos.Hf_query.Parser.line
      pos.Hf_query.Parser.col message;
    1
  | { Hf_query.Parser.source; body; target } ->
    (match source with Some s -> Fmt.pr "source set: %s@." s | None -> ());
    (match target with Some t -> Fmt.pr "result set: %s@." t | None -> ());
    let issues = Hf_query.Validate.check body in
    List.iter (fun i -> Fmt.pr "%a@." Hf_query.Validate.pp_issue i) issues;
    if Hf_query.Validate.is_valid body then begin
      let program = Hf_query.Compile.compile body in
      Fmt.pr "compiled program (%d filters, ~%d bytes on the wire):@.%a@."
        (Hf_query.Program.length program)
        (Hf_query.Program.byte_size program)
        Hf_query.Program.pp program;
      0
    end
    else 1

(* --- run --- *)

let run_script ~sites ~objects ~seed ~origin path =
  let source =
    if path = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_text path In_channel.input_all
  in
  let server = setup_server ~sites ~objects ~seed () in
  let report = Hf_client.Script.run ~origin server source in
  Fmt.pr "%a@." Hf_client.Script.pp_report report;
  if report.Hf_client.Script.failures = 0 then 0 else 1

(* --- demo --- *)

(* Write the trace (if requested) and report what went to disk. *)
let finish_trace tracer = function
  | None -> ()
  | Some path ->
    Hf_obs.Tracer.write_file tracer path;
    Fmt.pr "trace: %d span(s) -> %s%s@." (Hf_obs.Tracer.count tracer) path
      (match Hf_obs.Tracer.sampled_out tracer with
       | 0 -> ""
       | n ->
         Printf.sprintf " (%d skipped by sampling at rate %.2f)" n
           (Hf_obs.Tracer.sample_rate tracer))

(* A truncated trace silently understates every profile built from it —
   make it loud (satellite of DESIGN.md §4i). *)
let warn_dropped tracer =
  match Hf_obs.Tracer.dropped tracer with
  | 0 -> ()
  | n ->
    Fmt.epr
      "hfql: warning: %d span(s) dropped past the tracer limit — traces and profiles for \
       this run are incomplete@."
      n

(* Resolve a query's seed set and ask the planner for its verdict
   without running the query (doc/execution_modes.md).  The planner is
   a pure cost comparison, so this works under any --mode. *)
let explain_query server ~origin text =
  match Hf_query.Parser.parse_query text with
  | exception Hf_query.Parser.Parse_error { message; pos } ->
    Error
      (Printf.sprintf "parse error at %d:%d: %s" pos.Hf_query.Parser.line
         pos.Hf_query.Parser.col message)
  | { Hf_query.Parser.source; body; _ } ->
    let initial =
      match source with
      | None -> []
      | Some name ->
        (match Hf_client.Embedded.find_set server name with
         | Some oids -> oids
         | None -> [])
    in
    let program = Hf_query.Compile.compile body in
    let module C = Hf_client.Embedded.C in
    Ok (C.explain (Hf_client.Embedded.cluster server) ~origin program initial)

let exec_of_mode = function
  | `Ship -> Hf_server.Cluster.Exec_ship
  | `Scatter -> Hf_server.Cluster.Exec_scatter
  | `Auto -> Hf_server.Cluster.Exec_auto

let demo ~sites ~objects ~seed ~in_flight ~mode ~explain_plan ~trace ~profile ~profile_json
    ~slow_ms ~sample_rate =
  let tracing = trace <> None || profile || profile_json <> None || slow_ms <> None in
  (* The sim cluster installs its virtual clock on the tracer. *)
  let tracer =
    if tracing then Hf_obs.Tracer.create ~sample_rate () else Hf_obs.Tracer.noop
  in
  let server =
    setup_server ~tracer ~exec:(exec_of_mode mode)
      ?in_flight:(if in_flight > 1 then Some in_flight else None)
      ~sites ~objects ~seed ()
  in
  let profiles = ref [] in
  (* EXPLAIN ANALYZE per query; the slow-query log fires on virtual
     response time, so it is deterministic for a given seed.  The log
     line names the execution mode that ran, so a slow entry already
     says whether the planner's choice was involved. *)
  let profiled text (r : Hf_client.Embedded.result) =
    if tracing then begin
      let prof = Hf_client.Embedded.profile server r in
      profiles := prof :: !profiles;
      if profile then Fmt.pr "%a@." Hf_obs.Profile.pp prof;
      match slow_ms with
      | Some threshold
        when r.Hf_client.Embedded.outcome.Hf_server.Cluster.response_time *. 1000.0
             >= threshold ->
        Fmt.epr "hfql: slow query (%.1f ms >= %.1f ms, mode: %s): %s@.%a@."
          (r.Hf_client.Embedded.outcome.Hf_server.Cluster.response_time *. 1000.0)
          threshold
          (Hf_query.Plan.mode_name r.Hf_client.Embedded.outcome.Hf_server.Cluster.mode)
          text Hf_obs.Profile.pp prof
      | _ -> ()
    end
  in
  let queries =
    [
      "Root [ (Pointer, \"Tree\", ?X) ^^X ]* (Number, \"Rand10\", 5) -> Hits";
      "Hits (Number, \"Unique\", ->ids)";
    ]
  in
  List.iter
    (fun text ->
      Fmt.pr "query: %s@." text;
      if explain_plan then begin
        match explain_query server ~origin:0 text with
        | Ok decision -> Fmt.pr "  plan: %a@." Hf_query.Plan.pp decision
        | Error message -> Fmt.epr "hfql: cannot explain: %s@." message
      end;
      let r = Hf_client.Embedded.query server text in
      Fmt.pr "  %d result(s) in %.3f simulated seconds (mode: %s)@."
        (List.length r.Hf_client.Embedded.oids)
        r.Hf_client.Embedded.outcome.Hf_server.Cluster.response_time
        (Hf_query.Plan.mode_name r.Hf_client.Embedded.outcome.Hf_server.Cluster.mode);
      List.iter
        (fun (target, values) ->
          Fmt.pr "  %s = %a@." target (Fmt.list ~sep:Fmt.comma Hf_data.Value.pp) values)
        r.Hf_client.Embedded.values;
      profiled text r)
    queries;
  (* --in-flight N: submit N copies of the closure query at once; the
     admission gate keeps all of them running and the per-query slices
     interleave (DESIGN.md §4h), so the batch finishes in a fraction of
     N back-to-back runs. *)
  if in_flight > 1 then begin
    let module C = Hf_client.Embedded.C in
    let cluster = Hf_client.Embedded.cluster server in
    let program =
      Hf_query.Compile.compile
        (Hf_query.Parser.parse_body "[ (Pointer, \"Tree\", ?X) ^^X ]* (Number, \"Rand10\", 5)")
    in
    let root = Option.value ~default:[] (Hf_client.Embedded.find_set server "Root") in
    Fmt.pr "@.concurrent batch: %d copies of the closure query, all in flight@." in_flight;
    let handles = List.init in_flight (fun _ -> C.submit cluster ~origin:0 program root) in
    C.await_quiescence cluster;
    let times =
      List.map
        (fun h -> (C.outcome cluster h).Hf_server.Cluster.response_time)
        handles
    in
    let makespan = List.fold_left Float.max 0.0 times in
    let fastest = List.fold_left Float.min makespan times in
    Fmt.pr "  batch makespan %.3f simulated seconds (%.2f queries/s); one at a time \
            would take roughly %.3f@."
      makespan
      (float_of_int in_flight /. makespan)
      (float_of_int in_flight *. fastest);
    (* Under contention the interesting profile is the slowest query's:
       its Wait rows show what the batch cost it. *)
    if tracing then begin
      let slowest =
        List.fold_left
          (fun acc h ->
            let rt = (C.outcome cluster h).Hf_server.Cluster.response_time in
            match acc with Some (_, best) when best >= rt -> acc | _ -> Some (h, rt))
          None handles
      in
      match slowest with
      | None -> ()
      | Some (h, _) ->
        let prof = C.profile cluster h in
        profiles := prof :: !profiles;
        if profile then Fmt.pr "%a@." Hf_obs.Profile.pp prof
    end
  end;
  (match profile_json with
   | None -> ()
   | Some path ->
     let json = Hf_obs.Json.List (List.rev_map Hf_obs.Profile.to_json !profiles) in
     Out_channel.with_open_text path (fun oc ->
         Out_channel.output_string oc (Hf_obs.Json.to_string json));
     Fmt.pr "profiles: %d -> %s@." (List.length !profiles) path);
  finish_trace tracer trace;
  warn_dropped tracer;
  0

(* --- interactive REPL --- *)

let repl ~sites ~objects ~seed ~origin ~cache ~mode =
  let server = setup_server ~cache ~exec:(exec_of_mode mode) ~sites ~objects ~seed () in
  (* Session totals for :cache-stats — the counters live in each
     outcome's metrics, so we sum them as queries run. *)
  let hits = ref 0 and misses = ref 0 and prunes = ref 0 in
  let validations = ref 0 and fills = ref 0 and invalidations = ref 0 in
  let tally (o : Hf_server.Cluster.outcome) =
    let m = o.Hf_server.Cluster.metrics in
    hits := !hits + m.Hf_server.Metrics.cache_hits;
    misses := !misses + m.Hf_server.Metrics.cache_misses;
    prunes := !prunes + m.Hf_server.Metrics.cache_prunes;
    validations := !validations + m.Hf_server.Metrics.cache_validations;
    fills := !fills + m.Hf_server.Metrics.cache_fills;
    invalidations := !invalidations + m.Hf_server.Metrics.cache_invalidations
  in
  Fmt.pr "HyperFile query shell — %d simulated site(s), %d objects%s%s.@." sites objects
    (if cache then ", remote-answer cache on" else "")
    (match mode with
     | `Ship -> ""
     | `Scatter -> ", scatter-gather mode"
     | `Auto -> ", cost-based mode selection");
  Fmt.pr
    "The set \"Root\" holds the dataset root.  Commands: :sets, :plan <query>, \
     :cache-stats, :quit.@.";
  Fmt.pr "Example: Root [ (Pointer, \"Tree\", ?X) ^^X ]* (Number, \"Rand10\", 5) -> Hits@.";
  let rec loop () =
    Fmt.pr "hfql> %!";
    match In_channel.input_line In_channel.stdin with
    | None -> ()
    | Some line when String.trim line = "" -> loop ()
    | Some line when String.trim line = ":quit" || String.trim line = ":q" -> ()
    | Some line when String.trim line = ":sets" ->
      List.iter
        (fun (name, oids) -> Fmt.pr "  %-12s %d object(s)@." name (List.length oids))
        (List.sort
           (fun (a, _) (b, _) -> String.compare a b)
           (Hf_client.Embedded.sets server));
      loop ()
    | Some line
      when String.length (String.trim line) >= 5
           && String.sub (String.trim line) 0 5 = ":plan" ->
      (* :plan <query> — the planner's cost comparison for this query,
         without running it (doc/execution_modes.md) *)
      let text = String.trim (String.sub (String.trim line) 5 (String.length (String.trim line) - 5)) in
      if text = "" then Fmt.pr "usage: :plan <query>@."
      else
        (match explain_query server ~origin text with
         | Ok decision -> Fmt.pr "%a@." Hf_query.Plan.pp decision
         | Error message -> Fmt.pr "error: %s@." message);
      loop ()
    | Some line when String.trim line = ":cache-stats" ->
      if not cache then Fmt.pr "remote-answer cache is off (start the repl with --cache)@."
      else begin
        Fmt.pr "  hits          %d@." !hits;
        Fmt.pr "  misses        %d@." !misses;
        Fmt.pr "  prunes        %d@." !prunes;
        Fmt.pr "  validations   %d@." !validations;
        Fmt.pr "  fills         %d@." !fills;
        Fmt.pr "  invalidations %d@." !invalidations;
        let asked = !hits + !misses in
        if asked > 0 then
          Fmt.pr "  hit rate      %.0f%%@." (100.0 *. float_of_int !hits /. float_of_int asked)
      end;
      loop ()
    | Some line ->
      (match Hf_client.Embedded.query ~origin server line with
       | r ->
         tally r.Hf_client.Embedded.outcome;
         Fmt.pr "%d result(s) in %.3f simulated seconds%s%s@."
           (List.length r.Hf_client.Embedded.oids)
           r.Hf_client.Embedded.outcome.Hf_server.Cluster.response_time
           (* name the mode only when a planner could have run, so the
              default shell output is unchanged *)
           (if mode = `Ship then ""
            else
              Printf.sprintf " (mode: %s)"
                (Hf_query.Plan.mode_name r.Hf_client.Embedded.outcome.Hf_server.Cluster.mode))
           (match r.Hf_client.Embedded.target with
            | Some t -> Printf.sprintf " -> %s" t
            | None -> "");
         List.iter
           (fun (target, values) ->
             Fmt.pr "  %s = %a@." target (Fmt.list ~sep:Fmt.comma Hf_data.Value.pp) values)
           r.Hf_client.Embedded.values
       | exception Hf_client.Embedded.Invalid_query message -> Fmt.pr "error: %s@." message);
      loop ()
  in
  loop ();
  0

(* --- snapshots --- *)

let save_demo ~sites ~objects ~seed path =
  let server = setup_server ~sites ~objects ~seed () in
  (* snapshot every site: path becomes path.siteN *)
  List.iter
    (fun site ->
      let store = Hf_client.Embedded.store server site in
      let site_path = Printf.sprintf "%s.site%d" path site in
      Hf_persist.Snapshot.save store ~path:site_path;
      Fmt.pr "site %d: %d objects -> %s@." site (Hf_data.Store.cardinal store) site_path)
    (List.init sites Fun.id);
  0

let dump_snapshot path =
  match Hf_persist.Snapshot.load ~path with
  | exception Hf_persist.Snapshot.Corrupt message ->
    Fmt.epr "corrupt snapshot: %s@." message;
    1
  | exception Sys_error message ->
    Fmt.epr "%s@." message;
    1
  | store ->
    Fmt.pr "site %d, %d object(s), next serial %d@." (Hf_data.Store.site store)
      (Hf_data.Store.cardinal store) (Hf_data.Store.next_serial store);
    let shown = ref 0 in
    Hf_data.Store.iter store (fun obj ->
        if !shown < 5 then begin
          incr shown;
          Fmt.pr "%a@." Hf_data.Hobject.pp obj
        end);
    if Hf_data.Store.cardinal store > 5 then
      Fmt.pr "... and %d more@." (Hf_data.Store.cardinal store - 5);
    0

(* --- TCP demo --- *)

let tcp_demo ~sites ~objects ~seed ~batch ~reliable ~mode ~trace ~profile ~stats ~monitor
    ~linger ~sample_rate =
  let module Tcp = Hf_net.Tcp_site in
  let exec =
    match mode with
    | `Ship -> Tcp.Exec_ship
    | `Scatter -> Tcp.Exec_scatter
    | `Auto -> Tcp.Exec_auto
  in
  let tracing = trace <> None || profile in
  (* One shared tracer across the in-process sites: wire messages carry
     span ids, so remote spans still parent on the originating site. *)
  let tracer =
    if tracing then begin
      let t0 = Unix.gettimeofday () in
      Hf_obs.Tracer.create ~clock:(fun () -> Unix.gettimeofday () -. t0) ~sample_rate ()
    end
    else Hf_obs.Tracer.noop
  in
  let reliability = if reliable then Some Hf_proto.Reliable.default else None in
  let endpoints =
    Array.init sites (fun site ->
        Tcp.create ~site ~batch ?reliability ~exec ~tracer
          ?monitor_port:(if monitor then Some 0 else None)
          ())
  in
  let addresses = Array.map Tcp.address endpoints in
  Array.iter (fun s -> Tcp.set_peers s addresses) endpoints;
  Array.iteri
    (fun i addr ->
      match addr with
      | Unix.ADDR_INET (_, port) -> Fmt.pr "site %d on 127.0.0.1:%d@." i port
      | Unix.ADDR_UNIX _ -> ())
    addresses;
  if monitor then
    Array.iter
      (fun s ->
        match Tcp.monitor_address s with
        | Some (Unix.ADDR_INET (_, port)) ->
          Fmt.pr "monitor for site %d on 127.0.0.1:%d (try: hfql stats %d)@." (Tcp.id s)
            port port
        | Some (Unix.ADDR_UNIX _) | None -> ())
      endpoints;
  let params =
    { Hf_workload.Synthetic.default_params with
      Hf_workload.Synthetic.n_objects = objects;
      seed;
      blob_bytes = 256;
    }
  in
  let dataset = Hf_workload.Synthetic.generate ~params () in
  let placed =
    Hf_workload.Synthetic.materialize dataset ~n_sites:sites ~store_of:(fun s ->
        Tcp.store endpoints.(s))
  in
  let program =
    Hf_workload.Queries.closure_program ~pointer_key:Hf_workload.Synthetic.tree_key
      (Hf_workload.Queries.select_rand10 5)
  in
  let handle = Tcp.submit_query endpoints.(0) program [ placed.Hf_workload.Synthetic.root ] in
  let outcome = Tcp.await endpoints.(0) handle in
  let status_text =
    match outcome.Tcp.status with
    | Tcp.Complete -> "complete"
    | Tcp.Partial dead ->
      Fmt.str "partial (unreachable: %a)" Fmt.(list ~sep:comma int) dead
    | Tcp.Timed_out -> "timed out (peers may merely be slow)"
    | Tcp.Cancelled -> "cancelled"
  in
  Fmt.pr "closure over TCP: %d result(s), %s, %.1f ms, %d message(s), %d bytes, mode %s@."
    (List.length outcome.Tcp.results) status_text
    (outcome.Tcp.response_time *. 1000.0)
    outcome.Tcp.messages_sent outcome.Tcp.bytes_sent
    (Hf_query.Plan.mode_name outcome.Tcp.mode);
  if profile then Fmt.pr "%a@." Hf_obs.Profile.pp (Tcp.profile endpoints.(0) handle outcome);
  (* Cluster-wide scrape over the wire: every peer answers a credit-free
     Stats_pull, and the per-site registries merge bucket-exactly. *)
  if stats then begin
    let per_site = Tcp.pull_stats endpoints.(0) in
    Fmt.pr "cluster stats (%d site(s) merged):@.%a@."
      (List.length per_site)
      Hf_obs.Registry.pp_snapshot
      (Hf_obs.Registry.merge_snapshots (List.map snd per_site))
  end;
  (* Keep the sites (and their monitoring ports) up so an external
     scraper can connect before everything tears down. *)
  if linger > 0.0 then begin
    Fmt.pr "lingering %.0f s for scrapers...@." linger;
    Thread.delay linger
  end;
  Array.iter Tcp.shutdown endpoints;
  finish_trace tracer trace;
  warn_dropped tracer;
  match outcome.Tcp.status with
  | Tcp.Complete -> 0
  | Tcp.Timed_out | Tcp.Cancelled -> 1
  | Tcp.Partial _ -> 2

(* --- stats: read a site's monitoring surface --- *)

(* The monitor endpoint speaks no protocol at all: connect, read the
   Prometheus text dump to EOF, done.  This command is a convenience
   over [nc]. *)
let stats_dump ~host ~port =
  match Unix.inet_addr_of_string host with
  | exception Failure _ ->
    Fmt.epr "hfql stats: bad host %S (use a dotted address, e.g. 127.0.0.1)@." host;
    1
  | inet -> (
    let addr = Unix.ADDR_INET (inet, port) in
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | exception Unix.Unix_error (err, _, _) ->
      Unix.close fd;
      Fmt.epr "hfql stats: cannot connect to %s:%d: %s@." host port (Unix.error_message err);
      1
    | () ->
      let buf = Bytes.create 65536 in
      let rec drain () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
          print_string (Bytes.sub_string buf 0 n);
          drain ()
      in
      Fun.protect ~finally:(fun () -> Unix.close fd) drain;
      0)

(* --- cmdliner plumbing --- *)

open Cmdliner

let sites_arg =
  Arg.(value & opt int 3 & info [ "sites" ] ~docv:"N" ~doc:"Number of simulated sites.")

let objects_arg =
  Arg.(value & opt int 270 & info [ "objects" ] ~docv:"N" ~doc:"Synthetic dataset size.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Dataset seed.")

let origin_arg =
  Arg.(value & opt int 0 & info [ "origin" ] ~docv:"SITE" ~doc:"Originating site for queries.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a causal span trace to $(docv): Chrome trace_event JSON (load it in \
                 Perfetto or chrome://tracing), or one JSON object per span when $(docv) \
                 ends in .jsonl.")

let mode_arg =
  Arg.(value
       & opt (enum [ ("ship", `Ship); ("scatter", `Scatter); ("auto", `Auto) ]) `Ship
       & info [ "mode" ] ~docv:"MODE"
           ~doc:"Execution mode (doc/execution_modes.md): $(b,ship) is classic query \
                 shipping (the paper's protocol, the default), $(b,scatter) forces \
                 single-round scatter-gather for every eligible query, $(b,auto) lets \
                 the cost-based planner choose per query.")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Print an EXPLAIN ANALYZE profile per query: per-site phase time \
                 breakdown, ship rounds, queue wait vs execution, and the engine's \
                 per-query message/byte/cache counters (DESIGN.md §4i).")

let sample_rate_arg =
  Arg.(value & opt float 1.0
       & info [ "sample-rate" ] ~docv:"R"
           ~doc:"Trace only fraction $(docv) of queries (whole queries, chosen \
                 deterministically); keeps tracing affordable under concurrent load.")

let check_cmd =
  let query_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"Query text.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse, validate and display a query's compiled form.")
    Term.(const check_query $ query_arg)

let run_cmd =
  let script_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SCRIPT" ~doc:"Query script ('-' for stdin); one query per line.")
  in
  let run sites objects seed origin path = run_script ~sites ~objects ~seed ~origin path in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a query script against the demo server.")
    Term.(const run $ sites_arg $ objects_arg $ seed_arg $ origin_arg $ script_arg)

let demo_cmd =
  let in_flight_arg =
    Arg.(value & opt int 1
         & info [ "in-flight" ] ~docv:"N"
             ~doc:"Keep $(docv) queries in flight at once (admission cap; DESIGN.md §4h) \
                   and finish the demo with a concurrent batch of $(docv) closure queries.")
  in
  let profile_json_arg =
    Arg.(value & opt (some string) None
         & info [ "profile-json" ] ~docv:"FILE"
             ~doc:"Write every query's profile to $(docv) as a JSON array.")
  in
  let slow_ms_arg =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Slow-query log: print the profile of any query whose response time \
                   reaches $(docv) milliseconds to stderr.")
  in
  let explain_plan_arg =
    Arg.(value & flag
         & info [ "explain-plan" ]
             ~doc:"Print the cost-based planner's verdict (predicted sites, modeled \
                   shipping vs scatter cost, chosen mode) before each query runs; \
                   independent of $(b,--mode).")
  in
  let run sites objects seed in_flight mode explain_plan trace profile profile_json slow_ms
      sample_rate =
    if sample_rate < 0.0 || sample_rate > 1.0 then begin
      Fmt.epr "hfql: --sample-rate must be in [0, 1] (got %g)@." sample_rate;
      2
    end
    else
      demo ~sites ~objects ~seed ~in_flight ~mode ~explain_plan ~trace ~profile
        ~profile_json ~slow_ms ~sample_rate
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run canned queries against the demo server.")
    Term.(const run $ sites_arg $ objects_arg $ seed_arg $ in_flight_arg $ mode_arg
          $ explain_plan_arg $ trace_arg $ profile_arg $ profile_json_arg $ slow_ms_arg
          $ sample_rate_arg)

let save_demo_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PATH" ~doc:"Snapshot path prefix (one file per site).")
  in
  let run sites objects seed path = save_demo ~sites ~objects ~seed path in
  Cmd.v
    (Cmd.info "save-demo" ~doc:"Snapshot the demo server's stores to disk.")
    Term.(const run $ sites_arg $ objects_arg $ seed_arg $ path_arg)

let dump_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SNAPSHOT" ~doc:"Snapshot file.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Inspect a store snapshot.")
    Term.(const dump_snapshot $ path_arg)

let repl_cmd =
  let cache_arg =
    Arg.(value & flag
         & info [ "cache" ]
             ~doc:"Enable the remote-answer cache and Bloom ship pruning (DESIGN.md §4g); \
                   inspect it with the :cache-stats shell command.")
  in
  let run sites objects seed origin cache mode =
    repl ~sites ~objects ~seed ~origin ~cache ~mode
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive query shell over the demo server.")
    Term.(const run $ sites_arg $ objects_arg $ seed_arg $ origin_arg $ cache_arg $ mode_arg)

let tcp_demo_cmd =
  let batch_arg =
    Arg.(value & opt int 1
         & info [ "batch" ] ~docv:"K"
             ~doc:"Coalesce up to $(docv) same-destination work items per message (1 = the \
                   paper's one-message-per-item protocol, 0 = only flush when the site \
                   drains).")
  in
  let reliable_arg =
    Arg.(value & flag
         & info [ "reliable" ]
             ~doc:"Layer ack/retransmit delivery under the protocol (see \
                   doc/fault_tolerance.md); exit status 2 marks a partial answer \
                   (unreachable peer).")
  in
  let stats_flag =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"After the query, pull every site's registry over the wire \
                   (credit-free Stats_pull/Stats_report) and print the merged \
                   cluster-wide snapshot.")
  in
  let monitor_flag =
    Arg.(value & flag
         & info [ "monitor" ]
             ~doc:"Bind an always-on monitoring listener per site (ephemeral loopback \
                   port, printed at startup); each answers any connection with a \
                   Prometheus text dump — readable with $(b,hfql stats PORT) or nc.")
  in
  let linger_arg =
    Arg.(value & opt float 0.0
         & info [ "linger" ] ~docv:"S"
             ~doc:"Keep the sites (and any $(b,--monitor) ports) up for $(docv) seconds \
                   after the query, so external scrapers can connect.")
  in
  let run sites objects seed batch reliable mode trace profile stats monitor linger
      sample_rate =
    match
      if batch = 0 then Ok Hf_proto.Batch.Flush_on_drain
      else if batch >= 1 then Ok (Hf_proto.Batch.Flush_at batch)
      else Error ()
    with
    | Ok batch ->
      if sample_rate < 0.0 || sample_rate > 1.0 then begin
        Fmt.epr "hfql: --sample-rate must be in [0, 1] (got %g)@." sample_rate;
        2
      end
      else
        tcp_demo ~sites ~objects ~seed ~batch ~reliable ~mode ~trace ~profile ~stats
          ~monitor ~linger ~sample_rate
    | Error () ->
      Fmt.epr "hfql: --batch must be >= 0 (got %d)@." batch;
      2
  in
  Cmd.v
    (Cmd.info "tcp-demo"
       ~doc:"Run a closure query across real loopback TCP sites (the wire protocol, not the \
             simulator).")
    Term.(const run $ sites_arg $ objects_arg $ seed_arg $ batch_arg $ reliable_arg
          $ mode_arg $ trace_arg $ profile_arg $ stats_flag $ monitor_flag $ linger_arg
          $ sample_rate_arg)

let stats_cmd =
  let port_arg =
    Arg.(required & pos 0 (some int) None
         & info [] ~docv:"PORT" ~doc:"Monitoring port (see $(b,tcp-demo --monitor)).")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"HOST" ~doc:"Monitoring host (dotted address).")
  in
  let run host port = stats_dump ~host ~port in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Dump a site's metrics from its monitoring port (Prometheus text format).")
    Term.(const run $ host_arg $ port_arg)

let () =
  let doc = "HyperFile filtering-query runner (paper reproduction demo)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "hfql" ~doc)
          [
            check_cmd; run_cmd; demo_cmd; repl_cmd; save_demo_cmd; dump_cmd; tcp_demo_cmd;
            stats_cmd;
          ]))
