(** The cost-based execution-mode planner (doc/execution_modes.md).

    Given a compiled program, the seed distribution, and per-site hints
    distilled from the remote-cache layer's Bloom tuple summaries and
    store stats, the planner predicts the touched-site set and compares
    two execution strategies:

    - {b shipping} (the paper's protocol): work items follow the
      pointer chain, one network hop per cross-site dereference —
      round-heavy, byte-light;
    - {b scatter-gather}: broadcast the program to every predicted site
      in one round; each site speculatively evaluates its whole local
      domain and ships the productive nodes home — round-light,
      byte-heavy.

    The module is deliberately pure: it depends on nothing but the
    query layer.  Engines build {!site_hint}s from whatever summary
    state they hold (the simulator from its stores, the TCP transport
    from learned [Cache_version] summaries) and translate their cost
    tables into {!costs}. *)

type site_hint = {
  site : int;
  objects : int option;
      (** estimated object count at the site (e.g. from
          {!Hf_index.Bloom.estimate_entries}); [None] = unknown. *)
  may_match : bool option;
      (** whether the site's tuple summary may match the program's
          dereference landing filters; [Some false] excludes the site
          from the predicted set, anything else keeps it. *)
  seed_may_match : bool option;
      (** whether the site's summary may match the program's {e start}
          filter — the one its own seeds enter at.  Only consulted for
          seed sites: [Some false] together with [may_match = Some
          false] moves the site to the decision's [remainder] (partial
          scatter), anything else keeps seed sites predicted. *)
}

type index_stats = {
  indexed : int;  (** sites held by the Bloofi tree at probe time. *)
  touched : int;  (** tree nodes consulted by the descent. *)
  depth : int;  (** deepest level the descent reached. *)
  pruned : int;  (** indexed sites the descent ruled out. *)
}
(** How the planner's site prediction was computed when a
    {!Hf_index.Bloofi} descent (rather than a flat summary scan)
    produced the hints — carried on the decision for [:plan] /
    [--explain-plan] and the bench harness. *)

type costs = {
  transit : float;  (** one-way message latency, seconds. *)
  header_bytes : int;  (** program + query header, per message. *)
  item_bytes : int;  (** per shipped work item. *)
  node_bytes : int;  (** per speculative gather node. *)
  eval_s : float;  (** per speculative node evaluation, seconds. *)
  byte_s : float;  (** transfer seconds per byte. *)
  p_local : float;
      (** estimated probability that a dereference stays on-site —
          engines derive it from the origin store's own cross-site
          pointer ratio. *)
}

type estimate = {
  rounds : int;  (** sequential message legs on the critical path. *)
  bytes : int;  (** estimated protocol bytes. *)
  latency : float;  (** estimated response-time contribution, seconds. *)
}

type mode = Ship | Scatter

val mode_name : mode -> string
val equal_mode : mode -> mode -> bool

type decision = {
  eligible : bool;
  reason : string option;  (** why scatter is ineligible, when it is. *)
  predicted : int list;
      (** predicted touched sites, sorted, origin excluded — the sites
          a scatter would contact. *)
  remainder : int list;
      (** seed sites excluded from the scatter fan-out because their
          summary rules out both the landing and the start filters;
          their seeds ship classically (partial scatter).  Always
          disjoint from [predicted]. *)
  index : index_stats option;
      (** present when a Bloofi descent produced the prediction. *)
  ship : estimate;
  scatter : estimate;
  chosen : mode;
}

val landing_pcs : Program.t -> int list
(** The dereference landing indices [{d+1 | program.(d) = Deref}] —
    the entry points a scattered site must speculate from, in addition
    to filter 0 for its seed roots. *)

val depth : Program.t -> int
(** Number of dereference filters: the shipping mode's worst-case
    cross-site hop count per chain. *)

val eligible : Program.t -> (unit, string) result
(** Scatter-gather eligibility.  Finite iterators make the per-item
    iteration counters vary along a chain, so a site cannot enumerate
    its speculation domain; such programs always ship. *)

val decide :
  program:Program.t ->
  origin:int ->
  seed_sites:(int * int) list ->
  hints:site_hint list ->
  ?index:index_stats ->
  costs:costs ->
  unit ->
  decision
(** [decide] compares the two modes.  [seed_sites] gives (site, seed
    count) pairs for the query's initial oids; [hints] should cover
    every candidate site (origin entries are ignored).  Sites with
    seeds are predicted regardless of their landing-summary verdict
    unless {e both} their hint verdicts are [Some false], in which case
    they land in [remainder] and their seeds ship classically (partial
    scatter).  [index] records how a Bloofi descent produced the hints,
    for the explain output; it does not affect the decision. *)

val pp : Format.formatter -> decision -> unit
(** Multi-line rendering used by [hfql :plan] and [--explain-plan]. *)
