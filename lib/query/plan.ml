(* Cost-based execution-mode planner: shipping vs scatter-gather.
   Pure analysis over the compiled program plus per-site hints; engines
   translate their own summary state and cost tables into the inputs
   (doc/execution_modes.md). *)

type site_hint = {
  site : int;
  objects : int option;
  may_match : bool option;
  seed_may_match : bool option;
}

type index_stats = { indexed : int; touched : int; depth : int; pruned : int }

type costs = {
  transit : float;
  header_bytes : int;
  item_bytes : int;
  node_bytes : int;
  eval_s : float;
  byte_s : float;
  p_local : float;
}

type estimate = { rounds : int; bytes : int; latency : float }
type mode = Ship | Scatter

let mode_name = function Ship -> "ship" | Scatter -> "scatter"
let equal_mode a b = match (a, b) with
  | Ship, Ship | Scatter, Scatter -> true
  | (Ship | Scatter), _ -> false

type decision = {
  eligible : bool;
  reason : string option;
  predicted : int list;
  remainder : int list;
  index : index_stats option;
  ship : estimate;
  scatter : estimate;
  chosen : mode;
}

let landing_pcs program =
  let filters = Program.filters program in
  List.rev
    (snd
       (List.fold_left
          (fun (pc, acc) f ->
            match f with
            | Filter.Deref _ -> (pc + 1, (pc + 1) :: acc)
            | _ -> (pc + 1, acc))
          (0, []) filters))

let depth program =
  List.fold_left
    (fun n f -> match f with Filter.Deref _ -> n + 1 | _ -> n)
    0 (Program.filters program)

(* A dereference under a star iterator fires once per chain hop, not
   once: the closure visits a data-dependent number of objects.  The
   shipping model prices that as the pessimistic sequential chain —
   each remote member of the predicted population may cost one
   shipping leg (the paper's chain experiment is exactly this worst
   case; trees parallelize and finish sooner than the estimate). *)
let has_star_deref program =
  let filters = Array.of_list (Program.filters program) in
  let n = Array.length filters in
  let covered = Array.make n false in
  Array.iteri
    (fun i f ->
      match f with
      | Filter.Iter { body_start; count = Filter.Star } ->
          for pc = body_start to i - 1 do
            covered.(pc) <- true
          done
      | _ -> ())
    filters;
  let found = ref false in
  Array.iteri
    (fun i f ->
      match f with Filter.Deref _ when covered.(i) -> found := true | _ -> ())
    filters;
  !found

let eligible program =
  let finite =
    List.exists
      (function
        | Filter.Iter { count = Filter.Finite _; _ } -> true | _ -> false)
      (Program.filters program)
  in
  if finite then
    Error
      "finite iterator: iteration counters vary per chain, so a site \
       cannot enumerate its speculation domain"
  else Ok ()

(* When a site's object count is unknown (no summary learned yet) we
   still have to price its speculative evaluation; assume a modest
   store rather than zero, so scatter never looks free by ignorance. *)
let default_objects = 32

let decide ~program ~origin ~seed_sites ~hints ?index ~costs () =
  let d = depth program in
  let landing = landing_pcs program in
  let seeds_at s =
    List.fold_left
      (fun acc (site, n) -> if site = s then acc + n else acc)
      0 seed_sites
  in
  let total_seeds = List.fold_left (fun acc (_, n) -> acc + n) 0 seed_sites in
  let remote_seeds =
    List.fold_left
      (fun acc (site, n) -> if site = origin then acc else acc + n)
      0 seed_sites
  in
  (* Predicted touched sites: every remote seed site, plus — when the
     program dereferences at all — every hinted site whose summary does
     not rule it out.  Partial scatter: a remote seed site drops to the
     [remainder] only when its summary rules out BOTH the landing
     filters and the start filter for its own seeds — its seeds then
     ship classically (the stray-seed path), so excluding it from the
     scatter fan-out cannot lose results. *)
  let predicted, remainder =
    let tbl = Hashtbl.create 7 in
    let rem = Hashtbl.create 7 in
    List.iter
      (fun (site, n) ->
        if site <> origin && n > 0 then begin
          let excludable =
            match List.find_opt (fun h -> h.site = site) hints with
            | Some { may_match = Some false; seed_may_match = Some false; _ }
              ->
                true
            | Some _ | None -> false
          in
          if excludable then Hashtbl.replace rem site ()
          else Hashtbl.replace tbl site ()
        end)
      seed_sites;
    if d > 0 then
      List.iter
        (fun h ->
          if h.site <> origin && h.may_match <> Some false then
            Hashtbl.replace tbl h.site ())
        hints;
    ( List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) tbl []),
      List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) rem []) )
  in
  let objects_of s =
    match List.find_opt (fun h -> h.site = s) hints with
    | Some { objects = Some n; _ } -> n
    | Some { objects = None; _ } | None -> default_objects
  in
  (* --- shipping estimate ---------------------------------------- *)
  (* Each chain crosses a site boundary once per dereference that does
     not land locally; seeds born remote cost one extra leg, and any
     remote work implies one results leg home.  Under a star closure
     the deref count is data-dependent, so the model charges one
     potential hop per remote object the closure could visit. *)
  let cross = 1.0 -. costs.p_local in
  let remote_population =
    List.fold_left (fun acc s -> acc + objects_of s) 0 predicted
  in
  let star_hops =
    if has_star_deref program then cross *. float_of_int remote_population
    else 0.0
  in
  let hops = (float_of_int d *. cross) +. star_hops in
  let seed_leg = if remote_seeds > 0 then 1.0 else 0.0 in
  let work_legs = seed_leg +. hops in
  let legs = if work_legs > 0.0 then work_legs +. 1.0 else 0.0 in
  let shipped_items =
    remote_seeds + int_of_float (ceil (float_of_int total_seeds *. hops))
  in
  let ship_bytes =
    if shipped_items = 0 then 0
    else shipped_items * (costs.header_bytes + costs.item_bytes)
  in
  let ship =
    {
      rounds = int_of_float (ceil legs);
      bytes = ship_bytes;
      latency =
        (legs *. costs.transit) +. (float_of_int ship_bytes *. costs.byte_s);
    }
  in
  (* --- scatter estimate ----------------------------------------- *)
  (* One broadcast out, one gather back; sites evaluate their domains
     in parallel, so evaluation latency follows the largest site. *)
  let nlanding = List.length landing in
  let site_nodes s = seeds_at s + (objects_of s * nlanding) in
  (* Seeds at remainder sites still travel, classically, alongside the
     scatter; they overlap the scatter round-trip, so they cost bytes
     but no extra rounds. *)
  let remainder_seeds =
    List.fold_left (fun acc s -> acc + seeds_at s) 0 remainder
  in
  let scatter_bytes =
    List.fold_left
      (fun acc s ->
        acc + costs.header_bytes
        + (seeds_at s * costs.item_bytes)
        + (site_nodes s * costs.node_bytes))
      (remainder_seeds * (costs.header_bytes + costs.item_bytes))
      predicted
  in
  let max_nodes =
    List.fold_left (fun acc s -> max acc (site_nodes s)) 0 predicted
  in
  let scatter =
    match predicted with
    | [] -> { rounds = 0; bytes = 0; latency = 0.0 }
    | _ :: _ ->
        {
          rounds = 2;
          bytes = scatter_bytes;
          latency =
            (2.0 *. costs.transit)
            +. (float_of_int max_nodes *. costs.eval_s)
            +. (float_of_int scatter_bytes *. costs.byte_s);
        }
  in
  let eligible, reason =
    match eligible program with
    | Ok () -> (true, None)
    | Error why -> (false, Some why)
  in
  let chosen =
    if eligible && predicted <> [] && scatter.latency < ship.latency then
      Scatter
    else Ship
  in
  { eligible; reason; predicted; remainder; index; ship; scatter; chosen }

let pp_estimate ppf e =
  Format.fprintf ppf "rounds=%d bytes=%d latency=%.6fs" e.rounds e.bytes
    e.latency

let pp_sites ppf = function
  | [] -> Format.pp_print_string ppf "none"
  | sites ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        Format.pp_print_int ppf sites

let pp ppf d =
  Format.fprintf ppf "@[<v>mode: %s@,eligible: %b%a@,predicted sites: %a%a%a@,\
                      ship:    %a@,scatter: %a@]"
    (mode_name d.chosen) d.eligible
    (fun ppf -> function
      | None -> ()
      | Some why -> Format.fprintf ppf " (%s)" why)
    d.reason pp_sites d.predicted
    (fun ppf -> function
      | [] -> ()
      | rem -> Format.fprintf ppf "@,remainder (classic ship): %a" pp_sites rem)
    d.remainder
    (fun ppf -> function
      | None -> ()
      | Some i ->
          Format.fprintf ppf
            "@,bloofi probe: %d indexed, %d node(s) touched, depth %d, %d \
             pruned"
            i.indexed i.touched i.depth i.pruned)
    d.index pp_estimate d.ship pp_estimate d.scatter
