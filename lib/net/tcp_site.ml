(* A real HyperFile site over TCP.

   This is the paper's Section 3.2 protocol on actual sockets — the same
   wire messages ([Hf_proto.Message], binary codec, length framing) that
   the simulator accounts for, exchanged between OS processes or threads.
   Every site runs the identical algorithm: per-query contexts, local
   engine processing, query shipping on remote dereferences, results
   flowing straight to the originator, weighted-message termination with
   credit piggybacked on result messages.

   Threading model (per site):
   - an accept thread takes incoming connections;
   - one reader thread per connection reassembles frames, decodes
     messages, and handles them under the site's state lock;
   - one writer thread per outbound connection drains a send queue, so
     a handler never blocks on a peer's socket (no send/receive
     deadlock);
   - [submit_query] (called by the embedding client on the originating
     site) seeds the query through the admission gate and returns a
     handle; a per-query drainer thread processes the working set in
     bounded slices, releasing the site lock between slices so
     concurrent queries interleave.  [await] waits on a condition
     variable until the origin's detector recovers all credit, or a
     timeout expires (crashed peers then yield partial results, per the
     paper's "partial results are better than none").  [run_query] is
     submit + await.

   Concurrency (DESIGN.md §4h): any number of queries may be live at
   once.  Shared per-link state needs no per-query keying — reliable
   seq/ack and dedup are link-scoped by design (they protect frames,
   not queries), the remote-answer cache is keyed by (destination,
   plan, item) which is already query-independent, and work batchers
   are per-drain locals so batches never mix queries on this engine.
   The admission gate ([Hf_server.Sched]) caps in-flight queries per
   origin and queues the rest fairly. *)

module Message = Hf_proto.Message
module Credit = Hf_termination.Credit
module Sched = Hf_server.Sched

let src = Logs.Src.create "hf.net" ~doc:"HyperFile TCP transport"

module Log = (val Logs.src_log src : Logs.LOG)

(* --- outbound connections: queue + writer thread --- *)

type out_conn = {
  fd : Unix.file_descr;
  queue : string Queue.t; [@hf.guarded_by "conn_locked"]
  queue_mutex : Mutex.t;
  queue_cond : Condition.t;
  closing : bool ref; [@hf.guarded_by "conn_locked"]
  broken : bool ref; [@hf.guarded_by "conn_locked"]
      (* the writer thread hit a socket error: frames queued here are
         lost, and the connection must be replaced before this peer can
         be written to again *)
  mutable writer : Thread.t option;
}

let conn_locked conn f =
  Mutex.lock conn.queue_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.queue_mutex) f

let writer_loop conn () =
  let rec next () =
    let item =
      conn_locked conn (fun () ->
          while Queue.is_empty conn.queue && not !(conn.closing) do
            Condition.wait conn.queue_cond conn.queue_mutex
          done;
          if Queue.is_empty conn.queue then None else Some (Queue.pop conn.queue))
    in
    match item with
    | None -> () (* closing *)
    | Some frame -> (
        match
          let bytes = Bytes.of_string frame in
          let rec write_all off =
            if off < Bytes.length bytes then
              let n = Unix.write conn.fd bytes off (Bytes.length bytes - off) in
              write_all (off + n)
          in
          write_all 0
        with
        | () -> next ()
        | exception Unix.Unix_error _ ->
          (* peer gone; drop remaining output and mark the connection so
             the next send replaces it (and, with reliability on, the
             retransmit path re-delivers what this queue lost) *)
          conn_locked conn (fun () -> conn.broken := true))
  in
  next ()

let open_out_conn addr =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.connect fd addr;
  Unix.setsockopt fd TCP_NODELAY true;
  let conn =
    {
      fd;
      queue = Queue.create ();
      queue_mutex = Mutex.create ();
      queue_cond = Condition.create ();
      closing = ref false;
      broken = ref false;
      writer = None;
    }
  in
  conn.writer <- Some (Thread.create (writer_loop conn) ());
  conn

let conn_send conn frame =
  conn_locked conn (fun () ->
      Queue.push frame conn.queue;
      Condition.signal conn.queue_cond)

(* A writer thread that refuses to die (blocked in a signal handler,
   say) should not make shutdown raise: the join failure is counted in
   [join_errors] — surfaced as hf.net.join_errors — and the socket is
   closed regardless. *)
let conn_close ~join_errors conn =
  conn_locked conn (fun () ->
      conn.closing := true;
      Condition.signal conn.queue_cond);
  (match conn.writer with
  | Some thread -> ( try Thread.join thread with _ -> Atomic.incr join_errors)
  | None -> ());
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* --- execution mode (doc/execution_modes.md) --- *)

type exec_mode =
  | Exec_ship (* classic query shipping only; no planner runs *)
  | Exec_scatter (* scatter-gather whenever the program is eligible *)
  | Exec_auto (* per-query cost-based choice ([Hf_query.Plan]) *)

(* --- per-query state --- *)

(* Every mutable part of a context is owned by the site lock: handlers
   and [run_query] only touch contexts inside [locked]. *)
type context = {
  plan : Hf_engine.Plan.t;
  origin : int;
  span : int; (* this site's evaluation span for the query *)
  marks : Hf_engine.Mark_table.t;
  work : Hf_engine.Work_item.t Hf_util.Deque.t; [@hf.guarded_by "locked"]
  stats : Hf_engine.Stats.t;
  mutable held : Credit.t; [@hf.guarded_by "locked"]
      (* weighted-termination credit at this site *)
  mutable result_buffer : Hf_data.Oid.t list; [@hf.guarded_by "locked"]
  bindings : (string, Hf_data.Value.t list) Hashtbl.t; [@hf.guarded_by "locked"]
  mutable local_result_set : Hf_data.Oid.Set.t; [@hf.guarded_by "locked"]
  (* origin-side only *)
  mutable recovered : Credit.t; [@hf.guarded_by "locked"]
  mutable final_results : Hf_data.Oid.t list; [@hf.guarded_by "locked"] (* newest first *)
  mutable final_set : Hf_data.Oid.Set.t; [@hf.guarded_by "locked"]
  final_bindings : (string, Hf_data.Value.t list) Hashtbl.t; [@hf.guarded_by "locked"]
  mutable terminated : bool; [@hf.guarded_by "locked"]
  mutable unreachable : int list; [@hf.guarded_by "locked"]
      (* origin-side: sites whose retry budget was exhausted while this
         query ran — the answer is partial with respect to them *)
  (* Cache layer (DESIGN.md §4g): items headed for an unvalidated
     destination wait in [parked], their credit unsplit, until the
     Cache_version reply (or a give-up) resolves them; the credit-return
     tail is gated on all of [parked_count], [out_pending] and
     [draining] so it runs only once every remote-bound item is on the
     wire (or served locally). *)
  validated : (int, int) Hashtbl.t; [@hf.guarded_by "locked"]
      (* dst -> store version vouched for this query *)
  validating : (int, unit) Hashtbl.t; [@hf.guarded_by "locked"]
  parked : (int, Hf_engine.Work_item.t list) Hashtbl.t; [@hf.guarded_by "locked"]
      (* dst -> items awaiting validation, newest first *)
  mutable parked_count : int; [@hf.guarded_by "locked"]
  mutable out_pending : int; [@hf.guarded_by "locked"]
      (* items buffered in some live [process_to_drain] batcher *)
  mutable draining : int; [@hf.guarded_by "locked"]
      (* reentrancy depth of [process_to_drain]: a give-up that fires
         mid-drain must not run the credit-return tail under the outer
         drain's feet *)
  mutable answers : (Hf_engine.Work_item.t * bool) list; [@hf.guarded_by "locked"]
      (* cacheable verdicts computed here for the originator's cache,
         newest first; flushed (credit-free) with the drain tail *)
  mutable answers_version : int; [@hf.guarded_by "locked"]
  mutable scatter : Hf_engine.Scatter.Stitch.t option; [@hf.guarded_by "locked"]
      (* origin-side: live stitch while a scatter round is outstanding;
         gates the credit-return tail until every gather (or a give-up
         verdict for its site) has landed *)
  mutable ran_mode : Hf_query.Plan.mode; [@hf.guarded_by "locked"]
      (* which execution mode actually ran (origin-side) *)
  mutable decision : Hf_query.Plan.decision option; [@hf.guarded_by "locked"]
      (* the planner's verdict, when a planner ran (origin-side) *)
  (* Per-query transport attribution: site-global counters bleed across
     overlapping queries, so each frame is also charged to its query's
     context and outcomes read these instead of global deltas. *)
  mutable msgs_sent : int; [@hf.guarded_by "locked"]
  mutable bytes_out : int; [@hf.guarded_by "locked"]
  mutable queue_wait_s : float; [@hf.guarded_by "locked"]
      (* origin-side: seconds spent in the admission queue before the
         seed ran; 0 for remotely-introduced contexts *)
  (* origin-side admission / cancellation state *)
  mutable admitted : bool; [@hf.guarded_by "locked"]
  mutable slot_released : bool; [@hf.guarded_by "locked"]
  mutable cancelled : bool; [@hf.guarded_by "locked"]
}

type pending = {
  p_query : Message.query_id;
  p_seed : unit -> unit;
      (* runs under the site lock when the queued query takes a slot *)
}

type t = {
  id : int;
  store : Hf_data.Store.t;
  batch_policy : Hf_proto.Batch.flush_policy;
      (* per-destination work batching; [Flush_at 1] ships one
         Deref_request per item, byte-identical to the original
         protocol *)
  reliability : Hf_proto.Reliable.config option;
      (* ack/retransmit layer; [None] = fire-and-forget (a lost frame or
         crashed peer silently loses messages and their credit) *)
  links : (int, Message.t Hf_proto.Reliable.t) Hashtbl.t; [@hf.guarded_by "locked"]
      (* per-peer reliable-link state, created on first contact *)
  listener : Unix.file_descr;
  address : Unix.sockaddr;
  mutable peers : Unix.sockaddr array; (* index = site id *)
  conns : (int, out_conn) Hashtbl.t; [@hf.guarded_by "locked"]
  lock : Mutex.t; (* guards contexts, store access during queries, conns *)
  done_cond : Condition.t; (* signalled when a local query terminates *)
  contexts : (Message.query_id, context) Hashtbl.t; [@hf.guarded_by "locked"]
  mutable next_serial : int; [@hf.guarded_by "locked"]
  admission : Sched.config;
  gate : pending Sched.t; [@hf.guarded_by "locked"]
      (* admission gate for locally-issued queries (DESIGN.md §4h) *)
  closed : (Message.query_id, unit) Hashtbl.t; [@hf.guarded_by "locked"]
      (* tombstones for evicted queries: late or retransmitted work for
         a query the originator already closed must not resurrect a
         context (its credit is dead — same as a loss).  Bounded FIFO. *)
  closed_order : Message.query_id Queue.t; [@hf.guarded_by "locked"]
  mutable running : bool;
  mutable ticker : Thread.t option;
      (* the reliability ticker, joinable on its own: shutdown quiesces
         it before tearing connections down *)
  mutable threads : Thread.t list; [@hf.guarded_by "locked"]
  mutable dead_writers : Thread.t list; [@hf.guarded_by "locked"]
      (* writer threads of connections discarded while the site lock was
         held ([conn_discard]): Thread.join can block, so shutdown joins
         them after the lock is released instead *)
  join_errors : int Atomic.t; (* threads that could not be joined on close *)
  (* observability.  Sites sharing one tracer (same process, as in
     tests and the demo) get cross-site spans: the wire carries the
     sender's span id and the receiver closes it on arrival, so a work
     message's span extends over its real transit.  Separate processes
     each see their own half. *)
  tracer : Hf_obs.Tracer.t;
  registry : Hf_obs.Registry.t;
  sent_frame_bytes : Hf_obs.Histogram.t; (* per-message encoded size *)
  query_rtt : Hf_obs.Histogram.t; (* run_query wall time, seconds *)
  ack_latency : Hf_obs.Histogram.t; (* first-send to cumulative-ack, seconds *)
  (* transport metrics *)
  mutable messages_sent : int; [@hf.guarded_by "locked"]
  mutable bytes_sent : int; [@hf.guarded_by "locked"]
  mutable messages_received : int; [@hf.guarded_by "locked"]
  mutable retransmits : int; [@hf.guarded_by "locked"]
  mutable dup_drops : int; [@hf.guarded_by "locked"]
  mutable acks_sent : int; [@hf.guarded_by "locked"]
  mutable give_ups : int; [@hf.guarded_by "locked"]
  (* cache layer (None = ships every item, the seed protocol) *)
  cache_config : Hf_index.Remote_cache.config option;
  cache : Hf_index.Remote_cache.t option; [@hf.guarded_by "locked"]
  mutable summary_memo : (int * Hf_index.Bloom.t) option; [@hf.guarded_by "locked"]
      (* this site's own Bloom tuple summary, memoized per store version *)
  summary_told : (int, int) Hashtbl.t; [@hf.guarded_by "locked"]
      (* peer -> store version whose summary we last sent them *)
  summaries : (int, int * Hf_index.Bloom.t) Hashtbl.t; [@hf.guarded_by "locked"]
      (* peer -> (version, summary) learned from Cache_version replies *)
  mutable summary_epoch : int; [@hf.guarded_by "locked"]
      (* monotonic count of this site's summary recomputes; rides every
         Cache_version reply so peers can spot a restarted lineage *)
  peer_epochs : (int, int) Hashtbl.t; [@hf.guarded_by "locked"]
      (* peer -> last summary epoch seen from it; a regression drops
         everything learned from the peer, Bloofi leaf included *)
  bloofi : Hf_index.Bloofi.t option; [@hf.guarded_by "locked"]
      (* Bloofi tree over learned peer summaries ([None] = disabled:
         the planner falls back to the flat per-peer scan) *)
  bloofi_depth : Hf_obs.Histogram.t; (* deepest level per planner descent *)
  mutable cache_hits : int; [@hf.guarded_by "locked"]
  mutable cache_misses : int; [@hf.guarded_by "locked"]
  mutable cache_prunes : int; [@hf.guarded_by "locked"]
  mutable cache_validations : int; [@hf.guarded_by "locked"]
  mutable cache_fills : int; [@hf.guarded_by "locked"]
  mutable cache_invalidations : int; [@hf.guarded_by "locked"]
  (* scatter-gather execution mode (doc/execution_modes.md) *)
  exec : exec_mode;
  mutable scatter_messages : int; [@hf.guarded_by "locked"]
  mutable gather_messages : int; [@hf.guarded_by "locked"]
  mutable gather_nodes : int; [@hf.guarded_by "locked"]
  mutable scatter_fallbacks : int; [@hf.guarded_by "locked"]
  mutable planner_scatter : int; [@hf.guarded_by "locked"]
  mutable planner_ship : int; [@hf.guarded_by "locked"]
  mutable locality_memo : (int * float) option; [@hf.guarded_by "locked"]
      (* (store version, fraction of this store's pointer tuples that
         stay on-site) — the planner's locality signal *)
  (* cluster-wide stats scraping and monitoring (DESIGN.md §4i) *)
  mutable stats_token : int; [@hf.guarded_by "locked"]
      (* last Stats_pull token issued by this site; replies carrying an
         older token (or 0 — a periodic push) never satisfy a waiting
         [pull_stats] *)
  peer_stats : (int, Hf_obs.Registry.snapshot) Hashtbl.t; [@hf.guarded_by "locked"]
      (* peer -> last registry snapshot received from it *)
  peer_stats_token : (int, int) Hashtbl.t; [@hf.guarded_by "locked"]
      (* peer -> highest pull token that snapshotting has answered *)
  stats_cond : Condition.t; (* signalled when a Stats_report lands *)
  stats_period : float option;
  mutable stats_ticker : Thread.t option;
      (* periodic scrape thread; joined at shutdown before connections
         come down, like the reliability ticker *)
  mutable monitor : Unix.file_descr option;
      (* always-on monitoring surface: a loopback listener that answers
         every connection with a Prometheus text dump of [registry] *)
  admission_wait : Hf_obs.Histogram.t; (* submit-to-seed queue wait, seconds *)
}

let locate oid = Hf_data.Oid.birth_site oid

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Retire a broken connection without joining its writer (R7 fix): the
   caller holds the site lock, and a writer stuck on a dead peer's
   socket would stall every thread that needs the lock if we joined it
   here.  The writer is told to stop and its thread parked in
   [dead_writers]; [shutdown] joins the parked threads once the lock is
   released.  Closing the fd fails any in-flight write immediately. *)
let conn_discard t conn =
  conn_locked conn (fun () ->
      conn.closing := true;
      Condition.signal conn.queue_cond);
  (match conn.writer with
  | Some thread -> t.dead_writers <- thread :: t.dead_writers
  | None -> ());
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())
[@@hf.requires_lock "locked"]

(* --- stats snapshots on the wire (DESIGN.md §4i) --- *)

(* Registry snapshots and wire stats live in different layers — hf_obs
   knows nothing of the protocol and hf_proto nothing of registries —
   so the transport converts between them.  Histograms cross as exact
   shape (count/sum/min/max/buckets); the percentile reservoir stays
   site-local by design. *)
let stats_of_snapshot snapshot =
  List.map
    (fun (name, sampled) ->
      let value =
        match (sampled : Hf_obs.Registry.sampled) with
        | Hf_obs.Registry.Counter_value n -> Message.Stat_counter n
        | Hf_obs.Registry.Gauge_value v -> Message.Stat_gauge v
        | Hf_obs.Registry.Histogram_value h ->
          Message.Stat_histogram
            {
              count = Hf_obs.Histogram.count h;
              sum = Hf_obs.Histogram.sum h;
              vmin = Hf_obs.Histogram.vmin h;
              vmax = Hf_obs.Histogram.vmax h;
              buckets = Hf_obs.Histogram.buckets h;
            }
      in
      { Message.name; value })
    snapshot

(* A histogram the codec accepted but [of_shape] rejects (negative
   count, bucket index out of range — a version-skewed peer) drops that
   one metric, not the whole report. *)
let snapshot_of_stats stats =
  List.filter_map
    (fun { Message.name; value } ->
      match value with
      | Message.Stat_counter n -> Some (name, Hf_obs.Registry.Counter_value n)
      | Message.Stat_gauge v -> Some (name, Hf_obs.Registry.Gauge_value v)
      | Message.Stat_histogram { count; sum; vmin; vmax; buckets } -> (
          match Hf_obs.Histogram.of_shape ~count ~sum ~vmin ~vmax ~buckets () with
          | h -> Some (name, Hf_obs.Registry.Histogram_value h)
          | exception Invalid_argument _ -> None))
    stats
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- sending --- *)

(* The reliable-link state for peer [dst], created on first contact.
   One [Reliable.t] per peer holds both halves of the link: sequencing
   and retransmission for frames we send it, dedup and cumulative acks
   for frames it sends us. *)
let link_for t dst =
  match Hashtbl.find_opt t.links dst with
  | Some link -> link
  | None ->
    let link =
      Hf_proto.Reliable.create (Option.value t.reliability ~default:Hf_proto.Reliable.default)
    in
    Hashtbl.replace t.links dst link;
    link
[@@hf.requires_lock "locked"]

(* One physical transmission attempt: connection management plus frame
   encoding.  [seq] is the reliability sequence number (0 when
   unsequenced — reliability off, or a standalone [Link_ack]); the
   cumulative ack for the reverse direction is peeked immediately
   before the frame leaves, so every outgoing envelope carries the
   freshest ack.  A connection whose writer died is replaced here —
   with reliability on, whatever its queue lost is retransmitted. *)
let transmit_raw t ?(span = 0) ~seq ~dst message =
  let reopen () =
    match
      (open_out_conn t.peers.(dst)
       [@hf.allow
         "blocking-under-lock -- peers are loopback sockets: connect either \
          completes immediately (the listener's backlog accepts) or fails \
          fast with ECONNREFUSED; an async reconnect queue is tracked \
          roadmap work"])
    with
    | conn ->
      Hashtbl.replace t.conns dst conn;
      Some conn
    | exception Unix.Unix_error _ -> None (* peer down *)
  in
  let conn =
    match Hashtbl.find_opt t.conns dst with
    | Some conn ->
      if conn_locked conn (fun () -> !(conn.broken)) then begin
        (* [conn_discard], not [conn_close]: we hold the site lock, and
           joining a writer that may be wedged on a dead socket would
           block every other thread at [locked] (hfcheck R7). *)
        conn_discard t conn;
        Hashtbl.remove t.conns dst;
        reopen ()
      end
      else Some conn
    | None -> reopen ()
  in
  match conn with
  | None -> Hf_obs.Tracer.finish ~detail:"peer down" t.tracer span
  | Some conn ->
    let rel =
      match t.reliability with
      | None -> None
      | Some _ ->
        Some
          { Hf_proto.Codec.src = t.id; seq; ack = Hf_proto.Reliable.take_ack (link_for t dst) }
    in
    let payload = Hf_proto.Codec.encode ~span ?rel message in
    t.messages_sent <- t.messages_sent + 1;
    t.bytes_sent <- t.bytes_sent + String.length payload;
    (* Per-query attribution: site-global counters cover every query at
       once, so an outcome reading global deltas would charge one query
       with its neighbors' traffic.  Each frame — retransmissions
       included — is charged to its query's live context instead; link
       housekeeping ([Link_ack]) and post-eviction control frames have
       no query context and stay site-global only. *)
    (match
       (match (message : Message.t) with
        | Message.Link_ack | Message.Stats_pull _ | Message.Stats_report _
        | Message.Work_batch [] -> None
        | m -> Some (Message.query_of m))
     with
    | Some q -> (
        match Hashtbl.find_opt t.contexts q with
        | Some ctx ->
          ctx.msgs_sent <- ctx.msgs_sent + 1;
          ctx.bytes_out <- ctx.bytes_out + String.length payload
        | None -> ())
    | None -> ());
    Hf_obs.Histogram.observe t.sent_frame_bytes (float_of_int (String.length payload));
    conn_send conn (Hf_proto.Frame.frame payload)
[@@hf.requires_lock "locked"]

(* --- query contexts --- *)

(* [cause] parents this site's evaluation span on the span of the work
   message that introduced the query here (0: no known cause). *)
let new_context t ?(cause = 0) ~query ~origin program =
  let span =
    Hf_obs.Tracer.start t.tracer ~parent:cause
      ~query:(Fmt.str "%a" Message.pp_query_id query)
      ~site:t.id ~phase:Hf_obs.Span.Eval "site-eval"
  in
  let ctx =
    {
      plan = Hf_engine.Plan.make program;
      origin;
      span;
      marks = Hf_engine.Mark_table.create ();
      work = Hf_util.Deque.create ();
      stats = Hf_engine.Stats.create ();
      held = Credit.zero;
      result_buffer = [];
      bindings = Hashtbl.create 4;
      local_result_set = Hf_data.Oid.Set.empty;
      recovered = Credit.zero;
      final_results = [];
      final_set = Hf_data.Oid.Set.empty;
      final_bindings = Hashtbl.create 4;
      terminated = false;
      unreachable = [];
      validated = Hashtbl.create 4;
      validating = Hashtbl.create 4;
      parked = Hashtbl.create 4;
      parked_count = 0;
      out_pending = 0;
      draining = 0;
      answers = [];
      answers_version = 0;
      scatter = None;
      ran_mode = Hf_query.Plan.Ship;
      decision = None;
      msgs_sent = 0;
      bytes_out = 0;
      queue_wait_s = 0.0;
      admitted = false;
      slot_released = false;
      cancelled = false;
    }
  in
  Hashtbl.replace t.contexts query ctx;
  ctx
[@@hf.requires_lock "locked"]

(* --- context eviction (ISSUE 6 satellite S1) --- *)

(* A terminated (or cancelled) query must leave no per-site state
   behind: under concurrency the contexts table is long-lived working
   state, not a per-query scratchpad, and leaking one entry per query
   is an unbounded heap on a server that never restarts. *)

let tombstone_cap = 1024

let mark_closed t query =
  if not (Hashtbl.mem t.closed query) then begin
    Hashtbl.replace t.closed query ();
    Queue.push query t.closed_order;
    if Queue.length t.closed_order > tombstone_cap then
      Hashtbl.remove t.closed (Queue.pop t.closed_order)
  end
[@@hf.requires_lock "locked"]

(* Drop the query's context and tombstone its id.  The record itself
   stays reachable from any live handle (origin side), so [await] can
   still read the final results; what this reclaims is the table entry,
   the working set and the parked items — and the tombstone makes a
   late Work_batch for the query die at the door instead of
   resurrecting an empty context. *)
let evict_context t query (ctx : context) =
  (* Eviction happens on the cancel / Query_done / termination paths:
     the origin has stopped counting, so any credit still held here is
     dead by design (on normal termination it is already zero). *)
  (Credit.discard ctx.held
   [@hf.allow
     "credit-linearity -- cancel-path exemption: an evicted context's \
      query no longer needs the termination detector to converge, so \
      its residual credit is deliberately destroyed"]);
  ctx.held <- Credit.zero;
  Hf_obs.Tracer.finish t.tracer ctx.span;
  Hf_util.Deque.clear ctx.work;
  Hashtbl.reset ctx.parked;
  ctx.parked_count <- 0;
  Hashtbl.reset ctx.validating;
  Hashtbl.remove t.contexts query;
  mark_closed t query
[@@hf.requires_lock "locked"]

(* Free the admission slot a finished/cancelled local query held; a
   queued submission, if any, takes over the slot and is seeded here,
   still under the site lock. *)
let release_slot t (ctx : context) =
  if ctx.admitted && not ctx.slot_released then begin
    ctx.slot_released <- true;
    match Sched.release t.gate with Some job -> job.p_seed () | None -> ()
  end
[@@hf.requires_lock "locked"]

let merge_bindings table extra =
  List.iter
    (fun (target, values) ->
      let existing = match Hashtbl.find_opt table target with None -> [] | Some v -> v in
      Hashtbl.replace table target (existing @ values))
    extra

let note_unreachable ctx dead =
  if not (List.mem dead ctx.unreachable) then ctx.unreachable <- dead :: ctx.unreachable
[@@hf.requires_lock "locked"]

(* Front door for outgoing messages.  With reliability off this is a
   single fire-and-forget transmission — seed behavior, byte-identical
   frames.  With it on, the message first registers with the peer's
   reliable link, so a lost frame costs a retransmission instead of the
   message; a peer already past its retry budget fails fast into
   [give_up_message]. *)
let rec send t ?(span = 0) ~dst message =
  match t.reliability with
  | None -> transmit_raw t ~span ~seq:0 ~dst message
  | Some _ ->
    let link = link_for t dst in
    if Hf_proto.Reliable.unreachable link then begin
      Hf_obs.Tracer.finish ~detail:"unreachable" t.tracer span;
      give_up_message t ~dst message
    end
    else begin
      let seq = Hf_proto.Reliable.send link ~now:(Unix.gettimeofday ()) message in
      transmit_raw t ~span ~seq ~dst message
    end

(* [dst]'s retry budget is exhausted and [message] will never be
   delivered.  The receiver provably never processed it (dedup would
   have acked it), so the credit it carried can be reclaimed without
   double-counting: returned to the originator — directly when that is
   this site — together with a [Site_unreachable] notice so the client
   learns its answer is partial.  When the unreachable peer IS the
   originator there is no one left to pay or tell: the credit is
   dropped, which also bounds the recursion through [send]. *)
and give_up_message t ~dst message =
  t.give_ups <- t.give_ups + 1;
  Log.warn (fun m ->
      m "site %d: giving up on %a to unreachable peer %d" t.id Message.pp message dst);
  let reclaim query credit =
    let origin = query.Message.originator in
    if dst = origin then
      (* the originator itself is gone *)
      (Credit.discard (Credit.of_atoms credit)
       [@hf.allow
         "credit-linearity -- the originator is unreachable: no site is \
          left to pay, and dropping the credit bounds the give-up \
          recursion through [send] (see the comment above)"])
    else if t.id = origin then (
      match Hashtbl.find_opt t.contexts query with
      | None -> ()
      | Some ctx ->
        note_unreachable ctx dst;
        credit_recovered t query ctx (Credit.of_atoms credit))
    else begin
      send t ~dst:origin (Message.Site_unreachable { query; dead = dst });
      if credit <> [] then send t ~dst:origin (Message.Credit_return { query; credit })
    end
  in
  match (message : Message.t) with
  | Message.Deref_request { query; credit; _ } -> reclaim query credit
  | Message.Work_batch groups ->
    List.iter (fun { Message.query; credit; _ } -> reclaim query credit) groups
  | Message.Result { query; credit; _ } -> reclaim query credit
  | Message.Credit_return { query; credit } -> reclaim query credit
  | Message.Cache_validate { query; _ } -> (
      (* The validation round trip died: un-park the waiting items and
         ship them the plain way — those sends fail fast against the
         dead link and their credit is reclaimed by the work arms
         above.  Carries no credit itself. *)
      match Hashtbl.find_opt t.contexts query with
      | None -> ()
      | Some ctx -> release_parked t query ctx ~dst None)
  | Message.Scatter { query; credit; _ } ->
    (* The whole scattered site is gone.  Settle its slot in the stitch
       first (an empty gather, dropping its parked chains — the same
       answer a classic loss at that site produces), so the reclaim
       below can run the credit tail without the stitch holding it
       open forever. *)
    (match Hashtbl.find_opt t.contexts query with
     | None -> ()
     | Some ctx -> (
         match ctx.scatter with
         | None -> ()
         | Some st -> ignore (Hf_engine.Scatter.Stitch.site_dead st ~site:dst)));
    reclaim query credit;
    (match Hashtbl.find_opt t.contexts query with
     | None -> () (* the reclaim terminated and evicted the query *)
     | Some ctx -> finish_drain t query ctx)
  | Message.Gather_result { query; credit; _ } ->
    (* a gather toward an unreachable originator: same as a Result —
       reclaim discards the credit, there is no one left to pay *)
    reclaim query credit
  | Message.Link_ack | Message.Site_unreachable _ | Message.Cache_version _
  | Message.Cache_answers _ | Message.Query_done _ | Message.Stats_pull _
  | Message.Stats_report _ -> ()
  (* Query_done carries no credit: an unreachable peer just keeps its
     tombstone-less context until its own give-ups reclaim it.  Stats
     messages are credit-free by design — losing one costs a stale
     scrape, nothing more. *)
[@@hf.requires_lock "locked"]

(* --- the cache layer (DESIGN.md §4g) --- *)

(* Apply a verdict obtained without shipping (cache hit): the result
   bookkeeping the remote's Result message would have caused, minus the
   wire. *)
and apply_cached_verdict t ctx wi passed =
  if passed then begin
    let oid = Hf_engine.Work_item.oid wi in
    if not (Hf_data.Oid.Set.mem oid ctx.local_result_set) then begin
      ctx.local_result_set <- Hf_data.Oid.Set.add oid ctx.local_result_set;
      if t.id = ctx.origin then begin
        if not (Hf_data.Oid.Set.mem oid ctx.final_set) then begin
          ctx.final_set <- Hf_data.Oid.Set.add oid ctx.final_set;
          ctx.final_results <- oid :: ctx.final_results
        end
      end
      else ctx.result_buffer <- oid :: ctx.result_buffer
    end
  end
[@@hf.requires_lock "locked"]

(* Resolve one item against a destination whose store version has been
   vouched for this query: prune and hit keep the item off the wire —
   before its credit is ever split — and a miss lands in [acc] for
   shipping. *)
and resolve_item t ctx ~dst ~version wi acc =
  let start = Hf_engine.Work_item.start wi in
  let iters = Hf_engine.Work_item.iters wi in
  let probes = Hf_index.Remote_cache.prune_probes ctx.plan ~start ~iters in
  let pruned =
    probes <> []
    && (match Hashtbl.find_opt t.summaries dst with
        | Some (v, summary) when v = version ->
          Hf_index.Remote_cache.summary_misses summary probes
        | Some _ | None -> false)
  in
  if pruned then begin
    t.cache_prunes <- t.cache_prunes + 1;
    acc
  end
  else
    match t.cache with
    | Some cache when Hf_index.Remote_cache.cacheable ctx.plan ~start ~iters -> (
        let key =
          Hf_index.Remote_cache.entry_key ~dst ~plan:ctx.plan ~start ~iters
            ~oid:(Hf_engine.Work_item.oid wi)
        in
        match
          Hf_index.Remote_cache.lookup cache ~now:(Unix.gettimeofday ()) ~key ~version
        with
        | Hf_index.Remote_cache.Hit passed ->
          t.cache_hits <- t.cache_hits + 1;
          apply_cached_verdict t ctx wi passed;
          acc
        | Hf_index.Remote_cache.Invalidated ->
          t.cache_invalidations <- t.cache_invalidations + 1;
          t.cache_misses <- t.cache_misses + 1;
          wi :: acc
        | Hf_index.Remote_cache.Absent ->
          t.cache_misses <- t.cache_misses + 1;
          wi :: acc)
    | Some _ | None -> wi :: acc
[@@hf.requires_lock "locked"]

(* Un-park every item waiting on [dst].  [Some version]: resolve each
   against the vouched version.  [None] (the validation round trip gave
   up): ship them all the plain way.  Ends with the drain tail, which
   the [draining] guard suppresses when a give-up fired mid-drain. *)
and release_parked t query ctx ~dst version =
  Hashtbl.remove ctx.validating dst;
  (match Hashtbl.find_opt ctx.parked dst with
   | None -> ()
   | Some waiting ->
     Hashtbl.remove ctx.parked dst;
     let items = List.rev waiting in
     ctx.parked_count <- ctx.parked_count - List.length items;
     let misses =
       match version with
       | None -> items
       | Some version ->
         List.rev
           (List.fold_left (fun acc wi -> resolve_item t ctx ~dst ~version wi acc) [] items)
     in
     send_work_batch t query ctx ~dst misses);
  finish_drain t query ctx
[@@hf.requires_lock "locked"]

(* Route one remote-bound item: plain batcher push with caching off;
   with it on, resolve against the validated version, or park behind a
   Cache_validate round trip on first contact with the destination. *)
and route_remote t query ctx ~out wi =
  let dst = locate (Hf_engine.Work_item.oid wi) in
  let push wi =
    ctx.out_pending <- ctx.out_pending + 1;
    match Hf_proto.Batch.push out ~dst wi with
    | None -> ()
    | Some items ->
      ctx.out_pending <- ctx.out_pending - List.length items;
      send_work_batch t query ctx ~dst items
  in
  match t.cache with
  | None -> push wi
  | Some _ -> (
      match Hashtbl.find_opt ctx.validated dst with
      | Some version -> (
          match resolve_item t ctx ~dst ~version wi [] with
          | [] -> () (* pruned, or served from the cache *)
          | misses -> List.iter push misses)
      | None ->
        let waiting =
          match Hashtbl.find_opt ctx.parked dst with Some l -> l | None -> []
        in
        Hashtbl.replace ctx.parked dst (wi :: waiting);
        ctx.parked_count <- ctx.parked_count + 1;
        if not (Hashtbl.mem ctx.validating dst) then begin
          Hashtbl.replace ctx.validating dst ();
          t.cache_validations <- t.cache_validations + 1;
          send t ~dst (Message.Cache_validate { query; src = t.id })
        end)
[@@hf.requires_lock "locked"]

(* Ship a batch of work items to [dst], splitting the sender's credit
   once for the whole batch.  A single item goes as a plain
   [Deref_request] — byte-identical to the unbatched protocol — so a
   [Flush_at 1] site is indistinguishable on the wire. *)
and send_work_batch t query ctx ~dst items =
  match items with
  | [] -> ()
  | items ->
    let keep, gave = Credit.split ctx.held in
    ctx.held <- keep;
    let body = Hf_engine.Plan.program ctx.plan in
    let credit = Credit.atoms gave in
    let span =
      Hf_obs.Tracer.start t.tracer ~parent:ctx.span
        ~query:(Fmt.str "%a" Message.pp_query_id query)
        ~site:t.id ~phase:Hf_obs.Span.Ship
        (Fmt.str "work->%d" dst)
    in
    Hf_obs.Tracer.set_detail t.tracer span (Fmt.str "%d item(s)" (List.length items));
    (match items with
     | [ wi ] ->
       send t ~span ~dst
         (Message.Deref_request
            {
              query;
              body;
              oid = Hf_engine.Work_item.oid wi;
              start = Hf_engine.Work_item.start wi;
              iters = Hf_engine.Work_item.iters wi;
              credit;
            })
     | items ->
       send t ~span ~dst
         (Message.Work_batch
            [
              {
                Message.query;
                body;
                items =
                  List.map
                    (fun wi ->
                      {
                        Message.oid = Hf_engine.Work_item.oid wi;
                        start = Hf_engine.Work_item.start wi;
                        iters = Hf_engine.Work_item.iters wi;
                      })
                    items;
                credit;
              };
            ]))
[@@hf.requires_lock "locked"]

(* Apply a stitch outcome at the originator (scatter-gather mode):
   newly activated passing nodes join the final results, their bindings
   merge, and chains that escaped the scattered site set re-enter the
   classic pipeline — cache layer, batcher, credit split — as ordinary
   remote work.  Ordering matters for credit safety: the fallback ships
   split their share from the origin's held credit HERE, before the
   caller deposits whatever credit the gather carried, so the detector
   can never converge while stitched chains still owe work. *)
and apply_scatter_outcome t query ctx (outcome : Hf_engine.Scatter.Stitch.outcome) =
  List.iter
    (fun oid ->
      if not (Hf_data.Oid.Set.mem oid ctx.local_result_set) then begin
        ctx.local_result_set <- Hf_data.Oid.Set.add oid ctx.local_result_set;
        if not (Hf_data.Oid.Set.mem oid ctx.final_set) then begin
          ctx.final_set <- Hf_data.Oid.Set.add oid ctx.final_set;
          ctx.final_results <- oid :: ctx.final_results
        end
      end)
    outcome.passed;
  merge_bindings ctx.final_bindings outcome.bindings;
  t.scatter_fallbacks <- t.scatter_fallbacks + List.length outcome.fallback;
  if outcome.fallback <> [] then begin
    let out = Hf_proto.Batch.create t.batch_policy in
    List.iter (fun wi -> route_remote t query ctx ~out wi) outcome.fallback;
    List.iter
      (fun (dst, items) ->
        ctx.out_pending <- ctx.out_pending - List.length items;
        send_work_batch t query ctx ~dst items)
      (Hf_proto.Batch.flush_all out)
  end
[@@hf.requires_lock "locked"]

(* The credit-return tail: ship buffered results (credit riding along)
   to the originator, or at the originator recover the held credit.
   Gated — it must not run while a [process_to_drain] is still active
   ([draining]), while items sit in a live batcher ([out_pending]) or
   wait on a validation round trip ([parked_count]): credit would go
   home before those items' share was split off, and the originator
   would see termination with work outstanding. *)
and finish_drain t query ctx =
  if
    ctx.draining = 0 && ctx.parked_count = 0 && ctx.out_pending = 0
    && Hf_util.Deque.is_empty ctx.work
    && (match ctx.scatter with
        | None -> true
        | Some st -> Hf_engine.Scatter.Stitch.outstanding st = 0)
  then begin
    (* Opportunistic cache fill first: verdicts computed here flow to
       the originator's cache.  Credit-free — a drop costs future hits,
       never correctness. *)
    (if t.id <> ctx.origin && ctx.answers <> [] then begin
       let answers =
         List.rev_map
           (fun (wi, passed) : Message.cache_answer ->
             {
               oid = Hf_engine.Work_item.oid wi;
               start = Hf_engine.Work_item.start wi;
               iters = Hf_engine.Work_item.iters wi;
               passed;
             })
           ctx.answers
       in
       let version = ctx.answers_version in
       ctx.answers <- [];
       send t ~dst:ctx.origin (Message.Cache_answers { query; src = t.id; version; answers })
     end);
    if t.id = ctx.origin then begin
      merge_bindings ctx.final_bindings
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.bindings []);
      Hashtbl.reset ctx.bindings;
      if not (Credit.is_zero ctx.held) then begin
        let credit = ctx.held in
        ctx.held <- Credit.zero;
        credit_recovered t query ctx credit
      end
    end
    else begin
      let credit = ctx.held in
      ctx.held <- Credit.zero;
      let items = List.rev ctx.result_buffer in
      let bindings = Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.bindings [] in
      ctx.result_buffer <- [];
      Hashtbl.reset ctx.bindings;
      if items <> [] || bindings <> [] then begin
        let span =
          Hf_obs.Tracer.start t.tracer ~parent:ctx.span
            ~query:(Fmt.str "%a" Message.pp_query_id query)
            ~site:t.id ~phase:Hf_obs.Span.Ship
            (Fmt.str "result->%d" ctx.origin)
        in
        Hf_obs.Tracer.set_detail t.tracer span (Fmt.str "%d item(s)" (List.length items));
        send t ~span ~dst:ctx.origin
          (Message.Result
             { query; payload = Message.Items items; bindings; credit = Credit.atoms credit })
      end
      else if not (Credit.is_zero credit) then begin
        let span =
          Hf_obs.Tracer.start t.tracer ~parent:ctx.span
            ~query:(Fmt.str "%a" Message.pp_query_id query)
            ~site:t.id ~phase:Hf_obs.Span.Credit
            (Fmt.str "credit->%d" ctx.origin)
        in
        send t ~span ~dst:ctx.origin
          (Message.Credit_return { query; credit = Credit.atoms credit })
      end
    end
  end
[@@hf.requires_lock "locked"]

(* Process at most [budget] items of the working set; [true] iff work
   remains.  One bounded slice per lock hold is what lets N queries
   share a site: the old drain held the lock from first item to credit
   return, serializing every other query (and every incoming message)
   behind it.

   Remote spawns pass through the cache layer and a per-destination
   batcher: a destination reaching K items flushes mid-slice, and
   everything left flushes when the working set empties — always before
   this site's credit goes back, so termination is never starved. *)
and drain_slice t query ctx ~out ~budget =
  let rec step n =
    if n = 0 then not (Hf_util.Deque.is_empty ctx.work)
    else
      match Hf_util.Deque.pop_front ctx.work with
      | None -> false
      | Some item ->
        let emit ~target values =
          let existing =
            match Hashtbl.find_opt ctx.bindings target with None -> [] | Some v -> v
          in
          Hashtbl.replace ctx.bindings target (existing @ values)
        in
        let { Hf_engine.Eval.spawned; passed; skipped } =
          Hf_engine.Eval.run_object ~plan:ctx.plan ~find:(Hf_data.Store.find t.store)
            ~marks:ctx.marks ~stats:ctx.stats ~emit item
        in
        List.iter
          (fun wi ->
            let target_site = locate (Hf_engine.Work_item.oid wi) in
            if target_site = t.id then Hf_util.Deque.push_back ctx.work wi
            else route_remote t query ctx ~out wi)
          spawned;
        (* Record the verdict for the originator's cache: items that ran
           for real (not mark-skipped) at a non-origin site, whose
           reachable suffix is store-state-only (cacheable). *)
        (if
           Option.is_some t.cache
           && (not skipped)
           && t.id <> ctx.origin
           && Hf_index.Remote_cache.cacheable ctx.plan
                ~start:(Hf_engine.Work_item.start item)
                ~iters:(Hf_engine.Work_item.iters item)
         then begin
           let v = Hf_data.Store.version t.store in
           if ctx.answers <> [] && ctx.answers_version <> v then ctx.answers <- [];
           ctx.answers_version <- v;
           ctx.answers <- (item, passed) :: ctx.answers
         end);
        (if passed then
           let oid = Hf_engine.Work_item.oid item in
           if not (Hf_data.Oid.Set.mem oid ctx.local_result_set) then begin
             ctx.local_result_set <- Hf_data.Oid.Set.add oid ctx.local_result_set;
             if t.id = ctx.origin then begin
               if not (Hf_data.Oid.Set.mem oid ctx.final_set) then begin
                 ctx.final_set <- Hf_data.Oid.Set.add oid ctx.final_set;
                 ctx.final_results <- oid :: ctx.final_results
               end
             end
             else ctx.result_buffer <- oid :: ctx.result_buffer
           end);
        step (n - 1)
  in
  step budget
[@@hf.requires_lock "locked"]

(* Credit recovered at the origin: check for global termination.  In
   the chain because termination broadcasts [Query_done] (through
   [send]) and a give-up may in turn recover credit. *)
and credit_recovered t query ctx credit =
  ctx.recovered <- Credit.add ctx.recovered credit;
  if Credit.is_one ctx.recovered && not ctx.terminated then begin
    ctx.terminated <- true;
    Log.debug (fun m -> m "site %d: query %a terminated" t.id Message.pp_query_id query);
    (* Termination is the eviction point (satellite S1): drop our own
       context first — so the broadcast frames are not charged to the
       query's outcome — then tell every peer to drop theirs and free
       the admission slot.  The handle still references the context
       record, so [await] reads the final results unharmed. *)
    evict_context t query ctx;
    broadcast_query_done t query;
    release_slot t ctx;
    Condition.broadcast t.done_cond
  end
[@@hf.requires_lock "locked"]

(* [Query_done] goes to every peer, not just the ones this site talked
   to: third-party shipping (B spawns work for C) opens contexts at
   sites the originator never contacted directly. *)
and broadcast_query_done t query =
  Array.iteri
    (fun peer _ ->
      if peer <> t.id then send t ~dst:peer (Message.Query_done { query; src = t.id }))
    t.peers
[@@hf.requires_lock "locked"]

(* Backpressure (DESIGN.md §4h): pause shipping while any reliable link
   holds at least [link_window] unacked frames — the sender is outrunning
   what the loss-recovery window can protect. *)
let link_congested t =
  match (t.admission.Sched.link_window, t.reliability) with
  | Some window, Some _ ->
    Hashtbl.fold
      (fun _ link acc -> acc || Hf_proto.Reliable.in_flight link >= window)
      t.links false
  | None, _ | _, None -> false
[@@hf.requires_lock "locked"]

let drain_slice_budget = 64

(* Process the working set to empty in bounded slices, then run the
   credit-return tail.  Takes and releases the site lock per slice —
   with a yield (or, under link congestion, a short sleep) in between —
   so concurrent queries and incoming messages interleave with a long
   drain instead of queueing behind it.  [seeds] are the query's initial
   oids (origin side): they ride the same cache layer and batcher as
   spawned work, exactly as the single-query engine shipped them.

   Reentrancy: several threads may drain the same context — items are
   popped under the lock, so each is processed once, and the
   [ctx.draining] depth keeps the credit tail gated until the last
   drainer's flush is out. *)
let process_to_drain ?(seeds = []) t query ctx =
  let out = Hf_proto.Batch.create t.batch_policy in
  locked t (fun () ->
      ctx.draining <- ctx.draining + 1;
      List.iter
        (fun oid ->
          let wi = Hf_engine.Work_item.initial ctx.plan oid in
          if locate oid = t.id then Hf_util.Deque.push_back ctx.work wi
          else route_remote t query ctx ~out wi)
        seeds);
  let rec loop () =
    let more, congested =
      locked t (fun () ->
          let more = drain_slice t query ctx ~out ~budget:drain_slice_budget in
          (more, more && link_congested t))
    in
    if more then begin
      if congested then Thread.delay 0.0005 else Thread.yield ();
      loop ()
    end
  in
  loop ();
  locked t (fun () ->
      (* drained: flush buffered work before any credit goes back *)
      List.iter
        (fun (dst, items) ->
          ctx.out_pending <- ctx.out_pending - List.length items;
          send_work_batch t query ctx ~dst items)
        (Hf_proto.Batch.flush_all out);
      ctx.draining <- ctx.draining - 1;
      finish_drain t query ctx)

(* --- the execution-mode planner (doc/execution_modes.md) --- *)

(* Locality signal: the fraction of this store's pointer tuples whose
   target lives on-site, memoized per store version. *)
let p_local_of t =
  let version = Hf_data.Store.version t.store in
  match t.locality_memo with
  | Some (v, p) when v = version -> p
  | Some _ | None ->
    let total = ref 0 and local = ref 0 in
    Hf_data.Store.iter t.store (fun obj ->
        List.iter
          (fun target ->
            incr total;
            if locate target = t.id then incr local)
          (Hf_data.Hobject.pointers obj));
    let p =
      if !total = 0 then 1.0 else float_of_int !local /. float_of_int !total
    in
    t.locality_memo <- Some (version, p);
    p
[@@hf.requires_lock "locked"]

(* Price both modes from what this site can see without going to the
   wire: seed placement from oid birth sites, per-peer hints from the
   Bloom summaries learned via [Cache_version] replies (the
   Swamidass–Baldi entry estimate standing in for remote store stats),
   and nominal loopback unit costs.  The planner only needs ratios —
   a network round costs orders of magnitude more than evaluating one
   node — so the crossover lands where rounds, not bytes, dominate,
   matching the simulator's calibrated model. *)
let plan_decision t program initial =
  let plan = Hf_engine.Plan.make program in
  let zeros = Array.make (Hf_engine.Plan.iter_count plan) 0 in
  let landing = Hf_query.Plan.landing_pcs program in
  let seed_sites =
    List.fold_left
      (fun acc oid ->
        let s = locate oid in
        match List.assoc_opt s acc with
        | Some n -> (s, n + 1) :: List.remove_assoc s acc
        | None -> (s, 1) :: acc)
      [] initial
  in
  let landing_groups =
    List.map
      (fun pc -> Hf_index.Remote_cache.prune_probes plan ~start:pc ~iters:zeros)
      landing
  in
  let start_probes = Hf_index.Remote_cache.prune_probes plan ~start:0 ~iters:zeros in
  let flat_may bloom =
    landing_groups = []
    || List.exists
         (fun probes ->
           probes = [] || not (Hf_index.Remote_cache.summary_misses bloom probes))
         landing_groups
  in
  (* One Bloofi descent replaces the flat per-peer landing probes when
     the tree is on and holds anything; leaves are the same learned
     filters, so the verdicts are identical — only the probe cost (and
     the [decision.index] stats) differ. *)
  let index_probe =
    match t.bloofi with
    | None -> None
    | Some tree when Hf_index.Bloofi.cardinal tree = 0 -> None
    | Some tree ->
      let r = Hf_index.Bloofi.probe tree landing_groups in
      Hf_obs.Histogram.observe t.bloofi_depth (float_of_int r.depth);
      let may = Hashtbl.create 16 in
      List.iter (fun s -> Hashtbl.replace may s ()) r.sites;
      let stats =
        {
          Hf_query.Plan.indexed = Hf_index.Bloofi.cardinal tree;
          touched = r.touched;
          depth = r.depth;
          pruned = Hf_index.Bloofi.cardinal tree - List.length r.sites;
        }
      in
      Some (tree, may, stats)
  in
  let hints = ref [] in
  Array.iteri
    (fun peer _ ->
      if peer <> t.id then begin
        let hint =
          match Hashtbl.find_opt t.summaries peer with
          | None ->
            { Hf_query.Plan.site = peer; objects = None; may_match = None;
              seed_may_match = None }
          | Some (_, bloom) ->
            let may_match =
              match index_probe with
              | Some (tree, may, _) when Hf_index.Bloofi.mem tree ~site:peer ->
                Hashtbl.mem may peer
              | Some _ | None -> flat_may bloom
            in
            let seed_may_match =
              start_probes = []
              || not (Hf_index.Remote_cache.summary_misses bloom start_probes)
            in
            {
              Hf_query.Plan.site = peer;
              objects = Some (Hf_index.Bloom.estimate_entries bloom);
              may_match = Some may_match;
              seed_may_match = Some seed_may_match;
            }
        in
        hints := hint :: !hints
      end)
    t.peers;
  let item_bytes = 13 + 4 + (4 * Hf_engine.Plan.iter_count plan) in
  let costs =
    {
      Hf_query.Plan.transit = 5e-4;
      header_bytes = 32;
      item_bytes;
      node_bytes = 32;
      eval_s = 2e-6;
      byte_s = 1e-8;
      p_local = p_local_of t;
    }
  in
  Hf_query.Plan.decide ~program ~origin:t.id ~seed_sites ~hints:(List.rev !hints)
    ?index:(Option.map (fun (_, _, stats) -> stats) index_probe)
    ~costs ()
[@@hf.requires_lock "locked"]

(* The planner's verdict for a query, without running it — [hfql :plan]
   renders this. *)
let explain t program initial = locked t (fun () -> plan_decision t program initial)

(* Origin half of a scatter round: split one credit share per scattered
   site, broadcast the program, then evaluate the origin's own domain
   and stitch it in as this site's gather.  The stitch keeps
   [finish_drain] gated until every remote gather (or a give-up
   verdict for its site) lands, so the origin's held credit cannot go
   home while stitched chains may still become fallback work. *)
let scatter_seed t query ctx ~sites initial =
  locked t (fun () ->
      let member = Hashtbl.create 8 in
      List.iter (fun s -> Hashtbl.replace member s ()) (t.id :: sites);
      let roots = Hashtbl.create 8 in
      let stray = ref [] in
      List.iter
        (fun oid ->
          let s = locate oid in
          if Hashtbl.mem member s then
            Hashtbl.replace roots s
              (oid
              ::
              (match Hashtbl.find_opt roots s with Some l -> l | None -> []))
          else stray := oid :: !stray)
        initial;
      let roots_of s =
        match Hashtbl.find_opt roots s with Some l -> List.rev l | None -> []
      in
      let stitch =
        Hf_engine.Scatter.Stitch.create ~plan:ctx.plan ~locate
          ~sites:(t.id :: sites)
          ~roots:(List.map (fun s -> (s, roots_of s)) (t.id :: sites))
      in
      ctx.scatter <- Some stitch;
      let body = Hf_engine.Plan.program ctx.plan in
      List.iter
        (fun dst ->
          let keep, gave = Credit.split ctx.held in
          ctx.held <- keep;
          t.scatter_messages <- t.scatter_messages + 1;
          let span =
            Hf_obs.Tracer.start t.tracer ~parent:ctx.span
              ~query:(Fmt.str "%a" Message.pp_query_id query)
              ~site:t.id ~phase:Hf_obs.Span.Scatter
              (Fmt.str "scatter->%d" dst)
          in
          Hf_obs.Tracer.set_detail t.tracer span
            (Fmt.str "%d root(s)" (List.length (roots_of dst)));
          send t ~span ~dst
            (Message.Scatter
               { query; body; roots = roots_of dst; credit = Credit.atoms gave }))
        sites;
      let nodes =
        Hf_engine.Scatter.eval_site ~plan:ctx.plan
          ~find:(Hf_data.Store.find t.store)
          ~oids:(Hf_data.Store.oids t.store) ~roots:(roots_of t.id)
          ~stats:ctx.stats
      in
      let outcome = Hf_engine.Scatter.Stitch.add_gather stitch ~site:t.id nodes in
      apply_scatter_outcome t query ctx outcome;
      (* Stray seeds — oids located outside origin ∪ predicted, possible
         only if prediction raced a relocation — ship classically, same
         contract as an escaped chain. *)
      (if !stray <> [] then begin
         let out = Hf_proto.Batch.create t.batch_policy in
         List.iter
           (fun oid ->
             route_remote t query ctx ~out (Hf_engine.Work_item.initial ctx.plan oid))
           (List.rev !stray);
         List.iter
           (fun (dst, items) ->
             ctx.out_pending <- ctx.out_pending - List.length items;
             send_work_batch t query ctx ~dst items)
           (Hf_proto.Batch.flush_all out)
       end);
      finish_drain t query ctx)

(* Answer a [Stats_pull]: snapshot our registry and ship it back.  The
   snapshot MUST be taken outside the site lock — registry gauges read
   site state under [locked], and the mutex is not reentrant — so the
   pull handler defers here, after [handle_message] releases the
   lock. *)
let report_stats t ~dst ~token =
  let stats = stats_of_snapshot (Hf_obs.Registry.snapshot t.registry) in
  locked t (fun () -> send t ~dst (Message.Stats_report { src = t.id; token; stats }))

(* --- incoming messages --- *)

(* [span] is the sender's shipping span carried on the wire (0 when the
   sender traced nothing): it is closed here — arrival time — and new
   contexts parent their evaluation spans on it.

   [rel] is the reliability envelope, when present: its piggybacked ack
   releases our retained sends to [rel.src], and its sequence number is
   checked against the receive window BEFORE the message reaches any
   handler — a retransmitted duplicate dies here, never re-evaluating
   work or re-depositing credit.

   Work arms no longer drain under the handler's lock hold: they bank
   the items and return the touched contexts, and the drain runs after
   the lock is released, in bounded slices ([process_to_drain]) — this
   is what lets queries from several origins make progress on one site
   concurrently.  Work for a tombstoned (already closed) query dies
   here: its credit is dead by construction — the originator only
   closes after the detector converged. *)
let handle_message t ?(span = 0) ?rel message =
  (* actions that must run after the lock is released (stats replies:
     snapshotting the registry re-takes the lock) *)
  let after = ref [] in
  let to_drain =
    locked t (fun () ->
      t.messages_received <- t.messages_received + 1;
      Hf_obs.Tracer.finish t.tracer span;
      let fresh =
        match ((rel : Hf_proto.Codec.rel option), t.reliability) with
        | None, _ | _, None -> true
        | Some { src = peer; seq; ack }, Some _ -> (
          let link = link_for t peer in
          let now = Unix.gettimeofday () in
          List.iter
            (fun latency -> Hf_obs.Histogram.observe t.ack_latency latency)
            (Hf_proto.Reliable.on_ack link ~now ack);
          seq = 0
          ||
          match Hf_proto.Reliable.receive link ~now ~seq with
          | `Fresh -> true
          | `Duplicate ->
            t.dup_drops <- t.dup_drops + 1;
            Log.debug (fun m -> m "site %d: duplicate seq %d from %d dropped" t.id seq peer);
            false)
      in
      if not fresh then []
      else
      match (message : Message.t) with
      | Message.Deref_request { query; body; oid; start; iters; credit } ->
        if Hashtbl.mem t.closed query then []
        else begin
          let ctx =
            match Hashtbl.find_opt t.contexts query with
            | Some ctx -> ctx
            | None -> new_context t ~cause:span ~query ~origin:query.Message.originator body
          in
          ctx.held <- Credit.add ctx.held (Credit.of_atoms credit);
          Hf_util.Deque.push_back ctx.work (Hf_engine.Work_item.make ~oid ~start ~iters);
          [ (query, ctx) ]
        end
      | Message.Work_batch groups ->
        List.filter_map
          (fun { Message.query; body; items; credit } ->
            if Hashtbl.mem t.closed query then None
            else begin
              let ctx =
                match Hashtbl.find_opt t.contexts query with
                | Some ctx -> ctx
                | None ->
                  new_context t ~cause:span ~query ~origin:query.Message.originator body
              in
              ctx.held <- Credit.add ctx.held (Credit.of_atoms credit);
              List.iter
                (fun ({ oid; start; iters } : Message.batch_item) ->
                  Hf_util.Deque.push_back ctx.work
                    (Hf_engine.Work_item.make ~oid ~start ~iters))
                items;
              Some (query, ctx)
            end)
          groups
      | Message.Result { query; payload; bindings; credit } ->
        (match Hashtbl.find_opt t.contexts query with
         | None -> () (* unknown/forgotten/closed query *)
         | Some ctx ->
           (match payload with
            | Message.Items items ->
              List.iter
                (fun oid ->
                  if not (Hf_data.Oid.Set.mem oid ctx.final_set) then begin
                    ctx.final_set <- Hf_data.Oid.Set.add oid ctx.final_set;
                    ctx.final_results <- oid :: ctx.final_results
                  end)
                items
            | Message.Count _ -> ());
           merge_bindings ctx.final_bindings bindings;
           credit_recovered t query ctx (Credit.of_atoms credit));
        []
      | Message.Credit_return { query; credit } ->
        (match Hashtbl.find_opt t.contexts query with
         | None -> ()
         | Some ctx -> credit_recovered t query ctx (Credit.of_atoms credit));
        []
      | Message.Link_ack -> [] (* transport-level: the ack value rode in the envelope *)
      | Message.Site_unreachable { query; dead } ->
        (match Hashtbl.find_opt t.contexts query with
         | None -> ()
         | Some ctx -> note_unreachable ctx dead);
        []
      | Message.Cache_validate { query; src = peer } ->
        (* Report our store version; piggyback the Bloom summary unless
           this peer was already told this version's. *)
        let version = Hf_data.Store.version t.store in
        let summary =
          match t.cache_config with
          | None -> None (* not participating: version-only reply *)
          | Some cfg ->
            let bloom =
              match t.summary_memo with
              | Some (v, bloom) when v = version -> bloom
              | Some _ | None ->
                let bloom = Hf_index.Remote_cache.summary_of_store cfg t.store in
                t.summary_memo <- Some (version, bloom);
                t.summary_epoch <- t.summary_epoch + 1;
                bloom
            in
            if
              match Hashtbl.find_opt t.summary_told peer with
              | Some v -> v = version
              | None -> false
            then None
            else begin
              Hashtbl.replace t.summary_told peer version;
              Some (Hf_index.Bloom.to_string bloom)
            end
        in
        send t ~dst:peer
          (Message.Cache_version
             { query; site = t.id; version; epoch = t.summary_epoch; summary });
        []
      | Message.Cache_version { query; site = peer; version; epoch; summary } ->
        (* An epoch regression means the peer restarted: its old
           lineage's summary (and Bloofi leaf) must go wholesale —
           keeping either could wrongly prune against the new store.
           Cached per-object verdicts are keyed by store version only,
           and the new lineage's version can collide with the old
           one's, so they go too. *)
        (match Hashtbl.find_opt t.peer_epochs peer with
         | Some e when epoch < e ->
           Hashtbl.remove t.summaries peer;
           Option.iter (fun tree -> Hf_index.Bloofi.remove tree ~site:peer) t.bloofi;
           Option.iter
             (fun cache -> Hf_index.Remote_cache.drop_dst cache ~dst:peer)
             t.cache
         | Some _ | None -> ());
        Hashtbl.replace t.peer_epochs peer epoch;
        (match summary with
         | Some raw -> (
             match Hf_index.Bloom.of_string raw with
             | Some bloom ->
               Hashtbl.replace t.summaries peer (version, bloom);
               Option.iter
                 (fun tree -> Hf_index.Bloofi.insert tree ~site:peer bloom)
                 t.bloofi
             | None -> () (* malformed summary: no pruning, still correct *))
         | None -> (
             (* No summary aboard means "you already have it"; if ours
                is for another version, drop it — a stale summary must
                never prune at the new version. *)
             match Hashtbl.find_opt t.summaries peer with
             | Some (v, _) when v <> version ->
               Hashtbl.remove t.summaries peer;
               Option.iter (fun tree -> Hf_index.Bloofi.remove tree ~site:peer) t.bloofi
             | Some _ | None -> ()));
        (match Hashtbl.find_opt t.contexts query with
         | None -> ()
         | Some ctx ->
           Hashtbl.replace ctx.validated peer version;
           release_parked t query ctx ~dst:peer (Some version));
        []
      | Message.Cache_answers { query; src = peer; version; answers } ->
        (* Opportunistic fill at the originator: install the remote's
           verdicts, keyed by the answering site. *)
        (match (t.cache, Hashtbl.find_opt t.contexts query) with
         | Some cache, Some ctx ->
           t.cache_fills <- t.cache_fills + List.length answers;
           List.iter
             (fun ({ oid; start; iters; passed } : Message.cache_answer) ->
               let key =
                 Hf_index.Remote_cache.entry_key ~dst:peer ~plan:ctx.plan ~start ~iters
                   ~oid
               in
               Hf_index.Remote_cache.put cache ~now:(Unix.gettimeofday ()) ~key ~version
                 ~passed)
             answers
         | (Some _ | None), _ -> ());
        []
      | Message.Query_done { query; _ } ->
        (* The originator closed the query (terminated or cancelled):
           drop our share of its state.  A context whose origin is this
           site is never evicted here — only the local handle closes
           those. *)
        (match Hashtbl.find_opt t.contexts query with
         | Some ctx when ctx.origin <> t.id -> evict_context t query ctx
         | Some _ -> ()
         | None -> mark_closed t query);
        []
      | Message.Stats_pull { src = peer; token } ->
        after :=
          ((fun () -> report_stats t ~dst:peer ~token)
           [@hf.allow
             "blocking-under-lock -- deferred thunk: handle_message runs \
              the [after] actions only once the lock is released, so the \
              re-acquisition inside report_stats never nests"])
          :: !after;
        []
      | Message.Stats_report { src = peer; token; stats } ->
        Hashtbl.replace t.peer_stats peer (snapshot_of_stats stats);
        (* tokens only ratchet up: a periodic push (token 0) arriving
           between a fresh report and its waiter's check must not make
           the pull look unanswered again *)
        let prev = Option.value ~default:0 (Hashtbl.find_opt t.peer_stats_token peer) in
        if token > prev then Hashtbl.replace t.peer_stats_token peer token;
        Condition.broadcast t.stats_cond;
        []
      | Message.Scatter { query; body; roots; credit } ->
        if Hashtbl.mem t.closed query then []
        else begin
          let ctx =
            match Hashtbl.find_opt t.contexts query with
            | Some ctx -> ctx
            | None -> new_context t ~cause:span ~query ~origin:query.Message.originator body
          in
          let gave = Credit.of_atoms credit in
          (* Evaluate the whole speculation domain here and now — pure
             CPU under the lock, like a drain slice's evaluation — and
             answer with one gather.  The scatter's credit share rides
             straight back on it; classic work concurrently in flight
             for this query (a fallback chain re-entering this site)
             keeps its own credit and drains through the normal tail. *)
          let engine_nodes =
            Hf_engine.Scatter.eval_site ~plan:ctx.plan
              ~find:(Hf_data.Store.find t.store)
              ~oids:(Hf_data.Store.oids t.store) ~roots ~stats:ctx.stats
          in
          let nodes =
            List.map
              (fun (n : Hf_engine.Scatter.node) ->
                {
                  Message.oid = n.oid;
                  start = n.start;
                  passed = n.passed;
                  visited = n.visited;
                  spawns = n.spawns;
                  bindings = n.bindings;
                })
              engine_nodes
          in
          let gspan =
            Hf_obs.Tracer.start t.tracer ~parent:ctx.span
              ~query:(Fmt.str "%a" Message.pp_query_id query)
              ~site:t.id ~phase:Hf_obs.Span.Scatter
              (Fmt.str "gather->%d" ctx.origin)
          in
          Hf_obs.Tracer.set_detail t.tracer gspan
            (Fmt.str "%d node(s)" (List.length nodes));
          send t ~span:gspan ~dst:ctx.origin
            (Message.Gather_result
               { query; src = t.id; nodes; credit = Credit.atoms gave });
          []
        end
      | Message.Gather_result { query; src = peer; nodes; credit } ->
        (match Hashtbl.find_opt t.contexts query with
         | None -> () (* closed/cancelled: dead credit, like a late Result *)
         | Some ctx ->
           t.gather_messages <- t.gather_messages + 1;
           t.gather_nodes <- t.gather_nodes + List.length nodes;
           (match ctx.scatter with
            | None -> ()
            | Some st ->
              let engine_nodes =
                List.map
                  (fun (n : Message.gather_node) ->
                    {
                      Hf_engine.Scatter.oid = n.oid;
                      start = n.start;
                      passed = n.passed;
                      visited = n.visited;
                      spawns = n.spawns;
                      bindings = n.bindings;
                    })
                  nodes
              in
              let outcome =
                Hf_engine.Scatter.Stitch.add_gather st ~site:peer engine_nodes
              in
              (* fallback credit splits happen inside, BEFORE the
                 gather's credit is deposited below *)
              apply_scatter_outcome t query ctx outcome);
           credit_recovered t query ctx (Credit.of_atoms credit);
           (match Hashtbl.find_opt t.contexts query with
            | None -> () (* the deposit terminated and evicted the query *)
            | Some ctx -> finish_drain t query ctx));
        [])
  in
  List.iter (fun act -> act ()) !after;
  List.iter (fun (query, ctx) -> process_to_drain t query ctx) to_drain

(* Fire every due link deadline: standalone acks whose piggyback window
   expired, retransmissions, and retry-cap give-ups.  Driven by the
   reliability ticker thread — the wall-clock twin of the simulator's
   timer events.  The link table is snapshotted first because a give-up
   may open a new link (to the originator) mid-walk. *)
let poke_links t =
  let now = Unix.gettimeofday () in
  let links = Hashtbl.fold (fun peer link acc -> (peer, link) :: acc) t.links [] in
  List.iter
    (fun (peer, link) ->
      List.iter
        (function
          | Hf_proto.Reliable.Send_ack ->
            t.acks_sent <- t.acks_sent + 1;
            transmit_raw t ~seq:0 ~dst:peer Message.Link_ack
          | Hf_proto.Reliable.Retransmit entries ->
            List.iter
              (fun (seq, message) ->
                t.retransmits <- t.retransmits + 1;
                ignore
                  (Hf_obs.Tracer.instant t.tracer
                     ~detail:(Fmt.str "seq=%d" seq)
                     ~query:"-" ~site:t.id ~phase:Hf_obs.Span.Retransmit
                     (Fmt.str "retransmit->%d" peer));
                transmit_raw t ~seq ~dst:peer message)
              entries
          | Hf_proto.Reliable.Give_up entries ->
            Log.warn (fun m ->
                m "site %d: peer %d declared unreachable after retries" t.id peer);
            List.iter (fun (_, message) -> give_up_message t ~dst:peer message) entries)
        (Hf_proto.Reliable.poll link ~now))
    links
[@@hf.requires_lock "locked"]

(* --- reader / accept threads --- *)

let reader_loop t fd () =
  let decoder = Hf_proto.Frame.Decoder.create () in
  let chunk = Bytes.create 8192 in
  let rec loop () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Hf_proto.Frame.Decoder.feed decoder (Bytes.sub_string chunk 0 n);
      List.iter
        (fun payload ->
          match Hf_proto.Codec.decode_enveloped payload with
          | Ok (message, span, rel) -> handle_message t ~span ?rel message
          | Error err ->
            Log.warn (fun m -> m "site %d: undecodable message dropped: %s" t.id err))
        (Hf_proto.Frame.Decoder.drain decoder);
      loop ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.listener with
    | fd, _ ->
      Unix.setsockopt fd TCP_NODELAY true;
      locked t (fun () -> t.threads <- Thread.create (reader_loop t fd) () :: t.threads);
      loop ()
    | exception Unix.Unix_error _ -> () (* listener closed: shutting down *)
  in
  loop ()

(* --- lifecycle --- *)

let create ~site ?(batch = Hf_proto.Batch.unbatched) ?reliability ?cache
    ?(admission = Sched.unlimited) ?(exec = Exec_ship) ?(bloofi = true)
    ?(tracer = Hf_obs.Tracer.noop) ?stats_period ?monitor_port () =
  Hf_proto.Batch.validate_policy batch;
  Option.iter Hf_proto.Reliable.validate reliability;
  Option.iter Hf_index.Remote_cache.validate cache;
  Sched.validate admission;
  Option.iter
    (fun p ->
      if not (p > 0.0) then invalid_arg "Tcp_site.create: stats_period must be positive")
    stats_period;
  let listener = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt listener SO_REUSEADDR true;
  Unix.bind listener (ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listener 16;
  let address = Unix.getsockname listener in
  let registry = Hf_obs.Registry.create () in
  let sent_frame_bytes = Hf_obs.Registry.histogram registry "hf.net.sent_frame_bytes" in
  let query_rtt = Hf_obs.Registry.histogram registry "hf.net.query_rtt_s" in
  let ack_latency = Hf_obs.Registry.histogram registry "hf.net.ack_latency_s" in
  let admission_wait = Hf_obs.Registry.histogram registry "hf.net.admission_wait_s" in
  let bloofi_depth = Hf_obs.Registry.histogram registry "hf.index.bloofi_descent_depth" in
  let t =
    {
      id = site;
      store = Hf_data.Store.create ~site;
      batch_policy = batch;
      reliability;
      links = Hashtbl.create 8;
      listener;
      address;
      peers = [||];
      conns = Hashtbl.create 8;
      lock = Mutex.create ();
      done_cond = Condition.create ();
      contexts = Hashtbl.create 8;
      next_serial = 0;
      admission;
      gate = Sched.create admission;
      closed = Hashtbl.create 32;
      closed_order = Queue.create ();
      running = true;
      ticker = None;
      threads = [];
      dead_writers = [];
      join_errors = Atomic.make 0;
      tracer;
      registry;
      sent_frame_bytes;
      query_rtt;
      ack_latency;
      messages_sent = 0;
      bytes_sent = 0;
      messages_received = 0;
      retransmits = 0;
      dup_drops = 0;
      acks_sent = 0;
      give_ups = 0;
      cache_config = cache;
      cache = Option.map Hf_index.Remote_cache.create cache;
      summary_memo = None;
      summary_told = Hashtbl.create 4;
      summaries = Hashtbl.create 4;
      summary_epoch = 0;
      peer_epochs = Hashtbl.create 4;
      bloofi = (if bloofi then Some (Hf_index.Bloofi.create ()) else None);
      bloofi_depth;
      cache_hits = 0;
      cache_misses = 0;
      cache_prunes = 0;
      cache_validations = 0;
      cache_fills = 0;
      cache_invalidations = 0;
      exec;
      scatter_messages = 0;
      gather_messages = 0;
      gather_nodes = 0;
      scatter_fallbacks = 0;
      planner_scatter = 0;
      planner_ship = 0;
      locality_memo = None;
      stats_token = 0;
      peer_stats = Hashtbl.create 8;
      peer_stats_token = Hashtbl.create 8;
      stats_cond = Condition.create ();
      stats_period;
      stats_ticker = None;
      monitor = None;
      admission_wait;
    }
  in
  Hf_obs.Registry.register_counter registry "hf.net.messages_sent" (fun () ->
      locked t (fun () -> t.messages_sent));
  Hf_obs.Registry.register_counter registry "hf.net.bytes_sent" (fun () ->
      locked t (fun () -> t.bytes_sent));
  Hf_obs.Registry.register_counter registry "hf.net.messages_received" (fun () ->
      locked t (fun () -> t.messages_received));
  Hf_obs.Registry.register_counter registry "hf.net.join_errors" (fun () ->
      Atomic.get t.join_errors);
  Hf_obs.Registry.register_counter registry "hf.net.retransmits" (fun () ->
      locked t (fun () -> t.retransmits));
  Hf_obs.Registry.register_counter registry "hf.net.dup_drops" (fun () ->
      locked t (fun () -> t.dup_drops));
  Hf_obs.Registry.register_counter registry "hf.net.acks_sent" (fun () ->
      locked t (fun () -> t.acks_sent));
  Hf_obs.Registry.register_counter registry "hf.net.give_ups" (fun () ->
      locked t (fun () -> t.give_ups));
  Hf_obs.Registry.register_counter registry "hf.net.cache_hits" (fun () ->
      locked t (fun () -> t.cache_hits));
  Hf_obs.Registry.register_counter registry "hf.net.cache_misses" (fun () ->
      locked t (fun () -> t.cache_misses));
  Hf_obs.Registry.register_counter registry "hf.net.cache_prunes" (fun () ->
      locked t (fun () -> t.cache_prunes));
  Hf_obs.Registry.register_counter registry "hf.net.cache_validations" (fun () ->
      locked t (fun () -> t.cache_validations));
  Hf_obs.Registry.register_counter registry "hf.net.cache_fills" (fun () ->
      locked t (fun () -> t.cache_fills));
  Hf_obs.Registry.register_counter registry "hf.net.cache_invalidations" (fun () ->
      locked t (fun () -> t.cache_invalidations));
  Hf_obs.Registry.register_counter registry "hf.net.scatter_messages" (fun () ->
      locked t (fun () -> t.scatter_messages));
  Hf_obs.Registry.register_counter registry "hf.net.gather_messages" (fun () ->
      locked t (fun () -> t.gather_messages));
  Hf_obs.Registry.register_counter registry "hf.net.gather_nodes" (fun () ->
      locked t (fun () -> t.gather_nodes));
  Hf_obs.Registry.register_counter registry "hf.net.scatter_fallbacks" (fun () ->
      locked t (fun () -> t.scatter_fallbacks));
  Hf_obs.Registry.register_counter registry "hf.net.planner_scatter" (fun () ->
      locked t (fun () -> t.planner_scatter));
  Hf_obs.Registry.register_counter registry "hf.net.planner_ship" (fun () ->
      locked t (fun () -> t.planner_ship));
  Hf_obs.Registry.register_counter registry "hf.index.bloofi_probes" (fun () ->
      locked t (fun () ->
          match t.bloofi with
          | None -> 0
          | Some tree -> Hf_index.Bloofi.probes_run tree));
  Hf_obs.Registry.register_counter registry "hf.index.bloofi_pruned_sites" (fun () ->
      locked t (fun () ->
          match t.bloofi with
          | None -> 0
          | Some tree -> Hf_index.Bloofi.pruned_total tree));
  Hf_obs.Registry.register_counter registry "hf.index.bloofi_rebuilds" (fun () ->
      locked t (fun () ->
          match t.bloofi with
          | None -> 0
          | Some tree -> Hf_index.Bloofi.rebuilds tree));
  Hf_obs.Registry.register_counter registry "hf.net.queries_running" (fun () ->
      locked t (fun () -> Sched.running t.gate));
  Hf_obs.Registry.register_counter registry "hf.net.queries_queued" (fun () ->
      locked t (fun () -> Sched.queued t.gate));
  Hf_obs.Registry.register_counter registry "hf.net.contexts_live" (fun () ->
      locked t (fun () -> Hashtbl.length t.contexts));
  (* Live gauges over previously-dark state (DESIGN.md §4i): the
     reliable links' unacked window and owed acks, the admission gate's
     fairness picture, and the answer cache's occupancy.  All of it is
     owned by the site lock, so every read goes through [locked]. *)
  Hf_obs.Registry.register_gauge registry "hf.net.link_in_flight" (fun () ->
      locked t (fun () ->
          float_of_int
            (Hashtbl.fold
               (fun _ link acc -> acc + Hf_proto.Reliable.in_flight link)
               t.links 0)));
  Hf_obs.Registry.register_gauge registry "hf.net.link_ack_backlog" (fun () ->
      locked t (fun () ->
          float_of_int
            (Hashtbl.fold
               (fun _ link acc -> if Hf_proto.Reliable.ack_owed link then acc + 1 else acc)
               t.links 0)));
  Hf_obs.Registry.register_gauge registry "hf.net.sched_tenants" (fun () ->
      locked t (fun () -> float_of_int (Sched.waiting_tenants t.gate)));
  Hf_obs.Registry.register_gauge registry "hf.net.cache_entries" (fun () ->
      locked t (fun () ->
          match t.cache with
          | None -> 0.0
          | Some cache -> float_of_int (Hf_index.Remote_cache.length cache)));
  Hf_obs.Tracer.register tracer registry ~prefix:"hf.net";
  (* Cons, not assign: the accept loop may already have registered a
     reader thread by the time this runs. *)
  locked t (fun () -> t.threads <- Thread.create (accept_loop t) () :: t.threads);
  (* Reliability ticker: drives the retransmit / delayed-ack / give-up
     deadlines of every peer link.  Kept out of the anonymous [threads]
     list so [shutdown] can join it FIRST — it transmits on the
     outbound connections, which must not be torn down under it. *)
  (match reliability with
   | None -> ()
   | Some cfg ->
     let period = Float.max 0.002 (Float.min 0.01 (cfg.ack_delay /. 2.0)) in
     let ticker () =
       while t.running do
         Thread.delay period;
         if t.running then locked t (fun () -> poke_links t)
       done
     in
     t.ticker <- Some (Thread.create ticker ()));
  (* Periodic scrape (DESIGN.md §4i): pull every peer's registry on a
     timer so [peer_stats] stays warm without anyone asking.  Token 0
     marks the replies unsolicited — a concurrent [pull_stats] with a
     real token never mistakes one for its answer.  Joined at shutdown
     before connections come down, like the reliability ticker. *)
  (match stats_period with
   | None -> ()
   | Some period ->
     let ticker () =
       while t.running do
         Thread.delay period;
         if t.running then
           locked t (fun () ->
               Array.iteri
                 (fun peer _ ->
                   if peer <> t.id then
                     send t ~dst:peer (Message.Stats_pull { src = t.id; token = 0 }))
                 t.peers)
       done
     in
     t.stats_ticker <- Some (Thread.create ticker ()));
  (* The always-on monitoring surface: a plain-TCP loopback listener
     that answers every connection with a Prometheus text dump of this
     site's registry and closes.  No HTTP framing — `nc localhost port`
     (or [hfql stats]) reads it directly.  Snapshots are taken outside
     the site lock (gauges take it). *)
  (match monitor_port with
   | None -> ()
   | Some port ->
     let mon = Unix.socket PF_INET SOCK_STREAM 0 in
     Unix.setsockopt mon SO_REUSEADDR true;
     Unix.bind mon (ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen mon 4;
     t.monitor <- Some mon;
     let serve fd =
       let body =
         Hf_obs.Prometheus.render ~labels:[ ("site", string_of_int t.id) ] t.registry
       in
       let bytes = Bytes.of_string body in
       let rec write_all off =
         if off < Bytes.length bytes then
           match Unix.write fd bytes off (Bytes.length bytes - off) with
           | n -> write_all (off + n)
           | exception Unix.Unix_error _ -> ()
       in
       write_all 0;
       try Unix.close fd with Unix.Unix_error _ -> ()
     in
     let monitor_loop () =
       let rec loop () =
         match Unix.accept mon with
         | fd, _ ->
           serve fd;
           loop ()
         | exception Unix.Unix_error _ -> () (* listener closed: shutting down *)
       in
       loop ()
     in
     locked t (fun () -> t.threads <- Thread.create monitor_loop () :: t.threads));
  t

let address t = t.address

let store t = t.store

let id t = t.id

let tracer t = t.tracer

let registry t = t.registry

let set_peers t peers =
  locked t (fun () ->
      let old = t.peers in
      t.peers <- peers;
      (* A changed address is a new lineage at that site: the pooled
         connection still reaches the OLD process (its accepted sockets
         outlive its listener), and the reliability link's windows are
         meaningless to the replacement.  Drop both so the next send
         reconnects fresh. *)
      Array.iteri
        (fun dst addr ->
          if dst < Array.length old && old.(dst) <> addr then begin
            (match Hashtbl.find_opt t.conns dst with
             | Some conn ->
               conn_discard t conn;
               Hashtbl.remove t.conns dst
             | None -> ());
            Hashtbl.remove t.links dst
          end)
        peers)

let shutdown t =
  if t.running then begin
    t.running <- false;
    (* Quiesce the reliability ticker BEFORE tearing connections down
       (satellite S2): it periodically takes the site lock and
       transmits on the outbound connections, so closing them first
       races a retransmit against the writer join — the poke either
       lands on a closing queue (frame silently dropped after the
       writer exited) or reopens a connection to a peer that is itself
       mid-shutdown.  [running] is already false, so the join returns
       within one ticker period. *)
    (match t.ticker with
     | Some thread ->
       (try Thread.join thread with _ -> Atomic.incr t.join_errors);
       t.ticker <- None
     | None -> ());
    (* the stats ticker transmits too: same quiesce-before-teardown *)
    (match t.stats_ticker with
     | Some thread ->
       (try Thread.join thread with _ -> Atomic.incr t.join_errors);
       t.stats_ticker <- None
     | None -> ());
    (* wake the monitor accept thread the same way as the listener's *)
    (match t.monitor with
     | Some fd ->
       (try Unix.shutdown fd SHUTDOWN_ALL with Unix.Unix_error _ -> ());
       (try Unix.close fd with Unix.Unix_error _ -> ());
       t.monitor <- None
     | None -> ());
    (* shutdown(2) before close: close alone does NOT wake a thread
       blocked in accept(2) — the in-flight syscall pins the socket, so
       the "closed" listener keeps accepting one more connection and a
       supposedly-dead site goes on answering queries (observed as a
       flaky dead-peer test).  Shutting the socket down fails the
       blocked accept with EINVAL and refuses subsequent connects. *)
    (try Unix.shutdown t.listener SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (* Snapshot under the lock, tear down outside it: [conn_close]
       joins each writer thread, and a join under the site lock would
       block every thread still draining (hfcheck R7).  Nothing new
       lands in [conns] afterwards — [running] is false and the tickers
       are already joined. *)
    let conns, dead_writers =
      locked t (fun () ->
          let conns = Hashtbl.fold (fun _ conn acc -> conn :: acc) t.conns [] in
          Hashtbl.reset t.conns;
          let dead = t.dead_writers in
          t.dead_writers <- [];
          (conns, dead))
    in
    List.iter (fun conn -> conn_close ~join_errors:t.join_errors conn) conns;
    List.iter
      (fun thread -> try Thread.join thread with _ -> Atomic.incr t.join_errors)
      dead_writers
  end

(* --- issuing queries from the embedding client --- *)

(* Distinguishes "the peer was slow" from "the peer is gone": a timeout
   says nothing about the missing sites, while [Partial] is a positive
   statement — retransmission gave up on exactly these peers and every
   other site's contribution is fully accounted for (credit converged
   to 1). *)
type status =
  | Complete
  | Partial of int list (* unreachable sites, ascending *)
  | Timed_out
  | Cancelled

type outcome = {
  results : Hf_data.Oid.t list;
  result_set : Hf_data.Oid.Set.t;
  bindings : (string * Hf_data.Value.t list) list;
  terminated : bool;
  status : status;
  response_time : float; (* wall-clock seconds *)
  queue_wait_s : float; (* time spent in the admission queue *)
  messages_sent : int;
  bytes_sent : int;
  mode : Hf_query.Plan.mode; (* which execution mode ran *)
  plan_decision : Hf_query.Plan.decision option; (* when a planner ran *)
}

type handle = {
  h_query : Message.query_id;
  h_ctx : context;
  h_root_span : int;
  h_started : float;
}

(* Issue a query without waiting for it: the admission gate either
   starts it now or parks it (fairly) until a running one finishes.  An
   admitted query is processed by its own drainer thread, in bounded
   lock slices, so any number of them interleave on the site — the old
   [run_query] held the site lock for the whole query, serializing the
   server on its busiest code path. *)
let submit_query (t : t) program initial =
  let started = Unix.gettimeofday () in
  locked t (fun () ->
      let query = { Message.originator = t.id; serial = t.next_serial } in
      t.next_serial <- t.next_serial + 1;
      let root_span =
        Hf_obs.Tracer.start t.tracer
          ~query:(Fmt.str "%a" Message.pp_query_id query)
          ~site:t.id ~phase:Hf_obs.Span.Query "query"
      in
      let ctx = new_context t ~cause:root_span ~query ~origin:t.id program in
      (* Mode selection (doc/execution_modes.md): [Exec_ship] is the
         byte-identical legacy path — no planner runs at all.  This
         engine is always per-site-marks, ship-items, so eligibility
         plus a non-empty predicted set is all scatter needs. *)
      let decision =
        match t.exec with
        | Exec_ship -> None
        | Exec_scatter | Exec_auto -> Some (plan_decision t program initial)
      in
      ctx.decision <- decision;
      let scatter_sites =
        match (t.exec, decision) with
        | Exec_ship, _ | _, None -> None
        | Exec_scatter, Some d ->
          if d.Hf_query.Plan.eligible && d.Hf_query.Plan.predicted <> [] then
            Some d.Hf_query.Plan.predicted
          else None
        | Exec_auto, Some d ->
          if
            d.Hf_query.Plan.eligible
            && d.Hf_query.Plan.predicted <> []
            && Hf_query.Plan.equal_mode d.Hf_query.Plan.chosen Hf_query.Plan.Scatter
          then Some d.Hf_query.Plan.predicted
          else None
      in
      (match decision with
       | None -> ()
       | Some _ ->
         if Option.is_some scatter_sites then
           t.planner_scatter <- t.planner_scatter + 1
         else t.planner_ship <- t.planner_ship + 1);
      let seed () =
        ctx.admitted <- true;
        ctx.held <- Credit.one;
        (* Queue wait, measured at the moment the gate finally seeds us:
           zero when admission was immediate.  Recorded three ways — the
           site histogram (the monitoring surface), the context (the
           outcome's per-query figure), and a retroactive [Wait] span so
           the profile's phase breakdown shows queued time next to
           execution time. *)
        let wait = Float.max 0.0 (Unix.gettimeofday () -. started) in
        ctx.queue_wait_s <- wait;
        Hf_obs.Histogram.observe t.admission_wait wait;
        (* the span lives on the tracer's clock (which may not be wall
           time): end it "now" there and back-date the start by [wait] *)
        let trace_now = Hf_obs.Tracer.now t.tracer in
        ignore
          (Hf_obs.Tracer.complete t.tracer ~parent:root_span
             ~query:(Fmt.str "%a" Message.pp_query_id query)
             ~site:t.id ~phase:Hf_obs.Span.Wait ~start:(trace_now -. wait)
             ~finish:trace_now "admission-wait");
        let drainer =
          match scatter_sites with
          | Some sites ->
            ctx.ran_mode <- Hf_query.Plan.Scatter;
            Thread.create (fun () -> scatter_seed t query ctx ~sites initial) ()
          | None ->
            Thread.create (fun () -> process_to_drain ~seeds:initial t query ctx) ()
        in
        t.threads <- drainer :: t.threads
      in
      (match Sched.admit t.gate ~tenant:t.id { p_query = query; p_seed = seed } with
       | Sched.Run -> seed ()
       | Sched.Queued -> ()
       | Sched.Rejected ->
         Hashtbl.remove t.contexts query;
         Hf_obs.Tracer.finish ~detail:"rejected" t.tracer ctx.span;
         Hf_obs.Tracer.finish ~detail:"rejected" t.tracer root_span;
         failwith
           (Fmt.str "Tcp_site.submit_query: admission queue full at site %d (%a)" t.id
              Sched.pp_config t.admission));
      { h_query = query; h_ctx = ctx; h_root_span = root_span; h_started = started })

(* Wait for termination, or time out (e.g. a crashed peer).  The
   stdlib's Condition.wait has no timeout, so a ticker thread pokes the
   condition periodically; it is joined only after the lock is
   released.  Timing out leaves the query running (and its admission
   slot held): a second [await] on the same handle picks it back up. *)
let await ?(timeout = 10.0) (t : t) (handle : handle) =
  let ctx = handle.h_ctx in
  let deadline = Unix.gettimeofday () +. timeout in
  let stop_ticker = ref false in
  let ticker =
    Thread.create
      (fun () ->
        while not !stop_ticker do
          Thread.delay 0.02;
          locked t (fun () -> Condition.broadcast t.done_cond)
        done)
      ()
  in
  let outcome =
    locked t (fun () ->
        while
          (not (ctx.terminated || ctx.cancelled)) && Unix.gettimeofday () < deadline
        do
          Condition.wait t.done_cond t.lock
        done;
        let status =
          if ctx.cancelled then Cancelled
          else if not ctx.terminated then Timed_out
          else if ctx.unreachable = [] then Complete
          else Partial (List.sort_uniq compare ctx.unreachable)
        in
        {
          results = List.rev ctx.final_results;
          result_set = ctx.final_set;
          bindings =
            Hashtbl.fold
              (fun target values acc -> (target, values) :: acc)
              ctx.final_bindings []
            |> List.sort (fun (a, _) (b, _) -> String.compare a b);
          terminated = ctx.terminated;
          status;
          response_time = Unix.gettimeofday () -. handle.h_started;
          queue_wait_s = ctx.queue_wait_s;
          (* per-query attribution (satellite S3): concurrent neighbors'
             frames never land in this outcome *)
          messages_sent = ctx.msgs_sent;
          bytes_sent = ctx.bytes_out;
          mode = ctx.ran_mode;
          plan_decision = ctx.decision;
        })
  in
  stop_ticker := true;
  (try Thread.join ticker with _ -> Atomic.incr t.join_errors);
  Hf_obs.Histogram.observe t.query_rtt outcome.response_time;
  (match outcome.status with
   | Timed_out -> () (* still live: spans close when it terminates *)
   | Complete | Partial _ | Cancelled ->
     Hf_obs.Tracer.finish t.tracer handle.h_root_span
       ~detail:
         (match outcome.status with
          | Complete -> "terminated"
          | Partial dead -> Fmt.str "partial: unreachable %a" Fmt.(list ~sep:comma int) dead
          | Cancelled -> "cancelled"
          | Timed_out -> assert false));
  outcome

(* Abort a local query.  Queued: it just leaves the admission queue.
   Admitted: this site's context is discarded wholesale and the peers
   are told to discard theirs — the outstanding credit is deliberately
   never recovered, which is sound because a cancelled query no longer
   needs the termination detector to converge; in-flight work for it
   dies against the tombstones.  Idempotent; a terminated query is left
   alone. *)
let cancel (t : t) (handle : handle) =
  locked t (fun () ->
      let ctx = handle.h_ctx in
      if not (ctx.terminated || ctx.cancelled) then begin
        ctx.cancelled <- true;
        if ctx.admitted then begin
          evict_context t handle.h_query ctx;
          broadcast_query_done t handle.h_query;
          release_slot t ctx
        end
        else begin
          ignore
            (Sched.cancel_queued t.gate (fun job ->
                 Message.equal_query_id job.p_query handle.h_query));
          evict_context t handle.h_query ctx
        end;
        Hf_obs.Tracer.finish ~detail:"cancelled" t.tracer handle.h_root_span;
        Condition.broadcast t.done_cond
      end)

let run_query ?(timeout = 10.0) (t : t) program initial =
  await ~timeout t (submit_query t program initial)

(* --- introspection (tests, demo) --- *)

let context_count t = locked t (fun () -> Hashtbl.length t.contexts)

let admission_running t = locked t (fun () -> Sched.running t.gate)

let admission_queued t = locked t (fun () -> Sched.queued t.gate)

let monitor_address t = Option.map Unix.getsockname t.monitor

(* --- cluster-wide stats (DESIGN.md §4i) --- *)

(* Snapshot every site's registry: broadcast a [Stats_pull] under a
   fresh token and wait until each peer's report carrying (at least)
   that token lands, or the timeout passes — an unreachable peer then
   contributes its last-known snapshot, if any, rather than blocking
   the scrape forever.  Returns (site, snapshot) pairs, this site
   included, ascending by site id.  Same ticker-poke shape as [await]:
   stdlib condition variables have no timed wait. *)
let pull_stats ?(timeout = 5.0) (t : t) =
  let token, peers =
    locked t (fun () ->
        t.stats_token <- t.stats_token + 1;
        let token = t.stats_token in
        let peers = ref [] in
        Array.iteri
          (fun peer _ ->
            if peer <> t.id then begin
              peers := peer :: !peers;
              send t ~dst:peer (Message.Stats_pull { src = t.id; token })
            end)
          t.peers;
        (token, !peers))
  in
  let deadline = Unix.gettimeofday () +. timeout in
  let stop_ticker = ref false in
  let ticker =
    Thread.create
      (fun () ->
        while not !stop_ticker do
          Thread.delay 0.01;
          locked t (fun () -> Condition.broadcast t.stats_cond)
        done)
      ()
  in
  let remote =
    locked t (fun () ->
        let missing () =
          List.exists
            (fun peer ->
              match Hashtbl.find_opt t.peer_stats_token peer with
              | Some answered -> answered < token
              | None -> true)
            peers
        in
        while missing () && Unix.gettimeofday () < deadline do
          Condition.wait t.stats_cond t.lock
        done;
        List.filter_map
          (fun peer ->
            Option.map (fun snap -> (peer, snap)) (Hashtbl.find_opt t.peer_stats peer))
          peers)
  in
  stop_ticker := true;
  (try Thread.join ticker with _ -> Atomic.incr t.join_errors);
  (* own snapshot outside the lock: gauges take it *)
  let own = (t.id, Hf_obs.Registry.snapshot t.registry) in
  List.sort (fun (a, _) (b, _) -> Int.compare a b) (own :: remote)

(* One merged registry over the whole cluster: counters and gauges sum,
   histograms merge bucket-exactly ({!Hf_obs.Registry.merge_snapshots}). *)
let cluster_stats ?timeout t = Hf_obs.Registry.merge_snapshots (List.map snd (pull_stats ?timeout t))

(* Last-known peer snapshots without going to the wire — what the
   [stats_period] scrape keeps warm. *)
let known_peer_stats t =
  locked t (fun () ->
      List.sort
        (fun (a, _) (b, _) -> Int.compare a b)
        (Hashtbl.fold (fun peer snap acc -> (peer, snap) :: acc) t.peer_stats []))

(* --- per-query profiles (EXPLAIN ANALYZE, DESIGN.md §4i) --- *)

(* Fold the tracer's spans for this query into a per-site phase/rounds
   breakdown and pin the engine's per-query counters alongside as
   scalars.  Call after [await]: a still-running query yields a partial
   profile (open spans count from start to "now" on the tracer's
   clock).  Sites sharing one tracer (tests, the demo cluster) get the
   full cross-site picture; separate processes each see their half. *)
let profile (t : t) (handle : handle) (outcome : outcome) =
  let query = Fmt.str "%a" Message.pp_query_id handle.h_query in
  Hf_obs.Profile.of_spans ~query
    ~scalars:
      [
        ("messages_sent", Hf_obs.Profile.Int outcome.messages_sent);
        ("bytes_sent", Hf_obs.Profile.Int outcome.bytes_sent);
        ("results", Hf_obs.Profile.Int (List.length outcome.results));
        ( "mode_scatter",
          Hf_obs.Profile.Int
            (match outcome.mode with
             | Hf_query.Plan.Scatter -> 1
             | Hf_query.Plan.Ship -> 0) );
        ("queue_wait_s", Hf_obs.Profile.Float outcome.queue_wait_s);
        ("response_time_s", Hf_obs.Profile.Float outcome.response_time);
      ]
    ~dropped:(Hf_obs.Tracer.dropped t.tracer)
    (Hf_obs.Tracer.spans t.tracer)
