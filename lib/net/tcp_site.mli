(** A real HyperFile site over TCP — the Section 3.2 protocol on actual
    sockets, using the same wire messages and codec the simulator
    accounts for.

    Lifecycle: {!create} each site (binds an ephemeral loopback port and
    starts its accept thread), collect the {!address}es, {!set_peers} on
    every site, then load stores and issue queries from any site with
    {!run_query}.  {!shutdown} closes sockets and stops threads.

    Objects live at their birth site ([Oid.birth_site] routes
    dereferences), as in the simulated cluster. *)

type t

val create :
  site:int -> ?batch:Hf_proto.Batch.flush_policy -> ?tracer:Hf_obs.Tracer.t -> unit -> t
(** Bind 127.0.0.1 on an ephemeral port and start accepting.

    [batch] (default [Flush_at 1], i.e. unbatched) coalesces work items
    bound for the same destination into one [Work_batch] message with a
    single credit split; leftovers always flush before the site drains,
    so termination is never delayed.  Single-item flushes go out as
    plain [Deref_request]s — with the default policy the wire traffic is
    byte-identical to the unbatched protocol.

    [tracer] (default {!Hf_obs.Tracer.noop}) records spans; when every
    site of an in-process cluster shares one tracer, wire messages
    carry the sender's span id and the receiver closes the span on
    arrival, so shipping spans cover real transit and remote evaluation
    spans parent on the originating site's.  With tracing off the wire
    bytes are unchanged. *)

val address : t -> Unix.sockaddr

val set_peers : t -> Unix.sockaddr array -> unit
(** [peers.(i)] must be site [i]'s address (own entry included). *)

val store : t -> Hf_data.Store.t

val id : t -> int

val tracer : t -> Hf_obs.Tracer.t

val registry : t -> Hf_obs.Registry.t
(** Per-site transport metrics: [hf.net.messages_sent], [hf.net.bytes_sent],
    [hf.net.messages_received], the [hf.net.sent_frame_bytes] histogram
    (per-message encoded size) and [hf.net.query_rtt_s] (wall-clock
    {!run_query} latency, origin site only). *)

type outcome = {
  results : Hf_data.Oid.t list;  (** arrival order at the originator. *)
  result_set : Hf_data.Oid.Set.t;
  bindings : (string * Hf_data.Value.t list) list;
  terminated : bool;
      (** [false] when the timeout expired first (e.g. a peer is down) —
          [results] then holds the partial answer. *)
  response_time : float;  (** wall-clock seconds. *)
  messages_sent : int;  (** wire messages this site sent for the query. *)
  bytes_sent : int;
}

val run_query :
  ?timeout:float -> t -> Hf_query.Program.t -> Hf_data.Oid.t list -> outcome
(** Issue a query from this site over the initial set and wait for the
    weighted-termination detector to recover all credit (default
    timeout 10 s). *)

val shutdown : t -> unit
(** Close the listener and all connections; idempotent. *)
