(** A real HyperFile site over TCP — the Section 3.2 protocol on actual
    sockets, using the same wire messages and codec the simulator
    accounts for.

    Lifecycle: {!create} each site (binds an ephemeral loopback port and
    starts its accept thread), collect the {!address}es, {!set_peers} on
    every site, then load stores and issue queries from any site with
    {!run_query} — or {!submit_query}/{!await} to keep several in
    flight.  {!shutdown} closes sockets and stops threads.

    Queries run concurrently (DESIGN.md §4h): each locally-issued query
    passes an admission gate ({!Hf_server.Sched}) and is drained by its
    own thread in bounded site-lock slices, so N in-flight queries — and
    incoming work from other origins — interleave instead of queueing
    behind one long drain.

    Objects live at their birth site ([Oid.birth_site] routes
    dereferences), as in the simulated cluster. *)

type t

type exec_mode =
  | Exec_ship  (** classic query shipping only; no planner runs. *)
  | Exec_scatter
      (** scatter-gather whenever the program is eligible (no [.\[n\]]
          finite iterators) and some site is predicted. *)
  | Exec_auto
      (** per-query cost-based choice ({!Hf_query.Plan}); see
          doc/execution_modes.md. *)

val create :
  site:int ->
  ?batch:Hf_proto.Batch.flush_policy ->
  ?reliability:Hf_proto.Reliable.config ->
  ?cache:Hf_index.Remote_cache.config ->
  ?admission:Hf_server.Sched.config ->
  ?exec:exec_mode ->
  ?bloofi:bool ->
  ?tracer:Hf_obs.Tracer.t ->
  ?stats_period:float ->
  ?monitor_port:int ->
  unit ->
  t
(** Bind 127.0.0.1 on an ephemeral port and start accepting.

    [batch] (default [Flush_at 1], i.e. unbatched) coalesces work items
    bound for the same destination into one [Work_batch] message with a
    single credit split; leftovers always flush before the site drains,
    so termination is never delayed.  Single-item flushes go out as
    plain [Deref_request]s — with the default policy the wire traffic is
    byte-identical to the unbatched protocol.

    [tracer] (default {!Hf_obs.Tracer.noop}) records spans; when every
    site of an in-process cluster shares one tracer, wire messages
    carry the sender's span id and the receiver closes the span on
    arrival, so shipping spans cover real transit and remote evaluation
    spans parent on the originating site's.  With tracing off the wire
    bytes are unchanged.

    [reliability] (default off) layers ack/retransmit delivery under
    the protocol ({!Hf_proto.Reliable}): every frame carries a
    per-peer sequence number and a piggybacked cumulative ack, a
    ticker thread retransmits unacknowledged frames with exponential
    backoff, receivers drop redelivered duplicates before they reach a
    handler, and a peer that exhausts the retry cap is declared
    unreachable — its messages' credit reclaimed so the query still
    terminates, with a {!Partial} status.  All sites of a cluster must
    agree on whether reliability is on (the envelope changes the frame
    layout).  See doc/fault_tolerance.md.

    [cache] (default off) enables the cross-site acceleration layer
    (DESIGN.md §4g): before the first ship to a destination the query
    validates the destination's store version (items wait parked, their
    credit unsplit); at a validated version, verdicts cached from
    earlier queries answer items locally without splitting credit, and
    the destination's Bloom tuple summary prunes ships that provably
    die on arrival.  Enable it on every site of a cluster — a
    non-caching site still answers validations (version-only) but
    never parks, caches or prunes.

    [exec] (default {!Exec_ship}, the byte-identical legacy behavior)
    selects the execution mode for locally-issued queries.  Under
    {!Exec_auto} a cost-based planner ({!Hf_query.Plan}) prices classic
    query shipping against single-round scatter-gather — using seed
    placement, the Bloom summaries learned from [Cache_version] replies
    and a locality scan of the local store — and picks per query; the
    decision is returned in the outcome.  Results are byte-identical
    across modes: a chain that escapes the predicted site set falls
    back to classic shipping.  See doc/execution_modes.md.

    [bloofi] (default on) maintains a {!Hf_index.Bloofi} tree over the
    peer summaries learned from [Cache_version] replies, and the
    planner predicts the touched-site set from one tree descent instead
    of probing each flat filter.  Verdicts — and therefore results —
    are identical either way; the tree answers in O(d·log_d N) node
    touches and feeds the [hf.index.bloofi_*] metrics.  An epoch
    regression on a [Cache_version] reply (the peer restarted) drops
    that peer's learned summary and leaf wholesale — a stale tree may
    over-ship but never wrongly prunes.

    [admission] (default {!Hf_server.Sched.unlimited}) caps locally
    issued queries: at most [in_flight_cap] run at once, up to
    [max_queued] more wait in the fair admission queue
    ({!submit_query} raises [Failure] beyond that), and with
    reliability on, a drain pauses shipping while some link holds
    [link_window] or more unacked frames (backpressure).

    [stats_period] (default off) starts a scrape ticker that sends a
    credit-free [Stats_pull] to every peer each period, keeping
    {!known_peer_stats} warm without a client asking.  Raises
    [Invalid_argument] unless positive.

    [monitor_port] (default off) binds an always-on monitoring surface:
    a plain-TCP loopback listener (port 0 = ephemeral, see
    {!monitor_address}) that answers every connection with a Prometheus
    text dump of this site's registry — each metric labeled
    [site="<id>"] — and closes.  No HTTP framing: [nc localhost port]
    or [hfql stats] reads it directly. *)

val address : t -> Unix.sockaddr

val set_peers : t -> Unix.sockaddr array -> unit
(** [peers.(i)] must be site [i]'s address (own entry included). *)

val store : t -> Hf_data.Store.t

val id : t -> int

val tracer : t -> Hf_obs.Tracer.t

val registry : t -> Hf_obs.Registry.t
(** Per-site transport metrics: [hf.net.messages_sent], [hf.net.bytes_sent],
    [hf.net.messages_received], the [hf.net.sent_frame_bytes] histogram
    (per-message encoded size) and [hf.net.query_rtt_s] (wall-clock
    {!run_query} latency, origin site only).  With reliability on, also
    [hf.net.retransmits], [hf.net.dup_drops], [hf.net.acks_sent],
    [hf.net.give_ups] and the [hf.net.ack_latency_s] histogram.  With
    the cache on, [hf.net.cache_hits], [hf.net.cache_misses],
    [hf.net.cache_prunes], [hf.net.cache_validations],
    [hf.net.cache_fills] and [hf.net.cache_invalidations].  Scatter-gather
    traffic and planner decisions show as [hf.net.scatter_messages],
    [hf.net.gather_messages], [hf.net.gather_nodes],
    [hf.net.scatter_fallbacks], [hf.net.planner_scatter] and
    [hf.net.planner_ship]. *)

type status =
  | Complete  (** all credit recovered, no site given up on. *)
  | Partial of int list
      (** terminated, but retransmission exhausted its retries on these
          sites (ascending): their contribution is missing and every
          other site's is fully accounted for.  Requires reliability;
          "the peer is dead" — a positive statement, unlike a
          timeout. *)
  | Timed_out
      (** the timeout expired before credit converged: "the peer may
          merely be slow" — [results] holds whatever arrived. *)
  | Cancelled  (** the caller {!cancel}led the query before it
          terminated. *)

type outcome = {
  results : Hf_data.Oid.t list;  (** arrival order at the originator. *)
  result_set : Hf_data.Oid.Set.t;
  bindings : (string * Hf_data.Value.t list) list;
  terminated : bool;
      (** [false] exactly when [status] is [Timed_out] or [Cancelled]. *)
  status : status;
  response_time : float;  (** wall-clock seconds since submission. *)
  queue_wait_s : float;
      (** time spent in the admission queue before the query started
          (0 when admission was immediate). *)
  messages_sent : int;
      (** wire messages this site sent for THIS query (work, results,
          credit, cache traffic and their retransmissions) — attributed
          per query, so concurrent neighbors never bleed into each
          other's outcome.  Standalone link acks and post-termination
          [Query_done] frames are link housekeeping and appear only in
          the site-global [hf.net.*] counters. *)
  bytes_sent : int;
  mode : Hf_query.Plan.mode;
      (** which execution mode actually ran this query ([Ship] under
          [Exec_ship], or when the planner declined scatter). *)
  plan_decision : Hf_query.Plan.decision option;
      (** the planner's full verdict; [None] under [Exec_ship]. *)
}

type handle
(** A locally-issued, not-yet-awaited query. *)

val submit_query : t -> Hf_query.Program.t -> Hf_data.Oid.t list -> handle
(** Issue a query from this site over the initial set and return
    without waiting; any number may be in flight at once.  The
    admission gate either starts it now or queues it (fairly) until a
    running one finishes.  Raises [Failure] when the admission queue is
    full ([max_queued]). *)

val await : ?timeout:float -> t -> handle -> outcome
(** Wait until the query terminates (all credit recovered), is
    cancelled, or the timeout (default 10 s) expires.  With reliability
    on, a permanently dead peer does not hang the query until the
    timeout: once its retry budget is spent the credit aboard its
    messages is reclaimed, termination converges, and the outcome is
    [Partial].  A timeout leaves the query running (slot held); [await]
    again to keep waiting. *)

val cancel : t -> handle -> unit
(** Abort a local query: a queued one just leaves the admission queue,
    a running one has its state discarded here and at every peer
    ([Query_done] broadcast), and its admission slot is freed — the
    outstanding credit is deliberately not recovered, which is sound
    because a cancelled query no longer needs termination to converge.
    Idempotent; terminated queries are left alone. *)

val run_query :
  ?timeout:float -> t -> Hf_query.Program.t -> Hf_data.Oid.t list -> outcome
(** [submit_query] + [await]. *)

val explain : t -> Hf_query.Program.t -> Hf_data.Oid.t list -> Hf_query.Plan.decision
(** The planner's verdict for this query, without running it — what
    [hfql :plan] renders.  Uses whatever summaries this site has
    learned so far; independent of [exec] (an [Exec_ship] site can
    still explain). *)

val context_count : t -> int
(** Live per-query contexts at this site (any origin).  Terminated and
    cancelled queries are evicted, so an idle site returns 0. *)

val admission_running : t -> int
(** Locally-issued queries currently admitted. *)

val admission_queued : t -> int
(** Locally-issued queries waiting in the admission queue. *)

(** {1 Cluster-wide stats and profiles (DESIGN.md §4i)} *)

val pull_stats : ?timeout:float -> t -> (int * Hf_obs.Registry.snapshot) list
(** Snapshot every site's registry: broadcast a [Stats_pull] under a
    fresh token and wait (default 5 s) until each peer's report lands.
    A peer that misses the deadline contributes its last-known snapshot
    if any, so a dead site degrades the scrape instead of hanging it.
    Returns (site, snapshot) pairs including this site, ascending.
    Stats messages are credit-free and loss-tolerant — they never touch
    termination detection. *)

val cluster_stats : ?timeout:float -> t -> Hf_obs.Registry.snapshot
(** [pull_stats] merged into one cluster-wide registry view: counters
    and gauges sum across sites, histograms merge bucket-exactly. *)

val known_peer_stats : t -> (int * Hf_obs.Registry.snapshot) list
(** Last-known peer snapshots without going to the wire — what the
    [stats_period] scrape keeps warm.  Empty until some pull or scrape
    completed. *)

val monitor_address : t -> Unix.sockaddr option
(** The monitoring listener's bound address ([None] when [monitor_port]
    was not given). *)

val profile : t -> handle -> outcome -> Hf_obs.Profile.t
(** EXPLAIN ANALYZE: fold the tracer's spans for this query into a
    per-site phase/rounds breakdown, with the outcome's per-query
    counters ([messages_sent], [bytes_sent], [queue_wait_s],
    [response_time_s], [results]) pinned alongside as scalars.  Call
    after {!await}.  Sites sharing one tracer get the full cross-site
    picture; separate processes each see their own half. *)

val shutdown : t -> unit
(** Quiesce the reliability and stats tickers, then close the
    monitoring listener, the protocol listener and all connections;
    idempotent. *)
