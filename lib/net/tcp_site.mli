(** A real HyperFile site over TCP — the Section 3.2 protocol on actual
    sockets, using the same wire messages and codec the simulator
    accounts for.

    Lifecycle: {!create} each site (binds an ephemeral loopback port and
    starts its accept thread), collect the {!address}es, {!set_peers} on
    every site, then load stores and issue queries from any site with
    {!run_query}.  {!shutdown} closes sockets and stops threads.

    Objects live at their birth site ([Oid.birth_site] routes
    dereferences), as in the simulated cluster. *)

type t

val create :
  site:int ->
  ?batch:Hf_proto.Batch.flush_policy ->
  ?reliability:Hf_proto.Reliable.config ->
  ?cache:Hf_index.Remote_cache.config ->
  ?tracer:Hf_obs.Tracer.t ->
  unit ->
  t
(** Bind 127.0.0.1 on an ephemeral port and start accepting.

    [batch] (default [Flush_at 1], i.e. unbatched) coalesces work items
    bound for the same destination into one [Work_batch] message with a
    single credit split; leftovers always flush before the site drains,
    so termination is never delayed.  Single-item flushes go out as
    plain [Deref_request]s — with the default policy the wire traffic is
    byte-identical to the unbatched protocol.

    [tracer] (default {!Hf_obs.Tracer.noop}) records spans; when every
    site of an in-process cluster shares one tracer, wire messages
    carry the sender's span id and the receiver closes the span on
    arrival, so shipping spans cover real transit and remote evaluation
    spans parent on the originating site's.  With tracing off the wire
    bytes are unchanged.

    [reliability] (default off) layers ack/retransmit delivery under
    the protocol ({!Hf_proto.Reliable}): every frame carries a
    per-peer sequence number and a piggybacked cumulative ack, a
    ticker thread retransmits unacknowledged frames with exponential
    backoff, receivers drop redelivered duplicates before they reach a
    handler, and a peer that exhausts the retry cap is declared
    unreachable — its messages' credit reclaimed so the query still
    terminates, with a {!Partial} status.  All sites of a cluster must
    agree on whether reliability is on (the envelope changes the frame
    layout).  See doc/fault_tolerance.md.

    [cache] (default off) enables the cross-site acceleration layer
    (DESIGN.md §4g): before the first ship to a destination the query
    validates the destination's store version (items wait parked, their
    credit unsplit); at a validated version, verdicts cached from
    earlier queries answer items locally without splitting credit, and
    the destination's Bloom tuple summary prunes ships that provably
    die on arrival.  Enable it on every site of a cluster — a
    non-caching site still answers validations (version-only) but
    never parks, caches or prunes. *)

val address : t -> Unix.sockaddr

val set_peers : t -> Unix.sockaddr array -> unit
(** [peers.(i)] must be site [i]'s address (own entry included). *)

val store : t -> Hf_data.Store.t

val id : t -> int

val tracer : t -> Hf_obs.Tracer.t

val registry : t -> Hf_obs.Registry.t
(** Per-site transport metrics: [hf.net.messages_sent], [hf.net.bytes_sent],
    [hf.net.messages_received], the [hf.net.sent_frame_bytes] histogram
    (per-message encoded size) and [hf.net.query_rtt_s] (wall-clock
    {!run_query} latency, origin site only).  With reliability on, also
    [hf.net.retransmits], [hf.net.dup_drops], [hf.net.acks_sent],
    [hf.net.give_ups] and the [hf.net.ack_latency_s] histogram.  With
    the cache on, [hf.net.cache_hits], [hf.net.cache_misses],
    [hf.net.cache_prunes], [hf.net.cache_validations],
    [hf.net.cache_fills] and [hf.net.cache_invalidations]. *)

type status =
  | Complete  (** all credit recovered, no site given up on. *)
  | Partial of int list
      (** terminated, but retransmission exhausted its retries on these
          sites (ascending): their contribution is missing and every
          other site's is fully accounted for.  Requires reliability;
          "the peer is dead" — a positive statement, unlike a
          timeout. *)
  | Timed_out
      (** the timeout expired before credit converged: "the peer may
          merely be slow" — [results] holds whatever arrived. *)

type outcome = {
  results : Hf_data.Oid.t list;  (** arrival order at the originator. *)
  result_set : Hf_data.Oid.Set.t;
  bindings : (string * Hf_data.Value.t list) list;
  terminated : bool;
      (** [false] exactly when [status] is [Timed_out]. *)
  status : status;
  response_time : float;  (** wall-clock seconds. *)
  messages_sent : int;  (** wire messages this site sent for the query. *)
  bytes_sent : int;
}

val run_query :
  ?timeout:float -> t -> Hf_query.Program.t -> Hf_data.Oid.t list -> outcome
(** Issue a query from this site over the initial set and wait for the
    weighted-termination detector to recover all credit (default
    timeout 10 s).  With reliability on, a permanently dead peer does
    not hang the query until the timeout: once its retry budget is
    spent the credit aboard its messages is reclaimed, termination
    converges, and the outcome is [Partial]. *)

val shutdown : t -> unit
(** Close the listener and all connections; idempotent. *)
