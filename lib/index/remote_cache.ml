(* Remote-answer cache and ship-pruning analysis for query shipping
   (DESIGN.md §4g).

   The cache memoizes, at the shipping site, the pass/fail verdict of
   work items whose remaining filters are free of [Deref] and
   [Retrieve]: such an item's outcome depends only on (program suffix,
   iteration counters, target object), so the verdict that flowed back
   from a site at store version v can be replayed locally whenever the
   site still reports version v.  Items whose reachable suffix can
   dereference or retrieve are never cached — a hit must not suppress
   the spawns or value emissions the remote run would have produced.

   The same reachability walk drives Bloom ship pruning: the first
   filter the destination would execute yields necessary membership
   probes against the destination's tuple summary, and a definite miss
   proves the item dies on arrival, so the ship can be skipped. *)

module F = Hf_query.Filter
module P = Hf_query.Pattern
module Plan = Hf_engine.Plan
module Codec = Hf_proto.Codec

type config = {
  capacity : int;
  ttl : float;
  fp_rate : float;
}

let default = { capacity = 4096; ttl = Float.infinity; fp_rate = 0.01 }

let validate config =
  if config.capacity <= 0 then
    invalid_arg "Remote_cache.validate: capacity must be positive";
  if not (config.ttl > 0.0) then
    invalid_arg "Remote_cache.validate: ttl must be positive";
  if not (config.fp_rate > 0.0 && config.fp_rate < 1.0) then
    invalid_arg "Remote_cache.validate: fp_rate must be in (0, 1)"

(* --- Reachability analysis over a compiled plan --- *)

(* Conservative lower bound of the filter indices a work item can visit.
   Evaluation only moves backwards through an [Iter] whose body start
   lies below the current position, and the eval loop's start variable
   begins at [start] and never rises, so an iterator with
   [start <= body_start] always exits; a [Finite k] iterator whose
   (per-item, fixed) counter has already reached [k] always exits.
   Everything else is assumed able to loop. *)
let reachable_low plan ~start ~iters =
  let program = Plan.program plan in
  let n = Plan.length plan in
  let low = ref (min start n) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = !low to n - 1 do
      match Hf_query.Program.get program i with
      | F.Iter { body_start; count } when body_start < !low ->
        let always_exits =
          start <= body_start
          ||
          match count with
          | F.Finite k ->
            let slot = Plan.slot_of_iterator plan i in
            slot < Array.length iters && iters.(slot) >= k
          | F.Star -> false
        in
        if not always_exits then begin
          low := body_start;
          changed := true
        end
      | F.Iter _ | F.Select _ | F.Deref _ | F.Retrieve _ -> ()
    done
  done;
  !low

let cacheable plan ~start ~iters =
  let program = Plan.program plan in
  let n = Plan.length plan in
  let low = reachable_low plan ~start ~iters in
  let ok = ref true in
  for i = low to n - 1 do
    match Hf_query.Program.get program i with
    | F.Deref _ | F.Retrieve _ -> ok := false
    | F.Select _ | F.Iter _ -> ()
  done;
  !ok

(* The first non-[Iter] filter the destination's eval loop would
   execute for this item — an exact replay of the loop's pure-iterator
   prefix (eval.ml), which consults nothing but the program and the
   item's fixed counters.  [None] when the item falls off the end (it
   passes trivially) or when a counter slot is missing (malformed item;
   never prune those). *)
let first_filter plan ~start ~iters =
  let program = Plan.program plan in
  let n = Plan.length plan in
  let sv = ref start in
  let idx = ref start in
  (* The loop branch strictly lowers [sv], so eval's walk takes at most
     n backward jumps; the cap only guards against a malformed plan. *)
  let fuel = ref (((n + 1) * (n + 1)) + 4) in
  let result = ref None in
  let running = ref true in
  while !running && !idx < n && !fuel > 0 do
    decr fuel;
    match Hf_query.Program.get program !idx with
    | F.Iter { body_start; count } ->
      let exits =
        !sv <= body_start
        ||
        match count with
        | F.Finite k ->
          let slot = Plan.slot_of_iterator plan !idx in
          if slot < Array.length iters then iters.(slot) >= k
          else begin
            (* counter missing: stop rather than guess *)
            running := false;
            true
          end
        | F.Star -> false
      in
      if not !running then ()
      else if exits then incr idx
      else begin
        sv := body_start;
        idx := body_start
      end
    | (F.Select _ | F.Deref _ | F.Retrieve _) as f ->
      result := Some f;
      running := false
  done;
  !result

(* --- Summary keys ---

   A tuple contributes two keys: its type, and its (type, key-value)
   pair.  Values are serialized through an identity-canonical writer —
   pointer hints are advisory and excluded from [Value.equal], and
   [-0.] / NaN collapse under [Float.equal] — so equal values always
   hash to the same key and a summary miss stays a proof of absence. *)

let canon_value buf v =
  (match v with
   | Hf_data.Value.Str s ->
     Buffer.add_char buf '\000';
     Buffer.add_string buf s
   | Hf_data.Value.Num n ->
     Buffer.add_char buf '\001';
     Buffer.add_int64_le buf (Int64.of_int n)
   | Hf_data.Value.Real f ->
     let f = if f = 0.0 then 0.0 else if Float.is_nan f then Float.nan else f in
     Buffer.add_char buf '\002';
     Buffer.add_int64_le buf (Int64.bits_of_float f)
   | Hf_data.Value.Ptr oid ->
     Buffer.add_char buf '\003';
     Buffer.add_int64_le buf (Int64.of_int (Hf_data.Oid.birth_site oid));
     Buffer.add_int64_le buf (Int64.of_int (Hf_data.Oid.serial oid))
   | Hf_data.Value.Blob b ->
     Buffer.add_char buf '\004';
     Buffer.add_string buf b);
  ()

let type_probe ttype = "t:" ^ ttype

let pair_probe ttype value =
  let buf = Buffer.create 32 in
  Buffer.add_string buf "k:";
  Buffer.add_string buf ttype;
  Buffer.add_char buf '\000';
  canon_value buf value;
  Buffer.contents buf

(* Membership probes that are each *necessary* for the item's first
   executed filter to match any tuple: if the destination summary
   definitely lacks one, the item fails there without spawning,
   emitting, or binding anything, and the ship can be skipped.  An
   empty list means "cannot prune". *)
let prune_probes plan ~start ~iters =
  match first_filter plan ~start ~iters with
  | Some (F.Select { ttype = P.Exact tv; key; _ })
  | Some (F.Retrieve { ttype = P.Exact tv; key; _ }) -> (
    match tv with
    | Hf_data.Value.Str s -> (
      let base = [ type_probe s ] in
      match key with P.Exact kv -> pair_probe s kv :: base | _ -> base)
    | Hf_data.Value.Num _ | Hf_data.Value.Real _ | Hf_data.Value.Ptr _
    | Hf_data.Value.Blob _ ->
      (* a non-string type pattern never matches; still not worth a
         special case — just don't prune *)
      [])
  | Some (F.Select _ | F.Deref _ | F.Retrieve _ | F.Iter _) | None -> []

let summary_of_store config store =
  let expected = max 16 (2 * Hf_data.Store.cardinal store * 4) in
  let bloom = Bloom.create ~expected ~fp_rate:config.fp_rate in
  Hf_data.Store.iter store (fun obj ->
      List.iter
        (fun tuple ->
          let ttype = Hf_data.Tuple.ttype tuple in
          Bloom.add bloom (type_probe ttype);
          Bloom.add bloom (pair_probe ttype (Hf_data.Tuple.key tuple)))
        (Hf_data.Hobject.tuples obj));
  bloom

let summary_misses summary probes =
  List.exists (fun probe -> not (Bloom.mem summary probe)) probes

(* --- Entry key --- *)

(* Canonical bytes of (destination, shipped suffix, counters, target).
   The codec's writers are injective, and the oid's advisory hint is
   normalized away so two routes to the same object share an entry. *)
let entry_key ~dst ~plan ~start ~iters ~oid =
  let buf = Buffer.create 96 in
  Codec.write_varint buf dst;
  Codec.write_program buf (Plan.program plan);
  Codec.write_varint buf start;
  Codec.write_varint buf (Array.length iters);
  Array.iter (fun c -> Codec.write_varint buf c) iters;
  Codec.write_oid buf (Hf_data.Oid.with_hint oid (Hf_data.Oid.birth_site oid));
  Buffer.contents buf

(* --- LRU table --- *)

(* Intrusive doubly-linked list threaded through the entries; [head] is
   a sentinel, most-recent first. *)
type entry = {
  ekey : string;
  mutable passed : bool;
  mutable version : int;
  mutable stamp : float;
  mutable prev : entry;
  mutable next : entry;
}

type t = {
  config : config;
  table : (string, entry) Hashtbl.t;
  head : entry;
  mutable size : int;
}

let create config =
  validate config;
  let rec head =
    { ekey = ""; passed = false; version = -1; stamp = 0.0; prev = head; next = head }
  in
  { config; table = Hashtbl.create 64; head; size = 0 }

let config t = t.config

let length t = t.size

let unlink e =
  e.prev.next <- e.next;
  e.next.prev <- e.prev

let push_front t e =
  e.next <- t.head.next;
  e.prev <- t.head;
  t.head.next.prev <- e;
  t.head.next <- e

let drop t e =
  unlink e;
  Hashtbl.remove t.table e.ekey;
  t.size <- t.size - 1

type lookup = Hit of bool | Invalidated | Absent

let lookup t ~now ~key ~version =
  match Hashtbl.find_opt t.table key with
  | None -> Absent
  | Some e ->
    if e.version <> version || now -. e.stamp > t.config.ttl then begin
      (* demand-driven invalidation: the entry is known stale the
         moment the destination reports a different version (or the
         entry aged out), so evict it now *)
      drop t e;
      Invalidated
    end
    else begin
      unlink e;
      push_front t e;
      Hit e.passed
    end

let put t ~now ~key ~version ~passed =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    e.passed <- passed;
    e.version <- version;
    e.stamp <- now;
    unlink e;
    push_front t e
  | None ->
    let e =
      { ekey = key; passed; version; stamp = now; prev = t.head; next = t.head }
    in
    Hashtbl.replace t.table key e;
    push_front t e;
    t.size <- t.size + 1;
    if t.size > t.config.capacity then drop t t.head.prev

let drop_dst t ~dst =
  (* [entry_key] leads with the destination's varint; a varint is
     self-delimiting, so a full-varint prefix match identifies exactly
     the entries for [dst]. *)
  let buf = Buffer.create 5 in
  Codec.write_varint buf dst;
  let prefix = Buffer.contents buf in
  let plen = String.length prefix in
  let doomed = ref [] in
  Hashtbl.iter
    (fun key e ->
      if String.length key >= plen && String.sub key 0 plen = prefix then
        doomed := e :: !doomed)
    t.table;
  List.iter (drop t) !doomed

let clear t =
  Hashtbl.reset t.table;
  t.head.next <- t.head;
  t.head.prev <- t.head;
  t.size <- 0
