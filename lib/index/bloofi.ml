(* Bloofi-style hierarchical index over per-site Bloom summaries
   (DESIGN.md §4k).

   Layout: a perfect d-ary tree kept in one heap-ordered array.  With
   [cap = order^levels] leaf slots, the [internal = (cap-1)/(order-1)]
   inner nodes occupy indices [0 .. internal-1] and leaf slot [s] lives
   at index [internal + s]; the children of node [j] are
   [j*order + 1 .. j*order + order].  Live leaves fill slots
   [0 .. n-1] left to right, so the subtree under any node covers a
   contiguous slot range and an empty subtree is recognized from its
   range alone — no parent pointers, no per-node bookkeeping.

   Mutation is incremental: replacing a leaf (the [Cache_version] churn
   path) recomputes only the leaf-to-root path, each ancestor rebuilt
   as the exact {!Bloom.union} of its children.  Exact recomputation —
   rather than the grow-only OR a textbook Bloofi uses — is what lets
   [remove] and summary replacement shed stale bits immediately, which
   the staleness contract (a stale tree may over-ship, never wrongly
   prune) depends on.  Inserting past capacity rebuilds one level
   deeper; that is the only whole-tree pass and is counted in
   {!rebuilds}.

   An inner node whose live children have union-incompatible geometry
   (possible only for filters that arrived off the wire, never for
   {!Bloom.create}d ones) stores no filter and is always descended:
   unindexable data degrades to over-shipping, never to a wrong
   prune. *)

type t = {
  order : int;
  mutable levels : int;
  mutable cap : int; (* order^levels leaf slots *)
  mutable internal : int; (* (cap-1)/(order-1) inner nodes *)
  mutable nodes : Bloom.t option array; (* internal + cap entries *)
  mutable sites : int array; (* slot -> site, first n live *)
  mutable n : int;
  slot_of : (int, int) Hashtbl.t; (* site -> slot *)
  mutable stat_probes : int;
  mutable stat_pruned : int;
  mutable stat_rebuilds : int;
}

type probe_result = { sites : int list; touched : int; depth : int }

let create ?(order = 4) () =
  if order < 2 then invalid_arg "Bloofi.create: order must be >= 2";
  {
    order;
    levels = 0;
    cap = 1;
    internal = 0;
    nodes = Array.make 1 None;
    sites = Array.make 1 (-1);
    n = 0;
    slot_of = Hashtbl.create 16;
    stat_probes = 0;
    stat_pruned = 0;
    stat_rebuilds = 0;
  }

let order t = t.order
let cardinal t = t.n
let mem t ~site = Hashtbl.mem t.slot_of site
let probes_run t = t.stat_probes
let pruned_total t = t.stat_pruned
let rebuilds t = t.stat_rebuilds

let filter_of t ~site =
  match Hashtbl.find_opt t.slot_of site with
  | None -> None
  | Some slot -> t.nodes.(t.internal + slot)

let indexed (t : t) =
  List.sort Int.compare (Array.to_list (Array.sub t.sites 0 t.n))

(* The exact filter node [j] (covering slots [lo, lo+width)) should
   hold: the union of its live children, or [None] when some live
   child is filterless or a union is geometry-incompatible. *)
let child_union t j lo width =
  let step = width / t.order in
  let acc = ref None and ok = ref true in
  for c = 0 to t.order - 1 do
    let clo = lo + (c * step) in
    if clo < t.n then
      match t.nodes.((j * t.order) + 1 + c) with
      | None -> ok := false
      | Some f -> (
        match !acc with
        | None -> acc := Some f
        | Some g -> (
          match Bloom.union g f with
          | Some u -> acc := Some u
          | None -> ok := false))
  done;
  if !ok then !acc else None

(* Recompute the ancestors of [slot] bottom-up, descending only the
   child that contains it. *)
let rec refresh t j lo hi slot =
  let width = hi - lo in
  if width > 1 then begin
    let step = width / t.order in
    let c = (slot - lo) / step in
    refresh t ((j * t.order) + 1 + c) (lo + (c * step)) (lo + ((c + 1) * step)) slot;
    t.nodes.(j) <- child_union t j lo width
  end

let rec rebuild_node t j lo hi =
  let width = hi - lo in
  if width > 1 && lo < t.n then begin
    let step = width / t.order in
    for c = 0 to t.order - 1 do
      rebuild_node t ((j * t.order) + 1 + c) (lo + (c * step)) (lo + ((c + 1) * step))
    done;
    t.nodes.(j) <- child_union t j lo width
  end

(* One level deeper: leaf capacity multiplies by [order] and every
   inner node is rebuilt (the only O(n) mutation). *)
let grow t =
  let levels = t.levels + 1 in
  let cap = t.cap * t.order in
  let internal = (cap - 1) / (t.order - 1) in
  let nodes = Array.make (internal + cap) None in
  let sites = Array.make cap (-1) in
  Array.blit t.sites 0 sites 0 t.n;
  for s = 0 to t.n - 1 do
    nodes.(internal + s) <- t.nodes.(t.internal + s)
  done;
  t.levels <- levels;
  t.cap <- cap;
  t.internal <- internal;
  t.nodes <- nodes;
  t.sites <- sites;
  t.stat_rebuilds <- t.stat_rebuilds + 1;
  rebuild_node t 0 0 t.cap

let rec insert t ~site bloom =
  match Hashtbl.find_opt t.slot_of site with
  | Some slot ->
    t.nodes.(t.internal + slot) <- Some bloom;
    refresh t 0 0 t.cap slot
  | None ->
    if t.n = t.cap then begin
      grow t;
      insert t ~site bloom
    end
    else begin
      let slot = t.n in
      Hashtbl.replace t.slot_of site slot;
      t.sites.(slot) <- site;
      t.nodes.(t.internal + slot) <- Some bloom;
      t.n <- t.n + 1;
      refresh t 0 0 t.cap slot
    end

let remove t ~site =
  match Hashtbl.find_opt t.slot_of site with
  | None -> ()
  | Some slot ->
    let last = t.n - 1 in
    Hashtbl.remove t.slot_of site;
    if slot <> last then begin
      let moved = t.sites.(last) in
      t.sites.(slot) <- moved;
      t.nodes.(t.internal + slot) <- t.nodes.(t.internal + last);
      Hashtbl.replace t.slot_of moved slot
    end;
    t.sites.(last) <- -1;
    t.nodes.(t.internal + last) <- None;
    t.n <- t.n - 1;
    refresh t 0 0 t.cap slot;
    if last <> slot then refresh t 0 0 t.cap last

(* Disjunction of conjunctions, the shape [Remote_cache.prune_probes]
   yields per landing pc: a filter may match when some group's probes
   are all possibly present.  An empty group (or group list) cannot
   rule anything out.  Filterless nodes may always match. *)
let may filter groups =
  match filter with
  | None -> true
  | Some f ->
    groups = []
    || List.exists (fun g -> List.for_all (fun p -> Bloom.mem f p) g) groups

let probe t groups =
  t.stat_probes <- t.stat_probes + 1;
  let touched = ref 0 and deepest = ref 0 and acc = ref [] in
  let rec go j lo hi level =
    if lo < t.n then begin
      incr touched;
      if level > !deepest then deepest := level;
      if may t.nodes.(j) groups then
        if hi - lo = 1 then acc := t.sites.(lo) :: !acc
        else begin
          let step = (hi - lo) / t.order in
          for c = 0 to t.order - 1 do
            go ((j * t.order) + 1 + c) (lo + (c * step)) (lo + ((c + 1) * step))
              (level + 1)
          done
        end
    end
  in
  if t.n > 0 then go 0 0 t.cap 0;
  let sites = List.sort Int.compare !acc in
  t.stat_pruned <- t.stat_pruned + (t.n - List.length sites);
  { sites; touched = !touched; depth = !deepest }

let invariant_ok t =
  let ok = ref (Hashtbl.length t.slot_of = t.n) in
  Hashtbl.iter
    (fun site slot ->
      if slot < 0 || slot >= t.n || t.sites.(slot) <> site then ok := false)
    t.slot_of;
  for s = 0 to t.n - 1 do
    if t.nodes.(t.internal + s) = None then ok := false
  done;
  let rec check j lo hi =
    let width = hi - lo in
    if width > 1 && lo < t.n then begin
      let step = width / t.order in
      for c = 0 to t.order - 1 do
        check ((j * t.order) + 1 + c) (lo + (c * step)) (lo + ((c + 1) * step))
      done;
      match (t.nodes.(j), child_union t j lo width) with
      | None, None -> ()
      | Some got, Some want -> if not (Bloom.equal got want) then ok := false
      | None, Some _ | Some _, None -> ok := false
    end
  in
  check 0 0 t.cap;
  !ok

let pp ppf t =
  Format.fprintf ppf "bloofi(d=%d sites=%d cap=%d levels=%d rebuilds=%d)"
    t.order t.n t.cap t.levels t.stat_rebuilds
