(* Bloom summary of a site's tuple content (Bloofi-style per-site set
   summaries, flattened to one filter per site).

   A filter over m bits with k hash functions answers "possibly present"
   or "definitely absent"; absence is exact, so a shipping decision made
   on a miss can never lose a result (DESIGN.md §4g).  Hashing is
   FNV-1a with two seeds combined by double hashing — deterministic
   across runs and platforms, which the differential tests rely on. *)

type t = {
  bits : Bytes.t; (* m bits, LSB-first within each byte *)
  m : int; (* bit-array size *)
  k : int; (* probes per key *)
  mutable count : int; (* insertions (not distinct keys) *)
}

(* 61-bit arithmetic: stays deterministic on every 64-bit OCaml and
   leaves headroom for the multiply's wrap to behave identically. *)
let hash_mask = (1 lsl 61) - 1

let fnv_prime = 0x100000001b3

let fnv1a ~seed s =
  let h = ref ((0xcbf29ce484222 lxor seed) land hash_mask) in
  String.iter
    (fun c -> h := ((!h lxor Char.code c) * fnv_prime) land hash_mask)
    s;
  !h

let ln2 = Float.log 2.0

(* Standard sizing m = -n ln p / (ln 2)^2, then rounded UP to the next
   power of two.  The rounding only lowers the false-positive rate, and
   it makes every planned filter's geometry divide every larger one's —
   the precondition {!union} needs to fold two summaries of different
   sizes into one sound OR-merge (Bloofi inner nodes). *)
let plan ~expected ~fp_rate =
  if expected <= 0 then invalid_arg "Bloom.create: expected must be positive";
  if not (fp_rate > 0.0 && fp_rate < 1.0) then
    invalid_arg "Bloom.create: fp_rate must be in (0, 1)";
  let n = float_of_int expected in
  let m =
    int_of_float (Float.ceil (-.n *. Float.log fp_rate /. (ln2 *. ln2)))
  in
  let m = max 8 m in
  let m =
    let p = ref 8 in
    while !p < m do
      p := !p * 2
    done;
    !p
  in
  let k = int_of_float (Float.round (float_of_int m /. n *. ln2)) in
  let k = max 1 (min 30 k) in
  (m, k)

let create ~expected ~fp_rate =
  let m, k = plan ~expected ~fp_rate in
  { bits = Bytes.make ((m + 7) / 8) '\000'; m; k; count = 0 }

let bits t = t.m
let probes t = t.k
let count t = t.count

let set_bit bits i =
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.unsafe_set bits byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get bits byte) lor (1 lsl bit)))

let get_bit bits i =
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.unsafe_get bits byte) land (1 lsl bit) <> 0

(* Double hashing: probe_i = h1 + i*h2 (mod m), h2 forced odd so the
   probe sequence cycles through distinct positions. *)
let probe_seq t key f =
  let h1 = fnv1a ~seed:0x9e3779b9 key in
  let h2 = fnv1a ~seed:0x85ebca6b key lor 1 in
  for i = 0 to t.k - 1 do
    f (((h1 + (i * h2)) land hash_mask) mod t.m)
  done

let add t key =
  probe_seq t key (set_bit t.bits);
  t.count <- t.count + 1

let mem t key =
  let hit = ref true in
  probe_seq t key (fun i -> if not (get_bit t.bits i) then hit := false);
  !hit

(* Expected false-positive probability at the current fill:
   (1 - e^{-kn/m})^k. *)
let fp_estimate t =
  let n = float_of_int t.count in
  let m = float_of_int t.m in
  let k = float_of_int t.k in
  Float.pow (1.0 -. Float.exp (-.k *. n /. m)) k

(* Wire form: magic byte, then m / k / count as unsigned LEB128
   varints, then the raw bit bytes.  [of_string] is total — garbage
   from the network yields [None], never an exception. *)

let magic = '\xb1'

let write_varint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let low = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr low);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (low lor 0x80))
  done

let to_string t =
  let buf = Buffer.create (16 + Bytes.length t.bits) in
  Buffer.add_char buf magic;
  write_varint buf t.m;
  write_varint buf t.k;
  write_varint buf t.count;
  Buffer.add_bytes buf t.bits;
  Buffer.contents buf

let of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let byte () =
    if !pos >= len then None
    else begin
      let c = Char.code s.[!pos] in
      incr pos;
      Some c
    end
  in
  let rec varint shift acc =
    if shift > 56 then None (* would overflow / malicious length *)
    else
      match byte () with
      | None -> None
      | Some c ->
        let acc = acc lor ((c land 0x7f) lsl shift) in
        if c land 0x80 = 0 then Some acc else varint (shift + 7) acc
  in
  match byte () with
  | Some c when Char.chr c = magic -> (
    match varint 0 0 with
    | None -> None
    | Some m -> (
      match varint 0 0 with
      | None -> None
      | Some k -> (
        match varint 0 0 with
        | None -> None
        | Some count ->
          let nbytes = (m + 7) / 8 in
          if m < 1 || k < 1 || k > 30 || count < 0 || len - !pos <> nbytes
          then None
          else
            Some
              {
                bits = Bytes.of_string (String.sub s !pos nbytes);
                m;
                k;
                count;
              })))
  | _ -> None

let ones t =
  let ones = ref 0 in
  Bytes.iter
    (fun c ->
      let b = ref (Char.code c) in
      while !b <> 0 do
        ones := !ones + (!b land 1);
        b := !b lsr 1
      done)
    t.bits;
  !ones

(* Swamidass–Baldi cardinality estimate from the fill ratio:
   n ~= -(m/k) ln(1 - X/m) with X the number of set bits.  Used by the
   execution-mode planner to price a remote site's speculation domain
   from its learned summary alone. *)
let estimate_entries t =
  let x = float_of_int (ones t) in
  let m = float_of_int t.m in
  if x >= m then t.count (* saturated: the formula diverges *)
  else
    int_of_float
      (Float.round (-.(m /. float_of_int t.k) *. Float.log (1.0 -. (x /. m))))

(* OR-merge of two filters, folding the larger bit array onto the
   smaller when the smaller size divides the larger.  Soundness: a probe
   of the merged filter checks positions [x mod m'] for the first
   [min k] hash values; an element added to either input set positions
   [x mod m] with [m' | m], and [(x mod m) mod m' = x mod m'], so every
   checked position is set — no false negatives survive the merge.
   Checking fewer probes ([min k]) and ORing foreign bits both only
   raise the false-positive rate.  [None] when neither geometry divides
   the other (filters planned by {!create} are always compatible: their
   sizes are powers of two). *)
let union a b =
  let small, large = if a.m <= b.m then (a, b) else (b, a) in
  if large.m mod small.m <> 0 then None
  else begin
    let bits = Bytes.copy small.bits in
    if large.m = small.m then
      Bytes.iteri
        (fun i c ->
          Bytes.set bits i
            (Char.chr (Char.code (Bytes.get bits i) lor Char.code c)))
        large.bits
    else
      for i = 0 to large.m - 1 do
        if get_bit large.bits i then set_bit bits (i mod small.m)
      done;
    Some { bits; m = small.m; k = min a.k b.k; count = a.count + b.count }
  end

let equal a b = a.m = b.m && a.k = b.k && Bytes.equal a.bits b.bits

let pp ppf t =
  Format.fprintf ppf "bloom(m=%d k=%d n=%d fill=%.3f fp~%.4f)" t.m t.k t.count
    (float_of_int (ones t) /. float_of_int t.m)
    (fp_estimate t)
