(** Remote-answer cache and ship-pruning analysis for query shipping.

    Memoizes, at the shipping site, the pass/fail verdict of work items
    whose reachable program suffix contains no [Deref] and no
    [Retrieve]: such an item's outcome depends only on (suffix,
    iteration counters, target object), so a verdict computed at remote
    store version [v] can be replayed locally while the remote still
    reports [v].  The same reachability walk derives Bloom probes that
    prove some items dead on arrival, letting the origin skip the ship
    entirely.  See DESIGN.md §4g for the correctness argument. *)

type config = {
  capacity : int;  (** LRU entries kept per site. *)
  ttl : float;
      (** freshness window in (virtual or wall-clock) seconds; entries
          older than this revalidate as misses.  [Float.infinity]
          disables aging — version gating alone decides reuse. *)
  fp_rate : float;  (** Bloom summary false-positive budget. *)
}

val default : config
(** 4096 entries, no aging, 1% false positives. *)

val validate : config -> unit
(** Raises [Invalid_argument] on a non-positive capacity or ttl, or an
    [fp_rate] outside (0, 1). *)

(** {1 Program analysis} *)

val cacheable : Hf_engine.Plan.t -> start:int -> iters:int array -> bool
(** Whether an item's verdict may be cached: no [Deref] or [Retrieve]
    filter is reachable from [start] under the item's (fixed) iteration
    counters, by a conservative fixpoint over backward [Iter] jumps. *)

val first_filter :
  Hf_engine.Plan.t -> start:int -> iters:int array -> Hf_query.Filter.t option
(** The first non-[Iter] filter evaluation would execute for this item
    — an exact replay of the eval loop's pure-iterator prefix.  [None]
    when the item passes trivially (falls off the end). *)

val prune_probes :
  Hf_engine.Plan.t -> start:int -> iters:int array -> string list
(** Summary-membership probes, each {e necessary} for the item's first
    executed filter to match any tuple.  If the destination summary
    definitely lacks one, the item fails on arrival without spawning,
    emitting, or binding anything, so the ship can be skipped and the
    credit kept.  Empty means "cannot prune". *)

(** {1 Site summaries} *)

val summary_of_store : config -> Hf_data.Store.t -> Bloom.t
(** Bloom summary of every tuple's type and (type, key) pair, sized for
    the store at [config.fp_rate].  Rebuilt whenever the store version
    changes. *)

val summary_misses : Bloom.t -> string list -> bool
(** [true] iff some probe is definitely absent from the summary —
    i.e. the ship may be pruned. *)

val type_probe : string -> string

val pair_probe : string -> Hf_data.Value.t -> string
(** Probe keys as inserted by {!summary_of_store}; values are
    serialized identity-canonically (pointer hints stripped, [-0.] and
    NaN collapsed) so [Value.equal] values share a key. *)

(** {1 Answer cache} *)

type t

val create : config -> t
(** Raises like {!validate}. *)

val config : t -> config

val length : t -> int

val entry_key :
  dst:int ->
  plan:Hf_engine.Plan.t ->
  start:int ->
  iters:int array ->
  oid:Hf_data.Oid.t ->
  string
(** Canonical bytes of (destination, shipped program suffix, counters,
    target oid); the oid's advisory hint is normalized away. *)

type lookup =
  | Hit of bool  (** cached verdict, current at the given version. *)
  | Invalidated
      (** an entry existed but recorded a different remote version (or
          aged past the ttl); it has been evicted. *)
  | Absent

val lookup : t -> now:float -> key:string -> version:int -> lookup
(** A [Hit] refreshes the entry's LRU position. *)

val put : t -> now:float -> key:string -> version:int -> passed:bool -> unit
(** Insert or refresh; evicts the least-recently-used entry beyond
    capacity. *)

val drop_dst : t -> dst:int -> unit
(** Evict every entry recorded against destination [dst].  Needed when
    a summary-epoch regression reveals the peer restarted: its new
    lineage's store version can collide with the old one's, so cached
    verdicts keyed by version alone could wrongly validate. *)

val clear : t -> unit
