(** Bloofi-style hierarchical index over per-site Bloom summaries.

    A balanced d-ary tree whose leaves are the per-peer tuple summaries
    a site learns from [Cache_version] replies (DESIGN.md §4g) and
    whose inner nodes are the {!Bloom.union} of their children.  One
    root-to-leaf descent then answers "which of my N peers could match
    this selection at all": a subtree whose OR-filter definitely lacks
    a necessary probe is skipped whole, so the planner's per-site scan
    collapses from N filter probes to O(d·log_d N) on selective
    queries (DESIGN.md §4k).

    Soundness is inherited from the Bloom layer twice over: a leaf
    answers exactly what the flat summary would, and an inner filter
    holds a superset of each child's folded bits, so a subtree miss
    proves every leaf below it misses — {!probe} has no false
    negatives with respect to the filters it was given.  Staleness is
    the caller's contract: the tree reflects the last summary learned
    per site, and a stale filter can only make probe results {e
    larger} downstream (the engines re-validate versions before acting
    on a prune), never silently smaller. *)

type t

type probe_result = {
  sites : int list;  (** may-match sites, ascending *)
  touched : int;  (** tree nodes consulted during the descent *)
  depth : int;  (** deepest level reached (root = 0) *)
}

val create : ?order:int -> unit -> t
(** Empty tree of the given fan-out (default 4).  Raises
    [Invalid_argument] if [order < 2]. *)

val order : t -> int

val insert : t -> site:int -> Bloom.t -> unit
(** Insert [site]'s summary, or replace it if the site is already
    indexed (the [Cache_version] churn path).  Both recompute only the
    leaf-to-root path; growing past the current leaf capacity rebuilds
    the tree one level deeper (counted by {!rebuilds}). *)

val remove : t -> site:int -> unit
(** Forget a site (lost summary, restarted peer).  The last leaf moves
    into the hole and both affected paths are recomputed.  No-op when
    the site is not indexed. *)

val mem : t -> site:int -> bool

val filter_of : t -> site:int -> Bloom.t option

val cardinal : t -> int

val indexed : t -> int list
(** Indexed sites, ascending. *)

val probe : t -> string list list -> probe_result
(** Descend with a disjunction of probe conjunctions: a filter may
    match when some group's probes are all possibly present (an empty
    group, like an empty group list, means "cannot rule out" — the
    same shape {!Remote_cache.prune_probes} produces per landing pc).
    Subtrees whose OR-filter rules every group out are skipped; inner
    nodes whose children had incompatible geometry carry no filter and
    are always descended (over-ship, never wrongly prune). *)

val probes_run : t -> int
(** Cumulative {!probe} calls. *)

val pruned_total : t -> int
(** Cumulative indexed-but-ruled-out sites across all probes. *)

val rebuilds : t -> int
(** Cumulative full rebuilds (capacity growth). *)

val invariant_ok : t -> bool
(** Structural check for the property tests: every inner node's filter
    equals the {!Bloom.union} of its live children's (or is absent
    exactly when some child pair is union-incompatible), and the
    site-to-leaf maps agree.  O(n) — not for hot paths. *)

val pp : Format.formatter -> t -> unit
