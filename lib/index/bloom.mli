(** Bloom summary of a site's tuple content.

    A filter over [m] bits with [k] hash functions answers "possibly
    present" or "definitely absent".  Absence is exact — there are no
    false negatives by construction, so a query-shipping decision made
    on a miss can never lose a result (DESIGN.md §4g).  Hashing is
    seeded FNV-1a with double hashing: deterministic across runs and
    platforms. *)

type t

val create : expected:int -> fp_rate:float -> t
(** Sized for [expected] keys at false-positive probability [fp_rate]
    (standard [m = -n ln p / ln² 2] sizing, rounded up to the next
    power of two so any two planned filters are {!union}-compatible).
    Raises [Invalid_argument] unless [expected > 0] and
    [0 < fp_rate < 1]. *)

val add : t -> string -> unit

val mem : t -> string -> bool
(** [false] is definite absence; [true] is "possibly present". *)

val bits : t -> int
(** Bit-array size [m]. *)

val probes : t -> int
(** Hash functions [k]. *)

val count : t -> int
(** Insertions so far (not distinct keys). *)

val fp_estimate : t -> float
(** Expected false-positive probability at the current fill,
    [(1 - e^{-kn/m})^k]. *)

val estimate_entries : t -> int
(** Swamidass–Baldi cardinality estimate from the fill ratio,
    [-(m/k) ln(1 - X/m)] with [X] the set-bit count — lets the
    execution-mode planner ({!Hf_query.Plan}) price a remote site's
    speculation domain from its summary alone.  Falls back to {!count}
    when the filter is saturated. *)

val to_string : t -> string
(** Compact wire form, carried in [Cache_version] messages. *)

val of_string : string -> t option
(** Total inverse of {!to_string}: arbitrary bytes yield [None], never
    an exception (the codec fuzz suite feeds it garbage). *)

val union : t -> t -> t option
(** Sound OR-merge: the result answers "possibly present" for every key
    either input holds — the larger bit array is folded onto the
    smaller (bit [i] ORs into [i mod m']), which preserves the
    no-false-negative guarantee whenever the smaller size divides the
    larger, and the merged probe count is the smaller of the two.
    [None] when neither geometry divides the other; filters sized by
    {!create} are always compatible (power-of-two [m]).  Bloofi inner
    nodes ({!Bloofi}) are built from exactly this merge. *)

val equal : t -> t -> bool
(** Same geometry and same bit pattern ([count] is advisory and
    ignored). *)

val pp : Format.formatter -> t -> unit
