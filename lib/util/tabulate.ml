(* Plain-text table rendering for the benchmark harness: fixed-width
   columns sized to content, a header rule, right-aligned numeric cells. *)

type align = Left | Right

type column = { title : string; align : align }

let column ?(align = Left) title = { title; align }

let right title = { title; align = Right }

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?(indent = 0) columns rows =
  let ncols = List.length columns in
  List.iteri
    (fun i row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Tabulate.render: row %d has %d cells, expected %d" i
             (List.length row) ncols))
    rows;
  let widths =
    List.mapi
      (fun i col ->
        let cell_width = List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 rows in
        max (String.length col.title) cell_width)
      columns
  in
  let prefix = String.make indent ' ' in
  let buf = Buffer.create 256 in
  let emit_row cells aligns =
    Buffer.add_string buf prefix;
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth aligns i) (List.nth widths i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  let aligns = List.map (fun c -> c.align) columns in
  emit_row (List.map (fun c -> c.title) columns) aligns;
  Buffer.add_string buf prefix;
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    widths;
  Buffer.add_char buf '\n';
  List.iter (fun row -> emit_row row aligns) rows;
  Buffer.contents buf
