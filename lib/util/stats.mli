(** Sample statistics for benchmark reporting. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1). *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val percentile : float array -> float -> float
(** [percentile samples p] with [p] in [\[0,1\]], linear interpolation
    between closest ranks. Raises [Invalid_argument] on an empty sample,
    [p] out of range, or a NaN sample. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty sample. *)

val stddev : float array -> float
(** Sample standard deviation; [0.] for samples of size < 2. *)

val summarize : float array -> summary
(** Full summary. Raises [Invalid_argument] on an empty or NaN-bearing
    sample. *)

val pp_summary : Format.formatter -> summary -> unit
