(** Plain-text tables for the benchmark harness output. *)

type align = Left | Right

type column

val column : ?align:align -> string -> column
(** Column with a title; default alignment is [Left]. *)

val right : string -> column
(** Right-aligned column (numeric data). *)

val render : ?indent:int -> column list -> string list list -> string
(** [render columns rows] lays the rows out under a header rule. Raises
    [Invalid_argument] if any row's width differs from the header's.
    Printing the result is the caller's business — reporters live in
    bin/, per hfcheck rule R5. *)
