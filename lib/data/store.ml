(* Per-site object store.  A main-memory database, as in the paper's
   prototype: all search information (tuples, pointers, keywords) lives
   in memory; only large blobs would need disk in a real deployment.
   The store also issues serial numbers for objects born at its site. *)

type t = {
  site : int;
  objects : Hobject.t Oid.Table.t;
  mutable next_serial : int;
  mutable version : int;
}

let create ~site =
  if site < 0 then invalid_arg "Store.create: negative site";
  { site; objects = Oid.Table.create 64; next_serial = 0; version = 0 }

let site t = t.site

let version t = t.version

(* Every mutation of the object table moves the version forward, so an
   answer computed "at version v" names exactly one table state — the
   remote-answer cache keys its freshness checks on it. *)
let bump t = t.version <- t.version + 1

let fresh_oid t =
  let oid = Oid.make ~birth_site:t.site ~serial:t.next_serial in
  t.next_serial <- t.next_serial + 1;
  oid

let next_serial t = t.next_serial

(* Only moves forward, so restoring a snapshot can never reissue a
   serial that was already handed out. *)
let advance_serial t serial = t.next_serial <- max t.next_serial serial

let insert t obj =
  let oid = Hobject.oid obj in
  if Oid.Table.mem t.objects oid then invalid_arg "Store.insert: oid already present";
  Oid.Table.replace t.objects oid obj;
  bump t

let replace t obj =
  Oid.Table.replace t.objects (Hobject.oid obj) obj;
  bump t

let find t oid = Oid.Table.find_opt t.objects oid

let mem t oid = Oid.Table.mem t.objects oid

let remove t oid =
  if Oid.Table.mem t.objects oid then begin
    Oid.Table.remove t.objects oid;
    bump t
  end

let cardinal t = Oid.Table.length t.objects

let iter t f = Oid.Table.iter (fun _ obj -> f obj) t.objects

let fold t f init = Oid.Table.fold (fun _ obj acc -> f obj acc) t.objects init

let oids t = Oid.Table.fold (fun oid _ acc -> oid :: acc) t.objects []

let create_object t tuples =
  let obj = Hobject.of_tuples (fresh_oid t) tuples in
  insert t obj;
  obj

(* Materialize a set of objects as a new object holding one pointer tuple
   per member — the paper's representation of object sets (Section 2). *)
let create_set t ?(key = "Member") members =
  let obj = Hobject.of_tuples (fresh_oid t) (List.map (fun oid -> Tuple.pointer ~key oid) members) in
  insert t obj;
  obj
