(** Per-site object store: a main-memory database of HyperFile objects.

    Matches the paper's prototype, which kept all search information in
    memory.  The store also issues serial numbers for objects born at
    its site, implementing the allocation half of the naming scheme. *)

type t

val create : site:int -> t
(** Store for objects at [site]. Raises [Invalid_argument] on a
    negative site number. *)

val site : t -> int

val version : t -> int
(** Monotonic counter of object-table mutations: every {!insert},
    {!replace} and (effective) {!remove} moves it forward, so a value
    of [version] names exactly one table state.  The remote-answer
    cache records the version an answer was computed at and revalidates
    against the current one before reuse (DESIGN.md §4g). *)

val fresh_oid : t -> Oid.t
(** Next name born at this site. *)

val next_serial : t -> int
(** Serial the next {!fresh_oid} would use. *)

val advance_serial : t -> int -> unit
(** Raise the serial high-water mark (never lowers it); used when
    restoring a snapshot so reissued names cannot collide. *)

val insert : t -> Hobject.t -> unit
(** Raises [Invalid_argument] if the oid is already present. *)

val replace : t -> Hobject.t -> unit
(** Insert or overwrite. *)

val find : t -> Oid.t -> Hobject.t option

val mem : t -> Oid.t -> bool

val remove : t -> Oid.t -> unit

val cardinal : t -> int

val iter : t -> (Hobject.t -> unit) -> unit

val fold : t -> (Hobject.t -> 'a -> 'a) -> 'a -> 'a

val oids : t -> Oid.t list
(** All stored oids, in no particular order. *)

val create_object : t -> Tuple.t list -> Hobject.t
(** Allocate a fresh oid, build the object, insert it. *)

val create_set : t -> ?key:string -> Oid.t list -> Hobject.t
(** Materialize an object set as an object holding one pointer tuple per
    member (the paper's set representation); [key] defaults to
    ["Member"]. *)
