(** Object identifiers with R*-style naming (paper, Section 4).

    An object's identity is the pair (birth site, serial number).  Each
    name also carries a {e presumed current site} hint used to route
    dereferences; the hint is advisory and excluded from equality,
    ordering and hashing.  The birth site is the final arbiter of an
    object's actual location when the hint is stale.

    {2 Equality semantics}

    Two names denote the same object iff their (birth site, serial)
    pairs agree — always use [equal]/[compare]/[hash] (or [Table],
    [Set], [Map] below), never the polymorphic operators.  Structural
    comparison also sees the presumed-site hint, so [Stdlib.(=)] can
    report two names for the same object as different whenever one
    arrived over a connection that refreshed its hint.  Downstream that
    shows up as silent re-evaluation (a mark-table miss reprocesses the
    object) or duplicated results (a result set admits the object
    twice), and only on runs where hints drifted — the worst kind of
    nondeterminism.  hfcheck rule R1 (poly-compare) rejects polymorphic
    equality, ordering and hashing at any type containing [t]. *)

type t

val make : birth_site:int -> serial:int -> t
(** Fresh name born at [birth_site]; the hint initially points there.
    Raises [Invalid_argument] on negative components. *)

val with_hint : t -> int -> t
(** Same identity, updated presumed-current-site hint. *)

val birth_site : t -> int

val serial : t -> int

val hint : t -> int
(** Presumed current site of the object. *)

val equal : t -> t -> bool
(** Identity equality; ignores the hint. *)

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Table : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
