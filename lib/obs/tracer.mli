(** Span collector with a zero-cost disabled mode.

    Instrument unconditionally and pass {!noop} when tracing is off:
    every operation on the noop tracer is one variant check.  Span ids
    are positive ints unique per tracer; 0 means "no span" and is the
    conventional absent parent, so ids thread through message fields
    without options.

    Completed spans are retained up to [limit]; later spans increment
    {!dropped} instead of silently vanishing (the [Hf_sim.Trace]
    policy).  Thread-safe: the TCP transport finishes spans from
    several reader threads. *)

type t

val noop : t

val create :
  ?limit:int -> ?clock:(unit -> float) -> ?sample_rate:float -> ?seed:int -> unit -> t
(** [limit] bounds retained completed spans (default 200_000).
    [clock] supplies span timestamps (default: constant 0; the sim
    cluster installs its virtual clock via {!set_clock}, the CLI passes
    a wall clock).

    [sample_rate] (default 1.0) traces that fraction of queries —
    whole queries, never partial causal trees: the decision hashes the
    rendered query id with [seed], so it is deterministic and agrees
    across every site sharing the same seed.  Spans skipped by sampling
    count in {!sampled_out}.  Raises [Invalid_argument] outside
    [0, 1]. *)

val enabled : t -> bool

val set_clock : t -> (unit -> float) -> unit

val now : t -> float
(** The tracer's clock reading (0 on the noop tracer) — for callers
    recording retroactive spans via {!complete}, whose timestamps must
    share the live spans' time base. *)

val sample_rate : t -> float
(** 1.0 on the noop tracer. *)

val sampled_out : t -> int
(** Spans skipped because their query fell outside the sample. *)

val start : t -> ?parent:int -> query:string -> site:int -> phase:Span.phase -> string -> int
(** Open a span; returns its id (0 on the noop tracer). *)

val finish : ?detail:string -> t -> int -> unit
(** Close an open span.  Unknown ids (including 0) are ignored. *)

val set_detail : t -> int -> string -> unit

val instant :
  t -> ?parent:int -> ?detail:string -> query:string -> site:int -> phase:Span.phase -> string -> int
(** A zero-duration span, recorded immediately. *)

val complete :
  t ->
  ?parent:int ->
  ?detail:string ->
  query:string ->
  site:int ->
  phase:Span.phase ->
  start:float ->
  finish:float ->
  string ->
  int
(** Record an already-elapsed interval (e.g. a queue wait measured only
    once the task runs) with caller-supplied timestamps; the tracer's
    clock is not consulted. *)

val spans : t -> Span.t list
(** Completed and still-open spans, in id (creation) order. *)

val count : t -> int
val dropped : t -> int

val clear : t -> unit
(** Also resets {!dropped} and {!sampled_out}. *)

val register : t -> Registry.t -> prefix:string -> unit
(** Register the tracer's own health under [prefix]:
    [<prefix>.trace_spans], [<prefix>.trace_dropped] (spans lost past
    the retention limit — a truncated trace used to be silent),
    [<prefix>.trace_sampled_out] and the [<prefix>.trace_sample_rate]
    gauge. *)

val pp : Format.formatter -> t -> unit

val to_jsonl : t -> string
(** One span object per line. *)

val to_chrome_json : t -> string
(** Chrome trace_event JSON (loadable in Perfetto / chrome://tracing):
    "X" events with pid = site, tid = (site, query) lane, and flow
    arrows binding each span to its causal parent. *)

val write_file : t -> string -> unit
(** JSONL when [path] ends in [.jsonl], Chrome trace JSON otherwise. *)
