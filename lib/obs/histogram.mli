(** Log-bucketed histogram for latencies, byte counts and other
    non-negative measurements.

    Exact power-of-two bucket counts plus a bounded sample reservoir;
    percentiles come from the reservoir via the [Hf_util.Stats] rank
    code, so they are exact until [sample_limit] observations and
    reservoir-bounded after (see {!dropped_samples}). *)

type t

val n_buckets : int

val bucket_index : float -> int
(** Bucket 0 holds values below the smallest bound (including zero and
    negatives); bucket [i] holds [2^(e_min+i-1) <= v < 2^(e_min+i)];
    the last bucket is the overflow.  Raises on NaN. *)

val bucket_bounds : int -> float * float
(** [(lo, hi)] with [lo] inclusive, [hi] exclusive; the edge buckets
    return infinite bounds. *)

val create : ?sample_limit:int -> unit -> t
(** [sample_limit] bounds the percentile reservoir (default 4096). *)

val of_shape :
  ?sample_limit:int ->
  count:int ->
  sum:float ->
  vmin:float ->
  vmax:float ->
  buckets:(int * int) list ->
  unit ->
  t
(** Rebuild a histogram from its exact components — the form it takes
    after crossing the wire in a stats report.  The result carries no
    percentile reservoir ({!summary} returns [None]); count, sum,
    min/max and bucket shape are exact.  Raises [Invalid_argument] on a
    negative count, an out-of-range bucket index, or a negative bucket
    count. *)

val copy : t -> t
(** Deep copy (a point-in-time snapshot of a live histogram). *)

val observe : t -> float -> unit
(** Raises [Invalid_argument] on NaN, mirroring [Hf_util.Stats]. *)

val count : t -> int
val sum : t -> float

val vmin : t -> float
(** Smallest observation; [+inf] when empty. *)

val vmax : t -> float
(** Largest observation; [-inf] when empty. *)

val dropped_samples : t -> int
(** Observations that arrived after the reservoir filled; bucket counts
    and count/sum/min/max still include them. *)

val buckets : t -> (int * int) list
(** Non-empty buckets as [(index, count)], ascending. *)

val summary : t -> Hf_util.Stats.summary option
(** [None] when empty, or when the histogram carries no reservoir
    samples (one rebuilt by {!of_shape}, or a {!diff}).  count/mean/
    min/max are exact; p50/p90/p99 are over the reservoir. *)

val merge : t -> t -> t
(** Fresh histogram holding both inputs' observations. *)

val diff : older:t -> newer:t -> t
(** [newer] minus [older] — for rates over two snapshots of the same
    histogram.  Count and bucket counts subtract, clamped at zero so a
    reset source never yields negatives; the sum subtracts, falling
    back to [newer]'s across a reset; min/max keep [newer]'s; the
    result has no percentile reservoir. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
