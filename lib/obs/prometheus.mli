(** Prometheus text exposition (format 0.0.4) for registries and
    snapshots — the always-on monitoring surface behind the
    [Tcp_site] monitor port and [hfql stats].

    Dotted registry names map to legal metric names
    ([hf.net.bytes_sent] -> [hf_net_bytes_sent]); histograms render as
    cumulative [_bucket{le="..."}] series (power-of-two upper bounds,
    ["+Inf"] last) plus [_sum] and [_count]. *)

val sanitize_name : string -> string
(** Map every character outside [[a-zA-Z0-9_:]] to ['_']; a leading
    digit gains a ['_'] prefix. *)

val escape_label_value : string -> string
(** Exposition-format escapes: backslash, double quote, newline. *)

val render_snapshot : ?labels:(string * string) list -> Registry.snapshot -> string
(** [labels] are attached to every series (e.g. [("site", "2")]);
    keys are sanitized, values escaped. *)

val render : ?labels:(string * string) list -> Registry.t -> string
(** [render_snapshot] of a fresh {!Registry.snapshot}. *)
