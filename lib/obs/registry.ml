(* Typed metrics registry: named counters, gauges and histograms under
   the `hf.<layer>.<name>` convention, with one pp / to_json path shared
   by the sim cluster, the TCP sites and the bench harness.

   Counters and gauges can be registry-owned (allocated here) or views
   over storage that already exists — the hot paths keep their plain
   mutable records and the registry reads them at report time, so
   registration costs nothing per event. *)

type value =
  | Counter of (unit -> int)
  | Gauge of (unit -> float)
  | Histogram of Histogram.t

type t = { mutable metrics : (string * value) list (* newest first *) }

let create () = { metrics = [] }

let names t = List.rev_map fst t.metrics

let find t name = List.assoc_opt name t.metrics

let register t name value =
  if String.length name = 0 then invalid_arg "Registry.register: empty name";
  if List.mem_assoc name t.metrics then
    invalid_arg (Printf.sprintf "Registry.register: duplicate metric %S" name);
  t.metrics <- (name, value) :: t.metrics

let register_counter t name read = register t name (Counter read)

let register_gauge t name read = register t name (Gauge read)

let register_histogram t name histogram = register t name (Histogram histogram)

let counter t name =
  let cell = ref 0 in
  register_counter t name (fun () -> !cell);
  cell

let gauge t name =
  let cell = ref 0.0 in
  register_gauge t name (fun () -> !cell);
  cell

let histogram ?sample_limit t name =
  let h = Histogram.create ?sample_limit () in
  register_histogram t name h;
  h

let sorted t = List.sort (fun (a, _) (b, _) -> String.compare a b) t.metrics

(* --- snapshots --- *)

(* A snapshot decouples the values from the live storage the registry
   views: counters and gauges are read once, histograms deep-copied.
   Snapshots are pure data — they can be diffed against a later one for
   rates, shipped to another site (Stats_report), or merged across a
   cluster. *)

type sampled =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of Histogram.t

type snapshot = (string * sampled) list (* sorted by name *)

let snapshot t =
  List.map
    (fun (name, value) ->
      ( name,
        match value with
        | Counter read -> Counter_value (read ())
        | Gauge read -> Gauge_value (read ())
        | Histogram h -> Histogram_value (Histogram.copy h) ))
    (sorted t)

(* [newer] minus [older], matched by name.  Counters subtract (clamped
   at zero across a reset), histograms diff bucket-wise, gauges are
   point-in-time readings and keep the newer value.  Metrics present
   only in [newer] (a registry that grew between snapshots) pass
   through; kind mismatches keep the newer value too. *)
let diff ~older ~newer =
  List.map
    (fun (name, value) ->
      ( name,
        match (List.assoc_opt name older, value) with
        | Some (Counter_value old), Counter_value now -> Counter_value (max 0 (now - old))
        | Some (Histogram_value old), Histogram_value now ->
          Histogram_value (Histogram.diff ~older:old ~newer:now)
        | (Some _ | None), v -> v ))
    newer

(* Cross-site aggregation: counters and gauges sum (queue depths and
   occupancies add up across a cluster), histograms merge.  Names
   present on any site appear in the result. *)
let merge_snapshots snapshots =
  let table = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (List.iter (fun (name, value) ->
         match Hashtbl.find_opt table name with
         | None ->
           Hashtbl.replace table name value;
           order := name :: !order
         | Some prior ->
           let combined =
             match (prior, value) with
             | Counter_value a, Counter_value b -> Counter_value (a + b)
             | Gauge_value a, Gauge_value b -> Gauge_value (a +. b)
             | Histogram_value a, Histogram_value b -> Histogram_value (Histogram.merge a b)
             | (Counter_value _ | Gauge_value _ | Histogram_value _), v -> v
           in
           Hashtbl.replace table name combined))
    snapshots;
  List.rev_map (fun name -> (name, Hashtbl.find table name)) !order
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot_to_json snap =
  Json.Obj
    (List.map
       (fun (name, value) ->
         ( name,
           match value with
           | Counter_value n -> Json.Int n
           | Gauge_value v -> Json.Float v
           | Histogram_value h -> Histogram.to_json h ))
       snap)

let pp_snapshot ppf snap =
  let pp_metric ppf (name, value) =
    match value with
    | Counter_value n -> Fmt.pf ppf "%-42s %d" name n
    | Gauge_value v -> Fmt.pf ppf "%-42s %.6g" name v
    | Histogram_value h -> Fmt.pf ppf "%-42s %a" name Histogram.pp h
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_metric) snap

let pp ppf t =
  let pp_metric ppf (name, value) =
    match value with
    | Counter read -> Fmt.pf ppf "%-42s %d" name (read ())
    | Gauge read -> Fmt.pf ppf "%-42s %.6g" name (read ())
    | Histogram h -> Fmt.pf ppf "%-42s %a" name Histogram.pp h
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_metric) (sorted t)

let to_json t =
  Json.Obj
    (List.map
       (fun (name, value) ->
         ( name,
           match value with
           | Counter read -> Json.Int (read ())
           | Gauge read -> Json.Float (read ())
           | Histogram h -> Histogram.to_json h ))
       (sorted t))
