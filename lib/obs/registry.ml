(* Typed metrics registry: named counters, gauges and histograms under
   the `hf.<layer>.<name>` convention, with one pp / to_json path shared
   by the sim cluster, the TCP sites and the bench harness.

   Counters and gauges can be registry-owned (allocated here) or views
   over storage that already exists — the hot paths keep their plain
   mutable records and the registry reads them at report time, so
   registration costs nothing per event. *)

type value =
  | Counter of (unit -> int)
  | Gauge of (unit -> float)
  | Histogram of Histogram.t

type t = { mutable metrics : (string * value) list (* newest first *) }

let create () = { metrics = [] }

let names t = List.rev_map fst t.metrics

let find t name = List.assoc_opt name t.metrics

let register t name value =
  if String.length name = 0 then invalid_arg "Registry.register: empty name";
  if List.mem_assoc name t.metrics then
    invalid_arg (Printf.sprintf "Registry.register: duplicate metric %S" name);
  t.metrics <- (name, value) :: t.metrics

let register_counter t name read = register t name (Counter read)

let register_gauge t name read = register t name (Gauge read)

let register_histogram t name histogram = register t name (Histogram histogram)

let counter t name =
  let cell = ref 0 in
  register_counter t name (fun () -> !cell);
  cell

let gauge t name =
  let cell = ref 0.0 in
  register_gauge t name (fun () -> !cell);
  cell

let histogram ?sample_limit t name =
  let h = Histogram.create ?sample_limit () in
  register_histogram t name h;
  h

let sorted t = List.sort (fun (a, _) (b, _) -> String.compare a b) t.metrics

let pp ppf t =
  let pp_metric ppf (name, value) =
    match value with
    | Counter read -> Fmt.pf ppf "%-42s %d" name (read ())
    | Gauge read -> Fmt.pf ppf "%-42s %.6g" name (read ())
    | Histogram h -> Fmt.pf ppf "%-42s %a" name Histogram.pp h
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_metric) (sorted t)

let to_json t =
  Json.Obj
    (List.map
       (fun (name, value) ->
         ( name,
           match value with
           | Counter read -> Json.Int (read ())
           | Gauge read -> Json.Float (read ())
           | Histogram h -> Histogram.to_json h ))
       (sorted t))
