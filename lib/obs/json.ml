(* Minimal JSON tree and serializer, enough for metrics dumps and
   Chrome trace_event files.  No external dependency: the toolchain
   image has no JSON library, and the subset we emit (objects, arrays,
   strings, numbers) is small enough to hand-roll safely. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* JSON has no NaN/infinity literals; map them to null rather than
   emitting an unparseable file. *)
let add_float buf f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> add_float buf f
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, value) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf name;
        Buffer.add_string buf "\":";
        to_buffer buf value)
      fields;
    Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  to_buffer buf json;
  Buffer.contents buf

let pp ppf json = Fmt.string ppf (to_string json)
