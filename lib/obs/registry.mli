(** Typed metrics registry: named counters, gauges and histograms.

    Naming convention: [hf.<layer>.<name>], e.g.
    [hf.server.work_messages], [hf.net.sent_bytes],
    [hf.bench.response_time_s].  Registration order does not matter;
    {!pp} and {!to_json} sort by name. *)

type value =
  | Counter of (unit -> int)
  | Gauge of (unit -> float)
  | Histogram of Histogram.t

type t

val create : unit -> t

val register_counter : t -> string -> (unit -> int) -> unit
(** A counter {e view}: the registry reads existing storage at report
    time, so instrumented hot paths keep their plain mutable fields.
    Raises on duplicate or empty names (all registration does). *)

val register_gauge : t -> string -> (unit -> float) -> unit
val register_histogram : t -> string -> Histogram.t -> unit

val counter : t -> string -> int ref
(** Registry-owned counter: allocates the cell and registers a view. *)

val gauge : t -> string -> float ref
val histogram : ?sample_limit:int -> t -> string -> Histogram.t

val names : t -> string list
(** In registration order. *)

val find : t -> string -> value option

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t

(** {1 Snapshots}

    Pure-data captures of a registry: counters and gauges read once,
    histograms deep-copied.  Snapshots diff (rates between two points
    in time), merge (cross-site aggregation) and serialize (the
    [Stats_report] wire message and the Prometheus endpoint both render
    from one). *)

type sampled =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of Histogram.t

type snapshot = (string * sampled) list
(** Sorted by metric name. *)

val snapshot : t -> snapshot

val diff : older:snapshot -> newer:snapshot -> snapshot
(** [newer] minus [older], matched by name: counters subtract (clamped
    at zero across a reset), histograms diff bucket-wise
    ({!Histogram.diff}), gauges keep the newer reading.  Metrics only
    present in [newer] pass through unchanged. *)

val merge_snapshots : snapshot list -> snapshot
(** Cross-site aggregation: counters and gauges sum, histograms merge;
    any name present on any input appears in the result. *)

val snapshot_to_json : snapshot -> Json.t
val pp_snapshot : Format.formatter -> snapshot -> unit
