(** Typed metrics registry: named counters, gauges and histograms.

    Naming convention: [hf.<layer>.<name>], e.g.
    [hf.server.work_messages], [hf.net.sent_bytes],
    [hf.bench.response_time_s].  Registration order does not matter;
    {!pp} and {!to_json} sort by name. *)

type value =
  | Counter of (unit -> int)
  | Gauge of (unit -> float)
  | Histogram of Histogram.t

type t

val create : unit -> t

val register_counter : t -> string -> (unit -> int) -> unit
(** A counter {e view}: the registry reads existing storage at report
    time, so instrumented hot paths keep their plain mutable fields.
    Raises on duplicate or empty names (all registration does). *)

val register_gauge : t -> string -> (unit -> float) -> unit
val register_histogram : t -> string -> Histogram.t -> unit

val counter : t -> string -> int ref
(** Registry-owned counter: allocates the cell and registers a view. *)

val gauge : t -> string -> float ref
val histogram : ?sample_limit:int -> t -> string -> Histogram.t

val names : t -> string list
(** In registration order. *)

val find : t -> string -> value option

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
