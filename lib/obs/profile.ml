(* EXPLAIN ANALYZE for a distributed query: fold one query's causal
   span tree, plus the engine's per-query metric attribution, into a
   readable per-site breakdown.

   Two ingredients, deliberately kept separate:

   - the SPANS say where the time went: per-site, per-phase durations
     (eval vs ship vs queue wait...), and the ship-round depth — the
     longest chain of cross-site hops any work item took, which is the
     paper's "rounds" cost in observable form;

   - the SCALARS are the engine's per-query counters (messages, bytes,
     cache hits, retransmits), attributed by the engine itself so
     concurrent neighbors never bleed in.  The profile does not try to
     re-derive them from spans — spans are samples (and can be dropped
     or sampled out), counters are exact; the differential tests pin
     the two views together where they must agree. *)

type scalar = Int of int | Float of float

type site_row = {
  site : int;
  phases : (Span.phase * float * int) list;
      (* declaration order; (phase, total seconds, span count), phases
         with no spans omitted *)
  busy_s : float; (* Eval total: execution time *)
  wait_s : float; (* Wait total: time queued before running *)
  ships : int; (* Ship-phase spans originating at this site *)
}

type t = {
  query : string;
  total_s : float;
  rounds : int; (* deepest Ship nesting on any causal chain *)
  span_count : int;
  dropped_spans : int; (* tracer drops: the tree may be incomplete *)
  sites : site_row list; (* ascending site id *)
  scalars : (string * scalar) list;
}

let scalar_int t name =
  match List.assoc_opt name t.scalars with
  | Some (Int n) -> Some n
  | Some (Float _) | None -> None

let scalar_float t name =
  match List.assoc_opt name t.scalars with
  | Some (Float v) -> Some v
  | Some (Int n) -> Some (float_of_int n)
  | None -> None

(* Ship depth of a span = number of Ship-phase spans on its causal
   chain, itself included.  A parent outside the span set (dropped, or
   the chain crosses a process boundary with separate tracers) roots
   the chain there. *)
let ship_depths spans =
  let by_id = Hashtbl.create (List.length spans) in
  List.iter (fun (s : Span.t) -> Hashtbl.replace by_id s.Span.id s) spans;
  let memo = Hashtbl.create (List.length spans) in
  let rec depth (s : Span.t) =
    match Hashtbl.find_opt memo s.Span.id with
    | Some d -> d
    | None ->
      (* break parent cycles (malformed input) by seeding 0 first *)
      Hashtbl.replace memo s.Span.id 0;
      let above =
        match Hashtbl.find_opt by_id s.Span.parent with
        | Some parent when s.Span.parent <> s.Span.id -> depth parent
        | Some _ | None -> 0
      in
      let d = above + (match s.Span.phase with Span.Ship -> 1 | _ -> 0) in
      Hashtbl.replace memo s.Span.id d;
      d
  in
  List.fold_left (fun acc s -> max acc (depth s)) 0 spans

let of_spans ~query ?(scalars = []) ?(dropped = 0) all_spans =
  let spans = List.filter (fun (s : Span.t) -> String.equal s.Span.query query) all_spans in
  let total_s =
    (* the root Query span when present, else the observed extent *)
    match
      List.find_opt (fun (s : Span.t) -> s.Span.phase = Span.Query && s.Span.parent = 0) spans
    with
    | Some root -> Span.duration root
    | None -> (
        match spans with
        | [] -> 0.0
        | first :: _ ->
          let lo, hi =
            List.fold_left
              (fun (lo, hi) (s : Span.t) -> (Float.min lo s.Span.start, Float.max hi s.Span.finish))
              (first.Span.start, first.Span.finish)
              spans
          in
          hi -. lo)
  in
  let sites = List.sort_uniq Int.compare (List.map (fun (s : Span.t) -> s.Span.site) spans) in
  let row site =
    let here = List.filter (fun (s : Span.t) -> s.Span.site = site) spans in
    let phases =
      List.filter_map
        (fun phase ->
          let matching = List.filter (fun (s : Span.t) -> s.Span.phase = phase) here in
          match matching with
          | [] -> None
          | _ ->
            let total = List.fold_left (fun acc s -> acc +. Span.duration s) 0.0 matching in
            Some (phase, total, List.length matching))
        Span.all_phases
    in
    let phase_total p =
      match List.find_opt (fun (phase, _, _) -> phase = p) phases with
      | Some (_, total, _) -> total
      | None -> 0.0
    in
    let phase_count p =
      match List.find_opt (fun (phase, _, _) -> phase = p) phases with
      | Some (_, _, n) -> n
      | None -> 0
    in
    {
      site;
      phases;
      busy_s = phase_total Span.Eval;
      wait_s = phase_total Span.Wait;
      ships = phase_count Span.Ship;
    }
  in
  {
    query;
    total_s;
    rounds = ship_depths spans;
    span_count = List.length spans;
    dropped_spans = dropped;
    sites = List.map row sites;
    scalars;
  }

let pp_scalar ppf = function
  | Int n -> Fmt.int ppf n
  | Float v -> Fmt.pf ppf "%.6g" v

let pp ppf t =
  Fmt.pf ppf "@[<v>profile %s: total %.6gs, %d ship round(s), %d span(s)%s" t.query t.total_s
    t.rounds t.span_count
    (if t.dropped_spans > 0 then
       Printf.sprintf " [%d span(s) dropped: breakdown is partial]" t.dropped_spans
     else "");
  List.iter
    (fun row ->
      Fmt.pf ppf "@,  site %-3d" row.site;
      Fmt.pf ppf "%a"
        Fmt.(
          list ~sep:(any "  ") (fun ppf (phase, total, n) ->
              Fmt.pf ppf "%s %.6gs/%d" (Span.phase_name phase) total n))
        row.phases)
    t.sites;
  if t.scalars <> [] then begin
    Fmt.pf ppf "@,  ";
    Fmt.pf ppf "%a"
      Fmt.(list ~sep:(any "  ") (fun ppf (name, v) -> Fmt.pf ppf "%s=%a" name pp_scalar v))
      t.scalars
  end;
  Fmt.pf ppf "@]"

let site_row_json row =
  Json.Obj
    [
      ("site", Json.Int row.site);
      ( "phases",
        Json.Obj
          (List.map
             (fun (phase, total, n) ->
               ( Span.phase_name phase,
                 Json.Obj [ ("seconds", Json.Float total); ("spans", Json.Int n) ] ))
             row.phases) );
      ("busy_s", Json.Float row.busy_s);
      ("wait_s", Json.Float row.wait_s);
      ("ships", Json.Int row.ships);
    ]

let to_json t =
  Json.Obj
    [
      ("query", Json.Str t.query);
      ("total_s", Json.Float t.total_s);
      ("rounds", Json.Int t.rounds);
      ("spans", Json.Int t.span_count);
      ("dropped_spans", Json.Int t.dropped_spans);
      ("sites", Json.List (List.map site_row_json t.sites));
      ( "scalars",
        Json.Obj
          (List.map
             (fun (name, v) ->
               (name, match v with Int n -> Json.Int n | Float f -> Json.Float f))
             t.scalars) );
    ]
