(* The span collector.

   [noop] is the disabled tracer: every operation is a single variant
   check, no allocation, no lock — instrumentation left in hot paths
   costs (almost) nothing when tracing is off.

   An active tracer keeps open spans in a table and completed spans in
   a bounded list with a [dropped] counter — the same retain-then-count
   policy as [Hf_sim.Trace], so truncated traces are detectable rather
   than silently short.  All operations take a mutex: the TCP transport
   finishes spans from several reader threads.

   Span ids are positive and unique per tracer; 0 means "no span" and
   threads through instrumentation as the absent parent, so call sites
   never juggle options. *)

type active = {
  mutable clock : unit -> float;
  limit : int;
  mutable next_id : int;
  open_spans : (int, Span.t) Hashtbl.t;
  mutable closed : Span.t list; (* newest first *)
  mutable closed_count : int;
  mutable dropped : int;
  sample_rate : float; (* fraction of queries traced; 1.0 = all *)
  sample_cutoff : int; (* rate scaled to [0, 1_000_000] for the hash test *)
  sample_seed : int;
  sampled_out : int Atomic.t; (* spans skipped by the sampling decision *)
  lock : Mutex.t;
}

type t = Noop | Active of active

let noop = Noop

let default_limit = 200_000

let create ?(limit = default_limit) ?(clock = fun () -> 0.0) ?(sample_rate = 1.0) ?(seed = 0) ()
    =
  if Float.is_nan sample_rate || sample_rate < 0.0 || sample_rate > 1.0 then
    invalid_arg "Tracer.create: sample_rate must be in [0, 1]";
  Active
    {
      clock;
      limit;
      next_id = 1;
      open_spans = Hashtbl.create 64;
      closed = [];
      closed_count = 0;
      dropped = 0;
      sample_rate;
      sample_cutoff = int_of_float (sample_rate *. 1_000_000.0);
      sample_seed = seed;
      sampled_out = Atomic.make 0;
      lock = Mutex.create ();
    }

let enabled = function Noop -> false | Active _ -> true

let set_clock t clock = match t with Noop -> () | Active a -> a.clock <- clock

let now t = match t with Noop -> 0.0 | Active a -> a.clock ()

(* The sampling decision is per QUERY, not per span: a query is traced
   in full or not at all (a partial causal tree is worse than none).
   Hashing the rendered query id makes the decision deterministic and —
   crucial for in-process clusters sharing one wire — identical on
   every site holding a tracer with the same seed, so a sampled-out
   query's spans are absent everywhere rather than half-stitched.

   The decision is pure and lock-free on purpose: at sample_rate 0.1
   it runs for ten times as many spans as are recorded, so it must cost
   a hash and a compare, not a mutex round-trip — that difference alone
   is most of E18's overhead budget.  [seeded_hash] hashes the string
   in place without allocating a pair. *)
let sampled a ~query =
  a.sample_cutoff >= 1_000_000
  || a.sample_cutoff > 0
     && Hashtbl.seeded_hash a.sample_seed query mod 1_000_000 < a.sample_cutoff

let sample_rate = function Noop -> 1.0 | Active a -> a.sample_rate

let sampled_out = function Noop -> 0 | Active a -> Atomic.get a.sampled_out

let locked a f =
  Mutex.lock a.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock a.lock) f

let retain a span =
  if a.closed_count < a.limit then begin
    a.closed <- span :: a.closed;
    a.closed_count <- a.closed_count + 1
  end
  else a.dropped <- a.dropped + 1

let start t ?(parent = 0) ~query ~site ~phase name =
  match t with
  | Noop -> 0
  | Active a when not (sampled a ~query) ->
    Atomic.incr a.sampled_out;
    0
  | Active a ->
    locked a (fun () ->
        let id = a.next_id in
        a.next_id <- id + 1;
        let now = a.clock () in
        let span =
          { Span.id; parent; query; site; phase; name; start = now; finish = now; detail = "" }
        in
        Hashtbl.replace a.open_spans id span;
        id)

(* [set_detail] and [finish] skip the lock entirely on id 0 — the id a
   sampled-out [start] hands back — so the untraced 90% of queries at
   sample_rate 0.1 pay only a branch here (E18's overhead bound). *)
let set_detail t id detail =
  match t with
  | Noop -> ()
  | Active _ when id = 0 -> ()
  | Active a ->
    locked a (fun () ->
        match Hashtbl.find_opt a.open_spans id with
        | Some span -> span.Span.detail <- detail
        | None -> ())

let finish ?detail t id =
  match t with
  | Noop -> ()
  | Active _ when id = 0 -> ()
  | Active a ->
    locked a (fun () ->
        match Hashtbl.find_opt a.open_spans id with
        | None -> () (* id 0, unknown, or already finished: ignore *)
        | Some span ->
          Hashtbl.remove a.open_spans id;
          span.Span.finish <- a.clock ();
          (match detail with Some d -> span.Span.detail <- d | None -> ());
          retain a span)

(* Record a span whose interval is already over — e.g. a queue wait
   measured by the scheduler only once the task finally runs.  The
   caller supplies both timestamps; the tracer's clock is not
   consulted, so retroactive spans and live spans interleave cleanly
   under a virtual clock. *)
let complete t ?(parent = 0) ?(detail = "") ~query ~site ~phase ~start ~finish name =
  match t with
  | Noop -> 0
  | Active a when not (sampled a ~query) ->
    Atomic.incr a.sampled_out;
    0
  | Active a ->
    locked a (fun () ->
        let id = a.next_id in
        a.next_id <- id + 1;
        retain a { Span.id; parent; query; site; phase; name; start; finish; detail };
        id)

let instant t ?(parent = 0) ?(detail = "") ~query ~site ~phase name =
  match t with
  | Noop -> 0
  | Active a when not (sampled a ~query) ->
    Atomic.incr a.sampled_out;
    0
  | Active a ->
    locked a (fun () ->
        let id = a.next_id in
        a.next_id <- id + 1;
        let now = a.clock () in
        retain a
          { Span.id; parent; query; site; phase; name; start = now; finish = now; detail };
        id)

let spans t =
  match t with
  | Noop -> []
  | Active a ->
    locked a (fun () ->
        let open_ones = Hashtbl.fold (fun _ span acc -> span :: acc) a.open_spans [] in
        List.sort
          (fun (x : Span.t) y -> Int.compare x.Span.id y.Span.id)
          (List.rev_append a.closed open_ones))

let count t = match t with Noop -> 0 | Active a -> a.closed_count + Hashtbl.length a.open_spans

let dropped t = match t with Noop -> 0 | Active a -> a.dropped

let clear t =
  match t with
  | Noop -> ()
  | Active a ->
    locked a (fun () ->
        Hashtbl.reset a.open_spans;
        a.closed <- [];
        a.closed_count <- 0;
        a.dropped <- 0;
        Atomic.set a.sampled_out 0)

(* Surface the tracer's own health as metrics: a truncated trace
   ([dropped] > 0) used to be visible only by noticing the Perfetto
   file was short. *)
let register t registry ~prefix =
  Registry.register_counter registry (prefix ^ ".trace_spans") (fun () -> count t);
  Registry.register_counter registry (prefix ^ ".trace_dropped") (fun () -> dropped t);
  Registry.register_counter registry (prefix ^ ".trace_sampled_out") (fun () -> sampled_out t);
  Registry.register_gauge registry (prefix ^ ".trace_sample_rate") (fun () -> sample_rate t)

let pp ppf t =
  match t with
  | Noop -> Fmt.pf ppf "(tracing off)"
  | Active a ->
    Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Span.pp) (spans t);
    if a.dropped > 0 then Fmt.pf ppf "@,... and %d dropped span(s) past the limit" a.dropped

(* --- exporters --- *)

let span_json (span : Span.t) =
  Json.Obj
    [
      ("id", Json.Int span.id);
      ("parent", Json.Int span.parent);
      ("query", Json.Str span.query);
      ("site", Json.Int span.site);
      ("phase", Json.Str (Span.phase_name span.phase));
      ("name", Json.Str span.name);
      ("start", Json.Float span.start);
      ("finish", Json.Float span.finish);
      ("detail", Json.Str span.detail);
    ]

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun span ->
      Json.to_buffer buf (span_json span);
      Buffer.add_char buf '\n')
    (spans t);
  Buffer.contents buf

(* Chrome trace_event JSON (the Perfetto / chrome://tracing format):
   complete ("X") events with pid = site and tid = query, process/thread
   name metadata, and flow events binding every child span to its
   parent so the causal chain renders as arrows across sites. *)
let to_chrome_json t =
  let all = spans t in
  let us time = time *. 1e6 in
  (* one Perfetto "thread" per (site, query) pair *)
  let tids = Hashtbl.create 16 in
  let tid_of (span : Span.t) =
    match Hashtbl.find_opt tids (span.site, span.query) with
    | Some tid -> tid
    | None ->
      let tid = Hashtbl.length tids + 1 in
      Hashtbl.replace tids (span.site, span.query) tid;
      tid
  in
  let args (span : Span.t) =
    Json.Obj
      ([
         ("span", Json.Int span.id);
         ("parent", Json.Int span.parent);
         ("query", Json.Str span.query);
         ("phase", Json.Str (Span.phase_name span.phase));
       ]
      @ if span.detail = "" then [] else [ ("detail", Json.Str span.detail) ])
  in
  let complete (span : Span.t) =
    Json.Obj
      [
        ("name", Json.Str span.name);
        ("cat", Json.Str (Span.phase_name span.phase));
        ("ph", Json.Str "X");
        ("ts", Json.Float (us span.start));
        ("dur", Json.Float (us (Span.duration span)));
        ("pid", Json.Int span.site);
        ("tid", Json.Int (tid_of span));
        ("args", args span);
      ]
  in
  let by_id = Hashtbl.create (List.length all) in
  List.iter (fun (span : Span.t) -> Hashtbl.replace by_id span.Span.id span) all;
  let flows (span : Span.t) =
    if span.parent = 0 then []
    else
      match Hashtbl.find_opt by_id span.parent with
      | None -> []
      | Some parent ->
        let flow ph (at : Span.t) ts extra =
          Json.Obj
            ([
               ("name", Json.Str "causes");
               ("cat", Json.Str "flow");
               ("ph", Json.Str ph);
               ("id", Json.Int span.id);
               ("ts", Json.Float (us ts));
               ("pid", Json.Int at.site);
               ("tid", Json.Int (tid_of at));
             ]
            @ extra)
        in
        [
          flow "s" parent parent.start [];
          flow "f" span span.start [ ("bp", Json.Str "e") ];
        ]
  in
  let metadata =
    List.concat_map
      (fun (span : Span.t) ->
        [
          Json.Obj
            [
              ("name", Json.Str "process_name");
              ("ph", Json.Str "M");
              ("pid", Json.Int span.site);
              ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "site %d" span.site)) ]);
            ];
          Json.Obj
            [
              ("name", Json.Str "thread_name");
              ("ph", Json.Str "M");
              ("pid", Json.Int span.site);
              ("tid", Json.Int (tid_of span));
              ("args", Json.Obj [ ("name", Json.Str span.query) ]);
            ];
        ])
      all
  in
  (* dedupe metadata (one per pid / pid+tid) while keeping order *)
  let seen = Hashtbl.create 16 in
  let metadata =
    List.filter
      (fun json ->
        let key = Json.to_string json in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      metadata
  in
  let events = metadata @ List.map complete all @ List.concat_map flows all in
  Json.to_string
    (Json.Obj [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.Str "ms") ])

let write_file t path =
  let contents =
    if Filename.check_suffix path ".jsonl" then to_jsonl t else to_chrome_json t
  in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
