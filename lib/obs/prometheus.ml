(* Prometheus text exposition (version 0.0.4) over a registry snapshot.

   The registry's dotted names ([hf.net.bytes_sent]) are not valid
   Prometheus metric names, so every character outside
   [[a-zA-Z0-9_:]] maps to '_' ([hf_net_bytes_sent]); a leading digit
   gets a '_' prefix.  Label values use the exposition escapes:
   backslash, double quote and newline.  Histograms render as the
   standard cumulative [_bucket{le="..."}] series (upper bounds from
   the power-of-two bucket layout, '+Inf' last) plus [_sum] and
   [_count]. *)

let name_ok c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = ':'

let sanitize_name name =
  let mapped = String.map (fun c -> if name_ok c then c else '_') name in
  if mapped = "" then "_"
  else
    match mapped.[0] with
    | '0' .. '9' -> "_" ^ mapped
    | _ -> mapped

let escape_label_value value =
  let buf = Buffer.create (String.length value) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    value;
  Buffer.contents buf

(* Prometheus forbids NaN-free guarantees nowhere, but its text format
   spells the IEEE specials out. *)
let number v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" v

let labels_string = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label_value v))
           labels)
    ^ "}"

let render_snapshot ?(labels = []) snap =
  let buf = Buffer.create 1024 in
  let base = labels_string labels in
  let line name suffix extra value =
    Buffer.add_string buf (name ^ suffix);
    (match (extra, labels) with
     | [], [] -> ()
     | extra, _ -> Buffer.add_string buf (labels_string (labels @ extra)));
    Buffer.add_char buf ' ';
    Buffer.add_string buf value;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (raw_name, value) ->
      let name = sanitize_name raw_name in
      match (value : Registry.sampled) with
      | Registry.Counter_value n ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
        Buffer.add_string buf (Printf.sprintf "%s%s %d\n" name base n)
      | Registry.Gauge_value v ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
        Buffer.add_string buf (Printf.sprintf "%s%s %s\n" name base (number v))
      | Registry.Histogram_value h ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
        let cumulative = ref 0 in
        List.iter
          (fun (i, n) ->
            cumulative := !cumulative + n;
            let _, hi = Histogram.bucket_bounds i in
            line name "_bucket" [ ("le", number hi) ] (string_of_int !cumulative))
          (Histogram.buckets h);
        line name "_bucket" [ ("le", "+Inf") ] (string_of_int (Histogram.count h));
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" name base (number (Histogram.sum h)));
        Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" name base (Histogram.count h)))
    snap;
  Buffer.contents buf

let render ?labels registry = render_snapshot ?labels (Registry.snapshot registry)
